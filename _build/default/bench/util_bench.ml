(* Shared helpers for the benchmark harness. *)

let project src = Psc.load_string src

(* Three element-wise stages over one range: the fusion ablation. *)
let pipeline_src =
  {|
Pipe: module (X: array[I] of real; N: int): [W: array[I] of real];
type
  I = 1 .. N;
var
  Y: array[I] of real;
  Z: array[I] of real;
define
  Y[I] = X[I] * 2.0 + 1.0;
  Z[I] = Y[I] * Y[I];
  W[I] = Z[I] - Y[I];
end Pipe;
|}
