bench/util_bench.ml: Psc
