bench/main.mli:
