bench/main.ml: Analyze Array Bechamel Benchmark Fmt Instance List Measure Option Ps_models Psc Staged String Sys Test Time Toolkit Unix Util_bench
