(* Differential fuzzing over randomly generated PS recurrences.

   Programs are 1-D stencil sweeps over a time axis with randomized
   coefficients, offsets, boundary handling, and an optional same-sweep
   (west) reference that forces the space loop iterative.  Each generated
   program is pushed through the whole pipeline and its executions
   compared pairwise:

   - windowed store vs full allocation (bit-equal),
   - domain-pool DOALL execution vs sequential (bit-equal),
   - fused schedule vs plain (bit-equal),
   - runtime evaluation count vs the analytic work,
   - when the program is fully iterative: the hyperplane-transformed
     module (with sinking and trimming) vs the original (bit-equal).

   No independent oracle is needed: disagreement between any two paths
   is a bug in one of them. *)

let t name f = Alcotest.test_case name `Quick f

type stencil = {
  west : float option;   (* A[S, X-1]: same sweep -> DO X *)
  prev_c : float;        (* A[S-1, X] *)
  prev_w : float option; (* A[S-1, X-1] *)
  prev_e : float option; (* A[S-1, X+1] *)
  bias : float;
  n : int;
  steps : int;
}

let gen_stencil : stencil QCheck.Gen.t =
  let open QCheck.Gen in
  let coeff = float_range 0.05 0.45 in
  let* west = opt coeff in
  let* prev_c = coeff in
  let* prev_w = opt coeff in
  let* prev_e = opt coeff in
  let* bias = float_range (-0.2) 0.2 in
  let* n = int_range 3 24 in
  let* steps = int_range 2 12 in
  return { west; prev_c; prev_w; prev_e; bias; n; steps }

let source_of (s : stencil) : string =
  let term c ref_ = Printf.sprintf "%.3f * %s" c ref_ in
  let terms =
    List.filter_map Fun.id
      [ Option.map (fun c -> term c "A[S, X-1]") s.west;
        Some (term s.prev_c "A[S-1, X]");
        Option.map (fun c -> term c "A[S-1, X-1]") s.prev_w;
        Option.map (fun c -> term c "A[S-1, X+1]") s.prev_e ]
  in
  Printf.sprintf
    {|
R: module (Init: array[X] of real; N: int; T: int): [Out: array[X] of real];
type
  X = 0 .. N+1;
  S = 2 .. T;
var
  A: array [1 .. T] of array[X] of real;
define
  A[1] = Init;
  Out = A[T];
  A[S,X] = if (X = 0) or (X = N+1)
           then A[S-1,X]
           else %s + %.3f;
end R;
|}
    (String.concat " + " terms)
    s.bias

let inputs_of (s : stencil) =
  [ ("Init",
     Psc.Exec.array_real
       ~dims:[ (0, s.n + 1) ]
       (fun ix -> Ps_models.Models.fill_value ix.(0)));
    ("N", Psc.Exec.scalar_int s.n);
    ("T", Psc.Exec.scalar_int s.steps) ]

let out_box (s : stencil) = [ (0, s.n + 1) ]

let arb_stencil =
  QCheck.make gen_stencil ~print:(fun s -> source_of s)

let bit_equal s r1 r2 =
  Util.max_diff
    (List.assoc "Out" r1.Psc.Exec.outputs)
    (List.assoc "Out" r2.Psc.Exec.outputs)
    (out_box s)
  = 0.0

let schedule_shape_prop =
  QCheck.Test.make ~count:150 ~name:"space loop kind follows the west reference"
    arb_stencil (fun s ->
      let tp = Psc.load_string (source_of s) in
      let sc = Psc.schedule (Psc.default_module tp) in
      let compact =
        Psc.Flowchart.to_compact_string (Psc.default_module tp) sc.Psc.sc_flowchart
      in
      match s.west with
      | Some _ -> Util.contains compact "DO S (DO X (eq.3))"
      | None -> Util.contains compact "DO S (DOALL X (eq.3))")

let window_prop =
  QCheck.Test.make ~count:120 ~name:"windowed equals full allocation"
    arb_stencil (fun s ->
      let tp = Psc.load_string (source_of s) in
      let inputs = inputs_of s in
      let r1 = Psc.run ~use_windows:true tp ~inputs in
      let r2 = Psc.run ~use_windows:false tp ~inputs in
      List.assoc "A" r1.Psc.Exec.allocated = 2 * (s.n + 2)
      && bit_equal s r1 r2)

let parallel_prop =
  QCheck.Test.make ~count:40 ~name:"pool execution equals sequential"
    arb_stencil (fun s ->
      let tp = Psc.load_string (source_of s) in
      let inputs = inputs_of s in
      let r1 = Psc.run tp ~inputs in
      let r2 = Psc.Pool.with_pool 3 (fun pool -> Psc.run ~pool tp ~inputs) in
      bit_equal s r1 r2)

let fuse_prop =
  QCheck.Test.make ~count:120 ~name:"fused schedule equals plain"
    arb_stencil (fun s ->
      let tp = Psc.load_string (source_of s) in
      let inputs = inputs_of s in
      let r1 = Psc.run tp ~inputs in
      let r2 = Psc.run ~fuse:true tp ~inputs in
      bit_equal s r1 r2)

let work_prop =
  QCheck.Test.make ~count:120 ~name:"runtime evaluations equal analytic work"
    arb_stencil (fun s ->
      let tp = Psc.load_string (source_of s) in
      let r = Psc.run ~stats:true tp ~inputs:(inputs_of s) in
      let c = Psc.work_span tp ~env:[ ("N", s.n); ("T", s.steps) ] in
      Option.get r.Psc.Exec.evaluations = int_of_float c.Psc.Analysis.work)

let hyperplane_prop =
  QCheck.Test.make ~count:60
    ~name:"hyperplane + sink + trim preserves iterative stencils" arb_stencil
    (fun s ->
      (* Force a same-sweep reference so the transform is meaningful. *)
      let s = { s with west = Some (Option.value s.west ~default:0.25) } in
      let tp = Psc.load_string (source_of s) in
      let inputs = inputs_of s in
      match Psc.hyperplane ~target:"A" tp with
      | exception Psc.Error _ -> QCheck.assume_fail ()
      | tp', tr ->
        let name = tr.Psc.Transform.tr_module.Psc.Ast.m_name in
        let r1 = Psc.run tp ~inputs in
        let r2 = Psc.run ~name ~sink:true ~trim:true tp' ~inputs in
        bit_equal s r1 r2)

let have_cc = Sys.command "command -v cc > /dev/null 2>&1" = 0

(* Generated C vs interpreter, on random programs (small count: each case
   costs a compiler invocation). *)
let c_differential_prop =
  QCheck.Test.make ~count:8 ~name:"generated C equals the interpreter"
    arb_stencil (fun s ->
      if not have_cc then true
      else begin
        let tp = Psc.load_string (source_of s) in
        let scalars = [ ("N", s.n); ("T", s.steps) ] in
        let c = Psc.emit_c_main ~scalars tp in
        let dir = Filename.temp_file "psc_rand" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        let src = Filename.concat dir "p.c" in
        let exe = Filename.concat dir "p" in
        let oc = open_out src in
        output_string oc c;
        close_out oc;
        if Sys.command (Printf.sprintf "cc -O1 -o %s %s -lm 2>/dev/null" exe src) <> 0
        then false
        else begin
          let ic = Unix.open_process_in exe in
          let line = input_line ic in
          ignore (Unix.close_process_in ic);
          let c_sum =
            match String.split_on_char ' ' line with
            | [ _; v ] -> float_of_string v
            | _ -> nan
          in
          (* Interpreter with the same deterministic fill. *)
          let inputs =
            [ ("Init",
               Psc.Exec.array_real
                 ~dims:[ (0, s.n + 1) ]
                 (fun ix -> Ps_models.Models.fill_value ix.(0)));
              ("N", Psc.Exec.scalar_int s.n);
              ("T", Psc.Exec.scalar_int s.steps) ]
          in
          let r = Psc.run tp ~inputs in
          let i_sum =
            Util.checksum (List.assoc "Out" r.Psc.Exec.outputs) (out_box s)
          in
          Float.equal c_sum i_sum
        end
      end)

(* A couple of deterministic deep cases kept out of qcheck so failures
   stay reproducible in CI logs. *)
let pinned_cases =
  [ t "west-only stencil (pure carried dependence in X)" (fun () ->
        let s =
          { west = Some 0.4; prev_c = 0.3; prev_w = None; prev_e = None;
            bias = 0.05; n = 12; steps = 8 }
        in
        let tp = Psc.load_string (source_of s) in
        let inputs = inputs_of s in
        let r1 = Psc.run tp ~inputs in
        let tp', tr = Psc.hyperplane ~target:"A" tp in
        let name = tr.Psc.Transform.tr_module.Psc.Ast.m_name in
        let r2 = Psc.run ~name ~sink:true ~trim:true tp' ~inputs in
        Alcotest.(check bool) "equal" true (bit_equal s r1 r2));
    t "full stencil with every term" (fun () ->
        let s =
          { west = Some 0.2; prev_c = 0.2; prev_w = Some 0.2; prev_e = Some 0.2;
            bias = -0.1; n = 20; steps = 10 }
        in
        let tp = Psc.load_string (source_of s) in
        let inputs = inputs_of s in
        let r1 = Psc.run ~use_windows:true tp ~inputs in
        let r2 = Psc.run ~use_windows:false ~fuse:true tp ~inputs in
        Alcotest.(check bool) "equal" true (bit_equal s r1 r2)) ]

let () =
  Alcotest.run "random"
    [ ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ schedule_shape_prop; window_prop; parallel_prop; fuse_prop;
           work_prop; hyperplane_prop; c_differential_prop ]);
      ("pinned", pinned_cases) ]
