(* Elaboration tests: slice expansion, index binding, type flattening,
   type checking, and every diagnostic path of the front end. *)

open Ps_sem

let t name f = Alcotest.test_case name `Quick f

let elab src =
  Elab.elab_program (Ps_lang.Parser.program_of_string src)

let first src = List.hd (elab src).Elab.ep_modules

let expect_sem_error ?(substring = "") src =
  match elab src with
  | exception Elab.Error (m, _) ->
    if substring <> "" && not (Util.contains m substring) then
      Alcotest.failf "error %S does not mention %S" m substring
  | _ -> Alcotest.fail "expected a semantic error"

(* A small valid module wrapper for expression-level tests. *)
let wrap ?(types = "") ?(vars = "") ?(params = "x: real") ?(result = "y: real") eqs =
  Printf.sprintf
    "T: module (%s): [%s];%s%s define %s end T;" params result
    (if types = "" then "" else " type " ^ types)
    (if vars = "" then "" else " var " ^ vars)
    eqs

let expansion_tests =
  [ t "eq.1 of Fig. 1 expands over I and J" (fun () ->
        let em = first Ps_models.Models.jacobi in
        let q = List.hd em.Elab.em_eqs in
        Alcotest.(check (list string)) "indices" [ "I"; "J" ]
          (List.map (fun ix -> ix.Elab.ix_var) q.Elab.q_indices);
        match q.Elab.q_defs with
        | [ { Elab.df_subs = [ Elab.Sub_fixed _; Elab.Sub_index _; Elab.Sub_index _ ]; _ } ]
          -> ()
        | _ -> Alcotest.fail "expected fixed+index+index");
    t "eq.2 rhs gains the expanded subscripts" (fun () ->
        let em = first Ps_models.Models.jacobi in
        let q = List.nth em.Elab.em_eqs 1 in
        Alcotest.(check string) "expanded" "A[maxK, I, J]"
          (Ps_lang.Pretty.expr_to_string q.Elab.q_rhs));
    t "expansion pushes through if branches" (fun () ->
        let em =
          first
            (wrap ~types:"I = 1 .. 4;"
               ~params:"c: bool; A: array[I] of real; B: array[I] of real"
               ~result:"Y: array[I] of real" "Y = if c then A else B;")
        in
        let q = List.hd em.Elab.em_eqs in
        Alcotest.(check string) "pushed" "if c then A[I] else B[I]"
          (Ps_lang.Pretty.expr_to_string q.Elab.q_rhs));
    t "module-call equation is not expanded" (fun () ->
        let ep = elab Ps_models.Models.two_module in
        let driver =
          List.find (fun m -> m.Elab.em_name = "Driver") ep.Elab.ep_modules
        in
        let q = List.hd driver.Elab.em_eqs in
        Alcotest.(check int) "no indices" 0 (List.length q.Elab.q_indices));
    t "equation numbering follows source order" (fun () ->
        let em = first Ps_models.Models.jacobi in
        Alcotest.(check (list string)) "names" [ "eq.1"; "eq.2"; "eq.3" ]
          (List.map (fun q -> q.Elab.q_name) em.Elab.em_eqs)) ]

let type_tests =
  [ t "nested arrays flatten" (fun () ->
        let em = first Ps_models.Models.jacobi in
        let a = Elab.data_exn em "A" in
        Alcotest.(check int) "3 dims" 3 (List.length (Stypes.dims a.Elab.d_ty)));
    t "flattened element type" (fun () ->
        let em = first Ps_models.Models.jacobi in
        let a = Elab.data_exn em "A" in
        Alcotest.(check bool) "real elem" true
          (Stypes.equal_ty (Stypes.elem_ty a.Elab.d_ty) (Stypes.Scalar Stypes.Sreal)));
    t "subrange synonym" (fun () ->
        let em =
          first
            (wrap ~types:"I = 1 .. 4; I2 = I;"
               ~params:"A: array[I, I2] of real" ~result:"y: real" "y = A[1, 1];")
        in
        let a = Elab.data_exn em "A" in
        (match Stypes.dims a.Elab.d_ty with
         | [ d1; d2 ] ->
           Alcotest.(check bool) "same bounds" true (Stypes.equal_subrange d1 d2)
         | _ -> Alcotest.fail "2 dims"));
    t "enum type and constructors" (fun () ->
        let em = first Ps_models.Models.classify in
        Alcotest.(check (list string)) "ctors" [ "Small"; "Medium"; "Large" ]
          (List.assoc "Kind" em.Elab.em_enums));
    t "record type elaborates" (fun () ->
        let em =
          first
            (wrap ~types:"S = record a : real; b : int end;" ~params:"r: S"
               ~result:"y: real" "y = r.a;")
        in
        let r = Elab.data_exn em "r" in
        match r.Elab.d_ty with
        | Stypes.Record [ ("a", _); ("b", _) ] -> ()
        | _ -> Alcotest.fail "record type") ]

let error_tests =
  [ t "unknown identifier" (fun () ->
        expect_sem_error ~substring:"unknown identifier" (wrap "y = nope;"));
    t "unknown type" (fun () ->
        expect_sem_error ~substring:"unknown type" (wrap ~vars:"z: Mystery;" "y = x; z = x;"));
    t "redefining an input" (fun () ->
        expect_sem_error ~substring:"input" (wrap "x = 1.0; y = x;"));
    t "defining an undeclared variable" (fun () ->
        expect_sem_error ~substring:"undeclared" (wrap "y = x; z = x;"));
    t "too many subscripts" (fun () ->
        expect_sem_error ~substring:"subscripts"
          (wrap ~params:"A: array[1 .. 3] of real" "y = A[1, 2];"));
    t "boolean arithmetic" (fun () ->
        expect_sem_error ~substring:"arithmetic" (wrap "y = x + true;"));
    t "non-boolean condition" (fun () ->
        expect_sem_error ~substring:"boolean" (wrap "y = if x then 1.0 else 2.0;"));
    t "branch type mismatch" (fun () ->
        expect_sem_error ~substring:"different types"
          (wrap "y = if x > 0.0 then 1.0 else false;"));
    t "real equation for int variable" (fun () ->
        expect_sem_error ~substring:"type" (wrap ~result:"y: int" "y = 1.5;"));
    t "div requires ints" (fun () ->
        expect_sem_error ~substring:"div" (wrap "y = x div 2;"));
    t "duplicate declaration" (fun () ->
        expect_sem_error ~substring:"duplicate"
          (wrap ~vars:"z: real; z: int;" "y = x; z = x;"));
    t "duplicate index variable needs a synonym" (fun () ->
        expect_sem_error ~substring:"synonym"
          (wrap ~types:"I = 1 .. 3;" ~vars:"A: array[I, I] of real;"
             "A[I, I] = x; y = A[1, 1];"));
    t "array dimension must be a subrange" (fun () ->
        expect_sem_error ~substring:"subrange"
          (wrap ~types:"C = (r, g);" ~params:"A: array[C] of real" "y = A[1];"));
    t "call arity" (fun () ->
        expect_sem_error ~substring:"argument"
          ("A: module (x: int): [y: int]; define y = x; end A;\n\
            B: module (x: int): [y: int]; define y = A(x, x); end B;"));
    t "call to unknown module" (fun () ->
        expect_sem_error ~substring:"unknown function" (wrap "y = Mystery(x);"));
    t "multi-result module in a scalar position" (fun () ->
        expect_sem_error ~substring:"several results"
          ("A: module (x: int): [y: int; z: int]; define y = x; z = x; end A;\n\
            B: module (x: int): [a: int]; define a = A(x); end B;"));
    t "multi-result count mismatch" (fun () ->
        expect_sem_error ~substring:"results"
          ("A: module (x: int): [y: int; z: int; w: int]; define y = x; z = x; \
            w = x; end A;\n\
            B: module (x: int): [a: int; b: int]; define a, b = A(x); end B;"));
    t "subscript must be int" (fun () ->
        expect_sem_error ~substring:"subscript"
          (wrap ~params:"A: array[1 .. 3] of real" "y = A[1.5];"));
    t "field of non-record" (fun () ->
        expect_sem_error ~substring:"non-record" (wrap "y = x.f;"));
    t "unknown field" (fun () ->
        expect_sem_error ~substring:"field"
          (wrap ~types:"S = record a : real end;" ~params:"r: S" "y = r.b;"));
    t "duplicate module names" (fun () ->
        expect_sem_error ~substring:"duplicate"
          ("A: module (x: int): [y: int]; define y = x; end A;\n\
            A: module (x: int): [y: int]; define y = x; end A;")) ]

let builtin_tests =
  [ t "sqrt types as real" (fun () -> ignore (first (wrap "y = sqrt(x);")));
    t "abs preserves int" (fun () ->
        ignore (first (wrap ~result:"y: int" ~params:"x: int" "y = abs(x);")));
    t "min of ints is int" (fun () ->
        ignore (first (wrap ~result:"y: int" ~params:"x: int" "y = min(x, 3);")));
    t "min of mixed is real" (fun () ->
        expect_sem_error ~substring:"type"
          (wrap ~result:"y: int" "y = min(x, 3);"));
    t "sqrt of bool rejected" (fun () ->
        expect_sem_error ~substring:"numeric" (wrap "y = sqrt(true);")) ]

let signature_tests =
  [ t "two-module program elaborates" (fun () ->
        let ep = elab Ps_models.Models.two_module in
        Alcotest.(check int) "3 modules" 3 (List.length ep.Elab.ep_modules));
    t "forward reference to a later module" (fun () ->
        (* Driver precedes Relaxation in the source. *)
        let ep = elab Ps_models.Models.two_module in
        let driver = List.find (fun m -> m.Elab.em_name = "Driver") ep.Elab.ep_modules in
        Alcotest.(check int) "2 eqs" 2 (List.length driver.Elab.em_eqs)) ]

let () =
  Alcotest.run "elab"
    [ ("slice expansion", expansion_tests);
      ("types", type_tests);
      ("diagnostics", error_tests);
      ("builtins", builtin_tests);
      ("signatures", signature_tests) ]
