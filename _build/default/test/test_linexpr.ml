(* Linear-form tests: conversion, arithmetic, decidable comparisons, the
   bounded Farkas prover, and algebraic properties under qcheck. *)

open Ps_sem

let t name f = Alcotest.test_case name `Quick f

let le src =
  match Linexpr.of_expr (Ps_lang.Parser.expr_of_string src) with
  | Some l -> l
  | None -> Alcotest.failf "%s is not linear" src

let conversion_tests =
  [ t "constant" (fun () ->
        Alcotest.(check (option int)) "42" (Some 42) (Linexpr.const_value (le "42")));
    t "variable" (fun () ->
        Alcotest.(check string) "M" "M" (Linexpr.to_string (le "M")));
    t "sum with constant" (fun () ->
        Alcotest.(check string) "M+1" "M + 1" (Linexpr.to_string (le "M + 1")));
    t "coefficients combine" (fun () ->
        Alcotest.(check string) "2M" "2*M" (Linexpr.to_string (le "M + M")));
    t "subtraction cancels" (fun () ->
        Alcotest.(check (option int)) "zero" (Some 0)
          (Linexpr.const_value (le "M - M")));
    t "constant times variable" (fun () ->
        Alcotest.(check string) "3K" "3*K" (Linexpr.to_string (le "3 * K")));
    t "variable times constant" (fun () ->
        Alcotest.(check string) "K3" "3*K" (Linexpr.to_string (le "K * 3")));
    t "negation" (fun () ->
        Alcotest.(check string) "-K" "-K" (Linexpr.to_string (le "-K")));
    t "paper's time equation" (fun () ->
        Alcotest.(check string) "2K+I+J" "I + J + 2*K"
          (Linexpr.to_string (le "2*K + I + J")));
    t "non-linear product rejected" (fun () ->
        Alcotest.(check bool) "none" true
          (Linexpr.of_expr (Ps_lang.Parser.expr_of_string "I * J") = None));
    t "division rejected" (fun () ->
        Alcotest.(check bool) "none" true
          (Linexpr.of_expr (Ps_lang.Parser.expr_of_string "I / 2") = None));
    t "if rejected" (fun () ->
        Alcotest.(check bool) "none" true
          (Linexpr.of_expr (Ps_lang.Parser.expr_of_string "if a then 1 else 2")
           = None)) ]

let comparison_tests =
  [ t "diff of equal forms" (fun () ->
        Alcotest.(check (option int)) "0" (Some 0)
          (Linexpr.diff_const (le "M + 1") (le "1 + M")));
    t "constant difference" (fun () ->
        Alcotest.(check (option int)) "3" (Some 3)
          (Linexpr.diff_const (le "M + 4") (le "M + 1")));
    t "incomparable forms" (fun () ->
        Alcotest.(check (option int)) "none" None
          (Linexpr.diff_const (le "M") (le "K")));
    t "equal" (fun () ->
        Alcotest.(check bool) "eq" true
          (Linexpr.equal (le "2*M + 1") (le "M + M + 1"))) ]

let eval_tests =
  [ t "evaluate with environment" (fun () ->
        let env v = if v = "M" then Some 10 else None in
        Alcotest.(check int) "2M+3" 23 (Linexpr.eval env (le "2*M + 3")));
    t "unbound variable raises" (fun () ->
        match Linexpr.eval (fun _ -> None) (le "M") with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument") ]

let prover_tests =
  let facts = [ Linexpr.sub (le "maxK") (le "2") (* maxK - 2 >= 0 *) ] in
  [ t "constant goal" (fun () ->
        Alcotest.(check bool) "5 >= 0" true
          (Linexpr.prove_nonneg ~assumptions:[] (le "5")));
    t "negative constant goal fails" (fun () ->
        Alcotest.(check bool) "-1 < 0" false
          (Linexpr.prove_nonneg ~assumptions:[] (le "0 - 1")));
    t "goal needing one assumption" (fun () ->
        Alcotest.(check bool) "maxK-1" true
          (Linexpr.prove_nonneg ~assumptions:facts (Linexpr.sub (le "maxK") (le "1"))));
    t "goal needing a multiplier of 2" (fun () ->
        Alcotest.(check bool) "2maxK-2" true
          (Linexpr.prove_nonneg ~assumptions:facts
             (Linexpr.sub (le "2 * maxK") (le "2"))));
    t "unprovable goal fails" (fun () ->
        Alcotest.(check bool) "5-maxK" false
          (Linexpr.prove_nonneg ~assumptions:facts
             (Linexpr.sub (le "5") (le "maxK"))));
    t "irrelevant assumptions ignored" (fun () ->
        let noisy = le "Z" :: facts in
        Alcotest.(check bool) "still proves" true
          (Linexpr.prove_nonneg ~assumptions:noisy
             (Linexpr.sub (le "maxK") (le "2")))) ]

(* --- qcheck algebraic properties --------------------------------- *)

let gen_lin : Linexpr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* const = int_range (-20) 20 in
  let* terms =
    list_size (int_range 0 3) (pair (oneofl [ "M"; "K"; "N" ]) (int_range (-5) 5))
  in
  return
    (List.fold_left
       (fun acc (v, c) -> Linexpr.add acc (Linexpr.scale c (Linexpr.of_var v)))
       (Linexpr.of_int const) terms)

let arb_lin = QCheck.make gen_lin ~print:Linexpr.to_string

let env v = match v with "M" -> Some 7 | "K" -> Some 3 | "N" -> Some 11 | _ -> None

let props =
  [ QCheck.Test.make ~name:"add commutes" ~count:300 (QCheck.pair arb_lin arb_lin)
      (fun (a, b) -> Linexpr.equal (Linexpr.add a b) (Linexpr.add b a));
    QCheck.Test.make ~name:"eval is linear over add" ~count:300
      (QCheck.pair arb_lin arb_lin) (fun (a, b) ->
        Linexpr.eval env (Linexpr.add a b)
        = Linexpr.eval env a + Linexpr.eval env b);
    QCheck.Test.make ~name:"scale multiplies eval" ~count:300
      (QCheck.pair (QCheck.int_range (-5) 5) arb_lin) (fun (k, a) ->
        Linexpr.eval env (Linexpr.scale k a) = k * Linexpr.eval env a);
    QCheck.Test.make ~name:"to_expr/of_expr round-trip" ~count:300 arb_lin
      (fun a ->
        match Linexpr.of_expr (Linexpr.to_expr a) with
        | Some a' -> Linexpr.equal a a'
        | None -> false);
    QCheck.Test.make ~name:"sub then add restores" ~count:300
      (QCheck.pair arb_lin arb_lin) (fun (a, b) ->
        Linexpr.equal (Linexpr.add (Linexpr.sub a b) b) a) ]

let () =
  Alcotest.run "linexpr"
    [ ("conversion", conversion_tests);
      ("comparison", comparison_tests);
      ("eval", eval_tests);
      ("prover", prover_tests);
      ("properties", List.map QCheck_alcotest.to_alcotest props) ]
