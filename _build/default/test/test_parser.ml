(* Parser tests: expression precedence, declarations, modules, the
   enum/subrange backtracking point, error reporting, and a qcheck
   round-trip property through the pretty-printer. *)

open Ps_lang

let t name f = Alcotest.test_case name `Quick f

let expr s = Parser.expr_of_string s

let show e = Pretty.expr_to_string e

(* Structural equality through the printer (locations differ). *)
let check_expr msg expected src =
  Alcotest.(check string) msg expected (show (expr src))

let expr_tests =
  [ t "addition is left associative" (fun () ->
        let e = expr "a - b - c" in
        match e.Ast.e with
        | Ast.Binop (Ast.Sub, { e = Ast.Binop (Ast.Sub, _, _); _ }, _) -> ()
        | _ -> Alcotest.fail "wrong associativity");
    t "mul binds tighter than add" (fun () ->
        check_expr "prec" "a + b * c" "a + b * c";
        let e = expr "a + b * c" in
        match e.Ast.e with
        | Ast.Binop (Ast.Add, _, { e = Ast.Binop (Ast.Mul, _, _); _ }) -> ()
        | _ -> Alcotest.fail "mul should nest under add");
    t "comparison binds looser than add" (fun () ->
        let e = expr "a + 1 < b" in
        match e.Ast.e with
        | Ast.Binop (Ast.Lt, _, _) -> ()
        | _ -> Alcotest.fail "lt should be at top");
    t "and binds tighter than or" (fun () ->
        let e = expr "a or b and c" in
        match e.Ast.e with
        | Ast.Binop (Ast.Or, _, { e = Ast.Binop (Ast.And, _, _); _ }) -> ()
        | _ -> Alcotest.fail "and under or");
    t "paper's boundary condition parses as ors of equalities" (fun () ->
        let e = expr "I = 0 or J = 0 or I = M+1 or J = M+1" in
        let rec count_ors e =
          match e.Ast.e with
          | Ast.Binop (Ast.Or, a, b) -> count_ors a + count_ors b
          | _ -> 1
        in
        Alcotest.(check int) "four disjuncts" 4 (count_ors e));
    t "unary minus" (fun () -> check_expr "neg" "-x + y" "-x + y");
    t "not" (fun () -> check_expr "not" "not a and b" "not a and b");
    t "div and mod keywords" (fun () ->
        let e = expr "a div b mod c" in
        match e.Ast.e with
        | Ast.Binop (Ast.Imod, { e = Ast.Binop (Ast.Idiv, _, _); _ }, _) -> ()
        | _ -> Alcotest.fail "div/mod chain");
    t "subscripts" (fun () ->
        let e = expr "A[K-1, I, J+1]" in
        match e.Ast.e with
        | Ast.Index ({ e = Ast.Var "A"; _ }, [ _; _; _ ]) -> ()
        | _ -> Alcotest.fail "3 subscripts expected");
    t "chained subscripts flatten in printer" (fun () ->
        check_expr "chain" "A[k][i]" "A[k][i]");
    t "field access" (fun () ->
        let e = expr "s.x + s.v" in
        match e.Ast.e with
        | Ast.Binop (Ast.Add, { e = Ast.Field (_, "x"); _ }, { e = Ast.Field (_, "v"); _ }) -> ()
        | _ -> Alcotest.fail "fields");
    t "call with arguments" (fun () ->
        let e = expr "F(a, b + 1)" in
        match e.Ast.e with
        | Ast.Call ("F", [ _; _ ]) -> ()
        | _ -> Alcotest.fail "call");
    t "call with no arguments" (fun () ->
        match (expr "F()").Ast.e with
        | Ast.Call ("F", []) -> ()
        | _ -> Alcotest.fail "nullary call");
    t "if expression" (fun () ->
        match (expr "if c then 1 else 2").Ast.e with
        | Ast.If (_, _, _) -> ()
        | _ -> Alcotest.fail "if");
    t "nested if in else" (fun () ->
        match (expr "if a then 1 else if b then 2 else 3").Ast.e with
        | Ast.If (_, _, { e = Ast.If (_, _, _); _ }) -> ()
        | _ -> Alcotest.fail "nested if");
    t "parenthesized expression" (fun () ->
        let e = expr "(a + b) * c" in
        match e.Ast.e with
        | Ast.Binop (Ast.Mul, { e = Ast.Binop (Ast.Add, _, _); _ }, _) -> ()
        | _ -> Alcotest.fail "parens");
    t "trailing input rejected" (fun () ->
        match expr "a + b c" with
        | exception Parser.Error (m, _) ->
          Util.check_bool "mentions trailing" true (Util.contains m "trailing")
        | _ -> Alcotest.fail "expected error") ]

(* --- types and declarations ------------------------------------- *)

let module_of src = Parser.module_of_string src

let type_tests =
  [ t "subrange type decl" (fun () ->
        let m = module_of "M: module (): [x: int]; type I = 0 .. 10; define x = 1; end M;" in
        match (List.hd m.Ast.m_types).Ast.td_def.Ast.t with
        | Ast.Tsubrange _ -> ()
        | _ -> Alcotest.fail "subrange");
    t "multi-name type decl" (fun () ->
        let m = module_of "M: module (): [x: int]; type I, J = 0 .. 5; define x = 1; end M;" in
        Alcotest.(check (list string)) "names" [ "I"; "J" ]
          (List.hd m.Ast.m_types).Ast.td_names);
    t "enum type" (fun () ->
        let m =
          module_of
            "M: module (): [x: int]; type Color = (red, green, blue); define x = 1; end M;"
        in
        match (List.hd m.Ast.m_types).Ast.td_def.Ast.t with
        | Ast.Tenum [ "red"; "green"; "blue" ] -> ()
        | _ -> Alcotest.fail "enum");
    t "parenthesized subrange bound is not an enum" (fun () ->
        let m =
          module_of
            "M: module (n: int): [x: int]; type I = (n) .. (n + 3); define x = 1; end M;"
        in
        match (List.hd m.Ast.m_types).Ast.td_def.Ast.t with
        | Ast.Tsubrange _ -> ()
        | _ -> Alcotest.fail "subrange with parens");
    t "record type" (fun () ->
        let m =
          module_of
            "M: module (): [x: int]; type S = record a : real; b : int end; define x = 1; end M;"
        in
        match (List.hd m.Ast.m_types).Ast.td_def.Ast.t with
        | Ast.Trecord [ ("a", _); ("b", _) ] -> ()
        | _ -> Alcotest.fail "record");
    t "array with named dims" (fun () ->
        let m =
          module_of
            "M: module (A: array[I,J] of real): [x: int]; type I, J = 0 .. 3; define x = 1; end M;"
        in
        match (List.hd m.Ast.m_params).Ast.p_type.Ast.t with
        | Ast.Tarray ([ { t = Ast.Tname "I"; _ }; { t = Ast.Tname "J"; _ } ], _) -> ()
        | _ -> Alcotest.fail "array dims");
    t "array with inline subrange (Fig. 1 style)" (fun () ->
        let m =
          module_of
            "M: module (k: int): [x: int]; var A: array [1 .. k] of real; define x = 1; end M;"
        in
        match (List.hd m.Ast.m_vars).Ast.vd_type.Ast.t with
        | Ast.Tarray ([ { t = Ast.Tsubrange _; _ } ], _) -> ()
        | _ -> Alcotest.fail "inline subrange");
    t "nested array type" (fun () ->
        let m =
          module_of
            "M: module (k: int): [x: int]; type I = 0 .. 3; var A: array [1 .. k] of array[I,I] of real; define x = 1; end M;"
        in
        match (List.hd m.Ast.m_vars).Ast.vd_type.Ast.t with
        | Ast.Tarray (_, { t = Ast.Tarray _; _ }) -> ()
        | _ -> Alcotest.fail "nested array") ]

let module_tests =
  [ t "Fig. 1 module parses with 3 equations" (fun () ->
        let m = module_of Ps_models.Models.jacobi in
        Alcotest.(check int) "equations" 3 (List.length m.Ast.m_eqs);
        Alcotest.(check string) "name" "Relaxation" m.Ast.m_name;
        Alcotest.(check int) "params" 3 (List.length m.Ast.m_params);
        Alcotest.(check int) "results" 1 (List.length m.Ast.m_results));
    t "module without type/var sections" (fun () ->
        let m = module_of "Tiny: module (x: int): [y: int]; define y = x + 1; end Tiny;" in
        Alcotest.(check int) "no types" 0 (List.length m.Ast.m_types);
        Alcotest.(check int) "no vars" 0 (List.length m.Ast.m_vars));
    t "several modules in one program" (fun () ->
        let p = Parser.program_of_string Ps_models.Models.two_module in
        Alcotest.(check int) "three modules" 3 (List.length p));
    t "end without module name" (fun () ->
        let m = module_of "T: module (x: int): [y: int]; define y = x; end;" in
        Alcotest.(check string) "name" "T" m.Ast.m_name);
    t "multi-variable lhs" (fun () ->
        let m =
          module_of "T: module (x: int): [a: int; b: int]; define a, b = F(x); end T;"
        in
        Alcotest.(check int) "two lhs" 2 (List.length (List.hd m.Ast.m_eqs).Ast.eq_lhs));
    t "lhs with constant subscript" (fun () ->
        let m =
          module_of
            "T: module (x: int): [y: int]; var A: array[1 .. 3] of int; define A[1] = x; A[2] = x; A[3] = x; y = A[2]; end T;"
        in
        let eq = List.hd m.Ast.m_eqs in
        Alcotest.(check int) "one sub" 1 (List.length (List.hd eq.Ast.eq_lhs).Ast.l_subs));
    t "missing semicolon is an error" (fun () ->
        match module_of "T: module (x: int): [y: int]; define y = x end T;" with
        | exception Parser.Error _ -> ()
        | _ -> Alcotest.fail "expected syntax error");
    t "error location points at the problem" (fun () ->
        match module_of "T: module (x int): [y: int]; define y = x; end T;" with
        | exception Parser.Error (_, span) ->
          Util.check_int "line" 1 span.Loc.start_p.Loc.line
        | _ -> Alcotest.fail "expected syntax error") ]

(* --- round-trip property ---------------------------------------- *)

let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "x"; "M"; "K" ] >|= Ast.var_e in
  let lit =
    oneof
      [ (int_range 0 99 >|= Ast.int_e);
        (float_range 0.0 10.0 >|= fun f -> Ast.mk (Ast.Real f));
        (bool >|= fun b -> Ast.mk (Ast.Bool b)) ]
  in
  fix
    (fun self n ->
      if n = 0 then oneof [ var; lit ]
      else
        let sub = self (n / 2) in
        oneof
          [ var; lit;
            (map2 (fun a b -> Ast.mk (Ast.Binop (Ast.Add, a, b))) sub sub);
            (map2 (fun a b -> Ast.mk (Ast.Binop (Ast.Mul, a, b))) sub sub);
            (map2 (fun a b -> Ast.mk (Ast.Binop (Ast.Sub, a, b))) sub sub);
            (map2 (fun a b -> Ast.mk (Ast.Binop (Ast.Lt, a, b))) sub sub);
            (map (fun a -> Ast.mk (Ast.Unop (Ast.Neg, a))) sub);
            (map3 (fun c t e -> Ast.mk (Ast.If (Ast.mk (Ast.Binop (Ast.Eq, c, c)), t, e))) sub sub sub);
            (map2 (fun a subs -> Ast.mk (Ast.Index (a, subs))) var (list_size (int_range 1 3) sub)) ])
    5

let roundtrip_prop =
  QCheck.Test.make ~name:"print/parse round-trip" ~count:500
    (QCheck.make gen_expr ~print:Pretty.expr_to_string)
    (fun e ->
      let printed = Pretty.expr_to_string e in
      match Parser.expr_of_string printed with
      | e' -> Ast.equal_expr e e'
      | exception _ -> false)

let roundtrip_module =
  [ t "module print/parse round-trip (all models)" (fun () ->
        List.iter
          (fun src ->
            let p = Parser.program_of_string src in
            let printed = Pretty.program_to_string p in
            let p' = Parser.program_of_string printed in
            let printed' = Pretty.program_to_string p' in
            Alcotest.(check string) "fixpoint" printed printed')
          [ Ps_models.Models.jacobi; Ps_models.Models.seidel;
            Ps_models.Models.heat1d; Ps_models.Models.matmul;
            Ps_models.Models.binomial; Ps_models.Models.prefix_sum;
            Ps_models.Models.two_module; Ps_models.Models.classify;
            Ps_models.Models.skewed ]) ]

let () =
  Alcotest.run "parser"
    [ ("expressions", expr_tests);
      ("types", type_tests);
      ("modules", module_tests);
      ("roundtrip", QCheck_alcotest.to_alcotest roundtrip_prop :: roundtrip_module) ]
