(* Scheduler tests (paper §3.3): the exact flowcharts of Figs. 5-7, the
   DO/DOALL distinction, virtual-dimension analysis (§3.4), the
   consistent-position and subscript-class rules of step 3, and the
   unschedulable diagnostics. *)

let t name f = Alcotest.test_case name `Quick f

let compact = Util.compact_schedule

let fig_tests =
  [ t "Fig. 6: Jacobi relaxation" (fun () ->
        Alcotest.(check string) "schedule"
          "DOALL I (DOALL J (eq.1)); DO K (DOALL I (DOALL J (eq.3))); DOALL I (DOALL J (eq.2))"
          (compact Ps_models.Models.jacobi));
    t "Fig. 7: revised relaxation is fully iterative" (fun () ->
        Alcotest.(check string) "schedule"
          "DOALL I (DOALL J (eq.1)); DO K (DO I (DO J (eq.3))); DOALL I (DOALL J (eq.2))"
          (compact Ps_models.Models.seidel));
    t "Fig. 5: component table" (fun () ->
        let tproj = Util.load Ps_models.Models.jacobi in
        let sc = Psc.schedule (Util.first tproj) in
        let comps =
          List.map
            (fun (c : Psc.Schedule.component_trace) ->
              List.sort compare c.Psc.Schedule.ct_nodes)
            sc.Psc.sc_result.Psc.Schedule.r_components
        in
        Alcotest.(check int) "7 components" 7 (List.length comps);
        Alcotest.(check bool) "recursive comp present" true
          (List.mem [ "A"; "eq.3" ] comps));
    t "Fig. 5: null flowcharts for data components" (fun () ->
        let tproj = Util.load Ps_models.Models.jacobi in
        let sc = Psc.schedule (Util.first tproj) in
        List.iter
          (fun (c : Psc.Schedule.component_trace) ->
            match c.Psc.Schedule.ct_nodes with
            | [ n ] when not (Util.contains n "eq") ->
              Alcotest.(check int) (n ^ " null") 0
                (List.length c.Psc.Schedule.ct_flowchart)
            | _ -> ())
          sc.Psc.sc_result.Psc.Schedule.r_components) ]

let model_tests =
  [ t "heat1d: time iterative, space parallel" (fun () ->
        Alcotest.(check string) "schedule"
          "DOALL X (eq.1); DO T (DOALL X (eq.3)); DOALL X (eq.2)"
          (compact Ps_models.Models.heat1d));
    t "matmul: reduction axis is the only DO" (fun () ->
        Alcotest.(check string) "schedule"
          "DOALL I (DOALL J (eq.1)); DO K (DOALL I (DOALL J (eq.2))); DOALL I (DOALL J (eq.3))"
          (compact Ps_models.Models.matmul));
    t "binomial: level iterative, row parallel" (fun () ->
        Alcotest.(check string) "schedule"
          "DOALL R (eq.1); DO Lvl (DOALL R (eq.2)); DOALL R (eq.3)"
          (compact Ps_models.Models.binomial));
    t "prefix sum: no parallelism anywhere in the recurrence" (fun () ->
        Alcotest.(check string) "schedule" "eq.1; DO I2 (eq.2); DOALL I (eq.3)"
          (compact Ps_models.Models.prefix_sum));
    t "skewed stencil still schedules on K" (fun () ->
        Alcotest.(check string) "schedule"
          "DOALL I (DOALL J (eq.1)); DO K (DOALL I (DOALL J (eq.3))); DOALL I (DOALL J (eq.2))"
          (compact Ps_models.Models.skewed)) ]

let window_tests =
  [ t "Jacobi: dimension 1 of A is virtual with window 2 (sec. 3.4)" (fun () ->
        Alcotest.(check (list (triple string int int))) "windows"
          [ ("A", 0, 2) ]
          (Util.windows_of Ps_models.Models.jacobi));
    t "revised relaxation: same window (paper text)" (fun () ->
        Alcotest.(check (list (triple string int int))) "windows"
          [ ("A", 0, 2) ]
          (Util.windows_of Ps_models.Models.seidel));
    t "matmul accumulator windows to 2 planes" (fun () ->
        Alcotest.(check (list (triple string int int))) "windows"
          [ ("S", 0, 2) ]
          (Util.windows_of Ps_models.Models.matmul));
    t "offset -2 gives window 3" (fun () ->
        let src =
          {|
Fib: module (N: int): [f: int];
type
  I = 2 .. N;
var
  F: array [0 .. N] of int;
define
  F[0] = 0;
  F[1] = 1;
  F[I] = F[I-1] + F[I-2];
  f = F[N];
end Fib;
|}
        in
        Alcotest.(check (list (triple string int int))) "windows"
          [ ("F", 0, 3) ]
          (Util.windows_of src));
    t "inputs and results are never windowed" (fun () ->
        let ws = Util.windows_of Ps_models.Models.jacobi in
        List.iter
          (fun (d, _, _) ->
            Alcotest.(check bool) "local only" true (d = "A"))
          ws);
    t "spatial dimensions with +1 offsets are not virtual" (fun () ->
        let ws = Util.windows_of Ps_models.Models.jacobi in
        Alcotest.(check bool) "no window on dims 1/2" true
          (List.for_all (fun (_, dim, _) -> dim = 0) ws)) ]

let rule_tests =
  [ t "paper footnote: inconsistent positions are rejected" (fun () ->
        (* A[I,J] = A[J,I-1] + ... : I and J are not in a consistent
           position; with no other schedulable dimension this cannot be
           scheduled. *)
        let src =
          {|
Twist: module (N: int): [y: real];
type
  I, J = 1 .. N;
var
  A: array [I, J] of real;
define
  A[I, J] = if (I = 1) or (J = 1) then 1.0 else A[J, I-1] + 1.0;
  y = A[N, N];
end Twist;
|}
        in
        Util.expect_error ~substring:"cannot be scheduled" (fun () ->
            Util.compact_schedule src));
    t "seidel needs no error (K is schedulable)" (fun () ->
        ignore (compact Ps_models.Models.seidel));
    t "true cyclic dependence is unschedulable" (fun () ->
        (* A[I] depends on A[I+1] and A[I-1]: no dimension qualifies. *)
        let src =
          {|
Cyc: module (N: int): [y: real];
type
  I = 1 .. N;
var
  A: array [0 .. N+1] of real;
define
  A[I] = A[I-1] + A[I+1];
  A[0] = 0.0;
  A[N+1] = 0.0;
  y = A[1];
end Cyc;
|}
        in
        Util.expect_error ~substring:"cannot be scheduled" (fun () ->
            Util.compact_schedule src));
    t "diagnostic names the offending component" (fun () ->
        let src =
          {|
Cyc: module (N: int): [y: real];
type
  I = 1 .. N;
var
  A: array [0 .. N+1] of real;
define
  A[I] = A[I-1] + A[I+1];
  A[0] = 0.0;
  A[N+1] = 0.0;
  y = A[1];
end Cyc;
|}
        in
        (match Util.compact_schedule src with
         | exception Psc.Error m ->
           Alcotest.(check bool) "mentions A" true (Util.contains m "A");
           Alcotest.(check bool) "suggests hyperplane" true
             (Util.contains m "hyperplane")
         | _ -> Alcotest.fail "expected error"));
    t "identity self-reference cannot be scheduled" (fun () ->
        let src =
          {|
Selfy: module (N: int): [y: real];
type
  I = 1 .. N;
var
  A: array [I] of real;
define
  A[I] = A[I] + 1.0;
  y = A[1];
end Selfy;
|}
        in
        Util.expect_error (fun () -> Util.compact_schedule src)) ]

let structure_tests =
  [ t "loop counts: jacobi has 6 DOALLs and 1 DO" (fun () ->
        let tp = Util.load Ps_models.Models.jacobi in
        let sc = Psc.schedule (Util.first tp) in
        Alcotest.(check int) "DOALL" 6
          (Psc.Flowchart.count_loops ~kind:Psc.Flowchart.Parallel sc.Psc.sc_flowchart);
        Alcotest.(check int) "DO" 1
          (Psc.Flowchart.count_loops ~kind:Psc.Flowchart.Iterative sc.Psc.sc_flowchart));
    t "seidel has 4 DOALLs and 3 DOs" (fun () ->
        let tp = Util.load Ps_models.Models.seidel in
        let sc = Psc.schedule (Util.first tp) in
        Alcotest.(check int) "DOALL" 4
          (Psc.Flowchart.count_loops ~kind:Psc.Flowchart.Parallel sc.Psc.sc_flowchart);
        Alcotest.(check int) "DO" 3
          (Psc.Flowchart.count_loops ~kind:Psc.Flowchart.Iterative sc.Psc.sc_flowchart));
    t "every equation appears exactly once in the flowchart" (fun () ->
        List.iter
          (fun src ->
            let tp = Util.load src in
            let em = Util.first tp in
            let sc = Psc.schedule em in
            let eqs = Psc.Flowchart.equations sc.Psc.sc_flowchart in
            Alcotest.(check int) "all eqs" (List.length em.Psc.Elab.em_eqs)
              (List.length eqs);
            Alcotest.(check bool) "no duplicates" true
              (List.length (List.sort_uniq compare eqs) = List.length eqs))
          [ Ps_models.Models.jacobi; Ps_models.Models.seidel;
            Ps_models.Models.heat1d; Ps_models.Models.matmul;
            Ps_models.Models.binomial; Ps_models.Models.prefix_sum;
            Ps_models.Models.classify; Ps_models.Models.skewed ]);
    t "tree rendering matches Fig. 6 layout" (fun () ->
        let tp = Util.load Ps_models.Models.jacobi in
        let em = Util.first tp in
        let sc = Psc.schedule em in
        let s = Psc.flowchart_string sc in
        Alcotest.(check bool) "DO K present" true (Util.contains s "DO K (");
        Alcotest.(check bool) "DOALL I present" true (Util.contains s "DOALL I ("));
    t "dimension order follows the declaration (K before I before J)" (fun () ->
        let tp = Util.load Ps_models.Models.jacobi in
        let sc = Psc.schedule (Util.first tp) in
        let rec find_loop fc =
          List.find_map
            (function
              | Psc.Flowchart.D_loop l when l.Psc.Flowchart.lp_kind = Psc.Flowchart.Iterative ->
                Some l
              | Psc.Flowchart.D_loop l -> find_loop l.Psc.Flowchart.lp_body
              | _ -> None)
            fc
        in
        match find_loop sc.Psc.sc_flowchart with
        | Some l -> Alcotest.(check string) "outer loop" "K" l.Psc.Flowchart.lp_var
        | None -> Alcotest.fail "no iterative loop") ]

(* Multi-equation recursive component: two mutually dependent arrays in
   one MSCC must share the loop. *)
let mutual_tests =
  [ t "mutually recursive arrays schedule into one DO loop" (fun () ->
        let src =
          {|
Mutual: module (N: int): [y: real];
type
  T = 2 .. N;
var
  A: array [1 .. N] of real;
  B: array [1 .. N] of real;
define
  A[1] = 1.0;
  B[1] = 2.0;
  A[T] = B[T-1] + 1.0;
  B[T] = A[T-1] * 2.0;
  y = A[N] + B[N];
end Mutual;
|}
        in
        let s = compact src in
        Alcotest.(check bool) "one DO T with both eqs" true
          (Util.contains s "DO T (eq.3; eq.4)"
           || Util.contains s "DO T (eq.4; eq.3)"));
    t "mutually recursive arrays both get windows" (fun () ->
        let src =
          {|
Mutual: module (N: int): [y: real];
type
  T = 2 .. N;
var
  A: array [1 .. N] of real;
  B: array [1 .. N] of real;
define
  A[1] = 1.0;
  B[1] = 2.0;
  A[T] = B[T-1] + 1.0;
  B[T] = A[T-1] * 2.0;
  y = A[N] + B[N];
end Mutual;
|}
        in
        let ws = List.sort compare (Util.windows_of src) in
        Alcotest.(check (list (triple string int int))) "windows"
          [ ("A", 0, 2); ("B", 0, 2) ]
          ws) ]

let () =
  Alcotest.run "schedule"
    [ ("paper figures", fig_tests);
      ("models", model_tests);
      ("virtual dimensions", window_tests);
      ("step-3 rules", rule_tests);
      ("structure", structure_tests);
      ("mutual recursion", mutual_tests) ]
