(* Extraction-sinking tests: the "unrotate" of paper §4 that restores
   the 3-plane window on the transformed array, its soundness conditions,
   and execution equivalence. *)

let t name f = Alcotest.test_case name `Quick f

(* Transformed Seidel module, scheduled with and without sinking. *)
let transformed () =
  let tp = Util.load Ps_models.Models.seidel in
  let tp', tr = Psc.hyperplane ~target:"A" tp in
  let name = tr.Psc.Transform.tr_module.Psc.Ast.m_name in
  (tp', name, tr)

let sink_tests =
  [ t "sinking recovers the paper's window of 3" (fun () ->
        let tp', name, tr = transformed () in
        let em = Psc.find_module tp' name in
        let sc = Psc.schedule ~sink:true em in
        let w =
          List.find
            (fun (w : Psc.Schedule.window) ->
              w.Psc.Schedule.w_data = tr.Psc.Transform.tr_new_name)
            sc.Psc.sc_windows
        in
        Alcotest.(check int) "dim" 0 w.Psc.Schedule.w_dim;
        Alcotest.(check int) "window" 3 w.Psc.Schedule.w_size);
    t "without sinking the transformed array is fully allocated" (fun () ->
        let tp', name, tr = transformed () in
        let em = Psc.find_module tp' name in
        let sc = Psc.schedule ~sink:false em in
        Alcotest.(check bool) "no window" true
          (not
             (List.exists
                (fun (w : Psc.Schedule.window) ->
                  w.Psc.Schedule.w_data = tr.Psc.Transform.tr_new_name)
                sc.Psc.sc_windows)));
    t "the sunk equation solves the innermost index" (fun () ->
        let tp', name, _ = transformed () in
        let em = Psc.find_module tp' name in
        let sc = Psc.schedule ~sink:true em in
        match sc.Psc.sc_sunk with
        | [ s ] ->
          Alcotest.(check string) "loop" "Kp" s.Psc.Sink.sk_loop_var;
          Alcotest.(check string) "solved" "J" s.Psc.Sink.sk_solved_var;
          Alcotest.(check int) "window" 3 s.Psc.Sink.sk_window
        | l -> Alcotest.failf "expected one sunk equation, got %d" (List.length l));
    t "flowchart contains the SOLVE descriptor inside the DO loop" (fun () ->
        let tp', name, _ = transformed () in
        let em = Psc.find_module tp' name in
        let sc = Psc.schedule ~sink:true em in
        let s = Psc.flowchart_string sc in
        Alcotest.(check bool) "SOLVE J" true (Util.contains s "SOLVE J");
        (* The extraction no longer appears after the loop at top level. *)
        let top_after_loop =
          match sc.Psc.sc_flowchart with
          | [ Psc.Flowchart.D_loop _ ] -> true
          | _ -> false
        in
        Alcotest.(check bool) "everything inside the loop" true top_after_loop);
    t "jacobi is unaffected by the sink pass" (fun () ->
        (* Its extraction newA = A[maxK] is an upper-bound reference and
           rule 2 already applies; there is no multi-variable subscript
           to solve, so nothing is sunk. *)
        let tp = Util.load Ps_models.Models.jacobi in
        let sc = Psc.schedule ~sink:true (Util.first tp) in
        Alcotest.(check int) "nothing sunk" 0 (List.length sc.Psc.sc_sunk);
        Alcotest.(check (list (triple string int int))) "window unchanged"
          [ ("A", 0, 2) ]
          (List.map
             (fun (w : Psc.Schedule.window) ->
               (w.Psc.Schedule.w_data, w.Psc.Schedule.w_dim, w.Psc.Schedule.w_size))
             sc.Psc.sc_windows)) ]

let exec_tests =
  let m = 20 and maxk = 14 in
  let inputs = Ps_models.Models.relaxation_inputs ~m ~maxk in
  [ t "sunk execution equals the original Seidel" (fun () ->
        let tp = Util.load Ps_models.Models.seidel in
        let r1 = Psc.run tp ~inputs in
        let tp', name, _ = transformed () in
        let r2 = Psc.run ~name ~sink:true tp' ~inputs in
        let d =
          Util.max_diff
            (List.assoc "newA" r1.Psc.Exec.outputs)
            (List.assoc "newA" r2.Psc.Exec.outputs)
            [ (0, m + 1); (0, m + 1) ]
        in
        Alcotest.(check bool) "bit equal" true (d = 0.0));
    t "sunk + windowed equals sunk + full allocation" (fun () ->
        let tp', name, _ = transformed () in
        let r_win = Psc.run ~name ~sink:true ~use_windows:true tp' ~inputs in
        let r_full = Psc.run ~name ~sink:true ~use_windows:false tp' ~inputs in
        let d =
          Util.max_diff
            (List.assoc "newA" r_win.Psc.Exec.outputs)
            (List.assoc "newA" r_full.Psc.Exec.outputs)
            [ (0, m + 1); (0, m + 1) ]
        in
        Alcotest.(check bool) "bit equal" true (d = 0.0));
    t "windowed allocation is 3 planes" (fun () ->
        let tp', name, tr = transformed () in
        let r = Psc.run ~name ~sink:true tp' ~inputs in
        let words = List.assoc tr.Psc.Transform.tr_new_name r.Psc.Exec.allocated in
        (* 3 x maxK x (M+2): the paper's 3 x maxK x M with padded
           boundary columns. *)
        Alcotest.(check int) "3*maxK*(M+2)" (3 * maxk * (m + 2)) words);
    t "parallel execution of the sunk schedule is deterministic" (fun () ->
        let tp', name, _ = transformed () in
        let r1 = Psc.run ~name ~sink:true tp' ~inputs in
        let r2 =
          Psc.Pool.with_pool 3 (fun pool -> Psc.run ~pool ~name ~sink:true tp' ~inputs)
        in
        let d =
          Util.max_diff
            (List.assoc "newA" r1.Psc.Exec.outputs)
            (List.assoc "newA" r2.Psc.Exec.outputs)
            [ (0, m + 1); (0, m + 1) ]
        in
        Alcotest.(check bool) "bit equal" true (d = 0.0)) ]

let safety_tests =
  [ t "extraction reading a non-local array is not sunk" (fun () ->
        (* Y reads input X after the loop: nothing to sink. *)
        let src =
          {|
T: module (X: array[I] of real; N: int): [Y: array[I] of real];
type
  I = 1 .. N;
  I2 = 2 .. N;
var
  A: array [I] of real;
define
  A[1] = X[1];
  A[I2] = A[I2-1] + 1.0;
  Y[I] = A[I] + X[I];
end T;
|}
        in
        let tp = Util.load src in
        let sc = Psc.schedule ~sink:true (Util.first tp) in
        Alcotest.(check int) "nothing sunk" 0 (List.length sc.Psc.sc_sunk));
    t "coverage that cannot be proven blocks the sink" (fun () ->
        (* The reference plane I + N*2 exceeds the loop range, so the
           range-containment certificate must fail and the equation must
           stay outside the loop (where it still executes correctly
           against the full allocation). *)
        let src =
          {|
T: module (N: int): [Y: array[I] of real];
type
  I = 1 .. N;
  I2 = 2 .. N;
var
  A: array [1 .. 3 * N] of real;
  B: array [1 .. 3 * N] of real;
define
  A[1] = 1.0;
  A[I2] = A[I2-1] + 1.0;
  B[1] = 1.0;
  B[I2] = B[I2-1] + 1.0;
  Y[I] = A[I] + B[1];
end T;
|}
        in
        let tp = Util.load src in
        let sc = Psc.schedule ~sink:true (Util.first tp) in
        (* A is only defined for 1..N of its 3N extent: f's range is fine
           but the read A[I] is a plain I-reference, not a multi-variable
           one; nothing should be sunk and results must stay correct. *)
        Alcotest.(check int) "nothing sunk" 0 (List.length sc.Psc.sc_sunk)) ]

let () =
  Alcotest.run "sink"
    [ ("sinking", sink_tests);
      ("execution", exec_tests);
      ("safety", safety_tests) ]
