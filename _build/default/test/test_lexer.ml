(* Lexer tests: token streams, literal forms, comments, spans, errors. *)

open Ps_lang

let toks src = List.map fst (Lexer.all_tokens src)

let tok = Alcotest.testable (fun ppf t -> Fmt.string ppf (Token.to_string t)) Token.equal

let check_toks msg expected src = Alcotest.(check (list tok)) msg expected (toks src)

let t name f = Alcotest.test_case name `Quick f

let basic_tests =
  [ t "empty input" (fun () -> check_toks "empty" [] "");
    t "whitespace only" (fun () -> check_toks "ws" [] "  \t\n  \r\n");
    t "identifier" (fun () -> check_toks "id" [ IDENT "newA" ] "newA");
    t "identifier with underscore and digits" (fun () ->
        check_toks "id2" [ IDENT "max_k2" ] "max_k2");
    t "identifiers are case sensitive" (fun () ->
        check_toks "case" [ IDENT "A"; IDENT "a" ] "A a");
    t "keywords are case insensitive" (fun () ->
        check_toks "kw-case"
          [ KW_MODULE; KW_MODULE; KW_IF; KW_THEN ]
          "module MODULE If THEN");
    t "all keywords" (fun () ->
        check_toks "kws"
          [ KW_MODULE; KW_TYPE; KW_VAR; KW_DEFINE; KW_END; KW_OF; KW_ARRAY;
            KW_RECORD; KW_IF; KW_THEN; KW_ELSE; KW_AND; KW_OR; KW_NOT; KW_DIV;
            KW_MOD; KW_INT; KW_REAL; KW_BOOL; KW_TRUE; KW_FALSE ]
          "module type var define end of array record if then else and or not \
           div mod int real bool true false");
    t "keyword prefix stays an identifier" (fun () ->
        check_toks "prefix" [ IDENT "iff"; IDENT "modular" ] "iff modular") ]

let number_tests =
  [ t "integer" (fun () -> check_toks "int" [ INT_LIT 42 ] "42");
    t "zero" (fun () -> check_toks "zero" [ INT_LIT 0 ] "0");
    t "real" (fun () -> check_toks "real" [ REAL_LIT 3.25 ] "3.25");
    t "real with exponent" (fun () -> check_toks "exp" [ REAL_LIT 1.5e3 ] "1.5e3");
    t "real with negative exponent" (fun () ->
        check_toks "nexp" [ REAL_LIT 2.5e-2 ] "2.5e-2");
    t "integer followed by dotdot is not a real" (fun () ->
        check_toks "dotdot" [ INT_LIT 1; DOTDOT; INT_LIT 5 ] "1..5");
    t "integer dot non-digit stays integer" (fun () ->
        check_toks "dotfield" [ INT_LIT 1; DOT; IDENT "x" ] "1.x");
    t "unary minus is a separate token" (fun () ->
        check_toks "neg" [ MINUS; INT_LIT 3 ] "-3") ]

let symbol_tests =
  [ t "relational operators" (fun () ->
        check_toks "rel" [ LT; LE; GT; GE; NE; EQ ] "< <= > >= <> =");
    t "le vs lt lookahead" (fun () ->
        check_toks "lelt" [ LT; IDENT "a"; LE; IDENT "b" ] "<a <=b");
    t "punctuation" (fun () ->
        check_toks "punct"
          [ COLON; SEMI; COMMA; LPAREN; RPAREN; LBRACKET; RBRACKET ]
          ": ; , ( ) [ ]");
    t "arithmetic" (fun () ->
        check_toks "arith" [ PLUS; MINUS; STAR; SLASH ] "+ - * /");
    t "subscript expression" (fun () ->
        check_toks "sub"
          [ IDENT "A"; LBRACKET; IDENT "K"; MINUS; INT_LIT 1; COMMA; IDENT "I";
            RBRACKET ]
          "A[K-1,I]") ]

let comment_tests =
  [ t "simple comment skipped" (fun () ->
        check_toks "comment" [ IDENT "a"; IDENT "b" ] "a (* hello *) b");
    t "nested comments" (fun () ->
        check_toks "nested" [ IDENT "x" ] "(* a (* b *) c *) x");
    t "pragma comment from Fig. 1" (fun () ->
        check_toks "pragma" [ IDENT "m" ] "(*$m+v+x+t-*) m");
    t "comment with stars inside" (fun () ->
        check_toks "stars" [ IDENT "y" ] "(* ** * ** *) y");
    t "comment spanning lines" (fun () ->
        check_toks "multiline" [ INT_LIT 7 ] "(* line1\nline2\nline3 *) 7") ]

let error_tests =
  [ t "unterminated comment" (fun () ->
        match toks "(* oops" with
        | exception Lexer.Error (m, _) ->
          Util.check_bool "mentions comment" true (Util.contains m "comment")
        | _ -> Alcotest.fail "expected lexer error");
    t "bad character" (fun () ->
        match toks "a ? b" with
        | exception Lexer.Error (_, span) ->
          Util.check_int "column" 3 span.Loc.start_p.Loc.col
        | _ -> Alcotest.fail "expected lexer error");
    t "malformed exponent" (fun () ->
        match toks "1.5e+" with
        | exception Lexer.Error (m, _) ->
          Util.check_bool "mentions exponent" true (Util.contains m "exponent")
        | _ -> Alcotest.fail "expected lexer error") ]

let position_tests =
  [ t "line tracking" (fun () ->
        let all = Lexer.all_tokens "a\nbb\n  ccc" in
        let lines = List.map (fun (_, s) -> s.Loc.start_p.Loc.line) all in
        Alcotest.(check (list int)) "lines" [ 1; 2; 3 ] lines);
    t "column tracking" (fun () ->
        let all = Lexer.all_tokens "ab cd" in
        let cols = List.map (fun (_, s) -> s.Loc.start_p.Loc.col) all in
        Alcotest.(check (list int)) "cols" [ 1; 4 ] cols);
    t "peek does not consume" (fun () ->
        let lx = Lexer.create "x y" in
        let a, _ = Lexer.peek lx in
        let b, _ = Lexer.peek lx in
        let c, _ = Lexer.next lx in
        Alcotest.check tok "peek1" (IDENT "x") a;
        Alcotest.check tok "peek2" (IDENT "x") b;
        Alcotest.check tok "next" (IDENT "x") c);
    t "save and restore" (fun () ->
        let lx = Lexer.create "x y z" in
        ignore (Lexer.next lx);
        let snap = Lexer.save lx in
        ignore (Lexer.next lx);
        ignore (Lexer.next lx);
        Lexer.restore lx snap;
        let t', _ = Lexer.next lx in
        Alcotest.check tok "restored" (IDENT "y") t');
    t "eof is sticky" (fun () ->
        let lx = Lexer.create "" in
        let a, _ = Lexer.next lx in
        let b, _ = Lexer.next lx in
        Alcotest.check tok "eof1" EOF a;
        Alcotest.check tok "eof2" EOF b) ]

(* Property: lexing the Fig. 1 module is stable and covers every
   character class the paper uses. *)
let fig1_test =
  [ t "Fig. 1 module lexes" (fun () ->
        let n = List.length (Lexer.all_tokens Ps_models.Models.jacobi) in
        Util.check_bool "enough tokens" true (n > 100)) ]

let () =
  Alcotest.run "lexer"
    [ ("basic", basic_tests);
      ("numbers", number_tests);
      ("symbols", symbol_tests);
      ("comments", comment_tests);
      ("errors", error_tests);
      ("positions", position_tests);
      ("fig1", fig1_test) ]
