test/test_records.ml: Alcotest Array List Printf Ps_lang Ps_models Psc Util
