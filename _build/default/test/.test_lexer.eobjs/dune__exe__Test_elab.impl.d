test/test_elab.ml: Alcotest Elab List Printf Ps_lang Ps_models Ps_sem Stypes Util
