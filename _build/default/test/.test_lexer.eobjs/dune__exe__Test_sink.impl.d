test/test_sink.ml: Alcotest List Ps_models Psc Util
