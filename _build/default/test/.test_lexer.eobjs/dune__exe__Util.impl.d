test/util.ml: Alcotest Array List Psc String
