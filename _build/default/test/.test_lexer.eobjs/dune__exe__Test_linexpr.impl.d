test/test_linexpr.ml: Alcotest Linexpr List Ps_lang Ps_sem QCheck QCheck_alcotest
