test/test_exec.ml: Alcotest Array List Printf Ps_models Psc Util
