test/test_models.ml: Alcotest Array Fun Int64 List Ps_models Psc String Util
