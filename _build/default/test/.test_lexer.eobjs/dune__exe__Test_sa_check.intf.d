test/test_sa_check.mli:
