test/test_graph.ml: Alcotest Array Build Dgraph Elab Label List Printf Ps_graph Ps_lang Ps_models Ps_sem Render Stypes Util
