test/test_random.ml: Alcotest Array Filename Float Fun List Option Printf Ps_models Psc QCheck QCheck_alcotest String Sys Unix Util
