test/test_hyper.mli:
