test/test_hyper.ml: Alcotest Array Fmt Imatrix Ineq List Ps_hyper Ps_lang Ps_models Ps_sched Ps_sem QCheck QCheck_alcotest Solve Transform Util
