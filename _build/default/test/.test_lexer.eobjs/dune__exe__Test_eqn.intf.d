test/test_eqn.mli:
