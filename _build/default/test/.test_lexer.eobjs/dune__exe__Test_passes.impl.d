test/test_passes.ml: Alcotest Array List Option Ps_models Psc Util
