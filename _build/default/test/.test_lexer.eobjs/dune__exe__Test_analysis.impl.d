test/test_analysis.ml: Alcotest Ps_models Psc Util
