test/test_lexer.ml: Alcotest Fmt Lexer List Loc Ps_lang Ps_models Token Util
