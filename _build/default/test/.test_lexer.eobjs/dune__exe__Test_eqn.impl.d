test/test_eqn.ml: Alcotest List Ps_models Psc Util
