test/test_pool.ml: Alcotest Array Atomic Pool Ps_runtime QCheck QCheck_alcotest
