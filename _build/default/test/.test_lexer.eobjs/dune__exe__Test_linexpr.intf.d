test/test_linexpr.mli:
