test/test_eval_compile.mli:
