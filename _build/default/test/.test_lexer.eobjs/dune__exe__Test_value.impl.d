test/test_value.ml: Alcotest Ps_interp Ps_sem QCheck QCheck_alcotest Stypes Util
