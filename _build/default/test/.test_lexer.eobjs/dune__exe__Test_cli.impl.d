test/test_cli.ml: Alcotest Filename Fun List Printf Ps_models String Sys Util
