test/test_codegen.ml: Alcotest Array Filename Float List Option Printf Ps_lang Ps_models Psc String Sys Unix Util
