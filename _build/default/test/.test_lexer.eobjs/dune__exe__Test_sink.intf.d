test/test_sink.mli:
