test/test_parser.ml: Alcotest Ast List Loc Parser Pretty Ps_lang Ps_models QCheck QCheck_alcotest Util
