test/test_schedule.ml: Alcotest List Ps_models Psc Util
