test/test_scc.ml: Alcotest Build Dgraph List Printf Ps_graph Ps_lang Ps_models Ps_sem QCheck QCheck_alcotest Scc String
