test/test_eval_compile.ml: Alcotest Compile Elab Eval Hashtbl List Ps_interp Ps_lang Ps_sem QCheck QCheck_alcotest Stypes Util Value
