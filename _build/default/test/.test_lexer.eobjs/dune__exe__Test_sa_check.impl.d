test/test_sa_check.ml: Alcotest Elab List Printf Ps_lang Ps_models Ps_sem Sa_check String Util
