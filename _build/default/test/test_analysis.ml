(* Work/span analysis tests: exact counts for the paper's schedules and
   the parallelism ordering the paper's transformation establishes. *)

let t name f = Alcotest.test_case name `Quick f

let cost ?sink ?name src env =
  let tp = Util.load src in
  Psc.work_span ?name ?sink tp ~env

let m = 10 and maxk = 6

let env = [ ("M", m); ("maxK", maxk) ]

let grid = (m + 2) * (m + 2)

let exact_tests =
  [ t "jacobi work counts every equation instance" (fun () ->
        let c = cost Ps_models.Models.jacobi env in
        (* eq.1: grid; eq.3: (maxk-1)*grid; eq.2: grid *)
        Util.checkf "work" (float_of_int (((maxk - 1) * grid) + (2 * grid))) c.Psc.Analysis.work);
    t "jacobi span is the DO trip count plus constants" (fun () ->
        let c = cost Ps_models.Models.jacobi env in
        (* eq.1 contributes 1, the DO K loop maxk-1, eq.2 contributes 1 *)
        Util.checkf "span" (float_of_int (1 + (maxk - 1) + 1)) c.Psc.Analysis.span);
    t "seidel has span equal to its work inside the nest" (fun () ->
        let c = cost Ps_models.Models.seidel env in
        Util.checkf "span" (float_of_int (2 + ((maxk - 1) * grid))) c.Psc.Analysis.span);
    t "seidel parallelism is essentially 1" (fun () ->
        let c = cost Ps_models.Models.seidel env in
        Alcotest.(check bool) "about 1" true (Psc.Analysis.parallelism c < 1.5));
    t "jacobi parallelism is about the grid size" (fun () ->
        let c = cost Ps_models.Models.jacobi env in
        let p = Psc.Analysis.parallelism c in
        Alcotest.(check bool) "near grid" true
          (p > float_of_int grid /. 2. && p <= float_of_int grid *. 2.)) ]

let transform_tests =
  [ t "hyperplane transformation multiplies parallelism" (fun () ->
        let tp = Util.load Ps_models.Models.seidel in
        let before = Psc.work_span tp ~env in
        let tp', tr = Psc.hyperplane ~target:"A" tp in
        let name = tr.Psc.Transform.tr_module.Psc.Ast.m_name in
        let after = Psc.work_span ~name ~sink:true tp' ~env in
        let p_before = Psc.Analysis.parallelism before in
        let p_after = Psc.Analysis.parallelism after in
        Alcotest.(check bool) "at least 10x" true (p_after > 10. *. p_before));
    t "transformed work grows only by a constant factor" (fun () ->
        let tp = Util.load Ps_models.Models.seidel in
        let before = Psc.work_span tp ~env in
        let tp', tr = Psc.hyperplane ~target:"A" tp in
        let name = tr.Psc.Transform.tr_module.Psc.Ast.m_name in
        let after = Psc.work_span ~name ~sink:true tp' ~env in
        Alcotest.(check bool) "bounded blowup" true
          (after.Psc.Analysis.work < 8. *. before.Psc.Analysis.work)) ]

let misc_tests =
  [ t "prefix sum has parallelism about 1" (fun () ->
        let c = cost Ps_models.Models.prefix_sum [ ("N", 100) ] in
        Alcotest.(check bool) "sequential" true (Psc.Analysis.parallelism c < 2.5));
    t "matmul parallelism is about N^2" (fun () ->
        let n = 12 in
        let c = cost Ps_models.Models.matmul [ ("N", n) ] in
        let p = Psc.Analysis.parallelism c in
        Alcotest.(check bool) "near N^2" true
          (p > float_of_int (n * n) /. 2. && p <= float_of_int (n * n) *. 2.));
    t "work scales linearly with maxK" (fun () ->
        let c1 = cost Ps_models.Models.jacobi [ ("M", m); ("maxK", 10) ] in
        let c2 = cost Ps_models.Models.jacobi [ ("M", m); ("maxK", 19) ] in
        Alcotest.(check bool) "doubles" true
          (c2.Psc.Analysis.work /. c1.Psc.Analysis.work > 1.8));
    t "missing environment entry is diagnosed" (fun () ->
        Util.expect_error (fun () -> cost Ps_models.Models.jacobi [ ("M", m) ]));
    t "empty ranges contribute zero work" (fun () ->
        let c = cost Ps_models.Models.jacobi [ ("M", m); ("maxK", 1) ] in
        (* only eq.1 and eq.2 remain *)
        Util.checkf "work" (float_of_int (2 * grid)) c.Psc.Analysis.work) ]

let () =
  Alcotest.run "analysis"
    [ ("exact counts", exact_tests);
      ("transformation", transform_tests);
      ("misc", misc_tests) ]
