(* Hyperplane transformation tests (paper §4): integer matrices,
   dependence extraction, the least-coefficient solver, unimodular
   completion, and the source-to-source rewrite. *)

open Ps_hyper

let t name f = Alcotest.test_case name `Quick f

(* --- integer matrices -------------------------------------------- *)

let imatrix_tests =
  [ t "identity determinant" (fun () ->
        Alcotest.(check int) "det I3" 1 (Imatrix.det (Imatrix.identity 3)));
    t "paper matrix determinant" (fun () ->
        let m = Imatrix.of_rows [ [ 2; 1; 1 ]; [ 1; 0; 0 ]; [ 0; 1; 0 ] ] in
        Alcotest.(check int) "det" 1 (Imatrix.det m));
    t "2x2 determinant" (fun () ->
        Alcotest.(check int) "det" (-2)
          (Imatrix.det (Imatrix.of_rows [ [ 1; 2 ]; [ 3; 4 ] ])));
    t "inverse of the paper matrix" (fun () ->
        let m = Imatrix.of_rows [ [ 2; 1; 1 ]; [ 1; 0; 0 ]; [ 0; 1; 0 ] ] in
        let inv = Imatrix.inverse m in
        Alcotest.(check bool) "matches paper" true
          (Imatrix.equal inv
             (Imatrix.of_rows [ [ 0; 1; 0 ]; [ 0; 0; 1 ]; [ 1; -2; -1 ] ])));
    t "inverse times matrix is identity" (fun () ->
        let m = Imatrix.of_rows [ [ 2; 1; 1 ]; [ 1; 0; 0 ]; [ 0; 1; 0 ] ] in
        Alcotest.(check bool) "M * M^-1 = I" true
          (Imatrix.equal (Imatrix.mul m (Imatrix.inverse m)) (Imatrix.identity 3)));
    t "non-unimodular inverse rejected" (fun () ->
        match Imatrix.inverse (Imatrix.of_rows [ [ 2; 0 ]; [ 0; 1 ] ]) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    t "apply computes T.x" (fun () ->
        let m = Imatrix.of_rows [ [ 2; 1; 1 ]; [ 1; 0; 0 ]; [ 0; 1; 0 ] ] in
        Alcotest.(check (array int)) "T(3,1,2)" [| 9; 3; 1 |]
          (Imatrix.apply m [| 3; 1; 2 |])) ]

let unimodular_prop =
  (* Random small integer matrices built from elementary row operations
     are unimodular; inverse must be exact. *)
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 4 in
      let* ops = list_size (int_range 1 8) (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range (-3) 3)) in
      let m = Array.map Array.copy (Imatrix.identity n) in
      List.iter
        (fun (i, j, f) ->
          if i <> j then
            for c = 0 to n - 1 do
              m.(i).(c) <- m.(i).(c) + (f * m.(j).(c))
            done)
        ops;
      return m)
  in
  QCheck.Test.make ~count:200 ~name:"inverse of unimodular products"
    (QCheck.make gen ~print:Imatrix.to_string)
    (fun m ->
      abs (Imatrix.det m) = 1
      && Imatrix.equal (Imatrix.mul m (Imatrix.inverse m))
           (Imatrix.identity (Imatrix.dim m)))

(* --- the solver ---------------------------------------------------- *)

let paper_vectors =
  [ [| 1; 0; 0 |]; [| 0; 0; 1 |]; [| 0; 1; 0 |]; [| 1; 0; -1 |]; [| 1; -1; 0 |] ]

let solve_tests =
  [ t "paper example: a = (2, 1, 1)" (fun () ->
        Alcotest.(check (array int)) "a" [| 2; 1; 1 |] (Solve.solve paper_vectors));
    t "jacobi dependences admit time = K" (fun () ->
        let vs =
          [ [| 1; 0; 0 |]; [| 1; 0; 1 |]; [| 1; 1; 0 |]; [| 1; 0; -1 |]; [| 1; -1; 0 |] ]
        in
        Alcotest.(check (array int)) "a" [| 1; 0; 0 |] (Solve.solve vs));
    t "single forward dependence" (fun () ->
        Alcotest.(check (array int)) "a" [| 1 |] (Solve.solve [ [| 1 |] ]));
    t "cyclic dependences have no schedule" (fun () ->
        match Solve.solve [ [| 1; 0 |]; [| -1; 0 |] ] with
        | exception Solve.No_schedule _ -> ()
        | a -> Alcotest.failf "unexpected solution %s" (Imatrix.to_string [| a |]));
    t "solution satisfies every inequality" (fun () ->
        let a = Solve.solve paper_vectors in
        List.iter
          (fun d ->
            let dot = ref 0 in
            Array.iteri (fun i c -> dot := !dot + (c * d.(i))) a;
            Alcotest.(check bool) "a.d > 0" true (!dot > 0))
          paper_vectors);
    t "minimality: no smaller sum works" (fun () ->
        let a = Solve.solve paper_vectors in
        let sum = Array.fold_left ( + ) 0 a in
        Alcotest.(check int) "sum 4" 4 sum) ]

let completion_tests =
  [ t "paper completion: I' = K, J' = I" (fun () ->
        let m = Solve.complete [| 2; 1; 1 |] in
        Alcotest.(check bool) "rows" true
          (Imatrix.equal m
             (Imatrix.of_rows [ [ 2; 1; 1 ]; [ 1; 0; 0 ]; [ 0; 1; 0 ] ])));
    t "completion is unimodular" (fun () ->
        List.iter
          (fun tvec ->
            let m = Solve.complete tvec in
            Alcotest.(check int) "|det| = 1" 1 (abs (Imatrix.det m));
            Alcotest.(check (array int)) "first row" tvec (Imatrix.row m 0))
          [ [| 2; 1; 1 |]; [| 1; 0; 0 |]; [| 1; 1 |]; [| 3; 1 |]; [| 1; 2; 3; 1 |] ]);
    t "general completion without unit coefficients" (fun () ->
        let m = Solve.complete [| 2; 3 |] in
        Alcotest.(check int) "|det| = 1" 1 (abs (Imatrix.det m));
        Alcotest.(check (array int)) "first row" [| 2; 3 |] (Imatrix.row m 0));
    t "gcd > 1 cannot complete" (fun () ->
        match Solve.complete [| 2; 4 |] with
        | exception Solve.No_schedule _ -> ()
        | m -> Alcotest.failf "unexpected %s" (Imatrix.to_string m)) ]

(* --- dependence extraction --------------------------------------- *)

let elab_first src =
  List.hd
    (Ps_sem.Elab.elab_program (Ps_lang.Parser.program_of_string src))
      .Ps_sem.Elab.ep_modules

let ineq_tests =
  [ t "seidel difference vectors" (fun () ->
        let em = elab_first Ps_models.Models.seidel in
        let deps = Ineq.extract em ~target:"A" in
        let sorted = List.sort compare deps.Ineq.dep_vectors in
        Alcotest.(check (list (array int))) "vectors"
          (List.sort compare paper_vectors)
          sorted);
    t "defining indices in order" (fun () ->
        let em = elab_first Ps_models.Models.seidel in
        let deps = Ineq.extract em ~target:"A" in
        Alcotest.(check (list string)) "K I J" [ "K"; "I"; "J" ]
          (List.map (fun ix -> ix.Ps_sem.Elab.ix_var) deps.Ineq.dep_indices));
    t "non-recursive array rejected" (fun () ->
        let em = elab_first Ps_models.Models.seidel in
        match Ineq.extract em ~target:"newA" with
        | exception Ineq.Not_applicable _ -> ()
        | _ -> Alcotest.fail "expected Not_applicable");
    t "scalar rejected" (fun () ->
        let em = elab_first Ps_models.Models.seidel in
        match Ineq.extract em ~target:"M" with
        | exception Ineq.Not_applicable _ -> ()
        | _ -> Alcotest.fail "expected Not_applicable");
    t "unknown array rejected" (fun () ->
        let em = elab_first Ps_models.Models.seidel in
        match Ineq.extract em ~target:"nothere" with
        | exception Ineq.Not_applicable _ -> ()
        | _ -> Alcotest.fail "expected Not_applicable");
    t "inequality pretty-printing" (fun () ->
        Alcotest.(check string) "a - b" "a - b > 0"
          (Fmt.str "%a" Ineq.pp_inequality [| 1; -1; 0 |])) ]

(* --- the whole transformation ------------------------------------ *)

let transform_tests =
  [ t "derivation matches the paper" (fun () ->
        let em = elab_first Ps_models.Models.seidel in
        let tr = Transform.apply em ~target:"A" in
        Alcotest.(check (array int)) "time" [| 2; 1; 1 |] tr.Transform.tr_time;
        Alcotest.(check bool) "T" true
          (Imatrix.equal tr.Transform.tr_matrix
             (Imatrix.of_rows [ [ 2; 1; 1 ]; [ 1; 0; 0 ]; [ 0; 1; 0 ] ])));
    t "new names are fresh and primed" (fun () ->
        let em = elab_first Ps_models.Models.seidel in
        let tr = Transform.apply em ~target:"A" in
        Alcotest.(check string) "array" "Ap" tr.Transform.tr_new_name;
        Alcotest.(check (list string)) "indices" [ "Kp"; "Ip"; "Jp" ]
          tr.Transform.tr_new_indices);
    t "transformed module re-elaborates and re-schedules" (fun () ->
        let em = elab_first Ps_models.Models.seidel in
        let tr = Transform.apply em ~target:"A" in
        let em' =
          List.hd
            (Ps_sem.Elab.elab_program [ tr.Transform.tr_module ]).Ps_sem.Elab.ep_modules
        in
        let r = Ps_sched.Schedule.schedule em' in
        let s = Ps_sched.Flowchart.to_compact_string em' r.Ps_sched.Schedule.r_flowchart in
        (* Outer time loop iterative, both inner loops parallel. *)
        Alcotest.(check bool) "DO Kp (DOALL Ip (DOALL Jp" true
          (Util.contains s "DO Kp (DOALL Ip (DOALL Jp"));
    t "rewritten self-references carry offsets K'-1 and K'-2" (fun () ->
        let em = elab_first Ps_models.Models.seidel in
        let tr = Transform.apply em ~target:"A" in
        let text = Ps_lang.Pretty.module_to_string tr.Transform.tr_module in
        Alcotest.(check bool) "Kp - 1" true (Util.contains text "Ap[Kp - 1");
        Alcotest.(check bool) "Kp - 2" true (Util.contains text "Ap[Kp - 2"));
    t "extraction reference is Ap[2maxK + I + J, maxK, I]" (fun () ->
        let em = elab_first Ps_models.Models.seidel in
        let tr = Transform.apply em ~target:"A" in
        let text = Ps_lang.Pretty.module_to_string tr.Transform.tr_module in
        Alcotest.(check bool) "extraction" true
          (Util.contains text "Ap[I + J + 2 * maxK, maxK, I]"));
    t "new subrange bounds follow interval arithmetic" (fun () ->
        let em = elab_first Ps_models.Models.seidel in
        let tr = Transform.apply em ~target:"A" in
        let text = Ps_lang.Pretty.module_to_string tr.Transform.tr_module in
        (* Kp = 2*1 + 0 + 0 .. 2*maxK + (M+1) + (M+1) *)
        Alcotest.(check bool) "Kp bounds" true
          (Util.contains text "Kp = 2 .. 2 * M + 2 * maxK + 2"));
    t "transform of a non-local array is rejected" (fun () ->
        let em = elab_first Ps_models.Models.seidel in
        match Transform.apply em ~target:"InitialA" with
        | exception Ineq.Not_applicable _ -> ()
        | _ -> Alcotest.fail "expected Not_applicable");
    t "1-D recurrence transforms too" (fun () ->
        let em = elab_first Ps_models.Models.prefix_sum in
        let tr = Transform.apply em ~target:"Acc" in
        Alcotest.(check (array int)) "time" [| 1 |] tr.Transform.tr_time);
    t "jacobi transform is the identity schedule" (fun () ->
        (* The least time vector is (1,0,0): the transformed module's
           schedule has the same DO/DOALL shape as the original. *)
        let em = elab_first Ps_models.Models.jacobi in
        let tr = Transform.apply em ~target:"A" in
        Alcotest.(check (array int)) "time" [| 1; 0; 0 |] tr.Transform.tr_time;
        let em' =
          List.hd
            (Ps_sem.Elab.elab_program [ tr.Transform.tr_module ]).Ps_sem.Elab.ep_modules
        in
        let r = Ps_sched.Schedule.schedule em' in
        Alcotest.(check int) "one DO" 1
          (Ps_sched.Flowchart.count_loops ~kind:Ps_sched.Flowchart.Iterative
             r.Ps_sched.Schedule.r_flowchart)) ]

let () =
  Alcotest.run "hyper"
    [ ("imatrix", imatrix_tests @ [ QCheck_alcotest.to_alcotest unimodular_prop ]);
      ("solver", solve_tests);
      ("completion", completion_tests);
      ("dependences", ineq_tests);
      ("transformation", transform_tests) ]
