(* Equation-notation front end tests: the paper's Equation (1) and (2)
   in display-mathematics form, translated to PS and pushed through the
   whole pipeline. *)

let t name f = Alcotest.test_case name `Quick f

let equation_1 =
  {|
relaxation(InitialA[i,j], M, maxK) -> newA[i,j]
where i, j = 0 .. M+1; k = 2 .. maxK
# Equation (1): all values from the previous iteration
A_{1,i,j}  = InitialA_{i,j}
A_{k,i,j}  = if i = 0 or j = 0 or i = M+1 or j = M+1
             then A_{k-1,i,j}
             else (A_{k-1,i,j-1} + A_{k-1,i-1,j}
                 + A_{k-1,i,j+1} + A_{k-1,i+1,j}) / 4
newA_{i,j} = A_{maxK,i,j}
|}

let equation_2 =
  {|
relaxation2(InitialA[i,j], M, maxK) -> newA[i,j]
where i, j = 0 .. M+1; k = 2 .. maxK
# Equation (2): west/north from the current sweep
A_{1,i,j}  = InitialA_{i,j}
A_{k,i,j}  = if i = 0 or j = 0 or i = M+1 or j = M+1
             then A_{k-1,i,j}
             else (A_{k,i,j-1} + A_{k,i-1,j}
                 + A_{k-1,i,j+1} + A_{k-1,i+1,j}) / 4
newA_{i,j} = A_{maxK,i,j}
|}

let translate src = Psc.load_equations src

let translation_tests =
  [ t "Equation (1) translates to a valid module" (fun () ->
        let tp = translate equation_1 in
        Alcotest.(check int) "no warnings" 0 (List.length (Psc.warnings tp));
        let em = Psc.default_module tp in
        Alcotest.(check int) "3 equations" 3 (List.length em.Psc.Elab.em_eqs));
    t "the local array gets the hull extent 1 .. maxK" (fun () ->
        let tp = translate equation_1 in
        let em = Psc.default_module tp in
        let a = Psc.Elab.data_exn em "A" in
        match Psc.Stypes.dims a.Psc.Elab.d_ty with
        | sr :: _ ->
          Alcotest.(check string) "lo" "1"
            (Psc.Pretty.expr_to_string sr.Psc.Stypes.sr_lo);
          Alcotest.(check string) "hi" "maxK"
            (Psc.Pretty.expr_to_string sr.Psc.Stypes.sr_hi)
        | [] -> Alcotest.fail "A should be an array");
    t "scalars in bounds become int, arrays real" (fun () ->
        let tp = translate equation_1 in
        let em = Psc.default_module tp in
        let m = Psc.Elab.data_exn em "M" in
        Alcotest.(check bool) "M int" true
          (Psc.Stypes.equal_ty m.Psc.Elab.d_ty (Psc.Stypes.Scalar Psc.Stypes.Sint));
        let g = Psc.Elab.data_exn em "InitialA" in
        Alcotest.(check bool) "grid real elem" true
          (Psc.Stypes.equal_ty
             (Psc.Stypes.elem_ty g.Psc.Elab.d_ty)
             (Psc.Stypes.Scalar Psc.Stypes.Sreal)));
    t "comments and spacing are ignored" (fun () ->
        ignore (translate "f(x) -> y\n# nothing\ny = x + 1.0"));
    t "missing range is diagnosed" (fun () ->
        Util.expect_error ~substring:"range" (fun () ->
            translate "f(A[i]) -> y\ny = A_{1}"));
    t "unorderable bounds are diagnosed" (fun () ->
        Util.expect_error ~substring:"order" (fun () ->
            translate
              "f(N, M) -> y\nwhere i = 1 .. N; j = 1 .. M\nB_{i} = 1.0\nB_{j} = 2.0\ny = B_{1}"));
    t "syntax errors carry a location" (fun () ->
        match translate "f(x -> y\ny = x" with
        | exception Psc.Error m ->
          Alcotest.(check bool) "notation error" true
            (Util.contains m "equation notation")
        | _ -> Alcotest.fail "expected an error") ]

let pipeline_tests =
  [ t "Equation (1) schedules to Fig. 6" (fun () ->
        let tp = translate equation_1 in
        let em = Psc.default_module tp in
        let sc = Psc.schedule em in
        Alcotest.(check string) "schedule"
          "DOALL i (DOALL j (eq.1)); DO k (DOALL i (DOALL j (eq.2))); DOALL i (DOALL j (eq.3))"
          (Psc.Flowchart.to_compact_string em sc.Psc.sc_flowchart);
        Alcotest.(check bool) "window 2" true
          (List.exists
             (fun (w : Psc.Schedule.window) -> w.Psc.Schedule.w_size = 2)
             sc.Psc.sc_windows));
    t "Equation (2) schedules to Fig. 7 and transforms" (fun () ->
        let tp = translate equation_2 in
        let em = Psc.default_module tp in
        let sc = Psc.schedule em in
        let s = Psc.Flowchart.to_compact_string em sc.Psc.sc_flowchart in
        Alcotest.(check bool) "fully iterative" true
          (Util.contains s "DO k (DO i (DO j (eq.2)))");
        let _, tr = Psc.hyperplane ~target:"A" tp in
        Alcotest.(check (array int)) "a = (2,1,1)" [| 2; 1; 1 |]
          tr.Psc.Transform.tr_time);
    t "both notations compute the same grid as the PS originals" (fun () ->
        let m = 14 and maxk = 9 in
        let inputs = Ps_models.Models.relaxation_inputs ~m ~maxk in
        List.iter
          (fun (eqn_src, ps_src) ->
            let r1 = Psc.run (translate eqn_src) ~inputs in
            let r2 = Psc.run (Psc.load_string ps_src) ~inputs in
            let d =
              Util.max_diff
                (List.assoc "newA" r1.Psc.Exec.outputs)
                (List.assoc "newA" r2.Psc.Exec.outputs)
                [ (0, m + 1); (0, m + 1) ]
            in
            Alcotest.(check bool) "bit equal" true (d = 0.0))
          [ (equation_1, Ps_models.Models.jacobi);
            (equation_2, Ps_models.Models.seidel) ]);
    t "generated module pretty-prints to re-parsable PS" (fun () ->
        let tp = translate equation_1 in
        let em = Psc.default_module tp in
        let text = Psc.Pretty.module_to_string em.Psc.Elab.em_ast in
        ignore (Psc.load_string text)) ]

let () =
  Alcotest.run "eqn"
    [ ("translation", translation_tests); ("pipeline", pipeline_tests) ]
