(* Strongly-connected-component tests: membership, topological order of
   the condensation (a qcheck property over random graphs), and the
   subgraph operations the scheduler relies on. *)

open Ps_graph

let t name f = Alcotest.test_case name `Quick f

(* Build a synthetic subgraph over data nodes "n0".."n{k-1}" with the
   given integer edges. *)
let synth k edges =
  let name i = Printf.sprintf "n%d" i in
  let nodes = List.init k (fun i -> Dgraph.Data (name i)) in
  let mk (a, b) =
    { Dgraph.e_src = Dgraph.Data (name a);
      e_dst = Dgraph.Data (name b);
      e_kind = Dgraph.Bound;
      e_subs = [||] }
  in
  { Scc.sg_nodes = nodes; sg_edges = List.map mk edges }

let comp_sets sg =
  List.map
    (fun c ->
      List.map
        (function
          | Dgraph.Data d -> d
          | Dgraph.Eq i -> Printf.sprintf "eq.%d" (i + 1))
        c.Scc.c_nodes
      |> List.sort compare)
    (Scc.components sg)

let basic_tests =
  [ t "singleton nodes, no edges" (fun () ->
        Alcotest.(check int) "3 comps" 3 (List.length (comp_sets (synth 3 []))));
    t "two-cycle merges" (fun () ->
        let cs = comp_sets (synth 3 [ (0, 1); (1, 0) ]) in
        Alcotest.(check bool) "n0 n1 together" true
          (List.mem [ "n0"; "n1" ] cs));
    t "self loop is a single-node scc" (fun () ->
        let cs = comp_sets (synth 1 [ (0, 0) ]) in
        Alcotest.(check int) "one comp" 1 (List.length cs));
    t "chain respects topological order" (fun () ->
        let cs = comp_sets (synth 4 [ (0, 1); (1, 2); (2, 3) ]) in
        Alcotest.(check (list (list string))) "order"
          [ [ "n0" ]; [ "n1" ]; [ "n2" ]; [ "n3" ] ]
          cs);
    t "large cycle merges fully" (fun () ->
        let k = 20 in
        let edges = List.init k (fun i -> (i, (i + 1) mod k)) in
        let cs = comp_sets (synth k edges) in
        Alcotest.(check int) "one comp" 1 (List.length cs);
        Alcotest.(check int) "all nodes" k (List.length (List.hd cs)));
    t "intra-component edges retained" (fun () ->
        let sg = synth 3 [ (0, 1); (1, 0); (1, 2) ] in
        let c01 =
          List.find (fun c -> List.length c.Scc.c_nodes = 2) (Scc.components sg)
        in
        Alcotest.(check int) "two intra edges" 2 (List.length c01.Scc.c_edges)) ]

let jacobi_tests =
  [ t "Fig. 5 component membership" (fun () ->
        let em =
          List.hd
            (Ps_sem.Elab.elab_program
               (Ps_lang.Parser.program_of_string Ps_models.Models.jacobi))
              .Ps_sem.Elab.ep_modules
        in
        let g = Build.build em in
        let cs = comp_sets (Scc.full_subgraph g) in
        Alcotest.(check int) "7 components" 7 (List.length cs);
        (* The only multi-node MSCC is {A, eq.3}. *)
        let multi = List.filter (fun c -> List.length c > 1) cs in
        Alcotest.(check (list (list string))) "recursive component"
          [ [ "A"; "eq.3" ] ]
          (List.map (List.sort compare) multi));
    t "producers precede consumers" (fun () ->
        let em =
          List.hd
            (Ps_sem.Elab.elab_program
               (Ps_lang.Parser.program_of_string Ps_models.Models.jacobi))
              .Ps_sem.Elab.ep_modules
        in
        let g = Build.build em in
        let cs = comp_sets (Scc.full_subgraph g) in
        let pos name =
          let rec go i = function
            | [] -> -1
            | c :: rest -> if List.mem name c then i else go (i + 1) rest
          in
          go 0 cs
        in
        Alcotest.(check bool) "InitialA before eq.1" true (pos "InitialA" < pos "eq.1");
        Alcotest.(check bool) "eq.1 before eq.3" true (pos "eq.1" < pos "eq.3");
        Alcotest.(check bool) "eq.3 before eq.2" true (pos "eq.3" < pos "eq.2");
        Alcotest.(check bool) "eq.2 before newA" true (pos "eq.2" < pos "newA")) ]

let subgraph_tests =
  [ t "remove_edges splits a cycle" (fun () ->
        let sg = synth 2 [ (0, 1); (1, 0) ] in
        let back =
          List.find
            (fun e -> e.Dgraph.e_src = Dgraph.Data "n1")
            sg.Scc.sg_edges
        in
        let sg' = Scc.remove_edges sg [ back ] in
        Alcotest.(check int) "2 comps" 2 (List.length (comp_sets sg')));
    t "restrict keeps only the given nodes" (fun () ->
        let sg = synth 3 [ (0, 1); (1, 2) ] in
        let keep = Dgraph.NodeSet.of_list [ Dgraph.Data "n0"; Dgraph.Data "n1" ] in
        let sg' = Scc.restrict sg keep in
        Alcotest.(check int) "2 nodes" 2 (List.length sg'.Scc.sg_nodes);
        Alcotest.(check int) "1 edge" 1 (List.length sg'.Scc.sg_edges)) ]

(* Property: on a random graph, the component order is a topological
   order of the condensation. *)
let topo_prop =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 12 in
      let* edges = list_size (int_range 0 30) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
      return (n, edges))
  in
  QCheck.Test.make ~count:300
    ~name:"component order is topological"
    (QCheck.make gen ~print:(fun (n, es) ->
         Printf.sprintf "n=%d edges=%s" n
           (String.concat ";" (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) es))))
    (fun (n, edges) ->
      let sg = synth n edges in
      let cs = comp_sets sg in
      let index_of name =
        let rec go i = function
          | [] -> -1
          | c :: rest -> if List.mem name c then i else go (i + 1) rest
        in
        go 0 cs
      in
      List.for_all
        (fun (a, b) ->
          let ia = index_of (Printf.sprintf "n%d" a)
          and ib = index_of (Printf.sprintf "n%d" b) in
          ia <= ib)
        edges)

let partition_prop =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 10 in
      let* edges = list_size (int_range 0 20) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
      return (n, edges))
  in
  QCheck.Test.make ~count:300 ~name:"components partition the nodes"
    (QCheck.make gen ~print:(fun (n, _) -> string_of_int n))
    (fun (n, edges) ->
      let sg = synth n edges in
      let all = List.concat (comp_sets sg) in
      List.length all = n && List.sort_uniq compare all = List.sort compare all)

let () =
  Alcotest.run "scc"
    [ ("basic", basic_tests);
      ("jacobi", jacobi_tests);
      ("subgraphs", subgraph_tests);
      ("properties",
       [ QCheck_alcotest.to_alcotest topo_prop;
         QCheck_alcotest.to_alcotest partition_prop ]) ]
