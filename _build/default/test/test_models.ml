(* End-to-end checks that every shipped model parses, elaborates cleanly,
   schedules to its expected shape, and runs — the repository's smoke
   suite. *)

let t name f = Alcotest.test_case name `Quick f

let models =
  [ ("jacobi", Ps_models.Models.jacobi);
    ("seidel", Ps_models.Models.seidel);
    ("heat1d", Ps_models.Models.heat1d);
    ("matmul", Ps_models.Models.matmul);
    ("binomial", Ps_models.Models.binomial);
    ("prefix_sum", Ps_models.Models.prefix_sum);
    ("two_module", Ps_models.Models.two_module);
    ("classify", Ps_models.Models.classify);
    ("lcs", Ps_models.Models.lcs);
    ("particles", Ps_models.Models.particles);
    ("skewed", Ps_models.Models.skewed) ]

let load_tests =
  List.map
    (fun (name, src) ->
      t (name ^ " loads without diagnostics") (fun () ->
          let tp = Util.load src in
          Alcotest.(check int) "no warnings" 0 (List.length (Psc.warnings tp))))
    models

let schedule_tests =
  List.map
    (fun (name, src) ->
      t (name ^ " schedules every module") (fun () ->
          let tp = Util.load src in
          List.iter
            (fun mname -> ignore (Psc.schedule (Psc.find_module tp mname)))
            (Psc.modules tp)))
    models

let fill_tests =
  [ t "deterministic fill matches its C counterpart definition" (fun () ->
        (* ps_fill(q) = ((q * 2654435761 + 12345) mod 2^64) mod 1000 / 1000 *)
        Util.checkf "fill 0" 0.345 (Ps_models.Models.fill_value 0);
        Util.checkf "fill 1" ((Int64.to_float (Int64.unsigned_rem 2654448106L 1000L)) /. 1000.)
          (Ps_models.Models.fill_value 1);
        Alcotest.(check bool) "range" true
          (List.for_all
             (fun q ->
               let v = Ps_models.Models.fill_value q in
               v >= 0.0 && v < 1.0)
             (List.init 1000 Fun.id)));
    t "grid input has the declared bounds" (fun () ->
        match Ps_models.Models.grid_input 5 with
        | Psc.Value.Varray s ->
          Alcotest.(check int) "dims" 2 (Psc.Value.ndims s);
          Alcotest.(check int) "extent" 7 s.Psc.Value.s_dims.(0).Psc.Value.di_extent
        | _ -> Alcotest.fail "expected array") ]

let pipeline_tests =
  [ t "full pipeline on jacobi: parse -> C text" (fun () ->
        let tp = Util.load Ps_models.Models.jacobi in
        let c = Psc.emit_c tp in
        Alcotest.(check bool) "has kernel" true (Util.contains c "void Relaxation"));
    t "dependency graph is printable for every model" (fun () ->
        List.iter
          (fun (_, src) ->
            let tp = Util.load src in
            List.iter
              (fun m ->
                let g = Psc.dep_graph (Psc.find_module tp m) in
                Alcotest.(check bool) "non-empty listing" true
                  (String.length (Psc.Render.listing g) > 0))
              (Psc.modules tp))
          models);
    t "cli demo sources stay in sync with the paper strings" (fun () ->
        (* jacobi must contain the verbatim Fig. 1 stencil *)
        Alcotest.(check bool) "stencil" true
          (Util.contains Ps_models.Models.jacobi "A[K-1,I,J-1]");
        Alcotest.(check bool) "seidel west neighbour" true
          (Util.contains Ps_models.Models.seidel "A[K,I,J-1]")) ]

let () =
  Alcotest.run "models"
    [ ("loading", load_tests);
      ("scheduling", schedule_tests);
      ("inputs", fill_tests);
      ("pipeline", pipeline_tests) ]
