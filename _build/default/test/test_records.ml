(* Per-field record equations: parsing, elaboration, single-assignment
   field completeness, scheduling, windowed execution. *)

let t name f = Alcotest.test_case name `Quick f

let parse_tests =
  [ t "field lhs parses" (fun () ->
        let m =
          Ps_lang.Parser.module_of_string
            "T: module (a: real): [y: real]; type S = record x : real end; \
             var s: S; define s.x = a; y = s.x; end T;"
        in
        let eq = List.hd m.Ps_lang.Ast.m_eqs in
        Alcotest.(check (list string)) "path" [ "x" ]
          (List.hd eq.Ps_lang.Ast.eq_lhs).Ps_lang.Ast.l_path);
    t "subscripted field lhs parses" (fun () ->
        let m = Ps_lang.Parser.module_of_string Ps_models.Models.particles in
        let eq = List.hd m.Ps_lang.Ast.m_eqs in
        let l = List.hd eq.Ps_lang.Ast.eq_lhs in
        Alcotest.(check int) "two subs" 2 (List.length l.Ps_lang.Ast.l_subs);
        Alcotest.(check (list string)) "path" [ "x" ] l.Ps_lang.Ast.l_path);
    t "field lhs round-trips through the printer" (fun () ->
        let src = Ps_models.Models.particles in
        let p = Ps_lang.Parser.program_of_string src in
        let printed = Ps_lang.Pretty.program_to_string p in
        Alcotest.(check bool) "printed path" true
          (Util.contains printed "S[1, P].x =");
        let p2 = Ps_lang.Parser.program_of_string printed in
        Alcotest.(check string) "fixpoint" printed
          (Ps_lang.Pretty.program_to_string p2)) ]

let elab_tests =
  [ t "field defs carry their path" (fun () ->
        let tp = Util.load Ps_models.Models.particles in
        let em = Util.first tp in
        let q = List.hd em.Psc.Elab.em_eqs in
        let df = List.hd q.Psc.Elab.q_defs in
        Alcotest.(check (list string)) "path" [ "x" ] df.Psc.Elab.df_path;
        Alcotest.(check string) "data" "S" df.Psc.Elab.df_data);
    t "field type mismatch is rejected" (fun () ->
        Util.expect_error ~substring:"type" (fun () ->
            Util.load
              "T: module (a: real): [y: real]; type S = record x : real end; \
               var s: S; define s.x = true; y = s.x; end T;"));
    t "unknown field is rejected" (fun () ->
        Util.expect_error ~substring:"field" (fun () ->
            Util.load
              "T: module (a: real): [y: real]; type S = record x : real end; \
               var s: S; define s.z = a; y = s.x; end T;"));
    t "field on a non-record is rejected" (fun () ->
        Util.expect_error ~substring:"non-record" (fun () ->
            Util.load
              "T: module (a: real): [y: real]; var s: real; define s.x = a; \
               y = s; end T;"));
    t "missing field definition is an error" (fun () ->
        Util.expect_error ~substring:"field v" (fun () ->
            Util.load
              "T: module (a: real): [y: real]; type S = record x : real; v : \
               real end; var s: S; define s.x = a; y = s.x; end T;"));
    t "defining the same field twice is an error" (fun () ->
        Util.expect_error ~substring:"overlapping" (fun () ->
            Util.load
              "T: module (a: real): [y: real]; type S = record x : real end; \
               var s: S; define s.x = a; s.x = a + 1.0; y = s.x; end T;")) ]

let schedule_tests =
  [ t "particles schedules with an iterative time loop" (fun () ->
        let s = Util.compact_schedule Ps_models.Models.particles in
        Alcotest.(check bool) "DO T" true (Util.contains s "DO T (");
        Alcotest.(check bool) "both field eqs inside" true
          (Util.contains s "eq.3" && Util.contains s "eq.4"));
    t "the state array still windows to 2 planes" (fun () ->
        Alcotest.(check (list (triple string int int))) "window"
          [ ("S", 0, 2) ]
          (Util.windows_of Ps_models.Models.particles)) ]

let exec_tests =
  let n = 8 and steps = 15 in
  let inputs =
    [ ("X0",
       Psc.Exec.array_real ~dims:[ (1, n) ] (fun ix -> float_of_int ix.(0)));
      ("V0",
       Psc.Exec.array_real ~dims:[ (1, n) ] (fun ix -> 0.5 +. (0.1 *. float_of_int ix.(0))));
      ("N", Psc.Exec.scalar_int n);
      ("steps", Psc.Exec.scalar_int steps) ]
  in
  let native () =
    Array.init (n + 1) (fun p ->
        if p = 0 then 0.0
        else begin
          let x = ref (float_of_int p) in
          let v = ref (0.5 +. (0.1 *. float_of_int p)) in
          for _t = 2 to steps do
            let x' = !x +. (0.1 *. !v) in
            let v' = !v *. 0.99 in
            x := x';
            v := v'
          done;
          !x
        end)
  in
  [ t "particles equals the native integration" (fun () ->
        let r = Util.run Ps_models.Models.particles inputs in
        let out = List.assoc "XT" r.Psc.Exec.outputs in
        let reference = native () in
        for p = 1 to n do
          Util.checkf ~eps:0.0
            (Printf.sprintf "particle %d" p)
            reference.(p)
            (Psc.Exec.read_real out [| p |])
        done);
    t "windowed equals full allocation" (fun () ->
        let r1 = Util.run ~use_windows:true Ps_models.Models.particles inputs in
        let r2 = Util.run ~use_windows:false Ps_models.Models.particles inputs in
        let d =
          Util.max_diff
            (List.assoc "XT" r1.Psc.Exec.outputs)
            (List.assoc "XT" r2.Psc.Exec.outputs)
            [ (1, n) ]
        in
        Alcotest.(check bool) "bit equal" true (d = 0.0);
        Alcotest.(check int) "2 planes" (2 * n)
          (List.assoc "S" r1.Psc.Exec.allocated));
    t "parallel execution matches" (fun () ->
        let r1 = Util.run Ps_models.Models.particles inputs in
        let r2 =
          Psc.Pool.with_pool 3 (fun pool ->
              Util.run ~pool Ps_models.Models.particles inputs)
        in
        let d =
          Util.max_diff
            (List.assoc "XT" r1.Psc.Exec.outputs)
            (List.assoc "XT" r2.Psc.Exec.outputs)
            [ (1, n) ]
        in
        Alcotest.(check bool) "bit equal" true (d = 0.0));
    t "scalar record defined per-field" (fun () ->
        let src =
          "T: module (a: real; b: real): [y: real]; type S = record x : real; \
           v : real end; var s: S; define s.x = a + b; s.v = a - b; y = s.x * \
           s.v; end T;"
        in
        let r =
          Util.run src
            [ ("a", Psc.Exec.scalar_real 3.0); ("b", Psc.Exec.scalar_real 1.5) ]
        in
        Util.checkf "y" ((3.0 +. 1.5) *. (3.0 -. 1.5)) (Util.output_real r "y" [||])) ]

let () =
  Alcotest.run "records"
    [ ("parsing", parse_tests);
      ("elaboration", elab_tests);
      ("scheduling", schedule_tests);
      ("execution", exec_tests) ]
