(* Matrix product written as PS equations.

     dune exec examples/matmul.exe -- [N]

   PS has no reduction construct: the dot product is a recursive
   accumulation S[K,I,J] = S[K-1,I,J] + A[I,K]*B[K,J].  The scheduler
   discovers that the accumulation axis is the only iterative one —
   the schedule is DO K (DOALL I (DOALL J (...))) — and windows S down to
   two planes. *)

let n = match Sys.argv with [| _; a |] -> int_of_string a | _ -> 48

let () =
  let project = Psc.load_string Ps_models.Models.matmul in
  let em = Psc.default_module project in
  let sc = Psc.schedule em in
  Fmt.pr "Schedule:@.%s@.@." (Psc.flowchart_string sc);
  Fmt.pr "Windows: %s@.@." (Psc.windows_string sc);

  let a = Ps_models.Models.square_input n in
  let b =
    Psc.Exec.array_real
      ~dims:[ (1, n); (1, n) ]
      (fun ix -> Ps_models.Models.fill_value ((ix.(0) * 131) + ix.(1)))
  in
  let inputs = [ ("A", a); ("B", b); ("N", Psc.Exec.scalar_int n) ] in
  let r = Psc.run project ~inputs in
  let c = List.assoc "C" r.Psc.Exec.outputs in

  (* Native reference. *)
  let av = Array.init (n + 1) (fun i -> Array.init (n + 1) (fun j ->
      if i = 0 || j = 0 then 0.0
      else Ps_models.Models.fill_value (((i - 1) * n) + (j - 1))))
  in
  let bv = Array.init (n + 1) (fun i -> Array.init (n + 1) (fun j ->
      if i = 0 || j = 0 then 0.0 else Ps_models.Models.fill_value ((i * 131) + j)))
  in
  let maxdiff = ref 0.0 in
  for i = 1 to n do
    for j = 1 to n do
      let acc = ref 0.0 in
      for k = 1 to n do
        acc := !acc +. (av.(i).(k) *. bv.(k).(j))
      done;
      maxdiff := max !maxdiff (abs_float (Psc.Exec.read_real c [| i; j |] -. !acc))
    done
  done;
  Fmt.pr "max |PS - native| = %g@." !maxdiff;
  let words = List.assoc "S" r.Psc.Exec.allocated in
  Fmt.pr "accumulator S: %d words (window 2 of %d planes)@." words (n + 1);
  let cost = Psc.work_span project ~env:[ ("N", n) ] in
  Fmt.pr "work = %.0f, span = %.0f, parallelism = %.0f@." cost.Psc.Analysis.work
    cost.Psc.Analysis.span
    (Psc.Analysis.parallelism cost)
