(* The restructuring transformation of paper §4, end to end.

     dune exec examples/hyperplane_seidel.exe -- [M] [maxK]

   The revised relaxation reads west/north neighbours from the *current*
   sweep, so every dimension carries a dependence and the schedule is
   fully iterative (Fig. 7) — parallelism 1.  Solving the dependence
   inequalities gives the time equation 2K + I + J; changing coordinates
   with the unimodular matrix T re-parallelizes the two inner loops, and
   the extraction-sinking pass ("unrotate") restores a 3-plane storage
   window.  We verify bit-for-bit equivalence with the untransformed
   module and report work/span for both. *)

let m, maxk =
  match Sys.argv with
  | [| _; a; b |] -> (int_of_string a, int_of_string b)
  | _ -> (64, 50)

let () =
  let project = Psc.load_string Ps_models.Models.seidel in
  let em = Psc.default_module project in

  (* 1. The natural schedule: all loops iterative (paper Fig. 7). *)
  let sc = Psc.schedule em in
  Fmt.pr "Schedule before transformation (Fig. 7):@.%s@.@."
    (Psc.flowchart_string sc);

  (* 2. The derivation of §4. *)
  let project', tr = Psc.hyperplane ~target:"A" project in
  Fmt.pr "%s@." (Psc.Transform.derivation_to_string tr);
  let hyper_name = tr.Psc.Transform.tr_module.Psc.Ast.m_name in
  let em' = Psc.find_module project' hyper_name in

  (* 3. Re-schedule with extraction sinking: outer DO, inner DOALLs,
     window back to three planes. *)
  let sc' = Psc.schedule ~sink:true em' in
  Fmt.pr "@.Schedule after transformation:@.%s@.@." (Psc.flowchart_string sc');
  Fmt.pr "Windows: %s@.@." (Psc.windows_string sc');

  (* 4. Semantics preserved, including under the window. *)
  let inputs = Ps_models.Models.relaxation_inputs ~m ~maxk in
  let r_orig = Psc.run project ~inputs in
  let r_hyper = Psc.run ~name:hyper_name ~sink:true project' ~inputs in
  let o1 = List.assoc "newA" r_orig.Psc.Exec.outputs in
  let o2 = List.assoc "newA" r_hyper.Psc.Exec.outputs in
  let maxdiff = ref 0.0 in
  for i = 0 to m + 1 do
    for j = 0 to m + 1 do
      maxdiff :=
        max !maxdiff
          (abs_float
             (Psc.Exec.read_real o1 [| i; j |] -. Psc.Exec.read_real o2 [| i; j |]))
    done
  done;
  Fmt.pr "max |original - transformed| = %g@." !maxdiff;

  (* 5. Storage: the paper's 3 x maxK x M vs 2 x M x M comparison. *)
  let words r name = List.assoc name r.Psc.Exec.allocated in
  Fmt.pr "storage: original A (window 2) = %d words; transformed %s (window 3) = %d words@."
    (words r_orig "A") tr.Psc.Transform.tr_new_name
    (words r_hyper tr.Psc.Transform.tr_new_name);

  (* 6. Available parallelism before and after. *)
  let env = [ ("M", m); ("maxK", maxk) ] in
  let c_before = Psc.work_span project ~env in
  let c_after = Psc.work_span ~name:hyper_name ~sink:true project' ~env in
  Fmt.pr "parallelism: before %.2f, after %.1f (work %.0f -> %.0f)@."
    (Psc.Analysis.parallelism c_before)
    (Psc.Analysis.parallelism c_after)
    c_before.Psc.Analysis.work c_after.Psc.Analysis.work
