(* The paper's worked example end to end (Fig. 1 -> Fig. 6).

     dune exec examples/relaxation.exe -- [M] [maxK]

   Jacobi-style relaxation: every stencil read is from iteration K-1, so
   the scheduler produces DO K (DOALL I (DOALL J (eq.3))) and marks the
   iteration dimension of A virtual with a window of two planes.  We run
   it sequentially and on a domain pool, verify both against a native
   OCaml stencil, and report the storage saved by the window. *)

let m, maxk =
  match Sys.argv with
  | [| _; a; b |] -> (int_of_string a, int_of_string b)
  | _ -> (64, 50)

(* Native OCaml reference implementation. *)
let native init =
  let n = m + 2 in
  let cur = ref (Array.init n (fun i -> Array.init n (fun j -> init i j))) in
  for _k = 2 to maxk do
    let prev = !cur in
    cur :=
      Array.init n (fun i ->
          Array.init n (fun j ->
              if i = 0 || j = 0 || i = m + 1 || j = m + 1 then prev.(i).(j)
              else
                (prev.(i).(j - 1) +. prev.(i - 1).(j) +. prev.(i).(j + 1)
                 +. prev.(i + 1).(j))
                /. 4.))
  done;
  !cur

let () =
  let project = Psc.load_string Ps_models.Models.jacobi in
  let em = Psc.default_module project in
  let sc = Psc.schedule em in
  Fmt.pr "Components:@.%s@.@." (Psc.components_string sc);
  Fmt.pr "Flowchart (paper Fig. 6):@.%s@.@." (Psc.flowchart_string sc);
  Fmt.pr "Windows: %s@.@." (Psc.windows_string sc);

  let inputs = Ps_models.Models.relaxation_inputs ~m ~maxk in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let seq, t_seq = time (fun () -> Psc.run project ~inputs) in
  let par, t_par =
    time (fun () ->
        Psc.Pool.with_pool 4 (fun pool -> Psc.run ~pool project ~inputs))
  in
  let full, _ = time (fun () -> Psc.run ~use_windows:false project ~inputs) in

  (* Verify against the native stencil. *)
  let init i j = Ps_models.Models.fill_value ((i * (m + 2)) + j) in
  let reference = native init in
  let out = List.assoc "newA" seq.Psc.Exec.outputs in
  let out_par = List.assoc "newA" par.Psc.Exec.outputs in
  let maxdiff = ref 0.0 in
  for i = 0 to m + 1 do
    for j = 0 to m + 1 do
      let d1 = abs_float (Psc.Exec.read_real out [| i; j |] -. reference.(i).(j)) in
      let d2 = abs_float (Psc.Exec.read_real out_par [| i; j |] -. reference.(i).(j)) in
      maxdiff := max !maxdiff (max d1 d2)
    done
  done;
  Fmt.pr "max |PS - native| = %g (sequential and parallel)@." !maxdiff;

  let words r name = List.assoc name r.Psc.Exec.allocated in
  Fmt.pr "storage for A: windowed %d words vs full %d words (maxK = %d planes)@."
    (words seq "A") (words full "A") maxk;
  Fmt.pr "time: sequential %.3fs, 4-domain pool %.3fs@." t_seq t_par;

  (* Machine-independent parallelism of the schedule. *)
  let cost = Psc.work_span project ~env:[ ("M", m); ("maxK", maxk) ] in
  Fmt.pr "work = %.0f, span = %.0f, parallelism = %.1f@." cost.Psc.Analysis.work
    cost.Psc.Analysis.span
    (Psc.Analysis.parallelism cost)
