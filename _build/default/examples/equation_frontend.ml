(* The paper's "ultimate goal" (§1): translate display-mathematics
   equations directly into PS modules.

     dune exec examples/equation_frontend.exe

   The paper's Equation (2) — the revised relaxation — is written below
   exactly as the mathematics reads, with every subscript and superscript
   as a subscript.  The translator produces the PS module, the scheduler
   shows it is fully iterative, and the hyperplane machinery then
   re-parallelizes it: the complete story from the printed equation to
   concurrent loops, with no PS written by hand. *)

let equation_2 =
  {|
relaxation2(InitialA[i,j], M, maxK) -> newA[i,j]
where i, j = 0 .. M+1; k = 2 .. maxK

# Equation (2) of the paper: for k > 1,
#   A_{k,i,j} = (A_{k,i,j-1} + A_{k,i-1,j} + A_{k-1,i,j+1} + A_{k-1,i+1,j}) / 4
A_{1,i,j}  = InitialA_{i,j}
A_{k,i,j}  = if i = 0 or j = 0 or i = M+1 or j = M+1
             then A_{k-1,i,j}
             else (A_{k,i,j-1} + A_{k,i-1,j}
                 + A_{k-1,i,j+1} + A_{k-1,i+1,j}) / 4
newA_{i,j} = A_{maxK,i,j}
|}

let () =
  let project = Psc.load_equations equation_2 in
  let em = Psc.default_module project in
  Fmt.pr "Generated PS module:@.%s@.@."
    (Psc.Pretty.module_to_string em.Psc.Elab.em_ast);

  let sc = Psc.schedule em in
  Fmt.pr "Natural schedule (fully iterative, as the paper derives):@.%s@.@."
    (Psc.flowchart_string sc);

  let project', tr = Psc.hyperplane ~target:"A" project in
  Fmt.pr "%s@." (Psc.Transform.derivation_to_string tr);
  let name = tr.Psc.Transform.tr_module.Psc.Ast.m_name in
  let em' = Psc.find_module project' name in
  let sc' = Psc.schedule ~sink:true ~trim:true em' in
  Fmt.pr "@.After the hyperplane transformation:@.%s@.@."
    (Psc.flowchart_string sc');
  Fmt.pr "Windows: %s@.@." (Psc.windows_string sc');

  (* And it runs. *)
  let m = 24 and maxk = 16 in
  let inputs = Ps_models.Models.relaxation_inputs ~m ~maxk in
  let r1 = Psc.run project ~inputs in
  let r2 = Psc.run ~name ~sink:true ~trim:true project' ~inputs in
  let worst = ref 0.0 in
  for i = 0 to m + 1 do
    for j = 0 to m + 1 do
      let d =
        abs_float
          (Psc.Exec.read_real (List.assoc "newA" r1.Psc.Exec.outputs) [| i; j |]
           -. Psc.Exec.read_real (List.assoc "newA" r2.Psc.Exec.outputs) [| i; j |])
      in
      if d > !worst then worst := d
    done
  done;
  Fmt.pr "max |iterative - wavefront| = %g@." !worst
