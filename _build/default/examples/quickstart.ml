(* Quickstart: compile and run a small PS module.

     dune exec examples/quickstart.exe

   A PS module is a set of equations in any order; the compiler finds an
   execution order, decides which loops are parallel (DOALL) and which
   must stay iterative (DO), and the interpreter runs the result. *)

let source =
  {|
Smooth: module (X: array[I] of real; N: int): [Y: array[I] of real];
type
  I = 0 .. N+1;
define
  Y[I] = if (I = 0) or (I = N+1)
         then X[I]
         else (X[I-1] + X[I] + X[I+1]) / 3;
end Smooth;
|}

let () =
  (* 1. Parse + elaborate + single-assignment check. *)
  let project = Psc.load_string source in
  let m = Psc.default_module project in

  (* 2. Schedule: every dimension of Y is parallel. *)
  let sc = Psc.schedule m in
  Fmt.pr "Schedule:@.%s@.@." (Psc.flowchart_string sc);

  (* 3. Run on the interpreter substrate. *)
  let n = 10 in
  let x =
    Psc.Exec.array_real ~dims:[ (0, n + 1) ] (fun ix -> float_of_int ix.(0))
  in
  let result =
    Psc.run project
      ~inputs:[ ("X", x); ("N", Psc.Exec.scalar_int n) ]
  in
  let y = List.assoc "Y" result.Psc.Exec.outputs in
  Fmt.pr "Y = [";
  for i = 0 to n + 1 do
    Fmt.pr "%s%g" (if i > 0 then "; " else "") (Psc.Exec.read_real y [| i |])
  done;
  Fmt.pr "]@.";

  (* 4. The same module, emitted as C. *)
  Fmt.pr "@.Generated C:@.%s" (Psc.emit_c project)
