(* C back end demonstration: generate, compile and run the C emitted for
   the Relaxation module, and compare its checksum with the interpreter.

     dune exec examples/codegen_demo.exe -- [M] [maxK]

   Requires a C compiler on PATH (cc); prints the generated kernel and
   skips the compile step gracefully if cc is unavailable. *)

let m, maxk =
  match Sys.argv with
  | [| _; a; b |] -> (int_of_string a, int_of_string b)
  | _ -> (30, 20)

let () =
  let project = Psc.load_string Ps_models.Models.jacobi in
  let em = Psc.default_module project in

  let c_kernel = Psc.emit_c project in
  Fmt.pr "%s@." c_kernel;

  (* Interpreter checksum with the shared deterministic fill. *)
  let inputs = Ps_models.Models.relaxation_inputs ~m ~maxk in
  let r = Psc.run project ~inputs in
  let out = List.assoc "newA" r.Psc.Exec.outputs in
  let interp_sum = ref 0.0 in
  for i = 0 to m + 1 do
    for j = 0 to m + 1 do
      interp_sum := !interp_sum +. Psc.Exec.read_real out [| i; j |]
    done
  done;
  Fmt.pr "interpreter checksum: %.17g@." !interp_sum;

  if Sys.command "command -v cc > /dev/null 2>&1" <> 0 then
    Fmt.pr "cc not found; skipping native comparison@."
  else begin
    let c_main =
      Psc.emit_c_main ~scalars:[ ("M", m); ("maxK", maxk) ] project
    in
    let dir = Filename.temp_file "psc" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    let src = Filename.concat dir "kernel.c" in
    let exe = Filename.concat dir "kernel" in
    let oc = open_out src in
    output_string oc c_main;
    close_out oc;
    let cmd = Printf.sprintf "cc -O2 -o %s %s -lm" exe src in
    if Sys.command cmd <> 0 then Fmt.pr "C compilation failed@."
    else begin
      let ic = Unix.open_process_in exe in
      let line = input_line ic in
      ignore (Unix.close_process_in ic);
      Fmt.pr "generated C output:      %s@." line;
      (match String.split_on_char ' ' line with
       | [ _; sum ] ->
         let c_sum = float_of_string sum in
         if Float.equal c_sum !interp_sum then
           Fmt.pr "C and interpreter agree to the last bit.@."
         else Fmt.pr "MISMATCH: %.17g vs %.17g@." c_sum !interp_sum
       | _ -> Fmt.pr "unexpected C output@.")
    end;
    ignore em
  end
