(* A second hyperplane case study: longest common subsequence.

     dune exec examples/lcs_wavefront.exe -- [N]

   The LCS recurrence L[i,j] = f(L[i-1,j], L[i,j-1], L[i-1,j-1]) carries
   a dependence in both dimensions, so the scheduler produces DO (DO ...)
   — no parallelism at all.  Solving the dependence inequalities gives
   the time equation t = I + J: anti-diagonals are independent.  The
   transformed program runs an outer DO over the diagonal and a DOALL
   across it, with a 3-plane window, and bound trimming recovers the
   exact wavefront extent.  Unlike the paper's worked relaxation this
   recurrence is 2-dimensional and conditional — showing the machinery is
   not specific to the §4 example. *)

let n = match Sys.argv with [| _; a |] -> int_of_string a | _ -> 200

let inputs =
  [ ("X", Psc.Exec.array_int ~dims:[ (1, n) ] (fun ix -> ((ix.(0) * 7) + 3) mod 4));
    ("Y", Psc.Exec.array_int ~dims:[ (1, n) ] (fun ix -> ((ix.(0) * 5) + 1) mod 4));
    ("N", Psc.Exec.scalar_int n) ]

let () =
  let project = Psc.load_string Ps_models.Models.lcs in
  let em = Psc.default_module project in
  let sc = Psc.schedule em in
  Fmt.pr "Natural schedule (fully iterative):@.%s@.@." (Psc.flowchart_string sc);

  let project', tr = Psc.hyperplane ~target:"L" project in
  Fmt.pr "%s@." (Psc.Transform.derivation_to_string tr);
  let name = tr.Psc.Transform.tr_module.Psc.Ast.m_name in
  let em' = Psc.find_module project' name in
  let sc' = Psc.schedule ~sink:true ~trim:true em' in
  Fmt.pr "@.Wavefront schedule:@.%s@.@." (Psc.flowchart_string sc');
  Fmt.pr "Windows: %s@.@." (Psc.windows_string sc');

  (* Semantics: original, transformed, and a native dynamic program. *)
  let r0 = Psc.run ~stats:true project ~inputs in
  let r1 = Psc.run ~stats:true ~name ~sink:true ~trim:true project' ~inputs in
  let len0 = Psc.Exec.read_int (List.assoc "len" r0.Psc.Exec.outputs) [||] in
  let len1 = Psc.Exec.read_int (List.assoc "len" r1.Psc.Exec.outputs) [||] in
  Fmt.pr "LCS length: original %d, wavefront %d@." len0 len1;
  Fmt.pr "equation evaluations: original %d, wavefront (trimmed) %d@."
    (Option.get r0.Psc.Exec.evaluations)
    (Option.get r1.Psc.Exec.evaluations);
  Fmt.pr "storage for the table: original %d words, wavefront (window 3) %d words@."
    (List.assoc "L" r0.Psc.Exec.allocated)
    (List.assoc tr.Psc.Transform.tr_new_name r1.Psc.Exec.allocated);

  (* Available parallelism before and after. *)
  let env = [ ("N", n) ] in
  let before = Psc.work_span project ~env in
  let after = Psc.work_span ~name ~sink:true ~trim:true project' ~env in
  Fmt.pr "parallelism: before %.2f, after %.1f@."
    (Psc.Analysis.parallelism before)
    (Psc.Analysis.parallelism after)
