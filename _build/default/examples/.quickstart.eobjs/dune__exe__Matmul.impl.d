examples/matmul.ml: Array Fmt List Ps_models Psc Sys
