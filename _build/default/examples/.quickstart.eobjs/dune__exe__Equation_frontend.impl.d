examples/equation_frontend.ml: Fmt List Ps_models Psc
