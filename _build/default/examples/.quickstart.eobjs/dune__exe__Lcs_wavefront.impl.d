examples/lcs_wavefront.ml: Array Fmt List Option Ps_models Psc Sys
