examples/lcs_wavefront.mli:
