examples/hyperplane_seidel.ml: Fmt List Ps_models Psc Sys
