examples/matmul.mli:
