examples/relaxation.ml: Array Fmt List Ps_models Psc Sys Unix
