examples/hyperplane_seidel.mli:
