examples/relaxation.mli:
