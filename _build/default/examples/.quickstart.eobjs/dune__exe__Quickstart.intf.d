examples/quickstart.mli:
