examples/codegen_demo.ml: Filename Float Fmt List Printf Ps_models Psc String Sys Unix
