examples/quickstart.ml: Array Fmt List Psc
