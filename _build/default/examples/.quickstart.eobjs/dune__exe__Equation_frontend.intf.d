examples/equation_frontend.mli:
