(* Elaborated (resolved) types.

   Nested array types are flattened to a single dimension list, matching
   the paper's view that an array's dimensionality "is the sum of
   subscripts and superscripts" (§2): [array [1..maxK] of array [I,J] of
   real] elaborates to a three-dimensional array. *)

open Ps_lang

type subrange = {
  sr_name : string;        (* declared name, or a generated one for inline ranges *)
  sr_lo : Ast.expr;        (* bound expressions over the module's scalar inputs *)
  sr_hi : Ast.expr;
}

type scalar =
  | Sint
  | Sreal
  | Sbool
  | Senum of string        (* name of the enumeration type *)

type ty =
  | Scalar of scalar
  | Array of subrange list * ty  (* element is never itself an Array *)
  | Record of (string * ty) list

let rec equal_ty a b =
  match a, b with
  | Scalar x, Scalar y -> x = y
  | Array (d1, t1), Array (d2, t2) ->
    List.length d1 = List.length d2
    && List.for_all2 equal_subrange d1 d2
    && equal_ty t1 t2
  | Record f1, Record f2 ->
    List.length f1 = List.length f2
    && List.for_all2
         (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && equal_ty t1 t2)
         f1 f2
  | (Scalar _ | Array _ | Record _), _ -> false

and equal_subrange s1 s2 =
  (* Two subranges are the same dimension type iff their bounds agree;
     names are only for display and alignment. *)
  Ast.equal_expr s1.sr_lo s2.sr_lo && Ast.equal_expr s1.sr_hi s2.sr_hi

let is_numeric = function Scalar Sint | Scalar Sreal -> true | _ -> false

let dims = function Array (d, _) -> d | Scalar _ | Record _ -> []

let elem_ty = function Array (_, t) -> t | t -> t

let rec pp ppf = function
  | Scalar Sint -> Fmt.string ppf "int"
  | Scalar Sreal -> Fmt.string ppf "real"
  | Scalar Sbool -> Fmt.string ppf "bool"
  | Scalar (Senum n) -> Fmt.pf ppf "enum %s" n
  | Array (dims, elem) ->
    Fmt.pf ppf "array [%a] of %a"
      (Fmt.list ~sep:(Fmt.any ", ") pp_subrange)
      dims pp elem
  | Record fields ->
    Fmt.pf ppf "record %a end"
      (Fmt.list ~sep:(Fmt.any "; ") (fun ppf (n, t) -> Fmt.pf ppf "%s : %a" n pp t))
      fields

and pp_subrange ppf sr =
  Fmt.pf ppf "%s = %s .. %s" sr.sr_name
    (Pretty.expr_to_string sr.sr_lo)
    (Pretty.expr_to_string sr.sr_hi)

let to_string t = Fmt.str "%a" pp t
