(* Symbolic linear forms [c0 + Σ ci·xi] over module parameters.

   Subrange bounds in PS are expressions over the module's scalar inputs
   ([0 .. M + 1], [2 .. maxK]).  The compiler must reason about such bounds
   without knowing the parameter values: recognize that a subscript equals
   a dimension's upper bound (virtual-dimension rule 2, paper §3.4), prove
   two slices disjoint (single-assignment checking), and compute the bounds
   of hyperplane-transformed dimensions (paper §4).  All of these reduce to
   arithmetic on linear forms where the sign of a difference is decidable
   exactly when the difference is a known constant. *)

open Ps_lang

type t = {
  const : int;
  terms : (string * int) list;  (* sorted by variable, no zero coefficients *)
}

let zero = { const = 0; terms = [] }

let of_int const = { const; terms = [] }

let of_var x = { const = 0; terms = [ (x, 1) ] }

let rec merge_terms a b =
  match a, b with
  | [], t | t, [] -> t
  | (xa, ca) :: ra, (xb, cb) :: rb ->
    let cmp = String.compare xa xb in
    if cmp < 0 then (xa, ca) :: merge_terms ra b
    else if cmp > 0 then (xb, cb) :: merge_terms a rb
    else
      let c = ca + cb in
      if c = 0 then merge_terms ra rb else (xa, c) :: merge_terms ra rb

let add a b = { const = a.const + b.const; terms = merge_terms a.terms b.terms }

let scale k a =
  if k = 0 then zero
  else { const = k * a.const; terms = List.map (fun (x, c) -> (x, k * c)) a.terms }

let neg a = scale (-1) a

let sub a b = add a (neg b)

let add_const k a = { a with const = a.const + k }

let equal a b =
  a.const = b.const
  && List.length a.terms = List.length b.terms
  && List.for_all2 (fun (x1, c1) (x2, c2) -> String.equal x1 x2 && c1 = c2) a.terms b.terms

let is_const a = a.terms = []

let const_value a = if is_const a then Some a.const else None

(* [diff_const a b] is [Some k] when [a - b] is the known constant [k]. *)
let diff_const a b =
  let d = sub a b in
  const_value d

(* Convert a PS expression to a linear form, if it is one. *)
let rec of_expr (e : Ast.expr) : t option =
  match e.Ast.e with
  | Ast.Int n -> Some (of_int n)
  | Ast.Var x -> Some (of_var x)
  | Ast.Unop (Ast.Neg, a) -> Option.map neg (of_expr a)
  | Ast.Binop (Ast.Add, a, b) -> combine add a b
  | Ast.Binop (Ast.Sub, a, b) -> combine sub a b
  | Ast.Binop (Ast.Mul, a, b) -> (
    match of_expr a, of_expr b with
    | Some la, Some lb -> (
      match const_value la, const_value lb with
      | Some k, _ -> Some (scale k lb)
      | _, Some k -> Some (scale k la)
      | None, None -> None)
    | _ -> None)
  | _ -> None

and combine op a b =
  match of_expr a, of_expr b with
  | Some la, Some lb -> Some (op la lb)
  | _ -> None

(* Rebuild a compact PS expression from a linear form. *)
let to_expr a : Ast.expr =
  let open Ast in
  let term (x, c) : expr =
    if c = 1 then var_e x
    else if c = -1 then mk (Unop (Neg, var_e x))
    else mk (Binop (Mul, int_e c, var_e x))
  in
  match a.terms with
  | [] -> int_e a.const
  | t0 :: rest ->
    let base = term t0 in
    let with_terms =
      List.fold_left
        (fun acc (x, c) ->
          if c >= 0 then mk (Binop (Add, acc, term (x, c)))
          else mk (Binop (Sub, acc, term (x, -c))))
        base rest
    in
    add_offset with_terms a.const

(* Evaluate under a full assignment of the parameters. *)
let eval env a =
  List.fold_left
    (fun acc (x, c) ->
      match env x with
      | Some v -> acc + (c * v)
      | None -> invalid_arg ("Linexpr.eval: unbound variable " ^ x))
    a.const a.terms

(* [prove_nonneg ~assumptions g] attempts to show that [g >= 0] follows
   from the assumptions [h_i >= 0] (typically the non-emptiness facts
   [hi - lo >= 0] of declared subranges).  It searches for small
   non-negative integer multipliers l_i such that [g - sum l_i * h_i] is a
   known non-negative constant — a bounded Farkas certificate, sound but
   incomplete. *)
let prove_nonneg ~assumptions g =
  (* Keep only assumptions sharing a variable with the goal (or reachable
     through shared variables, one step is enough in practice). *)
  let shares_var a b =
    List.exists (fun (x, _) -> List.mem_assoc x b.terms) a.terms
  in
  let relevant = List.filter (shares_var g) assumptions in
  let relevant = if List.length relevant > 4 then
      (* keep the first four to bound the search *)
      List.filteri (fun i _ -> i < 4) relevant
    else relevant
  in
  let rec search residual = function
    | [] -> (
      match const_value residual with Some c -> c >= 0 | None -> false)
    | h :: rest ->
      let ok = ref false in
      let l = ref 0 in
      while (not !ok) && !l <= 4 do
        if search (sub residual (scale !l h)) rest then ok := true;
        incr l
      done;
      !ok
  in
  search g relevant

let pp ppf a =
  let pp_term first ppf (x, c) =
    if c = 1 then Fmt.pf ppf (if first then "%s" else " + %s") x
    else if c = -1 then Fmt.pf ppf (if first then "-%s" else " - %s") x
    else if c >= 0 then Fmt.pf ppf (if first then "%d*%s" else " + %d*%s") c x
    else Fmt.pf ppf (if first then "%d*%s" else " - %d*%s") (if first then c else -c) x
  in
  match a.terms with
  | [] -> Fmt.int ppf a.const
  | t0 :: rest ->
    pp_term true ppf t0;
    List.iter (pp_term false ppf) rest;
    if a.const > 0 then Fmt.pf ppf " + %d" a.const
    else if a.const < 0 then Fmt.pf ppf " - %d" (-a.const)

let to_string a = Fmt.str "%a" pp a
