(** Semantic elaboration — the compiler front end of paper §3.

    Resolves type declarations, flattens array types, binds each
    equation's implicit index variables, expands whole-array equations
    such as [A[1] = InitialA] into fully subscripted form, and
    type-checks every right-hand side. *)

exception Error of string * Ps_lang.Loc.span

type data_kind = Input | Output | Local

type data = {
  d_name : string;
  d_kind : data_kind;
  d_ty : Stypes.ty;
  d_loc : Ps_lang.Loc.span;
}
(** A data item of the module: parameter, result, or local variable. *)

type index = { ix_var : string; ix_range : Stypes.subrange }
(** A bound index variable of an equation, ranging over a subrange. *)

type lhs_sub =
  | Sub_index of index       (** loops over the dimension's subrange *)
  | Sub_fixed of Ps_lang.Ast.expr  (** selects one plane, e.g. [A[1]] *)
(** One subscript position of a fully expanded left-hand side. *)

type def = {
  df_data : string;
  df_subs : lhs_sub list;
  df_path : string list;  (** record field path; [[]] for whole elements *)
}
(** One variable defined by an equation.  [df_subs] is shorter than the
    variable's dimension list only for whole-array module-call
    assignments; [df_path] is non-empty for per-field record equations
    such as [s.x = ...]. *)

type eq = {
  q_id : int;                 (** 0-based position in the define section *)
  q_name : string;            (** "eq.1", "eq.2", ... in source order *)
  q_defs : def list;          (** several only for multi-result calls *)
  q_indices : index list;     (** loopable dimensions, in LHS order *)
  q_rhs : Ps_lang.Ast.expr;   (** with slice expansion applied *)
  q_loc : Ps_lang.Loc.span;
}

type emodule = {
  em_name : string;
  em_params : data list;
  em_results : data list;
  em_locals : data list;
  em_subranges : (string * Stypes.subrange) list;
  em_enums : (string * string list) list;
  em_eqs : eq list;
  em_ast : Ps_lang.Ast.pmodule;  (** the surface module it came from *)
}

type eprogram = { ep_modules : emodule list }

(** {1 Lookups} *)

val find_data : emodule -> string -> data option

val data_exn : emodule -> string -> data

val find_module : eprogram -> string -> emodule option

val find_eq : emodule -> int -> eq option

val eq_exn : emodule -> int -> eq

(** {1 Elaboration} *)

val is_builtin : string -> bool
(** Whether a name denotes one of the builtin scalar functions (sqrt,
    sin, cos, exp, ln, abs, min, max, intpart). *)

val elab_program : Ps_lang.Ast.program -> eprogram
(** Elaborate a whole program.  Signatures are collected first, so
    modules may call modules defined later in the file.
    @raise Error on any semantic fault. *)

val type_of_expr :
  emodule -> ?eq:eq -> Ps_lang.Ast.expr -> Stypes.ty
(** Type of an expression inside a module, with an equation's index
    variables in scope when [eq] is given (used by the code generator). *)
