(** Elaborated (resolved) types.

    Nested array types are flattened to one dimension list, matching the
    paper's view that dimensionality "is the sum of subscripts and
    superscripts" (§2). *)

type subrange = {
  sr_name : string;   (** declared name, or generated for inline ranges *)
  sr_lo : Ps_lang.Ast.expr;  (** bound expression over the module inputs *)
  sr_hi : Ps_lang.Ast.expr;
}

type scalar =
  | Sint
  | Sreal
  | Sbool
  | Senum of string   (** name of the enumeration type *)

type ty =
  | Scalar of scalar
  | Array of subrange list * ty  (** the element is never itself an Array *)
  | Record of (string * ty) list

val equal_ty : ty -> ty -> bool

val equal_subrange : subrange -> subrange -> bool
(** Bounds equality; names are only for display and alignment. *)

val is_numeric : ty -> bool

val dims : ty -> subrange list
(** Dimension list of an array type; [[]] for scalars and records. *)

val elem_ty : ty -> ty
(** Element type of an array; the type itself otherwise. *)

val pp : ty Fmt.t

val pp_subrange : subrange Fmt.t

val to_string : ty -> string
