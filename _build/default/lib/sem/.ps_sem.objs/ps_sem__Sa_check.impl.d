lib/sem/sa_check.ml: Elab Fmt Fun Linexpr List Option Ps_lang String Stypes
