lib/sem/linexpr.ml: Ast Fmt List Option Ps_lang String
