lib/sem/elab.ml: Ast Fmt List Loc Option Printf Ps_lang String Stypes
