lib/sem/stypes.ml: Ast Fmt List Pretty Ps_lang String
