lib/sem/stypes.mli: Fmt Ps_lang
