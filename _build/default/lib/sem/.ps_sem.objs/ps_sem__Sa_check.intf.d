lib/sem/sa_check.mli: Elab Fmt Ps_lang
