lib/sem/linexpr.mli: Fmt Ps_lang
