lib/sem/elab.mli: Ps_lang Stypes
