(** Symbolic linear forms [c0 + sum ci*xi] over module parameters.

    Subrange bounds in PS are expressions over scalar inputs; the
    compiler reasons about them without knowing the values: bound
    comparison is decidable exactly when a difference is a known
    constant, and entailment under subrange non-emptiness facts is
    approximated by a bounded Farkas certificate. *)

type t = {
  const : int;
  terms : (string * int) list;  (** sorted by variable, no zero coefficients *)
}

val zero : t

val of_int : int -> t

val of_var : string -> t

val add : t -> t -> t

val sub : t -> t -> t

val neg : t -> t

val scale : int -> t -> t

val add_const : int -> t -> t

val equal : t -> t -> bool

val is_const : t -> bool

val const_value : t -> int option

val diff_const : t -> t -> int option
(** [diff_const a b] is [Some k] when [a - b] is the known constant [k];
    [None] when the difference involves parameters. *)

val of_expr : Ps_lang.Ast.expr -> t option
(** Convert a PS expression, if it is linear (constants, variables, [+],
    [-], unary [-], and multiplication by a constant). *)

val to_expr : t -> Ps_lang.Ast.expr
(** Rebuild a compact PS expression. *)

val eval : (string -> int option) -> t -> int
(** Evaluate under an assignment; raises [Invalid_argument] on an unbound
    variable. *)

val prove_nonneg : assumptions:t list -> t -> bool
(** [prove_nonneg ~assumptions g] attempts to show [g >= 0] given
    [h >= 0] for each assumption [h], by searching for small non-negative
    multipliers making [g - sum li*hi] a non-negative constant.  Sound
    but incomplete. *)

val pp : t Fmt.t

val to_string : t -> string
