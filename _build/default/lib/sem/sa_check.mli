(** Single-assignment and coverage checking.

    Every non-input data item must be defined; no element may be defined
    twice; slice definitions should jointly cover the declared extents.
    The checks are symbolic (linear forms over the module inputs):
    decidable cases yield errors, undecidable ones warnings. *)

type severity = Werror | Wwarning

type diagnostic = {
  d_severity : severity;
  d_msg : string;
  d_loc : Ps_lang.Loc.span;
}

val check_module : Elab.emodule -> diagnostic list

val check_program : Elab.eprogram -> diagnostic list

val errors : diagnostic list -> diagnostic list
(** The hard failures among a diagnostic list. *)

val pp_diagnostic : diagnostic Fmt.t
