(* Semantic elaboration: the compiler "front end" of paper §3.

   Resolves type declarations, flattens array types, binds the implicit
   index variables of each equation, expands whole-array (slice) equations
   such as [A[1] = InitialA] into fully subscripted form, and type-checks
   every right-hand side.  The result feeds the dependency-graph builder
   and scheduler unchanged. *)

open Ps_lang

exception Error of string * Loc.span

let err loc fmt = Fmt.kstr (fun msg -> raise (Error (msg, loc))) fmt

type data_kind = Input | Output | Local

type data = {
  d_name : string;
  d_kind : data_kind;
  d_ty : Stypes.ty;
  d_loc : Loc.span;
}

type index = { ix_var : string; ix_range : Stypes.subrange }

(* One subscript position of a fully-expanded left-hand side. *)
type lhs_sub =
  | Sub_index of index       (* loops over the dimension's subrange *)
  | Sub_fixed of Ast.expr    (* selects one plane, e.g. A[1] *)

type def = {
  df_data : string;
  df_subs : lhs_sub list;
  df_path : string list;  (* record field path; [] for whole elements *)
}

type eq = {
  q_id : int;
  q_name : string;            (* "eq.1", "eq.2", ... in source order *)
  q_defs : def list;          (* several only for multi-result module calls *)
  q_indices : index list;     (* loopable dimensions, in LHS order *)
  q_rhs : Ast.expr;           (* with slice expansion applied *)
  q_loc : Loc.span;
}

type emodule = {
  em_name : string;
  em_params : data list;
  em_results : data list;
  em_locals : data list;
  em_subranges : (string * Stypes.subrange) list;  (* declared subrange types *)
  em_enums : (string * string list) list;
  em_eqs : eq list;
  em_ast : Ast.pmodule;
}

type eprogram = {
  ep_modules : emodule list;
}

(* ------------------------------------------------------------------ *)

let find_data em name =
  let all = em.em_params @ em.em_results @ em.em_locals in
  List.find_opt (fun d -> String.equal d.d_name name) all

let data_exn em name =
  match find_data em name with
  | Some d -> d
  | None -> invalid_arg ("Elab.data_exn: unknown data " ^ name)

let find_module ep name =
  List.find_opt (fun m -> String.equal m.em_name name) ep.ep_modules

let find_eq em id = List.find_opt (fun q -> q.q_id = id) em.em_eqs

let eq_exn em id =
  match find_eq em id with
  | Some q -> q
  | None -> invalid_arg (Printf.sprintf "Elab.eq_exn: no equation %d" id)

(* ------------------------------------------------------------------ *)
(* Type elaboration *)

type tenv = {
  te_ranges : (string * Stypes.subrange) list ref;
  te_aliases : (string * Stypes.ty) list ref;
  te_enums : (string * string list) list ref;
  te_fresh : int ref;
}

let fresh_range_name tenv base =
  incr tenv.te_fresh;
  Printf.sprintf "%s#%d" base !(tenv.te_fresh)

let lookup_range tenv name = List.assoc_opt name !(tenv.te_ranges)

(* Elaborate a type expression in index (dimension) position: the result
   must be a subrange. *)
let rec elab_dim tenv ~ctx (t : Ast.type_expr) : Stypes.subrange =
  match t.Ast.t with
  | Ast.Tname n -> (
    match lookup_range tenv n with
    | Some sr -> { sr with Stypes.sr_name = n }
    | None -> err t.Ast.t_loc "array dimension %s is not a subrange type" n)
  | Ast.Tsubrange (lo, hi) ->
    { Stypes.sr_name = fresh_range_name tenv ctx; sr_lo = lo; sr_hi = hi }
  | Ast.Tint | Ast.Treal | Ast.Tbool | Ast.Tarray _ | Ast.Trecord _ | Ast.Tenum _ ->
    err t.Ast.t_loc "array dimension must be a subrange"

and elab_type tenv ~ctx (t : Ast.type_expr) : Stypes.ty =
  match t.Ast.t with
  | Ast.Tint -> Stypes.Scalar Stypes.Sint
  | Ast.Treal -> Stypes.Scalar Stypes.Sreal
  | Ast.Tbool -> Stypes.Scalar Stypes.Sbool
  | Ast.Tname n -> (
    match List.assoc_opt n !(tenv.te_aliases) with
    | Some ty -> ty
    | None -> (
      match lookup_range tenv n with
      | Some _ ->
        (* A variable of subrange type holds an int. *)
        Stypes.Scalar Stypes.Sint
      | None -> (
        match List.assoc_opt n !(tenv.te_enums) with
        | Some _ -> Stypes.Scalar (Stypes.Senum n)
        | None -> err t.Ast.t_loc "unknown type %s" n)))
  | Ast.Tsubrange _ -> Stypes.Scalar Stypes.Sint
  | Ast.Tarray (dims, elem) ->
    let dims = List.map (elab_dim tenv ~ctx) dims in
    let elem_ty = elab_type tenv ~ctx elem in
    (* Flatten nested arrays: dimensionality is the total subscript count. *)
    (match elem_ty with
     | Stypes.Array (inner, e) -> Stypes.Array (dims @ inner, e)
     | (Stypes.Scalar _ | Stypes.Record _) as e -> Stypes.Array (dims, e))
  | Ast.Trecord fields ->
    Stypes.Record (List.map (fun (n, ft) -> (n, elab_type tenv ~ctx ft)) fields)
  | Ast.Tenum constructors ->
    let name = fresh_range_name tenv (ctx ^ "$enum") in
    tenv.te_enums := (name, constructors) :: !(tenv.te_enums);
    Stypes.Scalar (Stypes.Senum name)

(* ------------------------------------------------------------------ *)
(* Module signatures, needed before bodies to type-check calls. *)

type signature = { sg_params : Stypes.ty list; sg_results : Stypes.ty list }

(* Builtin scalar functions available in equations. *)
let builtins : (string * (Stypes.ty list -> Loc.span -> Stypes.ty)) list =
  let real = Stypes.Scalar Stypes.Sreal in
  let int_ty = Stypes.Scalar Stypes.Sint in
  let real_fun name args loc =
    match args with
    | [ a ] when Stypes.is_numeric a -> real
    | _ -> err loc "%s expects one numeric argument" name
  in
  let join2 name args loc =
    match args with
    | [ a; b ] when Stypes.is_numeric a && Stypes.is_numeric b ->
      if Stypes.equal_ty a int_ty && Stypes.equal_ty b int_ty then int_ty else real
    | _ -> err loc "%s expects two numeric arguments" name
  in
  [ ("sqrt", real_fun "sqrt"); ("sin", real_fun "sin"); ("cos", real_fun "cos");
    ("exp", real_fun "exp"); ("ln", real_fun "ln");
    ("abs",
     fun args loc ->
       match args with
       | [ a ] when Stypes.is_numeric a -> a
       | _ -> err loc "abs expects one numeric argument");
    ("min", join2 "min"); ("max", join2 "max");
    ("intpart",
     fun args loc ->
       match args with
       | [ a ] when Stypes.is_numeric a -> int_ty
       | _ -> err loc "intpart expects one numeric argument") ]

let is_builtin name = List.mem_assoc name builtins

(* ------------------------------------------------------------------ *)
(* Expression type checking *)

type check_env = {
  ce_module : string;
  ce_datas : (string * Stypes.ty) list;     (* params, results, locals *)
  ce_indices : (string * index) list;       (* bound index variables *)
  ce_enum_ctors : (string * string) list;   (* constructor -> enum type *)
  ce_signatures : (string * signature) list;
}

let numeric_join a b =
  let open Stypes in
  match a, b with
  | Scalar Sint, Scalar Sint -> Scalar Sint
  | (Scalar Sint | Scalar Sreal), (Scalar Sint | Scalar Sreal) -> Scalar Sreal
  | _ -> invalid_arg "numeric_join"

let rec type_of env (e : Ast.expr) : Stypes.ty =
  let open Stypes in
  match e.Ast.e with
  | Ast.Int _ -> Scalar Sint
  | Ast.Real _ -> Scalar Sreal
  | Ast.Bool _ -> Scalar Sbool
  | Ast.Var x -> (
    match List.assoc_opt x env.ce_indices with
    | Some _ -> Scalar Sint
    | None -> (
      match List.assoc_opt x env.ce_datas with
      | Some ty -> ty
      | None -> (
        match List.assoc_opt x env.ce_enum_ctors with
        | Some enum -> Scalar (Senum enum)
        | None -> err e.Ast.e_loc "unknown identifier %s" x)))
  | Ast.Index (base, subs) -> (
    let bty = type_of env base in
    match bty with
    | Array (dims, elem) ->
      let nsubs = List.length subs and ndims = List.length dims in
      if nsubs > ndims then
        err e.Ast.e_loc "too many subscripts: %d for a %d-dimensional array" nsubs
          ndims;
      List.iter
        (fun s ->
          match type_of env s with
          | Scalar Sint -> ()
          | t -> err s.Ast.e_loc "subscript must be an int, found %s" (to_string t))
        subs;
      let rest = List.filteri (fun i _ -> i >= nsubs) dims in
      if rest = [] then elem else Array (rest, elem)
    | t -> err e.Ast.e_loc "subscripted value is not an array (type %s)" (to_string t))
  | Ast.Field (base, f) -> (
    match type_of env base with
    | Record fields -> (
      match List.assoc_opt f fields with
      | Some ty -> ty
      | None -> err e.Ast.e_loc "record has no field %s" f)
    | t -> err e.Ast.e_loc "field access on a non-record (type %s)" (to_string t))
  | Ast.Call (f, args) -> (
    let arg_tys = List.map (type_of env) args in
    match List.assoc_opt f builtins with
    | Some check -> check arg_tys e.Ast.e_loc
    | None -> (
      match List.assoc_opt f env.ce_signatures with
      | Some sg -> (
        if List.length sg.sg_params <> List.length arg_tys then
          err e.Ast.e_loc "call to %s: expected %d arguments, found %d" f
            (List.length sg.sg_params) (List.length arg_tys);
        List.iteri
          (fun i (expected, got) ->
            let compatible =
              equal_ty expected got
              || (is_numeric expected && is_numeric got
                  && equal_ty expected (Scalar Sreal))
            in
            if not compatible then
              err e.Ast.e_loc "call to %s: argument %d has type %s, expected %s" f
                (i + 1) (to_string got) (to_string expected))
          (List.combine sg.sg_params arg_tys);
        match sg.sg_results with
        | [ r ] -> r
        | [] -> err e.Ast.e_loc "module %s returns no results" f
        | _ ->
          err e.Ast.e_loc
            "module %s returns several results; use a multi-variable equation" f)
      | None -> err e.Ast.e_loc "unknown function or module %s" f))
  | Ast.Unop (Ast.Neg, a) -> (
    match type_of env a with
    | (Scalar Sint | Scalar Sreal) as t -> t
    | t -> err e.Ast.e_loc "unary '-' on a non-number (type %s)" (to_string t))
  | Ast.Unop (Ast.Not, a) -> (
    match type_of env a with
    | Scalar Sbool -> Scalar Sbool
    | t -> err e.Ast.e_loc "'not' on a non-boolean (type %s)" (to_string t))
  | Ast.Binop (op, a, b) -> (
    let ta = type_of env a and tb = type_of env b in
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul ->
      if is_numeric ta && is_numeric tb then numeric_join ta tb
      else err e.Ast.e_loc "arithmetic on non-numbers (%s, %s)" (to_string ta) (to_string tb)
    | Ast.Div ->
      if is_numeric ta && is_numeric tb then Scalar Sreal
      else err e.Ast.e_loc "'/' on non-numbers (%s, %s)" (to_string ta) (to_string tb)
    | Ast.Idiv | Ast.Imod ->
      if equal_ty ta (Scalar Sint) && equal_ty tb (Scalar Sint) then Scalar Sint
      else err e.Ast.e_loc "'div'/'mod' require int operands"
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      let ok =
        (is_numeric ta && is_numeric tb)
        || equal_ty ta tb
      in
      if ok then Scalar Sbool
      else
        err e.Ast.e_loc "comparison between incompatible types (%s, %s)"
          (to_string ta) (to_string tb)
    | Ast.And | Ast.Or ->
      if equal_ty ta (Scalar Sbool) && equal_ty tb (Scalar Sbool) then Scalar Sbool
      else err e.Ast.e_loc "boolean connective on non-booleans")
  | Ast.If (c, t, f) -> (
    (match type_of env c with
     | Scalar Sbool -> ()
     | ty -> err c.Ast.e_loc "condition must be boolean, found %s" (to_string ty));
    let tt = type_of env t and tf = type_of env f in
    if equal_ty tt tf then tt
    else if is_numeric tt && is_numeric tf then Scalar Sreal
    else
      err e.Ast.e_loc "branches of 'if' have different types (%s, %s)"
        (to_string tt) (to_string tf))

(* ------------------------------------------------------------------ *)
(* Equation elaboration *)

(* Append subscripts to an array-valued expression, pushing through
   if-expressions (slice expansion of whole-array equations). *)
let rec append_subs (e : Ast.expr) (subs : Ast.expr list) : Ast.expr =
  if subs = [] then e
  else
    match e.Ast.e with
    | Ast.Var _ -> { e with Ast.e = Ast.Index (e, subs) }
    | Ast.Index (b, s) -> { e with Ast.e = Ast.Index (b, s @ subs) }
    | Ast.If (c, t, f) ->
      { e with Ast.e = Ast.If (c, append_subs t subs, append_subs f subs) }
    | Ast.Field _ -> { e with Ast.e = Ast.Index (e, subs) }
    | Ast.Int _ | Ast.Real _ | Ast.Bool _ | Ast.Call _ | Ast.Unop _ | Ast.Binop _ ->
      err e.Ast.e_loc
        "whole-array equation: cannot distribute subscripts into this expression"

(* Can implicit subscripts be pushed into this expression?  Module calls
   (and anything else opaque) cannot be subscripted pointwise: such
   equations stay whole-array assignments. *)
let rec distributable (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Var _ | Ast.Index _ | Ast.Field _ -> true
  | Ast.If (_, t, f) -> distributable t && distributable f
  | Ast.Int _ | Ast.Real _ | Ast.Bool _ | Ast.Call _ | Ast.Unop _ | Ast.Binop _ ->
    false

let elab_equation ~env ~tenv ~datas ~eq_id (eq : Ast.equation) : eq =
  ignore tenv;
  let q_name = Printf.sprintf "eq.%d" (eq_id + 1) in
  let expand_slices = distributable eq.Ast.eq_rhs in
  (* Resolve each LHS. *)
  let resolve_lhs (l : Ast.lhs) =
    let data =
      match List.find_opt (fun d -> String.equal d.d_name l.Ast.l_name) datas with
      | Some d -> d
      | None -> err l.Ast.l_loc "equation defines undeclared variable %s" l.Ast.l_name
    in
    (match data.d_kind with
     | Input -> err l.Ast.l_loc "equation may not redefine input parameter %s" l.Ast.l_name
     | Output | Local -> ());
    let dims = Stypes.dims data.d_ty in
    let ndims = List.length dims in
    if List.length l.Ast.l_subs > ndims then
      err l.Ast.l_loc "too many subscripts on %s (%d for %d dimensions)" l.Ast.l_name
        (List.length l.Ast.l_subs) ndims;
    (* Classify the explicit subscripts. *)
    let explicit =
      List.map2
        (fun (sub : Ast.expr) (_sr : Stypes.subrange) ->
          match sub.Ast.e with
          | Ast.Var x -> (
            match lookup_range { tenv with te_fresh = tenv.te_fresh } x with
            | Some declared ->
              Sub_index { ix_var = x; ix_range = { declared with Stypes.sr_name = x } }
            | None -> Sub_fixed sub)
          | _ -> Sub_fixed sub)
        l.Ast.l_subs
        (List.filteri (fun i _ -> i < List.length l.Ast.l_subs) dims)
    in
    (* Expand remaining dimensions into fresh index variables. *)
    let used = ref (List.filter_map (function Sub_index ix -> Some ix.ix_var | Sub_fixed _ -> None) explicit) in
    let expand (sr : Stypes.subrange) =
      let base = sr.Stypes.sr_name in
      let rec pick candidate n =
        if List.mem candidate !used then pick (Printf.sprintf "%s_%d" base n) (n + 1)
        else candidate
      in
      (* Prefer the subrange's own name, matching how the paper writes the
         implicit loops of eq.1 and eq.2 over I and J. *)
      let name =
        let bare = if String.contains base '#' then "i" ^ string_of_int (List.length !used) else base in
        pick bare 2
      in
      used := name :: !used;
      Sub_index { ix_var = name; ix_range = { sr with Stypes.sr_name = sr.Stypes.sr_name } }
    in
    let implicit =
      if expand_slices then
        List.filteri (fun i _ -> i >= List.length explicit) dims |> List.map expand
      else []
    in
    (data, explicit @ implicit, l.Ast.l_path)
  in
  let resolved = List.map resolve_lhs eq.Ast.eq_lhs in
  (* All LHSs of one equation must agree on their loop indices. *)
  let indices_of subs =
    List.filter_map (function Sub_index ix -> Some ix | Sub_fixed _ -> None) subs
  in
  let q_indices =
    match resolved with
    | [] -> err eq.Ast.eq_loc "equation with no left-hand side"
    | (_, subs0, _) :: rest ->
      let ixs0 = indices_of subs0 in
      List.iter
        (fun (_, subs, _) ->
          let ixs = indices_of subs in
          if
            List.length ixs <> List.length ixs0
            || not
                 (List.for_all2
                    (fun a b -> String.equal a.ix_var b.ix_var)
                    ixs ixs0)
          then
            err eq.Ast.eq_loc
              "all left-hand sides of a multi-result equation must use the same indices")
        rest;
      ixs0
  in
  (* Check for duplicate index variables. *)
  let rec dup = function
    | [] -> None
    | ix :: rest ->
      if List.exists (fun j -> String.equal j.ix_var ix.ix_var) rest then Some ix
      else dup rest
  in
  (match dup q_indices with
   | Some ix ->
     err eq.Ast.eq_loc
       "index variable %s used for two dimensions; declare a synonym subrange for one of them"
       ix.ix_var
   | None -> ());
  (* Slice expansion: push the implicit subscripts into the RHS. *)
  let n_explicit =
    match eq.Ast.eq_lhs with l :: _ -> List.length l.Ast.l_subs | [] -> 0
  in
  let implicit_vars =
    match resolved with
    | (_, subs, _) :: _ ->
      List.filteri (fun i _ -> i >= n_explicit) subs
      |> List.map (function
           | Sub_index ix -> Ast.var_e ix.ix_var
           | Sub_fixed _ -> assert false)
    | [] -> []
  in
  let q_rhs =
    if implicit_vars = [] then eq.Ast.eq_rhs else append_subs eq.Ast.eq_rhs implicit_vars
  in
  (* Type check. *)
  let env = { env with ce_indices = List.map (fun ix -> (ix.ix_var, ix)) q_indices } in
  (* The type of a LHS after its (possibly partial) subscripts and its
     record field path. *)
  let rec path_type ty path =
    match path with
    | [] -> ty
    | f :: rest -> (
      match ty with
      | Stypes.Record fields -> (
        match List.assoc_opt f fields with
        | Some fty -> path_type fty rest
        | None -> err eq.Ast.eq_loc "record has no field %s" f)
      | t ->
        err eq.Ast.eq_loc "field %s selected on a non-record (type %s)" f
          (Stypes.to_string t))
  in
  let lhs_type data subs path =
    let after_subs =
      match data.d_ty with
      | Stypes.Array (dims, el) ->
        let k = List.length subs in
        let rest = List.filteri (fun i _ -> i >= k) dims in
        if rest = [] then el else Stypes.Array (rest, el)
      | t -> t
    in
    if path = [] then after_subs
    else
      match after_subs with
      | Stypes.Array _ ->
        err eq.Ast.eq_loc
          "field definitions require the array to be fully subscripted"
      | t -> path_type t path
  in
  (* Array compatibility for whole-array assignment: rank and element
     type; bounds are checked dynamically (they may be spelled with
     different parameter names across modules). *)
  let compatible lhs_ty rhs_ty =
    Stypes.equal_ty lhs_ty rhs_ty
    || (Stypes.is_numeric lhs_ty && Stypes.is_numeric rhs_ty
        && Stypes.equal_ty lhs_ty (Stypes.Scalar Stypes.Sreal))
    ||
    match lhs_ty, rhs_ty with
    | Stypes.Array (d1, e1), Stypes.Array (d2, e2) ->
      List.length d1 = List.length d2 && Stypes.equal_ty e1 e2
    | _ -> false
  in
  (match resolved with
   | [ (data, subs, path) ] ->
     let lhs_ty = lhs_type data subs path in
     let rhs_ty = type_of env q_rhs in
     if not (compatible lhs_ty rhs_ty) then
       err eq.Ast.eq_loc "equation for %s has type %s but %s was expected"
         data.d_name (Stypes.to_string rhs_ty) (Stypes.to_string lhs_ty)
   | multi -> (
     (* Multi-result equations must be a direct module call. *)
     match q_rhs.Ast.e with
     | Ast.Call (f, args) -> (
       match List.assoc_opt f env.ce_signatures with
       | None -> err q_rhs.Ast.e_loc "multi-result equation must call a module"
       | Some sg ->
         if List.length sg.sg_results <> List.length multi then
           err eq.Ast.eq_loc "module %s returns %d results but %d variables are defined"
             f (List.length sg.sg_results) (List.length multi);
         ignore (List.map (type_of env) args);
         List.iter2
           (fun (data, subs, path) rty ->
             let lhs_ty = lhs_type data subs path in
             if not (compatible lhs_ty rty) then
               err eq.Ast.eq_loc "result %s of %s has type %s, expected %s"
                 data.d_name f (Stypes.to_string rty) (Stypes.to_string lhs_ty))
           multi sg.sg_results)
     | _ ->
       err eq.Ast.eq_loc
         "an equation defining several variables must call a multi-result module"));
  let q_defs =
    List.map
      (fun (data, subs, path) ->
        { df_data = data.d_name; df_subs = subs; df_path = path })
      resolved
  in
  { q_id = eq_id; q_name; q_defs; q_indices; q_rhs; q_loc = eq.Ast.eq_loc }

(* ------------------------------------------------------------------ *)
(* Module and program elaboration *)

(* Process the type-declaration section into a type environment; shared
   between signature extraction and full module elaboration. *)
let process_type_decls tenv (decls : Ast.type_decl list) =
  List.iter
    (fun (td : Ast.type_decl) ->
      List.iter
        (fun name ->
          match td.Ast.td_def.Ast.t with
          | Ast.Tsubrange (lo, hi) ->
            tenv.te_ranges :=
              (name, { Stypes.sr_name = name; sr_lo = lo; sr_hi = hi })
              :: !(tenv.te_ranges)
          | Ast.Tname other when lookup_range tenv other <> None ->
            (* Subrange synonym: same bounds under a new name. *)
            let sr = Option.get (lookup_range tenv other) in
            tenv.te_ranges :=
              (name, { sr with Stypes.sr_name = name }) :: !(tenv.te_ranges)
          | Ast.Tenum constructors ->
            tenv.te_enums := (name, constructors) :: !(tenv.te_enums)
          | _ ->
            let ty = elab_type tenv ~ctx:name td.Ast.td_def in
            tenv.te_aliases := (name, ty) :: !(tenv.te_aliases))
        td.Ast.td_names)
    decls

let elab_module ~signatures (m : Ast.pmodule) : emodule =
  let tenv =
    { te_ranges = ref []; te_aliases = ref []; te_enums = ref []; te_fresh = ref 0 }
  in
  process_type_decls tenv m.Ast.m_types;
  let mk_data kind (p : Ast.param) =
    { d_name = p.Ast.p_name;
      d_kind = kind;
      d_ty = elab_type tenv ~ctx:p.Ast.p_name p.Ast.p_type;
      d_loc = p.Ast.p_loc }
  in
  let em_params = List.map (mk_data Input) m.Ast.m_params in
  let em_results = List.map (mk_data Output) m.Ast.m_results in
  let em_locals =
    List.concat_map
      (fun (vd : Ast.var_decl) ->
        List.map
          (fun name ->
            { d_name = name;
              d_kind = Local;
              d_ty = elab_type tenv ~ctx:name vd.Ast.vd_type;
              d_loc = vd.Ast.vd_loc })
          vd.Ast.vd_names)
      m.Ast.m_vars
  in
  let datas = em_params @ em_results @ em_locals in
  (* Duplicate declarations. *)
  let rec check_dups = function
    | [] -> ()
    | d :: rest ->
      if List.exists (fun d2 -> String.equal d2.d_name d.d_name) rest then
        err d.d_loc "duplicate declaration of %s" d.d_name;
      check_dups rest
  in
  check_dups datas;
  let enum_ctors =
    List.concat_map
      (fun (ename, ctors) -> List.map (fun c -> (c, ename)) ctors)
      !(tenv.te_enums)
  in
  let env =
    { ce_module = m.Ast.m_name;
      ce_datas = List.map (fun d -> (d.d_name, d.d_ty)) datas;
      ce_indices = [];
      ce_enum_ctors = enum_ctors;
      ce_signatures = signatures }
  in
  let em_eqs =
    List.mapi (fun i eq -> elab_equation ~env ~tenv ~datas ~eq_id:i eq) m.Ast.m_eqs
  in
  { em_name = m.Ast.m_name;
    em_params;
    em_results;
    em_locals;
    em_subranges = List.rev !(tenv.te_ranges);
    em_enums = !(tenv.te_enums);
    em_eqs;
    em_ast = m }

let signature_of_ast (m : Ast.pmodule) : string * signature =
  (* A light elaboration pass over the header only. *)
  let tenv =
    { te_ranges = ref []; te_aliases = ref []; te_enums = ref []; te_fresh = ref 0 }
  in
  process_type_decls tenv m.Ast.m_types;
  let ty_of (p : Ast.param) = elab_type tenv ~ctx:p.Ast.p_name p.Ast.p_type in
  ( m.Ast.m_name,
    { sg_params = List.map ty_of m.Ast.m_params;
      sg_results = List.map ty_of m.Ast.m_results } )

let elab_program (prog : Ast.program) : eprogram =
  let signatures = List.map signature_of_ast prog in
  let rec check_dup_modules = function
    | [] -> ()
    | (m : Ast.pmodule) :: rest ->
      if List.exists (fun (m2 : Ast.pmodule) -> String.equal m2.Ast.m_name m.Ast.m_name) rest
      then err m.Ast.m_loc "duplicate module %s" m.Ast.m_name;
      check_dup_modules rest
  in
  check_dup_modules prog;
  { ep_modules = List.map (elab_module ~signatures) prog }

(* Convenience: expose the type of an arbitrary expression inside an
   equation of an elaborated module (used by the code generator). *)
let type_of_expr em ?eq expr =
  let signatures = [] in
  let env =
    { ce_module = em.em_name;
      ce_datas =
        List.map (fun d -> (d.d_name, d.d_ty)) (em.em_params @ em.em_results @ em.em_locals);
      ce_indices =
        (match eq with
         | Some q -> List.map (fun ix -> (ix.ix_var, ix)) q.q_indices
         | None -> []);
      ce_enum_ctors =
        List.concat_map (fun (ename, cs) -> List.map (fun c -> (c, ename)) cs) em.em_enums;
      ce_signatures = signatures }
  in
  type_of env expr
