lib/models/models.ml: Array Int64 Ps_interp
