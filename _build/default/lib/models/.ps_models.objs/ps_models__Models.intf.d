lib/models/models.mli: Ps_interp
