lib/lang/loc.ml: Char Fmt
