lib/lang/ast.ml: Bool Float List Loc String
