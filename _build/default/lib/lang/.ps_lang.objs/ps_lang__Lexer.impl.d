lib/lang/lexer.ml: Char List Loc Printf String Token
