lib/lang/parser.ml: Ast Lexer List Loc Printf String Token
