lib/lang/token.mli:
