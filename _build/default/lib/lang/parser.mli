(** Recursive-descent parser for the PS surface syntax (paper §2). *)

exception Error of string * Loc.span
(** Raised on a syntax error, with a message and the offending location. *)

type t

val create : string -> t
(** Parser over an in-memory source string. *)

val parse_expr : t -> Ast.expr

val parse_module : t -> Ast.pmodule

val parse_program : t -> Ast.program

val program_of_string : string -> Ast.program
(** Parse a complete program (one or more modules). *)

val module_of_string : string -> Ast.pmodule
(** Parse a program and return its first module. *)

val expr_of_string : string -> Ast.expr
(** Parse a standalone expression; rejects trailing input. *)
