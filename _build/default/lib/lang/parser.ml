(* Recursive-descent parser for PS.

   The grammar is LL(1) except for one spot: inside a type position, '('
   may open either an enumeration '(red, green)' or a parenthesized
   subrange bound '(M + 1) .. N'.  We resolve it with lexer backtracking. *)

exception Error of string * Loc.span

type t = { lx : Lexer.t }

let create src = { lx = Lexer.create src }

let error_at span msg = raise (Error (msg, span))

let peek p = Lexer.peek p.lx

let next p = Lexer.next p.lx

let peek_tok p = fst (peek p)

let expect p tok =
  let got, span = next p in
  if Token.equal got tok then span
  else
    error_at span
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string got))

let expect_ident p =
  match next p with
  | Token.IDENT s, span -> (s, span)
  | got, span ->
    error_at span
      (Printf.sprintf "expected an identifier but found %s" (Token.to_string got))

let accept p tok =
  match peek p with
  | got, _ when Token.equal got tok ->
    ignore (next p);
    true
  | _ -> false

(* --- expressions --------------------------------------------------- *)

let rec parse_expr p : Ast.expr =
  match peek p with
  | Token.KW_IF, start ->
    ignore (next p);
    let cond = parse_expr p in
    ignore (expect p Token.KW_THEN);
    let e_then = parse_expr p in
    ignore (expect p Token.KW_ELSE);
    let e_else = parse_expr p in
    { e = Ast.If (cond, e_then, e_else); e_loc = Loc.merge start e_else.e_loc }
  | _ -> parse_or p

and parse_or p =
  let lhs = parse_and p in
  if accept p Token.KW_OR then
    let rhs = parse_or_rhs p lhs Ast.Or in
    rhs
  else lhs

and parse_or_rhs p lhs op =
  let rhs = parse_and p in
  let e =
    { Ast.e = Ast.Binop (op, lhs, rhs); e_loc = Loc.merge lhs.Ast.e_loc rhs.Ast.e_loc }
  in
  if accept p Token.KW_OR then parse_or_rhs p e Ast.Or else e

and parse_and p =
  let lhs = parse_rel p in
  if accept p Token.KW_AND then parse_and_rhs p lhs else lhs

and parse_and_rhs p lhs =
  let rhs = parse_rel p in
  let e =
    { Ast.e = Ast.Binop (Ast.And, lhs, rhs);
      e_loc = Loc.merge lhs.Ast.e_loc rhs.Ast.e_loc }
  in
  if accept p Token.KW_AND then parse_and_rhs p e else e

and parse_rel p =
  let lhs = parse_add p in
  let op =
    match peek_tok p with
    | Token.EQ -> Some Ast.Eq
    | Token.NE -> Some Ast.Ne
    | Token.LT -> Some Ast.Lt
    | Token.LE -> Some Ast.Le
    | Token.GT -> Some Ast.Gt
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    ignore (next p);
    let rhs = parse_add p in
    { e = Ast.Binop (op, lhs, rhs); e_loc = Loc.merge lhs.Ast.e_loc rhs.Ast.e_loc }

and parse_add p =
  let rec loop lhs =
    match peek_tok p with
    | Token.PLUS ->
      ignore (next p);
      let rhs = parse_mul p in
      loop
        { Ast.e = Ast.Binop (Ast.Add, lhs, rhs);
          e_loc = Loc.merge lhs.Ast.e_loc rhs.Ast.e_loc }
    | Token.MINUS ->
      ignore (next p);
      let rhs = parse_mul p in
      loop
        { Ast.e = Ast.Binop (Ast.Sub, lhs, rhs);
          e_loc = Loc.merge lhs.Ast.e_loc rhs.Ast.e_loc }
    | _ -> lhs
  in
  loop (parse_mul p)

and parse_mul p =
  let rec loop lhs =
    let op =
      match peek_tok p with
      | Token.STAR -> Some Ast.Mul
      | Token.SLASH -> Some Ast.Div
      | Token.KW_DIV -> Some Ast.Idiv
      | Token.KW_MOD -> Some Ast.Imod
      | _ -> None
    in
    match op with
    | None -> lhs
    | Some op ->
      ignore (next p);
      let rhs = parse_unary p in
      loop
        { Ast.e = Ast.Binop (op, lhs, rhs);
          e_loc = Loc.merge lhs.Ast.e_loc rhs.Ast.e_loc }
  in
  loop (parse_unary p)

and parse_unary p =
  match peek p with
  | Token.MINUS, start ->
    ignore (next p);
    let e = parse_unary p in
    { e = Ast.Unop (Ast.Neg, e); e_loc = Loc.merge start e.Ast.e_loc }
  | Token.KW_NOT, start ->
    ignore (next p);
    let e = parse_unary p in
    { e = Ast.Unop (Ast.Not, e); e_loc = Loc.merge start e.Ast.e_loc }
  | _ -> parse_postfix p

and parse_postfix p =
  let rec loop e =
    match peek p with
    | Token.LBRACKET, _ ->
      ignore (next p);
      let subs = parse_expr_list p in
      let close = expect p Token.RBRACKET in
      loop { Ast.e = Ast.Index (e, subs); e_loc = Loc.merge e.Ast.e_loc close }
    | Token.DOT, _ ->
      ignore (next p);
      let field, fspan = expect_ident p in
      loop { Ast.e = Ast.Field (e, field); e_loc = Loc.merge e.Ast.e_loc fspan }
    | _ -> e
  in
  loop (parse_primary p)

and parse_primary p =
  match next p with
  | Token.INT_LIT n, span -> { e = Ast.Int n; e_loc = span }
  | Token.REAL_LIT f, span -> { e = Ast.Real f; e_loc = span }
  | Token.KW_TRUE, span -> { e = Ast.Bool true; e_loc = span }
  | Token.KW_FALSE, span -> { e = Ast.Bool false; e_loc = span }
  | Token.IDENT name, span -> (
    match peek p with
    | Token.LPAREN, _ ->
      ignore (next p);
      let args = if Token.equal (peek_tok p) Token.RPAREN then [] else parse_expr_list p in
      let close = expect p Token.RPAREN in
      { e = Ast.Call (name, args); e_loc = Loc.merge span close }
    | _ -> { e = Ast.Var name; e_loc = span })
  | Token.LPAREN, _ ->
    let e = parse_expr p in
    ignore (expect p Token.RPAREN);
    e
  | got, span ->
    error_at span
      (Printf.sprintf "expected an expression but found %s" (Token.to_string got))

and parse_expr_list p =
  let e = parse_expr p in
  if accept p Token.COMMA then e :: parse_expr_list p else [ e ]

(* --- types ---------------------------------------------------------- *)

let rec parse_type p : Ast.type_expr =
  match peek p with
  | Token.KW_INT, span -> ignore (next p); { t = Ast.Tint; t_loc = span }
  | Token.KW_REAL, span -> ignore (next p); { t = Ast.Treal; t_loc = span }
  | Token.KW_BOOL, span -> ignore (next p); { t = Ast.Tbool; t_loc = span }
  | Token.KW_ARRAY, start ->
    ignore (next p);
    ignore (expect p Token.LBRACKET);
    let dims = parse_index_types p in
    ignore (expect p Token.RBRACKET);
    ignore (expect p Token.KW_OF);
    let elem = parse_type p in
    { t = Ast.Tarray (dims, elem); t_loc = Loc.merge start elem.Ast.t_loc }
  | Token.KW_RECORD, start ->
    ignore (next p);
    let fields = parse_record_fields p in
    let close = expect p Token.KW_END in
    { t = Ast.Trecord fields; t_loc = Loc.merge start close }
  | Token.LPAREN, start -> parse_paren_type p start
  | _, start ->
    (* Either a type name used alone, or the start of a subrange
       expression such as [0 .. M + 1] or [M - 1 .. N].  A bare
       identifier not followed by '..' is a type name. *)
    let snap = Lexer.save p.lx in
    (match next p with
     | Token.IDENT name, span when not (Token.equal (peek_tok p) Token.DOTDOT)
                                   && not (is_expr_continuation (peek_tok p)) ->
       { t = Ast.Tname name; t_loc = span }
     | _ ->
       Lexer.restore p.lx snap;
       let lo = parse_add p in
       ignore (expect p Token.DOTDOT);
       let hi = parse_add p in
       { t = Ast.Tsubrange (lo, hi); t_loc = Loc.merge start hi.Ast.e_loc })

and is_expr_continuation = function
  | Token.PLUS | Token.MINUS | Token.STAR | Token.SLASH | Token.KW_DIV
  | Token.KW_MOD | Token.LBRACKET ->
    true
  | _ -> false

and parse_paren_type p start =
  (* '(' in type position: enumeration or parenthesized subrange bound. *)
  let snap = Lexer.save p.lx in
  ignore (expect p Token.LPAREN);
  let rec idents acc =
    match next p with
    | Token.IDENT s, _ -> (
      match next p with
      | Token.COMMA, _ -> idents (s :: acc)
      | Token.RPAREN, span -> Some (List.rev (s :: acc), span)
      | _ -> None)
    | _ -> None
  in
  match idents [] with
  | Some (constructors, close) when not (Token.equal (peek_tok p) Token.DOTDOT) ->
    { t = Ast.Tenum constructors; t_loc = Loc.merge start close }
  | _ ->
    Lexer.restore p.lx snap;
    let lo = parse_add p in
    ignore (expect p Token.DOTDOT);
    let hi = parse_add p in
    { t = Ast.Tsubrange (lo, hi); t_loc = Loc.merge start hi.Ast.e_loc }

and parse_index_types p =
  (* Index positions inside array [...]: a type name, or an inline
     subrange.  'array [I, J]' means two named dimensions. *)
  let one () =
    let start = snd (peek p) in
    let snap = Lexer.save p.lx in
    match next p with
    | Token.IDENT name, span
      when Token.equal (peek_tok p) Token.COMMA
           || Token.equal (peek_tok p) Token.RBRACKET ->
      { Ast.t = Ast.Tname name; t_loc = span }
    | _ ->
      Lexer.restore p.lx snap;
      let lo = parse_add p in
      ignore (expect p Token.DOTDOT);
      let hi = parse_add p in
      { Ast.t = Ast.Tsubrange (lo, hi); t_loc = Loc.merge start hi.Ast.e_loc }
  in
  let rec loop acc =
    let d = one () in
    if accept p Token.COMMA then loop (d :: acc) else List.rev (d :: acc)
  in
  loop []

and parse_record_fields p =
  let rec loop acc =
    match peek p with
    | Token.KW_END, _ -> List.rev acc
    | Token.IDENT _, _ ->
      let names = parse_ident_list p in
      ignore (expect p Token.COLON);
      let ty = parse_type p in
      ignore (accept p Token.SEMI);
      let acc = List.fold_left (fun acc n -> (n, ty) :: acc) acc names in
      loop acc
    | got, span ->
      error_at span
        (Printf.sprintf "expected a record field or 'end' but found %s"
           (Token.to_string got))
  in
  loop []

and parse_ident_list p =
  let x, _ = expect_ident p in
  if accept p Token.COMMA then x :: parse_ident_list p else [ x ]

(* --- declarations ---------------------------------------------------- *)

let parse_param_group p : Ast.param list =
  let start = snd (peek p) in
  let names = parse_ident_list p in
  ignore (expect p Token.COLON);
  let ty = parse_type p in
  List.map
    (fun n -> { Ast.p_name = n; p_type = ty; p_loc = Loc.merge start ty.Ast.t_loc })
    names

let parse_params p ~closing =
  let rec loop acc =
    if Token.equal (peek_tok p) closing then List.rev acc
    else
      let group = parse_param_group p in
      let acc = List.rev_append group acc in
      if accept p Token.SEMI || accept p Token.COMMA then loop acc
      else List.rev acc
  in
  loop []

let parse_type_section p : Ast.type_decl list =
  let rec loop acc =
    match peek p with
    | Token.IDENT _, start ->
      let names = parse_ident_list p in
      ignore (expect p Token.EQ);
      let def = parse_type p in
      ignore (expect p Token.SEMI);
      loop ({ Ast.td_names = names; td_def = def; td_loc = start } :: acc)
    | _ -> List.rev acc
  in
  loop []

let parse_var_section p : Ast.var_decl list =
  let rec loop acc =
    match peek p with
    | Token.IDENT _, start ->
      let names = parse_ident_list p in
      ignore (expect p Token.COLON);
      let ty = parse_type p in
      ignore (expect p Token.SEMI);
      loop ({ Ast.vd_names = names; vd_type = ty; vd_loc = start } :: acc)
    | _ -> List.rev acc
  in
  loop []

let parse_lhs p : Ast.lhs =
  let name, span = expect_ident p in
  let subs, span =
    if accept p Token.LBRACKET then begin
      let subs = parse_expr_list p in
      let close = expect p Token.RBRACKET in
      (subs, Loc.merge span close)
    end
    else ([], span)
  in
  (* Optional record-field path: s.x or S[I].pos . *)
  let rec path acc span =
    if accept p Token.DOT then
      let f, fspan = expect_ident p in
      path (f :: acc) (Loc.merge span fspan)
    else (List.rev acc, span)
  in
  let l_path, span = path [] span in
  { l_name = name; l_subs = subs; l_path; l_loc = span }

let parse_equation p : Ast.equation =
  let start = snd (peek p) in
  let rec lhss acc =
    let l = parse_lhs p in
    if accept p Token.COMMA then lhss (l :: acc) else List.rev (l :: acc)
  in
  let eq_lhs = lhss [] in
  ignore (expect p Token.EQ);
  let eq_rhs = parse_expr p in
  ignore (expect p Token.SEMI);
  { eq_lhs; eq_rhs; eq_loc = Loc.merge start eq_rhs.Ast.e_loc }

let parse_define_section p : Ast.equation list =
  let rec loop acc =
    match peek p with
    | Token.IDENT _, _ -> loop (parse_equation p :: acc)
    | _ -> List.rev acc
  in
  loop []

let parse_module p : Ast.pmodule =
  let m_name, start = expect_ident p in
  ignore (expect p Token.COLON);
  ignore (expect p Token.KW_MODULE);
  ignore (expect p Token.LPAREN);
  let m_params = parse_params p ~closing:Token.RPAREN in
  ignore (expect p Token.RPAREN);
  ignore (expect p Token.COLON);
  ignore (expect p Token.LBRACKET);
  let m_results = parse_params p ~closing:Token.RBRACKET in
  ignore (expect p Token.RBRACKET);
  ignore (accept p Token.SEMI);
  let m_types = if accept p Token.KW_TYPE then parse_type_section p else [] in
  let m_vars = if accept p Token.KW_VAR then parse_var_section p else [] in
  ignore (expect p Token.KW_DEFINE);
  let m_eqs = parse_define_section p in
  let close = expect p Token.KW_END in
  (* Optional trailing module name, as in 'end Relaxation;'. *)
  let close =
    match peek p with
    | Token.IDENT n, span when String.equal n m_name ->
      ignore (next p);
      span
    | _ -> close
  in
  ignore (accept p Token.SEMI);
  { m_name; m_params; m_results; m_types; m_vars; m_eqs;
    m_loc = Loc.merge start close }

let parse_program p : Ast.program =
  let rec loop acc =
    match peek p with
    | Token.EOF, _ -> List.rev acc
    | _ -> loop (parse_module p :: acc)
  in
  loop []

(* --- entry points ----------------------------------------------------- *)

let program_of_string src = parse_program (create src)

let module_of_string src =
  match program_of_string src with
  | [ m ] -> m
  | [] -> error_at Loc.dummy "empty program"
  | m :: _ -> m

let expr_of_string src =
  let p = create src in
  let e = parse_expr p in
  (match peek p with
   | Token.EOF, _ -> ()
   | got, span ->
     error_at span
       (Printf.sprintf "trailing input after expression: %s" (Token.to_string got)));
  e
