(* Hand-written lexer for the PS surface syntax.

   Comments are Pascal-style [(* ... *)] and nest.  Compiler pragmas of the
   form [(*$...*)] (see Fig. 1 of the paper) are treated as comments. *)

exception Error of string * Loc.span

type t = {
  src : string;
  mutable pos : Loc.pos;
  mutable peeked : (Token.t * Loc.span) option;
}

let create src = { src; pos = Loc.start_pos; peeked = None }

let of_string = create

let at_end lx = lx.pos.Loc.offset >= String.length lx.src

let cur lx = lx.src.[lx.pos.Loc.offset]

let looking_at lx s =
  let n = String.length s and off = lx.pos.Loc.offset in
  off + n <= String.length lx.src && String.equal (String.sub lx.src off n) s

let advance lx =
  if not (at_end lx) then lx.pos <- Loc.advance lx.pos (cur lx)

let error lx msg =
  let span = Loc.span lx.pos lx.pos in
  raise (Error (msg, span))

let rec skip_comment lx depth start =
  if at_end lx then
    raise (Error ("unterminated comment", Loc.span start lx.pos))
  else if looking_at lx "*)" then begin
    advance lx; advance lx;
    if depth > 1 then skip_comment lx (depth - 1) start
  end
  else if looking_at lx "(*" then begin
    advance lx; advance lx;
    skip_comment lx (depth + 1) start
  end
  else begin
    advance lx;
    skip_comment lx depth start
  end

let rec skip_ws lx =
  if at_end lx then ()
  else
    match cur lx with
    | ' ' | '\t' | '\r' | '\n' -> advance lx; skip_ws lx
    | '(' when looking_at lx "(*" ->
      let start = lx.pos in
      advance lx; advance lx;
      skip_comment lx 1 start;
      skip_ws lx
    | _ -> ()

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || Char.equal c '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let lex_ident lx =
  let start = lx.pos in
  while (not (at_end lx)) && is_ident_char (cur lx) do advance lx done;
  let s = String.sub lx.src start.Loc.offset (lx.pos.Loc.offset - start.Loc.offset) in
  let tok =
    match Token.keyword_of_string s with
    | Some kw -> kw
    | None -> Token.IDENT s
  in
  (tok, Loc.span start lx.pos)

let lex_number lx =
  let start = lx.pos in
  while (not (at_end lx)) && is_digit (cur lx) do advance lx done;
  (* A '.' starts a real literal only when it is not the '..' of a subrange
     and is followed by a digit. *)
  let is_real =
    (not (at_end lx))
    && Char.equal (cur lx) '.'
    && (not (looking_at lx ".."))
    && lx.pos.Loc.offset + 1 < String.length lx.src
    && is_digit lx.src.[lx.pos.Loc.offset + 1]
  in
  if is_real then begin
    advance lx;
    while (not (at_end lx)) && is_digit (cur lx) do advance lx done;
    if (not (at_end lx)) && (Char.equal (cur lx) 'e' || Char.equal (cur lx) 'E')
    then begin
      advance lx;
      if (not (at_end lx)) && (Char.equal (cur lx) '+' || Char.equal (cur lx) '-')
      then advance lx;
      if at_end lx || not (is_digit (cur lx)) then error lx "malformed exponent";
      while (not (at_end lx)) && is_digit (cur lx) do advance lx done
    end;
    let s = String.sub lx.src start.Loc.offset (lx.pos.Loc.offset - start.Loc.offset) in
    (Token.REAL_LIT (float_of_string s), Loc.span start lx.pos)
  end
  else
    let s = String.sub lx.src start.Loc.offset (lx.pos.Loc.offset - start.Loc.offset) in
    (Token.INT_LIT (int_of_string s), Loc.span start lx.pos)

let lex_symbol lx =
  let start = lx.pos in
  let two tok = advance lx; advance lx; (tok, Loc.span start lx.pos) in
  let one tok = advance lx; (tok, Loc.span start lx.pos) in
  match cur lx with
  | '.' when looking_at lx ".." -> two Token.DOTDOT
  | '.' -> one Token.DOT
  | ':' -> one Token.COLON
  | ';' -> one Token.SEMI
  | ',' -> one Token.COMMA
  | '=' -> one Token.EQ
  | '<' when looking_at lx "<=" -> two Token.LE
  | '<' when looking_at lx "<>" -> two Token.NE
  | '<' -> one Token.LT
  | '>' when looking_at lx ">=" -> two Token.GE
  | '>' -> one Token.GT
  | '(' -> one Token.LPAREN
  | ')' -> one Token.RPAREN
  | '[' -> one Token.LBRACKET
  | ']' -> one Token.RBRACKET
  | '+' -> one Token.PLUS
  | '-' -> one Token.MINUS
  | '*' -> one Token.STAR
  | '/' -> one Token.SLASH
  | c -> error lx (Printf.sprintf "unexpected character %C" c)

let lex_one lx =
  skip_ws lx;
  if at_end lx then (Token.EOF, Loc.span lx.pos lx.pos)
  else
    let c = cur lx in
    if is_ident_start c then lex_ident lx
    else if is_digit c then lex_number lx
    else lex_symbol lx

let next lx =
  match lx.peeked with
  | Some tok ->
    lx.peeked <- None;
    tok
  | None -> lex_one lx

let peek lx =
  match lx.peeked with
  | Some tok -> tok
  | None ->
    let tok = lex_one lx in
    lx.peeked <- Some tok;
    tok

type snapshot = { snap_pos : Loc.pos; snap_peeked : (Token.t * Loc.span) option }

let save lx = { snap_pos = lx.pos; snap_peeked = lx.peeked }

let restore lx s =
  lx.pos <- s.snap_pos;
  lx.peeked <- s.snap_peeked

let all_tokens src =
  let lx = create src in
  let rec loop acc =
    match next lx with
    | Token.EOF, _ -> List.rev acc
    | tok, span -> loop ((tok, span) :: acc)
  in
  loop []
