(* Tokens of the PS surface syntax. *)

type t =
  | IDENT of string
  | INT_LIT of int
  | REAL_LIT of float
  (* keywords *)
  | KW_MODULE
  | KW_TYPE
  | KW_VAR
  | KW_DEFINE
  | KW_END
  | KW_OF
  | KW_ARRAY
  | KW_RECORD
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_DIV
  | KW_MOD
  | KW_INT
  | KW_REAL
  | KW_BOOL
  | KW_TRUE
  | KW_FALSE
  (* punctuation and operators *)
  | COLON
  | SEMI
  | COMMA
  | DOT
  | DOTDOT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

let keyword_table =
  [ ("module", KW_MODULE); ("type", KW_TYPE); ("var", KW_VAR);
    ("define", KW_DEFINE); ("end", KW_END); ("of", KW_OF);
    ("array", KW_ARRAY); ("record", KW_RECORD); ("if", KW_IF);
    ("then", KW_THEN); ("else", KW_ELSE); ("and", KW_AND); ("or", KW_OR);
    ("not", KW_NOT); ("div", KW_DIV); ("mod", KW_MOD); ("int", KW_INT);
    ("real", KW_REAL); ("bool", KW_BOOL); ("true", KW_TRUE);
    ("false", KW_FALSE) ]

let keyword_of_string s =
  (* Keywords are recognized case-insensitively, matching the paper's mixed
     usage ("If", "module"). *)
  List.assoc_opt (String.lowercase_ascii s) keyword_table

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT_LIT n -> Printf.sprintf "integer %d" n
  | REAL_LIT f -> Printf.sprintf "real %g" f
  | KW_MODULE -> "'module'"
  | KW_TYPE -> "'type'"
  | KW_VAR -> "'var'"
  | KW_DEFINE -> "'define'"
  | KW_END -> "'end'"
  | KW_OF -> "'of'"
  | KW_ARRAY -> "'array'"
  | KW_RECORD -> "'record'"
  | KW_IF -> "'if'"
  | KW_THEN -> "'then'"
  | KW_ELSE -> "'else'"
  | KW_AND -> "'and'"
  | KW_OR -> "'or'"
  | KW_NOT -> "'not'"
  | KW_DIV -> "'div'"
  | KW_MOD -> "'mod'"
  | KW_INT -> "'int'"
  | KW_REAL -> "'real'"
  | KW_BOOL -> "'bool'"
  | KW_TRUE -> "'true'"
  | KW_FALSE -> "'false'"
  | COLON -> "':'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | DOTDOT -> "'..'"
  | EQ -> "'='"
  | NE -> "'<>'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | EOF -> "end of input"

let equal (a : t) (b : t) = a = b
