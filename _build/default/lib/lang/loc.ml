(* Source locations for diagnostics.  A [pos] is a point in the input, a
   [span] is a half-open region between two points. *)

type pos = { line : int; col : int; offset : int }

type span = { start_p : pos; end_p : pos }

let start_pos = { line = 1; col = 1; offset = 0 }

let dummy_pos = { line = 0; col = 0; offset = 0 }

let dummy = { start_p = dummy_pos; end_p = dummy_pos }

let span start_p end_p = { start_p; end_p }

let merge a b =
  let start_p = if a.start_p.offset <= b.start_p.offset then a.start_p else b.start_p in
  let end_p = if a.end_p.offset >= b.end_p.offset then a.end_p else b.end_p in
  { start_p; end_p }

let advance p c =
  if Char.equal c '\n' then { line = p.line + 1; col = 1; offset = p.offset + 1 }
  else { p with col = p.col + 1; offset = p.offset + 1 }

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col

let pp ppf s =
  if s.start_p.line = s.end_p.line then
    Fmt.pf ppf "line %d, characters %d-%d" s.start_p.line s.start_p.col s.end_p.col
  else Fmt.pf ppf "lines %d-%d" s.start_p.line s.end_p.line

let to_string s = Fmt.str "%a" pp s
