(** Pretty-printer for PS.

    Produces valid concrete syntax: [parse (print x)] equals [x] up to
    locations, a property the test suite checks on random expressions and
    on every shipped model. *)

val pp_expr : ?prec:int -> Ast.expr Fmt.t
(** Print an expression, parenthesizing as needed under a context of the
    given precedence (0 = top level). *)

val pp_type : Ast.type_expr Fmt.t

val pp_lhs : Ast.lhs Fmt.t

val pp_equation : Ast.equation Fmt.t

val pp_module : Ast.pmodule Fmt.t

val pp_program : Ast.program Fmt.t

val expr_to_string : Ast.expr -> string

val type_to_string : Ast.type_expr -> string

val module_to_string : Ast.pmodule -> string

val program_to_string : Ast.program -> string
