(** Hand-written lexer for the PS surface syntax.

    The lexer supports one token of lookahead ({!peek}) plus full state
    snapshots ({!save}/{!restore}) used by the parser for the few places
    where PS needs backtracking (enumeration types vs. parenthesized
    subrange bounds). *)

exception Error of string * Loc.span
(** Raised on malformed input (bad character, unterminated comment, ...). *)

type t
(** Mutable lexer state over an in-memory source string. *)

val create : string -> t

val of_string : string -> t
(** Alias of {!create}. *)

val next : t -> Token.t * Loc.span
(** Consume and return the next token.  Returns {!Token.EOF} forever once
    the input is exhausted. *)

val peek : t -> Token.t * Loc.span
(** Return the next token without consuming it. *)

type snapshot

val save : t -> snapshot
(** Capture the current lexer state. *)

val restore : t -> snapshot -> unit
(** Rewind to a previously captured state. *)

val all_tokens : string -> (Token.t * Loc.span) list
(** Tokenize a whole string (testing helper); excludes the final EOF. *)
