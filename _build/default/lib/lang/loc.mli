(** Source locations used by the lexer, parser and all diagnostics. *)

type pos = { line : int; col : int; offset : int }
(** A point in the source text.  [line] and [col] are 1-based; [offset] is
    the 0-based byte offset. *)

type span = { start_p : pos; end_p : pos }
(** A half-open region of source text. *)

val start_pos : pos
(** Position of the first character of a file. *)

val dummy_pos : pos
(** Placeholder position for synthesized nodes. *)

val dummy : span
(** Placeholder span for synthesized nodes. *)

val span : pos -> pos -> span
(** [span a b] is the region from [a] (inclusive) to [b] (exclusive). *)

val merge : span -> span -> span
(** Smallest span covering both arguments. *)

val advance : pos -> char -> pos
(** Advance a position over one character, tracking newlines. *)

val pp_pos : pos Fmt.t

val pp : span Fmt.t

val to_string : span -> string
