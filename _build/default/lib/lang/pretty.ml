(* Pretty-printer for PS programs.

   The printer produces valid PS concrete syntax: [parse ∘ print] is the
   identity on ASTs (modulo locations), a property checked by the test
   suite. *)

open Ast

let unop_str = function Neg -> "-" | Not -> "not "

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | Idiv -> "div" | Imod -> "mod"
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "and" | Or -> "or"

(* Precedence levels, loosest to tightest, mirroring the parser. *)
let prec_of = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div | Idiv | Imod -> 5

let rec pp_expr ?(prec = 0) ppf e =
  match e.e with
  | Int n -> if n < 0 then Fmt.pf ppf "(%d)" n else Fmt.int ppf n
  | Real f ->
    (* Print with enough digits to round-trip, and always with a point so
       the lexer reads it back as a real. *)
    let s = Printf.sprintf "%.17g" f in
    let s = if String.contains s '.' || String.contains s 'e' then s else s ^ ".0" in
    Fmt.string ppf s
  | Bool b -> Fmt.string ppf (if b then "true" else "false")
  | Var x -> Fmt.string ppf x
  | Index (b, subs) ->
    Fmt.pf ppf "%a[%a]" (pp_expr ~prec:10) b
      (Fmt.list ~sep:(Fmt.any ", ") (pp_expr ~prec:0))
      subs
  | Field (b, f) -> Fmt.pf ppf "%a.%s" (pp_expr ~prec:10) b f
  | Call (f, args) ->
    Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") (pp_expr ~prec:0)) args
  | Unop (op, a) ->
    let body ppf () = Fmt.pf ppf "%s%a" (unop_str op) (pp_expr ~prec:9) a in
    if prec > 6 then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Binop (op, a, b) ->
    let my = prec_of op in
    (* Comparisons are non-associative in the grammar: both operands need
       the tighter level.  Other binary operators are left-associative. *)
    let lhs_prec =
      match op with
      | Eq | Ne | Lt | Le | Gt | Ge -> my + 1
      | Add | Sub | Mul | Div | Idiv | Imod | And | Or -> my
    in
    let body ppf () =
      Fmt.pf ppf "%a %s %a" (pp_expr ~prec:lhs_prec) a (binop_str op)
        (pp_expr ~prec:(my + 1))
        b
    in
    if my < prec then Fmt.pf ppf "(%a)" body () else body ppf ()
  | If (c, t, f) ->
    let body ppf () =
      Fmt.pf ppf "@[<hv>if %a@ then %a@ else %a@]" (pp_expr ~prec:0) c
        (pp_expr ~prec:0) t (pp_expr ~prec:0) f
    in
    if prec > 0 then Fmt.pf ppf "(%a)" body () else body ppf ()

let rec pp_type ppf ty =
  match ty.t with
  | Tint -> Fmt.string ppf "int"
  | Treal -> Fmt.string ppf "real"
  | Tbool -> Fmt.string ppf "bool"
  | Tname n -> Fmt.string ppf n
  | Tsubrange (lo, hi) -> Fmt.pf ppf "%a .. %a" (pp_expr ~prec:4) lo (pp_expr ~prec:4) hi
  | Tarray (dims, elem) ->
    Fmt.pf ppf "array [%a] of %a"
      (Fmt.list ~sep:(Fmt.any ", ") pp_type)
      dims pp_type elem
  | Trecord fields ->
    Fmt.pf ppf "record %a end"
      (Fmt.list ~sep:(Fmt.any "; ") (fun ppf (n, t) -> Fmt.pf ppf "%s : %a" n pp_type t))
      fields
  | Tenum constructors ->
    Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) constructors

let pp_param ppf p = Fmt.pf ppf "%s : %a" p.p_name pp_type p.p_type

let pp_lhs ppf l =
  (match l.l_subs with
   | [] -> Fmt.string ppf l.l_name
   | subs ->
     Fmt.pf ppf "%s[%a]" l.l_name
       (Fmt.list ~sep:(Fmt.any ", ") (pp_expr ~prec:0))
       subs);
  List.iter (fun f -> Fmt.pf ppf ".%s" f) l.l_path

let pp_equation ppf eq =
  Fmt.pf ppf "@[<hov 2>%a =@ %a;@]"
    (Fmt.list ~sep:(Fmt.any ", ") pp_lhs)
    eq.eq_lhs (pp_expr ~prec:0) eq.eq_rhs

let pp_module ppf m =
  Fmt.pf ppf "@[<v>%s: module (%a):@;<1 2>[%a];@," m.m_name
    (Fmt.list ~sep:(Fmt.any "; ") pp_param)
    m.m_params
    (Fmt.list ~sep:(Fmt.any "; ") pp_param)
    m.m_results;
  if m.m_types <> [] then begin
    Fmt.pf ppf "type@,";
    List.iter
      (fun td ->
        Fmt.pf ppf "  @[%a = %a;@]@,"
          (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
          td.td_names pp_type td.td_def)
      m.m_types
  end;
  if m.m_vars <> [] then begin
    Fmt.pf ppf "var@,";
    List.iter
      (fun vd ->
        Fmt.pf ppf "  @[%a : %a;@]@,"
          (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
          vd.vd_names pp_type vd.vd_type)
      m.m_vars
  end;
  Fmt.pf ppf "define@,";
  List.iter (fun eq -> Fmt.pf ppf "  %a@," pp_equation eq) m.m_eqs;
  Fmt.pf ppf "end %s;@]" m.m_name

let pp_program ppf prog =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:(Fmt.any "@,@,") pp_module) prog

let expr_to_string e = Fmt.str "%a" (pp_expr ~prec:0) e

let type_to_string t = Fmt.str "%a" pp_type t

let module_to_string m = Fmt.str "%a" pp_module m

let program_to_string p = Fmt.str "%a" pp_program p
