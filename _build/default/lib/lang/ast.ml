(* Abstract syntax of PS programs.

   A PS program is a list of modules.  A module has typed input parameters
   and results, optional type and variable declaration sections, and a
   [define] section of order-free single-assignment equations (paper §2). *)

type ident = string

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div        (* real or int arithmetic *)
  | Idiv | Imod                  (* 'div' and 'mod' *)
  | Eq | Ne | Lt | Le | Gt | Ge  (* comparisons *)
  | And | Or                     (* boolean connectives *)

type expr = { e : expr_node; e_loc : Loc.span }

and expr_node =
  | Int of int
  | Real of float
  | Bool of bool
  | Var of ident
  | Index of expr * expr list    (* a[e1, ..., en]; may be a partial (slice) reference *)
  | Field of expr * ident        (* r.f *)
  | Call of ident * expr list    (* module or builtin application *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | If of expr * expr * expr     (* if-expression, both branches mandatory *)

type type_expr = { t : type_node; t_loc : Loc.span }

and type_node =
  | Tint
  | Treal
  | Tbool
  | Tname of ident                          (* reference to a declared type *)
  | Tsubrange of expr * expr                (* lo .. hi *)
  | Tarray of type_expr list * type_expr    (* array [d1, ..., dn] of t *)
  | Trecord of (ident * type_expr) list     (* record f1 : t1; ... end *)
  | Tenum of ident list                     (* (c1, ..., cn) *)

type param = { p_name : ident; p_type : type_expr; p_loc : Loc.span }

type type_decl = { td_names : ident list; td_def : type_expr; td_loc : Loc.span }

type var_decl = { vd_names : ident list; vd_type : type_expr; vd_loc : Loc.span }

(* Left-hand side of an equation: a variable possibly restricted to a slice
   by explicit subscripts.  A subscript is either an index variable (which
   implicitly ranges over the corresponding dimension's subrange) or a
   constant expression selecting one plane, as in [A[1] = InitialA]. *)
type lhs = {
  l_name : ident;
  l_subs : expr list;
  l_path : ident list;  (* record field path, e.g. s.x -> ["x"] *)
  l_loc : Loc.span;
}

type equation = {
  eq_lhs : lhs list;  (* one element normally; several for multi-result calls *)
  eq_rhs : expr;
  eq_loc : Loc.span;
}

type pmodule = {
  m_name : ident;
  m_params : param list;
  m_results : param list;
  m_types : type_decl list;
  m_vars : var_decl list;
  m_eqs : equation list;
  m_loc : Loc.span;
}

type program = pmodule list

(* Constructors that default the location; used by synthesized code
   (hyperplane transform, slice expansion). *)

let mk ?(loc = Loc.dummy) e = { e; e_loc = loc }

let mk_t ?(loc = Loc.dummy) t = { t; t_loc = loc }

let int_e n = mk (Int n)

let var_e x = mk (Var x)

let rec add_offset e n =
  (* [e + n] with constant folding of the common [v + c] shapes, so that
     synthesized subscripts stay in the 'I - constant' class. *)
  if n = 0 then e
  else
    match e.e with
    | Int m -> int_e (m + n)
    | Binop (Add, a, { e = Int m; _ }) -> add_offset a (m + n)
    | Binop (Sub, a, { e = Int m; _ }) -> add_offset a (n - m)
    | _ ->
      if n > 0 then mk (Binop (Add, e, int_e n))
      else mk (Binop (Sub, e, int_e (-n)))

(* Structural equality that ignores locations: used to compare bound
   expressions (e.g. to recognize a subscript equal to the upper bound of
   its subrange) and in tests. *)
let rec equal_expr a b =
  match a.e, b.e with
  | Int x, Int y -> x = y
  | Real x, Real y -> Float.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Var x, Var y -> String.equal x y
  | Index (e1, s1), Index (e2, s2) ->
    equal_expr e1 e2 && equal_exprs s1 s2
  | Field (e1, f1), Field (e2, f2) -> equal_expr e1 e2 && String.equal f1 f2
  | Call (f1, a1), Call (f2, a2) -> String.equal f1 f2 && equal_exprs a1 a2
  | Unop (o1, e1), Unop (o2, e2) -> o1 = o2 && equal_expr e1 e2
  | Binop (o1, l1, r1), Binop (o2, l2, r2) ->
    o1 = o2 && equal_expr l1 l2 && equal_expr r1 r2
  | If (c1, t1, f1), If (c2, t2, f2) ->
    equal_expr c1 c2 && equal_expr t1 t2 && equal_expr f1 f2
  | ( Int _ | Real _ | Bool _ | Var _ | Index _ | Field _ | Call _ | Unop _
    | Binop _ | If _ ), _ -> false

and equal_exprs a b =
  List.length a = List.length b && List.for_all2 equal_expr a b

let rec equal_type a b =
  match a.t, b.t with
  | Tint, Tint | Treal, Treal | Tbool, Tbool -> true
  | Tname x, Tname y -> String.equal x y
  | Tsubrange (l1, h1), Tsubrange (l2, h2) -> equal_expr l1 l2 && equal_expr h1 h2
  | Tarray (d1, t1), Tarray (d2, t2) ->
    List.length d1 = List.length d2
    && List.for_all2 equal_type d1 d2
    && equal_type t1 t2
  | Trecord f1, Trecord f2 ->
    List.length f1 = List.length f2
    && List.for_all2
         (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && equal_type t1 t2)
         f1 f2
  | Tenum c1, Tenum c2 -> List.length c1 = List.length c2 && List.for_all2 String.equal c1 c2
  | (Tint | Treal | Tbool | Tname _ | Tsubrange _ | Tarray _ | Trecord _ | Tenum _), _
    -> false

(* Free variables of an expression (no binders exist inside PS expressions). *)
let free_vars e =
  let rec go acc e =
    match e.e with
    | Int _ | Real _ | Bool _ -> acc
    | Var x -> x :: acc
    | Index (b, subs) -> List.fold_left go (go acc b) subs
    | Field (b, _) -> go acc b
    | Call (_, args) -> List.fold_left go acc args
    | Unop (_, a) -> go acc a
    | Binop (_, a, b) -> go (go acc a) b
    | If (c, t, f) -> go (go (go acc c) t) f
  in
  List.sort_uniq String.compare (go [] e)

(* Capture-free simultaneous substitution of variables by expressions.
   PS expressions have no binders, so plain replacement is safe. *)
let rec subst_vars map e =
  let s = subst_vars map in
  let node =
    match e.e with
    | Int _ | Real _ | Bool _ -> e.e
    | Var x -> (
      match List.assoc_opt x map with Some e' -> e'.e | None -> e.e)
    | Index (b, subs) -> Index (s b, List.map s subs)
    | Field (b, f) -> Field (s b, f)
    | Call (f, args) -> Call (f, List.map s args)
    | Unop (o, a) -> Unop (o, s a)
    | Binop (o, a, b) -> Binop (o, s a, s b)
    | If (c, t, f) -> If (s c, s t, s f)
  in
  { e with e = node }
