(** Tokens of the PS surface syntax. *)

type t =
  | IDENT of string       (** identifier (case-sensitive) *)
  | INT_LIT of int
  | REAL_LIT of float
  | KW_MODULE
  | KW_TYPE
  | KW_VAR
  | KW_DEFINE
  | KW_END
  | KW_OF
  | KW_ARRAY
  | KW_RECORD
  | KW_IF
  | KW_THEN
  | KW_ELSE
  | KW_AND
  | KW_OR
  | KW_NOT
  | KW_DIV
  | KW_MOD
  | KW_INT
  | KW_REAL
  | KW_BOOL
  | KW_TRUE
  | KW_FALSE
  | COLON
  | SEMI
  | COMMA
  | DOT
  | DOTDOT      (** the [..] of subranges *)
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

val keyword_of_string : string -> t option
(** Recognize a keyword, case-insensitively (the paper mixes "If" and
    "if"); [None] for ordinary identifiers. *)

val to_string : t -> string
(** Human-readable form for error messages. *)

val equal : t -> t -> bool
