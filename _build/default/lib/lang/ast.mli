(** Abstract syntax of PS programs (paper §2).

    A PS program is one or more modules.  A module takes typed input
    parameters, returns one or more results, and defines every non-input
    variable with order-free single-assignment equations. *)

type ident = string

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div        (** [+ - * /]; [/] always yields real *)
  | Idiv | Imod                  (** [div] and [mod] on integers *)
  | Eq | Ne | Lt | Le | Gt | Ge  (** comparisons *)
  | And | Or                     (** boolean connectives *)

type expr = { e : expr_node; e_loc : Loc.span }

and expr_node =
  | Int of int
  | Real of float
  | Bool of bool
  | Var of ident
  | Index of expr * expr list
      (** [a[e1, ..., en]]; fewer subscripts than dimensions is a slice *)
  | Field of expr * ident        (** [r.f] *)
  | Call of ident * expr list    (** module or builtin application *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | If of expr * expr * expr     (** if-expression; both branches required *)

type type_expr = { t : type_node; t_loc : Loc.span }

and type_node =
  | Tint
  | Treal
  | Tbool
  | Tname of ident                          (** reference to a declared type *)
  | Tsubrange of expr * expr                (** [lo .. hi] *)
  | Tarray of type_expr list * type_expr    (** [array [d1, ..., dn] of t] *)
  | Trecord of (ident * type_expr) list
  | Tenum of ident list                     (** [(c1, ..., cn)] *)

type param = { p_name : ident; p_type : type_expr; p_loc : Loc.span }

type type_decl = { td_names : ident list; td_def : type_expr; td_loc : Loc.span }

type var_decl = { vd_names : ident list; vd_type : type_expr; vd_loc : Loc.span }

type lhs = {
  l_name : ident;
  l_subs : expr list;
  l_path : ident list;  (** record field path: [s.x] has path [["x"]] *)
  l_loc : Loc.span;
}
(** Left-hand side of an equation: a variable, possibly restricted to a
    slice by explicit subscripts — an index variable ranges over its
    subrange, a constant selects one plane ([A[1] = InitialA]) — and
    possibly narrowed to one record field ([s.x = ...]). *)

type equation = {
  eq_lhs : lhs list;  (** several only for multi-result module calls *)
  eq_rhs : expr;
  eq_loc : Loc.span;
}

type pmodule = {
  m_name : ident;
  m_params : param list;
  m_results : param list;
  m_types : type_decl list;
  m_vars : var_decl list;
  m_eqs : equation list;
  m_loc : Loc.span;
}

type program = pmodule list

(** {1 Constructors} *)

val mk : ?loc:Loc.span -> expr_node -> expr
(** Wrap a node, defaulting to {!Loc.dummy} (synthesized code). *)

val mk_t : ?loc:Loc.span -> type_node -> type_expr

val int_e : int -> expr

val var_e : ident -> expr

val add_offset : expr -> int -> expr
(** [add_offset e n] is [e + n] with constant folding of [v + c] shapes,
    keeping synthesized subscripts in the "I - constant" class. *)

(** {1 Structural operations} *)

val equal_expr : expr -> expr -> bool
(** Structural equality, ignoring locations. *)

val equal_exprs : expr list -> expr list -> bool

val equal_type : type_expr -> type_expr -> bool

val free_vars : expr -> ident list
(** Variables occurring in an expression, sorted, without duplicates
    (PS expressions have no binders). *)

val subst_vars : (ident * expr) list -> expr -> expr
(** Simultaneous substitution of variables by expressions. *)
