(** Loop merging — the improvement the paper lists as ongoing work (§5).

    The component-at-a-time scheduler emits one loop nest per MSCC, so
    non-recursively related equations over the same subranges end up in
    separate nests.  This pass merges loops with equal ranges when every
    dependence between their bodies is "I" or "I - c" (c >= 0) in the
    merged dimension; the result is DOALL only if both loops were DOALL
    and all such dependences are exact.  A later loop may slide across
    independent intervening descriptors to meet its partner, hoisting
    the descriptors it depends on in front when legal.  Merging proceeds
    bottom-up so whole nests fuse. *)

val apply :
  Ps_sem.Elab.emodule ->
  Ps_graph.Dgraph.t ->
  Flowchart.t ->
  Flowchart.t * int
(** Returns the rewritten flowchart and the number of merges. *)
