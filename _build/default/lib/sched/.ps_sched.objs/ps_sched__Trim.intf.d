lib/sched/trim.mli: Flowchart Ps_sem
