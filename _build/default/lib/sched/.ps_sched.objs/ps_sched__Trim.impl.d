lib/sched/trim.ml: Elab Flowchart Linexpr List Ps_lang Ps_sem String Stypes
