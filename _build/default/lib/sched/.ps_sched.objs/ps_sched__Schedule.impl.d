lib/sched/schedule.ml: Array Build Dgraph Elab Flowchart Hashtbl Label List Ps_graph Ps_sem Scc String Stypes
