lib/sched/schedule.mli: Flowchart Ps_graph Ps_sem
