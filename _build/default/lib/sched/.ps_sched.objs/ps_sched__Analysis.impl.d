lib/sched/analysis.ml: Flowchart Linexpr List Ps_lang Ps_sem String Stypes
