lib/sched/flowchart.mli: Fmt Ps_lang Ps_sem
