lib/sched/sink.mli: Flowchart Ps_sem Schedule
