lib/sched/fuse.ml: Array Dgraph Elab Flowchart Label List Ps_graph Ps_lang Ps_sem String Stypes
