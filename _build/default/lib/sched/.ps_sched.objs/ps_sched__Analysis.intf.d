lib/sched/analysis.mli: Flowchart
