lib/sched/sink.ml: Array Ast Elab Flowchart Linexpr List Ps_graph Ps_lang Ps_sem Schedule String Stypes
