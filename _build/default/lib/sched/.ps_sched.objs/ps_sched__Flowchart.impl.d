lib/sched/flowchart.ml: Elab Fmt List Ps_lang Ps_sem Stypes
