lib/sched/fuse.mli: Flowchart Ps_graph Ps_sem
