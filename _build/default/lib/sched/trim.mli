(** Loop-bound trimming for hyperplane-transformed programs.

    The §4 transformation scans the bounding box of the image lattice and
    rejects out-of-lattice points with a guard; Lamport's method derives
    exact bounds instead.  This pass converts guard disjuncts that are
    linear in a loop's variable (coefficient +-1, other variables bound
    by enclosing loops) into [max]/[min] bounds on that loop.  The guard
    is kept, so trimming is always safe — it removes all-dummy
    iterations. *)

val apply : Ps_sem.Elab.emodule -> Flowchart.t -> Flowchart.t * int
(** Returns the flowchart with tightened bounds and the number of guard
    disjuncts converted. *)
