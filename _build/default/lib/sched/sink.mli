(** Extraction sinking — the paper's "unrotate back into the return
    parameter" (§4).

    After the hyperplane transformation, the result extraction reads the
    transformed array with a multi-variable subscript in the time
    dimension; scheduled after the loop, it forces full allocation.
    This pass moves such an extraction into the iterative loop, copying
    exactly the hyperplane just computed by solving the subscript for
    one index variable ({!Flowchart.D_solve}).  With the outside
    reference gone, the time dimension becomes virtual with the window
    the paper states (3 for the worked example).

    Soundness requires the subscript's range over the extraction's index
    space to lie within the loop bounds, discharged with
    {!Ps_sem.Linexpr.prove_nonneg} under subrange non-emptiness facts. *)

type sunk = {
  sk_eq : int;            (** the extraction equation *)
  sk_loop_var : string;   (** the iterative loop it was sunk into *)
  sk_data : string;       (** the windowed array it reads *)
  sk_dim : int;           (** the virtual dimension *)
  sk_window : int;        (** window size enabled by the sink *)
  sk_solved_var : string; (** index variable eliminated by solving *)
}

type result = {
  s_flowchart : Flowchart.t;
  s_windows : Schedule.window list;
  s_sunk : sunk list;
}

val apply : Ps_sem.Elab.emodule -> Schedule.result -> result
(** Sink every eligible extraction; a no-op (with [s_sunk = []]) when
    none qualifies. *)
