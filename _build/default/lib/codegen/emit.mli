(** C code generation (paper §1: "a compiler which generates C code").

    Emission is driven by the flowchart: subrange descriptors become for
    loops annotated [/* DO (iterative) */] or [/* DOALL (concurrent) */]
    (the outermost DOALL of each nest also gets an OpenMP pragma), node
    descriptors become assignments.  Virtual dimensions allocate their
    window and subscript through [% window] (§3.4).

    Unsupported constructs (module calls, record types) raise
    {!Unsupported}; enumerations become [#define]d integers. *)

exception Unsupported of string

val emit_module :
  ?windows:Ps_sched.Schedule.window list ->
  Ps_sem.Elab.emodule ->
  Ps_sched.Flowchart.t ->
  string
(** The kernel: a C function taking inputs (const pointers / scalars)
    and result out-parameters, allocating windowed locals internally. *)

val emit_main :
  ?windows:Ps_sched.Schedule.window list ->
  Ps_sem.Elab.emodule ->
  Ps_sched.Flowchart.t ->
  scalars:(string * int) list ->
  string
(** The kernel plus a [main] that fills array inputs with the
    deterministic generator shared with
    {!Ps_models.Models.fill_value} and prints one checksum line per
    result — the basis of the C-vs-interpreter differential tests.
    @raise Unsupported if a scalar input has no value in [scalars]. *)

val c_name : string -> string
(** Identifier sanitation (C keywords get a [ps_] prefix). *)
