lib/codegen/emit.mli: Ps_sched Ps_sem
