lib/codegen/emit.ml: Buffer Elab Fmt List Printf Ps_lang Ps_sched Ps_sem String Stypes
