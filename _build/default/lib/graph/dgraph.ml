(* The dependency graph G = (N, E) of paper §3.1.

   Nodes are the data items and the equations of a module.  A directed
   edge runs from producer to consumer: from every variable used in an
   equation's right-hand side to the equation, from the equation to the
   variable it defines, and from every variable appearing in a subrange
   bound to each data item whose extent depends on it. *)

type node =
  | Data of string
  | Eq of int

module Node = struct
  type t = node

  let compare (a : t) (b : t) =
    match a, b with
    | Data x, Data y -> String.compare x y
    | Eq x, Eq y -> Int.compare x y
    | Data _, Eq _ -> -1
    | Eq _, Data _ -> 1

  let equal a b = compare a b = 0
end

module NodeSet = Set.Make (Node)
module NodeMap = Map.Make (Node)

type edge_kind =
  | Use   (* Data -> Eq: the equation reads the data *)
  | Def   (* Eq -> Data: the equation defines the data *)
  | Bound (* Data -> Data or Data -> Eq: subrange-bound dependency *)

type edge = {
  e_src : node;
  e_dst : node;
  e_kind : edge_kind;
  e_subs : Label.sub_exp array;
      (* Per-dimension subscript classes, aligned with the dimensions of
         the data endpoint ([e_src] for Use, [e_dst] for Def); empty for
         scalars and Bound edges. *)
}

type t = {
  g_nodes : node list;          (* declaration order: datas then equations *)
  g_edges : edge list;
  g_module : Ps_sem.Elab.emodule;
}

let nodes g = g.g_nodes

let edges g = g.g_edges

let node_set g = NodeSet.of_list g.g_nodes

let succ g n = List.filter (fun e -> Node.equal e.e_src n) g.g_edges

let pred g n = List.filter (fun e -> Node.equal e.e_dst n) g.g_edges

let node_name g = function
  | Data d -> d
  | Eq id -> (Ps_sem.Elab.eq_exn g.g_module id).Ps_sem.Elab.q_name

let pp_node g ppf n = Fmt.string ppf (node_name g n)

(* The data endpoint whose dimensions [e_subs] refers to. *)
let data_endpoint e =
  match e.e_kind, e.e_src, e.e_dst with
  | Use, Data d, _ -> Some d
  | Def, _, Data d -> Some d
  | _ -> None
