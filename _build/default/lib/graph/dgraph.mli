(** The dependency graph G = (N, E) of paper §3.1.

    Nodes are the data items and equations of a module; directed edges
    run from producer to consumer. *)

type node =
  | Data of string
  | Eq of int  (** equation id, see {!Ps_sem.Elab.eq.q_id} *)

module Node : sig
  type t = node

  val compare : t -> t -> int

  val equal : t -> t -> bool
end

module NodeSet : Set.S with type elt = node

module NodeMap : Map.S with type key = node

type edge_kind =
  | Use   (** Data -> Eq: the equation reads the data *)
  | Def   (** Eq -> Data: the equation defines the data *)
  | Bound (** subrange-bound dependency (Data -> Data or Data -> Eq) *)

type edge = {
  e_src : node;
  e_dst : node;
  e_kind : edge_kind;
  e_subs : Label.sub_exp array;
      (** per-dimension subscript classes, aligned with the data
          endpoint's dimensions; empty for scalars and Bound edges *)
}

type t = {
  g_nodes : node list;  (** declaration order: data items then equations *)
  g_edges : edge list;
  g_module : Ps_sem.Elab.emodule;
}

val nodes : t -> node list

val edges : t -> edge list

val node_set : t -> NodeSet.t

val succ : t -> node -> edge list

val pred : t -> node -> edge list

val node_name : t -> node -> string
(** "A" for data, "eq.3" for equations. *)

val pp_node : t -> node Fmt.t

val data_endpoint : edge -> string option
(** The data node whose dimensions [e_subs] refers to. *)
