(* Renderers for dependency graphs: an ASCII listing of nodes and labelled
   edges (the textual equivalent of Fig. 3) and Graphviz DOT output. *)

open Dgraph

let kind_str = function Use -> "use" | Def -> "def" | Bound -> "bound"

let pp_subs ppf subs =
  if Array.length subs > 0 then
    Fmt.pf ppf " [%a]"
      (Fmt.array ~sep:(Fmt.any ", ") Label.pp)
      subs

let pp_edge g ppf e =
  Fmt.pf ppf "%s -> %s (%s)%a" (node_name g e.e_src) (node_name g e.e_dst)
    (kind_str e.e_kind) pp_subs e.e_subs

let pp_listing ppf (g : t) =
  let em = g.g_module in
  Fmt.pf ppf "@[<v>Dependency graph for module %s@," em.Ps_sem.Elab.em_name;
  Fmt.pf ppf "Nodes:@,";
  List.iter
    (fun n ->
      match n with
      | Data d ->
        let data = Ps_sem.Elab.data_exn em d in
        let dims = Ps_sem.Stypes.dims data.Ps_sem.Elab.d_ty in
        if dims = [] then Fmt.pf ppf "  %s (scalar)@," d
        else
          Fmt.pf ppf "  %s (dims: %a)@," d
            (Fmt.list ~sep:(Fmt.any ", ")
               (fun ppf (sr : Ps_sem.Stypes.subrange) ->
                 Fmt.string ppf sr.Ps_sem.Stypes.sr_name))
            dims
      | Eq id ->
        let q = Ps_sem.Elab.eq_exn em id in
        Fmt.pf ppf "  %s (indices: %a)@," q.Ps_sem.Elab.q_name
          (Fmt.list ~sep:(Fmt.any ", ")
             (fun ppf (ix : Ps_sem.Elab.index) -> Fmt.string ppf ix.Ps_sem.Elab.ix_var))
          q.Ps_sem.Elab.q_indices)
    g.g_nodes;
  Fmt.pf ppf "Edges:@,";
  List.iter (fun e -> Fmt.pf ppf "  %a@," (pp_edge g) e) g.g_edges;
  Fmt.pf ppf "@]"

let listing g = Fmt.str "%a" pp_listing g

let dot_escape s =
  String.map (fun c -> if c = '"' then '\'' else c) s

let to_dot (g : t) =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph %s {\n" (dot_escape g.g_module.Ps_sem.Elab.em_name);
  pf "  rankdir=TB;\n";
  List.iter
    (fun n ->
      match n with
      | Data d -> pf "  \"%s\" [shape=ellipse];\n" (dot_escape d)
      | Eq id ->
        pf "  \"%s\" [shape=box];\n" (dot_escape (node_name g (Eq id))))
    g.g_nodes;
  List.iter
    (fun e ->
      let label =
        if Array.length e.e_subs = 0 then
          match e.e_kind with Bound -> "bound" | _ -> ""
        else
          String.concat ", "
            (Array.to_list (Array.map Label.to_string e.e_subs))
      in
      let style = match e.e_kind with Bound -> " style=dashed" | Use | Def -> "" in
      pf "  \"%s\" -> \"%s\" [label=\"%s\"%s];\n"
        (dot_escape (node_name g e.e_src))
        (dot_escape (node_name g e.e_dst))
        (dot_escape label) style)
    g.g_edges;
  pf "}\n";
  Buffer.contents buf

let pp_components g ppf (comps : Scc.component list) =
  Fmt.pf ppf "@[<v>";
  List.iteri
    (fun i (c : Scc.component) ->
      Fmt.pf ppf "Component %d: {%a}@," (i + 1)
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf n -> Fmt.string ppf (node_name g n)))
        c.Scc.c_nodes)
    comps;
  Fmt.pf ppf "@]"
