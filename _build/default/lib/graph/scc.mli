(** Maximal strongly connected components (Tarjan), as the condensation
    in topological order — producers before consumers.  The scheduler
    re-runs this repeatedly on edge-filtered subgraphs (paper §3.3,
    steps 4 and 7). *)

type subgraph = {
  sg_nodes : Dgraph.node list;  (** in stable (declaration) order *)
  sg_edges : Dgraph.edge list;  (** both endpoints inside the node set *)
}

val full_subgraph : Dgraph.t -> subgraph

val restrict : subgraph -> Dgraph.NodeSet.t -> subgraph
(** Keep only the given nodes and the edges between them. *)

val remove_edges : subgraph -> Dgraph.edge list -> subgraph
(** Remove the given edges (by physical identity). *)

type component = {
  c_nodes : Dgraph.node list;  (** in stable order *)
  c_edges : Dgraph.edge list;  (** intra-component edges *)
}

val components : subgraph -> component list
(** The MSCCs, topologically ordered: if an edge runs from component [a]
    to component [b], [a] is listed first. *)

val component_subgraph : subgraph -> component -> subgraph
