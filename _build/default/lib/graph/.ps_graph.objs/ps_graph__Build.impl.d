lib/graph/build.ml: Array Dgraph Elab Hashtbl Label List Ps_lang Ps_sem String Stypes
