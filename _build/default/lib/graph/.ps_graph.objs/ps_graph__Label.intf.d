lib/graph/label.mli: Fmt Ps_lang Ps_sem
