lib/graph/scc.ml: Dgraph Hashtbl List Node NodeSet
