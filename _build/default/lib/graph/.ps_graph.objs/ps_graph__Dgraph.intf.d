lib/graph/dgraph.mli: Fmt Label Map Ps_sem Set
