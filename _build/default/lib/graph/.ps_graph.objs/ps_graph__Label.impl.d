lib/graph/label.ml: Elab Fmt Linexpr List Option Ps_lang Ps_sem String Stypes
