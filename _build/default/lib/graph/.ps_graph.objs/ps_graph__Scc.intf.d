lib/graph/scc.mli: Dgraph
