lib/graph/build.mli: Dgraph Label Ps_lang Ps_sem
