lib/graph/dgraph.ml: Fmt Int Label List Map Ps_sem Set String
