lib/graph/render.ml: Array Buffer Dgraph Fmt Label List Printf Ps_sem Scc String
