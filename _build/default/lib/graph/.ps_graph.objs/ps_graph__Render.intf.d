lib/graph/render.mli: Dgraph Fmt Scc
