(** Renderers for dependency graphs: an ASCII listing (the textual
    equivalent of Fig. 3) and Graphviz DOT. *)

val pp_edge : Dgraph.t -> Dgraph.edge Fmt.t

val pp_listing : Dgraph.t Fmt.t

val listing : Dgraph.t -> string
(** Nodes with their dimensions, edges with their labels. *)

val to_dot : Dgraph.t -> string
(** Graphviz source: ellipses for data, boxes for equations, dashed
    edges for bound dependencies. *)

val pp_components : Dgraph.t -> Scc.component list Fmt.t
