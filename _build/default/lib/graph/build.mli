(** Dependency-graph construction from an elaborated module (paper §3.1;
    Fig. 3 is the result for the Relaxation module). *)

val build : Ps_sem.Elab.emodule -> Dgraph.t
(** Build the graph: a Use edge per array reference (with classified
    subscripts), a Def edge per left-hand side, and Bound edges from
    every variable occurring in a subrange bound to the data items and
    equations whose extents depend on it.  Scalar Use edges and Bound
    edges are deduplicated. *)

val classify_ref :
  Ps_sem.Elab.emodule ->
  Ps_sem.Elab.eq ->
  string ->
  Ps_lang.Ast.expr list ->
  Label.sub_exp array
(** Classify a reference [name[subs]] made inside an equation; missing
    trailing subscripts become {!Label.Slice}. *)

val collect_refs :
  Ps_sem.Elab.emodule ->
  Ps_lang.Ast.expr ->
  (string * Ps_lang.Ast.expr list) list ->
  (string * Ps_lang.Ast.expr list) list
(** Accumulate every data reference in an expression (bare variables are
    references with no subscripts; subscript expressions are searched
    too). *)
