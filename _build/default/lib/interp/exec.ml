(* Flowchart execution.

   The scheduler's flowchart is compiled into nested closures: iterative
   (DO) loops run on the calling domain in index order; parallel (DOALL)
   loops are handed to the domain pool, chunked, with a private frame per
   chunk.  Only the outermost DOALL of a nest is parallelized (inner
   DOALLs run sequentially inside each worker), the standard flattening
   for loop-level parallelism.

   Compilation of each top-level component is deferred until the moment
   it executes, so arrays whose bounds depend on computed scalar locals
   allocate only after those scalars exist — the topological component
   order produced by the scheduler (with the bound edges of §3.1)
   guarantees this is sound. *)

open Ps_sem
open Value

exception Runtime_error = Eval.Runtime_error

let fail fmt = Fmt.kstr (fun m -> raise (Runtime_error m)) fmt

type opts = {
  pool : Ps_runtime.Pool.t option;  (* None: fully sequential *)
  check : bool;                     (* subscript bounds checking *)
  use_windows : bool;               (* honor virtual-dimension windows *)
  min_par : int;                    (* smallest trip count worth forking *)
  collect_stats : bool;             (* count equation evaluations *)
}

let default_opts =
  { pool = None; check = true; use_windows = true; min_par = 4;
    collect_stats = false }

type run_result = {
  outputs : (string * value) list;
  allocated : (string * int) list;  (* words allocated per data item *)
  evaluations : int option;         (* equation evaluations, if counted *)
}

(* ------------------------------------------------------------------ *)

type state = {
  st_prog : Elab.eprogram;
  st_em : Elab.emodule;
  st_opts : opts;
  st_windows : Ps_sched.Schedule.window list;
  st_slabs : (string, slab) Hashtbl.t;
  st_sched_cache : (string, Ps_sched.Schedule.result) Hashtbl.t;
  st_evals : int Atomic.t;
}

let window_of st name dim =
  if not st.st_opts.use_windows then None
  else
    List.find_map
      (fun (w : Ps_sched.Schedule.window) ->
        if String.equal w.Ps_sched.Schedule.w_data name && w.Ps_sched.Schedule.w_dim = dim
        then Some w.Ps_sched.Schedule.w_size
        else None)
      st.st_windows

let rec slab_of st name : slab =
  match Hashtbl.find_opt st.st_slabs name with
  | Some s -> s
  | None ->
    let data =
      match Elab.find_data st.st_em name with
      | Some d -> d
      | None -> fail "unknown data item %s" name
    in
    let dims = Stypes.dims data.Elab.d_ty in
    let elem = Stypes.elem_ty data.Elab.d_ty in
    let ectx = eval_ctx st (fun _ -> None) in
    let dim_specs =
      List.mapi
        (fun p (sr : Stypes.subrange) ->
          let lo = Eval.eval_int ectx sr.Stypes.sr_lo in
          let hi = Eval.eval_int ectx sr.Stypes.sr_hi in
          let extent = hi - lo + 1 in
          if extent < 0 then
            fail "dimension %d of %s has negative extent (%d..%d)" (p + 1) name lo hi;
          let window =
            match window_of st name p with
            | Some w -> min w extent
            | None -> extent
          in
          (lo, extent, window))
        dims
    in
    let s = make_slab ~name ~elem ~dims:dim_specs in
    Hashtbl.add st.st_slabs name s;
    s

and eval_ctx st index : Eval.ctx =
  { Eval.c_em = st.st_em;
    c_slab = slab_of st;
    c_index = index;
    c_call = call st;
    c_check = st.st_opts.check }

and call st fname (args : value list) : value list =
  match Elab.find_module st.st_prog fname with
  | None -> fail "call to unknown module %s" fname
  | Some callee ->
    let sched =
      match Hashtbl.find_opt st.st_sched_cache fname with
      | Some r -> r
      | None ->
        let r = Ps_sched.Schedule.schedule callee in
        Hashtbl.add st.st_sched_cache fname r;
        r
    in
    let inputs =
      try
        List.map2
          (fun (d : Elab.data) v -> (d.Elab.d_name, v))
          callee.Elab.em_params args
      with Invalid_argument _ ->
        fail "call to %s: expected %d arguments, got %d" fname
          (List.length callee.Elab.em_params)
          (List.length args)
    in
    (* Nested module bodies run sequentially: the caller may already be
       inside a parallel region. *)
    let opts = { st.st_opts with pool = None } in
    let r = run_scheduled ~opts ~prog:st.st_prog callee ~sched ~inputs in
    List.map snd r.outputs

(* ------------------------------------------------------------------ *)
(* Input seeding *)

and seed_inputs st (inputs : (string * value) list) =
  (* Scalars first: array extents may depend on them. *)
  let scalar_first =
    List.stable_sort
      (fun (_, a) (_, b) ->
        match a, b with
        | Vscalar _, Varray _ -> -1
        | Varray _, Vscalar _ -> 1
        | _ -> 0)
      inputs
  in
  List.iter
    (fun (name, v) ->
      let data =
        match Elab.find_data st.st_em name with
        | Some d when d.Elab.d_kind = Elab.Input -> d
        | Some _ -> fail "%s is not an input parameter" name
        | None -> fail "unknown input %s" name
      in
      match v with
      | Vscalar sc ->
        let s =
          make_slab ~name ~elem:data.Elab.d_ty ~dims:[]
        in
        set_scalar s [||] sc;
        Hashtbl.replace st.st_slabs name s
      | Varray given ->
        (* Validate shape against the declared dimensions. *)
        let dims = Stypes.dims data.Elab.d_ty in
        if List.length dims <> ndims given then
          fail "input %s: expected %d dimensions, got %d" name (List.length dims)
            (ndims given);
        let ectx = eval_ctx st (fun _ -> None) in
        List.iteri
          (fun p (sr : Stypes.subrange) ->
            let lo = Eval.eval_int ectx sr.Stypes.sr_lo in
            let hi = Eval.eval_int ectx sr.Stypes.sr_hi in
            let di = given.s_dims.(p) in
            if di.di_lo <> lo || di.di_extent <> hi - lo + 1 then
              fail "input %s: dimension %d is %d..%d but %d..%d was declared"
                name (p + 1) di.di_lo
                (di.di_lo + di.di_extent - 1)
                lo hi)
          dims;
        Hashtbl.replace st.st_slabs name { given with s_name = name })
    scalar_first;
  (* Every parameter must be supplied. *)
  List.iter
    (fun (d : Elab.data) ->
      if not (Hashtbl.mem st.st_slabs d.Elab.d_name) then
        fail "missing input %s" d.Elab.d_name)
    st.st_em.Elab.em_params

(* ------------------------------------------------------------------ *)
(* Descriptor compilation *)

and compile_descs st (benv : (string * int) list) ~par (descs : Ps_sched.Flowchart.t)
    ~(max_slot : int ref) : Compile.frame -> unit =
  let fns = Array.of_list (List.map (compile_desc st benv ~par ~max_slot) descs) in
  fun fr -> Array.iter (fun f -> f fr) fns

and compile_desc st benv ~par ~max_slot (d : Ps_sched.Flowchart.descriptor) :
    Compile.frame -> unit =
  match d with
  | Ps_sched.Flowchart.D_data name ->
    (* Ensure allocation at the scheduled point. *)
    fun _ -> ignore (slab_of st name)
  | Ps_sched.Flowchart.D_eq { er_id; er_aliases } ->
    let w = compile_equation st benv ~aliases:er_aliases er_id in
    if st.st_opts.collect_stats then (
      let c = st.st_evals in
      fun fr ->
        Atomic.incr c;
        w fr)
    else w
  | Ps_sched.Flowchart.D_solve s ->
    (* A solved subscript: compute the index value from the enclosing
       loop variables; run the body only when it lands in range. *)
    let slot = List.length benv in
    if slot + 1 > !max_slot then max_slot := slot + 1;
    let cctx = compile_ctx st benv in
    let rhs_f = Compile.compile_int cctx s.Ps_sched.Flowchart.sv_rhs in
    let lo_f = Compile.compile_int cctx s.Ps_sched.Flowchart.sv_range.Stypes.sr_lo in
    let hi_f = Compile.compile_int cctx s.Ps_sched.Flowchart.sv_range.Stypes.sr_hi in
    let benv' = (s.Ps_sched.Flowchart.sv_var, slot) :: benv in
    let body = compile_descs st benv' ~par ~max_slot s.Ps_sched.Flowchart.sv_body in
    fun fr ->
      let v = rhs_f fr in
      if v >= lo_f fr && v <= hi_f fr then begin
        fr.(slot) <- v;
        body fr
      end
  | Ps_sched.Flowchart.D_loop l ->
    let slot = List.length benv in
    if slot + 1 > !max_slot then max_slot := slot + 1;
    let cctx = compile_ctx st benv in
    let lo_f = Compile.compile_int cctx l.Ps_sched.Flowchart.lp_range.Stypes.sr_lo in
    let hi_f = Compile.compile_int cctx l.Ps_sched.Flowchart.lp_range.Stypes.sr_hi in
    let benv' = (l.Ps_sched.Flowchart.lp_var, slot) :: benv in
    (match l.Ps_sched.Flowchart.lp_kind with
     | Ps_sched.Flowchart.Iterative ->
       let body = compile_descs st benv' ~par ~max_slot l.Ps_sched.Flowchart.lp_body in
       fun fr ->
         let lo = lo_f fr and hi = hi_f fr in
         for v = lo to hi do
           fr.(slot) <- v;
           body fr
         done
     | Ps_sched.Flowchart.Parallel -> (
       match st.st_opts.pool with
       | Some pool when par ->
         (* Parallelize this DOALL; inner DOALLs run sequentially. *)
         let body = compile_descs st benv' ~par:false ~max_slot l.Ps_sched.Flowchart.lp_body in
         let min_par = st.st_opts.min_par in
         fun fr ->
           let lo = lo_f fr and hi = hi_f fr in
           if hi - lo + 1 < min_par then
             for v = lo to hi do
               fr.(slot) <- v;
               body fr
             done
           else
             Ps_runtime.Pool.parallel_for pool ~lo ~hi (fun clo chi ->
                 let fr' = Array.copy fr in
                 for v = clo to chi do
                   fr'.(slot) <- v;
                   body fr'
                 done)
       | _ ->
         let body = compile_descs st benv' ~par ~max_slot l.Ps_sched.Flowchart.lp_body in
         fun fr ->
           let lo = lo_f fr and hi = hi_f fr in
           for v = lo to hi do
             fr.(slot) <- v;
             body fr
           done))

and compile_ctx st (benv : (string * int) list) : Compile.cctx =
  { Compile.k_em = st.st_em;
    k_slab = slab_of st;
    k_slot = (fun v -> List.assoc_opt v benv);
    k_call = call st;
    k_check = st.st_opts.check }

and compile_equation st benv ~aliases er_id : Compile.frame -> unit =
  let q = Elab.eq_exn st.st_em er_id in
  (* Resolve the frame slot of an equation index variable, following the
     scheduler's renamings. *)
  let slot_of v =
    let v' = match List.assoc_opt v aliases with Some l -> l | None -> v in
    match List.assoc_opt v' benv with
    | Some s -> Some s
    | None -> List.assoc_opt v benv
  in
  List.iter
    (fun (ix : Elab.index) ->
      if slot_of ix.Elab.ix_var = None then
        fail "%s: index %s is not bound by an enclosing loop" q.Elab.q_name
          ix.Elab.ix_var)
    q.Elab.q_indices;
  let cctx = { (compile_ctx st benv) with Compile.k_slot = slot_of } in
  let compile_subs (df : Elab.def) (s : slab) =
    Array.of_list
      (List.map
         (function
           | Elab.Sub_index ix ->
             let slot = Option.get (slot_of ix.Elab.ix_var) in
             fun (fr : Compile.frame) -> Array.unsafe_get fr slot
           | Elab.Sub_fixed e -> Compile.compile_int cctx e)
         df.Elab.df_subs)
    |> fun fns -> Compile.offset_closure ~check:st.st_opts.check s fns
  in
  match q.Elab.q_defs, q.Elab.q_rhs.Ps_lang.Ast.e with
  | [ df ], _
    when df.Elab.df_path <> []
         && List.length df.Elab.df_subs
            = List.length
                (Stypes.dims (Elab.data_exn st.st_em df.Elab.df_data).Elab.d_ty) ->
    (* Per-field record definition: read-modify-write the record box.
       Distinct fields of one element are written by distinct equations,
       which the scheduler orders sequentially, so there is no race. *)
    let s = slab_of st df.Elab.df_data in
    let off_f = compile_subs df s in
    let rhs = Compile.compile_scalar cctx q.Elab.q_rhs in
    let rec update fields path v =
      match path with
      | [] -> fail "empty field path"
      | [ f ] -> (f, v) :: List.remove_assoc f fields
      | f :: rest ->
        let sub =
          match List.assoc_opt f fields with
          | Some (Sc_record inner) -> inner
          | _ -> []
        in
        (f, Sc_record (update sub rest v)) :: List.remove_assoc f fields
    in
    (match s.s_data with
     | PBox arr ->
       fun fr ->
         let off = off_f fr in
         let current =
           match Array.unsafe_get arr off with
           | Brecord fields -> fields
           | Bnone -> []
         in
         Array.unsafe_set arr off
           (Brecord (update current df.Elab.df_path (rhs fr)))
     | _ -> fail "field definition on a non-record %s" df.Elab.df_data)
  | [ df ], _
    when List.length df.Elab.df_subs
         = List.length (Stypes.dims (Elab.data_exn st.st_em df.Elab.df_data).Elab.d_ty)
    -> (
    let s = slab_of st df.Elab.df_data in
    let off_f = compile_subs df s in
    match s.s_data with
    | PFloat a ->
      let rhs = Compile.compile_real cctx q.Elab.q_rhs in
      fun fr -> Array.unsafe_set a (off_f fr) (rhs fr)
    | PInt arr ->
      let rhs = Compile.compile_int cctx q.Elab.q_rhs in
      fun fr -> Array.unsafe_set arr (off_f fr) (rhs fr)
    | PBool b ->
      let rhs = Compile.compile_bool cctx q.Elab.q_rhs in
      fun fr ->
        Bytes.unsafe_set b (off_f fr) (if rhs fr then '\001' else '\000')
    | PBox arr ->
      let rhs = Compile.compile_scalar cctx q.Elab.q_rhs in
      fun fr ->
        (match rhs fr with
         | Sc_record fields -> Array.unsafe_set arr (off_f fr) (Brecord fields)
         | _ -> fail "record equation produced a non-record"))
  | defs, Ps_lang.Ast.Call (fname, args) ->
    (* Module call: multi-result, or whole-array assignment. *)
    let writers =
      List.map
        (fun (df : Elab.def) ->
          let s = slab_of st df.Elab.df_data in
          let off_f =
            if List.length df.Elab.df_subs = ndims s then Some (compile_subs df s)
            else None
          in
          (s, off_f))
        defs
    in
    fun fr ->
      let ectx =
        eval_ctx st (fun v ->
            match slot_of v with Some s -> Some fr.(s) | None -> None)
      in
      let vargs = List.map (Eval.eval ectx) args in
      let results = call st fname vargs in
      (try
         List.iter2
           (fun (s, off_f) v ->
             match v, off_f with
             | Vscalar sc, Some off_f -> (
               let off = off_f fr in
               match s.s_data, sc with
               | PFloat a, _ -> a.(off) <- as_float sc
               | PInt a, _ -> a.(off) <- as_int sc
               | PBool b, Sc_bool x -> Bytes.set b off (if x then '\001' else '\000')
               | PBox a, Sc_record fields -> a.(off) <- Brecord fields
               | _ -> fail "result kind mismatch writing %s" s.s_name)
             | Vscalar _, None -> fail "scalar result for array %s" s.s_name
             | Varray src, _ ->
               (* Whole-array result assigned to a whole-array LHS. *)
               copy_into ~src ~dst:s)
           writers results
       with Invalid_argument _ ->
         fail "module %s returned %d results for %d variables" fname
           (List.length results) (List.length writers))
  | _ ->
    fail "%s: equation defines several variables but is not a module call"
      q.Elab.q_name

and copy_into ~src ~dst =
  if ndims src <> ndims dst then fail "array shape mismatch writing %s" dst.s_name;
  let n = ndims src in
  let idx = Array.make n 0 in
  let rec fill p =
    if p = n then set_scalar dst idx (get_scalar src idx)
    else
      let di = src.s_dims.(p) in
      for v = di.di_lo to di.di_lo + di.di_extent - 1 do
        idx.(p) <- v;
        fill (p + 1)
      done
  in
  if n = 0 then set_scalar dst [||] (get_scalar src [||]) else fill 0

(* ------------------------------------------------------------------ *)

and run_scheduled ~opts ~prog (em : Elab.emodule)
    ~(sched : Ps_sched.Schedule.result) ~inputs : run_result =
  run_flowchart ~opts ~prog em ~flowchart:sched.Ps_sched.Schedule.r_flowchart
    ~windows:sched.Ps_sched.Schedule.r_windows ~inputs

and run_flowchart ~opts ~prog (em : Elab.emodule)
    ~(flowchart : Ps_sched.Flowchart.t) ~(windows : Ps_sched.Schedule.window list)
    ~inputs : run_result =
  let st =
    { st_prog = prog;
      st_em = em;
      st_opts = opts;
      st_windows = windows;
      st_slabs = Hashtbl.create 16;
      st_sched_cache = Hashtbl.create 4;
      st_evals = Atomic.make 0 }
  in
  seed_inputs st inputs;
  (* Compile and execute each top-level descriptor in turn, so that data
     allocation happens after the scalars its bounds depend on. *)
  List.iter
    (fun d ->
      let max_slot = ref 0 in
      let f = compile_desc st [] ~par:true ~max_slot d in
      let frame = Array.make (max 1 !max_slot) 0 in
      f frame)
    flowchart;
  let outputs =
    List.map
      (fun (d : Elab.data) ->
        let s = slab_of st d.Elab.d_name in
        if ndims s = 0 then (d.Elab.d_name, Vscalar (get_scalar s [||]))
        else (d.Elab.d_name, Varray s))
      em.Elab.em_results
  in
  let allocated =
    Hashtbl.fold (fun name s acc -> (name, allocated_words s) :: acc) st.st_slabs []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { outputs;
    allocated;
    evaluations =
      (if opts.collect_stats then Some (Atomic.get st.st_evals) else None) }

(* Top-level entry point: schedule (if needed) and run. *)
let run ?(opts = default_opts) ?flowchart ?windows ~(prog : Elab.eprogram)
    (em : Elab.emodule) ~(inputs : (string * value) list) : run_result =
  match flowchart with
  | Some fc ->
    run_flowchart ~opts ~prog em ~flowchart:fc
      ~windows:(Option.value windows ~default:[])
      ~inputs
  | None ->
    let sched = Ps_sched.Schedule.schedule em in
    let windows = Option.value windows ~default:sched.Ps_sched.Schedule.r_windows in
    run_flowchart ~opts ~prog em ~flowchart:sched.Ps_sched.Schedule.r_flowchart
      ~windows ~inputs

(* Convenience input builders. *)

let scalar_int n = Vscalar (Sc_int n)

let scalar_real f = Vscalar (Sc_real f)

let scalar_bool b = Vscalar (Sc_bool b)

let array_real ~dims (f : int array -> float) : value =
  let slab =
    make_slab ~name:"<input>" ~elem:(Stypes.Scalar Stypes.Sreal)
      ~dims:(List.map (fun (lo, hi) -> (lo, hi - lo + 1, hi - lo + 1)) dims)
  in
  let n = List.length dims in
  let idx = Array.make n 0 in
  let rec fill p =
    if p = n then set_scalar slab idx (Sc_real (f idx))
    else
      let di = slab.s_dims.(p) in
      for v = di.di_lo to di.di_lo + di.di_extent - 1 do
        idx.(p) <- v;
        fill (p + 1)
      done
  in
  if n = 0 then set_scalar slab [||] (Sc_real (f [||])) else fill 0;
  Varray slab

let array_int ~dims (f : int array -> int) : value =
  let slab =
    make_slab ~name:"<input>" ~elem:(Stypes.Scalar Stypes.Sint)
      ~dims:(List.map (fun (lo, hi) -> (lo, hi - lo + 1, hi - lo + 1)) dims)
  in
  let n = List.length dims in
  let idx = Array.make n 0 in
  let rec fill p =
    if p = n then set_scalar slab idx (Sc_int (f idx))
    else
      let di = slab.s_dims.(p) in
      for v = di.di_lo to di.di_lo + di.di_extent - 1 do
        idx.(p) <- v;
        fill (p + 1)
      done
  in
  if n = 0 then set_scalar slab [||] (Sc_int (f [||])) else fill 0;
  Varray slab

(* Read a scalar out of an output array value. *)
let read_real v idx =
  match v with
  | Varray s -> as_float (get_scalar s idx)
  | Vscalar sc -> as_float sc

let read_int v idx =
  match v with
  | Varray s -> as_int (get_scalar s idx)
  | Vscalar sc -> as_int sc
