(** Reference (tree-walk) evaluator for PS expressions — the semantic
    baseline the closure compiler ({!Compile}) must agree with, and the
    cold-path engine for loop bounds, module-call arguments and
    whole-array values. *)

exception Runtime_error of string

type ctx = {
  c_em : Ps_sem.Elab.emodule;
  c_slab : string -> Value.slab;          (** resolve (and allocate) data *)
  c_index : string -> int option;         (** current loop-index bindings *)
  c_call : string -> Value.value list -> Value.value list;  (** module invocation *)
  c_check : bool;                         (** bounds checking *)
}

val eval : ctx -> Ps_lang.Ast.expr -> Value.value

val eval_scalar : ctx -> Ps_lang.Ast.expr -> Value.scalar

val eval_int : ctx -> Ps_lang.Ast.expr -> int

val eval_bool : ctx -> Ps_lang.Ast.expr -> bool

val eval_float : ctx -> Ps_lang.Ast.expr -> float

val slice_slab : Value.slab -> int array -> Value.slab
(** Copy a slice (first [k] dimensions fixed) into a fresh slab; used for
    partial references passed as module arguments. *)
