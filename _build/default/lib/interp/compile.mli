(** Closure compiler for equation right-hand sides.

    Expressions are compiled bottom-up into unboxed closures over a
    {!frame} — a flat int array of enclosing loop-variable values — with
    the scalar type resolved at compile time, so the hot stencil path
    runs without allocation.  Anything exotic (records, module calls,
    slices) falls back to the tree-walk evaluator; the test suite checks
    agreement with {!Eval} on random expressions. *)

type frame = int array

type comp =
  | CInt of (frame -> int)
  | CReal of (frame -> float)
  | CBool of (frame -> bool)
  | CBoxed of (frame -> Value.scalar)

type cctx = {
  k_em : Ps_sem.Elab.emodule;
  k_slab : string -> Value.slab;       (** resolve/allocate a data slab *)
  k_slot : string -> int option;       (** loop variable -> frame slot *)
  k_call : string -> Value.value list -> Value.value list;
  k_check : bool;
}

exception Cannot_compile of string

val compile : cctx -> Ps_lang.Ast.expr -> comp

val compile_int : cctx -> Ps_lang.Ast.expr -> frame -> int

val compile_real : cctx -> Ps_lang.Ast.expr -> frame -> float

val compile_bool : cctx -> Ps_lang.Ast.expr -> frame -> bool

val compile_scalar : cctx -> Ps_lang.Ast.expr -> frame -> Value.scalar

val offset_closure :
  check:bool -> Value.slab -> (frame -> int) array -> frame -> int
(** Allocation-free flat-offset computation for compiled subscripts;
    shared with the equation writers in {!Exec}. *)
