(* Reference (tree-walk) evaluator for PS expressions.

   This is the semantic baseline: the closure compiler in [Compile] must
   agree with it (a property checked by the test suite), and it handles
   the cold paths — loop bounds, module-call arguments, whole-array and
   slice values. *)

open Ps_sem
open Value

exception Runtime_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Runtime_error m)) fmt

type ctx = {
  c_em : Elab.emodule;
  c_slab : string -> slab;               (* resolve (and allocate) data *)
  c_index : string -> int option;        (* current loop-index bindings *)
  c_call : string -> value list -> value list;  (* module invocation *)
  c_check : bool;                        (* bounds checking *)
}

let enum_ordinal ctx name =
  let rec find = function
    | [] -> None
    | (ename, ctors) :: rest -> (
      let rec pos i = function
        | [] -> None
        | c :: cs -> if String.equal c name then Some (ename, i) else pos (i + 1) cs
      in
      match pos 0 ctors with Some r -> Some r | None -> find rest)
  in
  find ctx.c_em.Elab.em_enums

let is_data ctx name = Elab.find_data ctx.c_em name <> None

(* Copy a slice of a slab (first [k] dimensions fixed) into a fresh
   slab.  Used for partial references passed as module arguments. *)
let slice_slab (s : slab) (fixed : int array) : slab =
  let k = Array.length fixed in
  let n = ndims s in
  if k > n then fail "too many subscripts on %s" s.s_name;
  let rest = Array.sub s.s_dims k (n - k) in
  let out =
    make_slab ~name:(s.s_name ^ "[slice]")
      ~elem:
        (match s.s_kind with
         | KReal -> Stypes.Scalar Stypes.Sreal
         | KInt -> Stypes.Scalar Stypes.Sint
         | KBool -> Stypes.Scalar Stypes.Sbool
         | KEnum e -> Stypes.Scalar (Stypes.Senum e))
      ~dims:
        (Array.to_list
           (Array.map (fun di -> (di.di_lo, di.di_extent, di.di_extent)) rest))
  in
  let idx = Array.make n 0 in
  Array.blit fixed 0 idx 0 k;
  let out_idx = Array.make (n - k) 0 in
  let rec fill p =
    if p = n then begin
      Array.blit idx k out_idx 0 (n - k);
      set_scalar out out_idx (get_scalar s idx)
    end
    else
      let di = s.s_dims.(p) in
      for v = di.di_lo to di.di_lo + di.di_extent - 1 do
        idx.(p) <- v;
        fill (p + 1)
      done
  in
  fill k;
  out

let scalar_of_value = function
  | Vscalar s -> s
  | Varray s -> fail "array value %s used as a scalar" s.s_name

let rec eval (ctx : ctx) (e : Ps_lang.Ast.expr) : value =
  let open Ps_lang.Ast in
  match e.e with
  | Int n -> Vscalar (Sc_int n)
  | Real f -> Vscalar (Sc_real f)
  | Bool b -> Vscalar (Sc_bool b)
  | Var x -> (
    match ctx.c_index x with
    | Some v -> Vscalar (Sc_int v)
    | None ->
      if is_data ctx x then begin
        let s = ctx.c_slab x in
        if ndims s = 0 then Vscalar (get_scalar s [||]) else Varray s
      end
      else (
        match enum_ordinal ctx x with
        | Some (ename, ord) -> Vscalar (Sc_enum (ename, ord))
        | None -> fail "unbound identifier %s" x))
  | Index (base, subs) -> (
    let bv = eval ctx base in
    let idx = Array.of_list (List.map (eval_int ctx) subs) in
    match bv with
    | Varray s ->
      if Array.length idx = ndims s then begin
        if ctx.c_check then check_bounds s idx;
        Vscalar (get_scalar s idx)
      end
      else Varray (slice_slab s idx)
    | Vscalar _ -> fail "subscript applied to a scalar")
  | Field (base, f) -> (
    match scalar_of_value (eval ctx base) with
    | Sc_record fields -> (
      match List.assoc_opt f fields with
      | Some v -> Vscalar v
      | None -> fail "record has no field %s" f)
    | _ -> fail "field access on a non-record")
  | Call (f, args) -> eval_call ctx e f args
  | Unop (Neg, a) -> (
    match scalar_of_value (eval ctx a) with
    | Sc_int n -> Vscalar (Sc_int (-n))
    | Sc_real x -> Vscalar (Sc_real (-.x))
    | _ -> fail "unary '-' on a non-number")
  | Unop (Not, a) -> Vscalar (Sc_bool (not (eval_bool ctx a)))
  | Binop (op, a, b) -> eval_binop ctx op a b
  | If (c, t, f) -> if eval_bool ctx c then eval ctx t else eval ctx f

and eval_binop ctx op a b =
  let open Ps_lang.Ast in
  match op with
  | And -> Vscalar (Sc_bool (eval_bool ctx a && eval_bool ctx b))
  | Or -> Vscalar (Sc_bool (eval_bool ctx a || eval_bool ctx b))
  | Add | Sub | Mul -> (
    let va = scalar_of_value (eval ctx a) and vb = scalar_of_value (eval ctx b) in
    match va, vb with
    | Sc_int x, Sc_int y ->
      Vscalar
        (Sc_int (match op with Add -> x + y | Sub -> x - y | Mul -> x * y | _ -> 0))
    | (Sc_int _ | Sc_real _), (Sc_int _ | Sc_real _) ->
      let x = as_float va and y = as_float vb in
      Vscalar
        (Sc_real
           (match op with Add -> x +. y | Sub -> x -. y | Mul -> x *. y | _ -> 0.))
    | _ -> fail "arithmetic on non-numbers")
  | Div ->
    let x = as_float (scalar_of_value (eval ctx a)) in
    let y = as_float (scalar_of_value (eval ctx b)) in
    Vscalar (Sc_real (x /. y))
  | Idiv ->
    let x = eval_int ctx a and y = eval_int ctx b in
    if y = 0 then fail "division by zero";
    Vscalar (Sc_int (x / y))
  | Imod ->
    let x = eval_int ctx a and y = eval_int ctx b in
    if y = 0 then fail "mod by zero";
    Vscalar (Sc_int (x mod y))
  | Eq | Ne | Lt | Le | Gt | Ge -> (
    let va = scalar_of_value (eval ctx a) and vb = scalar_of_value (eval ctx b) in
    let c =
      match va, vb with
      | (Sc_int _ | Sc_real _), (Sc_int _ | Sc_real _) ->
        Float.compare (as_float va) (as_float vb)
      | Sc_bool x, Sc_bool y -> Bool.compare x y
      | Sc_enum (_, x), Sc_enum (_, y) -> Int.compare x y
      | _ -> fail "incomparable values"
    in
    let r =
      match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
      | _ -> assert false
    in
    Vscalar (Sc_bool r))

and eval_call ctx e f args =
  let builtin1 g =
    let x = as_float (scalar_of_value (eval ctx (List.hd args))) in
    Vscalar (Sc_real (g x))
  in
  match f, args with
  | "sqrt", [ _ ] -> builtin1 sqrt
  | "sin", [ _ ] -> builtin1 sin
  | "cos", [ _ ] -> builtin1 cos
  | "exp", [ _ ] -> builtin1 exp
  | "ln", [ _ ] -> builtin1 log
  | "abs", [ a ] -> (
    match scalar_of_value (eval ctx a) with
    | Sc_int n -> Vscalar (Sc_int (abs n))
    | Sc_real x -> Vscalar (Sc_real (abs_float x))
    | _ -> fail "abs on a non-number")
  | "intpart", [ a ] ->
    Vscalar (Sc_int (int_of_float (as_float (scalar_of_value (eval ctx a)))))
  | ("min" | "max"), [ a; b ] -> (
    let va = scalar_of_value (eval ctx a) and vb = scalar_of_value (eval ctx b) in
    match va, vb with
    | Sc_int x, Sc_int y ->
      Vscalar (Sc_int (if String.equal f "min" then min x y else max x y))
    | _ ->
      let x = as_float va and y = as_float vb in
      Vscalar (Sc_real (if String.equal f "min" then min x y else max x y)))
  | _ -> (
    let vargs = List.map (eval ctx) args in
    match ctx.c_call f vargs with
    | [ v ] -> v
    | [] -> fail "module %s returned no results" f
    | _ -> fail "module %s returns several results (at %s)" f
             (Ps_lang.Loc.to_string e.Ps_lang.Ast.e_loc))

and eval_int ctx e =
  match scalar_of_value (eval ctx e) with
  | Sc_int n -> n
  | Sc_real f -> int_of_float f
  | Sc_enum (_, n) -> n
  | _ -> fail "expected an integer"

and eval_bool ctx e =
  match scalar_of_value (eval ctx e) with
  | Sc_bool b -> b
  | _ -> fail "expected a boolean"

and eval_float ctx e = as_float (scalar_of_value (eval ctx e))

and eval_scalar ctx e = scalar_of_value (eval ctx e)
