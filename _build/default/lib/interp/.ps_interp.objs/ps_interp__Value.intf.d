lib/interp/value.mli: Bytes Fmt Ps_sem
