lib/interp/compile.mli: Ps_lang Ps_sem Value
