lib/interp/eval.mli: Ps_lang Ps_sem Value
