lib/interp/compile.ml: Array Bytes Elab Eval Float Fmt Int List Printf Ps_lang Ps_sem String Stypes Value
