lib/interp/exec.ml: Array Atomic Bytes Compile Elab Eval Fmt Hashtbl List Option Ps_lang Ps_runtime Ps_sched Ps_sem String Stypes Value
