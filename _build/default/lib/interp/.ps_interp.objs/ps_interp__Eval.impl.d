lib/interp/eval.ml: Array Bool Elab Float Fmt Int List Ps_lang Ps_sem String Stypes Value
