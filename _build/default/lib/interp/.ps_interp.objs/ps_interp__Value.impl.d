lib/interp/value.ml: Array Bool Bytes Float Fmt List Printf Ps_sem String Stypes
