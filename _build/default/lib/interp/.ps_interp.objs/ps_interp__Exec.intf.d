lib/interp/exec.mli: Ps_runtime Ps_sched Ps_sem Value
