lib/runtime/pool.ml: Atomic Condition Domain Fun List Mutex
