lib/runtime/pool.mli:
