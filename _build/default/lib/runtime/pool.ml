(* A fixed pool of worker domains executing parallel for-loops.

   This is the MIMD substrate the scheduler's DOALL loops target.  The
   design is deliberately simple and allocation-free on the hot path:

   - [size] worker domains are spawned once and parked on a condition
     variable;
   - [parallel_for] publishes a job (function + index range), wakes the
     workers, and participates itself;
   - iterations are handed out in contiguous chunks via an atomic
     fetch-and-add, so uneven iteration costs (e.g. boundary vs interior
     points) still balance;
   - the caller returns when every chunk has completed.

   Exceptions raised by the body are caught per-worker, the loop is
   drained, and the first exception is re-raised at the caller. *)

type job = {
  j_lo : int;
  j_hi : int;             (* inclusive *)
  j_chunk : int;
  j_body : int -> int -> unit;  (* [body lo hi] runs indices lo..hi *)
  j_next : int Atomic.t;        (* next unclaimed index *)
  j_pending : int Atomic.t;     (* chunks not yet finished *)
  j_error : exn option Atomic.t;
}

type t = {
  p_size : int;                 (* total workers including the caller *)
  p_mutex : Mutex.t;
  p_wake : Condition.t;
  p_busy : bool Atomic.t;       (* a job is in flight: re-entrant calls run inline *)
  mutable p_job : job option;
  mutable p_epoch : int;        (* bumped for every new job *)
  mutable p_shutdown : bool;
  mutable p_domains : unit Domain.t list;
}

let run_chunks (job : job) =
  let rec loop () =
    let lo = Atomic.fetch_and_add job.j_next job.j_chunk in
    if lo <= job.j_hi then begin
      let hi = min job.j_hi (lo + job.j_chunk - 1) in
      (try job.j_body lo hi
       with exn ->
         (* Record the first failure; keep draining so the caller can
            finish deterministically. *)
         ignore (Atomic.compare_and_set job.j_error None (Some exn)));
      ignore (Atomic.fetch_and_add job.j_pending (-1));
      loop ()
    end
  in
  loop ()

let worker pool =
  let rec wait epoch =
    Mutex.lock pool.p_mutex;
    while (not pool.p_shutdown) && pool.p_epoch = epoch do
      Condition.wait pool.p_wake pool.p_mutex
    done;
    let job = pool.p_job and epoch' = pool.p_epoch in
    let stop = pool.p_shutdown in
    Mutex.unlock pool.p_mutex;
    if stop then ()
    else begin
      (match job with Some j -> run_chunks j | None -> ());
      wait epoch'
    end
  in
  wait 0

let create size =
  let size = max 1 size in
  let pool =
    { p_size = size;
      p_mutex = Mutex.create ();
      p_wake = Condition.create ();
      p_busy = Atomic.make false;
      p_job = None;
      p_epoch = 0;
      p_shutdown = false;
      p_domains = [] }
  in
  pool.p_domains <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let size pool = pool.p_size

let shutdown pool =
  Mutex.lock pool.p_mutex;
  pool.p_shutdown <- true;
  Condition.broadcast pool.p_wake;
  Mutex.unlock pool.p_mutex;
  List.iter Domain.join pool.p_domains;
  pool.p_domains <- []

let sequential_for lo hi body = if lo <= hi then body lo hi

(* Default chunk size: aim for several chunks per worker so that uneven
   iteration costs still balance, without making chunks so small that the
   fetch-and-add dominates. *)
let chunk_for pool lo hi =
  let span = hi - lo + 1 in
  max 1 (span / (pool.p_size * 4))

let parallel_for ?chunk pool ~lo ~hi (body : int -> int -> unit) =
  if lo > hi then ()
  else if hi = lo then body lo hi
  else if not (Atomic.compare_and_set pool.p_busy false true) then
    (* Re-entrant call (e.g. a nested DOALL reached dynamically): run
       inline rather than deadlock on the single job slot. *)
    body lo hi
  else begin
    let chunk = match chunk with Some c -> max 1 c | None -> chunk_for pool lo hi in
    let nchunks = ((hi - lo) / chunk) + 1 in
    let job =
      { j_lo = lo;
        j_hi = hi;
        j_chunk = chunk;
        j_body = body;
        j_next = Atomic.make lo;
        j_pending = Atomic.make nchunks;
        j_error = Atomic.make None }
    in
    ignore job.j_lo;
    Mutex.lock pool.p_mutex;
    pool.p_job <- Some job;
    pool.p_epoch <- pool.p_epoch + 1;
    Condition.broadcast pool.p_wake;
    Mutex.unlock pool.p_mutex;
    (* The caller works too. *)
    run_chunks job;
    (* Wait for stragglers (busy-wait is fine: chunks are short-lived and
       the caller just finished helping). *)
    while Atomic.get job.j_pending > 0 do
      Domain.cpu_relax ()
    done;
    Mutex.lock pool.p_mutex;
    pool.p_job <- None;
    Mutex.unlock pool.p_mutex;
    Atomic.set pool.p_busy false;
    match Atomic.get job.j_error with
    | Some exn -> raise exn
    | None -> ()
  end

(* Run [f] with a temporary pool of [size] workers. *)
let with_pool size f =
  let pool = create size in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let recommended_size () = Domain.recommended_domain_count ()
