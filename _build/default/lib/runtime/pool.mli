(** A fixed pool of worker domains executing parallel for loops — the
    MIMD substrate the scheduler's DOALL loops target.

    Workers are spawned once and parked; {!parallel_for} publishes a job,
    participates itself, and hands out contiguous chunks through an
    atomic fetch-and-add so uneven iteration costs still balance. *)

type t

val create : int -> t
(** [create n] spawns a pool of [n] workers total (including the calling
    domain); clamped to at least 1. *)

val size : t -> int

val shutdown : t -> unit
(** Terminate and join the workers.  The pool must not be used after. *)

val with_pool : int -> (t -> 'a) -> 'a
(** Run with a temporary pool, shutting it down on exit (also on
    exceptions). *)

val parallel_for : ?chunk:int -> t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [parallel_for pool ~lo ~hi body] runs [body a b] over disjoint chunks
    covering [lo..hi] (inclusive), concurrently.  Empty ranges do
    nothing.  A re-entrant call from inside a running job executes
    inline.  If bodies raise, the loop is drained and the first exception
    re-raised at the caller.  [chunk] overrides the chunk size (default:
    span / (4 * size), at least 1). *)

val sequential_for : int -> int -> (int -> int -> unit) -> unit
(** [sequential_for lo hi body] is [body lo hi] when the range is
    non-empty — the degenerate substrate used when no pool is given. *)

val recommended_size : unit -> int
(** [Domain.recommended_domain_count ()]. *)
