(** The restructuring transformation of paper §4.

    Changes coordinates with the unimodular matrix T whose first row is
    the least time vector: a new array A' with [A'[T.x] = A[x]] replaces
    A, every definition of A is folded into one guarded equation defining
    A' over its bounding box, and every reference [A[e]] becomes
    [A'[T.e]].  Recurrence reads [A[x - d]] become [A'[y - T.d]]:
    constant offsets carried only by the time axis, so re-scheduling
    yields an outer DO and inner DOALLs. *)

exception Not_applicable of string

type t = {
  tr_target : string;            (** the original array A *)
  tr_new_name : string;          (** the transformed array A' *)
  tr_time : int array;           (** least time coefficients *)
  tr_vectors : int array list;   (** dependence difference vectors *)
  tr_matrix : Imatrix.t;         (** T : old coordinates -> new *)
  tr_inverse : Imatrix.t;
  tr_old_indices : string list;  (** e.g. K, I, J *)
  tr_new_indices : string list;  (** e.g. Kp, Ip, Jp *)
  tr_module : Ps_lang.Ast.pmodule;  (** the transformed surface module *)
}

val apply : Ps_sem.Elab.emodule -> target:string -> t
(** Transform the recurrence on [target] (a local numeric array defined
    by exactly one recursive equation with affine self-references).
    The returned module is named [<module>_hyper] and re-enters the
    normal pipeline (elaborate, schedule, run, emit).
    @raise Not_applicable when a precondition fails.
    @raise Solve.No_schedule when the dependences are cyclic. *)

val pp_derivation : t Fmt.t
(** The §4 narrative: inequalities, least solution, time equation, T,
    and the inverse coordinate equations. *)

val derivation_to_string : t -> string
