lib/hyper/transform.ml: Array Ast Elab Fmt Fun Imatrix Ineq Linexpr List Loc Pretty Printf Ps_lang Ps_sem Solve String Stypes
