lib/hyper/imatrix.ml: Array Fmt List
