lib/hyper/solve.mli: Imatrix
