lib/hyper/solve.ml: Array Fun Imatrix List Printf
