lib/hyper/ineq.mli: Fmt Ps_lang Ps_sem
