lib/hyper/imatrix.mli: Fmt
