lib/hyper/transform.mli: Fmt Imatrix Ps_lang Ps_sem
