lib/hyper/ineq.ml: Array Char Elab Fmt Linexpr List Option Printf Ps_lang Ps_sem String Stypes
