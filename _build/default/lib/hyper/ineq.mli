(** Dependence-inequality extraction (paper §4).

    For a recursively defined array A, every self-reference
    [A[x1 + o1, ..., xn + on]] in the equation defining [A[x1, ..., xn]]
    induces the inequality [a . d > 0] on the time coefficients, with
    [d = -o] the dependence difference vector. *)

exception Not_applicable of string
(** The transformation's preconditions fail (no recursive definition,
    non-affine references, fixed subscripts on the defining occurrence,
    several recursive equations, ...). *)

type dependences = {
  dep_eq : Ps_sem.Elab.eq;              (** the recursive equation *)
  dep_indices : Ps_sem.Elab.index list; (** its defining indices, in order *)
  dep_vectors : int array list;         (** distinct difference vectors *)
}

val extract : Ps_sem.Elab.emodule -> target:string -> dependences
(** @raise Not_applicable when the preconditions fail. *)

val offset_vector :
  Ps_sem.Elab.index list -> Ps_lang.Ast.expr list -> int array option
(** Offsets of one reference relative to the defining indices, when every
    subscript has the form [var_p + c]. *)

val self_refs :
  string ->
  Ps_lang.Ast.expr ->
  (Ps_lang.Ast.expr * Ps_lang.Ast.expr list) list ->
  (Ps_lang.Ast.expr * Ps_lang.Ast.expr list) list
(** Accumulate the references to the target inside an expression. *)

val pp_inequality : int array Fmt.t
(** Render a difference vector as the paper writes it: "a - b > 0". *)
