(** Small exact integer matrices for the hyperplane coordinate change.
    Sizes are recurrence nesting depths (2-4), so cofactor expansion is
    adequate and everything stays exact. *)

type t = int array array  (** row-major, square *)

val dim : t -> int

val make : int -> (int -> int -> int) -> t

val identity : int -> t

val of_rows : int list list -> t
(** @raise Invalid_argument if the rows are not square. *)

val row : t -> int -> int array
(** A copy of row [i]. *)

val copy : t -> t

val minor : t -> int -> int -> t
(** Matrix with row [i] and column [j] removed. *)

val det : t -> int

val inverse : t -> t
(** Exact inverse of a unimodular matrix.
    @raise Invalid_argument when [|det| <> 1]. *)

val mul : t -> t -> t

val apply : t -> int array -> int array
(** Matrix-vector product. *)

val equal : t -> t -> bool

val pp : t Fmt.t

val to_string : t -> string
