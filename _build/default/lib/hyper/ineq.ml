(* Dependence-inequality extraction (paper §4).

   For a recursively defined array A, every self-reference
   A[x1 + o1, ..., xn + on] inside the equation defining A[x1, ..., xn]
   induces the dependence inequality

       a · x  >  a · (x + o)        i.e.   a · d > 0  with  d = -o,

   where [t(A[x]) = a · x] is the linear time of creation.  This module
   extracts the distinct difference vectors [d] from an elaborated
   module. *)

open Ps_sem

exception Not_applicable of string

let fail fmt = Fmt.kstr (fun m -> raise (Not_applicable m)) fmt

(* The offset vector of one reference [subs] relative to the defining
   indices [ixs]: subscript at position p must be [var_p + c]. *)
let offset_vector (ixs : Elab.index list) (subs : Ps_lang.Ast.expr list) :
    int array option =
  if List.length subs <> List.length ixs then None
  else
    let offs =
      List.map2
        (fun (ix : Elab.index) sub ->
          match Linexpr.of_expr sub with
          | Some l -> (
            match l.Linexpr.terms with
            | [ (v, 1) ] when String.equal v ix.Elab.ix_var -> Some l.Linexpr.const
            | _ -> None)
          | None -> None)
        ixs subs
    in
    if List.for_all Option.is_some offs then
      Some (Array.of_list (List.map Option.get offs))
    else None

(* All self-references of [target] in expression [e]. *)
let rec self_refs target (e : Ps_lang.Ast.expr) acc =
  let open Ps_lang.Ast in
  match e.e with
  | Int _ | Real _ | Bool _ -> acc
  | Var x -> if String.equal x target then (e, []) :: acc else acc
  | Index ({ e = Var x; _ }, subs) when String.equal x target ->
    let acc = List.fold_left (fun acc s -> self_refs target s acc) acc subs in
    (e, subs) :: acc
  | Index (b, subs) ->
    List.fold_left (fun acc s -> self_refs target s acc) (self_refs target b acc) subs
  | Field (b, _) -> self_refs target b acc
  | Call (_, args) -> List.fold_left (fun acc a -> self_refs target a acc) acc args
  | Unop (_, a) -> self_refs target a acc
  | Binop (_, a, b) -> self_refs target b (self_refs target a acc)
  | If (c, t, f) ->
    self_refs target f (self_refs target t (self_refs target c acc))

type dependences = {
  dep_eq : Elab.eq;              (* the recursive equation *)
  dep_indices : Elab.index list; (* its defining indices, in order *)
  dep_vectors : int array list;  (* distinct difference vectors d = -offset *)
}

(* Find the recursive equation defining [target] and extract its
   dependence difference vectors. *)
let extract (em : Elab.emodule) ~(target : string) : dependences =
  (match Elab.find_data em target with
   | None -> fail "no data item named %s" target
   | Some d ->
     if Stypes.dims d.Elab.d_ty = [] then fail "%s is a scalar" target);
  let defining =
    List.filter
      (fun (q : Elab.eq) ->
        List.exists (fun df -> String.equal df.Elab.df_data target) q.Elab.q_defs)
      em.Elab.em_eqs
  in
  let recursive =
    List.filter
      (fun (q : Elab.eq) -> self_refs target q.Elab.q_rhs [] <> [])
      defining
  in
  match recursive with
  | [] -> fail "%s has no recursive definition" target
  | _ :: _ :: _ ->
    fail "%s is defined recursively by several equations; not supported" target
  | [ q ] ->
    (* The defining occurrence must subscript every dimension by a plain
       index variable. *)
    let df = List.find (fun df -> String.equal df.Elab.df_data target) q.Elab.q_defs in
    let ixs =
      List.map
        (function
          | Elab.Sub_index ix -> ix
          | Elab.Sub_fixed _ ->
            fail "the recursive equation for %s fixes one of its subscripts" target)
        df.Elab.df_subs
    in
    let refs = self_refs target q.Elab.q_rhs [] in
    let vectors =
      List.map
        (fun ((e : Ps_lang.Ast.expr), subs) ->
          match offset_vector ixs subs with
          | Some off -> Array.map (fun o -> -o) off
          | None ->
            fail "reference %s is not of the form A[I1 + c1, ..., In + cn]"
              (Ps_lang.Pretty.expr_to_string e))
        refs
    in
    (* Deduplicate. *)
    let distinct =
      List.fold_left (fun acc v -> if List.mem v acc then acc else v :: acc) [] vectors
      |> List.rev
    in
    (* A zero difference vector means A[x] depends on itself. *)
    if List.exists (fun v -> Array.for_all (fun c -> c = 0) v) distinct then
      fail "%s[x] references itself at the same point" target;
    { dep_eq = q; dep_indices = ixs; dep_vectors = distinct }

let pp_inequality ppf (d : int array) =
  (* Print as the paper does: "a·d > 0" expanded over symbolic a, b, c... *)
  let coeff_name i =
    if i < 26 then String.make 1 (Char.chr (Char.code 'a' + i))
    else Printf.sprintf "a%d" i
  in
  let first = ref true in
  Array.iteri
    (fun i c ->
      if c <> 0 then begin
        if !first then begin
          if c = 1 then Fmt.pf ppf "%s" (coeff_name i)
          else if c = -1 then Fmt.pf ppf "-%s" (coeff_name i)
          else Fmt.pf ppf "%d*%s" c (coeff_name i);
          first := false
        end
        else if c > 0 then
          if c = 1 then Fmt.pf ppf " + %s" (coeff_name i)
          else Fmt.pf ppf " + %d*%s" c (coeff_name i)
        else if c = -1 then Fmt.pf ppf " - %s" (coeff_name i)
        else Fmt.pf ppf " - %d*%s" (-c) (coeff_name i)
      end)
    d;
  if !first then Fmt.string ppf "0";
  Fmt.pf ppf " > 0"
