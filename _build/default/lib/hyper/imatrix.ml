(* Small exact integer matrices for the hyperplane coordinate change.

   Sizes are the nesting depth of a recurrence (2-4 in practice), so
   cofactor expansion is perfectly adequate and keeps everything exact. *)

type t = int array array  (* row-major, square *)

let dim (m : t) = Array.length m

let make n f : t = Array.init n (fun i -> Array.init n (fun j -> f i j))

let identity n : t = make n (fun i j -> if i = j then 1 else 0)

let of_rows rows : t =
  let n = List.length rows in
  let m = Array.of_list (List.map Array.of_list rows) in
  Array.iter (fun r -> if Array.length r <> n then invalid_arg "Imatrix.of_rows") m;
  m

let row (m : t) i = Array.copy m.(i)

let copy (m : t) = Array.map Array.copy m

(* Minor of m with row i and column j removed. *)
let minor (m : t) i j =
  let n = dim m in
  make (n - 1) (fun r c ->
      let r' = if r < i then r else r + 1 in
      let c' = if c < j then c else c + 1 in
      m.(r').(c'))

let rec det (m : t) =
  match dim m with
  | 0 -> 1
  | 1 -> m.(0).(0)
  | 2 -> (m.(0).(0) * m.(1).(1)) - (m.(0).(1) * m.(1).(0))
  | n ->
    let acc = ref 0 in
    for j = 0 to n - 1 do
      if m.(0).(j) <> 0 then begin
        let sign = if j mod 2 = 0 then 1 else -1 in
        acc := !acc + (sign * m.(0).(j) * det (minor m 0 j))
      end
    done;
    !acc

(* Inverse of a unimodular matrix (|det| = 1): the adjugate divided by the
   determinant stays integral. *)
let inverse (m : t) : t =
  let n = dim m in
  let d = det m in
  if abs d <> 1 then invalid_arg "Imatrix.inverse: matrix is not unimodular";
  let cof = make n (fun i j ->
      let sign = if (i + j) mod 2 = 0 then 1 else -1 in
      sign * det (minor m i j))
  in
  (* inverse = adjugate / det = transpose of cofactors / det *)
  make n (fun i j -> cof.(j).(i) / d)

let mul (a : t) (b : t) : t =
  let n = dim a in
  make n (fun i j ->
      let acc = ref 0 in
      for k = 0 to n - 1 do
        acc := !acc + (a.(i).(k) * b.(k).(j))
      done;
      !acc)

let apply (m : t) (v : int array) : int array =
  let n = dim m in
  Array.init n (fun i ->
      let acc = ref 0 in
      for j = 0 to n - 1 do
        acc := !acc + (m.(i).(j) * v.(j))
      done;
      !acc)

let equal (a : t) (b : t) =
  dim a = dim b && Array.for_all2 (fun r1 r2 -> r1 = r2) a b

let pp ppf (m : t) =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.array ~sep:Fmt.cut (fun ppf r ->
         Fmt.pf ppf "[%a]" (Fmt.array ~sep:(Fmt.any " ") Fmt.int) r))
    m

let to_string m = Fmt.str "%a" pp m
