(* Equation-notation front end.

   The paper's stated ultimate goal (§1): "a translator of equations in
   the form of (1), perhaps as TeX or Postscript files, to modules in
   this language".  This module implements a textual equation notation
   with TeX-style subscripts and translates it to a PS module:

     relaxation(InitialA[i,j], M, maxK) -> newA[i,j]
     where i, j = 0 .. M+1; k = 2 .. maxK
     A_{1,i,j}   = InitialA_{i,j}
     A_{k,i,j}   = if i = 0 or j = 0 or i = M+1 or j = M+1
                   then A_{k-1,i,j}
                   else (A_{k-1,i,j-1} + A_{k-1,i-1,j}
                       + A_{k-1,i,j+1} + A_{k-1,i+1,j}) / 4
     newA_{i,j}  = A_{maxK,i,j}

   Translation rules:
   - the `where` clause declares the index ranges (PS subrange types);
   - a parameter or result written `X[i,j]` is an array whose dimensions
     are the ranges of the named indices;
   - every name defined by an equation that is not a result becomes a
     local array; its extent at each position is the convex hull of the
     ranges and constants used there across its definitions (so A above
     gets `1 .. maxK` from the constant 1 and the range 2 .. maxK);
   - scalar parameters that appear in a range bound are `int`, all other
     scalars and every array element are `real`;
   - `X_{e1,...,en}` becomes the PS reference `X[e1, ..., en]`.

   The result re-enters the ordinary pipeline (elaborate, schedule,
   transform, run, emit). *)

open Ps_lang

exception Error of string * Loc.span

let err loc fmt = Fmt.kstr (fun m -> raise (Error (m, loc))) fmt

(* ------------------------------------------------------------------ *)
(* Lexing: reuse the PS lexer for everything except the two extra
   multi-character tokens '_{' and '->', which we pre-translate.  '_{'
   cannot occur in PS source ('_' alone is an identifier character, so
   'A_{' lexes as identifier "A_" followed by '{' — which PS has no token
   for).  We therefore scan the raw text ourselves. *)

type token =
  | Tident of string
  | Tint of int
  | Treal of float
  | Tsub_open             (* _{ *)
  | Tbrace_close          (* } *)
  | Tarrow                (* -> *)
  | Tlparen
  | Trparen
  | Tlbracket
  | Trbracket
  | Tcomma
  | Tsemi
  | Tdotdot
  | Teq
  | Tne
  | Tlt
  | Tle
  | Tgt
  | Tge
  | Tplus
  | Tminus
  | Tstar
  | Tslash
  | Tkw of string         (* where if then else and or not div mod *)
  | Teof

let keywords = [ "where"; "if"; "then"; "else"; "and"; "or"; "not"; "div"; "mod" ]

type lexer = { src : string; mutable pos : Loc.pos; mutable peeked : (token * Loc.span) option }

let mk_lexer src = { src; pos = Loc.start_pos; peeked = None }

let at_end lx = lx.pos.Loc.offset >= String.length lx.src

let cur lx = lx.src.[lx.pos.Loc.offset]

let looking_at lx s =
  let n = String.length s and off = lx.pos.Loc.offset in
  off + n <= String.length lx.src && String.sub lx.src off n = s

let advance lx = if not (at_end lx) then lx.pos <- Loc.advance lx.pos (cur lx)

let rec skip_ws lx =
  if at_end lx then ()
  else
    match cur lx with
    | ' ' | '\t' | '\r' | '\n' -> advance lx; skip_ws lx
    | '#' ->
      (* line comments *)
      while (not (at_end lx)) && cur lx <> '\n' do advance lx done;
      skip_ws lx
    | _ -> ()

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

let lex_one lx : token * Loc.span =
  skip_ws lx;
  let start = lx.pos in
  let span () = Loc.span start lx.pos in
  if at_end lx then (Teof, span ())
  else if looking_at lx "_{" then begin advance lx; advance lx; (Tsub_open, span ()) end
  else if looking_at lx "->" then begin advance lx; advance lx; (Tarrow, span ()) end
  else if looking_at lx ".." then begin advance lx; advance lx; (Tdotdot, span ()) end
  else if looking_at lx "<=" then begin advance lx; advance lx; (Tle, span ()) end
  else if looking_at lx ">=" then begin advance lx; advance lx; (Tge, span ()) end
  else if looking_at lx "<>" then begin advance lx; advance lx; (Tne, span ()) end
  else if is_ident_start (cur lx) then begin
    while (not (at_end lx)) && is_ident_char (cur lx) do advance lx done;
    let s = String.sub lx.src start.Loc.offset (lx.pos.Loc.offset - start.Loc.offset) in
    if List.mem (String.lowercase_ascii s) keywords then
      (Tkw (String.lowercase_ascii s), span ())
    else (Tident s, span ())
  end
  else if is_digit (cur lx) then begin
    while (not (at_end lx)) && is_digit (cur lx) do advance lx done;
    if
      (not (at_end lx))
      && cur lx = '.'
      && (not (looking_at lx ".."))
      && lx.pos.Loc.offset + 1 < String.length lx.src
      && is_digit lx.src.[lx.pos.Loc.offset + 1]
    then begin
      advance lx;
      while (not (at_end lx)) && is_digit (cur lx) do advance lx done;
      let s = String.sub lx.src start.Loc.offset (lx.pos.Loc.offset - start.Loc.offset) in
      (Treal (float_of_string s), span ())
    end
    else
      let s = String.sub lx.src start.Loc.offset (lx.pos.Loc.offset - start.Loc.offset) in
      (Tint (int_of_string s), span ())
  end
  else
    let one tok = advance lx; (tok, span ()) in
    match cur lx with
    | '}' -> one Tbrace_close
    | '(' -> one Tlparen
    | ')' -> one Trparen
    | '[' -> one Tlbracket
    | ']' -> one Trbracket
    | ',' -> one Tcomma
    | ';' -> one Tsemi
    | '=' -> one Teq
    | '<' -> one Tlt
    | '>' -> one Tgt
    | '+' -> one Tplus
    | '-' -> one Tminus
    | '*' -> one Tstar
    | '/' -> one Tslash
    | c -> err (Loc.span start start) "unexpected character %C" c

let next lx =
  match lx.peeked with
  | Some t -> lx.peeked <- None; t
  | None -> lex_one lx

let peek lx =
  match lx.peeked with
  | Some t -> t
  | None ->
    let t = lex_one lx in
    lx.peeked <- Some t;
    t

(* ------------------------------------------------------------------ *)
(* Parsing *)

type range = { r_names : string list; r_lo : Ast.expr; r_hi : Ast.expr }

type io = { io_name : string; io_subs : string list }

type eqn = { eqn_name : string; eqn_subs : Ast.expr list; eqn_rhs : Ast.expr; eqn_loc : Loc.span }

type document = {
  doc_name : string;
  doc_inputs : io list;
  doc_outputs : io list;
  doc_ranges : range list;
  doc_eqns : eqn list;
}

let expect lx want msg =
  let tok, span = next lx in
  if tok <> want then err span "expected %s" msg

let expect_ident lx =
  match next lx with
  | Tident s, span -> (s, span)
  | _, span -> err span "expected an identifier"

let rec parse_expr lx : Ast.expr =
  match peek lx with
  | Tkw "if", _ ->
    ignore (next lx);
    let c = parse_expr lx in
    expect lx (Tkw "then") "'then'";
    let t = parse_expr lx in
    expect lx (Tkw "else") "'else'";
    let f = parse_expr lx in
    Ast.mk (Ast.If (c, t, f))
  | _ -> parse_or lx

and parse_or lx =
  let rec loop acc =
    match peek lx with
    | Tkw "or", _ ->
      ignore (next lx);
      loop (Ast.mk (Ast.Binop (Ast.Or, acc, parse_and lx)))
    | _ -> acc
  in
  loop (parse_and lx)

and parse_and lx =
  let rec loop acc =
    match peek lx with
    | Tkw "and", _ ->
      ignore (next lx);
      loop (Ast.mk (Ast.Binop (Ast.And, acc, parse_rel lx)))
    | _ -> acc
  in
  loop (parse_rel lx)

and parse_rel lx =
  let a = parse_add lx in
  let op =
    match peek lx with
    | Teq, _ -> Some Ast.Eq
    | Tne, _ -> Some Ast.Ne
    | Tlt, _ -> Some Ast.Lt
    | Tle, _ -> Some Ast.Le
    | Tgt, _ -> Some Ast.Gt
    | Tge, _ -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | Some op ->
    ignore (next lx);
    Ast.mk (Ast.Binop (op, a, parse_add lx))
  | None -> a

and parse_add lx =
  let rec loop acc =
    match peek lx with
    | Tplus, _ -> ignore (next lx); loop (Ast.mk (Ast.Binop (Ast.Add, acc, parse_mul lx)))
    | Tminus, _ -> ignore (next lx); loop (Ast.mk (Ast.Binop (Ast.Sub, acc, parse_mul lx)))
    | _ -> acc
  in
  loop (parse_mul lx)

and parse_mul lx =
  let rec loop acc =
    match peek lx with
    | Tstar, _ -> ignore (next lx); loop (Ast.mk (Ast.Binop (Ast.Mul, acc, parse_unary lx)))
    | Tslash, _ -> ignore (next lx); loop (Ast.mk (Ast.Binop (Ast.Div, acc, parse_unary lx)))
    | Tkw "div", _ -> ignore (next lx); loop (Ast.mk (Ast.Binop (Ast.Idiv, acc, parse_unary lx)))
    | Tkw "mod", _ -> ignore (next lx); loop (Ast.mk (Ast.Binop (Ast.Imod, acc, parse_unary lx)))
    | _ -> acc
  in
  loop (parse_unary lx)

and parse_unary lx =
  match peek lx with
  | Tminus, _ -> ignore (next lx); Ast.mk (Ast.Unop (Ast.Neg, parse_unary lx))
  | Tkw "not", _ -> ignore (next lx); Ast.mk (Ast.Unop (Ast.Not, parse_unary lx))
  | _ -> parse_primary lx

and parse_primary lx =
  match next lx with
  | Tint n, _ -> Ast.int_e n
  | Treal f, _ -> Ast.mk (Ast.Real f)
  | Tlparen, _ ->
    let e = parse_expr lx in
    expect lx Trparen "')'";
    e
  | Tident name, _ -> (
    match peek lx with
    | Tsub_open, _ ->
      ignore (next lx);
      let subs = parse_expr_list lx in
      expect lx Tbrace_close "'}'";
      Ast.mk (Ast.Index (Ast.var_e name, subs))
    | Tlparen, _ ->
      ignore (next lx);
      let args = parse_expr_list lx in
      expect lx Trparen "')'";
      Ast.mk (Ast.Call (name, args))
    | _ -> Ast.var_e name)
  | _, span -> err span "expected an expression"

and parse_expr_list lx =
  let e = parse_expr lx in
  match peek lx with
  | Tcomma, _ ->
    ignore (next lx);
    e :: parse_expr_list lx
  | _ -> [ e ]

let parse_io lx : io =
  let name, _ = expect_ident lx in
  match peek lx with
  | Tlbracket, _ ->
    ignore (next lx);
    let rec idents () =
      let x, _ = expect_ident lx in
      match peek lx with
      | Tcomma, _ -> ignore (next lx); x :: idents ()
      | _ -> [ x ]
    in
    let subs = idents () in
    expect lx Trbracket "']'";
    { io_name = name; io_subs = subs }
  | _ -> { io_name = name; io_subs = [] }

let parse_document src : document =
  let lx = mk_lexer src in
  let doc_name, _ = expect_ident lx in
  expect lx Tlparen "'('";
  let rec ios () =
    let io = parse_io lx in
    match peek lx with
    | Tcomma, _ -> ignore (next lx); io :: ios ()
    | _ -> [ io ]
  in
  let doc_inputs = match peek lx with Trparen, _ -> [] | _ -> ios () in
  expect lx Trparen "')'";
  expect lx Tarrow "'->'";
  let rec outs () =
    let io = parse_io lx in
    match peek lx with
    | Tcomma, _ -> ignore (next lx); io :: outs ()
    | _ -> [ io ]
  in
  let doc_outputs = outs () in
  let doc_ranges =
    match peek lx with
    | Tkw "where", _ ->
      ignore (next lx);
      let rec ranges () =
        let rec names () =
          let x, _ = expect_ident lx in
          match peek lx with
          | Tcomma, _ -> ignore (next lx); x :: names ()
          | _ -> [ x ]
        in
        let r_names = names () in
        expect lx Teq "'='";
        let r_lo = parse_add lx in
        expect lx Tdotdot "'..'";
        let r_hi = parse_add lx in
        let r = { r_names; r_lo; r_hi } in
        match peek lx with
        | Tsemi, _ -> ignore (next lx); r :: ranges ()
        | _ -> [ r ]
      in
      ranges ()
    | _ -> []
  in
  let rec eqns acc =
    match peek lx with
    | Teof, _ -> List.rev acc
    | _ ->
      let name, eqn_loc = expect_ident lx in
      let subs =
        match peek lx with
        | Tsub_open, _ ->
          ignore (next lx);
          let subs = parse_expr_list lx in
          expect lx Tbrace_close "'}'";
          subs
        | _ -> []
      in
      expect lx Teq "'='";
      let rhs = parse_expr lx in
      eqns ({ eqn_name = name; eqn_subs = subs; eqn_rhs = rhs; eqn_loc } :: acc)
  in
  let doc_eqns = eqns [] in
  { doc_name; doc_inputs; doc_outputs; doc_ranges; doc_eqns }

(* ------------------------------------------------------------------ *)
(* Translation to a PS module *)

let range_of doc v =
  List.find_opt (fun r -> List.mem v r.r_names) doc.doc_ranges

(* Convex hull of the lows/highs appearing at one position of a local
   array.  Linear comparison decides constant differences outright;
   symbolic cases (1 vs maxK) are ordered with the where-clause
   non-emptiness facts (lo <= hi for every declared range). *)
let hull ~facts loc (cands : (Ast.expr * Ast.expr) list) : Ast.expr * Ast.expr =
  let lin e =
    match Ps_sem.Linexpr.of_expr e with
    | Some l -> l
    | None -> err loc "array bound %s is not linear" (Pretty.expr_to_string e)
  in
  let pick keep a b =
    match Ps_sem.Linexpr.diff_const (lin a) (lin b) with
    | Some d -> if keep d then a else b
    | None ->
      (* keep (a - b): does a win?  Try to certify either order. *)
      let a_minus_b = Ps_sem.Linexpr.sub (lin a) (lin b) in
      let b_minus_a = Ps_sem.Linexpr.sub (lin b) (lin a) in
      if Ps_sem.Linexpr.prove_nonneg ~assumptions:facts a_minus_b then
        if keep 1 then a else b
      else if Ps_sem.Linexpr.prove_nonneg ~assumptions:facts b_minus_a then
        if keep (-1) then a else b
      else
        err loc "cannot order the bounds %s and %s" (Pretty.expr_to_string a)
          (Pretty.expr_to_string b)
  in
  match cands with
  | [] -> err loc "empty dimension"
  | (lo0, hi0) :: rest ->
    List.fold_left
      (fun (lo, hi) (lo', hi') ->
        (pick (fun d -> d <= 0) lo lo', pick (fun d -> d >= 0) hi hi'))
      (lo0, hi0) rest

(* Rewrite X_{e1..en} references into PS subscripting (the AST already
   uses Index; nothing to do — the notation mapped directly). *)

let to_module (doc : document) : Ast.pmodule =
  let loc = Loc.dummy in
  (* Non-emptiness facts of the declared ranges: hi - lo >= 0. *)
  let facts =
    List.filter_map
      (fun r ->
        match
          Ps_sem.Linexpr.of_expr r.r_lo, Ps_sem.Linexpr.of_expr r.r_hi
        with
        | Some lo, Some hi -> Some (Ps_sem.Linexpr.sub hi lo)
        | _ -> None)
      doc.doc_ranges
  in
  let is_output n = List.exists (fun o -> String.equal o.io_name n) doc.doc_outputs in
  let is_input n = List.exists (fun i -> String.equal i.io_name n) doc.doc_inputs in
  (* Scalars used in range bounds are ints. *)
  let bound_vars =
    List.concat_map
      (fun r -> Ast.free_vars r.r_lo @ Ast.free_vars r.r_hi)
      doc.doc_ranges
    |> List.sort_uniq String.compare
  in
  let array_type subs eloc =
    Ast.mk_t
      (Ast.Tarray
         ( List.map
             (fun v ->
               match range_of doc v with
               | Some _ -> Ast.mk_t (Ast.Tname v)
               | None -> err eloc "index %s has no range in the where clause" v)
             subs,
           Ast.mk_t Ast.Treal ))
  in
  let m_params =
    List.map
      (fun io ->
        let p_type =
          if io.io_subs = [] then
            if List.mem io.io_name bound_vars then Ast.mk_t Ast.Tint
            else Ast.mk_t Ast.Treal
          else array_type io.io_subs loc
        in
        { Ast.p_name = io.io_name; p_type; p_loc = loc })
      doc.doc_inputs
  in
  let m_results =
    List.map
      (fun io ->
        let p_type =
          if io.io_subs = [] then Ast.mk_t Ast.Treal
          else array_type io.io_subs loc
        in
        { Ast.p_name = io.io_name; p_type; p_loc = loc })
      doc.doc_outputs
  in
  (* Subrange type declarations from the where clause. *)
  let m_types =
    List.map
      (fun r ->
        { Ast.td_names = r.r_names;
          td_def = Ast.mk_t (Ast.Tsubrange (r.r_lo, r.r_hi));
          td_loc = loc })
      doc.doc_ranges
  in
  (* Locals: defined names that are not outputs. *)
  let defined =
    List.map (fun e -> e.eqn_name) doc.doc_eqns |> List.sort_uniq String.compare
  in
  let locals = List.filter (fun n -> (not (is_output n)) && not (is_input n)) defined in
  let m_vars =
    List.filter_map
      (fun name ->
        let defs = List.filter (fun e -> String.equal e.eqn_name name) doc.doc_eqns in
        let arity =
          match defs with
          | [] -> 0
          | d :: rest ->
            let a = List.length d.eqn_subs in
            List.iter
              (fun d' ->
                if List.length d'.eqn_subs <> a then
                  err d'.eqn_loc "inconsistent arity for %s" name)
              rest;
            a
        in
        if arity = 0 then
          Some
            { Ast.vd_names = [ name ]; vd_type = Ast.mk_t Ast.Treal; vd_loc = loc }
        else
          let dim p =
            let cands =
              List.map
                (fun d ->
                  let sub = List.nth d.eqn_subs p in
                  match sub.Ast.e with
                  | Ast.Var v when range_of doc v <> None ->
                    let r = Option.get (range_of doc v) in
                    (r.r_lo, r.r_hi)
                  | _ -> (sub, sub) (* constant plane *))
                defs
            in
            let lo, hi = hull ~facts (List.hd defs).eqn_loc cands in
            Ast.mk_t (Ast.Tsubrange (lo, hi))
          in
          Some
            { Ast.vd_names = [ name ];
              vd_type =
                Ast.mk_t (Ast.Tarray (List.init arity dim, Ast.mk_t Ast.Treal));
              vd_loc = loc })
      locals
  in
  (* Equations map one-to-one. *)
  let m_eqs =
    List.map
      (fun e ->
        { Ast.eq_lhs =
            [ { Ast.l_name = e.eqn_name; l_subs = e.eqn_subs; l_path = []; l_loc = e.eqn_loc } ];
          eq_rhs = e.eqn_rhs;
          eq_loc = e.eqn_loc })
      doc.doc_eqns
  in
  { Ast.m_name = doc.doc_name;
    m_params;
    m_results;
    m_types;
    m_vars;
    m_eqs;
    m_loc = loc }

let translate src : Ast.pmodule = to_module (parse_document src)
