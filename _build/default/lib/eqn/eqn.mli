(** Equation-notation front end — the paper's stated ultimate goal (§1):
    "a translator of equations in the form of (1) ... to modules in this
    language".

    The notation is the paper's display mathematics, linearized:

    {v
relaxation(InitialA[i,j], M, maxK) -> newA[i,j]
where i, j = 0 .. M+1; k = 2 .. maxK
A_{1,i,j}  = InitialA_{i,j}
A_{k,i,j}  = if i = 0 or j = 0 or i = M+1 or j = M+1
             then A_{k-1,i,j}
             else (A_{k-1,i,j-1} + A_{k-1,i-1,j}
                 + A_{k-1,i,j+1} + A_{k-1,i+1,j}) / 4
newA_{i,j} = A_{maxK,i,j}
    v}

    Subscripts and superscripts are all written as subscripts, exactly as
    §2 prescribes for PS itself.  The [where] clause declares the index
    ranges; array parameters/results list their index names; every other
    defined name becomes a local array whose extent at each position is
    the convex hull of the ranges and constants used there (so [A] above
    is allocated over [1 .. maxK]).  Scalars used in range bounds are
    [int]; everything else is [real].  [#] starts a line comment. *)

exception Error of string * Ps_lang.Loc.span

type range = {
  r_names : string list;
  r_lo : Ps_lang.Ast.expr;
  r_hi : Ps_lang.Ast.expr;
}

type io = { io_name : string; io_subs : string list }

type eqn = {
  eqn_name : string;
  eqn_subs : Ps_lang.Ast.expr list;
  eqn_rhs : Ps_lang.Ast.expr;
  eqn_loc : Ps_lang.Loc.span;
}

type document = {
  doc_name : string;
  doc_inputs : io list;
  doc_outputs : io list;
  doc_ranges : range list;
  doc_eqns : eqn list;
}

val parse_document : string -> document
(** @raise Error on malformed notation. *)

val to_module : document -> Ps_lang.Ast.pmodule
(** @raise Error when ranges are missing or array extents cannot be
    ordered symbolically. *)

val translate : string -> Ps_lang.Ast.pmodule
(** [parse_document] followed by [to_module]. *)
