lib/eqn/eqn.mli: Ps_lang
