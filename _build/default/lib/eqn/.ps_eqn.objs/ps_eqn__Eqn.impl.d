lib/eqn/eqn.ml: Ast Fmt List Loc Option Pretty Ps_lang Ps_sem String
