(* PS source of the paper's worked examples and of additional workloads
   used by the examples, tests and benchmarks.

   [jacobi] is the Relaxation module of Fig. 1 verbatim (modulo OCR
   cleanup); [seidel] is the same module with equation 3 replaced by the
   "more standard relaxation" of §4 (equation 2 of the paper), whose
   natural schedule is fully iterative and which the hyperplane
   transformation re-parallelizes. *)

(* Fig. 1: all stencil reads from iteration K-1 -> inner DOALLs. *)
let jacobi =
  {|
(*$m+v+x+t-*)
Relaxation: module (InitialA: array[I,J] of real;
                    M: int; maxK: int):
  [newA: array [I, J] of real];
type
  I, J = 0 .. M+1;
  K = 2 .. maxK;
var
  A: array [1 .. maxK] of array[I,J] of real;
  (* A denotes the succession of grids *)
define
  (*eq.1*) A[1] = InitialA;          (* the first grid is input *)
  (*eq.2*) newA = A[maxK];           (* the grid returned is from the last iteration *)
  (*eq.3*) A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
                      then A[K-1,I,J]        (* carry over boundary points *)
                      else ( A[K-1,I,J-1]
                           + A[K-1,I-1,J]
                           + A[K-1,I,J+1]
                           + A[K-1,I+1,J] ) / 4;
end Relaxation;
|}

(* §4, equation 2: west/north neighbours read from the current sweep. *)
let seidel =
  {|
Relaxation: module (InitialA: array[I,J] of real;
                    M: int; maxK: int):
  [newA: array [I, J] of real];
type
  I, J = 0 .. M+1;
  K = 2 .. maxK;
var
  A: array [1 .. maxK] of array[I,J] of real;
define
  A[1] = InitialA;
  newA = A[maxK];
  A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
             then A[K-1,I,J]
             else ( A[K,I,J-1]
                  + A[K,I-1,J]
                  + A[K-1,I,J+1]
                  + A[K-1,I+1,J] ) / 4;
end Relaxation;
|}

(* 1-D heat diffusion: one time axis, one space axis, DOALL inner. *)
let heat1d =
  {|
Heat1D: module (U0: array[X] of real; N: int; steps: int):
  [UT: array[X] of real];
type
  X = 0 .. N+1;
  T = 2 .. steps;
var
  U: array [1 .. steps] of array[X] of real;
define
  U[1] = U0;
  UT = U[steps];
  U[T,X] = if (X = 0) or (X = N+1)
           then U[T-1,X]
           else U[T-1,X] + 0.25 * (U[T-1,X-1] - 2.0 * U[T-1,X] + U[T-1,X+1]);
end Heat1D;
|}

(* Matrix product as a recursive accumulation: the reduction axis is the
   only iterative loop, the two result axes are DOALL. *)
let matmul =
  {|
MatMul: module (A: array[I,L] of real; B: array[L,J] of real; N: int):
  [C: array[I,J] of real];
type
  I, J = 1 .. N;
  L = 1 .. N;
  K = 1 .. N;
var
  S: array [0 .. N] of array[I,J] of real;
define
  S[0,I,J] = 0.0;
  S[K,I,J] = S[K-1,I,J] + A[I,K] * B[K,J];
  C = S[N];
end MatMul;
|}

(* Pascal's triangle: one iterative axis, one DOALL axis. *)
let binomial =
  {|
Binomial: module (N: int): [P: array[R] of int];
type
  R = 0 .. N;
  Lvl = 1 .. N;
var
  T: array [0 .. N] of array[R] of int;
define
  T[0,R] = if R = 0 then 1 else 0;
  T[Lvl,R] = if (R = 0) then 1
             else T[Lvl-1,R-1] + T[Lvl-1,R];
  P = T[N];
end Binomial;
|}

(* First-order linear recurrence: no parallel dimension at all. *)
let prefix_sum =
  {|
Prefix: module (X: array[I] of real; N: int): [S: array[I] of real];
type
  I = 1 .. N;
  I2 = 2 .. N;
var
  Acc: array [I] of real;
define
  Acc[1] = X[1];
  Acc[I2] = Acc[I2-1] + X[I2];
  S = Acc;
end Prefix;
|}

(* A program with two modules: the main one calls Relaxation for a fixed
   number of sweeps and rescales the result. *)
let two_module =
  {|
Scale: module (G: array[I,J] of real; M: int; F: real):
  [H: array[I,J] of real];
type
  I, J = 0 .. M+1;
define
  H[I,J] = F * G[I,J];
end Scale;

Driver: module (InitialA: array[I,J] of real; M: int; maxK: int):
  [Out: array[I,J] of real];
type
  I, J = 0 .. M+1;
var
  Mid: array[I,J] of real;
define
  Mid = Relaxation(InitialA, M, maxK);
  Out = Scale(Mid, M, 2.0);
end Driver;

Relaxation: module (InitialA: array[I,J] of real;
                    M: int; maxK: int):
  [newA: array [I, J] of real];
type
  I, J = 0 .. M+1;
  K = 2 .. maxK;
var
  A: array [1 .. maxK] of array[I,J] of real;
define
  A[1] = InitialA;
  newA = A[maxK];
  A[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
             then A[K-1,I,J]
             else ( A[K-1,I,J-1] + A[K-1,I-1,J]
                  + A[K-1,I,J+1] + A[K-1,I+1,J] ) / 4;
end Relaxation;
|}

(* Enumerations: classify values into buckets, then histogram them with a
   recursive count — enum elements in arrays, comparisons on enums. *)
let classify =
  {|
Classify: module (V: array[I] of real; N: int):
  [C: array[I] of Kind; nLarge: int];
type
  I = 1 .. N;
  I2 = 2 .. N;
  Kind = (Small, Medium, Large);
var
  Cnt: array [0 .. N] of int;
define
  C[I] = if V[I] < 0.3 then Small
         else if V[I] < 0.7 then Medium
         else Large;
  Cnt[0] = 0;
  Cnt[I] = Cnt[I-1] + (if C[I] = Large then 1 else 0);
  nLarge = Cnt[N];
end Classify;
|}

(* A 3-D sweep whose only valid dimension order is not the declaration
   order: the scheduler must skip dimension I (offset +1) and choose K. *)
let skewed =
  {|
Skewed: module (Init: array[I,J] of real; M: int; maxK: int):
  [Res: array[I,J] of real];
type
  I, J = 0 .. M+1;
  K = 2 .. maxK;
var
  W: array [1 .. maxK] of array[I,J] of real;
define
  W[1] = Init;
  Res = W[maxK];
  W[K,I,J] = if (I = 0) or (J = 0) or (I = M+1) or (J = M+1)
             then W[K-1,I,J]
             else 0.5 * (W[K-1,I+1,J] + W[K-1,I,J-1]);
end Skewed;
|}

(* Records with per-field equations: a particle state advanced through
   time.  Each field of S is defined by its own equation (the paper's
   record/field relationship appears as path-annotated definitions in the
   dependency graph); the time dimension still windows to two planes. *)
let particles =
  {|
Particles: module (X0: array[P] of real; V0: array[P] of real;
                   N: int; steps: int):
  [XT: array[P] of real];
type
  P = 1 .. N;
  T = 2 .. steps;
  State = record x : real; v : real end;
var
  S: array [1 .. steps] of array[P] of State;
define
  S[1, P].x = X0[P];
  S[1, P].v = V0[P];
  S[T, P].x = S[T-1, P].x + 0.1 * S[T-1, P].v;
  S[T, P].v = S[T-1, P].v * 0.99;
  XT[P] = S[steps, P].x;
end Particles;
|}

(* Longest common subsequence: a 2-D recurrence whose natural schedule is
   fully iterative (both dimensions carry dependences); the hyperplane
   method finds t = I + J and exposes anti-diagonal (wavefront)
   parallelism — a second, independent exercise of paper §4. *)
let lcs =
  {|
LCS: module (X: array[Ipos] of int; Y: array[Jpos] of int; N: int):
  [len: int];
type
  Jz = 0 .. N;
  Ipos, Jpos = 1 .. N;
var
  L: array [0 .. N, 0 .. N] of int;
define
  L[0, Jz] = 0;
  L[Ipos, 0] = 0;
  L[Ipos, Jpos] = if X[Ipos] = Y[Jpos]
                  then L[Ipos-1, Jpos-1] + 1
                  else max(L[Ipos-1, Jpos], L[Ipos, Jpos-1]);
  len = L[N, N];
end LCS;
|}

let strided_copy =
  {|
StridedCopy: module (A: array[Ipos] of real; N: int):
  [B: array [Ipos] of real];
type
  Ipos = 1 .. N;
  Init = 1 .. 2;
  Rest = 3 .. N;
var
  C: array [Ipos] of real;
define
  C[Init] = A[Init];
  C[Rest] = C[Rest - 2] + A[Rest];
  B = C;
end StridedCopy;
|}

let param_recurrence =
  {|
ParamRecurrence: module (A: array[Ipos] of real; N: int; K: int):
  [B: array [Ipos] of real];
type
  Ipos = 1 .. N;
  Init = 1 .. K;
  Rest = K + 1 .. N;
var
  C: array [Ipos] of real;
define
  C[Init] = A[Init];
  C[Rest] = C[Rest - K] + A[Rest];
  B = C;
end ParamRecurrence;
|}

(* ------------------------------------------------------------------ *)
(* Deterministic input fill shared with the generated-C harness: must
   match ps_fill in Ps_codegen.Emit.emit_main exactly. *)

let fill_value (q : int) : float =
  let x = Int64.add (Int64.mul (Int64.of_int q) 2654435761L) 12345L in
  Int64.to_float (Int64.unsigned_rem x 1000L) /. 1000.0

(* Standard grid input for the relaxation modules: (M+2) x (M+2),
   row-major LCG fill. *)
let grid_input m =
  Ps_interp.Exec.array_real
    ~dims:[ (0, m + 1); (0, m + 1) ]
    (fun ix -> fill_value ((ix.(0) * (m + 2)) + ix.(1)))

let line_input n =
  Ps_interp.Exec.array_real ~dims:[ (0, n + 1) ] (fun ix -> fill_value ix.(0))

let square_input ?(lo = 1) n =
  Ps_interp.Exec.array_real
    ~dims:[ (lo, n); (lo, n) ]
    (fun ix -> fill_value (((ix.(0) - lo) * n) + (ix.(1) - lo)))

let relaxation_inputs ~m ~maxk =
  [ ("InitialA", grid_input m);
    ("M", Ps_interp.Exec.scalar_int m);
    ("maxK", Ps_interp.Exec.scalar_int maxk) ]
