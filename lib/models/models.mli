(** PS source of the paper's worked examples and additional workloads,
    shared by the CLI demo, the examples, the tests and the benchmark
    harness. *)

val jacobi : string
(** Fig. 1 verbatim: Jacobi-style relaxation — every stencil read from
    iteration K-1.  Schedules to Fig. 6; A's first dimension windows to
    2 planes. *)

val seidel : string
(** §4's "more standard relaxation": west/north neighbours read from the
    current sweep.  Schedules to the fully iterative Fig. 7; the
    hyperplane transformation re-parallelizes it. *)

val heat1d : string
(** 1-D heat diffusion: one time axis (DO), one space axis (DOALL). *)

val matmul : string
(** Matrix product as a recursive accumulation: the reduction axis is
    the only iterative loop. *)

val binomial : string
(** Pascal's triangle: one iterative level axis, one DOALL row axis. *)

val prefix_sum : string
(** First-order linear recurrence: no parallel dimension at all. *)

val two_module : string
(** Three modules: a Driver calling Relaxation and Scale — whole-array
    module-call equations. *)

val classify : string
(** Enumerations: classify reals into buckets, count one bucket with a
    recursive accumulator; a multi-result module. *)

val particles : string
(** Record states advanced through time, one equation per field
    ([S[T,P].x = ...]); the time dimension still windows to 2 planes. *)

val lcs : string
(** Longest common subsequence: a 2-D recurrence carrying dependences in
    both dimensions; the hyperplane method finds t = I + J (anti-diagonal
    wavefronts). *)

val skewed : string
(** A stencil whose reads mix I+1 / J-1 offsets but stay on iteration
    K-1: still a DOALL nest under an iterative K. *)

val strided_copy : string
(** A constant stride-2 recurrence [C[Rest] = C[Rest - 2] + ...]: the
    symbolic distance analysis schedules it as DOGROUP(2), two
    independent residue classes (mirrors examples/ps/strided_copy.ps). *)

val param_recurrence : string
(** A parameter-stride recurrence [C[Rest] = C[Rest - K] + ...]:
    schedules as DOINSPECT(K) — the runtime inspector checks K >= 1 and
    partitions into K residue classes (mirrors
    examples/ps/param_recurrence.ps). *)

(** {1 Deterministic inputs} *)

val fill_value : int -> float
(** The LCG fill shared bit-for-bit with the generated-C harness
    ({!Ps_codegen.Emit.emit_main}): flat index to a value in [0, 1). *)

val grid_input : int -> Ps_interp.Value.value
(** [(M+2) x (M+2)] real grid, row-major {!fill_value}. *)

val line_input : int -> Ps_interp.Value.value
(** [0 .. N+1] real line. *)

val square_input : ?lo:int -> int -> Ps_interp.Value.value
(** [lo..N x lo..N] real matrix (default [lo = 1]). *)

val relaxation_inputs : m:int -> maxk:int -> (string * Ps_interp.Value.value) list
(** The full input binding for {!jacobi} / {!seidel}. *)
