(* Public API of the PS compiler.

   This facade ties the pipeline together:

     source --parse--> AST --elaborate--> typed module
            --graph--> dependency graph --schedule--> flowchart + windows
            --[hyperplane]--> transformed module (re-enters the pipeline)
            --emit_c--> C text      --run--> results (sequential or DOALL)

   Every component exception is converted to a single located [Error], so
   drivers (CLI, examples, tests) handle one exception type. *)

module Ast = Ps_lang.Ast
module Loc = Ps_lang.Loc
module Parser = Ps_lang.Parser
module Pretty = Ps_lang.Pretty
module Stypes = Ps_sem.Stypes
module Linexpr = Ps_sem.Linexpr
module Elab = Ps_sem.Elab
module Sa_check = Ps_sem.Sa_check
module Dgraph = Ps_graph.Dgraph
module Label = Ps_graph.Label
module Distance = Ps_graph.Distance
module Build = Ps_graph.Build
module Scc = Ps_graph.Scc
module Render = Ps_graph.Render
module Flowchart = Ps_sched.Flowchart
module Schedule = Ps_sched.Schedule
module Sink = Ps_sched.Sink
module Analysis = Ps_sched.Analysis
module Fuse = Ps_sched.Fuse
module Trim = Ps_sched.Trim
module Collapse = Ps_sched.Collapse
module Policy = Ps_sched.Policy
module Costmodel = Ps_sched.Costmodel
module Imatrix = Ps_hyper.Imatrix
module Ineq = Ps_hyper.Ineq
module Solve = Ps_hyper.Solve
module Transform = Ps_hyper.Transform
module Eqn = Ps_eqn.Eqn
module Diag = Ps_diag.Diag
module Verify = Ps_check.Verify
module Lint = Ps_check.Lint
module Emit = Ps_codegen.Emit
module Value = Ps_interp.Value
module Eval = Ps_interp.Eval
module Exec = Ps_interp.Exec
module Pool = Ps_runtime.Pool
module Trace = Ps_obs.Trace
module Metrics = Ps_obs.Metrics
module Prof = Ps_obs.Prof

exception Error of string

let error fmt = Fmt.kstr (fun m -> raise (Error m)) fmt

let wrap f =
  try f () with
  | Ps_lang.Lexer.Error (m, span) ->
    error "lexical error: %s (%s)" m (Loc.to_string span)
  | Ps_lang.Parser.Error (m, span) ->
    error "syntax error: %s (%s)" m (Loc.to_string span)
  | Ps_eqn.Eqn.Error (m, span) ->
    error "equation notation: %s (%s)" m (Loc.to_string span)
  | Ps_sem.Elab.Error (m, span) ->
    error "semantic error: %s (%s)" m (Loc.to_string span)
  | Ps_sched.Schedule.Unschedulable { reason; component } ->
    error
      "the equations cannot be scheduled: %s (component {%s}); the hyperplane \
       transformation of section 4 may apply"
      reason
      (String.concat ", " component)
  | Ps_sched.Analysis.Unsupported m -> error "analysis: %s" m
  | Ps_hyper.Ineq.Not_applicable m -> error "hyperplane transformation: %s" m
  | Ps_hyper.Solve.No_schedule m -> error "hyperplane transformation: %s" m
  | Ps_codegen.Emit.Unsupported m -> error "C back end: %s" m
  | Ps_interp.Eval.Runtime_error m -> error "runtime error: %s" m
  | Ps_interp.Value.Bounds m -> error "subscript out of bounds: %s" m
  | Ps_interp.Compile.Cannot_compile m -> error "compilation error: %s" m

(* ------------------------------------------------------------------ *)
(* Projects *)

type t = {
  ast : Ast.program;
  prog : Elab.eprogram;
  diagnostics : Sa_check.diagnostic list;
}

let load_string src =
  wrap (fun () ->
      Trace.with_span "load" @@ fun () ->
      let ast = Trace.with_span "parse" (fun () -> Parser.program_of_string src) in
      let prog = Trace.with_span "elab" (fun () -> Elab.elab_program ast) in
      let diagnostics =
        Trace.with_span "sa_check" (fun () -> Sa_check.check_program prog)
      in
      (match Sa_check.errors diagnostics with
       | [] -> ()
       | e :: _ -> error "%s" (Fmt.str "%a" Sa_check.pp_diagnostic e));
      { ast; prog; diagnostics })

(* Translate equation notation (the paper's "ultimate goal" front end)
   and load the resulting module as a project. *)
let load_equations src =
  wrap (fun () ->
      Trace.with_span "load" @@ fun () ->
      let m = Trace.with_span "parse" (fun () -> Eqn.translate src) in
      let ast = [ m ] in
      let prog = Trace.with_span "elab" (fun () -> Elab.elab_program ast) in
      let diagnostics =
        Trace.with_span "sa_check" (fun () -> Sa_check.check_program prog)
      in
      (match Sa_check.errors diagnostics with
       | [] -> ()
       | e :: _ -> error "%s" (Fmt.str "%a" Sa_check.pp_diagnostic e));
      { ast; prog; diagnostics })

(* Like [load_string], but single-assignment errors become diagnostics
   on the project instead of raising: the lint and check drivers report
   them all and set the exit code from their severity. *)
let load_string_lenient src =
  wrap (fun () ->
      Trace.with_span "load" @@ fun () ->
      let ast = Trace.with_span "parse" (fun () -> Parser.program_of_string src) in
      let prog = Trace.with_span "elab" (fun () -> Elab.elab_program ast) in
      let diagnostics =
        Trace.with_span "sa_check" (fun () -> Sa_check.check_program prog)
      in
      { ast; prog; diagnostics })

let load_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  load_string src

let load_file_lenient path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  load_string_lenient src

let warnings t = Diag.warnings t.diagnostics

let modules t = List.map (fun m -> m.Elab.em_name) t.prog.Elab.ep_modules

let find_module t name =
  match Elab.find_module t.prog name with
  | Some m -> m
  | None -> error "no module named %s" name

let default_module t =
  match t.prog.Elab.ep_modules with
  | [] -> error "empty program"
  | m :: _ -> m

let the_module ?name t =
  match name with Some n -> find_module t n | None -> default_module t

(* ------------------------------------------------------------------ *)
(* Pipeline stages *)

let dep_graph em = wrap (fun () -> Build.build em)

(* A scheduled module: flowchart, storage windows, component table, and
   what the optional passes did. *)
type scheduled = {
  sc_module : Elab.emodule;
  sc_result : Schedule.result;
  sc_flowchart : Flowchart.t;
  sc_windows : Schedule.window list;
  sc_sunk : Sink.sunk list;
  sc_merged : int;     (* loops merged by the fusion pass *)
  sc_trimmed : int;    (* bounds tightened by the trimming pass *)
  sc_collapsed : int;  (* DOALL band heads marked by the collapsing pass *)
}

let schedule ?(sink = false) ?(fuse = false) ?(trim = false) ?(collapse = false)
    em =
  wrap (fun () ->
      Trace.with_span "schedule" @@ fun () ->
      let r = Schedule.schedule em in
      let fc, windows, sunk =
        if sink then
          let s = Sink.apply em r in
          (s.Sink.s_flowchart, s.Sink.s_windows, s.Sink.s_sunk)
        else (r.Schedule.r_flowchart, r.Schedule.r_windows, [])
      in
      let fc, merged =
        if fuse then Fuse.apply em r.Schedule.r_graph fc else (fc, 0)
      in
      let fc, trimmed = if trim then Trim.apply em fc else (fc, 0) in
      let fc, collapsed =
        if collapse then
          let fc = Collapse.mark fc in
          (fc, Collapse.count fc)
        else (fc, 0)
      in
      { sc_module = em;
        sc_result = r;
        sc_flowchart = fc;
        sc_windows = windows;
        sc_sunk = sunk;
        sc_merged = merged;
        sc_trimmed = trimmed;
        sc_collapsed = collapsed })

(* Apply the hyperplane transformation to [target] inside module
   [?name]; returns the extended project (transformed module appended)
   and the transform record for inspection. *)
let hyperplane ?name ~target t =
  wrap (fun () ->
      let em = the_module ?name t in
      let tr = Transform.apply em ~target in
      let ast = t.ast @ [ tr.Transform.tr_module ] in
      let prog = Elab.elab_program ast in
      let diagnostics = Sa_check.check_program prog in
      ({ ast; prog; diagnostics }, tr))

let emit_c ?name ?(sink = false) ?(fuse = false) ?(trim = false)
    ?(collapse = false) ?policy t =
  wrap (fun () ->
      let em = the_module ?name t in
      let collapse = collapse || policy <> None in
      let sc = schedule ~sink ~fuse ~trim ~collapse em in
      Emit.emit_module ~windows:sc.sc_windows ?policy em sc.sc_flowchart)

let emit_c_main ?name ?(sink = false) ?(fuse = false) ?(trim = false)
    ?(collapse = false) ?policy ~scalars t =
  wrap (fun () ->
      let em = the_module ?name t in
      let collapse = collapse || policy <> None in
      let sc = schedule ~sink ~fuse ~trim ~collapse em in
      Emit.emit_main ~windows:sc.sc_windows ?policy em sc.sc_flowchart ~scalars)

(* ------------------------------------------------------------------ *)
(* Verification and lints *)

(* Re-derive the legality of a scheduled module's flowchart and windows
   from its dependency graph (translation validation). *)
let verify sc =
  wrap (fun () ->
      Verify.flowchart ~windows:sc.sc_windows
        sc.sc_result.Schedule.r_graph sc.sc_flowchart)

(* All diagnostics for a project: single-assignment checks plus every
   lint, over every module, sorted. *)
let lint t =
  wrap (fun () ->
      Trace.with_span "lint" @@ fun () ->
      let per_module =
        List.concat_map Lint.module_ t.prog.Elab.ep_modules
      in
      Diag.sort (t.diagnostics @ per_module))

(* ------------------------------------------------------------------ *)
(* Execution *)

let run ?name ?(sink = false) ?(fuse = false) ?(trim = false)
    ?(collapse = false) ?(use_windows = true) ?pool ?(check = true)
    ?(stats = false) ?policy t ~inputs =
  wrap (fun () ->
      let em = the_module ?name t in
      (* A policy decides collapse per nest, so bands are always marked
         under one: an unmarked band could never flatten no matter what
         the table asks, and marking alone changes nothing. *)
      let collapse = collapse || policy <> None in
      let sc = schedule ~sink ~fuse ~trim ~collapse em in
      let opts =
        { Exec.default_opts with pool; check; use_windows; collect_stats = stats;
          policy;
          sched_flags =
            { Exec.sf_sink = sink; sf_fuse = fuse; sf_trim = trim;
              sf_collapse = collapse } }
      in
      Exec.run ~opts
        ~flowchart:sc.sc_flowchart
        ~windows:(if use_windows then sc.sc_windows else [])
        ~prog:t.prog em ~inputs)

let work_span ?name ?(sink = false) ?(fuse = false) ?(trim = false) t ~env =
  wrap (fun () ->
      let em = the_module ?name t in
      let sc = schedule ~sink ~fuse ~trim em in
      Analysis.of_flowchart ~env sc.sc_flowchart)

(* ------------------------------------------------------------------ *)
(* Per-nest scheduling policy *)

(* The static cost model's table for a module under concrete scalar
   inputs.  Bands are always collapse-marked first: the model decides
   per nest whether flattening pays, and an unmarked band could not
   flatten at all. *)
let static_policy ?name ?(sink = false) ?(fuse = false) ?(trim = false)
    ?overhead ?cores t ~env =
  wrap (fun () ->
      let em = the_module ?name t in
      let sc = schedule ~sink ~fuse ~trim ~collapse:true em in
      let cores =
        match cores with Some c -> c | None -> Pool.recommended_size ()
      in
      Costmodel.static ?overhead ~env ~cores sc.sc_flowchart)

(* Profile-guided tuning: replay the module under candidate per-nest
   policies with the loop-level profiler on, and keep, per fork
   candidate, the policy whose measured inclusive time is smallest.
   The static model's own choice is one of the candidates, so a tuned
   table never loses to it on the measured workload.  The result is
   host-specific (its [t_host_cores] records for which pool width the
   measurements were taken) and is meant to be cached as a compile
   artifact keyed by source digest, module, flags, and host_cores. *)
let tune ?name ?(sink = false) ?(fuse = false) ?(trim = false) ?cores
    ?(reps = 2) t ~inputs ~env =
  wrap (fun () ->
      let em = the_module ?name t in
      let sc = schedule ~sink ~fuse ~trim ~collapse:true em in
      let fc = sc.sc_flowchart in
      let cores =
        match cores with Some c -> c | None -> Pool.recommended_size ()
      in
      let keyed = Policy.index fc in
      let static_table = Costmodel.static ~env ~cores fc in
      (* Uniform candidates apply one shape to every nest; collapse is
         only requested where a band head is actually marked. *)
      let uniform cname mk =
        ( cname,
          { Policy.t_source = Policy.Tuned; t_host_cores = cores;
            t_entries = List.map (fun (l, k) -> (k, mk l)) keyed } )
      in
      let why = "tuned candidate" in
      let candidates =
        [ uniform "seq" (fun _ -> Policy.sequential ~why);
          uniform "fixed" (fun _ -> Policy.parallel ~steal:false ~why ());
          uniform "steal" (fun _ -> Policy.parallel ~steal:true ~why ());
          uniform "steal+collapse" (fun (l : Flowchart.loop) ->
              Policy.parallel ~steal:true ~collapse:l.Flowchart.lp_collapse
                ~why ());
          ("static", static_table) ]
      in
      let sched_flags =
        { Exec.sf_sink = sink; sf_fuse = fuse; sf_trim = trim;
          sf_collapse = true }
      in
      (* Inclusive ns per nest key for one candidate table, summed over
         [reps] runs (each run compiles fresh prof sites; sites named by
         policy key make the rows attributable). *)
      let measure pool table =
        Prof.set_enabled true;
        for _ = 1 to reps do
          ignore
            (Exec.run
               ~opts:
                 { Exec.default_opts with pool = Some pool; check = false;
                   policy = Some table; sched_flags }
               ~flowchart:fc ~windows:sc.sc_windows ~prog:t.prog em ~inputs)
        done;
        let rows = Prof.rows () in
        Prof.set_enabled false;
        List.map
          (fun ((l : Flowchart.loop), key) ->
            let name = Flowchart.kind_name l.Flowchart.lp_kind ^ " " ^ key in
            let ns =
              List.fold_left
                (fun acc (r : Prof.row) ->
                  if r.Prof.r_kind = "loop" && String.equal r.Prof.r_name name
                  then acc + r.Prof.r_ns
                  else acc)
                0 rows
            in
            (key, ns))
          keyed
      in
      let measured =
        Pool.with_pool ~steal:true (max 1 cores) (fun pool ->
            List.map
              (fun (cname, table) -> (cname, table, measure pool table))
              candidates)
      in
      let entries =
        List.map
          (fun (_, key) ->
            let best =
              List.fold_left
                (fun acc (cname, table, times) ->
                  match (List.assoc_opt key times, Policy.find table key) with
                  | Some ns, Some d -> (
                    match acc with
                    | Some (_, _, best_ns) when best_ns <= ns -> acc
                    | _ -> Some (cname, d, ns))
                  | _ -> acc)
                None measured
            in
            match best with
            | Some (cname, d, ns) ->
              ( key,
                { d with
                  Policy.d_why =
                    Printf.sprintf "tuned: %s won at %d ns over %d reps" cname
                      ns reps } )
            | None -> (
              (* Never measured (e.g. the nest did not execute): keep
                 the static model's call. *)
              match Policy.find static_table key with
              | Some d -> (key, d)
              | None -> (key, Policy.sequential ~why:"tuned: unmeasured")))
          keyed
      in
      { Policy.t_source = Policy.Tuned; t_host_cores = cores;
        t_entries = entries })

(* ------------------------------------------------------------------ *)
(* Display helpers *)

let flowchart_string ?(tree = true) sc =
  let em = sc.sc_module in
  if tree then Flowchart.to_tree_string em sc.sc_flowchart
  else Flowchart.to_compact_string em sc.sc_flowchart

let components_string sc =
  let em = sc.sc_module in
  String.concat "\n"
    (List.mapi
       (fun i (ct : Schedule.component_trace) ->
         Printf.sprintf "Component %d: {%s}  ->  %s" (i + 1)
           (String.concat ", " ct.Schedule.ct_nodes)
           (match ct.Schedule.ct_flowchart with
            | [] -> "null"
            | fc -> Flowchart.to_compact_string em fc))
       sc.sc_result.Schedule.r_components)

let windows_string sc =
  match sc.sc_windows with
  | [] -> "(no virtual dimensions)"
  | ws ->
    String.concat "\n"
      (List.map
         (fun (w : Schedule.window) ->
           Printf.sprintf "%s: dimension %d is virtual, window = %d"
             w.Schedule.w_data (w.Schedule.w_dim + 1) w.Schedule.w_size)
         ws)
