/* poll(2) binding for the compile service's event loop.

   Unix.select is fd_set-based: any descriptor numbered >= FD_SETSIZE
   (1024 on Linux) is out of reach, and `bench serve` holds 1024 client
   sockets at once.  poll has no such ceiling, so the event threads use
   this stub instead.

   Interface (see evpoll.ml):
     input  - an array of (fd, interest) pairs, interest bit 0 = read,
              bit 1 = write; and a timeout in milliseconds (-1 = block).
     output - an int array of the same length: bit 0 = readable (or
              hangup/error, which a read will surface), bit 1 =
              writable, bit 2 = error/invalid.

   The runtime lock is released around the poll call so worker threads
   keep running while an event thread sleeps; EINTR reports "no events"
   rather than failing, letting the caller notice signal-driven state
   (the draining flag) on its normal path. */

#include <poll.h>
#include <errno.h>
#include <stdlib.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>

CAMLprim value psc_poll_stub(value v_fds, value v_timeout_ms)
{
  CAMLparam2(v_fds, v_timeout_ms);
  CAMLlocal2(v_res, v_pair);
  mlsize_t n = Wosize_val(v_fds);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd *pfds = NULL;
  mlsize_t i;
  int rc = 0;

  if (n > 0) {
    pfds = malloc(n * sizeof(struct pollfd));
    if (pfds == NULL) caml_failwith("psc_poll: out of memory");
    for (i = 0; i < n; i++) {
      int interest;
      v_pair = Field(v_fds, i);
      /* Unix.file_descr is an int on Unix. */
      pfds[i].fd = Int_val(Field(v_pair, 0));
      interest = Int_val(Field(v_pair, 1));
      pfds[i].events = (short)(((interest & 1) ? POLLIN : 0)
                               | ((interest & 2) ? POLLOUT : 0));
      pfds[i].revents = 0;
    }
  }

  caml_release_runtime_system();
  rc = poll(pfds, (nfds_t)n, timeout);
  caml_acquire_runtime_system();

  if (rc < 0 && errno != EINTR) {
    free(pfds);
    caml_failwith("psc_poll: poll failed");
  }

  v_res = caml_alloc(n, 0);
  for (i = 0; i < n; i++) {
    int r = 0;
    if (rc > 0) {
      short re = pfds[i].revents;
      if (re & (POLLIN | POLLHUP | POLLERR)) r |= 1;
      if (re & POLLOUT) r |= 2;
      if (re & (POLLERR | POLLNVAL)) r |= 4;
    }
    Store_field(v_res, i, Val_int(r));
  }
  free(pfds);
  CAMLreturn(v_res);
}
