(* Content-addressed artifact store for the compile service.

   Keys are built from the MD5 digest of the source text plus whatever
   narrows the artifact (module name, transformation-flag fingerprint),
   so two requests with the same source and flags share one schedule no
   matter how the client phrased them.  Scheduling is deterministic —
   same module, same flags, same flowchart — which is what makes the
   artifacts safe to share between connections.

   The store is a mutex-protected hash table with an LRU bound: each
   hit stamps the entry with a monotonically increasing tick, and an
   insert past capacity evicts the stalest entry.  Builds run outside
   the lock, so a slow schedule never stalls unrelated requests; two
   racing builds of the same key waste one build and keep the first
   inserted value. *)

type artifact =
  | A_project of Psc.t
  | A_sched of Psc.scheduled
  | A_emit of string  (* generated C text *)
  | A_policy of Psc.Policy.table  (* tuned per-nest scheduling policies *)

type entry = { e_art : artifact; mutable e_tick : int }

type t = {
  c_capacity : int;
  c_table : (string, entry) Hashtbl.t;
  c_mutex : Mutex.t;
  mutable c_tick : int;
  c_hits : Psc.Metrics.counter;
  c_misses : Psc.Metrics.counter;
  c_evictions : Psc.Metrics.counter;
}

let create ?(capacity = 64) () =
  { c_capacity = max 1 capacity;
    c_table = Hashtbl.create 32;
    c_mutex = Mutex.create ();
    c_tick = 0;
    c_hits = Psc.Metrics.counter "server.cache.hits";
    c_misses = Psc.Metrics.counter "server.cache.misses";
    c_evictions = Psc.Metrics.counter "server.cache.evictions" }

(* Key constructors: one letter per artifact kind, then the content
   digest, then the discriminating context. *)

let digest src = Digest.to_hex (Digest.string src)

let project_key ~src = "P:" ^ digest src

let sched_key ~src ~module_ ~flags =
  Printf.sprintf "S:%s:%s:%s" (digest src)
    (match module_ with Some m -> m | None -> "")
    (Psc.Exec.flags_fingerprint flags)

let emit_key ~src ~module_ ~flags ~main =
  Printf.sprintf "C:%s:%s:%s:%s" (digest src)
    (match module_ with Some m -> m | None -> "")
    (Psc.Exec.flags_fingerprint flags)
    (if main then "main" else "mod")

(* Tuned policy tables additionally depend on the host that measured
   them: a table tuned on a 16-core box is advice, not ground truth, on
   a 2-core one, so it gets its own slot and the reader decides whether
   to trust it (see W121). *)
let policy_key ~src ~module_ ~flags ~host_cores =
  Printf.sprintf "T:%s:%s:%s:%d" (digest src)
    (match module_ with Some m -> m | None -> "")
    (Psc.Exec.flags_fingerprint flags)
    host_cores

let locked t f =
  Mutex.lock t.c_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.c_mutex) f

let evict_stalest t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, tick) when tick <= e.e_tick -> ()
      | _ -> victim := Some (k, e.e_tick))
    t.c_table;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove t.c_table k;
    Psc.Metrics.incr t.c_evictions
  | None -> ()

(* [find_or_build t key build] returns the artifact and whether it came
   from the store.  [build] may raise; nothing is inserted then. *)
let find_or_build t key build =
  let hit =
    locked t (fun () ->
        match Hashtbl.find_opt t.c_table key with
        | Some e ->
          t.c_tick <- t.c_tick + 1;
          e.e_tick <- t.c_tick;
          Psc.Metrics.incr t.c_hits;
          Some e.e_art
        | None ->
          Psc.Metrics.incr t.c_misses;
          None)
  in
  match hit with
  | Some art -> (art, true)
  | None ->
    let art = build () in
    locked t (fun () ->
        if not (Hashtbl.mem t.c_table key) then begin
          while Hashtbl.length t.c_table >= t.c_capacity do
            evict_stalest t
          done;
          t.c_tick <- t.c_tick + 1;
          Hashtbl.add t.c_table key { e_art = art; e_tick = t.c_tick }
        end);
    (art, false)

(* [peek t key] looks up without building and without touching the
   hit/miss counters: the caller treats absence as "no opinion", not a
   miss worth recording (Run probing for a tuned policy table). *)
let peek t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.c_table key with
      | Some e ->
        t.c_tick <- t.c_tick + 1;
        e.e_tick <- t.c_tick;
        Some e.e_art
      | None -> None)

type stats = { st_entries : int; st_hits : int; st_misses : int; st_evictions : int }

let stats t =
  locked t (fun () ->
      { st_entries = Hashtbl.length t.c_table;
        st_hits = Psc.Metrics.counter_value t.c_hits;
        st_misses = Psc.Metrics.counter_value t.c_misses;
        st_evictions = Psc.Metrics.counter_value t.c_evictions })
