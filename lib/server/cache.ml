(* Content-addressed artifact store for the compile service.

   Keys are built from the MD5 digest of the source text plus whatever
   narrows the artifact (module name, transformation-flag fingerprint),
   so two requests with the same source and flags share one schedule no
   matter how the client phrased them.  Scheduling is deterministic —
   same module, same flags, same flowchart — which is what makes the
   artifacts safe to share between connections.

   The store is lock-striped: the key's digest prefix picks one of N
   shards, each a mutex-protected hash table with its own LRU tick and
   capacity slice.  Concurrent requests for unrelated sources touch
   different shards and never contend, and eviction scans only the full
   shard (O(capacity/N)) instead of the whole store under one global
   lock.  Builds run outside any lock, so a slow schedule never stalls
   unrelated requests; two racing builds of the same key waste one
   build, count one miss, and both return the first-inserted value. *)

type artifact =
  | A_project of Psc.t
  | A_sched of Psc.scheduled
  | A_emit of string  (* generated C text *)
  | A_policy of Psc.Policy.table  (* tuned per-nest scheduling policies *)

type entry = { e_art : artifact; mutable e_tick : int }

type shard = {
  s_table : (string, entry) Hashtbl.t;
  s_mutex : Mutex.t;
  mutable s_tick : int;
}

type t = {
  c_capacity : int;  (* per shard *)
  c_shards : shard array;
  c_hits : Psc.Metrics.counter;
  c_misses : Psc.Metrics.counter;
  c_evictions : Psc.Metrics.counter;
}

let create ?(capacity = 64) ?(shards = 8) () =
  let n = max 1 shards in
  (* Ceiling split: N shards of ceil(capacity/N) hold at least
     [capacity] artifacts overall, never fewer. *)
  let per = max 1 ((max 1 capacity + n - 1) / n) in
  { c_capacity = per;
    c_shards =
      Array.init n (fun _ ->
          { s_table = Hashtbl.create 16;
            s_mutex = Mutex.create ();
            s_tick = 0 });
    c_hits = Psc.Metrics.counter "server.cache.hits";
    c_misses = Psc.Metrics.counter "server.cache.misses";
    c_evictions = Psc.Metrics.counter "server.cache.evictions" }

let shards t = Array.length t.c_shards

(* Key constructors: one letter per artifact kind, then the content
   digest, then the discriminating context. *)

let digest src = Digest.to_hex (Digest.string src)

let project_key ~src = "P:" ^ digest src

let sched_key ~src ~module_ ~flags =
  Printf.sprintf "S:%s:%s:%s" (digest src)
    (match module_ with Some m -> m | None -> "")
    (Psc.Exec.flags_fingerprint flags)

let emit_key ~src ~module_ ~flags ~main =
  Printf.sprintf "C:%s:%s:%s:%s" (digest src)
    (match module_ with Some m -> m | None -> "")
    (Psc.Exec.flags_fingerprint flags)
    (if main then "main" else "mod")

(* Tuned policy tables additionally depend on the host that measured
   them: a table tuned on a 16-core box is advice, not ground truth, on
   a 2-core one, so it gets its own slot and the reader decides whether
   to trust it (see W121). *)
let policy_key ~src ~module_ ~flags ~host_cores =
  Printf.sprintf "T:%s:%s:%s:%d" (digest src)
    (match module_ with Some m -> m | None -> "")
    (Psc.Exec.flags_fingerprint flags)
    host_cores

(* The two hex digits right after the "X:" kind prefix are the head of
   an MD5 digest — uniformly distributed, so they stripe keys evenly.
   Anything that doesn't look like a key falls back to a generic hash. *)
let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let shard_of t key =
  let h =
    if String.length key >= 4 && key.[1] = ':' then
      let a = hex_val key.[2] and b = hex_val key.[3] in
      if a >= 0 && b >= 0 then (a * 16) + b else Hashtbl.hash key
    else Hashtbl.hash key
  in
  t.c_shards.(h mod Array.length t.c_shards)

let locked sh f =
  Mutex.lock sh.s_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.s_mutex) f

let touch sh e =
  sh.s_tick <- sh.s_tick + 1;
  e.e_tick <- sh.s_tick

let evict_stalest t sh =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, tick) when tick <= e.e_tick -> ()
      | _ -> victim := Some (k, e.e_tick))
    sh.s_table;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove sh.s_table k;
    Psc.Metrics.incr t.c_evictions
  | None -> ()

(* [find_or_build t key build] returns the artifact and whether it came
   from the store.  The miss is counted at insert time, not lookup
   time: when two builds of one key race, the loser finds the winner's
   entry already inserted, returns *that* artifact (so identical
   concurrent requests observably converge on one value) and counts a
   hit — exactly one miss per key actually built.  [build] may raise;
   nothing is inserted or counted then. *)
let find_or_build t key build =
  let sh = shard_of t key in
  let hit =
    locked sh (fun () ->
        match Hashtbl.find_opt sh.s_table key with
        | Some e ->
          touch sh e;
          Psc.Metrics.incr t.c_hits;
          Some e.e_art
        | None -> None)
  in
  match hit with
  | Some art -> (art, true)
  | None ->
    let art = build () in
    locked sh (fun () ->
        match Hashtbl.find_opt sh.s_table key with
        | Some e ->
          (* Lost the insert race: the first-inserted artifact wins. *)
          touch sh e;
          Psc.Metrics.incr t.c_hits;
          (e.e_art, true)
        | None ->
          Psc.Metrics.incr t.c_misses;
          while Hashtbl.length sh.s_table >= t.c_capacity do
            evict_stalest t sh
          done;
          sh.s_tick <- sh.s_tick + 1;
          Hashtbl.add sh.s_table key { e_art = art; e_tick = sh.s_tick };
          (art, false))

(* [peek t key] looks up without building and without touching the
   hit/miss counters: the caller treats absence as "no opinion", not a
   miss worth recording (Run probing for a tuned policy table). *)
let peek t key =
  let sh = shard_of t key in
  locked sh (fun () ->
      match Hashtbl.find_opt sh.s_table key with
      | Some e ->
        touch sh e;
        Some e.e_art
      | None -> None)

type stats = { st_entries : int; st_hits : int; st_misses : int; st_evictions : int }

let stats t =
  let entries =
    Array.fold_left
      (fun acc sh -> acc + locked sh (fun () -> Hashtbl.length sh.s_table))
      0 t.c_shards
  in
  { st_entries = entries;
    st_hits = Psc.Metrics.counter_value t.c_hits;
    st_misses = Psc.Metrics.counter_value t.c_misses;
    st_evictions = Psc.Metrics.counter_value t.c_evictions }
