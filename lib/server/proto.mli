(** Wire protocol of the compile service.

    One request per line, one response per line, both JSON objects.
    Requests are parsed with the trace module's JSON reader; responses
    are rendered with the writer helpers below.  Real values cross the
    wire as ["%.17g"] strings, never as JSON numbers, so a client that
    parses them with [float_of_string] recovers the exact IEEE double
    the server computed — the differential fuzzer's server path depends
    on this round trip being bit-exact.

    The protocol is pipelined: a client may write any number of request
    lines before reading, and the server answers each exactly once —
    but not necessarily in arrival order, since requests from one
    connection are handled by concurrent workers.  The ["id"] member is
    the correlation handle: every response echoes the id of the request
    it answers, so a pipelining client matches responses by id, never
    by position. *)

type op = Compile | Schedule | Run | Emit_c | Lint | Tune | Stats | Shutdown

val op_name : op -> string
(** The wire name: ["compile"], ["schedule"], ["run"], ["emit-c"],
    ["lint"], ["tune"], ["stats"], ["shutdown"]. *)

val op_of_name : string -> op option

type source =
  | Inline of string     (** the ["source"] member: program text *)
  | From_file of string  (** the ["source_file"] member: a path the server reads *)

type request = {
  rq_id : string;  (** the ["id"] member re-rendered verbatim, default ["null"] *)
  rq_op : op;
  rq_source : source option;
  rq_module : string option;       (** module to schedule; [None] = the default *)
  rq_flags : Psc.Exec.sched_flags; (** the ["flags"] object; all default false *)
  rq_scalars : (string * int) list;(** integer inputs for [run] / [emit-c --main] *)
  rq_deadline_ms : int option;     (** per-request budget *)
  rq_main : bool;                  (** emit-c: also emit the main() harness *)
  rq_trace_id : string option;     (** the ["trace_id"] member, echoed in every reply *)
  rq_parent_span : string option;  (** client span id the server's request span is a child of *)
}

val parse_request : string -> (request, string * string) result
(** Parse one request line.  On error the first component is still the
    rendered id (when one could be recovered) so the E030 response can
    be correlated with the request that caused it. *)

val reject_fields : string -> string * string * string option
(** [(id, op, trace_id)] of a raw request line, for reject paths
    (overload shedding) that must correlate an answer without the cost
    or strictness of building a full request.  Unrecoverable members
    degrade to ["null"] / ["invalid"] / [None] rather than failing. *)

(** {2 JSON writer helpers}

    Values in the functions below are already-rendered JSON text; the
    field names passed to {!jobj} are escaped. *)

val jstr : string -> string
val jint : int -> string
val jbool : bool -> string
val jarr : string list -> string
val jobj : (string * string) list -> string

val output_json : string * Psc.Value.value -> string
(** One module output as a JSON object: scalars as
    [{name;kind:"scalar";elem;value}], arrays as
    [{name;kind:"array";elem;ty?;dims:[[lo,hi],...];values:[...]}] with
    the values in row-major declared-box order, each rendered as a
    string ({!scalar_text}). *)

val ok_response : id:string -> cached:bool -> (string * string) list -> string
(** [{"id":…,"ok":true,"cached":…,<fields>}]. *)

val error_response : id:string -> Psc.Diag.t list -> string
(** A failed request carrying the diagnostics array of the unified
    diagnostics engine, so clients see the same E0xx codes the CLI
    prints. *)

val error_message : id:string -> string -> string
(** A failed request with a bare ["error"] string (compile and runtime
    errors that carry no diagnostic object). *)

val with_trace_id : trace_id:string option -> string -> string
(** Stamp the request's trace context onto an already-rendered response
    line: with [Some tid] the object gains a leading ["trace_id"] member;
    with [None] the line is returned unchanged.  Runs as a post-pass so
    every reply shape — ok, diagnostics, deadline, E030 — echoes it. *)
