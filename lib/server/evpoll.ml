(* Readiness multiplexing for the compile service's event threads.

   A thin wrapper over poll(2) (see psc_poll_stubs.c).  Unix.select
   cannot watch descriptors numbered past FD_SETSIZE (1024 on Linux),
   and the full `bench serve` sweep holds 1024 client sockets at once,
   so the event loop polls instead.  The stub releases the OCaml
   runtime lock for the duration of the wait, so worker threads keep
   draining the request queue while an event thread sleeps.

   Results are reported by index into the watch array: the caller built
   that array this iteration and maps indices straight back to its
   connection records, with no fd-to-connection lookup. *)

type interest = { want_read : bool; want_write : bool }

type ready = { readable : bool; writable : bool; errored : bool }

external poll_stub : (Unix.file_descr * int) array -> int -> int array
  = "psc_poll_stub"

let poll (spec : (Unix.file_descr * interest) array) ~timeout_ms :
    (int * ready) list =
  let arr =
    Array.map
      (fun (fd, i) ->
        ( fd,
          (if i.want_read then 1 else 0) lor (if i.want_write then 2 else 0) ))
      spec
  in
  let revents = poll_stub arr timeout_ms in
  let out = ref [] in
  for i = Array.length revents - 1 downto 0 do
    let r = revents.(i) in
    if r <> 0 then
      out :=
        ( i,
          { readable = r land 1 <> 0;
            writable = r land 2 <> 0;
            errored = r land 4 <> 0 } )
        :: !out
  done;
  !out
