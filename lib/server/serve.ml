(* The compile service: a long-lived `psc serve` process answering
   newline-delimited JSON requests over a Unix-domain socket (or stdio
   for tests and one-shot scripting).

   Each connection gets a reader thread; actual request processing is
   bounded by a counting semaphore, and all requests share one
   work-stealing domain pool — [Pool.parallel_for] runs re-entrant
   callers inline, so concurrent DOALLs from different requests never
   deadlock on the pool.

   A request never kills the server: malformed JSON, unknown
   operations, compile errors, runtime traps and expired deadlines are
   all answered on the wire (the E03x codes come from the unified
   diagnostics engine).  SIGTERM or a shutdown request flips the
   draining flag — in-flight requests finish and are answered, new ones
   get E032. *)

type config = {
  cf_socket : string option;  (* None: serve stdin/stdout *)
  cf_workers : int;           (* concurrent request bound *)
  cf_pool : int;              (* domain pool size; 0 = sequential *)
  cf_cache : int;             (* artifact cache capacity *)
  cf_grace_ms : int;          (* drain: wait this long for clients to leave *)
}

let default_config =
  { cf_socket = None; cf_workers = 4; cf_pool = 0; cf_cache = 64;
    cf_grace_ms = 5000 }

type server = {
  sv_cache : Cache.t;
  sv_pool : Psc.Pool.t option;
  sv_workers : Semaphore.Counting.t;
  sv_draining : bool Atomic.t;
  sv_inflight_n : int Atomic.t;
  sv_connections : int Atomic.t;
  sv_inflight : Psc.Metrics.gauge;
  sv_requests : Psc.Metrics.counter;
  sv_deadline_trips : Psc.Metrics.counter;
}

let make_server cf =
  { sv_cache = Cache.create ~capacity:cf.cf_cache ();
    sv_pool = (if cf.cf_pool > 0 then Some (Psc.Pool.create cf.cf_pool) else None);
    sv_workers = Semaphore.Counting.make (max 1 cf.cf_workers);
    sv_draining = Atomic.make false;
    sv_inflight_n = Atomic.make 0;
    sv_connections = Atomic.make 0;
    sv_inflight = Psc.Metrics.gauge "server.inflight";
    sv_requests = Psc.Metrics.counter "server.requests";
    sv_deadline_trips = Psc.Metrics.counter "server.deadline.trips" }

(* ------------------------------------------------------------------ *)
(* Deadlines: cooperative checks between pipeline stages.  A request
   whose deadline expires is answered with E031; the stage that was
   running when the clock ran out completes normally. *)

exception Deadline

let deadline_of (rq : Proto.request) =
  match rq.Proto.rq_deadline_ms with
  | None -> None
  | Some ms -> Some (Psc.Metrics.now_ns () + (ms * 1_000_000))

let check_deadline = function
  | Some t when Psc.Metrics.now_ns () >= t -> raise Deadline
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Pipeline stages through the artifact cache *)

let request_source (rq : Proto.request) =
  match rq.Proto.rq_source with
  | None -> Psc.error "missing required field: source (or source_file)"
  | Some (Proto.Inline s) -> s
  | Some (Proto.From_file f) -> (
    try
      let ic = open_in_bin f in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error m -> Psc.error "cannot read source_file: %s" m)

let project sv ~deadline src =
  check_deadline deadline;
  match
    Cache.find_or_build sv.sv_cache (Cache.project_key ~src) (fun () ->
        Cache.A_project (Psc.load_string src))
  with
  | Cache.A_project t, hit -> (t, hit)
  | _ -> assert false

let scheduled sv ~deadline src (rq : Proto.request) =
  let t, _ = project sv ~deadline src in
  check_deadline deadline;
  let key =
    Cache.sched_key ~src ~module_:rq.Proto.rq_module ~flags:rq.Proto.rq_flags
  in
  match
    Cache.find_or_build sv.sv_cache key (fun () ->
        let em = Psc.the_module ?name:rq.Proto.rq_module t in
        let f = rq.Proto.rq_flags in
        Cache.A_sched
          (Psc.schedule ~sink:f.Psc.Exec.sf_sink ~fuse:f.Psc.Exec.sf_fuse
             ~trim:f.Psc.Exec.sf_trim ~collapse:f.Psc.Exec.sf_collapse em))
  with
  | Cache.A_sched sc, hit -> (t, sc, hit)
  | _ -> assert false

let emitted sv ~deadline src (rq : Proto.request) =
  let t, _ = project sv ~deadline src in
  check_deadline deadline;
  let key =
    Cache.emit_key ~src ~module_:rq.Proto.rq_module ~flags:rq.Proto.rq_flags
      ~main:rq.Proto.rq_main
  in
  match
    Cache.find_or_build sv.sv_cache key (fun () ->
        let f = rq.Proto.rq_flags in
        let sink = f.Psc.Exec.sf_sink and fuse = f.Psc.Exec.sf_fuse in
        let trim = f.Psc.Exec.sf_trim and collapse = f.Psc.Exec.sf_collapse in
        Cache.A_emit
          (if rq.Proto.rq_main then
             Psc.emit_c_main ?name:rq.Proto.rq_module ~sink ~fuse ~trim
               ~collapse ~scalars:rq.Proto.rq_scalars t
           else
             Psc.emit_c ?name:rq.Proto.rq_module ~sink ~fuse ~trim ~collapse t))
  with
  | Cache.A_emit c, hit -> (c, hit)
  | _ -> assert false

(* Tuned policy tables are measured once per (source, module, flags,
   host core count) and then served from the artifact cache like any
   other build product.  [Run] only *peeks*: absence of a table is not
   a miss, it just means the static model (or nothing) steers the
   nests. *)
let tuned sv ~deadline src (rq : Proto.request) =
  let t, _ = project sv ~deadline src in
  check_deadline deadline;
  let host_cores = Psc.Pool.recommended_size () in
  let key =
    Cache.policy_key ~src ~module_:rq.Proto.rq_module ~flags:rq.Proto.rq_flags
      ~host_cores
  in
  match
    Cache.find_or_build sv.sv_cache key (fun () ->
        let f = rq.Proto.rq_flags in
        let em = Psc.the_module ?name:rq.Proto.rq_module t in
        let inputs =
          Ps_fuzz.Diff.default_inputs em ~scalars:rq.Proto.rq_scalars
        in
        Cache.A_policy
          (Psc.tune ?name:rq.Proto.rq_module ~sink:f.Psc.Exec.sf_sink
             ~fuse:f.Psc.Exec.sf_fuse ~trim:f.Psc.Exec.sf_trim
             ~cores:host_cores t ~inputs ~env:rq.Proto.rq_scalars))
  with
  | Cache.A_policy tp, hit -> (tp, hit)
  | _ -> assert false

let cached_policy sv src (rq : Proto.request) =
  let host_cores = Psc.Pool.recommended_size () in
  let key =
    Cache.policy_key ~src ~module_:rq.Proto.rq_module ~flags:rq.Proto.rq_flags
      ~host_cores
  in
  match Cache.peek sv.sv_cache key with
  | Some (Cache.A_policy tp) ->
    if Psc.Policy.stale tp ~host_cores then None else Some tp
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Operations *)

let diag_response ~id code msg =
  Proto.error_response ~id
    [ Psc.Diag.diag code Ps_lang.Loc.dummy "%s" msg ]

let windows_json (sc : Psc.scheduled) =
  Proto.jarr
    (List.map
       (fun (w : Psc.Schedule.window) ->
         Proto.jobj
           [ ("data", Proto.jstr w.Psc.Schedule.w_data);
             ("dim", Proto.jint w.Psc.Schedule.w_dim);
             ("window", Proto.jint w.Psc.Schedule.w_size) ])
       sc.Psc.sc_windows)

let dispatch sv ~deadline (rq : Proto.request) : string =
  let id = rq.Proto.rq_id in
  match rq.Proto.rq_op with
  | Proto.Compile ->
    let src = request_source rq in
    let t, hit = project sv ~deadline src in
    Proto.ok_response ~id ~cached:hit
      [ ("modules", Proto.jarr (List.map Proto.jstr (Psc.modules t)));
        ("warnings", Proto.jint (List.length (Psc.warnings t))) ]
  | Proto.Schedule ->
    let src = request_source rq in
    let _, sc, hit = scheduled sv ~deadline src rq in
    Proto.ok_response ~id ~cached:hit
      [ ("flowchart", Proto.jstr (Psc.flowchart_string sc));
        ("windows", windows_json sc);
        ("merged", Proto.jint sc.Psc.sc_merged);
        ("trimmed", Proto.jint sc.Psc.sc_trimmed);
        ("collapsed", Proto.jint sc.Psc.sc_collapsed) ]
  | Proto.Run ->
    let src = request_source rq in
    let t, sc, hit = scheduled sv ~deadline src rq in
    check_deadline deadline;
    let em = sc.Psc.sc_module in
    let inputs = Ps_fuzz.Diff.default_inputs em ~scalars:rq.Proto.rq_scalars in
    (* A tuned policy table cached by a prior [tune] of the same
       (source, module, flags) steers this run's nests; its absence is
       not a miss.  The staleness guard is belt-and-braces — the cache
       key already pins the core count. *)
    let policy = cached_policy sv src rq in
    let opts =
      { Psc.Exec.default_opts with
        pool = sv.sv_pool;
        sched_flags = rq.Proto.rq_flags;
        policy }
    in
    let r =
      Psc.Exec.run ~opts ~flowchart:sc.Psc.sc_flowchart
        ~windows:sc.Psc.sc_windows ~prog:t.Psc.prog em ~inputs
    in
    let policy_field =
      match policy with
      | Some tp -> [ ("policy", Proto.jstr (Psc.Policy.table_summary tp)) ]
      | None -> []
    in
    Proto.ok_response ~id ~cached:hit
      ([ ("outputs", Proto.jarr (List.map Proto.output_json r.Psc.Exec.outputs));
         ("allocated",
          Proto.jobj
            (List.map
               (fun (n, w) -> (n, Proto.jint w))
               r.Psc.Exec.allocated)) ]
      @ policy_field)
  | Proto.Emit_c ->
    let src = request_source rq in
    let c, hit = emitted sv ~deadline src rq in
    Proto.ok_response ~id ~cached:hit [ ("c", Proto.jstr c) ]
  | Proto.Lint ->
    let src = request_source rq in
    check_deadline deadline;
    (* Lenient load: single-assignment errors become diagnostics in the
       answer rather than a failed request. *)
    let t = Psc.load_string_lenient src in
    let diags = Psc.lint t in
    Proto.ok_response ~id ~cached:false
      [ ("diagnostics", Psc.Diag.render Psc.Diag.Json diags);
        ("summary", Proto.jstr (Psc.Diag.summary diags)) ]
  | Proto.Tune ->
    let src = request_source rq in
    let tp, hit = tuned sv ~deadline src rq in
    Proto.ok_response ~id ~cached:hit
      [ ("policy", Psc.Policy.to_json tp);
        ("summary", Proto.jstr (Psc.Policy.table_summary tp)) ]
  | Proto.Stats ->
    let s = Cache.stats sv.sv_cache in
    Proto.ok_response ~id ~cached:false
      [ ("cache",
         Proto.jobj
           [ ("entries", Proto.jint s.Cache.st_entries);
             ("hits", Proto.jint s.Cache.st_hits);
             ("misses", Proto.jint s.Cache.st_misses);
             ("evictions", Proto.jint s.Cache.st_evictions) ]);
        ("inflight", Proto.jint (Atomic.get sv.sv_inflight_n));
        ("metrics", Psc.Metrics.render_json ()) ]
  | Proto.Shutdown ->
    Atomic.set sv.sv_draining true;
    Proto.ok_response ~id ~cached:false [ ("draining", Proto.jbool true) ]

(* Every error a request can produce, mapped to one answer line. *)
let answer sv ~deadline (rq : Proto.request) : string =
  let id = rq.Proto.rq_id in
  try dispatch sv ~deadline rq with
  | Deadline ->
    Psc.Metrics.incr sv.sv_deadline_trips;
    diag_response ~id Psc.Diag.Deadline_exceeded
      (Printf.sprintf "deadline of %d ms expired"
         (Option.value rq.Proto.rq_deadline_ms ~default:0))
  | Psc.Error m -> Proto.error_message ~id m
  | Psc.Exec.Runtime_error m -> Proto.error_message ~id ("runtime error: " ^ m)
  | Psc.Value.Bounds m ->
    Proto.error_message ~id ("subscript out of bounds: " ^ m)
  | Psc.Eval.Runtime_error m -> Proto.error_message ~id ("runtime error: " ^ m)

(* Handle one request line: parse, gate on draining, bound concurrency,
   time the answer.  Returns [None] for blank lines. *)
let handle_line sv (line : string) : string option =
  let line = String.trim line in
  if line = "" then None
  else begin
    Psc.Metrics.incr sv.sv_requests;
    match Proto.parse_request line with
    | Error (id, msg) ->
      Some (diag_response ~id Psc.Diag.Bad_request msg)
    | Ok rq ->
      let id = rq.Proto.rq_id in
      if
        Atomic.get sv.sv_draining
        && rq.Proto.rq_op <> Proto.Shutdown
        && rq.Proto.rq_op <> Proto.Stats
      then
        Some
          (diag_response ~id Psc.Diag.Server_draining
             "server is draining; request rejected")
      else begin
        let deadline = deadline_of rq in
        Semaphore.Counting.acquire sv.sv_workers;
        ignore (Atomic.fetch_and_add sv.sv_inflight_n 1);
        Psc.Metrics.set sv.sv_inflight (Atomic.get sv.sv_inflight_n);
        let t0 = Psc.Metrics.now_ns () in
        let finally () =
          ignore (Atomic.fetch_and_add sv.sv_inflight_n (-1));
          Psc.Metrics.set sv.sv_inflight (Atomic.get sv.sv_inflight_n);
          Semaphore.Counting.release sv.sv_workers;
          Psc.Metrics.observe
            (Psc.Metrics.histogram
               ("server.latency_ns." ^ Proto.op_name rq.Proto.rq_op))
            (Psc.Metrics.now_ns () - t0)
        in
        Fun.protect ~finally (fun () ->
            Some
              (Psc.Trace.with_span "request"
                 ~args:[ ("op", Proto.op_name rq.Proto.rq_op) ]
                 (fun () -> answer sv ~deadline rq)))
      end
  end

(* ------------------------------------------------------------------ *)
(* Transports *)

let serve_channel sv ic oc =
  let stop = ref false in
  while not !stop do
    match input_line ic with
    | exception End_of_file -> stop := true
    | line -> (
      match handle_line sv line with
      | None -> ()
      | Some resp -> (
        (* The reader vanishing mid-response (SIGPIPE is ignored, so
           the write raises instead) ends the connection, nothing
           more.  Close the channel here: its buffer still holds the
           undeliverable bytes, and a later flush — the Format
           at_exit one does not catch Sys_error — would raise again. *)
        try
          output_string oc resp;
          output_char oc '\n';
          flush oc
        with Sys_error _ ->
          stop := true;
          close_out_noerr oc))
  done

let serve_stdio sv =
  serve_channel sv stdin stdout;
  (* EOF on stdin also drains: nobody can talk to us any more. *)
  Atomic.set sv.sv_draining true

let client_thread sv fd =
  ignore (Atomic.fetch_and_add sv.sv_connections 1);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try serve_channel sv ic oc with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  ignore (Atomic.fetch_and_add sv.sv_connections (-1))

let serve_socket sv cf path =
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 64;
  let threads = ref [] in
  (* Accept with a poll timeout so the draining flag (set by SIGTERM or
     a shutdown request on any connection) is noticed promptly. *)
  while not (Atomic.get sv.sv_draining) do
    match Unix.select [ lfd ] [] [] 0.1 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept lfd with
      | fd, _ -> threads := Thread.create (client_thread sv) fd :: !threads
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  (* Drain: wait for in-flight requests (always) and connected clients
     (up to the grace period), so every accepted request is answered. *)
  let grace_until =
    Psc.Metrics.now_ns () + (cf.cf_grace_ms * 1_000_000)
  in
  let busy () =
    Atomic.get sv.sv_inflight_n > 0
    || (Atomic.get sv.sv_connections > 0
        && Psc.Metrics.now_ns () < grace_until)
  in
  while busy () do
    Thread.delay 0.02
  done;
  if Atomic.get sv.sv_connections = 0 then
    List.iter (fun t -> Thread.join t) !threads

let main cf =
  Psc.Metrics.set_enabled true;
  let sv = make_server cf in
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> Atomic.set sv.sv_draining true));
  (* A client vanishing mid-response must not kill the server. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Fun.protect
    ~finally:(fun () ->
      match sv.sv_pool with Some p -> Psc.Pool.shutdown p | None -> ())
    (fun () ->
      match cf.cf_socket with
      | None -> serve_stdio sv
      | Some path -> serve_socket sv cf path)
