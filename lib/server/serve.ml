(* The compile service: a long-lived `psc serve` process answering
   newline-delimited JSON requests over a Unix-domain socket (or stdio
   for tests and one-shot scripting).

   The socket transport is event-driven: a small fixed pool of event
   threads multiplexes all client sockets with poll(2) (Evpoll),
   framing request lines and feeding a *bounded* queue drained by a
   fixed pool of worker threads.  When the queue is full the server
   sheds load — the request is answered E033 immediately instead of
   being buffered unboundedly (stats and shutdown bypass the bound:
   they are cheap, and they are how operators observe and stop an
   overload).  Responses are staged in per-connection write buffers
   flushed by the event threads as sockets accept them, so one slow
   reader never stalls the loop, and connections are pipelined:
   multiple requests may be in flight per connection, with responses
   correlated by id rather than by order.

   A request never kills the server: malformed JSON, unknown
   operations, compile errors, runtime traps and expired deadlines are
   all answered on the wire (the E03x codes come from the unified
   diagnostics engine).  SIGTERM or a shutdown request flips the
   draining flag — in-flight requests finish and are answered, new ones
   get E032, and every service thread is joined before the domain pool
   is shut down. *)

type config = {
  cf_socket : string option;  (* None: serve stdin/stdout *)
  cf_workers : int;           (* worker threads = concurrent request bound *)
  cf_pool : int;              (* domain pool size; 0 = sequential *)
  cf_cache : int;             (* artifact cache capacity *)
  cf_shards : int;            (* artifact cache lock stripes *)
  cf_max_queue : int;         (* bounded request queue; past it, E033 *)
  cf_grace_ms : int;          (* drain: wait this long for clients to leave *)
  cf_access_log : string option;  (* one JSON line per request *)
  cf_slow_ms : int option;    (* capture span subtrees of slower requests *)
  cf_metrics_json : string option;  (* dump the registry on clean shutdown *)
}

let default_config =
  { cf_socket = None; cf_workers = 4; cf_pool = 0; cf_cache = 64;
    cf_shards = 8; cf_max_queue = 1024; cf_grace_ms = 5000;
    cf_access_log = None; cf_slow_ms = None; cf_metrics_json = None }

(* A captured slow request: enough to name the straggler (id, op, the
   client's trace id) and say where the time went (the span subtree
   recorded on the handling thread, folded to durations). *)
type slow_entry = {
  se_id : string;  (* already-rendered JSON, like rq_id *)
  se_op : string;
  se_trace_id : string option;
  se_total_us : int;
  se_queue_us : int;
  se_spans : (string * float) list;  (* (name, duration_us), begin order *)
}

let slow_capacity = 32

(* ------------------------------------------------------------------ *)
(* The bounded request queue.

   Event threads push framed lines, worker threads pop them; [active]
   counts items popped but not yet answered, so the drain logic can ask
   "is every admitted request finished?" ([idle]) without a separate
   in-flight gauge.  [try_push] refuses rather than blocks when the
   queue is full — refusal is what becomes an E033 on the wire. *)
module Bq = struct
  type 'a t = {
    items : 'a Queue.t;
    max : int;
    mu : Mutex.t;
    nonempty : Condition.t;
    mutable active : int;
    mutable stopped : bool;
  }

  let create max =
    { items = Queue.create ();
      max;
      mu = Mutex.create ();
      nonempty = Condition.create ();
      active = 0;
      stopped = false }

  let push_unlocked q x =
    Queue.push x q.items;
    Condition.signal q.nonempty

  let try_push q x =
    Mutex.protect q.mu (fun () ->
        if q.stopped || Queue.length q.items >= q.max then false
        else begin
          push_unlocked q x;
          true
        end)

  (* Past the bound, for the two ops that must survive an overload. *)
  let push_force q x =
    Mutex.protect q.mu (fun () ->
        if q.stopped then false
        else begin
          push_unlocked q x;
          true
        end)

  let rec pop_unlocked q =
    if not (Queue.is_empty q.items) then begin
      q.active <- q.active + 1;
      Some (Queue.pop q.items)
    end
    else if q.stopped then None
    else begin
      Condition.wait q.nonempty q.mu;
      pop_unlocked q
    end

  let pop q = Mutex.protect q.mu (fun () -> pop_unlocked q)

  let finished q = Mutex.protect q.mu (fun () -> q.active <- q.active - 1)

  let idle q =
    Mutex.protect q.mu (fun () -> Queue.is_empty q.items && q.active = 0)

  let depth q = Mutex.protect q.mu (fun () -> Queue.length q.items)

  let stop q =
    Mutex.protect q.mu (fun () ->
        q.stopped <- true;
        Condition.broadcast q.nonempty)
end

type server = {
  sv_cf : config;
  sv_cache : Cache.t;
  sv_pool : Psc.Pool.t option;
  sv_workers : Semaphore.Counting.t;
  sv_queue : work Bq.t;
  sv_draining : bool Atomic.t;
  sv_inflight_n : int Atomic.t;
  sv_inflight_peak : int Atomic.t;
  sv_connections : int Atomic.t;
  sv_start_ns : int;
  sv_access : (out_channel * Mutex.t) option;
  sv_slow : slow_entry list ref;  (* most recent first, <= slow_capacity *)
  sv_slow_mu : Mutex.t;
  sv_inflight : Psc.Metrics.gauge;
  sv_requests : Psc.Metrics.counter;
  sv_deadline_trips : Psc.Metrics.counter;
  sv_shed : Psc.Metrics.counter;
  (* Quantile sketches: handler latency per op, end-to-end latency
     (queue wait included) and queue wait across all ops.  Held here as
     well as in the registry so the stats op can enumerate them. *)
  sv_lat_ops : (string * Psc.Metrics.sketch) list;
  sv_lat_all : Psc.Metrics.sketch;
  sv_queue_lat : Psc.Metrics.sketch;
}

(* One admitted request: the connection to answer on, the raw line, and
   when the event thread framed it (so queue wait is measured from
   admission, not from when a worker got around to parsing). *)
and work = {
  wk_conn : conn;
  wk_line : string;
  wk_arrival : int;  (* ns *)
}

(* One client socket, owned by exactly one event thread.  All fd I/O
   happens on that thread; workers only append to [cn_out] (under
   [cn_mu]) and wake the owner.  [cn_rbuf]/[cn_wpend]/[cn_woff] are
   event-thread-private. *)
and conn = {
  cn_fd : Unix.file_descr;
  cn_mu : Mutex.t;
  cn_out : Buffer.t;         (* responses staged by workers *)
  mutable cn_closed : bool;  (* set under cn_mu; fd closed by the owner *)
  cn_rbuf : Buffer.t;        (* partial input line accumulator *)
  mutable cn_wpend : string; (* in-progress write chunk *)
  mutable cn_woff : int;
  cn_wake : unit -> unit;    (* wake the owning event thread *)
}

let all_ops =
  [ Proto.Compile; Proto.Schedule; Proto.Run; Proto.Emit_c; Proto.Lint;
    Proto.Tune; Proto.Stats; Proto.Shutdown ]

let make_server cf =
  { sv_cf = cf;
    sv_cache = Cache.create ~capacity:cf.cf_cache ~shards:cf.cf_shards ();
    sv_pool = (if cf.cf_pool > 0 then Some (Psc.Pool.create cf.cf_pool) else None);
    sv_workers = Semaphore.Counting.make (max 1 cf.cf_workers);
    sv_queue = Bq.create (max 1 cf.cf_max_queue);
    sv_draining = Atomic.make false;
    sv_inflight_n = Atomic.make 0;
    sv_inflight_peak = Atomic.make 0;
    sv_connections = Atomic.make 0;
    sv_start_ns = Psc.Metrics.now_ns ();
    sv_access =
      (match cf.cf_access_log with
       | None -> None
       | Some path -> Some (open_out path, Mutex.create ()));
    sv_slow = ref [];
    sv_slow_mu = Mutex.create ();
    sv_inflight = Psc.Metrics.gauge "server.inflight";
    sv_requests = Psc.Metrics.counter "server.requests";
    sv_deadline_trips = Psc.Metrics.counter "server.deadline.trips";
    sv_shed = Psc.Metrics.counter "server.shed";
    sv_lat_ops =
      List.map
        (fun op ->
          let n = Proto.op_name op in
          (n, Psc.Metrics.sketch ("server.latency_ns." ^ n)))
        all_ops;
    sv_lat_all = Psc.Metrics.sketch "server.latency_ns.all";
    sv_queue_lat = Psc.Metrics.sketch "server.queue_ns" }

let rec update_peak a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then update_peak a v

(* ------------------------------------------------------------------ *)
(* Deadlines: cooperative checks between pipeline stages.  A request
   whose deadline expires is answered with E031; the stage that was
   running when the clock ran out completes normally. *)

exception Deadline

let deadline_of (rq : Proto.request) =
  match rq.Proto.rq_deadline_ms with
  | None -> None
  | Some ms -> Some (Psc.Metrics.now_ns () + (ms * 1_000_000))

let check_deadline = function
  | Some t when Psc.Metrics.now_ns () >= t -> raise Deadline
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Pipeline stages through the artifact cache *)

(* Facts about one request gathered on the way through dispatch, for
   the access log: whether the primary artifact came from the cache,
   the source digest, and the error code of a failed answer. *)
type req_info = {
  mutable ri_cached : bool;
  mutable ri_digest : string option;
  mutable ri_error : string option;
}

let fresh_info () = { ri_cached = false; ri_digest = None; ri_error = None }

let request_source info (rq : Proto.request) =
  let src =
    match rq.Proto.rq_source with
    | None -> Psc.error "missing required field: source (or source_file)"
    | Some (Proto.Inline s) -> s
    | Some (Proto.From_file f) -> (
      try
        let ic = open_in_bin f in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      with Sys_error m -> Psc.error "cannot read source_file: %s" m)
  in
  info.ri_digest <- Some (Cache.digest src);
  src

let project sv ~deadline src =
  check_deadline deadline;
  match
    Cache.find_or_build sv.sv_cache (Cache.project_key ~src) (fun () ->
        Cache.A_project (Psc.load_string src))
  with
  | Cache.A_project t, hit -> (t, hit)
  | _ -> assert false

let scheduled sv ~deadline src (rq : Proto.request) =
  let t, _ = project sv ~deadline src in
  check_deadline deadline;
  let key =
    Cache.sched_key ~src ~module_:rq.Proto.rq_module ~flags:rq.Proto.rq_flags
  in
  match
    Cache.find_or_build sv.sv_cache key (fun () ->
        let em = Psc.the_module ?name:rq.Proto.rq_module t in
        let f = rq.Proto.rq_flags in
        Cache.A_sched
          (Psc.schedule ~sink:f.Psc.Exec.sf_sink ~fuse:f.Psc.Exec.sf_fuse
             ~trim:f.Psc.Exec.sf_trim ~collapse:f.Psc.Exec.sf_collapse em))
  with
  | Cache.A_sched sc, hit -> (t, sc, hit)
  | _ -> assert false

let emitted sv ~deadline src (rq : Proto.request) =
  let t, _ = project sv ~deadline src in
  check_deadline deadline;
  let key =
    Cache.emit_key ~src ~module_:rq.Proto.rq_module ~flags:rq.Proto.rq_flags
      ~main:rq.Proto.rq_main
  in
  match
    Cache.find_or_build sv.sv_cache key (fun () ->
        let f = rq.Proto.rq_flags in
        let sink = f.Psc.Exec.sf_sink and fuse = f.Psc.Exec.sf_fuse in
        let trim = f.Psc.Exec.sf_trim and collapse = f.Psc.Exec.sf_collapse in
        Cache.A_emit
          (if rq.Proto.rq_main then
             Psc.emit_c_main ?name:rq.Proto.rq_module ~sink ~fuse ~trim
               ~collapse ~scalars:rq.Proto.rq_scalars t
           else
             Psc.emit_c ?name:rq.Proto.rq_module ~sink ~fuse ~trim ~collapse t))
  with
  | Cache.A_emit c, hit -> (c, hit)
  | _ -> assert false

(* Tuned policy tables are measured once per (source, module, flags,
   host core count) and then served from the artifact cache like any
   other build product.  [Run] only *peeks*: absence of a table is not
   a miss, it just means the static model (or nothing) steers the
   nests. *)
let tuned sv ~deadline src (rq : Proto.request) =
  let t, _ = project sv ~deadline src in
  check_deadline deadline;
  let host_cores = Psc.Pool.recommended_size () in
  let key =
    Cache.policy_key ~src ~module_:rq.Proto.rq_module ~flags:rq.Proto.rq_flags
      ~host_cores
  in
  match
    Cache.find_or_build sv.sv_cache key (fun () ->
        let f = rq.Proto.rq_flags in
        let em = Psc.the_module ?name:rq.Proto.rq_module t in
        let inputs =
          Ps_fuzz.Diff.default_inputs em ~scalars:rq.Proto.rq_scalars
        in
        Cache.A_policy
          (Psc.tune ?name:rq.Proto.rq_module ~sink:f.Psc.Exec.sf_sink
             ~fuse:f.Psc.Exec.sf_fuse ~trim:f.Psc.Exec.sf_trim
             ~cores:host_cores t ~inputs ~env:rq.Proto.rq_scalars))
  with
  | Cache.A_policy tp, hit -> (tp, hit)
  | _ -> assert false

let cached_policy sv src (rq : Proto.request) =
  let host_cores = Psc.Pool.recommended_size () in
  let key =
    Cache.policy_key ~src ~module_:rq.Proto.rq_module ~flags:rq.Proto.rq_flags
      ~host_cores
  in
  match Cache.peek sv.sv_cache key with
  | Some (Cache.A_policy tp) ->
    if Psc.Policy.stale tp ~host_cores then None else Some tp
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Operations *)

let diag_response ~id code msg =
  Proto.error_response ~id
    [ Psc.Diag.diag code Ps_lang.Loc.dummy "%s" msg ]

let windows_json (sc : Psc.scheduled) =
  Proto.jarr
    (List.map
       (fun (w : Psc.Schedule.window) ->
         Proto.jobj
           [ ("data", Proto.jstr w.Psc.Schedule.w_data);
             ("dim", Proto.jint w.Psc.Schedule.w_dim);
             ("window", Proto.jint w.Psc.Schedule.w_size) ])
       sc.Psc.sc_windows)

let quantiles_json q =
  let s = Psc.Metrics.sk_quantiles q in
  Proto.jobj
    [ ("count", Proto.jint s.Psc.Metrics.qs_count);
      ("p50", Proto.jint s.Psc.Metrics.qs_p50);
      ("p90", Proto.jint s.Psc.Metrics.qs_p90);
      ("p99", Proto.jint s.Psc.Metrics.qs_p99);
      ("max", Proto.jint s.Psc.Metrics.qs_max) ]

let slow_json (e : slow_entry) =
  Proto.jobj
    ([ ("id", e.se_id); ("op", Proto.jstr e.se_op) ]
    @ (match e.se_trace_id with
       | Some t -> [ ("trace_id", Proto.jstr t) ]
       | None -> [])
    @ [ ("total_us", Proto.jint e.se_total_us);
        ("queue_us", Proto.jint e.se_queue_us);
        ("spans",
         Proto.jarr
           (List.map
              (fun (n, us) ->
                Proto.jobj
                  [ ("name", Proto.jstr n);
                    ("us", Printf.sprintf "%.1f" us) ])
              e.se_spans)) ])

let dispatch sv ~deadline ~info (rq : Proto.request) : string =
  let id = rq.Proto.rq_id in
  match rq.Proto.rq_op with
  | Proto.Compile ->
    let src = request_source info rq in
    let t, hit = project sv ~deadline src in
    info.ri_cached <- hit;
    Proto.ok_response ~id ~cached:hit
      [ ("modules", Proto.jarr (List.map Proto.jstr (Psc.modules t)));
        ("warnings", Proto.jint (List.length (Psc.warnings t))) ]
  | Proto.Schedule ->
    let src = request_source info rq in
    let _, sc, hit = scheduled sv ~deadline src rq in
    info.ri_cached <- hit;
    Proto.ok_response ~id ~cached:hit
      [ ("flowchart", Proto.jstr (Psc.flowchart_string sc));
        ("windows", windows_json sc);
        ("merged", Proto.jint sc.Psc.sc_merged);
        ("trimmed", Proto.jint sc.Psc.sc_trimmed);
        ("collapsed", Proto.jint sc.Psc.sc_collapsed) ]
  | Proto.Run ->
    let src = request_source info rq in
    let t, sc, hit = scheduled sv ~deadline src rq in
    info.ri_cached <- hit;
    check_deadline deadline;
    let em = sc.Psc.sc_module in
    let inputs = Ps_fuzz.Diff.default_inputs em ~scalars:rq.Proto.rq_scalars in
    (* A tuned policy table cached by a prior [tune] of the same
       (source, module, flags) steers this run's nests; its absence is
       not a miss.  The staleness guard is belt-and-braces — the cache
       key already pins the core count. *)
    let policy = cached_policy sv src rq in
    let opts =
      { Psc.Exec.default_opts with
        pool = sv.sv_pool;
        sched_flags = rq.Proto.rq_flags;
        policy }
    in
    let r =
      Psc.Exec.run ~opts ~flowchart:sc.Psc.sc_flowchart
        ~windows:sc.Psc.sc_windows ~prog:t.Psc.prog em ~inputs
    in
    let policy_field =
      match policy with
      | Some tp -> [ ("policy", Proto.jstr (Psc.Policy.table_summary tp)) ]
      | None -> []
    in
    Proto.ok_response ~id ~cached:hit
      ([ ("outputs", Proto.jarr (List.map Proto.output_json r.Psc.Exec.outputs));
         ("allocated",
          Proto.jobj
            (List.map
               (fun (n, w) -> (n, Proto.jint w))
               r.Psc.Exec.allocated)) ]
      @ policy_field)
  | Proto.Emit_c ->
    let src = request_source info rq in
    let c, hit = emitted sv ~deadline src rq in
    info.ri_cached <- hit;
    Proto.ok_response ~id ~cached:hit [ ("c", Proto.jstr c) ]
  | Proto.Lint ->
    let src = request_source info rq in
    check_deadline deadline;
    (* Lenient load: single-assignment errors become diagnostics in the
       answer rather than a failed request. *)
    let t = Psc.load_string_lenient src in
    let diags = Psc.lint t in
    Proto.ok_response ~id ~cached:false
      [ ("diagnostics", Psc.Diag.render Psc.Diag.Json diags);
        ("summary", Proto.jstr (Psc.Diag.summary diags)) ]
  | Proto.Tune ->
    let src = request_source info rq in
    let tp, hit = tuned sv ~deadline src rq in
    info.ri_cached <- hit;
    Proto.ok_response ~id ~cached:hit
      [ ("policy", Psc.Policy.to_json tp);
        ("summary", Proto.jstr (Psc.Policy.table_summary tp)) ]
  | Proto.Stats ->
    let s = Cache.stats sv.sv_cache in
    let slow = Mutex.protect sv.sv_slow_mu (fun () -> !(sv.sv_slow)) in
    Proto.ok_response ~id ~cached:false
      [ ("cache",
         Proto.jobj
           [ ("entries", Proto.jint s.Cache.st_entries);
             ("shards", Proto.jint (Cache.shards sv.sv_cache));
             ("hits", Proto.jint s.Cache.st_hits);
             ("misses", Proto.jint s.Cache.st_misses);
             ("evictions", Proto.jint s.Cache.st_evictions) ]);
        ("inflight", Proto.jint (Atomic.get sv.sv_inflight_n));
        ("inflight_peak", Proto.jint (Atomic.get sv.sv_inflight_peak));
        ("connections", Proto.jint (Atomic.get sv.sv_connections));
        ("queue_depth", Proto.jint (Bq.depth sv.sv_queue));
        ("queue_max", Proto.jint sv.sv_queue.Bq.max);
        ("shed", Proto.jint (Psc.Metrics.counter_value sv.sv_shed));
        ("uptime_ms",
         Proto.jint ((Psc.Metrics.now_ns () - sv.sv_start_ns) / 1_000_000));
        ("latency_ns",
         Proto.jobj
           (("all", quantiles_json sv.sv_lat_all)
            :: ("queue", quantiles_json sv.sv_queue_lat)
            :: List.map (fun (n, q) -> (n, quantiles_json q)) sv.sv_lat_ops));
        ("slow", Proto.jarr (List.rev_map slow_json slow));
        ("metrics", Psc.Metrics.render_json ()) ]
  | Proto.Shutdown ->
    Atomic.set sv.sv_draining true;
    Proto.ok_response ~id ~cached:false [ ("draining", Proto.jbool true) ]

(* Every error a request can produce, mapped to one answer line (the
   access log sees the same classification through [info.ri_error]). *)
let answer sv ~deadline ~info (rq : Proto.request) : string =
  let id = rq.Proto.rq_id in
  let fail code m =
    info.ri_error <- Some code;
    Proto.error_message ~id m
  in
  try dispatch sv ~deadline ~info rq with
  | Deadline ->
    Psc.Metrics.incr sv.sv_deadline_trips;
    info.ri_error <- Some "E031";
    diag_response ~id Psc.Diag.Deadline_exceeded
      (Printf.sprintf "deadline of %d ms expired"
         (Option.value rq.Proto.rq_deadline_ms ~default:0))
  | Psc.Error m -> fail "error" m
  | Psc.Exec.Runtime_error m -> fail "error" ("runtime error: " ^ m)
  | Psc.Value.Bounds m -> fail "error" ("subscript out of bounds: " ^ m)
  | Psc.Eval.Runtime_error m -> fail "error" ("runtime error: " ^ m)

(* One JSON line per request — including rejects, which log with zeroed
   timings.  The channel mutex keeps concurrent connection threads'
   lines whole. *)
let log_access sv ~id ~op ~trace_id ~(info : req_info) ~queue_ns ~handler_ns
    ~total_ns ~bytes ~deadline_margin_us =
  match sv.sv_access with
  | None -> ()
  | Some (oc, mu) ->
    let line =
      Proto.jobj
        ([ ("ts_us",
            Printf.sprintf "%.0f" (Unix.gettimeofday () *. 1e6));
           ("id", id);
           ("op", Proto.jstr op) ]
        @ (match trace_id with
           | Some t -> [ ("trace_id", Proto.jstr t) ]
           | None -> [])
        @ (match info.ri_digest with
           | Some d -> [ ("digest", Proto.jstr d) ]
           | None -> [])
        @ [ ("cached", Proto.jbool info.ri_cached);
            ("queue_us", Proto.jint (queue_ns / 1000));
            ("handler_us", Proto.jint (handler_ns / 1000));
            ("total_us", Proto.jint (total_ns / 1000));
            ("bytes", Proto.jint bytes) ]
        @ (match deadline_margin_us with
           | Some m -> [ ("deadline_margin_us", Proto.jint m) ]
           | None -> [])
        @ (match info.ri_error with
           | Some e -> [ ("error", Proto.jstr e) ]
           | None -> [])
        @ [ ("ok", Proto.jbool (info.ri_error = None)) ])
    in
    Mutex.protect mu (fun () ->
        output_string oc line;
        output_char oc '\n';
        flush oc)

let push_slow sv e =
  Mutex.protect sv.sv_slow_mu (fun () ->
      let keep =
        if List.length !(sv.sv_slow) >= slow_capacity then
          List.filteri (fun i _ -> i < slow_capacity - 1) !(sv.sv_slow)
        else !(sv.sv_slow)
      in
      sv.sv_slow := e :: keep)

(* Handle one request line: parse, gate on draining, bound concurrency,
   time the answer (queue wait and handler time separately), feed the
   latency sketches and the access log, capture slow span subtrees, and
   stamp the client's trace context on the reply.  Returns [None] for
   blank lines.  [arrival_ns] is when the transport framed the line —
   for queued socket requests that predates the worker pickup, so
   queue_ns measures real queue wait. *)
let handle_line ?arrival_ns sv (line : string) : string option =
  let line = String.trim line in
  if line = "" then None
  else begin
    Psc.Metrics.incr sv.sv_requests;
    let t_arrival =
      match arrival_ns with Some t -> t | None -> Psc.Metrics.now_ns ()
    in
    let reject ~id ~op ~trace_id ~error resp =
      let resp = Proto.with_trace_id ~trace_id resp in
      let info = fresh_info () in
      info.ri_error <- Some error;
      log_access sv ~id ~op ~trace_id ~info ~queue_ns:0 ~handler_ns:0
        ~total_ns:(Psc.Metrics.now_ns () - t_arrival)
        ~bytes:(String.length resp) ~deadline_margin_us:None;
      Some resp
    in
    match Proto.parse_request line with
    | Error (id, msg) ->
      reject ~id ~op:"invalid" ~trace_id:None ~error:"E030"
        (diag_response ~id Psc.Diag.Bad_request msg)
    | Ok rq ->
      let id = rq.Proto.rq_id in
      let op = Proto.op_name rq.Proto.rq_op in
      let trace_id = rq.Proto.rq_trace_id in
      if
        Atomic.get sv.sv_draining
        && rq.Proto.rq_op <> Proto.Shutdown
        && rq.Proto.rq_op <> Proto.Stats
      then
        reject ~id ~op ~trace_id ~error:"E032"
          (diag_response ~id Psc.Diag.Server_draining
             "server is draining; request rejected")
      else begin
        let deadline = deadline_of rq in
        let info = fresh_info () in
        Semaphore.Counting.acquire sv.sv_workers;
        let t_start = Psc.Metrics.now_ns () in
        let n = Atomic.fetch_and_add sv.sv_inflight_n 1 + 1 in
        update_peak sv.sv_inflight_peak n;
        Psc.Metrics.set sv.sv_inflight (Atomic.get sv.sv_inflight_n);
        let finally () =
          ignore (Atomic.fetch_and_add sv.sv_inflight_n (-1));
          Psc.Metrics.set sv.sv_inflight (Atomic.get sv.sv_inflight_n);
          Semaphore.Counting.release sv.sv_workers
        in
        Fun.protect ~finally (fun () ->
            let run_answer () =
              let span_args =
                [ ("op", op); ("sid", Psc.Trace.fresh_span_id ()) ]
                @ (match trace_id with
                   | Some t -> [ ("trace_id", t) ]
                   | None -> [])
                @ (match rq.Proto.rq_parent_span with
                   | Some p -> [ ("parent", p) ]
                   | None -> [])
              in
              Psc.Trace.with_span "request" ~args:span_args (fun () ->
                  answer sv ~deadline ~info rq)
            in
            let resp, spans =
              (* [collect] flips the global not-off switch, so only pay
                 for it when slow-capture is on. *)
              match sv.sv_cf.cf_slow_ms with
              | None -> (run_answer (), [])
              | Some _ -> Psc.Trace.collect run_answer
            in
            let resp = Proto.with_trace_id ~trace_id resp in
            let t_end = Psc.Metrics.now_ns () in
            let queue_ns = t_start - t_arrival in
            let handler_ns = t_end - t_start in
            let total_ns = t_end - t_arrival in
            (match List.assoc_opt op sv.sv_lat_ops with
             | Some q -> Psc.Metrics.sk_observe q handler_ns
             | None -> ());
            Psc.Metrics.sk_observe sv.sv_lat_all total_ns;
            Psc.Metrics.sk_observe sv.sv_queue_lat queue_ns;
            (match sv.sv_cf.cf_slow_ms with
             | Some thresh when total_ns >= thresh * 1_000_000 ->
               push_slow sv
                 { se_id = id;
                   se_op = op;
                   se_trace_id = trace_id;
                   se_total_us = total_ns / 1000;
                   se_queue_us = queue_ns / 1000;
                   se_spans = Psc.Trace.span_durations spans }
             | _ -> ());
            log_access sv ~id ~op ~trace_id ~info ~queue_ns ~handler_ns
              ~total_ns ~bytes:(String.length resp)
              ~deadline_margin_us:
                (Option.map (fun d -> (d - t_end) / 1000) deadline);
            Some resp)
      end
  end

(* ------------------------------------------------------------------ *)
(* The stdio transport: one synchronous request at a time, for tests
   and one-shot scripting.  No queue, no shedding — a pipe has exactly
   one client, and EOF is its hangup. *)

let serve_channel sv ic oc =
  let stop = ref false in
  while not !stop do
    match input_line ic with
    | exception End_of_file -> stop := true
    | line -> (
      match handle_line sv line with
      | None -> ()
      | Some resp -> (
        (* The reader vanishing mid-response (SIGPIPE is ignored, so
           the write raises instead) ends the connection, nothing
           more.  Close the channel here: its buffer still holds the
           undeliverable bytes, and a later flush — the Format
           at_exit one does not catch Sys_error — would raise again. *)
        try
          output_string oc resp;
          output_char oc '\n';
          flush oc
        with Sys_error _ ->
          stop := true;
          close_out_noerr oc))
  done

let serve_stdio sv =
  serve_channel sv stdin stdout;
  (* EOF on stdin also drains: nobody can talk to us any more. *)
  Atomic.set sv.sv_draining true

(* ------------------------------------------------------------------ *)
(* The socket transport: event threads + bounded queue + workers. *)

(* An event thread: owns a subset of the connections, multiplexed with
   poll(2).  The self-pipe is its doorbell — workers ring it after
   staging a response, the accept loop after assigning a connection.
   [ev_wake_flag] coalesces rings so the pipe never fills. *)
type ev = {
  ev_wake_r : Unix.file_descr;
  ev_wake_w : Unix.file_descr;
  ev_wake_flag : bool Atomic.t;
  ev_incoming : Unix.file_descr Queue.t;  (* accepted, not yet adopted *)
  ev_inc_mu : Mutex.t;
  mutable ev_conns : conn list;  (* owned by this thread only *)
  ev_scratch : Bytes.t;          (* read buffer, thread-private *)
}

let make_ev () =
  let r, w = Unix.pipe () in
  Unix.set_nonblock r;
  Unix.set_nonblock w;
  { ev_wake_r = r;
    ev_wake_w = w;
    ev_wake_flag = Atomic.make false;
    ev_incoming = Queue.create ();
    ev_inc_mu = Mutex.create ();
    ev_conns = [];
    ev_scratch = Bytes.create 65536 }

let wake_byte = Bytes.make 1 '!'

let ev_wake ev =
  if Atomic.compare_and_set ev.ev_wake_flag false true then
    try ignore (Unix.write ev.ev_wake_w wake_byte 0 1)
    with Unix.Unix_error _ -> ()

let conn_closed c = Mutex.protect c.cn_mu (fun () -> c.cn_closed)

let close_conn sv c =
  let fresh =
    Mutex.protect c.cn_mu (fun () ->
        if c.cn_closed then false
        else begin
          c.cn_closed <- true;
          true
        end)
  in
  if fresh then begin
    (try Unix.close c.cn_fd with Unix.Unix_error _ -> ());
    ignore (Atomic.fetch_and_add sv.sv_connections (-1))
  end

(* Stage a response on the connection's write buffer and ring the
   owner's doorbell.  Responses for a connection that closed while its
   request was in flight are dropped — there is nobody to read them. *)
let conn_send c resp =
  let staged =
    Mutex.protect c.cn_mu (fun () ->
        if c.cn_closed then false
        else begin
          Buffer.add_string c.cn_out resp;
          Buffer.add_char c.cn_out '\n';
          true
        end)
  in
  if staged then c.cn_wake ()

let conn_pending c =
  c.cn_woff < String.length c.cn_wpend
  || Mutex.protect c.cn_mu (fun () -> Buffer.length c.cn_out > 0)

(* Flush as much staged output as the socket accepts right now.  The
   in-progress chunk is event-thread-private, so a partial write picks
   up exactly where it left off; workers keep staging into [cn_out]
   meanwhile without blocking on the socket. *)
let conn_flush sv c =
  if c.cn_woff >= String.length c.cn_wpend then begin
    let chunk =
      Mutex.protect c.cn_mu (fun () ->
          if Buffer.length c.cn_out = 0 then ""
          else begin
            let s = Buffer.contents c.cn_out in
            Buffer.clear c.cn_out;
            s
          end)
    in
    c.cn_wpend <- chunk;
    c.cn_woff <- 0
  end;
  let len = String.length c.cn_wpend - c.cn_woff in
  if len > 0 then
    match Unix.write_substring c.cn_fd c.cn_wpend c.cn_woff len with
    | n -> c.cn_woff <- c.cn_woff + n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn sv c

(* Overload shedding: the bounded queue refused the line, so answer
   E033 right here on the event thread — correlated by id, logged, and
   counted — instead of buffering unboundedly or hanging the client. *)
let shed sv c line =
  Psc.Metrics.incr sv.sv_requests;
  Psc.Metrics.incr sv.sv_shed;
  let id, op, trace_id = Proto.reject_fields line in
  let resp =
    Proto.with_trace_id ~trace_id
      (diag_response ~id Psc.Diag.Server_overloaded
         (Printf.sprintf "server overloaded: request queue (max %d) is full"
            sv.sv_queue.Bq.max))
  in
  let info = fresh_info () in
  info.ri_error <- Some "E033";
  log_access sv ~id ~op ~trace_id ~info ~queue_ns:0 ~handler_ns:0 ~total_ns:0
    ~bytes:(String.length resp) ~deadline_margin_us:None;
  conn_send c resp

(* Admit one framed line: bounded push, with an escape hatch for the
   two ops that must survive an overload — stats (how operators see it)
   and shutdown (how they stop it) are cheap and bypass the bound. *)
let admit sv c line =
  if String.trim line <> "" then begin
    let wk = { wk_conn = c; wk_line = line; wk_arrival = Psc.Metrics.now_ns () } in
    if not (Bq.try_push sv.sv_queue wk) then begin
      let _, op, _ = Proto.reject_fields line in
      if
        (op = "stats" || op = "shutdown")
        && Bq.push_force sv.sv_queue wk
      then ()
      else shed sv c line
    end
  end

(* Read whatever the socket has, frame complete lines off the front of
   the accumulator and admit each.  One read per readiness report keeps
   a flooding client from starving its neighbours; poll is level
   triggered, so leftover bytes re-report immediately. *)
let conn_read sv ev c =
  match Unix.read c.cn_fd ev.ev_scratch 0 (Bytes.length ev.ev_scratch) with
  | 0 -> close_conn sv c
  | n ->
    Buffer.add_subbytes c.cn_rbuf ev.ev_scratch 0 n;
    let s = Buffer.contents c.cn_rbuf in
    (match String.rindex_opt s '\n' with
     | None -> ()
     | Some last ->
       Buffer.clear c.cn_rbuf;
       Buffer.add_substring c.cn_rbuf s (last + 1)
         (String.length s - last - 1);
       List.iter
         (fun line -> admit sv c line)
         (String.split_on_char '\n' (String.sub s 0 last)))
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn sv c

let drain_wake_pipe ev =
  Atomic.set ev.ev_wake_flag false;
  let rec go () =
    match Unix.read ev.ev_wake_r ev.ev_scratch 0 64 with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

(* The event loop.  Draining protocol: once the flag is up, keep
   serving — queued requests are answered (E032 for new work), write
   buffers flush — and exit when every owned connection is gone, or
   when the grace period has passed with the queue idle and all output
   flushed (then lingering connections are closed).  Every admitted
   request is answered before its connection is torn down. *)
let ev_loop sv cf ev () =
  let grace_deadline = ref None in
  let running = ref true in
  while !running do
    (* Adopt connections the accept loop assigned to this thread. *)
    let adopted =
      Mutex.protect ev.ev_inc_mu (fun () ->
          let xs = List.of_seq (Queue.to_seq ev.ev_incoming) in
          Queue.clear ev.ev_incoming;
          xs)
    in
    List.iter
      (fun fd ->
        let c =
          { cn_fd = fd;
            cn_mu = Mutex.create ();
            cn_out = Buffer.create 256;
            cn_closed = false;
            cn_rbuf = Buffer.create 256;
            cn_wpend = "";
            cn_woff = 0;
            cn_wake = (fun () -> ev_wake ev) }
        in
        ev.ev_conns <- c :: ev.ev_conns)
      adopted;
    ev.ev_conns <- List.filter (fun c -> not (conn_closed c)) ev.ev_conns;
    let draining = Atomic.get sv.sv_draining in
    if draining && !grace_deadline = None then
      grace_deadline :=
        Some (Psc.Metrics.now_ns () + (cf.cf_grace_ms * 1_000_000));
    let past_grace =
      match !grace_deadline with
      | Some d -> Psc.Metrics.now_ns () >= d
      | None -> false
    in
    let no_incoming =
      Mutex.protect ev.ev_inc_mu (fun () -> Queue.is_empty ev.ev_incoming)
    in
    let work_done =
      Bq.idle sv.sv_queue
      && Atomic.get sv.sv_inflight_n = 0
      && List.for_all (fun c -> not (conn_pending c)) ev.ev_conns
    in
    if draining && no_incoming && (ev.ev_conns = [] || (past_grace && work_done))
    then begin
      List.iter (close_conn sv) ev.ev_conns;
      ev.ev_conns <- [];
      running := false
    end
    else begin
      let conns = Array.of_list ev.ev_conns in
      let spec =
        Array.init
          (Array.length conns + 1)
          (fun i ->
            if i = 0 then
              (ev.ev_wake_r, Evpoll.{ want_read = true; want_write = false })
            else
              let c = conns.(i - 1) in
              ( c.cn_fd,
                Evpoll.{ want_read = true; want_write = conn_pending c } ))
      in
      let ready = Evpoll.poll spec ~timeout_ms:100 in
      drain_wake_pipe ev;
      List.iter
        (fun (i, (r : Evpoll.ready)) ->
          if i > 0 then begin
            let c = conns.(i - 1) in
            if (r.Evpoll.readable || r.Evpoll.errored) && not (conn_closed c)
            then conn_read sv ev c
          end)
        ready;
      (* Opportunistic flush of everything pending, not just what
         polled writable: a response staged during the poll is usually
         writable immediately, and a failed attempt just EAGAINs. *)
      Array.iter
        (fun c -> if not (conn_closed c) && conn_pending c then conn_flush sv c)
        conns
    end
  done

(* Workers: pop, answer, stage the response on the connection.  An
   unexpected exception is answered on the wire and the worker lives
   on — a request must never take the service down. *)
let worker_loop sv () =
  let running = ref true in
  while !running do
    match Bq.pop sv.sv_queue with
    | None -> running := false
    | Some wk ->
      (match handle_line ~arrival_ns:wk.wk_arrival sv wk.wk_line with
      | None -> ()
      | Some resp -> conn_send wk.wk_conn resp
      | exception e ->
        conn_send wk.wk_conn
          (Proto.error_message ~id:"null"
             ("internal error: " ^ Printexc.to_string e)));
      Bq.finished sv.sv_queue
  done

(* The accept loop runs on the serving thread: poll the listener (with
   a timeout so SIGTERM-driven draining is noticed promptly), accept in
   bursts, and deal connections round-robin to the event threads.  On
   drain: stop listening, then join every event thread, stop the queue,
   and join every worker — only after all of them are gone does [main]
   shut the domain pool down, so no request can race a dying pool. *)
let serve_socket sv cf path =
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX path);
  (* Deep backlog: `bench serve` opens hundreds of connections at
     once, and a refused connect at that moment is a measurement
     artifact, not a server property. *)
  Unix.listen lfd 512;
  Unix.set_nonblock lfd;
  let n_ev = max 1 (min 4 (Psc.Pool.recommended_size () / 2)) in
  let evs = Array.init n_ev (fun _ -> make_ev ()) in
  let ev_threads =
    Array.map (fun ev -> Thread.create (ev_loop sv cf ev) ()) evs
  in
  let workers =
    Array.init (max 1 cf.cf_workers) (fun _ ->
        Thread.create (worker_loop sv) ())
  in
  let rr = ref 0 in
  while not (Atomic.get sv.sv_draining) do
    (match
       Evpoll.poll
         [| (lfd, Evpoll.{ want_read = true; want_write = false }) |]
         ~timeout_ms:100
     with
    | [] -> ()
    | _ :: _ ->
      let accepting = ref true in
      while !accepting do
        match Unix.accept lfd with
        | fd, _ ->
          Unix.set_nonblock fd;
          ignore (Atomic.fetch_and_add sv.sv_connections 1);
          let ev = evs.(!rr mod n_ev) in
          incr rr;
          Mutex.protect ev.ev_inc_mu (fun () -> Queue.push fd ev.ev_incoming);
          ev_wake ev
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          accepting := false
        | exception Unix.Unix_error _ -> accepting := false
      done);
    ()
  done;
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  (* Drain: event threads finish answering and flushing (bounded by the
     grace period), then the workers run the queue dry and exit.  Join
     them all — unconditionally — before returning to [main]'s pool
     shutdown. *)
  Array.iter Thread.join ev_threads;
  Bq.stop sv.sv_queue;
  Array.iter Thread.join workers;
  Array.iter
    (fun ev ->
      (* Connections accepted but never adopted (the assignment raced
         the drain): close them now so nothing leaks. *)
      Mutex.protect ev.ev_inc_mu (fun () ->
          Queue.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            ev.ev_incoming;
          Queue.clear ev.ev_incoming);
      (try Unix.close ev.ev_wake_r with Unix.Unix_error _ -> ());
      try Unix.close ev.ev_wake_w with Unix.Unix_error _ -> ())
    evs

let main cf =
  Psc.Metrics.set_enabled true;
  let sv = make_server cf in
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> Atomic.set sv.sv_draining true));
  (* A client vanishing mid-response must not kill the server. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  Fun.protect
    ~finally:(fun () ->
      (* By the time we get here every event and worker thread has been
         joined (serve_socket) or there never were any (stdio), so the
         pool has no remaining users. *)
      (match sv.sv_pool with Some p -> Psc.Pool.shutdown p | None -> ());
      (match sv.sv_access with
       | Some (oc, mu) -> Mutex.protect mu (fun () -> close_out_noerr oc)
       | None -> ());
      (* The registry dump happens after the drain, so a SIGTERM'd
         server still leaves its final counters behind. *)
      match cf.cf_metrics_json with
      | Some path ->
        let oc = open_out path in
        output_string oc (Psc.Metrics.render_json ());
        output_char oc '\n';
        close_out oc
      | None -> ())
    (fun () ->
      match cf.cf_socket with
      | None -> serve_stdio sv
      | Some path -> serve_socket sv cf path)
