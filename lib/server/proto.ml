(* Wire protocol of the compile service.

   One request per line, one response per line, both JSON objects.  The
   reader is the trace module's JSON parser (no external dependency);
   the writer is hand-rolled below.  Real values cross the wire as
   "%.17g" strings, never as JSON numbers, so a client that parses them
   with [float_of_string] recovers the exact IEEE double the server
   computed — the differential fuzzer's server path depends on this
   round trip being bit-exact.

   The protocol is pipelined: a client may write any number of request
   lines before reading, and the server answers each exactly once — but
   not necessarily in arrival order, since requests from one connection
   are handled by concurrent workers.  The "id" member is the
   correlation handle: every response (success, diagnostic failure,
   E030/E032/E033 reject) echoes the id of the request it answers, so a
   pipelining client matches responses by id, never by position. *)

module Json = Psc.Trace.Json

type op = Compile | Schedule | Run | Emit_c | Lint | Tune | Stats | Shutdown

let op_name = function
  | Compile -> "compile"
  | Schedule -> "schedule"
  | Run -> "run"
  | Emit_c -> "emit-c"
  | Lint -> "lint"
  | Tune -> "tune"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let op_of_name = function
  | "compile" -> Some Compile
  | "schedule" -> Some Schedule
  | "run" -> Some Run
  | "emit-c" -> Some Emit_c
  | "lint" -> Some Lint
  | "tune" -> Some Tune
  | "stats" -> Some Stats
  | "shutdown" -> Some Shutdown
  | _ -> None

type source = Inline of string | From_file of string

type request = {
  rq_id : string;  (* the "id" member re-rendered verbatim, default "null" *)
  rq_op : op;
  rq_source : source option;
  rq_module : string option;
  rq_flags : Psc.Exec.sched_flags;
  rq_scalars : (string * int) list;
  rq_deadline_ms : int option;
  rq_main : bool;  (* emit-c: also emit the main() harness *)
  rq_trace_id : string option;  (* trace context, echoed in the response *)
  rq_parent_span : string option;
}

(* ------------------------------------------------------------------ *)
(* Writing *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ escape s ^ "\""

let jint = string_of_int

let jbool b = if b then "true" else "false"

let jarr items = "[" ^ String.concat "," items ^ "]"

let jobj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields)
  ^ "}"

(* ------------------------------------------------------------------ *)
(* Reading *)

(* Re-render a parsed id so the response echoes what the client sent.
   Integral numbers print without the decimal point JSON parsing gave
   them. *)
let render_id (j : Json.t) =
  match j with
  | Json.Str s -> jstr s
  | Json.Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      string_of_int (int_of_float f)
    else Printf.sprintf "%.17g" f
  | Json.Bool b -> jbool b
  | Json.Null -> "null"
  | Json.Obj _ | Json.Arr _ -> "null"

let parse_request (line : string) : (request, string * string) result =
  (* On error the first component is still the rendered id (when one
     could be recovered) so the E030 response can be correlated. *)
  match Json.parse line with
  | exception Json.Parse_error m -> Error ("null", "malformed JSON: " ^ m)
  | Json.Obj _ as j -> (
    let id =
      match Json.member "id" j with Some v -> render_id v | None -> "null"
    in
    let str_member name =
      match Json.member name j with
      | Some (Json.Str s) -> Some s
      | Some _ | None -> None
    in
    match Json.member "op" j with
    | None -> Error (id, "missing required field: op")
    | Some (Json.Str opname) -> (
      match op_of_name opname with
      | None -> Error (id, "unknown operation: " ^ opname)
      | Some op ->
        let source =
          match (str_member "source", str_member "source_file") with
          | Some s, _ -> Some (Inline s)
          | None, Some f -> Some (From_file f)
          | None, None -> None
        in
        let flag name =
          match Json.member "flags" j with
          | Some (Json.Obj _ as fl) -> (
            match Json.member name fl with
            | Some (Json.Bool b) -> b
            | _ -> false)
          | _ -> false
        in
        let flags =
          { Psc.Exec.sf_sink = flag "sink";
            sf_fuse = flag "fuse";
            sf_trim = flag "trim";
            sf_collapse = flag "collapse" }
        in
        let scalars =
          match Json.member "scalars" j with
          | Some (Json.Obj kvs) ->
            List.filter_map
              (fun (k, v) ->
                match v with
                | Json.Num f -> Some (k, int_of_float f)
                | _ -> None)
              kvs
          | _ -> []
        in
        let deadline_ms =
          match Json.member "deadline_ms" j with
          | Some (Json.Num f) -> Some (int_of_float f)
          | _ -> None
        in
        let main =
          match Json.member "main" j with Some (Json.Bool b) -> b | _ -> false
        in
        Ok
          { rq_id = id;
            rq_op = op;
            rq_source = source;
            rq_module = str_member "module";
            rq_flags = flags;
            rq_scalars = scalars;
            rq_deadline_ms = deadline_ms;
            rq_main = main;
            rq_trace_id = str_member "trace_id";
            rq_parent_span = str_member "parent_span" })
    | Some _ -> Error (id, "field op must be a string"))
  | _ -> Error ("null", "request must be a JSON object")

(* The reject paths (overload shedding above all) need the correlation
   fields of a line without the cost or strictness of building a full
   request: a request the server is about to shed may name an unknown
   op or miss its source, yet its E033 answer must still carry the id
   and trace context the client sent. *)
let reject_fields (line : string) : string * string * string option =
  match Json.parse line with
  | exception Json.Parse_error _ -> ("null", "invalid", None)
  | Json.Obj _ as j ->
    let id =
      match Json.member "id" j with Some v -> render_id v | None -> "null"
    in
    let op =
      match Json.member "op" j with Some (Json.Str s) -> s | _ -> "invalid"
    in
    let trace_id =
      match Json.member "trace_id" j with
      | Some (Json.Str s) -> Some s
      | _ -> None
    in
    (id, op, trace_id)
  | _ -> ("null", "invalid", None)

(* ------------------------------------------------------------------ *)
(* Output values *)

let elem_name (k : Psc.Value.elem_kind) =
  match k with
  | Psc.Value.KInt -> "int"
  | Psc.Value.KReal -> "real"
  | Psc.Value.KBool -> "bool"
  | Psc.Value.KEnum _ -> "enum"

let scalar_fields (s : Psc.Value.scalar) =
  match s with
  | Psc.Value.Sc_int n -> [ ("elem", jstr "int"); ("value", jstr (string_of_int n)) ]
  | Psc.Value.Sc_real v ->
    [ ("elem", jstr "real"); ("value", jstr (Printf.sprintf "%.17g" v)) ]
  | Psc.Value.Sc_bool b -> [ ("elem", jstr "bool"); ("value", jstr (jbool b)) ]
  | Psc.Value.Sc_enum (ty, o) ->
    [ ("elem", jstr "enum"); ("ty", jstr ty); ("value", jstr (string_of_int o)) ]
  | Psc.Value.Sc_record _ -> [ ("elem", jstr "record"); ("value", jstr "<record>") ]

let scalar_text (s : Psc.Value.scalar) =
  match s with
  | Psc.Value.Sc_int n -> string_of_int n
  | Psc.Value.Sc_real v -> Printf.sprintf "%.17g" v
  | Psc.Value.Sc_bool b -> jbool b
  | Psc.Value.Sc_enum (_, o) -> string_of_int o
  | Psc.Value.Sc_record _ -> "<record>"

(* Iterate the declared box in row-major ascending order — the same
   order a client rebuilding the array with [Exec.array_real] visits. *)
let iter_box (s : Psc.Value.slab) f =
  let n = Psc.Value.ndims s in
  let ix = Array.map (fun di -> di.Psc.Value.di_lo) s.Psc.Value.s_dims in
  if Array.exists (fun di -> di.Psc.Value.di_extent <= 0) s.Psc.Value.s_dims
  then ()
  else begin
    let rec advance p =
      if p < 0 then false
      else begin
        let di = s.Psc.Value.s_dims.(p) in
        ix.(p) <- ix.(p) + 1;
        if ix.(p) < di.Psc.Value.di_lo + di.Psc.Value.di_extent then true
        else begin
          ix.(p) <- di.Psc.Value.di_lo;
          advance (p - 1)
        end
      end
    in
    let continue_ = ref true in
    while !continue_ do
      f ix;
      continue_ := advance (n - 1)
    done
  end

let output_json (name, (v : Psc.Value.value)) =
  match v with
  | Psc.Value.Vscalar s ->
    jobj ([ ("name", jstr name); ("kind", jstr "scalar") ] @ scalar_fields s)
  | Psc.Value.Varray sl ->
    let dims =
      Array.to_list sl.Psc.Value.s_dims
      |> List.map (fun di ->
             jarr
               [ jint di.Psc.Value.di_lo;
                 jint (di.Psc.Value.di_lo + di.Psc.Value.di_extent - 1) ])
    in
    let values = ref [] in
    iter_box sl (fun ix ->
        values := jstr (scalar_text (Psc.Value.get_scalar sl ix)) :: !values);
    let ty =
      match sl.Psc.Value.s_kind with
      | Psc.Value.KEnum ty -> [ ("ty", jstr ty) ]
      | _ -> []
    in
    jobj
      ([ ("name", jstr name);
         ("kind", jstr "array");
         ("elem", jstr (elem_name sl.Psc.Value.s_kind)) ]
      @ ty
      @ [ ("dims", jarr dims); ("values", jarr (List.rev !values)) ])

(* ------------------------------------------------------------------ *)
(* Responses *)

let ok_response ~id ~cached fields =
  jobj
    ([ ("id", id); ("ok", jbool true); ("cached", jbool cached) ] @ fields)

(* A failed request carries the diagnostics array of the unified
   diagnostics engine, so clients see the same E0xx codes the CLI
   prints. *)
let error_response ~id (diags : Psc.Diag.t list) =
  jobj
    [ ("id", id);
      ("ok", jbool false);
      ("diagnostics", Psc.Diag.render Psc.Diag.Json diags) ]

let error_message ~id msg =
  jobj [ ("id", id); ("ok", jbool false); ("error", jstr msg) ]

(* Stamp the client's trace context onto an already-rendered response
   line.  Every reply — success, diagnostic failure, deadline, even an
   E030 for a line that parsed far enough to carry an id — must echo
   the request's trace_id, so this runs as a post-pass rather than in
   each response builder. *)
let with_trace_id ~trace_id response =
  match trace_id with
  | None -> response
  | Some tid ->
    if String.length response > 0 && response.[0] = '{' then
      "{" ^ jstr "trace_id" ^ ":" ^ jstr tid ^ ","
      ^ String.sub response 1 (String.length response - 1)
    else response
