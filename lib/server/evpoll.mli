(** Readiness multiplexing for the compile service's event threads.

    A thin wrapper over poll(2).  Unix.select cannot watch descriptors
    numbered past FD_SETSIZE (1024 on Linux), and the full [bench serve]
    sweep holds 1024 client sockets at once, so the event loop polls
    instead.  The underlying stub releases the OCaml runtime lock for
    the duration of the wait, so worker threads keep draining the
    request queue while an event thread sleeps. *)

type interest = { want_read : bool; want_write : bool }

type ready = { readable : bool; writable : bool; errored : bool }

val poll :
  (Unix.file_descr * interest) array ->
  timeout_ms:int ->
  (int * ready) list
(** [poll spec ~timeout_ms] waits until one of the watched descriptors
    is ready (or the timeout, in milliseconds, expires; [-1] blocks)
    and returns the ready subset as [(index into spec, ready)] pairs in
    ascending index order — the caller maps indices straight back to
    its connection records.  Hangups and errors report as [readable] (a
    subsequent read surfaces the condition), with [errored]
    additionally set for error/invalid descriptors.  An interrupted
    wait (EINTR) returns the empty list so callers re-check their state
    (the draining flag) on their normal path. *)
