(** The compile service: a long-lived [psc serve] process answering
    newline-delimited JSON requests ({!Proto}) over a Unix-domain
    socket, or over stdin/stdout for tests and one-shot scripting.

    Each connection gets a reader thread; request processing is bounded
    by a counting semaphore, and all requests share one work-stealing
    domain pool.  A request never kills the server: malformed JSON,
    unknown operations, compile errors, runtime traps and expired
    deadlines are all answered on the wire with the unified E03x
    diagnostic codes.  SIGTERM or a [shutdown] request flips the
    draining flag — in-flight requests finish and are answered, new
    ones get E032, and the process exits cleanly. *)

type config = {
  cf_socket : string option;  (** [None]: serve stdin/stdout *)
  cf_workers : int;           (** concurrent request bound *)
  cf_pool : int;              (** domain pool size; 0 = sequential *)
  cf_cache : int;             (** artifact cache capacity *)
  cf_grace_ms : int;          (** drain: wait this long for clients to leave *)
  cf_access_log : string option;
      (** write one structured JSON line per request (rejects included) *)
  cf_slow_ms : int option;
      (** capture the span subtree of requests slower than this into a
          bounded ring, visible in the [stats] reply under ["slow"] *)
  cf_metrics_json : string option;
      (** dump the final metrics registry here on clean shutdown *)
}

val default_config : config
(** stdio, 4 workers, no pool, 64 cached artifacts, 5 s grace, no
    access log, no slow capture, no metrics dump. *)

val main : config -> unit
(** Run the server until it drains: stdio EOF or a [shutdown] request
    (stdio mode), SIGTERM or a [shutdown] request (socket mode).
    Enables {!Psc.Metrics}, installs the SIGTERM handler, ignores
    SIGPIPE, and shuts the domain pool down on exit. *)
