(** The compile service: a long-lived [psc serve] process answering
    newline-delimited JSON requests ({!Proto}) over a Unix-domain
    socket, or over stdin/stdout for tests and one-shot scripting.

    The socket transport is event-driven: a small fixed pool of event
    threads multiplexes every client socket with poll(2) ({!Evpoll}),
    framing request lines into a bounded queue drained by a fixed pool
    of worker threads.  When the queue is full the server sheds load —
    the request is answered E033 immediately ([stats] and [shutdown]
    bypass the bound) — and responses are staged in per-connection
    write buffers flushed as sockets accept them, so one slow reader
    never stalls the loop.  Connections are pipelined: responses
    correlate by id, not by arrival order.

    A request never kills the server: malformed JSON, unknown
    operations, compile errors, runtime traps and expired deadlines are
    all answered on the wire with the unified E03x diagnostic codes.
    SIGTERM or a [shutdown] request flips the draining flag — in-flight
    requests finish and are answered, new ones get E032, every service
    thread is joined, and the process exits cleanly. *)

type config = {
  cf_socket : string option;  (** [None]: serve stdin/stdout *)
  cf_workers : int;           (** worker threads = concurrent request bound *)
  cf_pool : int;              (** domain pool size; 0 = sequential *)
  cf_cache : int;             (** artifact cache capacity *)
  cf_shards : int;            (** artifact cache lock stripes *)
  cf_max_queue : int;
      (** bounded request queue depth; requests past it are shed with
          E033 instead of buffered unboundedly *)
  cf_grace_ms : int;          (** drain: wait this long for clients to leave *)
  cf_access_log : string option;
      (** write one structured JSON line per request (rejects included) *)
  cf_slow_ms : int option;
      (** capture the span subtree of requests slower than this into a
          bounded ring, visible in the [stats] reply under ["slow"] *)
  cf_metrics_json : string option;
      (** dump the final metrics registry here on clean shutdown *)
}

val default_config : config
(** stdio, 4 workers, no pool, 64 cached artifacts in 8 shards, queue
    of 1024, 5 s grace, no access log, no slow capture, no metrics
    dump. *)

val main : config -> unit
(** Run the server until it drains: stdio EOF or a [shutdown] request
    (stdio mode), SIGTERM or a [shutdown] request (socket mode).
    Enables {!Psc.Metrics}, installs the SIGTERM handler, ignores
    SIGPIPE, and shuts the domain pool down only after every event and
    worker thread has been joined. *)
