(** Content-addressed artifact store for the compile service.

    Keys are built from the MD5 digest of the source text plus whatever
    narrows the artifact (module name, transformation-flag fingerprint),
    so two requests with the same source and flags share one schedule no
    matter how the client phrased them.  The store is lock-striped: the
    key's digest prefix picks one of N shards, each a mutex-protected
    hash table with its own LRU tick and capacity slice, so unrelated
    requests never contend and eviction scans one shard, not the whole
    store.  Builds run outside any lock, so a slow schedule never stalls
    unrelated requests. *)

type artifact =
  | A_project of Psc.t          (** a loaded + elaborated source *)
  | A_sched of Psc.scheduled    (** a scheduled module *)
  | A_emit of string            (** generated C text *)
  | A_policy of Psc.Policy.table
      (** a tuned per-nest scheduling-policy table *)

type t

val create : ?capacity:int -> ?shards:int -> unit -> t
(** A store of [shards] (default 8, min 1) lock-striped shards holding
    at least [capacity] (default 64, min 1) artifacts overall — each
    shard holds up to ceil(capacity/shards) — with its hit/miss/eviction
    counters registered as [server.cache.*] in {!Psc.Metrics}. *)

val shards : t -> int
(** The number of lock stripes the store was created with. *)

(** {2 Key constructors}

    One letter per artifact kind, then the content digest, then the
    discriminating context. *)

val digest : string -> string
(** The hex MD5 content digest that prefixes every key — also what the
    access log reports as a request's ["digest"] field, and whose two
    leading hex digits pick the shard. *)

val project_key : src:string -> string

val sched_key :
  src:string -> module_:string option -> flags:Psc.Exec.sched_flags -> string

val emit_key :
  src:string ->
  module_:string option ->
  flags:Psc.Exec.sched_flags ->
  main:bool ->
  string

val policy_key :
  src:string ->
  module_:string option ->
  flags:Psc.Exec.sched_flags ->
  host_cores:int ->
  string
(** Tuned policy tables are additionally keyed by the core count of the
    host that measured them; a [Run] only trusts a table whose
    [host_cores] matches (otherwise W121 + static fallback). *)

val find_or_build : t -> string -> (unit -> artifact) -> artifact * bool
(** [find_or_build t key build] returns the artifact and whether it came
    from the store.  A hit stamps the entry most-recently-used; a miss
    runs [build] outside the lock and inserts the result, evicting the
    shard's stalest entries while over its capacity slice.  When two
    builds of one key race, the loser wastes its build but returns the
    {e winner's} (first-inserted) artifact flagged as a hit — identical
    concurrent requests observably converge, and exactly one miss is
    counted per key actually built.  [build] may raise; nothing is
    inserted or counted then. *)

val peek : t -> string -> artifact option
(** Look up without building and without touching the hit/miss
    counters — for callers that treat absence as "no opinion" rather
    than a miss (e.g. [Run] probing for a tuned policy table). *)

type stats = {
  st_entries : int;
  st_hits : int;
  st_misses : int;
  st_evictions : int;
}

val stats : t -> stats
