(** C code generation (paper §1: "a compiler which generates C code").

    Emission is driven by the flowchart: subrange descriptors become for
    loops annotated [/* DO (iterative) */] or [/* DOALL (concurrent) */]
    (the outermost DOALL of each nest also gets an OpenMP pragma), node
    descriptors become assignments.  Virtual dimensions allocate their
    window and subscript through [% window] (§3.4).

    Unsupported constructs (module calls, record types) raise
    {!Unsupported}; enumerations become [#define]d integers. *)

exception Unsupported of string

val emit_module :
  ?windows:Ps_sched.Schedule.window list ->
  ?policy:Ps_sched.Policy.table ->
  Ps_sem.Elab.emodule ->
  Ps_sched.Flowchart.t ->
  string
(** The kernel: a C function taking inputs (const pointers / scalars)
    and result out-parameters, allocating windowed locals internally.

    When a [policy] table is given, each loop nest's pragmas follow its
    per-nest decision: a nest the policy runs sequentially loses its
    [#pragma omp parallel for] (replaced by a comment carrying the
    reason), a nest with a chunk hint gains a [schedule(...)] clause,
    and a band whose decision forbids flattening keeps [collapse] off.
    Policies never change which loops are {e legal} to parallelise —
    only which of the proved-parallel ones are worth forking. *)

val emit_main :
  ?windows:Ps_sched.Schedule.window list ->
  ?policy:Ps_sched.Policy.table ->
  Ps_sem.Elab.emodule ->
  Ps_sched.Flowchart.t ->
  scalars:(string * int) list ->
  string
(** The kernel plus a [main] that fills array inputs with the
    deterministic generator shared with
    {!Ps_models.Models.fill_value} and prints one checksum line per
    result — the basis of the C-vs-interpreter differential tests.
    @raise Unsupported if a scalar input has no value in [scalars]. *)

val c_name : string -> string
(** Identifier sanitation (C keywords get a [ps_] prefix). *)
