(* C code generation (paper §1, §3.4).

   The flowchart drives emission directly: a Subrange descriptor becomes a
   for loop annotated iterative or concurrent (the outermost concurrent
   loop of each nest also gets an OpenMP pragma so the generated code
   actually runs in parallel on a modern compiler); a node descriptor
   becomes an assignment.  Virtual dimensions allocate their window and
   subscript through [% window], exactly as §3.4 prescribes.

   Restrictions of this back end (diagnosed, not silently ignored):
   module calls and record types are not emitted; enumerations become
   #define'd integers. *)

open Ps_sem

exception Unsupported of string

let fail fmt = Fmt.kstr (fun m -> raise (Unsupported m)) fmt

let c_keywords =
  [ "auto"; "break"; "case"; "char"; "const"; "continue"; "default"; "do";
    "double"; "else"; "enum"; "extern"; "float"; "for"; "goto"; "if"; "inline";
    "int"; "long"; "register"; "restrict"; "return"; "short"; "signed";
    "sizeof"; "static"; "struct"; "switch"; "typedef"; "union"; "unsigned";
    "void"; "volatile"; "while"; "main" ]

let c_name n = if List.mem n c_keywords then "ps_" ^ n else n

type ctype = Cdouble | Cint | Cbool

let ctype_of_scalar = function
  | Stypes.Sreal -> Cdouble
  | Stypes.Sint -> Cint
  | Stypes.Sbool -> Cbool
  | Stypes.Senum _ -> Cint

let ctype_of_ty = function
  | Stypes.Scalar s -> ctype_of_scalar s
  | Stypes.Array (_, Stypes.Scalar s) -> ctype_of_scalar s
  | Stypes.Array (_, _) | Stypes.Record _ -> fail "record types are not supported by the C back end"

let ctype_str = function Cdouble -> "double" | Cint -> "int" | Cbool -> "unsigned char"

(* ------------------------------------------------------------------ *)
(* Expression translation *)

type ectx = {
  x_em : Elab.emodule;
  x_indices : string list;  (* variables bound by enclosing loops *)
}

let is_data ctx n = Elab.find_data ctx.x_em n <> None

(* Scalar results are passed as pointers (a by-value parameter would lose
   the write), so both reads and the defining assignment dereference. *)
let scalar_result ctx n =
  List.exists
    (fun (d : Elab.data) ->
      String.equal d.Elab.d_name n && Stypes.dims d.Elab.d_ty = [])
    ctx.x_em.Elab.em_results

let enum_ordinal ctx name =
  List.find_map
    (fun (_, ctors) ->
      let rec pos i = function
        | [] -> None
        | c :: cs -> if String.equal c name then Some i else pos (i + 1) cs
      in
      pos 0 ctors)
    ctx.x_em.Elab.em_enums

(* Scalar type inference mirroring the elaborator, used to decide between
   int and floating C operators. *)
let rec ctype_of_expr ctx (e : Ps_lang.Ast.expr) : ctype =
  let open Ps_lang.Ast in
  match e.e with
  | Int _ -> Cint
  | Real _ -> Cdouble
  | Bool _ -> Cbool
  | Var x ->
    if List.mem x ctx.x_indices then Cint
    else if is_data ctx x then
      (match Elab.find_data ctx.x_em x with
       | Some d -> ctype_of_ty d.Elab.d_ty
       | None -> Cint)
    else Cint (* enum constructor *)
  | Index ({ e = Var x; _ }, _) when is_data ctx x ->
    (match Elab.find_data ctx.x_em x with
     | Some d -> ctype_of_ty d.Elab.d_ty
     | None -> Cint)
  | Index _ | Field _ -> fail "unsupported reference shape in C back end"
  | Call (f, _) -> (
    match f with
    | "sqrt" | "sin" | "cos" | "exp" | "ln" -> Cdouble
    | "intpart" -> Cint
    | "abs" | "min" | "max" -> Cdouble (* conservative *)
    | _ -> fail "module call %s cannot be emitted to C" f)
  | Unop (Neg, a) -> ctype_of_expr ctx a
  | Unop (Not, _) -> Cbool
  | Binop ((Add | Sub | Mul), a, b) -> (
    match ctype_of_expr ctx a, ctype_of_expr ctx b with
    | Cint, Cint -> Cint
    | _ -> Cdouble)
  | Binop (Div, _, _) -> Cdouble
  | Binop ((Idiv | Imod), _, _) -> Cint
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> Cbool
  | If (_, t, f) -> (
    match ctype_of_expr ctx t, ctype_of_expr ctx f with
    | Cint, Cint -> Cint
    | Cbool, Cbool -> Cbool
    | _ -> Cdouble)

let rec emit_expr ctx buf (e : Ps_lang.Ast.expr) =
  let open Ps_lang.Ast in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  match e.e with
  | Int n -> pf "%d" n
  | Real f ->
    let s = Printf.sprintf "%.17g" f in
    let s = if String.contains s '.' || String.contains s 'e' then s else s ^ ".0" in
    pf "%s" s
  | Bool b -> pf "%s" (if b then "1" else "0")
  | Var x ->
    if List.mem x ctx.x_indices then pf "%s" (c_name x)
    else if is_data ctx x then
      if scalar_result ctx x then pf "(*%s)" (c_name x) else pf "%s" (c_name x)
    else (
      match enum_ordinal ctx x with
      | Some ord -> pf "%d" ord
      | None -> fail "unbound identifier %s" x)
  | Index ({ e = Var x; _ }, subs) when is_data ctx x ->
    pf "%s_AT(" (c_name x);
    List.iteri
      (fun i s ->
        if i > 0 then pf ", ";
        emit_expr ctx buf s)
      subs;
    pf ")"
  | Index _ | Field _ -> fail "unsupported reference shape in C back end"
  | Call (f, args) -> (
    let fn =
      match f with
      | "sqrt" -> "sqrt" | "sin" -> "sin" | "cos" -> "cos" | "exp" -> "exp"
      | "ln" -> "log" | "abs" -> "fabs" | "min" -> "PS_MIN" | "max" -> "PS_MAX"
      | "intpart" -> "(int)"
      | _ -> fail "module call %s cannot be emitted to C" f
    in
    pf "%s(" fn;
    List.iteri
      (fun i a ->
        if i > 0 then pf ", ";
        emit_expr ctx buf a)
      args;
    pf ")")
  | Unop (Neg, a) ->
    pf "(-";
    emit_expr ctx buf a;
    pf ")"
  | Unop (Not, a) ->
    pf "(!";
    emit_expr ctx buf a;
    pf ")"
  | Binop ((Idiv | Imod) as op, a, b) ->
    (* Never raw / and %: zero is undefined behavior in C, and the
       helpers pin the rounding to the interpreter's (truncated
       quotient, remainder with the dividend's sign) with a zero trap. *)
    pf "%s(" (match op with Idiv -> "PS_DIV" | _ -> "PS_MOD");
    emit_expr ctx buf a;
    pf ", ";
    emit_expr ctx buf b;
    pf ")"
  | Binop (op, a, b) ->
    let sym =
      match op with
      | Add -> "+" | Sub -> "-" | Mul -> "*"
      | Div -> "/" | Idiv | Imod -> assert false
      | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
      | And -> "&&" | Or -> "||"
    in
    pf "(";
    (* Real division must not become C integer division. *)
    (if op = Div && ctype_of_expr ctx a = Cint && ctype_of_expr ctx b = Cint then begin
       pf "(double)";
       emit_expr ctx buf a
     end
     else emit_expr ctx buf a);
    pf " %s " sym;
    emit_expr ctx buf b;
    pf ")"
  | If (c, t, f) ->
    pf "(";
    emit_expr ctx buf c;
    pf " ? ";
    emit_expr ctx buf t;
    pf " : ";
    emit_expr ctx buf f;
    pf ")"

(* ------------------------------------------------------------------ *)
(* Module emission *)

type array_layout = {
  al_name : string;
  al_ctype : ctype;
  al_dims : (string * string * int option) list;
      (* per dim: (lo C expr, hi C expr, window) *)
}

let expr_to_c ctx e =
  let buf = Buffer.create 32 in
  emit_expr ctx buf e;
  Buffer.contents buf

let window_of windows name dim =
  List.find_map
    (fun (w : Ps_sched.Schedule.window) ->
      if String.equal w.Ps_sched.Schedule.w_data name && w.Ps_sched.Schedule.w_dim = dim
      then Some w.Ps_sched.Schedule.w_size
      else None)
    windows

let layout_of ctx windows (d : Elab.data) : array_layout option =
  match Stypes.dims d.Elab.d_ty with
  | [] -> None
  | dims ->
    let use_windows = d.Elab.d_kind = Elab.Local in
    Some
      { al_name = c_name d.Elab.d_name;
        al_ctype = ctype_of_ty d.Elab.d_ty;
        al_dims =
          List.mapi
            (fun p (sr : Stypes.subrange) ->
              ( expr_to_c ctx sr.Stypes.sr_lo,
                expr_to_c ctx sr.Stypes.sr_hi,
                if use_windows then window_of windows d.Elab.d_name p else None ))
            dims }

(* Emit the bound/extent/stride constants and the _AT macro for one
   array. *)
let emit_layout buf (al : array_layout) =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n = List.length al.al_dims in
  List.iteri
    (fun p (lo, hi, window) ->
      pf "  const int %s_lo%d = %s;\n" al.al_name p lo;
      pf "  const int %s_n%d = (%s) - (%s) + 1;\n" al.al_name p hi lo;
      match window with
      | Some w ->
        pf "  const int %s_w%d = %d;  /* virtual dimension: window of %d planes (sec 3.4) */\n"
          al.al_name p w w
      | None -> pf "  const int %s_w%d = %s_n%d;\n" al.al_name p al.al_name p)
    al.al_dims;
  (* Strides over the allocated (window) sizes. *)
  for p = n - 1 downto 0 do
    if p = n - 1 then pf "  const size_t %s_s%d = 1;\n" al.al_name p
    else
      pf "  const size_t %s_s%d = %s_s%d * (size_t)%s_w%d;\n" al.al_name p
        al.al_name (p + 1) al.al_name (p + 1)
  done;
  pf "  const size_t %s_size = %s_s0 * (size_t)%s_w0;\n" al.al_name al.al_name
    al.al_name;
  (* The subscript macro, mapping virtual dimensions through their
     window. *)
  let params = String.concat ", " (List.init n (fun p -> Printf.sprintf "i%d" p)) in
  let terms =
    String.concat " + "
      (List.mapi
         (fun p (_, _, window) ->
           match window with
           | Some _ ->
             Printf.sprintf "((size_t)PS_WRAP((i%d) - %s_lo%d, %s_w%d)) * %s_s%d" p
               al.al_name p al.al_name p al.al_name p
           | None ->
             Printf.sprintf "((size_t)((i%d) - %s_lo%d)) * %s_s%d" p al.al_name p
               al.al_name p)
         al.al_dims)
  in
  pf "  #define %s_AT(%s) %s[%s]\n" al.al_name params al.al_name terms

(* ------------------------------------------------------------------ *)

let rec emit_descriptor st buf ~depth ~indent ~par ~bound ~policy
    (d : Ps_sched.Flowchart.descriptor) =
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let pad = String.make indent ' ' in
  match d with
  | Ps_sched.Flowchart.D_data name -> pf "%s/* data %s */\n" pad name
  | Ps_sched.Flowchart.D_eq { er_id; er_aliases } ->
    let em, _, _ = st in
    let q = Elab.eq_exn em er_id in
    let ctx =
      { x_em = em;
        x_indices =
          List.map (fun (ix : Elab.index) -> ix.Elab.ix_var) q.Elab.q_indices
          @ List.map snd er_aliases @ bound }
    in
    (* Substitute aliased index variables by their loop variables. *)
    let subst =
      List.map (fun (v, l) -> (v, Ps_lang.Ast.var_e l)) er_aliases
    in
    let rhs = Ps_lang.Ast.subst_vars subst q.Elab.q_rhs in
    (match q.Elab.q_defs with
     | [ df ] ->
       let name = c_name df.Elab.df_data in
       let subs =
         List.map
           (function
             | Elab.Sub_index ix -> (
               match List.assoc_opt ix.Elab.ix_var er_aliases with
               | Some l -> c_name l
               | None -> c_name ix.Elab.ix_var)
             | Elab.Sub_fixed e -> expr_to_c ctx e)
           df.Elab.df_subs
       in
       if subs = [] then
         let lhs = if scalar_result ctx df.Elab.df_data then "*" ^ name else name in
         pf "%s%s = %s;  /* %s */\n" pad lhs (expr_to_c ctx rhs) q.Elab.q_name
       else
         pf "%s%s_AT(%s) = %s;  /* %s */\n" pad name (String.concat ", " subs)
           (expr_to_c ctx rhs) q.Elab.q_name
     | _ -> fail "multi-result equations cannot be emitted to C")
  | Ps_sched.Flowchart.D_loop l ->
    let v = c_name l.Ps_sched.Flowchart.lp_var in
    let ctx = { x_em = (let e, _, _ = st in e); x_indices = bound } in
    let lo = expr_to_c ctx l.Ps_sched.Flowchart.lp_range.Stypes.sr_lo in
    let hi = expr_to_c ctx l.Ps_sched.Flowchart.lp_range.Stypes.sr_hi in
    (* Depth of the collapsible DOALL band headed here (1 = no band):
       consecutive [lp_collapse] marks license an OpenMP collapse
       clause over the perfect nest. *)
    let rec band_depth (b : Ps_sched.Flowchart.loop) =
      if b.Ps_sched.Flowchart.lp_collapse then
        match b.Ps_sched.Flowchart.lp_body with
        | [ Ps_sched.Flowchart.D_loop inner ] -> 1 + band_depth inner
        | _ -> 1
      else 1
    in
    let opened = ref 1 in
    (* The nest's policy decision, if any: per-loop pragma shape instead
       of the uniform annotation.  An empty policy emits byte-identical
       legacy output. *)
    let dec =
      List.find_map
        (fun (m, dc) -> if m == l then Some dc else None)
        policy
    in
    let forked =
      match dec with Some dc -> dc.Ps_sched.Policy.d_par | None -> true
    in
    (* The OpenMP schedule clause a decision asks for: dynamic for
       stealing, static otherwise, chunked when the policy sets a
       floor. *)
    let sched_clause () =
      match dec with
      | None -> ""
      | Some dc -> (
        match dc.Ps_sched.Policy.d_chunk_min with
        | Some c ->
          Printf.sprintf " schedule(%s, %d)"
            (if dc.Ps_sched.Policy.d_steal then "dynamic" else "static")
            c
        | None ->
          if dc.Ps_sched.Policy.d_steal then "" else " schedule(static)")
    in
    (match l.Ps_sched.Flowchart.lp_kind with
     | Ps_sched.Flowchart.Parallel ->
       let bd =
         match dec with
         | Some dc when not dc.Ps_sched.Policy.d_collapse -> 1
         | _ -> band_depth l
       in
       if par then begin
         match dec with
         | Some dc when not dc.Ps_sched.Policy.d_par ->
           pf "%s/* policy: sequential (%s) */\n" pad dc.Ps_sched.Policy.d_why
         | _ ->
           if bd > 1 then
             pf "%s#pragma omp parallel for collapse(%d)%s\n" pad bd
               (sched_clause ())
           else pf "%s#pragma omp parallel for%s\n" pad (sched_clause ())
       end;
       pf "%sfor (int %s = %s; %s <= %s; %s++) {  /* DOALL (%s) */\n" pad v
         lo v hi v
         (if bd > 1 then "concurrent, collapsible band head"
          else "concurrent")
     | Ps_sched.Flowchart.Iterative ->
       pf "%sfor (int %s = %s; %s <= %s; %s++) {  /* DO (iterative) */\n" pad v lo
         v hi v
     | Ps_sched.Flowchart.Grouped g ->
       (* Group-partitioned DOALL: the residue classes mod g are
          mutually independent; index order within each class. *)
       let gv = v ^ "_grp" in
       if par && forked then
         pf "%s#pragma omp parallel for%s\n" pad (sched_clause ())
       else if par then
         pf "%s/* policy: sequential (%s) */\n" pad
           (match dec with Some dc -> dc.Ps_sched.Policy.d_why | None -> "");
       pf "%sfor (int %s = 0; %s < %d; %s++) {  /* DOGROUP(%d): independent \
           residue classes */\n"
         pad gv gv g gv g;
       pf "%s  for (int %s = (%s) + %s; %s <= %s; %s += %d) {\n" pad v lo gv v
         hi v g;
       opened := 2
     | Ps_sched.Flowchart.Inspected e ->
       (* Inspector/executor preamble: evaluate the symbolic dependence
          distance, reject a non-positive one at run time, then run the
          distance-many residue classes concurrently. *)
       let gv = v ^ "_grp" in
       let dv = v ^ "_dist" in
       let de = expr_to_c ctx e in
       pf "%s{  /* inspector/executor */\n" pad;
       pf "%s  const int %s = %s;\n" pad dv de;
       pf
         "%s  if (%s < 1) { fprintf(stderr, \"psc: inspector for loop %s: \
          dependence distance %%d is not positive\\n\", %s); exit(2); }\n"
         pad dv v dv;
       if par && forked then
         pf "%s  #pragma omp parallel for%s\n" pad (sched_clause ())
       else if par then
         pf "%s  /* policy: sequential (%s) */\n" pad
           (match dec with Some dc -> dc.Ps_sched.Policy.d_why | None -> "");
       pf "%s  for (int %s = 0; %s < %s; %s++) {  /* DOINSPECT(%s) */\n" pad gv
         gv dv gv de;
       pf "%s    for (int %s = (%s) + %s; %s <= %s; %s += %s) {\n" pad v lo gv
         v hi v dv;
       opened := 3);
    let par' =
      match l.Ps_sched.Flowchart.lp_kind with
      | Ps_sched.Flowchart.Parallel | Ps_sched.Flowchart.Grouped _
      | Ps_sched.Flowchart.Inspected _ -> false
      | Ps_sched.Flowchart.Iterative -> par
    in
    let bound' = l.Ps_sched.Flowchart.lp_var :: bound in
    List.iter
      (emit_descriptor st buf ~depth:(depth + 1) ~indent:(indent + (2 * !opened))
         ~par:par' ~bound:bound' ~policy)
      l.Ps_sched.Flowchart.lp_body;
    for i = !opened - 1 downto 0 do
      pf "%s%s}\n" pad (String.make (2 * i) ' ')
    done
  | Ps_sched.Flowchart.D_solve s ->
    let ctx = { x_em = (let e, _, _ = st in e); x_indices = bound } in
    let v = c_name s.Ps_sched.Flowchart.sv_var in
    pf "%s{  /* solved subscript (unrotate) */\n" pad;
    pf "%s  const int %s = %s;\n" pad v
      (expr_to_c ctx s.Ps_sched.Flowchart.sv_rhs);
    pf "%s  if (%s >= (%s) && %s <= (%s)) {\n" pad v
      (expr_to_c ctx s.Ps_sched.Flowchart.sv_range.Stypes.sr_lo)
      v
      (expr_to_c ctx s.Ps_sched.Flowchart.sv_range.Stypes.sr_hi);
    let bound' = s.Ps_sched.Flowchart.sv_var :: bound in
    List.iter
      (emit_descriptor st buf ~depth:(depth + 1) ~indent:(indent + 4) ~par
         ~bound:bound' ~policy)
      s.Ps_sched.Flowchart.sv_body;
    pf "%s  }\n%s}\n" pad pad

let emit_module ?(windows = []) ?policy (em : Elab.emodule)
    (fc : Ps_sched.Flowchart.t) : string =
  Ps_obs.Trace.with_span "emit" @@ fun () ->
  let policy =
    match policy with
    | Some t -> Ps_sched.Policy.resolve t fc
    | None -> []
  in
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ctx = { x_em = em; x_indices = [] } in
  pf "/* Generated by psc from PS module %s. */\n" em.Elab.em_name;
  pf "#include <stdlib.h>\n#include <stdio.h>\n#include <math.h>\n\n";
  pf "#define PS_MIN(a, b) ((a) < (b) ? (a) : (b))\n";
  pf "#define PS_MAX(a, b) ((a) > (b) ? (a) : (b))\n";
  pf "/* Integer division with the interpreter's semantics: a zero divisor\n";
  pf "   traps (the raw C operators are undefined there), the quotient\n";
  pf "   truncates toward zero and the remainder takes the dividend's sign\n";
  pf "   (C99 semantics, matching OCaml's / and mod). */\n";
  pf "static inline int PS_DIV(int a, int b) {\n";
  pf "  if (b == 0) { fprintf(stderr, \"ps runtime error: division by zero\\n\"); exit(2); }\n";
  pf "  return a / b;\n}\n";
  pf "static inline int PS_MOD(int a, int b) {\n";
  pf "  if (b == 0) { fprintf(stderr, \"ps runtime error: mod by zero\\n\"); exit(2); }\n";
  pf "  return a %% b;\n}\n";
  pf "/* Euclidean remainder: virtual-dimension subscripts must land inside\n";
  pf "   the window even for negative relative indices (sec 3.4). */\n";
  pf "#define PS_WRAP(i, w) ((((i) %% (w)) + (w)) %% (w))\n\n";
  (* Enumerations. *)
  List.iter
    (fun (ename, ctors) ->
      pf "/* enumeration %s */\n" ename;
      List.iteri (fun i c -> pf "#define %s %d\n" (c_name c) i) ctors)
    em.Elab.em_enums;
  (* Signature: inputs (arrays const), then result out-parameters. *)
  let param_sig (d : Elab.data) =
    let ct = ctype_str (ctype_of_ty d.Elab.d_ty) in
    match Stypes.dims d.Elab.d_ty with
    | [] ->
      if d.Elab.d_kind = Elab.Output then
        Printf.sprintf "%s *%s" ct (c_name d.Elab.d_name)
      else Printf.sprintf "%s %s" ct (c_name d.Elab.d_name)
    | _ ->
      let const = if d.Elab.d_kind = Elab.Input then "const " else "" in
      Printf.sprintf "%s%s *%s" const ct (c_name d.Elab.d_name)
  in
  let params =
    List.map param_sig em.Elab.em_params @ List.map param_sig em.Elab.em_results
  in
  pf "void %s(\n    %s)\n{\n" (c_name em.Elab.em_name) (String.concat ",\n    " params);
  (* Array layouts: inputs, results, locals. *)
  let all = em.Elab.em_params @ em.Elab.em_results @ em.Elab.em_locals in
  let layouts = List.filter_map (layout_of ctx windows) all in
  List.iter (emit_layout buf) layouts;
  (* Scalar locals. *)
  List.iter
    (fun (d : Elab.data) ->
      if Stypes.dims d.Elab.d_ty = [] then
        pf "  %s %s;\n" (ctype_str (ctype_of_ty d.Elab.d_ty)) (c_name d.Elab.d_name))
    em.Elab.em_locals;
  (* Local array allocation. *)
  List.iter
    (fun (d : Elab.data) ->
      match Stypes.dims d.Elab.d_ty with
      | [] -> ()
      | _ ->
        let nm = c_name d.Elab.d_name in
        pf "  %s *%s = (%s *)calloc(%s_size, sizeof(%s));\n"
          (ctype_str (ctype_of_ty d.Elab.d_ty))
          nm
          (ctype_str (ctype_of_ty d.Elab.d_ty))
          nm
          (ctype_str (ctype_of_ty d.Elab.d_ty)))
    em.Elab.em_locals;
  pf "\n";
  let st = (em, windows, fc) in
  List.iter
    (emit_descriptor st buf ~depth:0 ~indent:2 ~par:true ~bound:[] ~policy)
    fc;
  pf "\n";
  List.iter
    (fun (d : Elab.data) ->
      match Stypes.dims d.Elab.d_ty with
      | [] -> ()
      | _ -> pf "  free(%s);\n" (c_name d.Elab.d_name))
    em.Elab.em_locals;
  (* The _AT macros are function-scoped conceptually; undef for hygiene. *)
  List.iter (fun al -> pf "  #undef %s_AT\n" al.al_name) layouts;
  pf "}\n";
  Buffer.contents buf

(* A standalone main() that fills inputs deterministically and prints a
   checksum of every result — used to validate the generated C against
   the interpreter. *)
let emit_main ?(windows = []) ?policy (em : Elab.emodule)
    (fc : Ps_sched.Flowchart.t) ~(scalars : (string * int) list) : string =
  let kernel = emit_module ~windows ?policy em fc in
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  Buffer.add_string buf kernel;
  pf "\n#include <stdio.h>\n\n";
  pf "/* Deterministic fill shared with the interpreter harness. */\n";
  pf "static double ps_fill(long i) {\n";
  pf "  unsigned long x = (unsigned long)i * 2654435761u + 12345u;\n";
  pf "  return (double)(x %% 1000u) / 1000.0;\n}\n\n";
  pf "int main(void) {\n";
  (* Scalar inputs. *)
  List.iter
    (fun (d : Elab.data) ->
      match Stypes.dims d.Elab.d_ty with
      | [] ->
        let v =
          match List.assoc_opt d.Elab.d_name scalars with
          | Some v -> v
          | None -> fail "emit_main: no value for scalar input %s" d.Elab.d_name
        in
        pf "  int %s = %d;\n" (c_name d.Elab.d_name) v
      | _ -> ())
    em.Elab.em_params;
  let ctx = { x_em = em; x_indices = [] } in
  (* Array inputs and outputs. *)
  let emit_alloc (d : Elab.data) ~fill =
    match Stypes.dims d.Elab.d_ty with
    | [] -> ()
    | dims ->
      let nm = c_name d.Elab.d_name in
      let exts =
        List.map
          (fun (sr : Stypes.subrange) ->
            Printf.sprintf "((%s) - (%s) + 1)"
              (expr_to_c ctx sr.Stypes.sr_hi)
              (expr_to_c ctx sr.Stypes.sr_lo))
          dims
      in
      pf "  size_t %s_total = (size_t)%s;\n" nm (String.concat " * (size_t)" exts);
      pf "  %s *%s = (%s *)calloc(%s_total, sizeof(%s));\n"
        (ctype_str (ctype_of_ty d.Elab.d_ty)) nm
        (ctype_str (ctype_of_ty d.Elab.d_ty)) nm
        (ctype_str (ctype_of_ty d.Elab.d_ty));
      if fill then begin
        pf "  for (size_t q = 0; q < %s_total; q++) %s[q] = (%s)ps_fill((long)q);\n"
          nm nm (ctype_str (ctype_of_ty d.Elab.d_ty))
      end
  in
  List.iter (emit_alloc ~fill:true) em.Elab.em_params;
  List.iter (emit_alloc ~fill:false) em.Elab.em_results;
  (* Scalar results live in main and are passed by address. *)
  List.iter
    (fun (d : Elab.data) ->
      if Stypes.dims d.Elab.d_ty = [] then
        pf "  %s %s = 0;\n" (ctype_str (ctype_of_ty d.Elab.d_ty)) (c_name d.Elab.d_name))
    em.Elab.em_results;
  (* Call. *)
  let args =
    List.map (fun (d : Elab.data) -> c_name d.Elab.d_name) em.Elab.em_params
    @ List.map
        (fun (d : Elab.data) ->
          let nm = c_name d.Elab.d_name in
          if Stypes.dims d.Elab.d_ty = [] then "&" ^ nm else nm)
        em.Elab.em_results
  in
  pf "  %s(%s);\n" (c_name em.Elab.em_name) (String.concat ", " args);
  (* Checksums. *)
  List.iter
    (fun (d : Elab.data) ->
      let nm = c_name d.Elab.d_name in
      match Stypes.dims d.Elab.d_ty with
      | [] -> pf "  printf(\"%s %%.17g\\n\", (double)%s);\n" d.Elab.d_name nm
      | _ ->
        pf "  { double acc = 0.0; for (size_t q = 0; q < %s_total; q++) acc += (double)%s[q];\n"
          nm nm;
        pf "    printf(\"%s %%.17g\\n\", acc); }\n" d.Elab.d_name)
    em.Elab.em_results;
  pf "  return 0;\n}\n";
  Buffer.contents buf
