(* Dependency-graph construction from an elaborated module (paper §3.1,
   Fig. 3 for the Relaxation example). *)

open Ps_sem
open Dgraph

let dims_of em name = Stypes.dims (Elab.data_exn em name).Elab.d_ty

let is_data em name = Elab.find_data em name <> None

(* Classify a reference [name[subs]] made inside equation [q].  Missing
   trailing subscripts are whole-slice dimensions. *)
let classify_ref em (q : Elab.eq) name (subs : Ps_lang.Ast.expr list) :
    Label.sub_exp array =
  let dims = dims_of em name in
  let n = List.length dims in
  let arr = Array.make n Label.Slice in
  List.iteri
    (fun i sub -> if i < n then arr.(i) <- Label.classify q (List.nth dims i) sub)
    subs;
  arr

(* Collect every data reference in an expression: (name, subscripts).
   A bare variable is a reference with no subscripts; subscript
   expressions are themselves searched (e.g. [A[B[I], J]] uses B). *)
let rec collect_refs em (e : Ps_lang.Ast.expr) acc =
  let open Ps_lang.Ast in
  match e.e with
  | Int _ | Real _ | Bool _ -> acc
  | Var x -> if is_data em x then (x, []) :: acc else acc
  | Index ({ e = Var x; _ }, subs) when is_data em x ->
    let acc = List.fold_left (fun acc s -> collect_refs em s acc) acc subs in
    (x, subs) :: acc
  | Index (b, subs) ->
    let acc = collect_refs em b acc in
    List.fold_left (fun acc s -> collect_refs em s acc) acc subs
  | Field (b, _) -> collect_refs em b acc
  | Call (_, args) -> List.fold_left (fun acc a -> collect_refs em a acc) acc args
  | Unop (_, a) -> collect_refs em a acc
  | Binop (_, a, b) -> collect_refs em b (collect_refs em a acc)
  | If (c, t, f) -> collect_refs em f (collect_refs em t (collect_refs em c acc))

let def_subs em (q : Elab.eq) (df : Elab.def) : Label.sub_exp array =
  let dims = dims_of em df.Elab.df_data in
  let classify_lhs (sub : Elab.lhs_sub) (sr : Stypes.subrange) =
    match sub with
    | Elab.Sub_index ix ->
      let target_pos =
        let rec find i = function
          | [] -> 0
          | j :: rest -> if String.equal j.Elab.ix_var ix.Elab.ix_var then i else find (i + 1) rest
        in
        find 0 q.Elab.q_indices
      in
      Label.Affine { var = ix.Elab.ix_var; offset = 0; target_pos }
    | Elab.Sub_fixed e -> (
      match Label.classify q sr e with
      | Label.Affine _ as a -> a
      | c -> c)
  in
  let n = List.length dims in
  let arr = Array.make n Label.Slice in
  List.iteri
    (fun i sub -> if i < n then arr.(i) <- classify_lhs sub (List.nth dims i))
    df.Elab.df_subs;
  arr

(* Variables appearing in the subrange bounds of a data item's dimensions. *)
let bound_vars em name =
  let dims = dims_of em name in
  List.concat_map
    (fun (sr : Stypes.subrange) ->
      Ps_lang.Ast.free_vars sr.Stypes.sr_lo @ Ps_lang.Ast.free_vars sr.Stypes.sr_hi)
    dims
  |> List.sort_uniq String.compare
  |> List.filter (is_data em)

let build (em : Elab.emodule) : t =
  Ps_obs.Trace.with_span "graph.build" @@ fun () ->
  let datas = em.Elab.em_params @ em.Elab.em_results @ em.Elab.em_locals in
  let data_nodes = List.map (fun (d : Elab.data) -> Data d.Elab.d_name) datas in
  let eq_nodes = List.map (fun (q : Elab.eq) -> Eq q.Elab.q_id) em.Elab.em_eqs in
  let edges = ref [] in
  let add e = edges := e :: !edges in
  (* Equation edges. *)
  List.iter
    (fun (q : Elab.eq) ->
      (* Uses: every data referenced in the RHS feeds the equation. *)
      let refs = collect_refs em q.Elab.q_rhs [] in
      List.iter
        (fun (name, subs) ->
          add
            { e_src = Data name;
              e_dst = Eq q.Elab.q_id;
              e_kind = Use;
              e_subs = classify_ref em q name subs })
        (List.rev refs);
      (* Defs: the equation feeds the data items on its left-hand sides. *)
      List.iter
        (fun (df : Elab.def) ->
          add
            { e_src = Eq q.Elab.q_id;
              e_dst = Data df.Elab.df_data;
              e_kind = Def;
              e_subs = def_subs em q df })
        q.Elab.q_defs;
      (* Bound edges into the equation: loop bounds must be available
         before the equation's loops run. *)
      List.iter
        (fun (ix : Elab.index) ->
          let vars =
            Ps_lang.Ast.free_vars ix.Elab.ix_range.Stypes.sr_lo
            @ Ps_lang.Ast.free_vars ix.Elab.ix_range.Stypes.sr_hi
          in
          List.iter
            (fun v ->
              if is_data em v then
                add
                  { e_src = Data v; e_dst = Eq q.Elab.q_id; e_kind = Bound;
                    e_subs = [||] })
            (List.sort_uniq String.compare vars))
        q.Elab.q_indices)
    em.Elab.em_eqs;
  (* Bound edges between data items: "a data dependency edge is drawn from
     M to InitialA, to A, and to NewA, since the bounds of these arrays
     depend on M" (§3.1). *)
  List.iter
    (fun (d : Elab.data) ->
      List.iter
        (fun v ->
          add { e_src = Data v; e_dst = Data d.Elab.d_name; e_kind = Bound; e_subs = [||] })
        (bound_vars em d.Elab.d_name))
    datas;
  (* Deduplicate Bound edges and scalar Use edges (a variable may occur
     several times in bounds or in one right-hand side); array Use edges
     stay distinct per reference since each carries its own subscripts. *)
  let seen = Hashtbl.create 64 in
  let edges =
    List.filter
      (fun e ->
        match e.e_kind with
        | Bound | Use when Array.length e.e_subs = 0 ->
          let key = (e.e_kind, e.e_src, e.e_dst) in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end
        | Bound | Use | Def -> true)
      (List.rev !edges)
  in
  { g_nodes = data_nodes @ eq_nodes; g_edges = edges; g_module = em }
