(* Edge label attributes (paper Fig. 2).

   Every edge into or out of an array data node carries, per dimension of
   that array, the class of the subscript expression used there:

   - "I"              — the aligned index variable itself;
   - "I - constant"   — the index variable plus a constant offset (the
                        paper's class covers negative offsets; we keep the
                        signed offset and let the scheduler decide);
   - bound constants  — a subscript provably equal to the dimension's lower
                        or upper declared bound, e.g. [A[maxK]]; the upper
                        bound case drives virtual-dimension rule 2 (§3.4);
   - whole slices     — the dimension is not subscripted at all;
   - anything else    — "any other expression".

   The "position in target" attribute of Fig. 2 is [target_pos]: the index
   of the variable within the equation's loop-index list. *)

open Ps_sem

type sub_exp =
  | Affine of { var : string; offset : int; target_pos : int }
      (* var + offset, where var is the equation index at [target_pos] *)
  | Linear of {
      var : string;
      coeff : int;
      target_pos : int;
      params : (string * int) list;  (* scalar-parameter terms, sorted *)
      const : int;
    }
      (* coeff*var + Σ ci*Pi + const with (coeff, params) ≠ (1, []) — the
         symbolic affine class the distance analyzer solves over; Fig. 2
         would call it "other" *)
  | Const_low                (* equals the dimension's lower bound *)
  | Const_mid of int         (* equals the lower bound + a positive constant *)
  | Const_high               (* equals the dimension's upper bound *)
  | Slice                    (* dimension left unsubscripted *)
  | Opaque                   (* any other expression *)

(* Classify one subscript expression [e] appearing at a dimension with
   subrange [sr], inside equation [q]. *)
let classify (q : Elab.eq) (sr : Stypes.subrange) (e : Ps_lang.Ast.expr) : sub_exp =
  let index_pos v =
    let rec find i = function
      | [] -> None
      | ix :: rest ->
        if String.equal ix.Elab.ix_var v then Some i else find (i + 1) rest
    in
    find 0 q.Elab.q_indices
  in
  match Linexpr.of_expr e with
  | None -> Opaque
  | Some l -> (
    (* Split the linear form into index-variable terms and the rest. *)
    let index_terms, param_terms =
      List.partition (fun (v, _) -> index_pos v <> None) l.Linexpr.terms
    in
    match index_terms with
    | [ (v, 1) ] when param_terms = [] ->
      let target_pos = Option.get (index_pos v) in
      Affine { var = v; offset = l.Linexpr.const; target_pos }
    | [ (v, a) ] ->
      (* A single index variable with a non-unit coefficient or mixed
         with scalar parameters: the symbolic class the distance
         analyzer can still solve over. *)
      let target_pos = Option.get (index_pos v) in
      Linear
        { var = v;
          coeff = a;
          target_pos;
          params = param_terms;
          const = l.Linexpr.const }
    | [] -> (
      (* No index variables: compare against the declared bounds. *)
      let diff bound =
        match Linexpr.of_expr bound with
        | Some b -> Linexpr.diff_const l b
        | None -> None
      in
      if diff sr.Stypes.sr_lo = Some 0 then Const_low
      else if diff sr.Stypes.sr_hi = Some 0 then Const_high
      else (
        match diff sr.Stypes.sr_lo with
        | Some k when k > 0 -> Const_mid k
        | _ -> Opaque))
    | _ -> Opaque)

let is_identity = function Affine { offset = 0; _ } -> true | _ -> false

let is_minus_const = function Affine { offset; _ } -> offset < 0 | _ -> false

let offset = function Affine { offset; _ } -> Some offset | _ -> None

(* The symbolic affine view of an aligned subscript: [a*var + (params, const)].
   The Affine class is the [a = 1], no-parameter special case. *)
let linear_parts = function
  | Affine { var; offset; target_pos } ->
    Some (var, 1, target_pos, { Linexpr.const = offset; terms = [] })
  | Linear { var; coeff; target_pos; params; const } ->
    Some (var, coeff, target_pos, { Linexpr.const; terms = params })
  | _ -> None

let to_linexpr s =
  match linear_parts s with
  | Some (var, coeff, _, rest) ->
    Some (Linexpr.add (Linexpr.scale coeff (Linexpr.of_var var)) rest)
  | None -> None

let pp ppf = function
  | Affine { var; offset = 0; _ } -> Fmt.pf ppf "%s" var
  | Affine { var; offset; _ } when offset < 0 -> Fmt.pf ppf "%s - %d" var (-offset)
  | Affine { var; offset; _ } -> Fmt.pf ppf "%s + %d" var offset
  | Linear _ as s ->
    (match to_linexpr s with
     | Some l -> Linexpr.pp ppf l
     | None -> Fmt.string ppf "<linear>")
  | Const_low -> Fmt.string ppf "<low bound>"
  | Const_mid k -> Fmt.pf ppf "<low bound + %d>" k
  | Const_high -> Fmt.string ppf "<high bound>"
  | Slice -> Fmt.string ppf "<slice>"
  | Opaque -> Fmt.string ppf "<other>"

let to_string s = Fmt.str "%a" pp s

(* The paper's three-way classification, for display (Fig. 2). *)
let class_name = function
  | Affine { offset = 0; _ } -> "I"
  | Affine { offset; _ } when offset < 0 -> "I - constant"
  | Affine _ -> "other (I + constant)"
  | Linear _ -> "other (linear)"
  | Const_low -> "other (lower bound)"
  | Const_mid _ -> "other (lower bound + constant)"
  | Const_high -> "other (upper bound)"
  | Slice -> "slice"
  | Opaque -> "other"
