(** Edge label attributes (paper Fig. 2).

    Each edge touching an array data node carries, per dimension, the
    class of the subscript expression used at that dimension. *)

type sub_exp =
  | Affine of { var : string; offset : int; target_pos : int }
      (** [var + offset], where [var] is the equation index at
          [target_pos] — the paper's "I" (offset 0) and "I - constant"
          (offset < 0) classes, plus "I + constant" (offset > 0), which
          step 3 of the scheduler rejects *)
  | Linear of {
      var : string;
      coeff : int;
      target_pos : int;
      params : (string * int) list;
      const : int;
    }
      (** the symbolic affine class [coeff*var + Σ ci*Pi + const] over one
          loop index and the module's scalar parameters, with
          [(coeff, params) ≠ (1, [])]; Fig. 2 calls it "other", but the
          dependence-distance analyzer can still solve over it *)
  | Const_low   (** provably equals the dimension's lower bound *)
  | Const_mid of int
      (** provably equals the lower bound plus a positive constant
          (boundary planes above the first, e.g. [F[1]] of Fibonacci);
          the write-side window rules need the exact distance *)
  | Const_high  (** provably equals the upper bound, e.g. [A[maxK]];
                    drives virtual-dimension rule 2 (§3.4) *)
  | Slice       (** dimension left unsubscripted (whole-slice reference) *)
  | Opaque      (** "any other expression" *)

val classify :
  Ps_sem.Elab.eq -> Ps_sem.Stypes.subrange -> Ps_lang.Ast.expr -> sub_exp
(** Classify one subscript appearing at a dimension with the given
    subrange, inside the given equation. *)

val is_identity : sub_exp -> bool
(** The class "I". *)

val is_minus_const : sub_exp -> bool
(** The class "I - constant" with a non-zero offset. *)

val offset : sub_exp -> int option
(** The affine offset, when there is one. *)

val linear_parts :
  sub_exp -> (string * int * int * Ps_sem.Linexpr.t) option
(** [(var, coeff, target_pos, rest)] for the aligned classes [Affine]
    (coeff 1, constant rest) and [Linear]; [rest] collects the
    parameter terms and the constant. *)

val to_linexpr : sub_exp -> Ps_sem.Linexpr.t option
(** The full symbolic form [coeff*var + rest] of an aligned subscript. *)

val pp : sub_exp Fmt.t

val to_string : sub_exp -> string

val class_name : sub_exp -> string
(** The paper's Fig. 2 vocabulary ("I", "I - constant", "other", ...). *)
