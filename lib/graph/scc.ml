(* Maximal strongly connected components via Tarjan's algorithm, returned
   as the condensation in topological order (producers before consumers).
   The scheduler repeatedly re-runs this on edge-filtered subgraphs
   (paper §3.3, steps 4 and 7). *)

open Dgraph

(* A subgraph: a node subset together with the surviving edges (both
   endpoints inside the subset). *)
type subgraph = {
  sg_nodes : node list;  (* in stable (declaration) order *)
  sg_edges : edge list;
}

let full_subgraph (g : t) = { sg_nodes = nodes g; sg_edges = edges g }

let restrict (sg : subgraph) (keep : NodeSet.t) =
  { sg_nodes = List.filter (fun n -> NodeSet.mem n keep) sg.sg_nodes;
    sg_edges =
      List.filter
        (fun e -> NodeSet.mem e.e_src keep && NodeSet.mem e.e_dst keep)
        sg.sg_edges }

let remove_edges (sg : subgraph) (dead : edge list) =
  { sg with sg_edges = List.filter (fun e -> not (List.memq e dead)) sg.sg_edges }

type component = {
  c_nodes : node list;   (* in stable order *)
  c_edges : edge list;   (* intra-component edges *)
}

(* Tarjan over the subgraph.  Tarjan emits an SCC only after every SCC it
   can reach has been emitted, i.e. consumers first; reversing the output
   gives producers-first (topological) order. *)
let components (sg : subgraph) : component list =
  Ps_obs.Trace.with_span "graph.scc" @@ fun () ->
  let adj = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let cur = try Hashtbl.find adj e.e_src with Not_found -> [] in
      Hashtbl.replace adj e.e_src (e.e_dst :: cur))
    sg.sg_edges;
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    let succs = try Hashtbl.find adj v with Not_found -> [] in
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w && Hashtbl.find on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      succs;
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      (* v is the root of an SCC: pop it. *)
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.replace on_stack w false;
          if Node.equal w v then w :: acc else pop (w :: acc)
      in
      let comp = pop [] in
      sccs := comp :: !sccs
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) sg.sg_nodes;
  (* !sccs is already producers-first: Tarjan emits consumers first and we
     prepended each component as it completed. *)
  List.map
    (fun comp_nodes ->
      let comp_set = NodeSet.of_list comp_nodes in
      let c_nodes = List.filter (fun n -> NodeSet.mem n comp_set) sg.sg_nodes in
      let c_edges =
        List.filter
          (fun e -> NodeSet.mem e.e_src comp_set && NodeSet.mem e.e_dst comp_set)
          sg.sg_edges
      in
      { c_nodes; c_edges })
    !sccs

let component_subgraph (sg : subgraph) (c : component) =
  let keep = NodeSet.of_list c.c_nodes in
  restrict sg keep
