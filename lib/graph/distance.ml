(* Symbolic dependence distances between a defining and a using
   subscript of the same array dimension.

   The paper's Fig. 2 classifier stops at "I" and "I - constant": any
   other subscript kills loop-level parallelism for the whole nest.
   This analyzer solves the aligned classes [Label.Affine] and
   [Label.Linear] — i.e. subscripts of the form [a*I + Σ ci*Pi + c]
   over one loop index and the module's scalar parameters — for the
   iteration distance between the write and the read:

     def writes element  a_d*i + r_d   at iteration i
     use reads element   a_u*j + r_u   at iteration j

   A dependence exists when the two hit the same element, so the
   distance j - i is the solution of [a_d*i + r_d = a_u*j + r_u].
   Signs follow the verifier's convention: positive means the read
   happens a later iteration than the write (forward, legal in an
   iterative loop); the scheduler's group partition needs the exact
   value, the inspector/executor path its parameter form.

   Three classic tests decide the lattice point:

   - exact solve     — equal coefficients, constant difference k:
                       a | k gives the exact distance k/a, otherwise
                       there is no integer solution at all;
   - GCD test        — different coefficients a_d, a_u: an integer
                       solution requires gcd(a_d, a_u) to divide the
                       constant difference;
   - Banerjee bounds — value ranges of the two subscripts over the
                       loop bounds provably disjoint (via the bounded
                       Farkas certificate in [Linexpr.prove_nonneg]). *)

open Ps_sem

type t =
  | Exact of int          (* distance is this known constant *)
  | Form of Linexpr.t     (* distance is this parameter expression *)
  | Independent           (* provably never the same element *)
  | Unknown               (* the solver cannot classify the pair *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Non-emptiness facts [hi - lo >= 0] of declared subranges, the
   assumptions the Farkas certificate search works from. *)
let facts (srs : Stypes.subrange list) : Linexpr.t list =
  List.filter_map
    (fun (sr : Stypes.subrange) ->
      match Linexpr.of_expr sr.Stypes.sr_lo, Linexpr.of_expr sr.Stypes.sr_hi with
      | Some lo, Some hi -> Some (Linexpr.sub hi lo)
      | _ -> None)
    srs

let bounds_of_subrange (sr : Stypes.subrange) : (Linexpr.t * Linexpr.t) option =
  match Linexpr.of_expr sr.Stypes.sr_lo, Linexpr.of_expr sr.Stypes.sr_hi with
  | Some lo, Some hi -> Some (lo, hi)
  | _ -> None

(* The value range of [a*I + r] for I in [lo, hi]. *)
let value_range a (lo, hi) r =
  if a >= 0 then (Linexpr.add (Linexpr.scale a lo) r, Linexpr.add (Linexpr.scale a hi) r)
  else (Linexpr.add (Linexpr.scale a hi) r, Linexpr.add (Linexpr.scale a lo) r)

let solve ?bounds ?(assumptions = []) ~(def : Label.sub_exp)
    ~(use : Label.sub_exp) () : t =
  match Label.linear_parts def, Label.linear_parts use with
  | Some (_, ad, _, rd), Some (_, au, _, ru) when ad <> 0 && au <> 0 ->
    let delta = Linexpr.sub rd ru in
    let exact_or_form () =
      if ad = au then
        match Linexpr.const_value delta with
        | Some k -> if k mod ad = 0 then Exact (k / ad) else Independent
        | None ->
          if ad = 1 then Form delta
          else if ad = -1 then Form (Linexpr.neg delta)
          else Unknown
      else if
        (* GCD test: a_d*i - a_u*j = -(r_d - r_u) needs gcd | delta. *)
        match Linexpr.const_value delta with
        | Some k -> k mod gcd ad au <> 0
        | None -> false
      then Independent
      else Unknown
    in
    (match exact_or_form () with
     | Unknown -> (
       (* Banerjee-style fallback: the two value ranges over the loop
          bounds provably never meet. *)
       match bounds with
       | None -> Unknown
       | Some b ->
         let dmin, dmax = value_range ad b rd in
         let umin, umax = value_range au b ru in
         let gt x y =
           Linexpr.prove_nonneg ~assumptions
             (Linexpr.add_const (-1) (Linexpr.sub x y))
         in
         if gt dmin umax || gt umin dmax then Independent else Unknown)
     | r -> r)
  | _ -> Unknown

(* The modulus of the group partition induced by a set of carried
   distances: iterations i and i + d always land in the same residue
   class mod d, so classes mod gcd(d1, ..., dk) are mutually
   independent and a DOALL over the classes (sequential within each) is
   legal.  [Some 0] means no carried dependence at all (pure DOALL);
   [None] means some distance is not an exact constant. *)
let group_modulus (ds : t list) : int option =
  List.fold_left
    (fun acc d ->
      match acc, d with
      | None, _ -> None
      | Some g, Exact k -> Some (gcd g k)
      | Some g, Independent -> Some g
      | Some _, (Form _ | Unknown) -> None)
    (Some 0) ds

let pp ppf = function
  | Exact k -> Fmt.pf ppf "%d" k
  | Form l -> Linexpr.pp ppf l
  | Independent -> Fmt.string ppf "independent"
  | Unknown -> Fmt.string ppf "unknown"

let to_string d = Fmt.str "%a" pp d
