(** Symbolic dependence-distance analysis over aligned subscript pairs.

    Solves [a_d*i + r_d = a_u*j + r_u] for the iteration distance
    [j - i] between a write and a read of the same array dimension,
    where both subscripts are in the [Label.Affine] / [Label.Linear]
    classes.  Positive distances are forward (read after write), the
    verifier's convention.  Classification uses an exact linear solve,
    the GCD test, and a Banerjee-style bounds (disjointness) test. *)

type t =
  | Exact of int          (** distance is this known constant *)
  | Form of Ps_sem.Linexpr.t
      (** distance is this expression over scalar parameters *)
  | Independent           (** provably never the same element *)
  | Unknown               (** the solver cannot classify the pair *)

val gcd : int -> int -> int
(** Non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val facts : Ps_sem.Stypes.subrange list -> Ps_sem.Linexpr.t list
(** Non-emptiness facts [hi - lo >= 0] of the given subranges, suitable
    as [assumptions] for the bounds test. *)

val bounds_of_subrange :
  Ps_sem.Stypes.subrange -> (Ps_sem.Linexpr.t * Ps_sem.Linexpr.t) option
(** The subrange's bounds as linear forms, when they are linear. *)

val solve :
  ?bounds:Ps_sem.Linexpr.t * Ps_sem.Linexpr.t ->
  ?assumptions:Ps_sem.Linexpr.t list ->
  def:Label.sub_exp ->
  use:Label.sub_exp ->
  unit ->
  t
(** The dependence distance from the defining subscript to the using
    subscript.  [bounds] are the shared loop index's bounds (enabling
    the disjointness test), [assumptions] the subrange facts. *)

val group_modulus : t list -> int option
(** The gcd of a set of exact carried distances — the modulus of the
    residue-class partition they all respect.  [Some 0] when the list
    proves no carried dependence; [None] when a distance is symbolic or
    unknown. *)

val pp : t Fmt.t

val to_string : t -> string
