(* Single-assignment checking.

   PS is a single-assignment language: every non-input data item must be
   defined, and no element may be defined by two equations.  Slice
   definitions such as [A[1] = ...] alongside [A[K,I,J] = ...] with
   [K = 2 .. maxK] make exact checking symbolic; we decide what we can
   with linear forms over the module inputs and report the rest as
   warnings rather than silently accepting or rejecting. *)

module Diag = Ps_diag.Diag

type diagnostic = Diag.t

let diag = Diag.diag

(* Symbolic interval of one subscript position of one definition. *)
type slice_pos =
  | Point of Linexpr.t                  (* Sub_fixed with a linear value *)
  | Range of Linexpr.t * Linexpr.t      (* Sub_index over [lo, hi] *)
  | Unknown                             (* non-linear fixed subscript *)

let pos_of_sub (s : Elab.lhs_sub) : slice_pos =
  match s with
  | Elab.Sub_index ix -> (
    match
      Linexpr.of_expr ix.Elab.ix_range.Stypes.sr_lo,
      Linexpr.of_expr ix.Elab.ix_range.Stypes.sr_hi
    with
    | Some lo, Some hi -> Range (lo, hi)
    | _ -> Unknown)
  | Elab.Sub_fixed e -> (
    match Linexpr.of_expr e with Some v -> Point v | None -> Unknown)

(* [provably_disjoint a b] holds when the two subscript sets cannot
   intersect, for any value of the module inputs consistent with the
   bounds. *)
let provably_disjoint a b =
  let lt x y =
    (* x < y provable: y - x is a known positive constant *)
    match Linexpr.diff_const y x with Some d -> d > 0 | None -> false
  in
  match a, b with
  | Point x, Point y -> (
    match Linexpr.diff_const x y with Some d -> d <> 0 | None -> false)
  | Point x, Range (lo, hi) | Range (lo, hi), Point x -> lt x lo || lt hi x
  | Range (lo1, hi1), Range (lo2, hi2) -> lt hi1 lo2 || lt hi2 lo1
  | Unknown, _ | _, Unknown -> false

(* All definitions of one data item, as (equation, subscript positions).
   A whole-array assignment has fewer subscripts than dimensions; missing
   positions cover the full declared range. *)
let defs_of em name =
  let dims =
    match Elab.find_data em name with
    | Some d -> Stypes.dims d.Elab.d_ty
    | None -> []
  in
  let full_range p =
    match List.nth_opt dims p with
    | Some (sr : Stypes.subrange) -> (
      match Linexpr.of_expr sr.Stypes.sr_lo, Linexpr.of_expr sr.Stypes.sr_hi with
      | Some lo, Some hi -> Range (lo, hi)
      | _ -> Unknown)
    | None -> Unknown
  in
  List.filter_map
    (fun (q : Elab.eq) ->
      match
        List.find_opt (fun d -> String.equal d.Elab.df_data name) q.Elab.q_defs
      with
      | Some d ->
        let given = List.map pos_of_sub d.Elab.df_subs in
        let missing =
          List.init
            (max 0 (List.length dims - List.length given))
            (fun i -> full_range (List.length given + i))
        in
        Some (q, given @ missing, d.Elab.df_path)
      | None -> None)
    em.Elab.em_eqs

let check_overlap em (data : Elab.data) defs : diagnostic list =
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  List.filter_map
    (fun (((q1 : Elab.eq), p1, path1), ((q2 : Elab.eq), p2, path2)) ->
      let disjoint_somewhere =
        path1 <> path2 || List.exists2 provably_disjoint p1 p2
      in
      if disjoint_somewhere then None
      else
        (* Not provably disjoint.  If the two definitions are pointwise
           un-distinguishable (all positions full or equal), that is a hard
           single-assignment violation; otherwise a warning. *)
        let definitely_same =
          List.for_all2
            (fun a b ->
              match a, b with
              | Point x, Point y -> Linexpr.equal x y
              | Range (l1, h1), Range (l2, h2) ->
                Linexpr.equal l1 l2 && Linexpr.equal h1 h2
              | _ -> false)
            p1 p2
        in
        let code =
          if definitely_same then Diag.Conflicting_definition
          else Diag.Possible_overlap
        in
        Some
          (diag code q2.Elab.q_loc
             "%s and %s may define overlapping elements of %s (module %s)"
             q1.Elab.q_name q2.Elab.q_name data.Elab.d_name em.Elab.em_name))
    (pairs defs)

(* Non-emptiness facts (hi - lo >= 0) of the module's subranges, used to
   discharge containment between symbolic slices. *)
let range_facts em =
  let of_sr (sr : Stypes.subrange) =
    match Linexpr.of_expr sr.Stypes.sr_lo, Linexpr.of_expr sr.Stypes.sr_hi with
    | Some lo, Some hi -> Some (Linexpr.sub hi lo)
    | _ -> None
  in
  List.filter_map (fun (_, sr) -> of_sr sr) em.Elab.em_subranges
  @ List.concat_map
      (fun (d : Elab.data) -> List.filter_map of_sr (Stypes.dims d.Elab.d_ty))
      (em.Elab.em_params @ em.Elab.em_results @ em.Elab.em_locals)

let check_coverage em (data : Elab.data) defs : diagnostic list =
  let facts = range_facts em in
  let provably_le a b =
    (* a <= b under the range facts *)
    Linexpr.prove_nonneg ~assumptions:facts (Linexpr.sub b a)
  in
  let dims = Stypes.dims data.Elab.d_ty in
  if dims = [] then []  (* scalars: existence of a def suffices *)
  else
    (* For each dimension position, the union of definition ranges must
       cover the declared extent.  We verify the common patterns exactly:
       every definition full-range at that position, or a partition of the
       extent into points/ranges that chain without gaps. *)
    let declared p =
      let sr = List.nth dims p in
      match Linexpr.of_expr sr.Stypes.sr_lo, Linexpr.of_expr sr.Stypes.sr_hi with
      | Some lo, Some hi -> Some (lo, hi)
      | _ -> None
    in
    let check_pos p =
      match declared p with
      | None -> []
      | Some (dlo, dhi) ->
        let pieces =
          List.map
            (fun (_, poss, _) ->
              match List.nth poss p with
              | Point x -> Some (x, x)
              | Range (lo, hi) -> Some (lo, hi)
              | Unknown -> None)
            defs
        in
        if List.exists Option.is_none pieces then
          [ diag Diag.Coverage_unverified data.Elab.d_loc
              "coverage of %s, dimension %d, could not be verified" data.Elab.d_name
              (p + 1) ]
        else
          let pieces = List.filter_map Fun.id pieces in
          (* Drop pieces provably contained in another piece: several
             definitions may use the same range at this position (they
             partition some other dimension), or a point may lie within a
             full range. *)
          let contained (lo, hi) (lo', hi') =
            provably_le lo' lo && provably_le hi hi'
          in
          let rec dedup kept = function
            | [] -> List.rev kept
            | p :: rest ->
              if
                List.exists (contained p) kept
                || List.exists (contained p) rest
              then dedup kept rest
              else dedup (p :: kept) rest
          in
          let pieces = dedup [] pieces in
          (* Sort pieces by provable lower bound order; verify chaining. *)
          let sorted =
            List.sort
              (fun (lo1, _) (lo2, _) ->
                match Linexpr.diff_const lo1 lo2 with
                | Some d -> compare d 0
                | None -> 0)
              pieces
          in
          let rec chain = function
            | [] -> Error "no definitions"
            | [ (_, hi) ] -> Ok hi
            | (_, hi1) :: ((lo2, _) :: _ as rest) ->
              if Linexpr.diff_const lo2 hi1 = Some 1 then chain rest
              else if
                (* overlapping or duplicated full ranges also cover *)
                match Linexpr.diff_const lo2 hi1 with
                | Some d -> d <= 1
                | None -> false
              then chain rest
              else Error "gap between definition slices"
          in
          let covered =
            match sorted with
            | [] -> false
            | (lo0, _) :: _ -> (
              Linexpr.equal lo0 dlo
              &&
              match chain sorted with
              | Ok hi_last -> Linexpr.equal hi_last dhi
              | Error _ -> false)
          in
          if covered then []
          else
            [ diag Diag.Coverage_unverified data.Elab.d_loc
                "definitions of %s may not cover dimension %d completely"
                data.Elab.d_name (p + 1) ]
    in
    List.concat (List.init (List.length dims) check_pos)

(* Per-field definitions must jointly supply every declared field. *)
let check_fields (em : Elab.emodule) (data : Elab.data) defs : diagnostic list =
  match Stypes.elem_ty data.Elab.d_ty with
  | Stypes.Record fields ->
    let paths = List.map (fun (_, _, path) -> path) defs in
    if List.for_all (fun p -> p = []) paths then []
    else
      List.filter_map
        (fun (fname, _) ->
          if List.exists (function f :: _ -> String.equal f fname | [] -> true) paths
          then None
          else
            Some
              (diag Diag.Missing_field data.Elab.d_loc
                 "field %s of %s is never defined (module %s)" fname
                 data.Elab.d_name em.Elab.em_name))
        fields
  | _ -> []

let check_module (em : Elab.emodule) : diagnostic list =
  let non_inputs = em.Elab.em_results @ em.Elab.em_locals in
  List.concat_map
    (fun (data : Elab.data) ->
      match defs_of em data.Elab.d_name with
      | [] ->
        [ diag Diag.Undefined_data data.Elab.d_loc "%s is never defined (module %s)"
            data.Elab.d_name em.Elab.em_name ]
      | defs ->
        (* Coverage applies within each field path separately. *)
        let by_path =
          List.fold_left
            (fun acc ((_, _, path) as d) ->
              match List.assoc_opt path acc with
              | Some group -> (path, d :: group) :: List.remove_assoc path acc
              | None -> (path, [ d ]) :: acc)
            [] defs
        in
        check_fields em data defs
        @ (if List.length defs > 1 then check_overlap em data defs else [])
        @ List.concat_map
            (fun (_, group) -> check_coverage em data group)
            by_path)
    non_inputs

let check_program (ep : Elab.eprogram) : diagnostic list =
  List.concat_map check_module ep.Elab.ep_modules

let errors = Diag.errors

let pp_diagnostic = Diag.pp
