(** Single-assignment and coverage checking.

    Every non-input data item must be defined; no element may be defined
    twice; slice definitions should jointly cover the declared extents.
    The checks are symbolic (linear forms over the module inputs):
    decidable cases yield errors, undecidable ones warnings.

    Diagnostics are reported through the unified {!Ps_diag.Diag} engine
    with stable codes: [E001] undefined data, [E002] conflicting
    definitions, [E003] missing record field, [W101] possible overlap,
    [W102] unverified coverage. *)

type diagnostic = Ps_diag.Diag.t

val check_module : Elab.emodule -> diagnostic list

val check_program : Elab.eprogram -> diagnostic list

val errors : diagnostic list -> diagnostic list
(** The hard failures among a diagnostic list. *)

val pp_diagnostic : diagnostic Fmt.t

(** {1 Symbolic slice reasoning}

    Exposed for the verifier and for targeted tests. *)

type slice_pos =
  | Point of Linexpr.t               (** a fixed subscript with a linear value *)
  | Range of Linexpr.t * Linexpr.t   (** an index variable over [lo, hi] *)
  | Unknown                          (** a non-linear fixed subscript *)
(** The symbolic extent of one subscript position of one definition. *)

val pos_of_sub : Elab.lhs_sub -> slice_pos

val provably_disjoint : slice_pos -> slice_pos -> bool
(** Whether two subscript sets cannot intersect for any input values
    consistent with the declared bounds.  Sound but incomplete: [false]
    means "may overlap". *)

val range_facts : Elab.emodule -> Linexpr.t list
(** Non-emptiness facts [hi - lo >= 0] of every subrange in the module,
    usable as {!Linexpr.prove_nonneg} assumptions. *)
