(** DOALL nest collapsing (marking pass).

    Detects perfectly nested DOALL bands — a DOALL whose body is exactly
    one descriptor, itself a DOALL — and sets {!Flowchart.loop.lp_collapse}
    on the head, licensing the interpreter and code generator to flatten
    the band into one combined iteration space.  Legality per axis is the
    DOALL guarantee the scheduler already established (dependence
    distance zero across every axis of the band); {!Verify} checks that
    marks sit only on such perfect pairs. *)

val mark : Flowchart.t -> Flowchart.t
(** Mark every collapsible band head, bottom-up; a depth-[k] perfect
    DOALL nest gets [k-1] marks (each non-innermost header). *)

val count : Flowchart.t -> int
(** Number of collapse marks present. *)

val clear : Flowchart.t -> Flowchart.t
(** Remove all collapse marks (the A/B baseline). *)
