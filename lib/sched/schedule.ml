(* The scheduling algorithm of paper §3.3.

   Two mutually recursive procedures:

   - [Schedule-Graph] takes a (sub)graph, finds its maximal strongly
     connected components, and concatenates the flowcharts of the
     components in topological order.

   - [Schedule-Component] schedules one MSCC: it picks an unscheduled
     dimension whose subrange appears in a consistent position in every
     node of the component and whose subscript expressions are all of
     class "I" or "I - constant" (step 3); deletes the "I - constant"
     edges (step 4), which is sound because a reference to A[I - c] reads
     a value produced c iterations earlier; emits an iterative loop if any
     edge was deleted and a parallel loop otherwise (step 6); and recurses
     on the remaining subgraph (step 7).

   Virtual-dimension analysis (§3.4) runs at the moment a dimension is
   scheduled: a local array's scheduled dimension is virtual — allocated
   as a small window instead of its full extent — when every use is
   either an I/I-const reference from inside the component or an
   upper-bound reference from outside. *)

open Ps_sem
open Ps_graph
open Ps_graph.Dgraph

exception Unschedulable of { reason : string; component : string list }

type window = {
  w_data : string;
  w_dim : int;   (* 0-based dimension position *)
  w_size : int;  (* number of planes to allocate *)
}

type component_trace = {
  ct_nodes : string list;
  ct_flowchart : Flowchart.t;
}

type result = {
  r_flowchart : Flowchart.t;
  r_windows : window list;
  r_components : component_trace list;  (* outermost MSCCs, as in Fig. 5 *)
  r_graph : Dgraph.t;
}

(* ------------------------------------------------------------------ *)

type state = {
  st_graph : Dgraph.t;
  st_em : Elab.emodule;
  (* Index variables already consumed by enclosing loops, per equation. *)
  st_scheduled : (int, string list) Hashtbl.t;
  (* Loop-variable renamings accumulated per equation. *)
  st_aliases : (int, (string * string) list) Hashtbl.t;
  st_windows : window list ref;
}

let scheduled st id = try Hashtbl.find st.st_scheduled id with Not_found -> []

let mark_scheduled st id v =
  Hashtbl.replace st.st_scheduled id (v :: scheduled st id)

let add_alias st id ~from ~to_ =
  if not (String.equal from to_) then
    Hashtbl.replace st.st_aliases id
      ((from, to_) :: (try Hashtbl.find st.st_aliases id with Not_found -> []))

let unscheduled_indices st (q : Elab.eq) =
  let done_ = scheduled st q.Elab.q_id in
  List.filter (fun ix -> not (List.mem ix.Elab.ix_var done_)) q.Elab.q_indices

let eq_ids_of_component (c : Scc.component) =
  List.filter_map (function Eq id -> Some id | Data _ -> None) c.Scc.c_nodes

let data_of_component (c : Scc.component) =
  List.filter_map (function Data d -> Some d | Eq _ -> None) c.Scc.c_nodes

let component_names st (c : Scc.component) =
  List.map (Dgraph.node_name st.st_graph) c.Scc.c_nodes

(* ------------------------------------------------------------------ *)
(* Candidate dimension validation (step 3). *)

type chosen = {
  ch_subrange : string;                  (* subrange (type) name *)
  ch_loop_var : string;                  (* canonical loop variable *)
  ch_range : Stypes.subrange;
  ch_eq_vars : (int * string) list;      (* per-equation index variable *)
  ch_data_pos : (string * int) list;     (* aligned dimension per data node *)
}

(* Find, for data node [d], the dimension position aligned with the chosen
   index variables, using the intra-component Def edges.  The symbolic
   path ([~symbolic:true]) also aligns on [Label.Linear] defs — strided
   or parameter-shifted writes the distance analyzer can solve over. *)
let aligned_position ?(symbolic = false) (c : Scc.component) eq_vars d =
  let positions =
    List.filter_map
      (fun e ->
        match e.e_kind, e.e_src, e.e_dst with
        | Def, Eq q, Data d' when String.equal d d' -> (
          match List.assoc_opt q eq_vars with
          | None -> None
          | Some v ->
            let pos = ref None in
            Array.iteri
              (fun i sub ->
                match sub with
                | Label.Affine { var; _ } when String.equal var v -> pos := Some i
                | Label.Linear { var; _ } when symbolic && String.equal var v ->
                  pos := Some i
                | _ -> ())
              e.e_subs;
            (match !pos with None -> Some (Error ()) | Some p -> Some (Ok p)))
        | _ -> None)
      c.Scc.c_edges
  in
  (* Every defining equation must index [d] by the chosen variable, and
     all at the same position. *)
  let rec collapse acc = function
    | [] -> acc
    | Error () :: _ -> None
    | Ok p :: rest -> (
      match acc with
      | None -> None
      | Some None -> collapse (Some (Some p)) rest
      | Some (Some p') -> if p = p' then collapse acc rest else None)
  in
  match collapse (Some None) positions with
  | Some (Some p) -> Some p
  | Some None | None -> None

(* Try to choose subrange [s] for component [c]; [None] if the paper's
   step-3 conditions fail. *)
let try_candidate st (c : Scc.component) (s : string) : chosen option =
  let eqs = eq_ids_of_component c in
  let eq_vars =
    List.map
      (fun id ->
        let q = Elab.eq_exn st.st_em id in
        let matching =
          List.filter
            (fun ix -> String.equal ix.Elab.ix_range.Stypes.sr_name s)
            (unscheduled_indices st q)
        in
        (id, matching))
      eqs
  in
  if List.exists (fun (_, m) -> List.length m <> 1) eq_vars then None
  else
    let eq_vars = List.map (fun (id, m) -> (id, (List.hd m).Elab.ix_var)) eq_vars in
    let range =
      let id0, _ = List.hd eq_vars in
      let q0 = Elab.eq_exn st.st_em id0 in
      (List.find
         (fun ix -> String.equal ix.Elab.ix_range.Stypes.sr_name s)
         q0.Elab.q_indices)
        .Elab.ix_range
    in
    (* Alignment of every data node in the component. *)
    let datas = data_of_component c in
    let rec align acc = function
      | [] -> Some (List.rev acc)
      | d :: rest -> (
        match aligned_position c eq_vars d with
        | Some p -> align ((d, p) :: acc) rest
        | None -> None)
    in
    match align [] datas with
    | None -> None
    | Some ch_data_pos ->
      (* Step 3: every intra-component use must be "I" or "I - constant"
         in this dimension. *)
      let ok =
        List.for_all
          (fun e ->
            match e.e_kind, e.e_src, e.e_dst with
            | Use, Data d, Eq q -> (
              match List.assoc_opt d ch_data_pos with
              | None -> true (* data without the dimension: not constrained *)
              | Some p -> (
                let v = List.assoc q eq_vars in
                match e.e_subs.(p) with
                | Label.Affine { var; offset; _ } ->
                  String.equal var v && offset <= 0
                | Label.Linear _ (* the symbolic fallback's class *)
                | Label.Const_low | Label.Const_mid _ | Label.Const_high
                | Label.Slice | Label.Opaque -> false))
            | _ -> true)
          c.Scc.c_edges
      in
      if not ok then None
      else
        let id0, v0 = List.hd eq_vars in
        ignore id0;
        Some
          { ch_subrange = s;
            ch_loop_var = v0;
            ch_range = { range with Stypes.sr_name = s };
            ch_eq_vars = eq_vars;
            ch_data_pos }

(* ------------------------------------------------------------------ *)
(* Symbolic candidate validation: the distance-analysis fallback tried
   when step 3 rejects every dimension.  Subscripts may be in either
   aligned class (Affine or Linear); per-dimension dependence distances
   decide both which edges are carried (deletable) and the loop flavor:

   - every distance independent or 0        -> DOALL;
   - exact distances with gcd g >= 2        -> DOGROUP(g), the residue
     classes mod g are mutually independent (Kale-Patil grouping);
   - exact distances with gcd 1             -> DO;
   - one parameter form d over scalar inputs -> DOINSPECT(d), a runtime
     inspector tests d >= 1 before running the d groups;
   - anything unknown, negative, or mixed   -> reject the candidate. *)

(* Aligned def labels of data node [d] at dimension [p], from the
   intra-component Def edges. *)
let defs_at (c : Scc.component) d p =
  List.filter_map
    (fun e ->
      match e.e_kind, e.e_src, e.e_dst with
      | Def, Eq _, Data d' when String.equal d d' -> (
        match e.e_subs.(p) with
        | (Label.Affine _ | Label.Linear _) as l -> Some l
        | _ -> None)
      | _ -> None)
    c.Scc.c_edges

(* Is every variable of the form a scalar int module parameter?  The
   inspector must be evaluable at loop entry from the inputs alone. *)
let input_scalar_form st (l : Linexpr.t) =
  List.for_all
    (fun (v, _) ->
      match Elab.find_data st.st_em v with
      | Some { Elab.d_kind = Elab.Input; d_ty = Stypes.Scalar Stypes.Sint; _ } ->
        true
      | _ -> false)
    l.Linexpr.terms

let try_candidate_symbolic st (c : Scc.component) (s : string) :
    (chosen * Flowchart.loop_kind * Dgraph.edge list) option =
  let eqs = eq_ids_of_component c in
  let eq_vars =
    List.map
      (fun id ->
        let q = Elab.eq_exn st.st_em id in
        let matching =
          List.filter
            (fun ix -> String.equal ix.Elab.ix_range.Stypes.sr_name s)
            (unscheduled_indices st q)
        in
        (id, matching))
      eqs
  in
  if List.exists (fun (_, m) -> List.length m <> 1) eq_vars then None
  else
    let eq_vars = List.map (fun (id, m) -> (id, (List.hd m).Elab.ix_var)) eq_vars in
    let range =
      let id0, _ = List.hd eq_vars in
      let q0 = Elab.eq_exn st.st_em id0 in
      (List.find
         (fun ix -> String.equal ix.Elab.ix_range.Stypes.sr_name s)
         q0.Elab.q_indices)
        .Elab.ix_range
    in
    let datas = data_of_component c in
    let rec align acc = function
      | [] -> Some (List.rev acc)
      | d :: rest -> (
        match aligned_position ~symbolic:true c eq_vars d with
        | Some p -> align ((d, p) :: acc) rest
        | None -> None)
    in
    match align [] datas with
    | None -> None
    | Some ch_data_pos -> (
      let bounds = Distance.bounds_of_subrange range in
      let assumptions =
        Distance.facts (List.map snd st.st_em.Elab.em_subranges)
      in
      let exception Reject in
      try
        let all = ref [] in
        let deleted = ref [] in
        List.iter
          (fun e ->
            match e.e_kind, e.e_src, e.e_dst with
            | Use, Data d, Eq q -> (
              match List.assoc_opt d ch_data_pos with
              | None -> () (* data without the dimension: not constrained *)
              | Some p ->
                let v = List.assoc q eq_vars in
                let use = e.e_subs.(p) in
                (match Label.linear_parts use with
                 | Some (uv, _, _, _) when String.equal uv v -> ()
                 | _ -> raise Reject);
                let ds =
                  List.map
                    (fun def -> Distance.solve ?bounds ~assumptions ~def ~use ())
                    (defs_at c d p)
                in
                if ds = [] then raise Reject;
                List.iter
                  (function
                    | Distance.Exact k when k < 0 -> raise Reject
                    | Distance.Unknown -> raise Reject
                    | _ -> ())
                  ds;
                all := ds @ !all;
                (* Carried (deletable) iff no same-iteration dependence
                   remains on this edge. *)
                if not (List.mem (Distance.Exact 0) ds) then
                  deleted := e :: !deleted)
            | _ -> ())
          c.Scc.c_edges;
        let exacts =
          List.filter_map
            (function Distance.Exact k when k <> 0 -> Some k | _ -> None)
            !all
        in
        let forms =
          List.filter_map (function Distance.Form l -> Some l | _ -> None) !all
        in
        let kind =
          match forms, exacts with
          | [], [] -> Flowchart.Parallel
          | [], ks ->
            let g = List.fold_left Distance.gcd 0 ks in
            if g >= 2 then Flowchart.Grouped g else Flowchart.Iterative
          | f0 :: rest, [] ->
            if
              List.for_all (Linexpr.equal f0) rest && input_scalar_form st f0
            then Flowchart.Inspected (Linexpr.to_expr f0)
            else raise Reject
          | _ :: _, _ :: _ ->
            (* Mixing constant and parameter distances: no single runtime
               modulus makes both partitions line up. *)
            raise Reject
        in
        let id0, v0 = List.hd eq_vars in
        ignore id0;
        Some
          ( { ch_subrange = s;
              ch_loop_var = v0;
              ch_range = { range with Stypes.sr_name = s };
              ch_eq_vars = eq_vars;
              ch_data_pos },
            kind,
            !deleted )
      with Reject -> None)

(* When the basic path schedules an iterative loop, the gcd of the
   carried (deleted-edge) distances may still partition the iterations:
   gcd g >= 2 upgrades DO to DOGROUP(g).  [None] unless every carried
   distance is an exact positive constant, every kept dependence is
   distance 0, and the gcd reaches 2. *)
let basic_group_modulus (c : Scc.component) (ch : chosen) deleted =
  let exception No in
  try
    let g = ref 0 in
    List.iter
      (fun e ->
        match e.e_kind, e.e_src, e.e_dst with
        | Use, Data d, Eq _ -> (
          match List.assoc_opt d ch.ch_data_pos with
          | None -> ()
          | Some p ->
            let carried = List.memq e deleted in
            List.iter
              (fun def ->
                match Distance.solve ~def ~use:e.e_subs.(p) () with
                | Distance.Exact 0 -> if carried then raise No
                | Distance.Exact k when carried && k > 0 ->
                  g := Distance.gcd !g k
                | Distance.Independent -> ()
                | _ -> raise No)
              (defs_at c d p))
        | _ -> ())
      c.Scc.c_edges;
    if !g >= 2 then Some !g else None
  with No -> None

(* Candidate subranges in first-appearance order over the component's
   equations ("pick an unscheduled node dimension", step 2). *)
let candidates st (c : Scc.component) =
  let eqs = eq_ids_of_component c in
  let names =
    List.concat_map
      (fun id ->
        List.map
          (fun ix -> ix.Elab.ix_range.Stypes.sr_name)
          (unscheduled_indices st (Elab.eq_exn st.st_em id)))
      eqs
  in
  let rec uniq seen = function
    | [] -> []
    | x :: rest ->
      if List.mem x seen then uniq seen rest else x :: uniq (x :: seen) rest
  in
  uniq [] names

(* ------------------------------------------------------------------ *)
(* Virtual-dimension analysis (§3.4), run when a dimension is scheduled. *)

let analyze_virtual st (c : Scc.component) (ch : chosen) =
  let comp_eqs = eq_ids_of_component c in
  List.iter
    (fun d ->
      match Elab.find_data st.st_em d with
      | Some data when data.Elab.d_kind = Elab.Local -> (
        match List.assoc_opt d ch.ch_data_pos with
        | None -> ()
        | Some _
          when List.exists (fun w -> String.equal w.w_data d) !(st.st_windows) ->
          (* At most one virtual dimension per array: windowing a second,
             inner dimension is unsound — a reference such as
             L[I-1, J] (previous outer plane, same inner position) needs
             the previous plane's full inner extent, which a second
             window would have partially overwritten.  The paper's worked
             example never windows two dimensions (the spatial ones are
             disqualified by their I+1 subscripts), so §3.4 does not
             address the interaction; we keep the outermost window only. *)
          ()
        | Some p ->
          (* Examine every use of [d] in the full graph. *)
          let uses =
            List.filter
              (fun e ->
                e.e_kind = Use
                && match e.e_src with Data d' -> String.equal d d' | Eq _ -> false)
              (Dgraph.edges st.st_graph)
          in
          let max_back = ref 0 in
          let virtual_ok =
            List.for_all
              (fun e ->
                let inside =
                  match e.e_dst with Eq q -> List.mem q comp_eqs | Data _ -> false
                in
                match e.e_subs.(p) with
                | Label.Affine { offset; _ } when inside && offset <= 0 ->
                  (* Rule 1: I or I - constant, target inside the MSCC. *)
                  if -offset > !max_back then max_back := -offset;
                  true
                | Label.Const_high when not inside ->
                  (* Rule 2: only the final element used outside. *)
                  true
                | _ -> false)
              uses
          in
          let window = !max_back + 1 in
          (* Write side: with [window] planes of physical storage, a
             plane's slot is reused every [window] iterations, so a
             write is only safe when it is either the producing write
             itself (subscripted by the scheduled variable, offset 0,
             so it lands plane-by-plane in step with the loop) or a
             boundary plane from another component that sits within
             the startup window — planes [lo .. lo + window - 1] are
             read back at most [max_back] iterations later, strictly
             before the loop comes around to reuse their slots.  Any
             other write (e.g. a DOALL in another component sweeping
             the scheduled dimension, as in an LCS-style base column
             L[I, 0]) would be partially overwritten before its
             readers run, so the dimension must stay fully allocated. *)
          let defs_ok =
            List.for_all
              (fun e ->
                if
                  not
                    (e.e_kind = Def
                     &&
                     match e.e_dst with
                     | Data d' -> String.equal d d'
                     | Eq _ -> false)
                then true
                else
                  let inside =
                    match e.e_src with
                    | Eq q -> List.mem q comp_eqs
                    | Data _ -> false
                  in
                  match e.e_subs.(p) with
                  | Label.Affine { offset = 0; _ } -> inside
                  | Label.Const_low -> not inside
                  | Label.Const_mid k -> (not inside) && k < window
                  | _ -> false)
              (Dgraph.edges st.st_graph)
          in
          if virtual_ok && defs_ok then
            st.st_windows :=
              { w_data = d; w_dim = p; w_size = window } :: !(st.st_windows))
      | _ -> ())
    (data_of_component c)

(* ------------------------------------------------------------------ *)
(* The two mutually recursive procedures. *)

let rec schedule_graph st (sg : Scc.subgraph) ~(trace : component_trace list ref option)
    : Flowchart.t =
  let comps = Scc.components sg in
  List.concat_map
    (fun comp ->
      let fc = schedule_component st sg comp in
      (match trace with
       | Some tr ->
         tr := { ct_nodes = component_names st comp; ct_flowchart = fc } :: !tr
       | None -> ());
      fc)
    comps

and schedule_component st (sg : Scc.subgraph) (comp : Scc.component) : Flowchart.t =
  match comp.Scc.c_nodes with
  (* Step 1: a lone data node contributes nothing. *)
  | [ Data _ ] -> []
  | _ -> (
    let eqs = eq_ids_of_component comp in
    if eqs = [] then
      raise
        (Unschedulable
           { reason = "cycle among data bounds";
             component = component_names st comp });
    (* Step 2: pick an unscheduled dimension satisfying step 3. *)
    let rec first_valid = function
      | [] -> None
      | s :: rest -> (
        match try_candidate st comp s with
        | Some ch -> Some ch
        | None -> first_valid rest)
    in
    match first_valid (candidates st comp) with
    | None -> (
      match comp.Scc.c_nodes with
      | [ Eq id ] when unscheduled_indices st (Elab.eq_exn st.st_em id) = [] ->
        (* Step 2b: no dimensions left, a single node: emit it. *)
        let aliases =
          try Hashtbl.find st.st_aliases id with Not_found -> []
        in
        [ Flowchart.D_eq { er_id = id; er_aliases = aliases } ]
      | _ -> (
        (* Step 2a fallback: the symbolic distance analysis.  No
           virtual-dimension analysis on this path — windows assume the
           strictly sequential plane reuse of a DO loop, which grouped
           and inspected execution orders do not provide. *)
        let rec first_symbolic = function
          | [] -> None
          | s :: rest -> (
            match try_candidate_symbolic st comp s with
            | Some r -> Some r
            | None -> first_symbolic rest)
        in
        match first_symbolic (candidates st comp) with
        | Some (ch, kind, deleted) -> emit_loop st sg comp ch ~kind ~deleted
        | None ->
          (* The equations cannot be scheduled by this algorithm.  (The
             hyperplane transformation of §4 may still apply.) *)
          raise
            (Unschedulable
               { reason =
                   "no dimension has all subscripts of the form 'I' or \
                    'I - constant' in a consistent position";
                 component = component_names st comp })))
    | Some ch ->
      (* Virtual-dimension analysis before the edges disappear. *)
      let windows_before = !(st.st_windows) in
      analyze_virtual st comp ch;
      (* Step 4: delete the "I - constant" edges. *)
      let deleted =
        List.filter
          (fun e ->
            match e.e_kind, e.e_src, e.e_dst with
            | Use, Data d, Eq q -> (
              match List.assoc_opt d ch.ch_data_pos with
              | None -> false
              | Some p -> (
                match e.e_subs.(p) with
                | Label.Affine { var; offset; _ } ->
                  String.equal var (List.assoc q ch.ch_eq_vars) && offset < 0
                | _ -> false))
            | _ -> false)
          comp.Scc.c_edges
      in
      (* Step 6: iterative iff recursive edges were deleted — unless the
         carried distances share a modulus g >= 2, in which case the
         residue classes mod g are independent and the loop runs as a
         group-partitioned DOALL.  Grouped order voids the sequential
         plane reuse a window relies on, so the windows this component
         just gained are dropped with the upgrade. *)
      let kind =
        if deleted = [] then Flowchart.Parallel
        else
          match basic_group_modulus comp ch deleted with
          | Some g ->
            st.st_windows := windows_before;
            Flowchart.Grouped g
          | None -> Flowchart.Iterative
      in
      emit_loop st sg comp ch ~kind ~deleted)

(* Steps 5 and 7, shared by the basic and symbolic paths: mark the
   dimension scheduled, drop the carried edges, schedule the remaining
   subgraph, and wrap it in the loop descriptor. *)
and emit_loop st sg comp (ch : chosen) ~kind ~deleted : Flowchart.t =
  List.iter
    (fun (id, v) ->
      mark_scheduled st id v;
      add_alias st id ~from:v ~to_:ch.ch_loop_var)
    ch.ch_eq_vars;
  let inner = Scc.component_subgraph sg comp in
  let inner = Scc.remove_edges inner deleted in
  let body = schedule_graph st inner ~trace:None in
  [ Flowchart.D_loop
      { lp_var = ch.ch_loop_var;
        lp_range = ch.ch_range;
        lp_kind = kind;
        lp_collapse = false;
        lp_body = body } ]

(* ------------------------------------------------------------------ *)

let schedule_graph_of (g : Dgraph.t) : result =
  Ps_obs.Trace.with_span "schedule.graph" @@ fun () ->
  let em = g.g_module in
  let st =
    { st_graph = g;
      st_em = em;
      st_scheduled = Hashtbl.create 16;
      st_aliases = Hashtbl.create 16;
      st_windows = ref [] }
  in
  let trace = ref [] in
  let fc = schedule_graph st (Scc.full_subgraph g) ~trace:(Some trace) in
  { r_flowchart = fc;
    r_windows = List.rev !(st.st_windows);
    r_components = List.rev !trace;
    r_graph = g }

let schedule (em : Elab.emodule) : result = schedule_graph_of (Build.build em)
