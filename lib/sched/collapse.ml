(* DOALL nest collapsing.

   The hyperplane transformation (and plain scheduling of independent
   recurrences) produces perfectly nested DOALL bands — [DOALL I (DOALL
   J (eq...))] — but a runtime that parallelizes only the outermost axis
   of such a band sees just the outer trip count: a [DOALL I(3) (DOALL
   J(10^6))] nest offers three units of work to the pool, and the
   triangular wavefront spaces of §4 offer trip counts that vary from 1
   to N per time step.  Collapsing flattens the band into one combined
   iteration space so the pool balances over the *product* of the trip
   counts, the standard loop-collapsing transformation (cf. OpenMP's
   [collapse] clause).

   This pass only *marks* the heads of collapsible bands
   ([lp_collapse]); the interpreter ([Ps_interp.Exec]) and the code
   generator decide how much of a marked band they can actually flatten
   (e.g. the interpreter needs the inner bounds to be affine in at most
   the head variable).  The mark is purely structural:

   - the loop is DOALL, and
   - its body is exactly one descriptor, itself a DOALL loop

   (i.e. the nest is *perfect*: no equations or data placements sit
   between the two headers, so interchanging or flattening the axes
   cannot reorder any computation relative to the band).  Legality of
   executing the flattened space in any order is exactly the DOALL
   guarantee the scheduler (and the [Verify] translation validator)
   already established per axis: every dependence distance across each
   axis of the band is zero.  [Verify.flowchart] additionally rejects
   marks placed on anything but such a perfect DOALL pair (E021), so a
   corrupted flowchart cannot smuggle an iterative loop into a band. *)

let is_parallel (l : Flowchart.loop) = l.Flowchart.lp_kind = Flowchart.Parallel

(* Is [l] (already marked below it) the head of a perfect DOALL pair? *)
let collapsible (l : Flowchart.loop) =
  is_parallel l
  && (match l.Flowchart.lp_body with
     | [ Flowchart.D_loop inner ] -> is_parallel inner
     | _ -> false)

let rec mark_descs (descs : Flowchart.t) : Flowchart.t =
  List.map mark_desc descs

and mark_desc (d : Flowchart.descriptor) : Flowchart.descriptor =
  match d with
  | Flowchart.D_loop l ->
    let body = mark_descs l.Flowchart.lp_body in
    let l = { l with Flowchart.lp_body = body } in
    Flowchart.D_loop { l with Flowchart.lp_collapse = collapsible l }
  | Flowchart.D_solve s ->
    Flowchart.D_solve { s with Flowchart.sv_body = mark_descs s.Flowchart.sv_body }
  | (Flowchart.D_data _ | Flowchart.D_eq _) as d -> d

let mark (fc : Flowchart.t) : Flowchart.t =
  Ps_obs.Trace.with_span "schedule.collapse" (fun () -> mark_descs fc)

let rec count (fc : Flowchart.t) =
  List.fold_left
    (fun acc d ->
      match d with
      | Flowchart.D_loop l ->
        acc + (if l.Flowchart.lp_collapse then 1 else 0) + count l.Flowchart.lp_body
      | Flowchart.D_solve s -> acc + count s.Flowchart.sv_body
      | Flowchart.D_data _ | Flowchart.D_eq _ -> acc)
    0 fc

let rec clear (fc : Flowchart.t) : Flowchart.t =
  List.map
    (function
      | Flowchart.D_loop l ->
        Flowchart.D_loop
          { l with Flowchart.lp_collapse = false; lp_body = clear l.Flowchart.lp_body }
      | Flowchart.D_solve s ->
        Flowchart.D_solve { s with Flowchart.sv_body = clear s.Flowchart.sv_body }
      | (Flowchart.D_data _ | Flowchart.D_eq _) as d -> d)
    fc
