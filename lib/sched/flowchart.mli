(** Flowchart descriptors (paper §3.2, Fig. 4).

    A flowchart is a list of descriptors: dependency-graph nodes (data
    items and equations) for which straight-line code is emitted, and
    subrange descriptors meaning a for loop — iterative (DO) or parallel
    (DOALL) — over a list of nested descriptors. *)

type loop_kind =
  | Iterative  (** DO: carried dependence, must run in index order *)
  | Parallel   (** DOALL: iterations are independent *)
  | Grouped of int
      (** DOGROUP(g): every carried dependence distance is a multiple of
          [g >= 2]; the [g] residue classes mod [g] are mutually
          independent — a DOALL over the classes, index order within
          each *)
  | Inspected of Ps_lang.Ast.expr
      (** DOINSPECT(d): the carried distance is the runtime parameter
          expression [d]; an inspector evaluates it on loop entry —
          [d >= 1] runs the loop as DOGROUP(d), [d < 1] is a runtime
          legality failure *)

type descriptor =
  | D_data of string  (** placement marker for a data item *)
  | D_eq of eq_ref
  | D_loop of loop
  | D_solve of solve

and eq_ref = {
  er_id : int;
  er_aliases : (string * string) list;
      (** renamings [equation index var -> enclosing loop var] *)
}

and loop = {
  lp_var : string;                       (** canonical loop variable *)
  lp_range : Ps_sem.Stypes.subrange;     (** loop bounds *)
  lp_kind : loop_kind;
  lp_collapse : bool;
      (** head of a perfectly nested DOALL band that may be flattened
          into one combined iteration space; set by {!Collapse}, always
          [false] straight out of the scheduler *)
  lp_body : descriptor list;
}

and solve = {
  sv_var : string;
  sv_range : Ps_sem.Stypes.subrange;
  sv_rhs : Ps_lang.Ast.expr;  (** value in terms of enclosing loop vars *)
  sv_body : descriptor list;
}
(** A solved subscript: the index is computed from the enclosing loop
    variables and the body runs only if it lands in range.  Produced by
    {!Sink} — the paper's "unrotate back into the return parameter". *)

type t = descriptor list

val kind_name : loop_kind -> string
(** "DO", "DOALL", "DOGROUP(g)", or "DOINSPECT(d)". *)

val pp_compact : Ps_sem.Elab.emodule -> t Fmt.t
(** One-line form, as in Fig. 5: "DO K (DOALL I (DOALL J (eq.3)))". *)

val to_compact_string : Ps_sem.Elab.emodule -> t -> string

val pp_tree : Ps_sem.Elab.emodule -> t Fmt.t
(** Indented multi-line form, as in Figs. 6-7. *)

val to_tree_string : Ps_sem.Elab.emodule -> t -> string

val count_loops : ?kind:loop_kind -> t -> int

val equations : t -> int list
(** Equation ids, in emission order. *)

val map_loops : (loop -> loop) -> t -> t
(** Bottom-up rewriting of every loop descriptor. *)

type binder = B_loop of loop | B_solve of solve
(** An enclosing control descriptor: a real loop, or a solved subscript
    that binds its variable to a computed value. *)

val binder_var : binder -> string

val iter_eqs : (binders:binder list -> seq:int -> eq_ref -> unit) -> t -> unit
(** Visit every equation reference in emission (execution) order.
    [binders] lists the enclosing binders outermost first; [seq] numbers
    the references in visit order, so comparing two [seq] values decides
    which equation's straight-line code is emitted first. *)
