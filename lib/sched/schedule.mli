(** The scheduling algorithm of paper §3.3 with the virtual-dimension
    analysis of §3.4.

    [Schedule-Graph] concatenates, in topological order, the flowcharts
    of the graph's maximal strongly connected components;
    [Schedule-Component] picks an unscheduled dimension whose subscripts
    are all of class "I" or "I - constant" in a consistent position,
    deletes the "I - constant" edges, emits a DO loop if any were deleted
    and a DOALL otherwise, and recurses on the remaining subgraph.

    When a dimension is scheduled, a local array's dimension is marked
    virtual — allocated as a window instead of its full extent — if every
    use is an I/I-const reference from inside the component (rule 1) or
    an upper-bound reference from outside (rule 2).  At most one
    dimension per array is windowed (the outermost scheduled one): a
    second window is unsound for references like [L[I-1, J]] that need
    the previous outer plane's full inner extent.

    When step 3 rejects every dimension, a symbolic fallback solves the
    aligned [Affine]/[Linear] subscript pairs for dependence distances
    ({!Ps_graph.Distance}): all-independent distances give a DOALL,
    exact distances with gcd [g >= 2] a group-partitioned
    [DOGROUP(g)] (the residue classes mod [g] are mutually
    independent), and a single parameter-form distance [d] over scalar
    inputs an inspector/executor [DOINSPECT(d)] whose legality test
    [d >= 1] runs at loop entry.  A basic-path DO whose carried
    distances share a modulus [g >= 2] is likewise upgraded to
    [DOGROUP(g)]. *)

exception Unschedulable of { reason : string; component : string list }
(** Step 2a: no dimension qualifies and the component has several nodes.
    The hyperplane transformation (§4) may still apply. *)

type window = {
  w_data : string;
  w_dim : int;   (** 0-based dimension position *)
  w_size : int;  (** planes to allocate *)
}

type component_trace = {
  ct_nodes : string list;
  ct_flowchart : Flowchart.t;
}
(** One row of the paper's Fig. 5: an outermost MSCC and its flowchart. *)

type result = {
  r_flowchart : Flowchart.t;
  r_windows : window list;
  r_components : component_trace list;
  r_graph : Ps_graph.Dgraph.t;
}

val schedule : Ps_sem.Elab.emodule -> result
(** Build the dependency graph and schedule it.
    @raise Unschedulable per step 2a. *)

val schedule_graph_of : Ps_graph.Dgraph.t -> result
(** Schedule an already-built graph. *)
