(* Per-loop-nest scheduling policy (ROADMAP item 3).

   The scheduler proves legality — DO vs DOALL vs DOGROUP/DOINSPECT —
   and the verifier (E02x) checks it.  This module holds the orthogonal
   *shape* decision: for each parallelization point of a flowchart,
   whether the interpreter should fork at all, whether a marked DOALL
   band may be flattened, whether the forked job work-steals or deals
   fixed chunks, and optional per-job chunk / wake-threshold overrides.
   A policy can never change results, only how the iteration space is
   walked; that invariant is what lets a tuned table be cached and
   replayed as just another compile artifact. *)

type source = Static | Tuned

let source_name = function Static -> "static" | Tuned -> "tuned"

let source_of_name = function
  | "static" -> Some Static
  | "tuned" -> Some Tuned
  | _ -> None

type decision = {
  d_par : bool;       (* false: run the whole nest sequentially *)
  d_collapse : bool;  (* flatten the marked DOALL band under this head *)
  d_steal : bool;     (* work-stealing deal vs fixed contiguous chunks *)
  d_chunk_min : int option;  (* per-job floor on a claimed chunk *)
  d_chunk_max : int option;  (* per-job ceiling on a claimed chunk *)
  d_wake : int option;       (* per-job wake threshold override *)
  d_why : string;            (* one-line rationale, recorded in the trajectory *)
}

let sequential ~why =
  { d_par = false; d_collapse = false; d_steal = false; d_chunk_min = None;
    d_chunk_max = None; d_wake = None; d_why = why }

let parallel ?(steal = true) ?(collapse = false) ?chunk_min ?chunk_max ?wake
    ~why () =
  { d_par = true; d_collapse = collapse; d_steal = steal;
    d_chunk_min = chunk_min; d_chunk_max = chunk_max; d_wake = wake;
    d_why = why }

type table = {
  t_source : source;
  t_host_cores : int;
      (* Core count the table was derived for/on: chunk and wake choices
         do not transfer across hosts, so a mismatch is staleness (W121). *)
  t_entries : (string * decision) list;
}

(* --- nest keys ------------------------------------------------------ *)

(* A parallelization point is a parallel-kind loop the interpreter would
   actually fork: reachable from the top through DO loops and SOLVE
   bodies only.  Loops nested inside another parallel nest run inside
   the workers and are never fork candidates, so they carry no key.

   The key is the dot-joined path of binder variables from the root,
   with a "#n" ordinal when the same path occurs more than once (e.g.
   fig. 6 has three I.J nests).  The walk is deterministic, so the same
   flowchart yields the same keys at tune time and at run time. *)
let index (fc : Flowchart.t) : (Flowchart.loop * string) list =
  let acc = ref [] in
  let counts = Hashtbl.create 8 in
  let add l path =
    let base = String.concat "." (List.rev path) in
    let n = (try Hashtbl.find counts base with Not_found -> 0) + 1 in
    Hashtbl.replace counts base n;
    let key = if n = 1 then base else Printf.sprintf "%s#%d" base n in
    acc := (l, key) :: !acc
  in
  let rec go ~par path (d : Flowchart.descriptor) =
    match d with
    | Flowchart.D_data _ | Flowchart.D_eq _ -> ()
    | Flowchart.D_solve s ->
      List.iter (go ~par (s.Flowchart.sv_var :: path)) s.Flowchart.sv_body
    | Flowchart.D_loop l ->
      let path' = l.Flowchart.lp_var :: path in
      (match l.Flowchart.lp_kind with
      | Flowchart.Iterative ->
        List.iter (go ~par path') l.Flowchart.lp_body
      | Flowchart.Parallel | Flowchart.Grouped _ | Flowchart.Inspected _ ->
        if par then add l path';
        List.iter (go ~par:false path') l.Flowchart.lp_body)
  in
  List.iter (go ~par:true []) fc;
  List.rev !acc

let find (t : table) key = List.assoc_opt key t.t_entries

(* Pair each fork candidate of [fc] with its table entry; the loop
   records are physically those of [fc], so the interpreter can look
   decisions up by identity while compiling. *)
let resolve (t : table) (fc : Flowchart.t) :
    (Flowchart.loop * decision) list =
  List.filter_map
    (fun (l, key) ->
      match find t key with Some d -> Some (l, d) | None -> None)
    (index fc)

let stale (t : table) ~host_cores = t.t_host_cores <> host_cores

(* --- rendering ------------------------------------------------------ *)

let summary (d : decision) =
  if not d.d_par then "seq"
  else begin
    let b = Buffer.create 16 in
    Buffer.add_string b (if d.d_steal then "steal" else "fixed");
    if d.d_collapse then Buffer.add_string b "+collapse";
    (match d.d_chunk_min with
    | Some c -> Buffer.add_string b (Printf.sprintf ",chunk>=%d" c)
    | None -> ());
    (match d.d_chunk_max with
    | Some c -> Buffer.add_string b (Printf.sprintf ",chunk<=%d" c)
    | None -> ());
    (match d.d_wake with
    | Some w -> Buffer.add_string b (Printf.sprintf ",wake=%d" w)
    | None -> ());
    Buffer.contents b
  end

let table_summary (t : table) =
  Printf.sprintf "%s[%s]" (source_name t.t_source)
    (String.concat ";"
       (List.map (fun (k, d) -> k ^ "=" ^ summary d) t.t_entries))

(* --- wire / cache format -------------------------------------------- *)

(* One JSON object per table; schema field "policy":1.  This is both the
   compile-server artifact payload and the `psc tune` output. *)

let esc s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json (t : table) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "{\"policy\":1,\"source\":\"%s\",\"host_cores\":%d,\"nests\":["
       (source_name t.t_source) t.t_host_cores);
  List.iteri
    (fun i (key, d) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"key\":\"%s\",\"par\":%b,\"collapse\":%b,\"steal\":%b"
           (esc key) d.d_par d.d_collapse d.d_steal);
      let opt name = function
        | Some v -> Buffer.add_string b (Printf.sprintf ",\"%s\":%d" name v)
        | None -> ()
      in
      opt "chunk_min" d.d_chunk_min;
      opt "chunk_max" d.d_chunk_max;
      opt "wake" d.d_wake;
      Buffer.add_string b (Printf.sprintf ",\"why\":\"%s\"}" (esc d.d_why)))
    t.t_entries;
  Buffer.add_string b "]}";
  Buffer.contents b

let of_json (s : string) : (table, string) result =
  let module J = Ps_obs.Trace.Json in
  let open struct
    exception Bad of string
  end in
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  try
    let j =
      match J.parse s with
      | j -> j
      | exception J.Parse_error m -> bad "malformed JSON: %s" m
    in
    let mem name = J.member name j in
    (match mem "policy" with
    | Some (J.Num f) when int_of_float f = 1 -> ()
    | _ -> bad "missing or unsupported \"policy\" version");
    let source =
      match mem "source" with
      | Some (J.Str s) -> (
        match source_of_name s with
        | Some src -> src
        | None -> bad "unknown source %S" s)
      | _ -> bad "missing \"source\""
    in
    let host_cores =
      match mem "host_cores" with
      | Some (J.Num f) -> int_of_float f
      | _ -> bad "missing \"host_cores\""
    in
    let nests =
      match mem "nests" with
      | Some (J.Arr l) -> l
      | _ -> bad "missing \"nests\" array"
    in
    let entry n =
      let str name =
        match J.member name n with
        | Some (J.Str s) -> s
        | _ -> bad "nest entry missing string %S" name
      in
      let flag name =
        match J.member name n with
        | Some (J.Bool b) -> b
        | _ -> bad "nest entry missing bool %S" name
      in
      let opt name =
        match J.member name n with
        | Some (J.Num f) -> Some (int_of_float f)
        | _ -> None
      in
      let why = match J.member "why" n with Some (J.Str s) -> s | _ -> "" in
      ( str "key",
        { d_par = flag "par"; d_collapse = flag "collapse";
          d_steal = flag "steal"; d_chunk_min = opt "chunk_min";
          d_chunk_max = opt "chunk_max"; d_wake = opt "wake"; d_why = why } )
    in
    Ok { t_source = source; t_host_cores = host_cores;
         t_entries = List.map entry nests }
  with Bad m -> Error m

(* --- structural validation ------------------------------------------ *)

(* A table is well-formed for a flowchart when every entry names an
   existing fork candidate and collapse is only requested on a marked
   band head.  Policies are advisory, so an ill-formed table is a
   caller error, not a legality problem — legality stays with the
   verifier regardless of what the policy asks for. *)
let validate (t : table) (fc : Flowchart.t) : string list =
  let keys = List.map snd (index fc) in
  let marked =
    List.filter_map
      (fun (l, key) ->
        if l.Flowchart.lp_collapse then Some key else None)
      (index fc)
  in
  List.concat_map
    (fun (key, d) ->
      if not (List.mem key keys) then
        [ Printf.sprintf "policy entry %S matches no loop nest" key ]
      else if d.d_collapse && not (List.mem key marked) then
        [ Printf.sprintf
            "policy entry %S requests collapse on an unmarked nest" key ]
      else
        let low =
          List.filter_map
            (fun c ->
              match c with
              | Some c when c < 1 ->
                Some
                  (Printf.sprintf "policy entry %S: chunk bound %d < 1" key c)
              | _ -> None)
            [ d.d_chunk_min; d.d_chunk_max ]
        in
        if low <> [] then low
        else
          match (d.d_chunk_min, d.d_chunk_max) with
          | Some lo, Some hi when lo > hi ->
            [ Printf.sprintf "policy entry %S: chunk_min %d > chunk_max %d" key
                lo hi ]
          | _ -> [])
    t.t_entries
