(* Static scheduling cost model.

   For each fork candidate of a flowchart (see [Policy.index]), estimate
   the work of one invocation of the nest — the number of equation
   evaluations per fork, *not* summed over enclosing DO loops, because
   the fork overhead is paid once per invocation — and decide the
   schedule shape:

     - below the parallel overhead threshold, or on a single-core host,
       run sequentially (this subsumes the W120 tiny-loop warning by
       construction: the nest the lint flags is the nest the model
       refuses to fork);
     - a marked DOALL band with rectangular inner bounds flattens
       (collapse) for one big well-balanced deal;
     - a band whose inner bounds mention outer band variables is a
       trimmed wavefront: its extents are skewed and vanish at the
       sweep's corners, so flattening trades a balanced outer deal for
       per-point scheduling overhead — keep it nested (this is the
       recorded h3 steal+collapse regression, fixed by construction);
     - work-stealing guided chunks otherwise, with a chunk floor on big
       uniform spaces and a raised wake threshold on modest nests so a
       small fork never pays a full pool broadcast.

   Bounds under enclosing DO loops may mention the DO variable (trimmed
   nests); those are estimated at the midpoint of the enclosing range,
   a representative invocation of the steady state. *)

open Ps_sem

let default_overhead = 256
(* Equation evaluations per invocation below which forking is a loss:
   roughly the work a worker retires while one pool wake + deal round
   trips (4x the runtime's wake threshold).  Calibrated against the
   recorded trajectory: the h3 m=16 wavefront (~128 evals/epoch) must
   stay sequential, the m=32 one (~512) must fork. *)

(* The marked DOALL band rooted at [l]: the head plus every directly
   nested DOALL reachable through collapse marks.  [l] itself counts
   even when unmarked (a band of one). *)
let rec band (l : Flowchart.loop) : Flowchart.loop list =
  if not l.Flowchart.lp_collapse then [ l ]
  else
    match l.Flowchart.lp_body with
    | [ Flowchart.D_loop inner ]
      when inner.Flowchart.lp_kind = Flowchart.Parallel ->
      l :: band inner
    | _ -> [ l ]

(* A band is rectangular when no member's bounds mention an outer band
   variable: every slice of the flattened space has the same extent, so
   a flat deal is perfectly balanced. *)
let rectangular (chain : Flowchart.loop list) =
  let rec go outer = function
    | [] -> true
    | (l : Flowchart.loop) :: rest ->
      let fv =
        Ps_lang.Ast.free_vars l.Flowchart.lp_range.Stypes.sr_lo
        @ Ps_lang.Ast.free_vars l.Flowchart.lp_range.Stypes.sr_hi
      in
      (not (List.exists (fun v -> List.mem v fv) outer))
      && go (l.Flowchart.lp_var :: outer) rest
  in
  go [] chain

type estimate = {
  e_work : float;   (* equation evals per invocation of the nest *)
  e_iters : int;    (* parallel indices dealt to the pool per fork *)
  e_depth : int;    (* marked band depth (1 = nothing to collapse) *)
  e_rect : bool;
}

let lookup env v = List.assoc_opt v env

let eval env e = Analysis.eval_bound (lookup env) e

let extent env (l : Flowchart.loop) =
  let lo = eval env l.Flowchart.lp_range.Stypes.sr_lo in
  let hi = eval env l.Flowchart.lp_range.Stypes.sr_hi in
  max 0 (hi - lo + 1)

let midpoint env (l : Flowchart.loop) =
  let lo = eval env l.Flowchart.lp_range.Stypes.sr_lo in
  let hi = eval env l.Flowchart.lp_range.Stypes.sr_hi in
  lo + ((hi - lo) / 2)

(* Estimate one invocation of the nest headed by [l], under [env]
   holding scalar inputs plus midpoints of enclosing binders.
   @raise Analysis.Unsupported when a bound cannot be evaluated. *)
let estimate env (l : Flowchart.loop) collapse : estimate =
  let cost = Analysis.of_flowchart ~env [ Flowchart.D_loop l ] in
  let chain = band l in
  let rect = rectangular chain in
  let iters =
    if collapse && List.length chain >= 2 then
      (* Flattened deal: the product of the band extents, inner ones
         taken at midpoints of the outer ones for skewed bands. *)
      let rec go env = function
        | [] -> 1
        | m :: rest -> extent env m * go ((m.Flowchart.lp_var, midpoint env m) :: env) rest
      in
      go env chain
    else extent env l
  in
  { e_work = cost.Analysis.work; e_iters = iters;
    e_depth = List.length chain; e_rect = rect }

let decide ~overhead ~cores (l : Flowchart.loop) (est : estimate option) :
    Policy.decision =
  if cores <= 1 then Policy.sequential ~why:"single-core host"
  else
    match est with
    | None -> (
      (* Unanalyzable bounds: assume the space is big enough to fork,
         but only flatten bands we can prove rectangular. *)
      let chain = band l in
      let rect = List.length chain >= 2 && rectangular chain in
      Policy.parallel ~steal:true ~collapse:rect
        ~why:"unanalyzable bounds; assumed wide" ())
    | Some est ->
      if est.e_work < float_of_int overhead then
        Policy.sequential
          ~why:
            (Printf.sprintf "work %.0f below overhead %d" est.e_work overhead)
      else begin
        let collapse = est.e_depth >= 2 && est.e_rect in
        let why =
          if collapse then "rectangular band: flat deal"
          else if est.e_depth >= 2 then "skewed wavefront band: keep nested"
          else "wide nest"
        in
        (* Big uniform spaces get a chunk floor so the guided deal does
           not degenerate into per-point claims near the tail; modest
           nests raise the wake threshold so the fork never pays a full
           pool broadcast. *)
        let chunk_min =
          if est.e_iters >= cores * 64 then
            Some (max 1 (est.e_iters / (cores * 16)))
          else None
        in
        let wake =
          if est.e_work < float_of_int (4 * overhead) then
            Some (2 * max 1 est.e_iters)
          else None
        in
        Policy.parallel ~steal:true ~collapse ?chunk_min ?wake ~why ()
      end

(* Walk the flowchart exactly like [Policy.index], carrying midpoint
   bindings for enclosing DO and SOLVE binders, and decide each fork
   candidate in order. *)
let static ?(overhead = default_overhead) ~(env : (string * int) list) ~cores
    (fc : Flowchart.t) : Policy.table =
  let keyed = Policy.index fc in
  let key_of l =
    (* Physical identity: [keyed] holds the very loop records of [fc]. *)
    List.assoc_opt true (List.map (fun (m, k) -> (m == l, k)) keyed)
  in
  let entries = ref [] in
  let rec go env (d : Flowchart.descriptor) =
    match d with
    | Flowchart.D_data _ | Flowchart.D_eq _ -> ()
    | Flowchart.D_solve s ->
      (* The solved value is data-dependent; its midpoint stands in. *)
      let env =
        match
          ( eval env s.Flowchart.sv_range.Stypes.sr_lo,
            eval env s.Flowchart.sv_range.Stypes.sr_hi )
        with
        | lo, hi -> (s.Flowchart.sv_var, lo + ((hi - lo) / 2)) :: env
        | exception Analysis.Unsupported _ -> env
      in
      List.iter (go env) s.Flowchart.sv_body
    | Flowchart.D_loop l -> (
      match l.Flowchart.lp_kind with
      | Flowchart.Iterative ->
        let env =
          match midpoint env l with
          | mid -> (l.Flowchart.lp_var, mid) :: env
          | exception Analysis.Unsupported _ -> env
        in
        List.iter (go env) l.Flowchart.lp_body
      | Flowchart.Parallel | Flowchart.Grouped _ | Flowchart.Inspected _ -> (
        match key_of l with
        | None -> ()  (* inside another parallel nest: not a fork point *)
        | Some key ->
          let est =
            match estimate env l true with
            | est -> Some est
            | exception Analysis.Unsupported _ -> None
          in
          entries := (key, decide ~overhead ~cores l est) :: !entries))
  in
  List.iter (go env) fc;
  { Policy.t_source = Policy.Static; t_host_cores = cores;
    t_entries = List.rev !entries }
