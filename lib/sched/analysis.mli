(** Work/span accounting for a flowchart.

    For concrete input values, [work] is the number of equation
    evaluations and [span] the critical-path length under an idealized
    PRAM where a DOALL's iterations are simultaneous; work/span is the
    available loop-level parallelism — the machine-independent quantity
    the DO/DOALL distinction controls.  Runtime statistics
    ({!Ps_interp.Exec}) validate [work] exactly for untrimmed schedules. *)

exception Unsupported of string
(** A loop bound could not be evaluated (unbound variable, or a shape
    other than linear / min / max). *)

val eval_bound : (string -> int option) -> Ps_lang.Ast.expr -> int
(** Evaluate a loop bound (a linear form, or min/max of such) under an
    environment of input values and enclosing loop variables.
    @raise Unsupported otherwise. *)

type cost = { work : float; span : float }

val zero : cost

val seq : cost -> cost -> cost
(** Sequential composition. *)

val parallelism : cost -> float
(** work/span; 1.0 for empty schedules. *)

val of_flowchart : env:(string * int) list -> Flowchart.t -> cost
(** Cost under the given values for the module's scalar inputs.  Loops
    whose nested bounds depend on their own variable (after trimming)
    are iterated exactly. *)
