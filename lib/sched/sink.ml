(* Extraction sinking — the paper's "unrotate back into the return
   parameter" (§4, final paragraph).

   After the hyperplane transformation, the result-extraction equation
   reads the transformed array A' with a multi-variable subscript in the
   time dimension (newA[I, J] = A'[2·maxK + I + J, maxK, I]).  Scheduled
   naively, it runs after the DO loop over the time axis, which forces A'
   to be fully allocated: virtual-dimension rule 2 does not apply because
   the outside reference is not an upper-bound subscript.

   This pass moves such an extraction *into* the iterative loop: on
   iteration K' it copies exactly the hyperplane { f(indices) = K' } that
   was just computed, by solving f for one index variable instead of
   scanning.  With every outside reference eliminated, the time dimension
   of A' becomes virtual after all, with the window the paper states
   (three planes for the worked example).

   The pass is sound only if every point of the extraction's index space
   is covered by some iteration, i.e. the range of f over the index space
   lies inside the loop's bounds; this is discharged symbolically with
   the subrange non-emptiness facts (a bounded Farkas certificate). *)

open Ps_sem
open Ps_lang

type sunk = {
  sk_eq : int;               (* the extraction equation *)
  sk_loop_var : string;      (* the iterative loop it was sunk into *)
  sk_data : string;          (* the windowed array it reads *)
  sk_dim : int;              (* the virtual dimension *)
  sk_window : int;           (* window size enabled by the sink *)
  sk_solved_var : string;    (* index variable eliminated by solving f *)
}

type result = {
  s_flowchart : Flowchart.t;
  s_windows : Schedule.window list;
  s_sunk : sunk list;
}

(* ---------------------------------------------------------------- *)

(* Non-emptiness facts of all subranges in scope: hi - lo >= 0. *)
let range_facts (em : Elab.emodule) =
  let of_sr (sr : Stypes.subrange) =
    match Linexpr.of_expr sr.Stypes.sr_lo, Linexpr.of_expr sr.Stypes.sr_hi with
    | Some lo, Some hi -> Some (Linexpr.sub hi lo)
    | _ -> None
  in
  let declared = List.filter_map (fun (_, sr) -> of_sr sr) em.Elab.em_subranges in
  let from_dims =
    List.concat_map
      (fun (d : Elab.data) -> List.filter_map of_sr (Stypes.dims d.Elab.d_ty))
      (em.Elab.em_params @ em.Elab.em_results @ em.Elab.em_locals)
  in
  declared @ from_dims

(* All references to [data] in an expression, as subscript lists. *)
let rec refs_to data (e : Ast.expr) acc =
  match e.Ast.e with
  | Ast.Int _ | Ast.Real _ | Ast.Bool _ -> acc
  | Ast.Var x -> if String.equal x data then ([] : Ast.expr list) :: acc else acc
  | Ast.Index ({ e = Ast.Var x; _ }, subs) when String.equal x data ->
    let acc = List.fold_left (fun acc s -> refs_to data s acc) acc subs in
    subs :: acc
  | Ast.Index (b, subs) ->
    List.fold_left (fun acc s -> refs_to data s acc) (refs_to data b acc) subs
  | Ast.Field (b, _) -> refs_to data b acc
  | Ast.Call (_, args) -> List.fold_left (fun acc a -> refs_to data a acc) acc args
  | Ast.Unop (_, a) -> refs_to data a acc
  | Ast.Binop (_, a, b) -> refs_to data b (refs_to data a acc)
  | Ast.If (c, t, f) -> refs_to data f (refs_to data t (refs_to data c acc))

(* Data names referenced in an expression. *)
let rec data_used em (e : Ast.expr) acc =
  match e.Ast.e with
  | Ast.Int _ | Ast.Real _ | Ast.Bool _ -> acc
  | Ast.Var x -> if Elab.find_data em x <> None then x :: acc else acc
  | Ast.Index (b, subs) ->
    List.fold_left (fun acc s -> data_used em s acc) (data_used em b acc) subs
  | Ast.Field (b, _) -> data_used em b acc
  | Ast.Call (_, args) -> List.fold_left (fun acc a -> data_used em a acc) acc args
  | Ast.Unop (_, a) -> data_used em a acc
  | Ast.Binop (_, a, b) -> data_used em b (data_used em a acc)
  | Ast.If (c, t, f) -> data_used em f (data_used em t (data_used em c acc))

(* The descriptor shape we can sink: a nest of parallel loops around a
   single equation.  Returns (loop vars outermost-first, the equation). *)
let rec extraction_shape (d : Flowchart.descriptor) =
  match d with
  | Flowchart.D_eq er -> Some ([], er)
  | Flowchart.D_loop { lp_kind = Flowchart.Parallel; lp_var; lp_range; lp_body = [ inner ]; _ } -> (
    match extraction_shape inner with
    | Some (vars, er) -> Some ((lp_var, lp_range) :: vars, er)
    | None -> None)
  | Flowchart.D_loop _ | Flowchart.D_data _ | Flowchart.D_solve _ -> None

(* Locate the dimension of [data] that the loop variable [lp_var] scans,
   from a defining equation's subscripts. *)
let loop_dim_of em body_eq_ids ~data ~lp_var =
  List.find_map
    (fun id ->
      let q = Elab.eq_exn em id in
      List.find_map
        (fun (df : Elab.def) ->
          if not (String.equal df.Elab.df_data data) then None
          else
            let rec find p = function
              | [] -> None
              | Elab.Sub_index ix :: _ when String.equal ix.Elab.ix_var lp_var ->
                Some p
              | _ :: rest -> find (p + 1) rest
            in
            find 0 df.Elab.df_subs)
        q.Elab.q_defs)
    body_eq_ids

(* ---------------------------------------------------------------- *)

let apply (em : Elab.emodule) (sched : Schedule.result) : result =
  Ps_obs.Trace.with_span "schedule.sink" @@ fun () ->
  let facts = range_facts em in
  let graph = sched.Schedule.r_graph in
  let windows = ref sched.Schedule.r_windows in
  let sunk = ref [] in
  (* Try to sink extraction [ext] (shape already matched) into loop [l].
     Returns the augmented loop on success. *)
  let try_sink (l : Flowchart.loop) (loop_vars : (string * Stypes.subrange) list)
      (er : Flowchart.eq_ref) : Flowchart.loop option =
    let q = Elab.eq_exn em er.Flowchart.er_id in
    let body_eq_ids = Flowchart.equations l.Flowchart.lp_body in
    (* Candidate arrays: local data read by q and defined only inside l. *)
    let used = List.sort_uniq String.compare (data_used em q.Elab.q_rhs []) in
    let candidate data =
      match Elab.find_data em data with
      | Some d when d.Elab.d_kind = Elab.Local -> (
        (* Defined only inside the loop? *)
        let defs =
          List.filter_map
            (fun (q' : Elab.eq) ->
              if List.exists (fun df -> String.equal df.Elab.df_data data) q'.Elab.q_defs
              then Some q'.Elab.q_id
              else None)
            em.Elab.em_eqs
        in
        if not (List.for_all (fun id -> List.mem id body_eq_ids) defs) then None
        else
          (* Other reads of q must be inputs. *)
          let others =
            List.filter
              (fun nm ->
                (not (String.equal nm data))
                && (match Elab.find_data em nm with
                    | Some d -> d.Elab.d_kind <> Elab.Input
                    | None -> true))
              used
          in
          if others <> [] then None
          else (
            match loop_dim_of em body_eq_ids ~data ~lp_var:l.Flowchart.lp_var with
            | None -> None
            | Some p -> Some (data, p)))
      | _ -> None
    in
    match List.find_map candidate used with
    | None -> None
    | Some (data, p) -> (
      (* Every reference of q to data must agree on a single linear f at
         dimension p, involving at least one of q's index variables. *)
      let refs = refs_to data q.Elab.q_rhs [] in
      let q_index_vars = List.map (fun ix -> ix.Elab.ix_var) q.Elab.q_indices in
      let f_of subs =
        if List.length subs <= p then None
        else
          match Linexpr.of_expr (List.nth subs p) with
          | Some f when List.exists (fun (v, _) -> List.mem v q_index_vars) f.Linexpr.terms ->
            Some f
          | _ -> None
      in
      match refs with
      | [] -> None
      | subs0 :: rest -> (
        match f_of subs0 with
        | None -> None
        | Some f ->
          if
            not
              (List.for_all
                 (fun subs ->
                   match f_of subs with
                   | Some f' -> Linexpr.equal f f'
                   | None -> false)
                 rest)
          then None
          else
            (* Coverage: range of f over q's index space inside the loop
               bounds. *)
            let lin e = Linexpr.of_expr e in
            let range_of_var v =
              List.find_map
                (fun (ix : Elab.index) ->
                  if String.equal ix.Elab.ix_var v then
                    match
                      lin ix.Elab.ix_range.Stypes.sr_lo, lin ix.Elab.ix_range.Stypes.sr_hi
                    with
                    | Some lo, Some hi -> Some (lo, hi)
                    | _ -> None
                  else None)
                q.Elab.q_indices
            in
            let f_min = ref (Linexpr.of_int f.Linexpr.const) in
            let f_max = ref (Linexpr.of_int f.Linexpr.const) in
            let ok = ref true in
            List.iter
              (fun (v, c) ->
                match range_of_var v with
                | Some (lo, hi) ->
                  let a = Linexpr.scale c lo and b = Linexpr.scale c hi in
                  if c >= 0 then begin
                    f_min := Linexpr.add !f_min a;
                    f_max := Linexpr.add !f_max b
                  end
                  else begin
                    f_min := Linexpr.add !f_min b;
                    f_max := Linexpr.add !f_max a
                  end
                | None ->
                  (* A parameter term: contributes equally to both ends. *)
                  let t = Linexpr.scale c (Linexpr.of_var v) in
                  f_min := Linexpr.add !f_min t;
                  f_max := Linexpr.add !f_max t)
              f.Linexpr.terms;
            let loop_lo = lin l.Flowchart.lp_range.Stypes.sr_lo in
            let loop_hi = lin l.Flowchart.lp_range.Stypes.sr_hi in
            (match loop_lo, loop_hi with
             | Some lo, Some hi ->
               if
                 not
                   (Linexpr.prove_nonneg ~assumptions:facts
                      (Linexpr.sub !f_min lo)
                    && Linexpr.prove_nonneg ~assumptions:facts
                         (Linexpr.sub hi !f_max))
               then ok := false
             | None, _ | _, None -> ok := false);
            if not !ok then None
            else
              (* Pick the innermost index variable with coefficient +-1. *)
              let solvable =
                List.rev q_index_vars
                |> List.find_map (fun v ->
                       match List.assoc_opt v f.Linexpr.terms with
                       | Some c when abs c = 1 -> Some (v, c)
                       | _ -> None)
              in
              match solvable with
              | None -> None
              | Some (u, c) -> (
                (* u = c * (loop_var - (f - c*u)) *)
                let rest_f =
                  Linexpr.sub f (Linexpr.scale c (Linexpr.of_var u))
                in
                let solved =
                  Linexpr.scale c
                    (Linexpr.sub (Linexpr.of_var l.Flowchart.lp_var) rest_f)
                in
                let u_range =
                  List.find
                    (fun (ix : Elab.index) -> String.equal ix.Elab.ix_var u)
                    q.Elab.q_indices
                in
                (* Rebuild the nest: parallel loops over the remaining
                   index variables, then the solve. *)
                let remaining =
                  List.filter (fun (v, _) -> not (String.equal v u)) loop_vars
                in
                let inner =
                  Flowchart.D_solve
                    { sv_var = u;
                      sv_range = u_range.Elab.ix_range;
                      sv_rhs = Linexpr.to_expr solved;
                      sv_body = [ Flowchart.D_eq er ] }
                in
                let nest =
                  List.fold_right
                    (fun (v, range) body ->
                      Flowchart.D_loop
                        { lp_var = v;
                          lp_range = range;
                          lp_kind = Flowchart.Parallel;
                          lp_collapse = false;
                          lp_body = [ body ] })
                    remaining inner
                in
                (* Window: every use of data must now be an I/I-const
                   reference from inside the loop, or the sunk equation. *)
                let max_back = ref 0 in
                let uses_ok =
                  List.for_all
                    (fun e ->
                      match e.Ps_graph.Dgraph.e_kind, e.Ps_graph.Dgraph.e_src,
                            e.Ps_graph.Dgraph.e_dst with
                      | Ps_graph.Dgraph.Use, Ps_graph.Dgraph.Data d',
                        Ps_graph.Dgraph.Eq tgt
                        when String.equal d' data ->
                        if tgt = q.Elab.q_id then true
                        else if List.mem tgt body_eq_ids then (
                          match e.Ps_graph.Dgraph.e_subs.(p) with
                          | Ps_graph.Label.Affine { offset; _ } when offset <= 0 ->
                            if -offset > !max_back then max_back := -offset;
                            true
                          | _ -> false)
                        else false
                      | _ -> true)
                    (Ps_graph.Dgraph.edges graph)
                in
                (* Write side, mirroring [Schedule.analyze_virtual]:
                   sinking the reader fixes a rule-2 violation, not a
                   write outside the producing loop — those still
                   clobber the window, so the same definition rules
                   apply. *)
                let window = !max_back + 1 in
                let defs_ok =
                  List.for_all
                    (fun e ->
                      match e.Ps_graph.Dgraph.e_kind, e.Ps_graph.Dgraph.e_src,
                            e.Ps_graph.Dgraph.e_dst with
                      | Ps_graph.Dgraph.Def, Ps_graph.Dgraph.Eq src,
                        Ps_graph.Dgraph.Data d'
                        when String.equal d' data -> (
                        let inside = List.mem src body_eq_ids in
                        match e.Ps_graph.Dgraph.e_subs.(p) with
                        | Ps_graph.Label.Affine { offset = 0; _ } -> inside
                        | Ps_graph.Label.Const_low -> not inside
                        | Ps_graph.Label.Const_mid k ->
                          (not inside) && k < window
                        | _ -> false)
                      | _ -> true)
                    (Ps_graph.Dgraph.edges graph)
                in
                if not (uses_ok && defs_ok) then None
                else begin
                  let w =
                    { Schedule.w_data = data; w_dim = p; w_size = window }
                  in
                  windows :=
                    w
                    :: List.filter
                         (fun (w' : Schedule.window) ->
                           not
                             (String.equal w'.Schedule.w_data data
                              && w'.Schedule.w_dim = p))
                         !windows;
                  sunk :=
                    { sk_eq = q.Elab.q_id;
                      sk_loop_var = l.Flowchart.lp_var;
                      sk_data = data;
                      sk_dim = p;
                      sk_window = window;
                      sk_solved_var = u }
                    :: !sunk;
                  Some { l with Flowchart.lp_body = l.Flowchart.lp_body @ [ nest ] }
                end)))
  in
  (* Scan the top level: for each iterative loop, try to absorb each later
     extraction-shaped descriptor. *)
  let rec scan (fc : Flowchart.t) : Flowchart.t =
    match fc with
    | [] -> []
    | Flowchart.D_loop ({ lp_kind = Flowchart.Iterative; _ } as l) :: rest ->
      let l = ref l in
      let rest =
        List.filter_map
          (fun d ->
            match extraction_shape d with
            | Some (loop_vars, er) -> (
              match try_sink !l loop_vars er with
              | Some l' ->
                l := l';
                None
              | None -> Some d)
            | None -> Some d)
          rest
      in
      Flowchart.D_loop !l :: scan rest
    | d :: rest -> d :: scan rest
  in
  let fc = scan sched.Schedule.r_flowchart in
  { s_flowchart = fc; s_windows = !windows; s_sunk = List.rev !sunk }
