(* Loop-bound trimming for hyperplane-transformed programs.

   The transformation of paper §4 declares the new array over the
   bounding box of the image lattice, and guards the merged equation with
   an out-of-lattice test — so the generated loops scan the whole box and
   the guard rejects the points between the wavefronts.  Lamport's method
   instead derives exact loop bounds.  This pass recovers them for the
   innermost loops: when a loop's body is a single equation of the form

       if <out-of-lattice> then <dummy> else <real rhs>

   and a disjunct of the guard is linear in the loop variable with
   coefficient +-1 (all other variables bound by enclosing loops), the
   negated disjunct becomes a bound:  v >= e  tightens the lower bound to
   max(lo, e),  v <= e  tightens the upper bound to min(hi, e).

   The guard itself is kept (it still protects any disjunct that could
   not be converted), so trimming is always safe; it merely removes the
   all-dummy iterations.  The [trimmed] count reports how many bounds
   were tightened, and the work/span analysis ([Analysis]) evaluates the
   resulting min/max bounds exactly. *)

open Ps_sem

(* Negate one comparison disjunct into "linear >= 0" form. *)
let constraint_of_disjunct (e : Ps_lang.Ast.expr) : Linexpr.t option =
  match e.Ps_lang.Ast.e with
  | Ps_lang.Ast.Binop (op, a, b) -> (
    match Linexpr.of_expr a, Linexpr.of_expr b with
    | Some la, Some lb -> (
      match op with
      | Ps_lang.Ast.Lt -> Some (Linexpr.sub la lb)            (* ¬(a<b): a-b >= 0 *)
      | Ps_lang.Ast.Gt -> Some (Linexpr.sub lb la)            (* ¬(a>b): b-a >= 0 *)
      | Ps_lang.Ast.Le -> Some (Linexpr.add_const (-1) (Linexpr.sub la lb))
      | Ps_lang.Ast.Ge -> Some (Linexpr.add_const (-1) (Linexpr.sub lb la))
      | _ -> None)
    | _ -> None)
  | _ -> None

(* Flatten an or-tree. *)
let rec disjuncts (e : Ps_lang.Ast.expr) =
  match e.Ps_lang.Ast.e with
  | Ps_lang.Ast.Binop (Ps_lang.Ast.Or, a, b) -> disjuncts a @ disjuncts b
  | _ -> [ e ]

let is_dummy (e : Ps_lang.Ast.expr) =
  match e.Ps_lang.Ast.e with
  | Ps_lang.Ast.Real _ | Ps_lang.Ast.Int _ | Ps_lang.Ast.Bool _ -> true
  | _ -> false

let mk_max a b = Ps_lang.Ast.mk (Ps_lang.Ast.Call ("max", [ a; b ]))

let mk_min a b = Ps_lang.Ast.mk (Ps_lang.Ast.Call ("min", [ a; b ]))

(* Tighten one loop around a guarded equation.  [outer] is the set of
   variables bound by enclosing loops. *)
let tighten em (l : Flowchart.loop) ~outer : Flowchart.loop * int =
  match l.Flowchart.lp_body with
  | [ Flowchart.D_eq er ] -> (
    let q = Elab.eq_exn em er.Flowchart.er_id in
    match q.Elab.q_rhs.Ps_lang.Ast.e with
    | Ps_lang.Ast.If (guard, dummy, _) when is_dummy dummy ->
      let v = l.Flowchart.lp_var in
      (* The equation refers to its own index names; map v back through
         the aliases. *)
      let v_names =
        v
        :: List.filter_map
             (fun (from, to_) -> if String.equal to_ v then Some from else None)
             er.Flowchart.er_aliases
      in
      let ok_var x =
        List.mem x outer
        || Elab.find_data em x <> None (* module inputs / scalars *)
      in
      let lo = ref l.Flowchart.lp_range.Stypes.sr_lo in
      let hi = ref l.Flowchart.lp_range.Stypes.sr_hi in
      let count = ref 0 in
      List.iter
        (fun d ->
          match constraint_of_disjunct d with
          | None -> ()
          | Some c ->
            let v_coeff =
              List.fold_left
                (fun acc name ->
                  match List.assoc_opt name c.Linexpr.terms with
                  | Some k -> acc + k
                  | None -> acc)
                0 v_names
            in
            let rest =
              List.filter
                (fun (x, _) -> not (List.mem x v_names))
                c.Linexpr.terms
            in
            let rest_ok =
              List.for_all
                (fun (x, _) ->
                  ok_var x
                  || List.exists
                       (fun (from, to_) ->
                         String.equal from x && List.mem to_ outer)
                       er.Flowchart.er_aliases)
                rest
            in
            if rest_ok && abs v_coeff = 1 then begin
              (* c = v_coeff * v + r >= 0 *)
              let r = { c with Linexpr.terms = rest } in
              (* Express r over the loop variables (undo aliases). *)
              let subst =
                List.filter_map
                  (fun (from, to_) ->
                    if List.mem to_ outer then
                      Some (from, Ps_lang.Ast.var_e to_)
                    else None)
                  er.Flowchart.er_aliases
              in
              let r_expr = Ps_lang.Ast.subst_vars subst (Linexpr.to_expr r) in
              incr count;
              if v_coeff = 1 then
                (* v >= -r *)
                lo :=
                  mk_max !lo
                    (Ps_lang.Ast.subst_vars subst
                       (Linexpr.to_expr (Linexpr.neg r)))
              else
                (* v <= r *)
                hi := mk_min !hi r_expr
            end)
        (disjuncts guard);
      if !count = 0 then (l, 0)
      else
        ( { l with
            Flowchart.lp_range =
              { l.Flowchart.lp_range with Stypes.sr_lo = !lo; sr_hi = !hi } },
          !count )
    | _ -> (l, 0))
  | _ -> (l, 0)

let rec trim_list em ~outer (fc : Flowchart.t) : Flowchart.t * int =
  let total = ref 0 in
  let fc =
    List.map
      (fun d ->
        match d with
        | Flowchart.D_loop l ->
          let l, n = tighten em l ~outer in
          total := !total + n;
          let body, n' =
            trim_list em ~outer:(l.Flowchart.lp_var :: outer) l.Flowchart.lp_body
          in
          total := !total + n';
          Flowchart.D_loop { l with Flowchart.lp_body = body }
        | Flowchart.D_solve s ->
          let body, n =
            trim_list em ~outer:(s.Flowchart.sv_var :: outer) s.Flowchart.sv_body
          in
          total := !total + n;
          Flowchart.D_solve { s with Flowchart.sv_body = body }
        | (Flowchart.D_eq _ | Flowchart.D_data _) as d -> d)
      fc
  in
  (fc, !total)

(* Entry point: returns the flowchart with tightened inner bounds and the
   number of bounds converted from guard disjuncts. *)
let apply (em : Elab.emodule) (fc : Flowchart.t) : Flowchart.t * int =
  Ps_obs.Trace.with_span "schedule.trim" (fun () -> trim_list em ~outer:[] fc)
