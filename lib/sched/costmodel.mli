(** Static scheduling cost model: derive a {!Policy.table} from a
    flowchart's symbolic bounds and concrete scalar inputs.

    Per fork candidate, the model estimates the work of one invocation
    (equation evaluations per fork, with enclosing DO variables taken at
    the midpoints of their ranges) and decides: sequential when the work
    is below the parallel overhead or the host has one core; collapse
    only for marked bands with rectangular inner bounds (a skewed
    trimmed wavefront stays nested — the recorded h3 regression, fixed
    by construction); stealing with a chunk floor on big uniform spaces
    and a raised wake threshold on modest ones. *)

val default_overhead : int
(** Equation evaluations per invocation below which forking is a loss
    (approximately one pool wake + deal round trip). *)

val band : Flowchart.loop -> Flowchart.loop list
(** The marked DOALL band rooted at a head: the head plus every directly
    nested DOALL reachable through collapse marks. *)

val rectangular : Flowchart.loop list -> bool
(** No member's bounds mention an outer band variable. *)

val static :
  ?overhead:int ->
  env:(string * int) list ->
  cores:int ->
  Flowchart.t ->
  Policy.table
(** The static table for a flowchart under the given scalar inputs and
    host core count.  Total: a nest whose bounds cannot be evaluated is
    assumed wide (forked, collapsed only if provably rectangular). *)
