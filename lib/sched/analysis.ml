(* Work/span accounting for a flowchart.

   For a schedule and concrete values of the module inputs, compute the
   total number of equation evaluations (work) and the length of the
   critical path under an idealized PRAM in which a DOALL's iterations
   are simultaneous (span).  work/span is the available loop-level
   parallelism — the machine-independent quantity the paper's DO/DOALL
   distinction controls.  The evaluation section uses it alongside wall
   -clock timing, which on a given host saturates at the core count.

   Loop bounds are linear forms over the inputs, except after bound
   trimming ([Trim]), where they are min/max combinations that may also
   mention enclosing loop variables; such loops are costed by iterating
   the enclosing ranges exactly. *)

open Ps_sem

exception Unsupported of string

type cost = { work : float; span : float }

let zero = { work = 0.; span = 0. }

let seq a b = { work = a.work +. b.work; span = a.span +. b.span }

let parallelism c = if c.span = 0. then 1. else c.work /. c.span

(* Bound evaluator: linear forms plus min/max, under an environment of
   input values and enclosing loop variables. *)
let rec eval_bound env (e : Ps_lang.Ast.expr) : int =
  match Linexpr.of_expr e with
  | Some l -> (
    try Linexpr.eval env l
    with Invalid_argument m -> raise (Unsupported m))
  | None -> (
    match e.Ps_lang.Ast.e with
    | Ps_lang.Ast.Call ("min", [ a; b ]) -> min (eval_bound env a) (eval_bound env b)
    | Ps_lang.Ast.Call ("max", [ a; b ]) -> max (eval_bound env a) (eval_bound env b)
    | _ -> raise (Unsupported "loop bound is neither linear nor min/max"))

(* Variables occurring in the bounds of loops nested in [fc]; a loop
   whose body's bounds do not mention its own variable can be costed as
   trips x body without iterating. *)
let rec bound_vars (fc : Flowchart.t) acc =
  List.fold_left
    (fun acc d ->
      match d with
      | Flowchart.D_loop l ->
        let acc =
          Ps_lang.Ast.free_vars l.Flowchart.lp_range.Stypes.sr_lo
          @ Ps_lang.Ast.free_vars l.Flowchart.lp_range.Stypes.sr_hi
          @ acc
        in
        bound_vars l.Flowchart.lp_body acc
      | Flowchart.D_solve s -> bound_vars s.Flowchart.sv_body acc
      | Flowchart.D_eq _ | Flowchart.D_data _ -> acc)
    acc fc

let rec of_descs env (fc : Flowchart.t) : cost =
  List.fold_left (fun acc d -> seq acc (of_desc env d)) zero fc

and of_desc env (d : Flowchart.descriptor) : cost =
  match d with
  | Flowchart.D_data _ -> zero
  | Flowchart.D_eq _ -> { work = 1.; span = 1. }
  | Flowchart.D_solve s ->
    (* Runs at most once per enclosing iteration. *)
    of_descs env s.Flowchart.sv_body
  | Flowchart.D_loop l ->
    let lo = eval_bound env l.Flowchart.lp_range.Stypes.sr_lo in
    let hi = eval_bound env l.Flowchart.lp_range.Stypes.sr_hi in
    let trips = max 0 (hi - lo + 1) in
    let body_varies =
      List.mem l.Flowchart.lp_var (bound_vars l.Flowchart.lp_body [])
    in
    (* A grouped loop's classes run in parallel, index order within
       each: the span is the longest class.  The inspector's modulus is
       its distance expression evaluated under the inputs (clamped to a
       sequential run when the inspection would fail at runtime). *)
    let modulus () =
      match l.Flowchart.lp_kind with
      | Flowchart.Grouped g -> Some g
      | Flowchart.Inspected e ->
        let d = eval_bound env e in
        Some (if d >= 1 then d else 1)
      | Flowchart.Iterative | Flowchart.Parallel -> None
    in
    if not body_varies then begin
      let body = of_descs env l.Flowchart.lp_body in
      match l.Flowchart.lp_kind with
      | Flowchart.Iterative ->
        { work = float_of_int trips *. body.work;
          span = float_of_int trips *. body.span }
      | Flowchart.Parallel ->
        { work = float_of_int trips *. body.work; span = body.span }
      | Flowchart.Grouped _ | Flowchart.Inspected _ ->
        let g = Option.get (modulus ()) in
        let longest = (trips + g - 1) / g in
        { work = float_of_int trips *. body.work;
          span = float_of_int longest *. body.span }
    end
    else begin
      (* Bounds inside depend on this loop's variable (trimmed nests):
         iterate exactly. *)
      let work = ref 0. and span_sum = ref 0. and span_max = ref 0. in
      let class_spans =
        match modulus () with Some g -> Array.make g 0. | None -> [||]
      in
      for v = lo to hi do
        let env' x =
          if String.equal x l.Flowchart.lp_var then Some v else env x
        in
        let body = of_descs env' l.Flowchart.lp_body in
        work := !work +. body.work;
        span_sum := !span_sum +. body.span;
        if body.span > !span_max then span_max := body.span;
        if Array.length class_spans > 0 then begin
          let r = (v - lo) mod Array.length class_spans in
          class_spans.(r) <- class_spans.(r) +. body.span
        end
      done;
      match l.Flowchart.lp_kind with
      | Flowchart.Iterative -> { work = !work; span = !span_sum }
      | Flowchart.Parallel -> { work = !work; span = !span_max }
      | Flowchart.Grouped _ | Flowchart.Inspected _ ->
        { work = !work; span = Array.fold_left max 0. class_spans }
    end

(* [env] maps scalar input names to their values. *)
let of_flowchart ~(env : (string * int) list) (fc : Flowchart.t) : cost =
  of_descs (fun v -> List.assoc_opt v env) fc
