(* Flowchart descriptors (paper §3.2, Fig. 4).

   A flowchart is a list of descriptors.  A descriptor denotes either a
   dependency-graph node (a data item or an equation, for which the code
   generator emits straight-line code) or a subrange type, meaning a for
   loop over that subrange; the latter carries the loop flavor — iterative
   (DO) or parallel (DOALL) — and the list of descriptors nested inside. *)

open Ps_sem

type loop_kind =
  | Iterative  (* DO: carried dependence, must run in index order *)
  | Parallel   (* DOALL: iterations are independent *)
  | Grouped of int
      (* DOGROUP(g): every carried dependence distance is a multiple of
         g >= 2, so the g residue classes mod g are mutually independent
         — a DOALL over the classes, index order within each class. *)
  | Inspected of Ps_lang.Ast.expr
      (* DOINSPECT(d): the carried distance is the runtime parameter
         expression d.  An inspector node evaluates d on entry: d >= 1
         partitions the iterations into d independent classes (run as
         DOGROUP(d)); d < 1 is a runtime legality failure. *)

type descriptor =
  | D_data of string
      (* A data item: a placement marker; the code generator emits the
         declaration/allocation here. *)
  | D_eq of eq_ref
  | D_loop of loop
  | D_solve of solve

and eq_ref = {
  er_id : int;
  er_aliases : (string * string) list;
      (* Renamings [equation index var -> enclosing loop var] for
         equations whose index name differs from the canonical loop
         variable chosen for their component. *)
}

and loop = {
  lp_var : string;              (* canonical loop variable *)
  lp_range : Stypes.subrange;   (* bounds of the loop *)
  lp_kind : loop_kind;
  lp_collapse : bool;
      (* Head of a perfectly nested DOALL band: the interpreter and code
         generator may flatten this loop together with the DOALL
         immediately inside it into one combined iteration space.
         Marked by the [Collapse] pass; always false straight out of the
         scheduler. *)
  lp_body : descriptor list;
}

(* A solved subscript: instead of looping over [sv_var]'s subrange, its
   value is computed from the enclosing loop variables and the body runs
   only if it falls inside the subrange.  Produced by the
   extraction-sinking pass ([Sink]), which fuses a post-loop read of a
   windowed array into the loop that produces it — the paper's "unrotate
   back into the return parameter" (§4). *)
and solve = {
  sv_var : string;
  sv_range : Stypes.subrange;
  sv_rhs : Ps_lang.Ast.expr;    (* value in terms of enclosing loop vars *)
  sv_body : descriptor list;
}

type t = descriptor list

let kind_name = function
  | Iterative -> "DO"
  | Parallel -> "DOALL"
  | Grouped g -> Printf.sprintf "DOGROUP(%d)" g
  | Inspected e -> Printf.sprintf "DOINSPECT(%s)" (Ps_lang.Pretty.expr_to_string e)

(* Display form of a loop's keyword; a [*] marks the head of a
   collapsible DOALL band, so marked and unmarked flowcharts are
   distinguishable in goldens while unmarked output is unchanged. *)
let loop_keyword l = kind_name l.lp_kind ^ if l.lp_collapse then "*" else ""

(* Compact single-line form used throughout the paper's Fig. 5:
   "DO K (DOALL I (DOALL J (eq.3)))". *)
let rec pp_compact em ppf (fc : t) =
  Fmt.pf ppf "%a" (Fmt.list ~sep:(Fmt.any "; ") (pp_descriptor_compact em)) fc

and pp_descriptor_compact em ppf = function
  | D_data d -> Fmt.pf ppf "%s" d
  | D_eq { er_id; _ } -> Fmt.string ppf (Elab.eq_exn em er_id).Elab.q_name
  | D_loop l ->
    Fmt.pf ppf "%s %s (%a)" (loop_keyword l) l.lp_var (pp_compact em) l.lp_body
  | D_solve s ->
    Fmt.pf ppf "SOLVE %s = %s (%a)" s.sv_var
      (Ps_lang.Pretty.expr_to_string s.sv_rhs)
      (pp_compact em) s.sv_body

let to_compact_string em fc = Fmt.str "%a" (pp_compact em) fc

(* Indented multi-line form matching the paper's Fig. 6 / Fig. 7. *)
let rec pp_tree em ppf (fc : t) =
  Fmt.pf ppf "%a" (Fmt.list ~sep:Fmt.cut (pp_descriptor_tree em)) fc

and pp_descriptor_tree em ppf = function
  | D_data d -> Fmt.string ppf d
  | D_eq { er_id; _ } -> Fmt.string ppf (Elab.eq_exn em er_id).Elab.q_name
  | D_loop l ->
    Fmt.pf ppf "@[<v2>%s %s (@,%a@]@,)" (loop_keyword l) l.lp_var
      (fun ppf body -> pp_tree em ppf body)
      l.lp_body
  | D_solve s ->
    Fmt.pf ppf "@[<v2>SOLVE %s = %s (@,%a@]@,)" s.sv_var
      (Ps_lang.Pretty.expr_to_string s.sv_rhs)
      (fun ppf body -> pp_tree em ppf body)
      s.sv_body

let to_tree_string em fc = Fmt.str "@[<v>%a@]" (pp_tree em) fc

(* Structural queries used by tests and benches. *)

let rec count_loops ?kind (fc : t) =
  List.fold_left
    (fun acc d ->
      match d with
      | D_loop l ->
        let me =
          match kind with
          | None -> 1
          | Some k -> if l.lp_kind = k then 1 else 0
        in
        acc + me + count_loops ?kind l.lp_body
      | D_solve s -> acc + count_loops ?kind s.sv_body
      | D_data _ | D_eq _ -> acc)
    0 fc

let rec equations (fc : t) =
  List.concat_map
    (function
      | D_eq { er_id; _ } -> [ er_id ]
      | D_loop l -> equations l.lp_body
      | D_solve s -> equations s.sv_body
      | D_data _ -> [])
    fc

type binder = B_loop of loop | B_solve of solve

let binder_var = function B_loop l -> l.lp_var | B_solve s -> s.sv_var

let iter_eqs f (fc : t) =
  let seq = ref 0 in
  let rec go binders d =
    match d with
    | D_data _ -> ()
    | D_eq er ->
      f ~binders:(List.rev binders) ~seq:!seq er;
      incr seq
    | D_loop l -> List.iter (go (B_loop l :: binders)) l.lp_body
    | D_solve s -> List.iter (go (B_solve s :: binders)) s.sv_body
  in
  List.iter (go []) fc

let rec map_loops f (fc : t) =
  List.map
    (function
      | D_loop l -> D_loop (f { l with lp_body = map_loops f l.lp_body })
      | D_solve s -> D_solve { s with sv_body = map_loops f s.sv_body }
      | (D_data _ | D_eq _) as d -> d)
    fc
