(* Loop merging — the improvement the paper lists as ongoing work (§5:
   "Improvement of the scheduler to better merge iterative loops"; see
   also its discussion of [11], which combines non-recursively related
   equations that depend on the same subscripts).

   The component-at-a-time scheduler emits one loop nest per MSCC, so two
   equations over the same subranges that are not recursively related end
   up in separate nests (eq.1 and eq.2 of Fig. 6 both scan I x J).  This
   pass merges adjacent sibling loops when it is legal:

   - both loops run over the same subrange (equal bounds);
   - for every dependence from an equation inside the first loop (or from
     a data item it defines) to an equation inside the second, the
     subscript in the merged dimension is the aligned index variable
     itself ("I") or "I - c" with c >= 0 — i.e. iteration i of the second
     body needs values produced at iteration <= i of the first, which the
     fused body order satisfies;
   - the merged loop is DOALL only if both were DOALL and every cross
     dependence in the merged dimension is exact ("I"): a DOALL may not
     read earlier iterations of its fused partner.

   Merging proceeds bottom-up, so two-deep nests (DOALL I (DOALL J ...))
   fuse completely. *)

open Ps_sem
open Ps_graph

type stats = { mutable merged : int }

(* Equations (transitively) contained in a descriptor. *)
let eqs_of d = Flowchart.equations [ d ]

(* Data items defined by the given equations. *)
let outputs_of em eq_ids =
  List.concat_map
    (fun id ->
      List.map (fun df -> df.Elab.df_data) (Elab.eq_exn em id).Elab.q_defs)
    eq_ids
  |> List.sort_uniq String.compare

let same_range (a : Stypes.subrange) (b : Stypes.subrange) =
  Ps_lang.Ast.equal_expr a.Stypes.sr_lo b.Stypes.sr_lo
  && Ps_lang.Ast.equal_expr a.Stypes.sr_hi b.Stypes.sr_hi

(* The dimension position of [data] aligned with [var] in the defining
   equations among [eq_ids]. *)
let aligned_dim em eq_ids data var =
  List.find_map
    (fun id ->
      let q = Elab.eq_exn em id in
      List.find_map
        (fun (df : Elab.def) ->
          if not (String.equal df.Elab.df_data data) then None
          else
            let rec find p = function
              | [] -> None
              | Elab.Sub_index ix :: _ when String.equal ix.Elab.ix_var var -> Some p
              | _ :: rest -> find (p + 1) rest
            in
            find 0 df.Elab.df_subs)
        q.Elab.q_defs)
    eq_ids

(* Cross-dependence check: every use by [later_eqs] of data defined by
   [earlier_eqs] must be "I" or "I - c" in the fused dimension.  Returns
   [None] if illegal, [Some exact] where [exact] says all offsets were 0. *)
let cross_deps_ok g em ~earlier_eqs ~later_eqs ~var1 ~var2 =
  let earlier_out = outputs_of em earlier_eqs in
  let exact = ref true in
  let ok =
    List.for_all
      (fun e ->
        match e.Dgraph.e_kind, e.Dgraph.e_src, e.Dgraph.e_dst with
        | Dgraph.Use, Dgraph.Data d, Dgraph.Eq tgt
          when List.mem d earlier_out && List.mem tgt later_eqs -> (
          match aligned_dim em earlier_eqs d var1 with
          | None -> false (* the merged dim does not index this data *)
          | Some p -> (
            match e.Dgraph.e_subs.(p) with
            | Label.Affine { var; offset; _ }
              when String.equal var var2 && offset <= 0 ->
              if offset <> 0 then exact := false;
              true
            | _ -> false))
        | _ -> true)
      (Dgraph.edges g)
  in
  if ok then Some !exact else None

(* Rename an index variable throughout a descriptor list: loop variables
   stay as they are; equations get an alias added. *)
let rec realias ~from ~to_ (fc : Flowchart.t) : Flowchart.t =
  if String.equal from to_ then fc
  else
    List.map
      (function
        | Flowchart.D_eq er ->
          Flowchart.D_eq
            { er with
              Flowchart.er_aliases =
                (* Redirect anything aliased to [from], and [from]
                   itself. *)
                ((from, to_)
                 :: List.map
                      (fun (a, b) ->
                        if String.equal b from then (a, to_) else (a, b))
                      er.Flowchart.er_aliases) }
        | Flowchart.D_loop l ->
          Flowchart.D_loop { l with Flowchart.lp_body = realias ~from ~to_ l.Flowchart.lp_body }
        | Flowchart.D_solve s ->
          Flowchart.D_solve
            { s with
              Flowchart.sv_rhs =
                Ps_lang.Ast.subst_vars [ (from, Ps_lang.Ast.var_e to_) ] s.Flowchart.sv_rhs;
              sv_body = realias ~from ~to_ s.Flowchart.sv_body }
        | Flowchart.D_data _ as d -> d)
      fc

(* Data read by the equations of a descriptor (through the graph). *)
let reads_of g eq_ids =
  List.filter_map
    (fun e ->
      match e.Dgraph.e_kind, e.Dgraph.e_src, e.Dgraph.e_dst with
      | Dgraph.Use, Dgraph.Data d, Dgraph.Eq tgt when List.mem tgt eq_ids -> Some d
      | _ -> None)
    (Dgraph.edges g)
  |> List.sort_uniq String.compare

(* Two descriptor groups are independent when neither reads what the
   other defines — then a later loop may slide left across the earlier
   descriptor to meet its fusion partner. *)
let independent g em d_eqs l_eqs =
  let d_out = outputs_of em d_eqs and l_out = outputs_of em l_eqs in
  let d_reads = reads_of g d_eqs and l_reads = reads_of g l_eqs in
  (not (List.exists (fun x -> List.mem x d_out) l_reads))
  && not (List.exists (fun x -> List.mem x l_out) d_reads)

let rec fuse_list g em stats (fc : Flowchart.t) : Flowchart.t =
  (* First fuse inside every loop, then try to merge adjacent siblings. *)
  let fc =
    List.map
      (function
        | Flowchart.D_loop l ->
          Flowchart.D_loop { l with Flowchart.lp_body = fuse_list g em stats l.Flowchart.lp_body }
        | Flowchart.D_solve s ->
          Flowchart.D_solve { s with Flowchart.sv_body = fuse_list g em stats s.Flowchart.sv_body }
        | (Flowchart.D_eq _ | Flowchart.D_data _) as d -> d)
      fc
  in
  (* Try to absorb, into [l1], the first later loop with the same range
     that can legally slide left across the intervening descriptors.
     Descriptors the partner loop depends on are hoisted in front of the
     fused loop when they are independent of [l1] and of everything else
     in between; the rest must be independent of the partner. *)
  let try_absorb l1 rest =
    let earlier_eqs = Flowchart.equations l1.Flowchart.lp_body in
    let rec scan skipped = function
      | [] -> None
      | (Flowchart.D_loop l2 as d) :: after
        when same_range l1.Flowchart.lp_range l2.Flowchart.lp_range -> (
        let later_eqs = Flowchart.equations l2.Flowchart.lp_body in
        let skipped_in_order = List.rev skipped in
        let hoist, stay =
          List.partition
            (fun d' -> not (independent g em (eqs_of d') later_eqs))
            skipped_in_order
        in
        let movable =
          (* The partner must slide across [stay]; the hoisted producers
             must slide across [l1] and across [stay]. *)
          List.for_all
            (fun d' ->
              let de = eqs_of d' in
              independent g em de earlier_eqs
              && List.for_all (fun s -> independent g em (eqs_of s) de) stay)
            hoist
        in
        let legal =
          if movable then
            cross_deps_ok g em ~earlier_eqs ~later_eqs ~var1:l1.Flowchart.lp_var
              ~var2:l2.Flowchart.lp_var
          else None
        in
        match legal with
        | Some exact -> (
          let kind =
            match l1.Flowchart.lp_kind, l2.Flowchart.lp_kind with
            | Flowchart.Parallel, Flowchart.Parallel when exact ->
              Some Flowchart.Parallel
            | Flowchart.Iterative, Flowchart.Iterative -> Some Flowchart.Iterative
            | _ -> None
          in
          match kind with
          | Some kind ->
            let body2 =
              realias ~from:l2.Flowchart.lp_var ~to_:l1.Flowchart.lp_var
                l2.Flowchart.lp_body
            in
            let fused =
              { l1 with
                Flowchart.lp_kind = kind;
                lp_body = l1.Flowchart.lp_body @ body2 }
            in
            Some (hoist, fused, stay @ after)
          | None -> scan (d :: skipped) after)
        | None -> scan (d :: skipped) after)
      | d :: after -> scan (d :: skipped) after
    in
    scan [] rest
  in
  let rec merge = function
    | Flowchart.D_loop l1 :: rest -> (
      match try_absorb l1 rest with
      | Some (hoist, fused, rest') ->
        stats.merged <- stats.merged + 1;
        hoist
        @ merge
            (Flowchart.D_loop
               { fused with
                 Flowchart.lp_body = fuse_list g em stats fused.Flowchart.lp_body }
             :: rest')
      | None -> Flowchart.D_loop l1 :: merge rest)
    | d :: rest -> d :: merge rest
    | [] -> []
  in
  merge fc

(* Entry point: fuse a schedule.  Returns the rewritten flowchart and how
   many merges were performed. *)
let apply (em : Elab.emodule) (g : Dgraph.t) (fc : Flowchart.t) :
    Flowchart.t * int =
  Ps_obs.Trace.with_span "schedule.fuse" @@ fun () ->
  let stats = { merged = 0 } in
  let fc = fuse_list g em stats fc in
  (fc, stats.merged)
