(** Per-loop-nest scheduling policy.

    Legality (DO vs DOALL vs DOGROUP/DOINSPECT) is the scheduler's and
    the verifier's business; a policy only picks the *shape* of the
    schedule at each fork candidate: sequential vs forked, flattened
    band vs nested, stealing vs fixed chunks, and per-job chunk / wake
    overrides.  A policy never changes results, which is what makes a
    tuned table safe to cache and replay as a compile artifact. *)

type source = Static | Tuned

val source_name : source -> string

val source_of_name : string -> source option

type decision = {
  d_par : bool;       (** false: run the whole nest sequentially *)
  d_collapse : bool;  (** flatten the marked DOALL band under this head *)
  d_steal : bool;     (** work-stealing deal vs fixed contiguous chunks *)
  d_chunk_min : int option;  (** per-job floor on a claimed chunk *)
  d_chunk_max : int option;  (** per-job ceiling on a claimed chunk *)
  d_wake : int option;       (** per-job wake-threshold override *)
  d_why : string;            (** one-line rationale for the trajectory *)
}

val sequential : why:string -> decision

val parallel :
  ?steal:bool ->
  ?collapse:bool ->
  ?chunk_min:int ->
  ?chunk_max:int ->
  ?wake:int ->
  why:string ->
  unit ->
  decision

type table = {
  t_source : source;
  t_host_cores : int;
  t_entries : (string * decision) list;
}

val index : Flowchart.t -> (Flowchart.loop * string) list
(** The fork candidates of a flowchart — parallel-kind loops reachable
    through DO loops and SOLVE bodies only — each with its stable key:
    the dot-joined binder path from the root plus a ["#n"] ordinal for
    repeats.  Deterministic, so tune-time and run-time keys agree. *)

val find : table -> string -> decision option

val resolve : table -> Flowchart.t -> (Flowchart.loop * decision) list
(** Pair each fork candidate with its decision, dropping keyless nests.
    The loop values are physically those of the argument flowchart, so
    callers may look up decisions by identity ([==]). *)

val stale : table -> host_cores:int -> bool
(** Chunk and wake choices do not transfer across hosts: a table tuned
    for a different core count is stale (diagnostic W121). *)

val summary : decision -> string
(** Compact form, e.g. ["seq"], ["steal+collapse"],
    ["fixed,chunk>=8,wake=64"]. *)

val table_summary : table -> string
(** E.g. ["static[K.I=steal+collapse;I.J=seq]"] — the bench trajectory's
    [policy] field. *)

val to_json : table -> string
(** One-line JSON object (schema field ["policy":1]) — the wire and
    cache format, also what [psc tune] prints. *)

val of_json : string -> (table, string) result

val validate : table -> Flowchart.t -> string list
(** Structural problems: entries naming no nest, collapse requested on
    an unmarked head, inverted or non-positive chunk bounds.  Empty
    means well-formed. *)
