(** A fixed pool of worker domains executing parallel for loops — the
    MIMD substrate the scheduler's DOALL loops target.

    Workers are spawned once; between jobs they spin briefly on an epoch
    counter and then park, so issuing a job from a tight outer loop
    (the wavefront shape, [DO K (DOALL ...)]) costs an atomic store per
    epoch rather than a mutex round-trip.  {!parallel_for} splits the
    range into per-worker slices with guided self-scheduling chunks;
    workers that finish their slice steal from the others, so uneven
    iteration costs still balance. *)

type t

val create : ?steal:bool -> int -> t
(** [create n] spawns a pool of [n] workers total (including the calling
    domain); clamped to at least 1.  [steal] (default [true]) selects
    the work-stealing scheduler with guided chunks; [~steal:false] keeps
    a single shared queue with fixed [span / (4 * size)] chunks — the
    measurable baseline for A/B runs. *)

val size : t -> int

val stealing : t -> bool
(** Whether this pool uses the work-stealing scheduler. *)

val shutdown : t -> unit
(** Terminate and join the workers.  The pool must not be used after. *)

val with_pool : ?steal:bool -> int -> (t -> 'a) -> 'a
(** Run with a temporary pool, shutting it down on exit (also on
    exceptions). *)

val parallel_for :
  ?chunk:int ->
  ?steal:bool ->
  ?chunk_max:int ->
  ?wake:int ->
  t ->
  lo:int ->
  hi:int ->
  (int -> int -> unit) ->
  unit
(** [parallel_for pool ~lo ~hi body] runs [body a b] over disjoint chunks
    covering [lo..hi] (inclusive), concurrently.  Empty ranges do
    nothing.  A re-entrant call from inside a running job executes
    inline.  If bodies raise, the remaining iterations are drained
    without executing and the first exception is re-raised at the
    caller.  [chunk] sets the minimum claim size (stealing mode) or the
    fixed chunk size (baseline mode); at least 1.

    The remaining optionals are per-job overrides for a scheduling
    policy's choices on one nest, defaulting to the pool-wide
    configuration: [steal] picks the scheduler for this job only,
    [chunk_max] caps a guided claim, and [wake] replaces
    {!wake_threshold} for this job's parked-worker broadcast. *)

val sequential_for : int -> int -> (int -> int -> unit) -> unit
(** [sequential_for lo hi body] is [body lo hi] when the range is
    non-empty — the degenerate substrate used when no pool is given. *)

val recommended_size : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val wake_threshold : int
(** Jobs whose span is below this never wake parked workers — waking
    costs more than the whole loop.  Exposed so the lint pass can warn
    about DOALLs that will run effectively sequentially (W120). *)

(** {1 Statistics}

    Collected only while {!Ps_obs.Metrics.enabled} — every disabled
    call site in the hot path costs a single atomic load.  Whether a
    given job is measured is captured when it is published, so flipping
    the flag mid-job cannot half-count work. *)

type worker_stats = {
  ws_chunks : int;          (** chunks claimed *)
  ws_points : int;          (** iteration points executed *)
  ws_steal_attempts : int;  (** claim attempts on foreign slices *)
  ws_steals : int;          (** chunks claimed from foreign slices *)
  ws_parks : int;           (** times this worker went to sleep *)
  ws_wakes : int;           (** times it was woken from a park *)
  ws_busy_ns : int;         (** wall time spent executing job chunks *)
}

type summary = {
  sm_jobs : int;            (** measured [parallel_for] invocations *)
  sm_elapsed_ns : int;      (** wall time inside those invocations *)
  sm_busy_ns : int;         (** sum of worker busy time *)
  sm_utilization : float;   (** busy / (elapsed × size), in [0,1] *)
  sm_imbalance : float;     (** mean over jobs of max/mean worker points;
                                1.0 is perfectly balanced *)
  sm_chunks : int;
  sm_points : int;
  sm_steal_attempts : int;
  sm_steals : int;
  sm_parks : int;
  sm_wakes : int;
}

val stats : t -> worker_stats array
(** Cumulative per-worker counters since creation or {!reset_stats};
    index 0 is the calling domain.  Call between jobs for exact values. *)

val summary : t -> summary
(** Pool-wide rollup of {!stats} plus per-job imbalance/elapsed data. *)

val reset_stats : t -> unit
(** Zero all counters.  Call between jobs, not while one is in flight. *)

val drain_stats : t -> unit
(** Flush the counters into the {!Ps_obs.Metrics} registry
    ([pool.steals], [pool.busy_ns], [pool.utilization_permille], …) and
    zero them.  {!with_pool} does this automatically on the way out when
    the registry is enabled. *)

val render_stats : t -> string
(** Human-readable per-worker table plus the {!summary} header line. *)
