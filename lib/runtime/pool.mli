(** A fixed pool of worker domains executing parallel for loops — the
    MIMD substrate the scheduler's DOALL loops target.

    Workers are spawned once; between jobs they spin briefly on an epoch
    counter and then park, so issuing a job from a tight outer loop
    (the wavefront shape, [DO K (DOALL ...)]) costs an atomic store per
    epoch rather than a mutex round-trip.  {!parallel_for} splits the
    range into per-worker slices with guided self-scheduling chunks;
    workers that finish their slice steal from the others, so uneven
    iteration costs still balance. *)

type t

val create : ?steal:bool -> int -> t
(** [create n] spawns a pool of [n] workers total (including the calling
    domain); clamped to at least 1.  [steal] (default [true]) selects
    the work-stealing scheduler with guided chunks; [~steal:false] keeps
    a single shared queue with fixed [span / (4 * size)] chunks — the
    measurable baseline for A/B runs. *)

val size : t -> int

val stealing : t -> bool
(** Whether this pool uses the work-stealing scheduler. *)

val shutdown : t -> unit
(** Terminate and join the workers.  The pool must not be used after. *)

val with_pool : ?steal:bool -> int -> (t -> 'a) -> 'a
(** Run with a temporary pool, shutting it down on exit (also on
    exceptions). *)

val parallel_for : ?chunk:int -> t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [parallel_for pool ~lo ~hi body] runs [body a b] over disjoint chunks
    covering [lo..hi] (inclusive), concurrently.  Empty ranges do
    nothing.  A re-entrant call from inside a running job executes
    inline.  If bodies raise, the remaining iterations are drained
    without executing and the first exception is re-raised at the
    caller.  [chunk] sets the minimum claim size (stealing mode) or the
    fixed chunk size (baseline mode); at least 1. *)

val sequential_for : int -> int -> (int -> int -> unit) -> unit
(** [sequential_for lo hi body] is [body lo hi] when the range is
    non-empty — the degenerate substrate used when no pool is given. *)

val recommended_size : unit -> int
(** [Domain.recommended_domain_count ()]. *)
