(* A fixed pool of worker domains executing parallel for-loops.

   This is the MIMD substrate the scheduler's DOALL loops target.  The
   hot path is designed around the shape the hyperplane schedules
   produce — an outer iterative loop issuing one small-to-medium DOALL
   per time step — so publishing a job must be cheap enough to do
   thousands of times:

   - [size] worker domains are spawned once; between jobs they spin
     briefly on the epoch counter and then park on a condition variable,
     so a caller that issues DOALLs back to back never touches the mutex
     (an atomic store per epoch, a broadcast only when somebody actually
     went to sleep);
   - [parallel_for] splits the index range into one contiguous slice per
     worker (never smaller than a fixed grain: tiny wavefront DOALLs
     stay a single slice and don't wake parked workers); every slice
     has its own atomic cursor, and a worker that exhausts its slice
     *steals* from the other slices, scanning round-robin from its own
     position;
   - claims are guided self-scheduling: each claim takes half of the
     slice's remainder, clamped between the minimum chunk and a quarter
     of the slice, so early chunks are large, the tail self-balances,
     and no preempted worker sits on an outsized claim;
   - completion is a reusable barrier: an atomic count of unfinished
     points that the caller spin-waits on after helping — no per-job
     allocation beyond the one job record.

   Exceptions raised by the body are caught, the first one is recorded,
   and the remaining iterations are *drained without executing* (claimed
   and counted, their bodies skipped), so a failing body raises once at
   the caller instead of thousands of times in the workers.

   For A/B measurement the stealing scheduler can be disabled per pool
   ([create ~steal:false]): the range then becomes a single shared slice
   handed out in fixed chunks of span / (4 * size) — the classic static
   self-scheduling loop, kept as the measurable baseline. *)

type job = {
  j_body : int -> int -> unit;  (* [body lo hi] runs indices lo..hi *)
  j_next : int Atomic.t array;  (* per-slice cursor (next unclaimed) *)
  j_limit : int array;          (* per-slice inclusive upper bound *)
  j_pending : int Atomic.t;     (* points not yet finished *)
  j_error : exn option Atomic.t;
  j_min_chunk : int;            (* smallest guided claim *)
  j_max_chunk : int;            (* largest guided claim: bounds how long a
                                   preempted worker can sit on a chunk *)
  j_fixed : int;                (* > 0: fixed chunk size (stealing off) *)
}

type t = {
  p_size : int;                 (* total workers including the caller *)
  p_steal : bool;
  p_mutex : Mutex.t;
  p_wake : Condition.t;
  p_busy : bool Atomic.t;       (* a job is in flight: re-entrant calls run inline *)
  p_job : job option Atomic.t;
  p_epoch : int Atomic.t;       (* bumped for every new job *)
  p_sleepers : int Atomic.t;    (* workers parked on [p_wake] *)
  p_shutdown : bool Atomic.t;
  mutable p_domains : unit Domain.t list;
}

(* How many [cpu_relax] spins a worker performs on the epoch counter
   before parking.  Large enough that back-to-back DOALL epochs (the
   wavefront shape) are mutex-free, small enough that an idle pool does
   not burn a core for long. *)
let spin_budget = 1024

(* Minimum points a slice is worth: a range smaller than [2 * slice_grain]
   is published as a single slice, so tiny wavefront DOALLs don't pay
   per-slice cursor traffic for work the caller finishes alone. *)
let slice_grain = 32

(* Jobs below this span never broadcast: waking a parked worker costs
   more than the whole loop.  Workers still spinning from the previous
   epoch help regardless — that is the back-to-back wavefront case. *)
let wake_threshold = 64

(* ------------------------------------------------------------------ *)
(* Claiming and executing chunks *)

(* Claim a chunk from slice [s] of [job]; [None] when the slice is dry.
   Guided self-scheduling: take half of what remains, never less than
   the minimum chunk (or exactly [j_fixed] when stealing is off). *)
let rec claim job s =
  let cur = Atomic.get job.j_next.(s) in
  let limit = job.j_limit.(s) in
  if cur > limit then None
  else
    let remaining = limit - cur + 1 in
    let take =
      if job.j_fixed > 0 then min job.j_fixed remaining
      else
        min remaining
          (max job.j_min_chunk (min job.j_max_chunk (remaining / 2)))
    in
    if Atomic.compare_and_set job.j_next.(s) cur (cur + take) then
      Some (cur, cur + take - 1)
    else claim job s

let exec_chunk job lo hi =
  (* Once a body has failed, later chunks are claimed and counted but
     not executed, so the loop drains deterministically without raising
     the same exception once per chunk. *)
  (if Atomic.get job.j_error = None then
     try job.j_body lo hi
     with exn -> ignore (Atomic.compare_and_set job.j_error None (Some exn)));
  ignore (Atomic.fetch_and_add job.j_pending (-(hi - lo + 1)))

let drain_slice job s =
  let rec loop () =
    match claim job s with
    | Some (lo, hi) ->
      exec_chunk job lo hi;
      loop ()
    | None -> ()
  in
  loop ()

(* Run chunks as worker [index]: own slice first, then steal from the
   other slices round-robin.  Completion never depends on any *other*
   worker waking up — whoever runs this to the end has visited every
   slice, so the caller alone can finish the whole job. *)
let run_chunks job index =
  let slices = Array.length job.j_next in
  let start = if index < slices then index else 0 in
  for i = 0 to slices - 1 do
    drain_slice job ((start + i) mod slices)
  done

(* ------------------------------------------------------------------ *)
(* Workers *)

let worker pool index =
  let rec wait epoch =
    let rec spin budget =
      if Atomic.get pool.p_shutdown then ()
      else if Atomic.get pool.p_epoch <> epoch then ()
      else if budget = 0 then park ()
      else begin
        Domain.cpu_relax ();
        spin (budget - 1)
      end
    and park () =
      Mutex.lock pool.p_mutex;
      Atomic.incr pool.p_sleepers;
      while
        (not (Atomic.get pool.p_shutdown)) && Atomic.get pool.p_epoch = epoch
      do
        Condition.wait pool.p_wake pool.p_mutex
      done;
      Atomic.decr pool.p_sleepers;
      Mutex.unlock pool.p_mutex
    in
    spin spin_budget;
    if Atomic.get pool.p_shutdown then ()
    else begin
      (* Reading the epoch before the job is what makes this safe: a job
         is published before its epoch bump, so whatever epoch we see,
         the job read below is either that epoch's job (we help), an
         already-finished one (its cursors are dry), or None (the job
         completed without us).  Claims are idempotent under re-entry. *)
      let epoch' = Atomic.get pool.p_epoch in
      (match Atomic.get pool.p_job with
       | Some job -> run_chunks job index
       | None -> ());
      wait epoch'
    end
  in
  wait 0

let create ?(steal = true) size =
  let size = max 1 size in
  let pool =
    { p_size = size;
      p_steal = steal;
      p_mutex = Mutex.create ();
      p_wake = Condition.create ();
      p_busy = Atomic.make false;
      p_job = Atomic.make None;
      p_epoch = Atomic.make 0;
      p_sleepers = Atomic.make 0;
      p_shutdown = Atomic.make false;
      p_domains = [] }
  in
  pool.p_domains <-
    List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker pool (i + 1)));
  pool

let size pool = pool.p_size

let stealing pool = pool.p_steal

let shutdown pool =
  Atomic.set pool.p_shutdown true;
  Mutex.lock pool.p_mutex;
  Condition.broadcast pool.p_wake;
  Mutex.unlock pool.p_mutex;
  List.iter Domain.join pool.p_domains;
  pool.p_domains <- []

let sequential_for lo hi body = if lo <= hi then body lo hi

let parallel_for ?chunk pool ~lo ~hi (body : int -> int -> unit) =
  if lo > hi then ()
  else if hi = lo then body lo hi
  else if pool.p_size = 1 then body lo hi
  else if not (Atomic.compare_and_set pool.p_busy false true) then
    (* Re-entrant call (e.g. a nested DOALL reached dynamically): run
       inline rather than queue behind the outer job. *)
    body lo hi
  else begin
    let span = hi - lo + 1 in
    let job =
      if pool.p_steal then begin
        (* One contiguous slice per worker — but never slices smaller
           than the grain; slice [i] owns [lo + i*len .. ...], the last
           slice takes the remainder. *)
        let slices = max 1 (min pool.p_size (span / slice_grain)) in
        let len = span / slices in
        let next =
          Array.init slices (fun i -> Atomic.make (lo + (i * len)))
        in
        let limit =
          Array.init slices (fun i ->
              if i = slices - 1 then hi else lo + ((i + 1) * len) - 1)
        in
        { j_body = body;
          j_next = next;
          j_limit = limit;
          j_pending = Atomic.make span;
          j_error = Atomic.make None;
          (* Halving from len bottoms out at min_chunk: an eighth of a
             slice keeps 8 stealable pieces per slice while claiming no
             more often than the fixed baseline does. *)
          j_min_chunk =
            (match chunk with Some c -> max 1 c | None -> max 1 (len / 8));
          j_max_chunk = max slice_grain (len / 4);
          j_fixed = 0 }
      end
      else begin
        (* Baseline scheduler: one shared slice, fixed chunks sized for
           several chunks per worker. *)
        let c =
          match chunk with
          | Some c -> max 1 c
          | None -> max 1 (span / (pool.p_size * 4))
        in
        { j_body = body;
          j_next = [| Atomic.make lo |];
          j_limit = [| hi |];
          j_pending = Atomic.make span;
          j_error = Atomic.make None;
          j_min_chunk = c;
          j_max_chunk = max_int;
          j_fixed = c }
      end
    in
    (* Publish: job first, then the epoch bump the workers watch.  The
       mutex is only touched when somebody is actually parked. *)
    Atomic.set pool.p_job (Some job);
    Atomic.incr pool.p_epoch;
    if span >= wake_threshold && Atomic.get pool.p_sleepers > 0 then begin
      Mutex.lock pool.p_mutex;
      Condition.broadcast pool.p_wake;
      Mutex.unlock pool.p_mutex
    end;
    (* The caller works too (as worker 0), then waits out stragglers on
       the reusable barrier: at most one chunk per worker remains in
       flight, so spin briefly, then yield the processor — on a machine
       with fewer cores than workers the straggler needs this core to
       finish its chunk at all. *)
    run_chunks job 0;
    let spins = ref 0 in
    while Atomic.get job.j_pending > 0 do
      incr spins;
      if !spins >= spin_budget then begin
        spins := 0;
        Thread.yield ()
      end
      else Domain.cpu_relax ()
    done;
    Atomic.set pool.p_job None;
    Atomic.set pool.p_busy false;
    match Atomic.get job.j_error with
    | Some exn -> raise exn
    | None -> ()
  end

(* Run [f] with a temporary pool of [size] workers. *)
let with_pool ?steal size f =
  let pool = create ?steal size in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let recommended_size () = Domain.recommended_domain_count ()
