(* A fixed pool of worker domains executing parallel for-loops.

   This is the MIMD substrate the scheduler's DOALL loops target.  The
   hot path is designed around the shape the hyperplane schedules
   produce — an outer iterative loop issuing one small-to-medium DOALL
   per time step — so publishing a job must be cheap enough to do
   thousands of times:

   - [size] worker domains are spawned once; between jobs they spin
     briefly on the epoch counter and then park on a condition variable,
     so a caller that issues DOALLs back to back never touches the mutex
     (an atomic store per epoch, a broadcast only when somebody actually
     went to sleep);
   - [parallel_for] splits the index range into one contiguous slice per
     worker (never smaller than a fixed grain: tiny wavefront DOALLs
     stay a single slice and don't wake parked workers); every slice
     has its own atomic cursor, and a worker that exhausts its slice
     *steals* from the other slices, scanning round-robin from its own
     position;
   - claims are guided self-scheduling: each claim takes half of the
     slice's remainder, clamped between the minimum chunk and a quarter
     of the slice, so early chunks are large, the tail self-balances,
     and no preempted worker sits on an outsized claim;
   - completion is a reusable barrier: an atomic count of unfinished
     points that the caller spin-waits on after helping — no per-job
     allocation beyond the one job record.

   Exceptions raised by the body are caught, the first one is recorded,
   and the remaining iterations are *drained without executing* (claimed
   and counted, their bodies skipped), so a failing body raises once at
   the caller instead of thousands of times in the workers.

   For A/B measurement the stealing scheduler can be disabled per pool
   ([create ~steal:false]): the range then becomes a single shared slice
   handed out in fixed chunks of span / (4 * size) — the classic static
   self-scheduling loop, kept as the measurable baseline. *)

module Metrics = Ps_obs.Metrics

(* Per-worker cumulative counters, updated only while the metrics
   registry is enabled ([Metrics.enabled ()] — one atomic load on every
   disabled path).  Each worker adds to its own record, so the atomics
   never contend. *)
type wc = {
  wc_chunks : int Atomic.t;         (* chunks claimed *)
  wc_points : int Atomic.t;         (* iteration points executed *)
  wc_steal_attempts : int Atomic.t; (* claim attempts on foreign slices *)
  wc_steals : int Atomic.t;         (* chunks claimed from foreign slices *)
  wc_parks : int Atomic.t;          (* times this worker went to sleep *)
  wc_wakes : int Atomic.t;          (* times it was woken from a park *)
  wc_busy_ns : int Atomic.t;        (* wall time spent inside jobs *)
}

let make_wc () =
  { wc_chunks = Atomic.make 0;
    wc_points = Atomic.make 0;
    wc_steal_attempts = Atomic.make 0;
    wc_steals = Atomic.make 0;
    wc_parks = Atomic.make 0;
    wc_wakes = Atomic.make 0;
    wc_busy_ns = Atomic.make 0 }

type job = {
  j_body : int -> int -> unit;  (* [body lo hi] runs indices lo..hi *)
  j_next : int Atomic.t array;  (* per-slice cursor (next unclaimed) *)
  j_limit : int array;          (* per-slice inclusive upper bound *)
  j_pending : int Atomic.t;     (* points not yet finished *)
  j_error : exn option Atomic.t;
  j_min_chunk : int;            (* smallest guided claim *)
  j_max_chunk : int;            (* largest guided claim: bounds how long a
                                   preempted worker can sit on a chunk *)
  j_fixed : int;                (* > 0: fixed chunk size (stealing off) *)
  (* Stats plumbing.  [j_stats] is captured at publish time so the
     metrics flag flipping mid-job cannot leave half-counted work.
     [j_points] is filled *before* the pending decrement, so it is
     complete once the caller's barrier opens; the cumulative [j_wc]
     counters are published after a worker's last chunk, so the caller
     additionally waits for [j_active] to drain before reading them. *)
  j_stats : bool;
  j_points : int Atomic.t array;  (* per-worker points, this job only *)
  j_wc : wc array;
  j_active : int Atomic.t;        (* stats-mode workers mid-publication *)
}

type t = {
  p_size : int;                 (* total workers including the caller *)
  p_steal : bool;
  p_mutex : Mutex.t;
  p_wake : Condition.t;
  p_busy : bool Atomic.t;       (* a job is in flight: re-entrant calls run inline *)
  p_job : job option Atomic.t;
  p_epoch : int Atomic.t;       (* bumped for every new job *)
  p_sleepers : int Atomic.t;    (* workers parked on [p_wake] *)
  p_shutdown : bool Atomic.t;
  mutable p_domains : unit Domain.t list;
  p_wc : wc array;
  (* Job-level accumulators, touched only by the caller that holds
     [p_busy] (and by [stats]/[reset_stats] between jobs). *)
  mutable p_sjobs : int;        (* parallel_for calls measured *)
  mutable p_elapsed_ns : int;   (* wall time inside those calls *)
  mutable p_imb_sum : float;    (* sum of per-job max/mean point ratios *)
}

(* How many [cpu_relax] spins a worker performs on the epoch counter
   before parking.  Large enough that back-to-back DOALL epochs (the
   wavefront shape) are mutex-free, small enough that an idle pool does
   not burn a core for long. *)
let spin_budget = 1024

(* Minimum points a slice is worth: a range smaller than [2 * slice_grain]
   is published as a single slice, so tiny wavefront DOALLs don't pay
   per-slice cursor traffic for work the caller finishes alone. *)
let slice_grain = 32

(* Jobs below this span never broadcast: waking a parked worker costs
   more than the whole loop.  Workers still spinning from the previous
   epoch help regardless — that is the back-to-back wavefront case. *)
let wake_threshold = 64

(* ------------------------------------------------------------------ *)
(* Claiming and executing chunks *)

(* Claim a chunk from slice [s] of [job]; [None] when the slice is dry.
   Guided self-scheduling: take half of what remains, never less than
   the minimum chunk (or exactly [j_fixed] when stealing is off). *)
let rec claim job s =
  let cur = Atomic.get job.j_next.(s) in
  let limit = job.j_limit.(s) in
  if cur > limit then None
  else
    let remaining = limit - cur + 1 in
    let take =
      if job.j_fixed > 0 then min job.j_fixed remaining
      else
        min remaining
          (max job.j_min_chunk (min job.j_max_chunk (remaining / 2)))
    in
    if Atomic.compare_and_set job.j_next.(s) cur (cur + take) then
      Some (cur, cur + take - 1)
    else claim job s

let exec_chunk job lo hi =
  (* Once a body has failed, later chunks are claimed and counted but
     not executed, so the loop drains deterministically without raising
     the same exception once per chunk. *)
  (if Atomic.get job.j_error = None then
     try job.j_body lo hi
     with exn -> ignore (Atomic.compare_and_set job.j_error None (Some exn)));
  ignore (Atomic.fetch_and_add job.j_pending (-(hi - lo + 1)))

let drain_slice job s =
  let rec loop () =
    match claim job s with
    | Some (lo, hi) ->
      exec_chunk job lo hi;
      loop ()
    | None -> ()
  in
  loop ()

(* Stats-mode execution: per-job points are recorded *before* the
   pending decrement, so once the caller's pending barrier opens the
   [j_points] array is complete and the imbalance summary is exact. *)
let exec_chunk_stats job index lo hi =
  (if Atomic.get job.j_error = None then
     try job.j_body lo hi
     with exn -> ignore (Atomic.compare_and_set job.j_error None (Some exn)));
  ignore (Atomic.fetch_and_add job.j_points.(index) (hi - lo + 1));
  ignore (Atomic.fetch_and_add job.j_pending (-(hi - lo + 1)))

(* Like [drain_slice] but counting: returns (chunks, points) claimed
   from slice [s] by worker [index]. *)
let drain_slice_counted job index s =
  let chunks = ref 0 and points = ref 0 in
  let rec loop () =
    match claim job s with
    | Some (lo, hi) ->
      exec_chunk_stats job index lo hi;
      incr chunks;
      points := !points + (hi - lo + 1);
      loop ()
    | None -> ()
  in
  loop ();
  (!chunks, !points)

(* Run chunks as worker [index]: own slice first, then steal from the
   other slices round-robin.  Completion never depends on any *other*
   worker waking up — whoever runs this to the end has visited every
   slice, so the caller alone can finish the whole job. *)
let run_chunks_plain job index =
  let slices = Array.length job.j_next in
  let start = if index < slices then index else 0 in
  for i = 0 to slices - 1 do
    drain_slice job ((start + i) mod slices)
  done

(* The counted twin.  A claim on a foreign slice is a steal; a visit to
   a foreign slice costs one failed attempt plus one per stolen chunk.
   Workers that execute nothing publish nothing, so a straggler waking
   into an already-drained job cannot pollute the next job's counters.
   Publication is bracketed by [j_active] so the caller can wait for the
   cumulative counters to be complete before reading them. *)
let run_chunks_stats job index =
  Atomic.incr job.j_active;
  let t0 = Metrics.now_ns () in
  let slices = Array.length job.j_next in
  let start = if index < slices then index else 0 in
  let chunks = ref 0 and steals = ref 0 and attempts = ref 0 in
  for i = 0 to slices - 1 do
    let s = (start + i) mod slices in
    let c, _ = drain_slice_counted job index s in
    chunks := !chunks + c;
    if i > 0 then begin
      attempts := !attempts + c + 1;
      steals := !steals + c
    end
  done;
  (if !chunks > 0 then begin
     let c = job.j_wc.(index) in
     ignore (Atomic.fetch_and_add c.wc_chunks !chunks);
     ignore (Atomic.fetch_and_add c.wc_points (Atomic.get job.j_points.(index)));
     ignore (Atomic.fetch_and_add c.wc_steal_attempts !attempts);
     ignore (Atomic.fetch_and_add c.wc_steals !steals);
     ignore (Atomic.fetch_and_add c.wc_busy_ns (Metrics.now_ns () - t0))
   end);
  Atomic.decr job.j_active

let run_chunks job index =
  if job.j_stats then run_chunks_stats job index
  else run_chunks_plain job index

(* ------------------------------------------------------------------ *)
(* Workers *)

let worker pool index =
  let rec wait epoch =
    let rec spin budget =
      if Atomic.get pool.p_shutdown then ()
      else if Atomic.get pool.p_epoch <> epoch then ()
      else if budget = 0 then park ()
      else begin
        Domain.cpu_relax ();
        spin (budget - 1)
      end
    and park () =
      (* Parking is already the slow path (mutex + condvar), so the
         one-atomic-load metrics guard costs nothing measurable here. *)
      if Metrics.enabled () then
        Atomic.incr pool.p_wc.(index).wc_parks;
      Mutex.lock pool.p_mutex;
      Atomic.incr pool.p_sleepers;
      while
        (not (Atomic.get pool.p_shutdown)) && Atomic.get pool.p_epoch = epoch
      do
        Condition.wait pool.p_wake pool.p_mutex
      done;
      Atomic.decr pool.p_sleepers;
      Mutex.unlock pool.p_mutex;
      if Metrics.enabled () && not (Atomic.get pool.p_shutdown) then
        Atomic.incr pool.p_wc.(index).wc_wakes
    in
    spin spin_budget;
    if Atomic.get pool.p_shutdown then ()
    else begin
      (* Reading the epoch before the job is what makes this safe: a job
         is published before its epoch bump, so whatever epoch we see,
         the job read below is either that epoch's job (we help), an
         already-finished one (its cursors are dry), or None (the job
         completed without us).  Claims are idempotent under re-entry. *)
      let epoch' = Atomic.get pool.p_epoch in
      (match Atomic.get pool.p_job with
       | Some job -> run_chunks job index
       | None -> ());
      wait epoch'
    end
  in
  wait 0

let create ?(steal = true) size =
  let size = max 1 size in
  let pool =
    { p_size = size;
      p_steal = steal;
      p_mutex = Mutex.create ();
      p_wake = Condition.create ();
      p_busy = Atomic.make false;
      p_job = Atomic.make None;
      p_epoch = Atomic.make 0;
      p_sleepers = Atomic.make 0;
      p_shutdown = Atomic.make false;
      p_domains = [];
      p_wc = Array.init size (fun _ -> make_wc ());
      p_sjobs = 0;
      p_elapsed_ns = 0;
      p_imb_sum = 0.0 }
  in
  pool.p_domains <-
    List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker pool (i + 1)));
  pool

let size pool = pool.p_size

let stealing pool = pool.p_steal

let shutdown pool =
  Atomic.set pool.p_shutdown true;
  Mutex.lock pool.p_mutex;
  Condition.broadcast pool.p_wake;
  Mutex.unlock pool.p_mutex;
  List.iter Domain.join pool.p_domains;
  pool.p_domains <- []

let sequential_for lo hi body = if lo <= hi then body lo hi

let parallel_for ?chunk ?steal ?chunk_max ?wake pool ~lo ~hi
    (body : int -> int -> unit) =
  if lo > hi then ()
  else if hi = lo then body lo hi
  else if pool.p_size = 1 then body lo hi
  else if not (Atomic.compare_and_set pool.p_busy false true) then
    (* Re-entrant call (e.g. a nested DOALL reached dynamically): run
       inline rather than queue behind the outer job. *)
    body lo hi
  else begin
    let span = hi - lo + 1 in
    (* Per-job overrides (a scheduling policy's choices for one nest);
       the pool-wide configuration is only the default. *)
    let stealing = match steal with Some s -> s | None -> pool.p_steal in
    let wake_at = match wake with Some w -> w | None -> wake_threshold in
    (* Captured once per job: flipping the metrics flag mid-flight must
       not leave a half-counted job. *)
    let stats = Metrics.enabled () in
    let t_start = if stats then Metrics.now_ns () else 0 in
    let points =
      if stats then Array.init pool.p_size (fun _ -> Atomic.make 0) else [||]
    in
    let active = Atomic.make 0 in
    let job =
      if stealing then begin
        (* One contiguous slice per worker — but never slices smaller
           than the grain; slice [i] owns [lo + i*len .. ...], the last
           slice takes the remainder. *)
        let slices = max 1 (min pool.p_size (span / slice_grain)) in
        let len = span / slices in
        let next =
          Array.init slices (fun i -> Atomic.make (lo + (i * len)))
        in
        let limit =
          Array.init slices (fun i ->
              if i = slices - 1 then hi else lo + ((i + 1) * len) - 1)
        in
        { j_body = body;
          j_next = next;
          j_limit = limit;
          j_pending = Atomic.make span;
          j_error = Atomic.make None;
          (* Halving from len bottoms out at min_chunk: an eighth of a
             slice keeps 8 stealable pieces per slice while claiming no
             more often than the fixed baseline does. *)
          j_min_chunk =
            (match chunk with Some c -> max 1 c | None -> max 1 (len / 8));
          j_max_chunk =
            (match chunk_max with
            | Some c -> max 1 c
            | None -> max slice_grain (len / 4));
          j_fixed = 0;
          j_stats = stats;
          j_points = points;
          j_wc = pool.p_wc;
          j_active = active }
      end
      else begin
        (* Baseline scheduler: one shared slice, fixed chunks sized for
           several chunks per worker. *)
        let c =
          match chunk with
          | Some c -> max 1 c
          | None -> max 1 (span / (pool.p_size * 4))
        in
        { j_body = body;
          j_next = [| Atomic.make lo |];
          j_limit = [| hi |];
          j_pending = Atomic.make span;
          j_error = Atomic.make None;
          j_min_chunk = c;
          j_max_chunk = max_int;
          j_fixed = c;
          j_stats = stats;
          j_points = points;
          j_wc = pool.p_wc;
          j_active = active }
      end
    in
    (* Publish: job first, then the epoch bump the workers watch.  The
       mutex is only touched when somebody is actually parked. *)
    Atomic.set pool.p_job (Some job);
    Atomic.incr pool.p_epoch;
    if span >= wake_at && Atomic.get pool.p_sleepers > 0 then begin
      Mutex.lock pool.p_mutex;
      Condition.broadcast pool.p_wake;
      Mutex.unlock pool.p_mutex
    end;
    (* The caller works too (as worker 0), then waits out stragglers on
       the reusable barrier: at most one chunk per worker remains in
       flight, so spin briefly, then yield the processor — on a machine
       with fewer cores than workers the straggler needs this core to
       finish its chunk at all. *)
    run_chunks job 0;
    let spins = ref 0 in
    while
      Atomic.get job.j_pending > 0
      || (job.j_stats && Atomic.get job.j_active > 0)
    do
      incr spins;
      if !spins >= spin_budget then begin
        spins := 0;
        Thread.yield ()
      end
      else Domain.cpu_relax ()
    done;
    if job.j_stats then begin
      (* Everything below is caller-only state ([p_busy] is still
         held) and the waits above ordered the workers' publications
         before these reads. *)
      pool.p_sjobs <- pool.p_sjobs + 1;
      pool.p_elapsed_ns <-
        pool.p_elapsed_ns + (Metrics.now_ns () - t_start);
      let max_points =
        Array.fold_left (fun m a -> max m (Atomic.get a)) 0 job.j_points
      in
      let mean = float_of_int span /. float_of_int pool.p_size in
      pool.p_imb_sum <- pool.p_imb_sum +. (float_of_int max_points /. mean)
    end;
    Atomic.set pool.p_job None;
    Atomic.set pool.p_busy false;
    match Atomic.get job.j_error with
    | Some exn -> raise exn
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Statistics *)

type worker_stats = {
  ws_chunks : int;
  ws_points : int;
  ws_steal_attempts : int;
  ws_steals : int;
  ws_parks : int;
  ws_wakes : int;
  ws_busy_ns : int;
}

type summary = {
  sm_jobs : int;
  sm_elapsed_ns : int;
  sm_busy_ns : int;
  sm_utilization : float;
  sm_imbalance : float;
  sm_chunks : int;
  sm_points : int;
  sm_steal_attempts : int;
  sm_steals : int;
  sm_parks : int;
  sm_wakes : int;
}

let stats pool =
  Array.map
    (fun c ->
      { ws_chunks = Atomic.get c.wc_chunks;
        ws_points = Atomic.get c.wc_points;
        ws_steal_attempts = Atomic.get c.wc_steal_attempts;
        ws_steals = Atomic.get c.wc_steals;
        ws_parks = Atomic.get c.wc_parks;
        ws_wakes = Atomic.get c.wc_wakes;
        ws_busy_ns = Atomic.get c.wc_busy_ns })
    pool.p_wc

let summary pool =
  let ws = stats pool in
  let sum f = Array.fold_left (fun acc w -> acc + f w) 0 ws in
  let busy = sum (fun w -> w.ws_busy_ns) in
  let elapsed = pool.p_elapsed_ns in
  { sm_jobs = pool.p_sjobs;
    sm_elapsed_ns = elapsed;
    sm_busy_ns = busy;
    sm_utilization =
      (if elapsed = 0 then 0.0
       else float_of_int busy /. (float_of_int elapsed *. float_of_int pool.p_size));
    sm_imbalance =
      (if pool.p_sjobs = 0 then 0.0
       else pool.p_imb_sum /. float_of_int pool.p_sjobs);
    sm_chunks = sum (fun w -> w.ws_chunks);
    sm_points = sum (fun w -> w.ws_points);
    sm_steal_attempts = sum (fun w -> w.ws_steal_attempts);
    sm_steals = sum (fun w -> w.ws_steals);
    sm_parks = sum (fun w -> w.ws_parks);
    sm_wakes = sum (fun w -> w.ws_wakes) }

let reset_stats pool =
  Array.iter
    (fun c ->
      Atomic.set c.wc_chunks 0;
      Atomic.set c.wc_points 0;
      Atomic.set c.wc_steal_attempts 0;
      Atomic.set c.wc_steals 0;
      Atomic.set c.wc_parks 0;
      Atomic.set c.wc_wakes 0;
      Atomic.set c.wc_busy_ns 0)
    pool.p_wc;
  pool.p_sjobs <- 0;
  pool.p_elapsed_ns <- 0;
  pool.p_imb_sum <- 0.0

(* Flush the pool's counters into the process-wide registry and zero
   them, so stats from consecutive pools (or consecutive drains of one
   pool) aggregate without double-counting. *)
let drain_stats pool =
  let sm = summary pool in
  Metrics.add (Metrics.counter "pool.jobs") sm.sm_jobs;
  Metrics.add (Metrics.counter "pool.elapsed_ns") sm.sm_elapsed_ns;
  Metrics.add (Metrics.counter "pool.busy_ns") sm.sm_busy_ns;
  Metrics.add (Metrics.counter "pool.chunks") sm.sm_chunks;
  Metrics.add (Metrics.counter "pool.points") sm.sm_points;
  Metrics.add (Metrics.counter "pool.steal_attempts") sm.sm_steal_attempts;
  Metrics.add (Metrics.counter "pool.steals") sm.sm_steals;
  Metrics.add (Metrics.counter "pool.parks") sm.sm_parks;
  Metrics.add (Metrics.counter "pool.wakes") sm.sm_wakes;
  Metrics.set (Metrics.gauge "pool.size") pool.p_size;
  Metrics.set (Metrics.gauge "pool.utilization_permille")
    (int_of_float (sm.sm_utilization *. 1000.0));
  Metrics.set (Metrics.gauge "pool.imbalance_permille")
    (int_of_float (sm.sm_imbalance *. 1000.0));
  reset_stats pool

let render_stats pool =
  let ws = stats pool in
  let sm = summary pool in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "pool: %d workers, %s scheduler, %d jobs, utilization %.1f%%, imbalance %.2fx\n"
       pool.p_size
       (if pool.p_steal then "steal" else "fixed")
       sm.sm_jobs
       (sm.sm_utilization *. 100.0)
       sm.sm_imbalance);
  Buffer.add_string b
    (Printf.sprintf "%-8s %10s %10s %8s %9s %7s %7s %10s\n" "worker" "chunks"
       "points" "steals" "attempts" "parks" "wakes" "busy ms");
  Array.iteri
    (fun i w ->
      Buffer.add_string b
        (Printf.sprintf "%-8s %10d %10d %8d %9d %7d %7d %10.3f\n"
           (if i = 0 then "caller" else Printf.sprintf "w%d" i)
           w.ws_chunks w.ws_points w.ws_steals w.ws_steal_attempts w.ws_parks
           w.ws_wakes
           (float_of_int w.ws_busy_ns /. 1e6)))
    ws;
  Buffer.contents b

(* Run [f] with a temporary pool of [size] workers.  When the metrics
   registry is live the pool's counters are drained into it on the way
   out (also on exceptions), so back-to-back pools aggregate instead of
   vanishing with the pool — and each pool starts from zero. *)
let with_pool ?steal size f =
  let pool = create ?steal size in
  Fun.protect
    ~finally:(fun () ->
      if Metrics.enabled () then drain_stats pool;
      shutdown pool)
    (fun () -> f pool)

let recommended_size () = Domain.recommended_domain_count ()
