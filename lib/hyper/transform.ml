(* The restructuring transformation of paper §4.

   Given a recursively defined array A whose natural schedule is fully
   iterative, change coordinates with the unimodular matrix T whose first
   row is the least time vector: a new array A' with A'[T·x] = A[x] is
   introduced, every definition of A is folded into a single guarded
   equation defining A', and every reference A[e] anywhere in the module
   is rewritten to A'[T·e].  Because uses of a recurrence are A[x - d],
   the rewritten self-references are A'[y - T·d]: constant offsets again,
   but now carried only by the first (time) axis — so re-scheduling the
   transformed module produces an outer DO over the time axis and DOALL
   loops inside (the paper's Fig. 6 shape for the revised relaxation). *)

open Ps_lang
open Ps_sem

exception Not_applicable = Ineq.Not_applicable

let fail fmt = Fmt.kstr (fun m -> raise (Not_applicable m)) fmt

type t = {
  tr_target : string;            (* the original array A *)
  tr_new_name : string;          (* the transformed array A' *)
  tr_time : int array;           (* least time coefficients a *)
  tr_vectors : int array list;   (* dependence difference vectors *)
  tr_matrix : Imatrix.t;         (* T : old coords -> new coords *)
  tr_inverse : Imatrix.t;        (* T⁻¹ *)
  tr_old_indices : string list;  (* K, I, J *)
  tr_new_indices : string list;  (* K', I', J' (ASCII names) *)
  tr_module : Ast.pmodule;       (* the transformed module *)
}

(* ------------------------------------------------------------------ *)

let fresh_name base used =
  let rec go candidate =
    if List.mem candidate used then go (candidate ^ "p") else candidate
  in
  go base

let used_names (em : Elab.emodule) =
  List.map (fun (d : Elab.data) -> d.Elab.d_name)
    (em.Elab.em_params @ em.Elab.em_results @ em.Elab.em_locals)
  @ List.map fst em.Elab.em_subranges
  @ List.map fst em.Elab.em_enums
  @ List.concat_map snd em.Elab.em_enums

(* Linear form of an expression, or fail. *)
let linexpr_of e =
  match Linexpr.of_expr e with
  | Some l -> l
  | None -> fail "expression %s is not linear" (Pretty.expr_to_string e)

(* Apply an integer matrix to a vector of linear forms. *)
let apply_matrix (m : Imatrix.t) (v : Linexpr.t array) : Linexpr.t array =
  let n = Imatrix.dim m in
  Array.init n (fun i ->
      let row = Imatrix.row m i in
      let acc = ref Linexpr.zero in
      Array.iteri (fun j c -> acc := Linexpr.add !acc (Linexpr.scale c v.(j))) row;
      !acc)

(* Rewrite every full reference [target[subs]] in [e] into
   [new_name[T·subs]].  Partial (slice) references are rejected. *)
let rec rewrite_refs ~target ~new_name ~matrix ~ndims (e : Ast.expr) : Ast.expr =
  let recur = rewrite_refs ~target ~new_name ~matrix ~ndims in
  let node =
    match e.Ast.e with
    | Ast.Var x when String.equal x target ->
      fail "whole-array reference to %s cannot be transformed" target
    | Ast.Index ({ e = Ast.Var x; _ } as base, subs) when String.equal x target ->
      if List.length subs <> ndims then
        fail "partial reference to %s cannot be transformed" target;
      let subs = List.map recur subs in
      let v = Array.of_list (List.map linexpr_of subs) in
      let v' = apply_matrix matrix v in
      Ast.Index
        ( { base with Ast.e = Ast.Var new_name },
          Array.to_list (Array.map Linexpr.to_expr v') )
    | Ast.Int _ | Ast.Real _ | Ast.Bool _ | Ast.Var _ -> e.Ast.e
    | Ast.Index (b, subs) -> Ast.Index (recur b, List.map recur subs)
    | Ast.Field (b, f) -> Ast.Field (recur b, f)
    | Ast.Call (f, args) -> Ast.Call (f, List.map recur args)
    | Ast.Unop (op, a) -> Ast.Unop (op, recur a)
    | Ast.Binop (op, a, b) -> Ast.Binop (op, recur a, recur b)
    | Ast.If (c, t, f) -> Ast.If (recur c, recur t, recur f)
  in
  { e with Ast.e = node }

(* Rebuild a surface equation from an elaborated one. *)
let ast_equation_of (q : Elab.eq) rhs : Ast.equation =
  let lhs =
    List.map
      (fun (df : Elab.def) ->
        { Ast.l_name = df.Elab.df_data;
          l_path = df.Elab.df_path;
          l_subs =
            List.map
              (function
                | Elab.Sub_index ix -> Ast.var_e ix.Elab.ix_var
                | Elab.Sub_fixed e -> e)
              df.Elab.df_subs;
          l_loc = q.Elab.q_loc })
      q.Elab.q_defs
  in
  { Ast.eq_lhs = lhs; eq_rhs = rhs; eq_loc = q.Elab.q_loc }

let conj cs =
  match cs with
  | [] -> None
  | c :: rest ->
    Some (List.fold_left (fun acc c -> Ast.mk (Ast.Binop (Ast.Or, acc, c))) c rest)

let and_chain cs =
  match cs with
  | [] -> None
  | c :: rest ->
    Some (List.fold_left (fun acc c -> Ast.mk (Ast.Binop (Ast.And, acc, c))) c rest)

(* ------------------------------------------------------------------ *)

let apply (em : Elab.emodule) ~(target : string) : t =
  Ps_obs.Trace.with_span "hyper.transform" @@ fun () ->
  let deps = Ineq.extract em ~target in
  let time = Solve.solve deps.Ineq.dep_vectors in
  let matrix = Solve.complete time in
  let inverse = Imatrix.inverse matrix in
  let n = Array.length time in
  let data = Elab.data_exn em target in
  let dims = Stypes.dims data.Elab.d_ty in
  let elem = Stypes.elem_ty data.Elab.d_ty in
  let dummy_value =
    match elem with
    | Stypes.Scalar Stypes.Sreal -> Ast.mk (Ast.Real 0.0)
    | Stypes.Scalar Stypes.Sint -> Ast.int_e 0
    | Stypes.Scalar Stypes.Sbool -> Ast.mk (Ast.Bool false)
    | _ -> fail "%s has a non-numeric element type" target
  in
  if data.Elab.d_kind <> Elab.Local then
    fail "%s is not a local array" target;
  (* Extents of the old dimensions as linear forms. *)
  let old_lo =
    Array.of_list (List.map (fun (sr : Stypes.subrange) -> linexpr_of sr.Stypes.sr_lo) dims)
  in
  let old_hi =
    Array.of_list (List.map (fun (sr : Stypes.subrange) -> linexpr_of sr.Stypes.sr_hi) dims)
  in
  (* Bounds of the new axes by interval arithmetic over y = T·x. *)
  let new_lo =
    Array.init n (fun r ->
        let row = Imatrix.row matrix r in
        let acc = ref Linexpr.zero in
        Array.iteri
          (fun j c ->
            acc :=
              Linexpr.add !acc
                (Linexpr.scale c (if c >= 0 then old_lo.(j) else old_hi.(j))))
          row;
        !acc)
  in
  let new_hi =
    Array.init n (fun r ->
        let row = Imatrix.row matrix r in
        let acc = ref Linexpr.zero in
        Array.iteri
          (fun j c ->
            acc :=
              Linexpr.add !acc
                (Linexpr.scale c (if c >= 0 then old_hi.(j) else old_lo.(j))))
          row;
        !acc)
  in
  (* Fresh names. *)
  let used = ref (used_names em) in
  let fresh base =
    let name = fresh_name base !used in
    used := name :: !used;
    name
  in
  let new_name = fresh (target ^ "p") in
  let old_index_names =
    List.map (fun (ix : Elab.index) -> ix.Elab.ix_var) deps.Ineq.dep_indices
  in
  let new_index_names = List.map (fun v -> fresh (v ^ "p")) old_index_names in
  let new_ranges =
    List.mapi
      (fun r name ->
        (name, Linexpr.to_expr new_lo.(r), Linexpr.to_expr new_hi.(r)))
      new_index_names
  in
  (* Old coordinates reconstructed from the new index variables. *)
  let y_vec =
    Array.of_list (List.map (fun v -> Linexpr.of_var v) new_index_names)
  in
  let x_of = apply_matrix inverse y_vec in
  let x_expr = Array.map Linexpr.to_expr x_of in
  (* Does new axis r coincide exactly with old dimension j (unit row of
     T⁻¹ at j picking axis r, with identical ranges)?  Then its guard is
     redundant. *)
  let axis_exact j =
    let row = Imatrix.row inverse j in
    let unit_at = ref None in
    let ok = ref true in
    Array.iteri
      (fun r c ->
        if c = 1 && !unit_at = None then unit_at := Some r
        else if c <> 0 then ok := false)
      row;
    match !unit_at, !ok with
    | Some r, true ->
      Linexpr.equal new_lo.(r) old_lo.(j) && Linexpr.equal new_hi.(r) old_hi.(j)
    | _ -> false
  in
  let cmp op a b = Ast.mk (Ast.Binop (op, a, b)) in
  let out_of_lattice =
    List.filteri (fun j _ -> not (axis_exact j)) (List.init n Fun.id)
    |> List.map (fun j ->
           Ast.mk
             (Ast.Binop
                ( Ast.Or,
                  cmp Ast.Lt x_expr.(j) (Linexpr.to_expr old_lo.(j)),
                  cmp Ast.Gt x_expr.(j) (Linexpr.to_expr old_hi.(j)) )))
    |> conj
  in
  (* All definitions of the target, recursive one last. *)
  let defining =
    List.filter
      (fun (q : Elab.eq) ->
        List.exists (fun df -> String.equal df.Elab.df_data target) q.Elab.q_defs)
      em.Elab.em_eqs
  in
  let recursive_id = deps.Ineq.dep_eq.Elab.q_id in
  let defining =
    List.filter (fun (q : Elab.eq) -> q.Elab.q_id <> recursive_id) defining
    @ [ deps.Ineq.dep_eq ]
  in
  let rewrite = rewrite_refs ~target ~new_name ~matrix ~ndims:n in
  (* Build one branch per definition: (region condition, transformed rhs). *)
  let branch (q : Elab.eq) =
    if List.length q.Elab.q_defs <> 1 then
      fail "multi-result equation defines %s; not supported" target;
    let df = List.hd q.Elab.q_defs in
    let conds = ref [] in
    let subst = ref [] in
    List.iteri
      (fun j (sub : Elab.lhs_sub) ->
        match sub with
        | Elab.Sub_fixed e -> conds := cmp Ast.Eq x_expr.(j) e :: !conds
        | Elab.Sub_index ix ->
          subst := (ix.Elab.ix_var, { (x_expr.(j)) with Ast.e_loc = Loc.dummy }) :: !subst;
          let ilo = linexpr_of ix.Elab.ix_range.Stypes.sr_lo in
          let ihi = linexpr_of ix.Elab.ix_range.Stypes.sr_hi in
          if not (Linexpr.equal ilo old_lo.(j)) then
            conds :=
              cmp Ast.Ge x_expr.(j) (Linexpr.to_expr ilo) :: !conds;
          if not (Linexpr.equal ihi old_hi.(j)) then
            conds :=
              cmp Ast.Le x_expr.(j) (Linexpr.to_expr ihi) :: !conds)
      df.Elab.df_subs;
    let rhs = Ast.subst_vars !subst q.Elab.q_rhs in
    let rhs = rewrite rhs in
    (and_chain (List.rev !conds), rhs)
  in
  let branches = List.map branch defining in
  (* Assemble the guarded right-hand side. *)
  let body =
    let rec chain = function
      | [] -> dummy_value
      | [ (None, rhs) ] -> rhs
      | (None, rhs) :: _ -> rhs (* unconditioned branch absorbs the rest *)
      | (Some c, rhs) :: rest -> Ast.mk (Ast.If (c, rhs, chain rest))
    in
    chain branches
  in
  let new_rhs =
    match out_of_lattice with
    | None -> body
    | Some guard -> Ast.mk (Ast.If (guard, dummy_value, body))
  in
  let merged_eq =
    { Ast.eq_lhs =
        [ { Ast.l_name = new_name;
            l_subs = List.map Ast.var_e new_index_names;
            l_path = [];
            l_loc = Loc.dummy } ];
      eq_rhs = new_rhs;
      eq_loc = deps.Ineq.dep_eq.Elab.q_loc }
  in
  (* Remaining equations: drop definitions of the target, rewrite its
     uses everywhere else. *)
  let other_eqs =
    List.filter_map
      (fun (q : Elab.eq) ->
        if List.exists (fun df -> String.equal df.Elab.df_data target) q.Elab.q_defs
        then None
        else Some (ast_equation_of q (rewrite q.Elab.q_rhs)))
      em.Elab.em_eqs
  in
  (* New surface module. *)
  let m = em.Elab.em_ast in
  let new_types =
    m.Ast.m_types
    @ List.map
        (fun (name, lo, hi) ->
          { Ast.td_names = [ name ];
            td_def = Ast.mk_t (Ast.Tsubrange (lo, hi));
            td_loc = Loc.dummy })
        new_ranges
  in
  let elem_type_expr =
    match elem with
    | Stypes.Scalar Stypes.Sreal -> Ast.mk_t Ast.Treal
    | Stypes.Scalar Stypes.Sint -> Ast.mk_t Ast.Tint
    | Stypes.Scalar Stypes.Sbool -> Ast.mk_t Ast.Tbool
    | _ -> assert false
  in
  let new_vars =
    List.filter_map
      (fun (vd : Ast.var_decl) ->
        let names = List.filter (fun nm -> not (String.equal nm target)) vd.Ast.vd_names in
        if names = [] then None else Some { vd with Ast.vd_names = names })
      m.Ast.m_vars
    @ [ { Ast.vd_names = [ new_name ];
          vd_type =
            Ast.mk_t
              (Ast.Tarray
                 ( List.map (fun (nm, _, _) -> Ast.mk_t (Ast.Tname nm)) new_ranges,
                   elem_type_expr ));
          vd_loc = Loc.dummy } ]
  in
  let tr_module =
    { m with
      Ast.m_name = m.Ast.m_name ^ "_hyper";
      m_types = new_types;
      m_vars = new_vars;
      m_eqs = other_eqs @ [ merged_eq ] }
  in
  { tr_target = target;
    tr_new_name = new_name;
    tr_time = time;
    tr_vectors = deps.Ineq.dep_vectors;
    tr_matrix = matrix;
    tr_inverse = inverse;
    tr_old_indices = old_index_names;
    tr_new_indices = new_index_names;
    tr_module }

(* ------------------------------------------------------------------ *)
(* Derivation display, as in the paper's §4 narrative. *)

let pp_derivation ppf (tr : t) =
  let time_poly =
    String.concat " + "
      (List.filteri (fun i _ -> tr.tr_time.(i) <> 0) tr.tr_old_indices
       |> List.mapi (fun _ v -> v)
       |> fun _ ->
       List.mapi
         (fun i v ->
           if tr.tr_time.(i) = 1 then Some v
           else if tr.tr_time.(i) = 0 then None
           else Some (Printf.sprintf "%d%s" tr.tr_time.(i) v))
         tr.tr_old_indices
       |> List.filter_map Fun.id)
  in
  Fmt.pf ppf "@[<v>Dependence inequalities (a·d > 0):@,";
  List.iter (fun d -> Fmt.pf ppf "  %a@," Ineq.pp_inequality d) tr.tr_vectors;
  Fmt.pf ppf "Least solution: a = (%a)@,"
    (Fmt.array ~sep:(Fmt.any ", ") Fmt.int)
    tr.tr_time;
  Fmt.pf ppf "Time equation: t(%s[%s]) = %s@," tr.tr_target
    (String.concat ", " tr.tr_old_indices)
    time_poly;
  Fmt.pf ppf "Coordinate change T =@,%a@," Imatrix.pp tr.tr_matrix;
  List.iteri
    (fun r name ->
      let terms =
        List.mapi
          (fun j v ->
            let c = tr.tr_matrix.(r).(j) in
            if c = 0 then None
            else if c = 1 then Some v
            else Some (Printf.sprintf "%d%s" c v))
          tr.tr_old_indices
        |> List.filter_map Fun.id
      in
      Fmt.pf ppf "  %s = %s@," name (String.concat " + " terms))
    tr.tr_new_indices;
  Fmt.pf ppf "Inverse (old coordinates):@,";
  List.iteri
    (fun j v ->
      let terms =
        List.mapi
          (fun r name ->
            let c = tr.tr_inverse.(j).(r) in
            if c = 0 then None
            else if c = 1 then Some name
            else if c = -1 then Some ("- " ^ name)
            else Some (Printf.sprintf "%+d%s" c name))
          tr.tr_new_indices
        |> List.filter_map Fun.id
      in
      Fmt.pf ppf "  %s = %s@," v (String.concat " " terms))
    tr.tr_old_indices;
  Fmt.pf ppf "@]"

let derivation_to_string tr = Fmt.str "%a" pp_derivation tr
