(** Least-coefficient time solver and unimodular completion (paper §4,
    after Lamport). *)

exception No_schedule of string
(** No linear schedule exists (e.g. both [d] and [-d] occur), or the time
    vector's gcd exceeds 1 so no unimodular completion exists. *)

val solve : ?limit:int -> int array list -> int array
(** The least non-negative integer vector [a] with [a . d > 0] for every
    difference vector: smallest coefficient sum, ties broken
    lexicographically — [(2, 1, 1)] for the paper's example.  [limit]
    bounds the searched coefficient sum (a generous default is derived
    from the vectors).
    @raise No_schedule when the search space is exhausted. *)

val satisfies : int array -> int array list -> bool
(** Does a candidate satisfy every inequality strictly? *)

val violations : int array -> int array list -> int array list
(** The difference vectors a candidate fails to order strictly
    ([a . d <= 0]); empty exactly when {!satisfies} holds.  Used by the
    legality verifier to report Lamport inequalities edge-by-edge. *)

val complete : int array -> Imatrix.t
(** A unimodular matrix whose first row is the given time vector.  Unit
    rows are preferred (reproducing the paper's [I' = K, J' = I]); an
    extended-gcd construction handles rows without a +-1 coefficient.
    @raise No_schedule when the entries' gcd exceeds 1. *)
