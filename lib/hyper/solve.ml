(* Least-coefficient solver for the time equation (paper §4, after [10]).

   Given difference vectors {d}, find the least non-negative integer
   vector a with a·d > 0 for every d.  "Least" follows the paper's
   example: smallest coefficient sum, ties broken lexicographically, which
   yields a = (2, 1, 1) for the revised relaxation.  The search is exact
   for the constant-offset class the paper treats; symbolic offsets
   (reference [14]) are out of scope. *)

exception No_schedule of string

(* Enumerate vectors of length [n] with non-negative entries summing to
   [total], in lexicographic order. *)
let rec enumerate n total k =
  if n = 0 then (if total = 0 then k [] )
  else
    for first = 0 to total do
      enumerate (n - 1) (total - first) (fun rest -> k (first :: rest))
    done

let dot a d =
  let acc = ref 0 in
  Array.iteri (fun i c -> acc := !acc + (c * d.(i))) a;
  !acc

let satisfies a vectors = List.for_all (fun d -> dot a d > 0) vectors

let violations a vectors = List.filter (fun d -> dot a d <= 0) vectors

(* An upper bound on the coefficient sum worth searching: if no schedule
   exists with sum below this, the dependences almost certainly admit no
   linear schedule at all (e.g. both d and -d present). *)
let default_limit vectors =
  let n = match vectors with v :: _ -> Array.length v | [] -> 1 in
  let maxc =
    List.fold_left
      (fun acc v -> Array.fold_left (fun acc c -> max acc (abs c)) acc v)
      1 vectors
  in
  (4 * n * maxc) + 8

let solve ?limit (vectors : int array list) : int array =
  Ps_obs.Trace.with_span "hyper.solve" @@ fun () ->
  match vectors with
  | [] -> raise (No_schedule "no dependence vectors")
  | v0 :: _ ->
    let n = Array.length v0 in
    if List.exists (fun v -> Array.length v <> n) vectors then
      invalid_arg "Solve.solve: inconsistent vector lengths";
    let limit = match limit with Some l -> l | None -> default_limit vectors in
    let found = ref None in
    (try
       for total = 1 to limit do
         enumerate n total (fun coeffs ->
             let a = Array.of_list coeffs in
             if satisfies a vectors then begin
               found := Some a;
               raise Exit
             end)
       done
     with Exit -> ());
    (match !found with
     | Some a -> a
     | None ->
       raise
         (No_schedule
            (Printf.sprintf
               "no linear schedule with coefficient sum <= %d; the dependences \
                are cyclic"
               limit)))

(* ------------------------------------------------------------------ *)
(* Unimodular completion: extend the time row to a square matrix with
   |det| = 1.  The paper's choice (I' = K, J' = I) corresponds to
   completing with unit vectors and dropping the last position whose
   coefficient is +-1; we reproduce that and fall back to an extended-gcd
   construction when no coefficient is +-1. *)

let unit_row n j = Array.init n (fun i -> if i = j then 1 else 0)

let complete_with_units (t : int array) : Imatrix.t option =
  let n = Array.length t in
  (* Dropping position k leaves det = +- t_k; pick the last k with
     |t_k| = 1 so that the earlier axes survive as the new inner
     dimensions, matching the paper's I' = K, J' = I. *)
  let k = ref (-1) in
  Array.iteri (fun i c -> if abs c = 1 then k := i) t;
  if !k < 0 then None
  else
    let rows =
      Array.to_list t
      :: List.filter_map
           (fun j -> if j = !k then None else Some (Array.to_list (unit_row n j)))
           (List.init n Fun.id)
    in
    let m = Imatrix.of_rows rows in
    if abs (Imatrix.det m) = 1 then Some m else None

(* General completion via row-operation accumulation: find P with
   P tᵀ = e1; then t is the first row of (P⁻¹)ᵀ, which is unimodular. *)
let complete_general (t : int array) : Imatrix.t =
  let n = Array.length t in
  let v = Array.copy t in
  (* q accumulates P⁻¹ (start from identity, apply inverse elementary row
     operations on the right as we apply the operations to v). *)
  let q = Array.map Array.copy (Imatrix.identity n) in
  (* Row op: v.(i) <- v.(i) - f * v.(j)  ==>  q <- q * E⁻¹ where E⁻¹ adds
     f * (column i) to ... accumulate on columns: col j of q += f * col i. *)
  let add_rows i j f =
    (* v := E v with E: row i -= f * row j;  q := q E⁻¹ with E⁻¹: row i += f * row j,
       acting on columns of q: column j += f * column i. *)
    v.(i) <- v.(i) - (f * v.(j));
    for r = 0 to n - 1 do
      q.(r).(j) <- q.(r).(j) + (f * q.(r).(i))
    done
  in
  let swap i j =
    let tmp = v.(i) in
    v.(i) <- v.(j);
    v.(j) <- tmp;
    for r = 0 to n - 1 do
      let tmp = q.(r).(i) in
      q.(r).(i) <- q.(r).(j);
      q.(r).(j) <- tmp
    done
  in
  let negate i =
    v.(i) <- -v.(i);
    for r = 0 to n - 1 do
      q.(r).(i) <- -q.(r).(i)
    done
  in
  (* Euclidean reduction of v to (g, 0, ..., 0). *)
  let rec reduce () =
    (* Find the smallest non-zero |v_i| and move it to front. *)
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if v.(i) <> 0 && (!best < 0 || abs v.(i) < abs v.(!best)) then best := i
    done;
    if !best < 0 then invalid_arg "Solve.complete_general: zero vector";
    if !best <> 0 then swap 0 !best;
    if v.(0) < 0 then negate 0;
    let others = ref false in
    for i = 1 to n - 1 do
      if v.(i) <> 0 then begin
        others := true;
        let f = v.(i) / v.(0) in
        add_rows i 0 f
      end
    done;
    if !others && Array.exists (fun x -> x <> 0) (Array.sub v 1 (n - 1)) then
      reduce ()
  in
  reduce ();
  if v.(0) <> 1 then
    raise
      (No_schedule
         (Printf.sprintf "time coefficients have gcd %d; cannot complete" v.(0)));
  (* q = P⁻¹ with P tᵀ = e1, so T = qᵀ has first row t. *)
  let tr = Imatrix.make n (fun i j -> q.(j).(i)) in
  assert (Imatrix.row tr 0 = t);
  assert (abs (Imatrix.det tr) = 1);
  tr

let complete (t : int array) : Imatrix.t =
  match complete_with_units t with
  | Some m -> m
  | None -> complete_general t
