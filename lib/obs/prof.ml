(* Loop-level profiler: per-flowchart-node execution counts and
   cumulative nanoseconds, mapped back to source equations via [Loc].

   Sites are registered once when the interpreter compiles a flowchart
   node and then hit from the execution hot path, so hits are lock-free
   fetch-and-adds on per-site atomics and the disabled guard — which the
   *caller* checks before even reading the clock — is one atomic load.
   Registration takes a mutex, once per node per compile. *)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

type site = {
  s_kind : string;  (* "loop" | "eq" | ... *)
  s_name : string;
  s_loc : Ps_lang.Loc.span option;
  s_count : int Atomic.t;
  s_ns : int Atomic.t;
}

let mutex = Mutex.create ()

(* Registration order; rendering sorts anyway. *)
let sites : site list ref = ref []

let reset () =
  Mutex.lock mutex;
  sites := [];
  Mutex.unlock mutex

let set_enabled b =
  if b && not (Atomic.get enabled_flag) then reset ();
  Atomic.set enabled_flag b

let register ?loc ~kind name =
  let s =
    { s_kind = kind;
      s_name = name;
      s_loc = loc;
      s_count = Atomic.make 0;
      s_ns = Atomic.make 0 }
  in
  Mutex.lock mutex;
  sites := s :: !sites;
  Mutex.unlock mutex;
  s

let hit s ~ns =
  ignore (Atomic.fetch_and_add s.s_count 1);
  ignore (Atomic.fetch_and_add s.s_ns ns)

type row = {
  r_kind : string;
  r_name : string;
  r_loc : string option;
  r_count : int;
  r_ns : int;
}

(* Hottest first; sites that never executed are dropped. *)
let rows () =
  Mutex.lock mutex;
  let snap = !sites in
  Mutex.unlock mutex;
  snap
  |> List.filter_map (fun s ->
         let count = Atomic.get s.s_count in
         if count = 0 then None
         else
           Some
             { r_kind = s.s_kind;
               r_name = s.s_name;
               r_loc = Option.map Ps_lang.Loc.to_string s.s_loc;
               r_count = count;
               r_ns = Atomic.get s.s_ns })
  |> List.sort (fun a b -> compare (b.r_ns, b.r_count) (a.r_ns, a.r_count))

let render_table ?(limit = 10) () =
  match rows () with
  | [] -> "profiler: no samples\n"
  | all ->
    let shown = List.filteri (fun i _ -> i < limit) all in
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "%-6s %-24s %10s %12s  %s\n" "kind" "name" "count"
         "total ms" "source");
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf "%-6s %-24s %10d %12.3f  %s\n" r.r_kind r.r_name
             r.r_count
             (float_of_int r.r_ns /. 1e6)
             (Option.value r.r_loc ~default:"-")))
      shown;
    if List.length all > limit then
      Buffer.add_string b
        (Printf.sprintf "... and %d more\n" (List.length all - limit));
    Buffer.contents b
