(* Span-based tracing with a Chrome trace-event exporter.

   The recorder is off by default and every instrumented call site pays
   one atomic load on the disabled path — [with_span] tests the flag
   before touching the clock, the mutex, or the event store, so the
   compiler pipeline can stay permanently instrumented.

   When enabled, spans are recorded as Begin/End event pairs carrying
   the recording domain's id, and exported in the Chrome trace-event
   JSON format ("traceEvents"), which Perfetto and chrome://tracing load
   directly.  Timestamps are microseconds from [set_enabled true] and
   are made globally monotone at record time (the store's mutex already
   serializes events, so clamping against the previous timestamp costs
   nothing extra), which in turn makes them monotone per thread.

   The module also ships the inverse direction — a minimal JSON reader
   ([Json]), a trace parser ([parse_chrome]) and a structural validator
   ([validate]) — so tests and `psc trace-check` can round-trip an
   emitted file: every B closed by a matching E, per-thread timestamp
   monotonicity, proper nesting. *)

type phase = Begin | End | Instant

type event = {
  ev_name : string;
  ev_ph : phase;
  ev_ts : float;  (* microseconds since the trace was enabled *)
  ev_tid : int;
  ev_args : (string * string) list;
}

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let mutex = Mutex.create ()

(* Most recent first; [events ()] reverses. *)
let store : event list ref = ref []

let epoch = ref 0.0

let last_ts = ref 0.0

let reset () =
  Mutex.lock mutex;
  store := [];
  epoch := Unix.gettimeofday ();
  last_ts := 0.0;
  Mutex.unlock mutex

let set_enabled b =
  if b && not (Atomic.get enabled_flag) then reset ();
  Atomic.set enabled_flag b

let record ?(args = []) ph name =
  let tid = (Domain.self () :> int) in
  Mutex.lock mutex;
  let ts = max ((Unix.gettimeofday () -. !epoch) *. 1e6) !last_ts in
  last_ts := ts;
  store := { ev_name = name; ev_ph = ph; ev_ts = ts; ev_tid = tid; ev_args = args } :: !store;
  Mutex.unlock mutex

let events () = List.rev !store

let instant ?args name = if enabled () then record ?args Instant name

(* The workhorse: one atomic load when disabled; Begin/End around [f]
   (End also on exception) when enabled. *)
let with_span ?args name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    record ?args Begin name;
    Fun.protect ~finally:(fun () -> record End name) f
  end

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let phase_letter = function Begin -> "B" | End -> "E" | Instant -> "i"

let event_to_json e =
  let args =
    match e.ev_args with
    | [] -> ""
    | kvs ->
      Printf.sprintf ",\"args\":{%s}"
        (String.concat ","
           (List.map
              (fun (k, v) ->
                Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
              kvs))
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d%s}"
    (json_escape e.ev_name) (phase_letter e.ev_ph) e.ev_ts e.ev_tid args

let to_chrome_json () =
  Printf.sprintf
    "{\"traceEvents\":[\n%s\n],\"displayTimeUnit\":\"ms\"}\n"
    (String.concat ",\n" (List.map event_to_json (events ())))

let write path =
  let oc = open_out path in
  output_string oc (to_chrome_json ());
  close_out oc

(* ------------------------------------------------------------------ *)
(* A minimal JSON reader, for the round-trip tests and `trace-check`. *)

module Json = struct
  type t =
    | Obj of (string * t) list
    | Arr of t list
    | Str of string
    | Num of float
    | Bool of bool
    | Null

  exception Parse_error of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else '\000' in
    let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
    let rec skip_ws () =
      match peek () with
      | ' ' | '\t' | '\n' | '\r' ->
        incr pos;
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      skip_ws ();
      if peek () <> c then fail "expected %c at offset %d" c !pos;
      incr pos
    in
    let lit w v =
      let l = String.length w in
      if !pos + l <= n && String.sub s !pos l = w then begin
        pos := !pos + l;
        v
      end
      else fail "bad literal at offset %d" !pos
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          let c = peek () in
          incr pos;
          (match c with
           | 'n' -> Buffer.add_char b '\n'
           | 't' -> Buffer.add_char b '\t'
           | 'r' -> Buffer.add_char b '\r'
           | '"' | '\\' | '/' -> Buffer.add_char b c
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
              | Some _ -> Buffer.add_char b '?'
              | None -> fail "bad \\u escape %s" hex)
           | _ -> fail "unsupported escape \\%c" c);
          go ()
        | c ->
          incr pos;
          Buffer.add_char b c;
          go ()
      in
      go ();
      Buffer.contents b
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | '{' ->
        incr pos;
        skip_ws ();
        if peek () = '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            expect ':';
            let v = value () in
            skip_ws ();
            if peek () = ',' then begin
              incr pos;
              members ((k, v) :: acc)
            end
            else begin
              expect '}';
              List.rev ((k, v) :: acc)
            end
          in
          Obj (members [])
      | '[' ->
        incr pos;
        skip_ws ();
        if peek () = ']' then begin
          incr pos;
          Arr []
        end
        else
          let rec elems acc =
            let v = value () in
            skip_ws ();
            if peek () = ',' then begin
              incr pos;
              elems (v :: acc)
            end
            else begin
              expect ']';
              List.rev (v :: acc)
            end
          in
          Arr (elems [])
      | '"' -> Str (string_lit ())
      | 't' -> lit "true" (Bool true)
      | 'f' -> lit "false" (Bool false)
      | 'n' -> lit "null" Null
      | _ ->
        let start = !pos in
        while
          !pos < n
          &&
          match s.[!pos] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        do
          incr pos
        done;
        if !pos = start then fail "unexpected character at offset %d" !pos;
        Num (float_of_string (String.sub s start (!pos - start)))
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at offset %d" !pos;
    v

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None
end

exception Invalid_trace of string

let invalid fmt = Printf.ksprintf (fun m -> raise (Invalid_trace m)) fmt

(* Parse a Chrome trace-event file back into events (in file order).
   Accepts both the {"traceEvents": [...]} object form we emit and a
   bare event array. *)
let parse_chrome (text : string) : event list =
  let j =
    try Json.parse text with Json.Parse_error m -> invalid "bad JSON: %s" m
  in
  let rows =
    match j with
    | Json.Arr rows -> rows
    | Json.Obj _ -> (
      match Json.member "traceEvents" j with
      | Some (Json.Arr rows) -> rows
      | _ -> invalid "no traceEvents array")
    | _ -> invalid "trace is neither an object nor an array"
  in
  List.map
    (fun row ->
      let str k =
        match Json.member k row with
        | Some (Json.Str s) -> s
        | _ -> invalid "event lacks string field %S" k
      in
      let num k =
        match Json.member k row with
        | Some (Json.Num f) -> f
        | _ -> invalid "event lacks numeric field %S" k
      in
      let ph =
        match str "ph" with
        | "B" -> Begin
        | "E" -> End
        | "i" | "I" -> Instant
        | p -> invalid "unsupported event phase %S" p
      in
      let args =
        match Json.member "args" row with
        | Some (Json.Obj kvs) ->
          List.filter_map
            (function k, Json.Str v -> Some (k, v) | _ -> None)
            kvs
        | _ -> []
      in
      { ev_name = str "name";
        ev_ph = ph;
        ev_ts = num "ts";
        ev_tid = int_of_float (num "tid");
        ev_args = args })
    rows

(* Structural validation: per thread, timestamps never decrease, every E
   matches the innermost open B, and no span is left open. *)
let validate (evs : event list) : (unit, string) result =
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let last : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks tid s;
      s
  in
  let err = ref None in
  List.iter
    (fun e ->
      if !err = None then begin
        (match Hashtbl.find_opt last e.ev_tid with
         | Some t when e.ev_ts < t ->
           err :=
             Some
               (Printf.sprintf
                  "timestamps go backwards on tid %d at %S (%.3f < %.3f)"
                  e.ev_tid e.ev_name e.ev_ts t)
         | _ -> ());
        Hashtbl.replace last e.ev_tid e.ev_ts;
        match e.ev_ph with
        | Begin ->
          let s = stack e.ev_tid in
          s := e.ev_name :: !s
        | End -> (
          let s = stack e.ev_tid in
          match !s with
          | top :: rest when String.equal top e.ev_name -> s := rest
          | top :: _ ->
            err :=
              Some
                (Printf.sprintf "E %S closes open span %S on tid %d" e.ev_name
                   top e.ev_tid)
          | [] ->
            err :=
              Some
                (Printf.sprintf "E %S with no open span on tid %d" e.ev_name
                   e.ev_tid))
        | Instant -> ()
      end)
    evs;
  (match !err with
   | None ->
     Hashtbl.iter
       (fun tid s ->
         match !s with
         | [] -> ()
         | open_ :: _ when !err = None ->
           err :=
             Some (Printf.sprintf "span %S left open on tid %d" open_ tid)
         | _ -> ())
       stacks
   | Some _ -> ());
  match !err with None -> Ok () | Some m -> Error m
