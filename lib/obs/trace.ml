(* Span-based tracing with a Chrome trace-event exporter.

   The recorder is off by default and every instrumented call site pays
   one atomic load on the disabled path — [with_span] tests the state
   word before touching the clock, the mutex, or the event store, so the
   compiler pipeline can stay permanently instrumented.

   When enabled, spans are recorded as Begin/End event pairs carrying
   the real OS process id and the recording thread's id (systhreads and
   domains both get distinct ids), and exported in the Chrome
   trace-event JSON format ("traceEvents"), which Perfetto and
   chrome://tracing load directly.  Timestamps are microseconds from
   [set_enabled true] and are made globally monotone at record time
   (the store's mutex already serializes events, so clamping against
   the previous timestamp costs nothing extra), which in turn makes
   them monotone per thread.  The absolute wall-clock moment of the
   epoch is written into the file ("otherData"."epoch_us"), which is
   what lets [merge] align traces recorded by different processes onto
   one timeline.

   Besides the global store there are per-thread *collectors*
   ([collect]): a request handler can gather exactly the spans recorded
   on its own thread — even when global tracing is off — which is how
   the compile server captures the span subtree of a slow request
   without tracing every request to disk.  The disabled-path guarantee
   is kept by folding both switches into one atomic word: bit 0 is the
   global flag, the upper bits count live collectors, and a zero word
   short-circuits [with_span] with a single load.

   The module also ships the inverse direction — a minimal JSON reader
   ([Json]), a trace parser ([parse_chrome] / [parse_chrome_file]) and
   a structural validator ([validate]) — so tests and `psc trace-check`
   can round-trip an emitted file: every B closed by a matching E,
   per-(pid,tid) timestamp monotonicity, proper nesting, and no span id
   claimed twice across a merged multi-process trace. *)

type phase = Begin | End | Instant

type event = {
  ev_name : string;
  ev_ph : phase;
  ev_ts : float;  (* microseconds since the trace was enabled *)
  ev_pid : int;
  ev_tid : int;
  ev_args : (string * string) list;
}

(* Bit 0: the global flag; bits 1..: 2 x the live collector count.
   [with_span] is a no-op iff the whole word is 0. *)
let state = Atomic.make 0

let enabled () = Atomic.get state land 1 = 1

let rec set_enabled_bit b =
  let cur = Atomic.get state in
  let next = if b then cur lor 1 else cur land lnot 1 in
  if cur <> next && not (Atomic.compare_and_set state cur next) then
    set_enabled_bit b

let mutex = Mutex.create ()

(* Most recent first; [events ()] reverses. *)
let store : event list ref = ref []

(* Per-thread collectors (most recent first), keyed by the same thread
   id that becomes the Chrome tid.  Guarded by [mutex]. *)
let collectors : (int, event list ref) Hashtbl.t = Hashtbl.create 8

let epoch = ref 0.0

let last_ts = ref 0.0

let pid = Unix.getpid ()

let reset () =
  Mutex.lock mutex;
  store := [];
  epoch := Unix.gettimeofday ();
  last_ts := 0.0;
  Mutex.unlock mutex

let set_enabled b =
  if b && not (enabled ()) then reset ();
  set_enabled_bit b

(* Unique within the process by the counter, unique across processes by
   the pid prefix — which is what lets [validate] reject the same file
   merged into a timeline twice. *)
let sid_counter = Atomic.make 0

let fresh_span_id () =
  Printf.sprintf "%d.%d" pid (Atomic.fetch_and_add sid_counter 1)

let thread_id () = Thread.id (Thread.self ())

let record ?(args = []) ph name =
  let tid = thread_id () in
  Mutex.lock mutex;
  let ts = max ((Unix.gettimeofday () -. !epoch) *. 1e6) !last_ts in
  last_ts := ts;
  let e =
    { ev_name = name; ev_ph = ph; ev_ts = ts; ev_pid = pid; ev_tid = tid;
      ev_args = args }
  in
  if Atomic.get state land 1 = 1 then store := e :: !store;
  (match Hashtbl.find_opt collectors tid with
   | Some sink -> sink := e :: !sink
   | None -> ());
  Mutex.unlock mutex

let events () = List.rev !store

let instant ?args name =
  if Atomic.get state <> 0 then record ?args Instant name

(* The workhorse: one atomic load when disabled; Begin/End around [f]
   (End also on exception) when enabled or collected. *)
let with_span ?args name f =
  if Atomic.get state = 0 then f ()
  else begin
    record ?args Begin name;
    Fun.protect ~finally:(fun () -> record End name) f
  end

let collect f =
  let tid = thread_id () in
  let sink = ref [] in
  Mutex.lock mutex;
  (* A nested collect on the same thread would lose the outer sink;
     the server never nests, so keep the simple last-wins semantics. *)
  Hashtbl.replace collectors tid sink;
  Mutex.unlock mutex;
  ignore (Atomic.fetch_and_add state 2);
  let finally () =
    ignore (Atomic.fetch_and_add state (-2));
    Mutex.lock mutex;
    Hashtbl.remove collectors tid;
    Mutex.unlock mutex
  in
  let r = Fun.protect ~finally f in
  (r, List.rev !sink)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let phase_letter = function Begin -> "B" | End -> "E" | Instant -> "i"

let event_to_json e =
  let args =
    match e.ev_args with
    | [] -> ""
    | kvs ->
      Printf.sprintf ",\"args\":{%s}"
        (String.concat ","
           (List.map
              (fun (k, v) ->
                Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
              kvs))
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d%s}"
    (json_escape e.ev_name) (phase_letter e.ev_ph) e.ev_ts e.ev_pid e.ev_tid
    args

let render_events ?(epoch_us = 0.0) evs =
  Printf.sprintf
    "{\"traceEvents\":[\n%s\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"epoch_us\":\"%.3f\"}}\n"
    (String.concat ",\n" (List.map event_to_json evs))
    epoch_us

let to_chrome_json () = render_events ~epoch_us:(!epoch *. 1e6) (events ())

let write_events ?epoch_us path evs =
  let oc = open_out path in
  output_string oc (render_events ?epoch_us evs);
  close_out oc

let write path =
  let oc = open_out path in
  output_string oc (to_chrome_json ());
  close_out oc

(* ------------------------------------------------------------------ *)
(* A minimal JSON reader, for the round-trip tests and `trace-check`. *)

module Json = struct
  type t =
    | Obj of (string * t) list
    | Arr of t list
    | Str of string
    | Num of float
    | Bool of bool
    | Null

  exception Parse_error of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else '\000' in
    let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
    let rec skip_ws () =
      match peek () with
      | ' ' | '\t' | '\n' | '\r' ->
        incr pos;
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      skip_ws ();
      if peek () <> c then fail "expected %c at offset %d" c !pos;
      incr pos
    in
    let lit w v =
      let l = String.length w in
      if !pos + l <= n && String.sub s !pos l = w then begin
        pos := !pos + l;
        v
      end
      else fail "bad literal at offset %d" !pos
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          let c = peek () in
          incr pos;
          (match c with
           | 'n' -> Buffer.add_char b '\n'
           | 't' -> Buffer.add_char b '\t'
           | 'r' -> Buffer.add_char b '\r'
           | '"' | '\\' | '/' -> Buffer.add_char b c
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
              | Some _ -> Buffer.add_char b '?'
              | None -> fail "bad \\u escape %s" hex)
           | _ -> fail "unsupported escape \\%c" c);
          go ()
        | c ->
          incr pos;
          Buffer.add_char b c;
          go ()
      in
      go ();
      Buffer.contents b
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | '{' ->
        incr pos;
        skip_ws ();
        if peek () = '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            expect ':';
            let v = value () in
            skip_ws ();
            if peek () = ',' then begin
              incr pos;
              members ((k, v) :: acc)
            end
            else begin
              expect '}';
              List.rev ((k, v) :: acc)
            end
          in
          Obj (members [])
      | '[' ->
        incr pos;
        skip_ws ();
        if peek () = ']' then begin
          incr pos;
          Arr []
        end
        else
          let rec elems acc =
            let v = value () in
            skip_ws ();
            if peek () = ',' then begin
              incr pos;
              elems (v :: acc)
            end
            else begin
              expect ']';
              List.rev (v :: acc)
            end
          in
          Arr (elems [])
      | '"' -> Str (string_lit ())
      | 't' -> lit "true" (Bool true)
      | 'f' -> lit "false" (Bool false)
      | 'n' -> lit "null" Null
      | _ ->
        let start = !pos in
        while
          !pos < n
          &&
          match s.[!pos] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        do
          incr pos
        done;
        if !pos = start then fail "unexpected character at offset %d" !pos;
        Num (float_of_string (String.sub s start (!pos - start)))
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at offset %d" !pos;
    v

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None
end

exception Invalid_trace of string

let invalid fmt = Printf.ksprintf (fun m -> raise (Invalid_trace m)) fmt

type file = { f_epoch_us : float; f_events : event list }

(* Parse a Chrome trace-event file back into events (in file order).
   Accepts both the {"traceEvents": [...]} object form we emit and a
   bare event array.  Files written before the exporter carried real
   pids default to pid 1, matching what they said on disk. *)
let parse_chrome_file (text : string) : file =
  let j =
    try Json.parse text with Json.Parse_error m -> invalid "bad JSON: %s" m
  in
  let rows =
    match j with
    | Json.Arr rows -> rows
    | Json.Obj _ -> (
      match Json.member "traceEvents" j with
      | Some (Json.Arr rows) -> rows
      | _ -> invalid "no traceEvents array")
    | _ -> invalid "trace is neither an object nor an array"
  in
  let epoch_us =
    match Json.member "otherData" j with
    | Some other -> (
      match Json.member "epoch_us" other with
      | Some (Json.Str s) -> (
        match float_of_string_opt s with
        | Some f -> f
        | None -> invalid "otherData.epoch_us is not a number")
      | Some (Json.Num f) -> f
      | _ -> 0.0)
    | None -> 0.0
  in
  let events =
    List.map
      (fun row ->
        let str k =
          match Json.member k row with
          | Some (Json.Str s) -> s
          | _ -> invalid "event lacks string field %S" k
        in
        let num k =
          match Json.member k row with
          | Some (Json.Num f) -> f
          | _ -> invalid "event lacks numeric field %S" k
        in
        let ph =
          match str "ph" with
          | "B" -> Begin
          | "E" -> End
          | "i" | "I" -> Instant
          | p -> invalid "unsupported event phase %S" p
        in
        let args =
          match Json.member "args" row with
          | Some (Json.Obj kvs) ->
            List.filter_map
              (function k, Json.Str v -> Some (k, v) | _ -> None)
              kvs
          | _ -> []
        in
        let pid =
          match Json.member "pid" row with
          | Some (Json.Num f) -> int_of_float f
          | _ -> 1
        in
        { ev_name = str "name";
          ev_ph = ph;
          ev_ts = num "ts";
          ev_pid = pid;
          ev_tid = int_of_float (num "tid");
          ev_args = args })
      rows
  in
  { f_epoch_us = epoch_us; f_events = events }

let parse_chrome (text : string) : event list = (parse_chrome_file text).f_events

(* Stitch traces from several processes onto one timeline.  Each file's
   timestamps are relative to its own epoch; the recorded absolute
   epochs shift every file onto the earliest one, and a stable sort by
   timestamp interleaves them without reordering any single file (ties
   keep file order, so per-(pid,tid) monotonicity survives). *)
let merge (files : file list) : event list =
  match files with
  | [] -> []
  | _ ->
    let base =
      List.fold_left (fun acc f -> Float.min acc f.f_epoch_us) infinity files
    in
    let shifted =
      List.concat_map
        (fun f ->
          let off = f.f_epoch_us -. base in
          List.map (fun e -> { e with ev_ts = e.ev_ts +. off }) f.f_events)
        files
    in
    List.stable_sort (fun a b -> Float.compare a.ev_ts b.ev_ts) shifted

(* Structural validation: per (pid, tid), timestamps never decrease,
   every E matches the innermost open B, no span is left open — and no
   two Begin events claim the same span id ("sid" arg), which is what
   catches the same process's trace merged into a timeline twice. *)
let validate (evs : event list) : (unit, string) result =
  let stacks : (int * int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let last : (int * int, float) Hashtbl.t = Hashtbl.create 8 in
  let sids : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let stack key =
    match Hashtbl.find_opt stacks key with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks key s;
      s
  in
  let err = ref None in
  List.iter
    (fun e ->
      if !err = None then begin
        let key = (e.ev_pid, e.ev_tid) in
        (match Hashtbl.find_opt last key with
         | Some t when e.ev_ts < t ->
           err :=
             Some
               (Printf.sprintf
                  "timestamps go backwards on pid %d tid %d at %S (%.3f < %.3f)"
                  e.ev_pid e.ev_tid e.ev_name e.ev_ts t)
         | _ -> ());
        Hashtbl.replace last key e.ev_ts;
        match e.ev_ph with
        | Begin ->
          (match List.assoc_opt "sid" e.ev_args with
           | Some sid ->
             if Hashtbl.mem sids sid then
               err :=
                 Some
                   (Printf.sprintf "span id %S claimed twice (at %S)" sid
                      e.ev_name)
             else Hashtbl.add sids sid ()
           | None -> ());
          let s = stack key in
          s := e.ev_name :: !s
        | End -> (
          let s = stack key in
          match !s with
          | top :: rest when String.equal top e.ev_name -> s := rest
          | top :: _ ->
            err :=
              Some
                (Printf.sprintf "E %S closes open span %S on pid %d tid %d"
                   e.ev_name top e.ev_pid e.ev_tid)
          | [] ->
            err :=
              Some
                (Printf.sprintf "E %S with no open span on pid %d tid %d"
                   e.ev_name e.ev_pid e.ev_tid))
        | Instant -> ()
      end)
    evs;
  (match !err with
   | None ->
     Hashtbl.iter
       (fun (pid, tid) s ->
         match !s with
         | [] -> ()
         | open_ :: _ when !err = None ->
           err :=
             Some
               (Printf.sprintf "span %S left open on pid %d tid %d" open_ pid
                  tid)
         | _ -> ())
       stacks
   | Some _ -> ());
  match !err with None -> Ok () | Some m -> Error m

(* Fold a flat event list into (name, duration_us) rows in begin order —
   the rendering of a slow request's collected span subtree.  Unmatched
   events (a span still open when the collector stopped) are dropped. *)
let span_durations (evs : event list) : (string * float) list =
  let out = ref [] and stack = ref [] in
  List.iter
    (fun e ->
      match e.ev_ph with
      | Begin -> stack := (e.ev_name, e.ev_ts, ref []) :: !stack
      | End -> (
        match !stack with
        | (n, t0, children) :: tl when String.equal n e.ev_name ->
          stack := tl;
          let row = (n, e.ev_ts -. t0) in
          (match !stack with
           | (_, _, parent) :: _ -> parent := !parent @ (row :: !children)
           | [] -> out := !out @ (row :: !children))
        | _ -> ())
      | Instant -> ())
    evs;
  !out
