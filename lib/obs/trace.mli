(** Span-based tracing with a Chrome trace-event JSON exporter.

    Off by default: every instrumented call site pays exactly one atomic
    load until {!set_enabled}[ true] (or a {!collect} is live).  Spans
    nest per thread — the recording thread's id (systhreads and domains
    both get distinct ids) becomes the Chrome [tid] and the real OS
    process id the [pid].  Timestamps are microseconds from the moment
    tracing was enabled and are monotone per thread; the absolute
    wall-clock epoch is recorded in the file so {!merge} can stitch
    traces from several processes onto one timeline.  The emitted file
    loads in Perfetto / chrome://tracing and round-trips through
    {!parse_chrome} / {!parse_chrome_file} and {!validate}. *)

type phase = Begin | End | Instant

type event = {
  ev_name : string;
  ev_ph : phase;
  ev_ts : float;  (** microseconds since the trace was enabled *)
  ev_pid : int;
  ev_tid : int;
  ev_args : (string * string) list;
}

val enabled : unit -> bool
(** Whether the global store is recording.  Call sites guard via
    {!with_span}, which is free (one atomic load) when neither the
    global flag nor any {!collect} is active. *)

val set_enabled : bool -> unit
(** Enabling also {!reset}s the store and restarts the clock. *)

val reset : unit -> unit
(** Drop all recorded events and restart the trace clock. *)

val fresh_span_id : unit -> string
(** A process-unique span id ("pid.counter").  Attach it as a ["sid"]
    arg on a Begin span; {!validate} rejects a timeline in which the
    same sid appears on two Begin events, which catches one process's
    trace merged twice. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], bracketing it with Begin/End events
    when tracing is enabled or this thread is inside {!collect} (the
    End is recorded even when [f] raises).  Otherwise this is [f ()]
    after a single atomic load. *)

val instant : ?args:(string * string) list -> string -> unit
(** A zero-duration marker event. *)

val collect : (unit -> 'a) -> 'a * event list
(** [collect f] runs [f] and returns the events recorded on this thread
    during the call, in record order — even when the global store is
    disabled.  Used by the server to capture a slow request's span
    subtree without tracing every request.  Does not nest. *)

val events : unit -> event list
(** Everything recorded since the last reset, in record order. *)

val to_chrome_json : unit -> string
(** The Chrome trace-event rendering ({v {"traceEvents": [...]} v}),
    including the absolute epoch under ["otherData"]["epoch_us"]. *)

val render_events : ?epoch_us:float -> event list -> string
(** Render an explicit event list (e.g. a {!merge} result) in the same
    file format.  [epoch_us] defaults to [0.0]. *)

val write : string -> unit
(** Write {!to_chrome_json} to a file. *)

val write_events : ?epoch_us:float -> string -> event list -> unit
(** Write {!render_events} to a file. *)

val span_durations : event list -> (string * float) list
(** Fold matched Begin/End pairs into [(name, duration_us)] rows in
    begin order; unmatched events are dropped.  The rendering of a
    collected span subtree in the server's slow-request ring. *)

(** A minimal JSON reader (no external dependency), shared by the trace
    parser, `psc trace-check`, and the test suites. *)
module Json : sig
  type t =
    | Obj of (string * t) list
    | Arr of t list
    | Str of string
    | Num of float
    | Bool of bool
    | Null

  exception Parse_error of string

  val parse : string -> t

  val member : string -> t -> t option
end

exception Invalid_trace of string

type file = {
  f_epoch_us : float;  (** absolute wall-clock epoch; 0 when absent *)
  f_events : event list;
}

val parse_chrome_file : string -> file
(** Parse a Chrome trace-event file (object or bare-array form) back
    into events, in file order, keeping the recorded epoch.  Events
    written before the exporter carried pids default to pid 1.
    @raise Invalid_trace on malformed input. *)

val parse_chrome : string -> event list
(** [parse_chrome s] is [(parse_chrome_file s).f_events]. *)

val merge : file list -> event list
(** Stitch traces from several processes onto one timeline: each file's
    timestamps are shifted by its epoch's offset from the earliest one,
    then all events are stably sorted by timestamp (ties keep file
    order, preserving per-(pid,tid) monotonicity). *)

val validate : event list -> (unit, string) result
(** Per-(pid,tid) structural checks: timestamps never decrease, every
    [E] closes the matching innermost [B], nothing is left open, and no
    ["sid"] arg appears on two Begin events. *)
