(** Span-based tracing with a Chrome trace-event JSON exporter.

    Off by default: every instrumented call site pays exactly one atomic
    load until {!set_enabled}[ true].  Spans nest per thread (the
    recording domain's id becomes the Chrome [tid]), timestamps are
    microseconds from the moment tracing was enabled and are monotone
    per thread.  The emitted file loads in Perfetto / chrome://tracing
    and round-trips through {!parse_chrome} and {!validate}. *)

type phase = Begin | End | Instant

type event = {
  ev_name : string;
  ev_ph : phase;
  ev_ts : float;  (** microseconds since the trace was enabled *)
  ev_tid : int;
  ev_args : (string * string) list;
}

val enabled : unit -> bool
(** One atomic load — the cost of every disabled call site. *)

val set_enabled : bool -> unit
(** Enabling also {!reset}s the store and restarts the clock. *)

val reset : unit -> unit
(** Drop all recorded events and restart the trace clock. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], bracketing it with Begin/End events
    when tracing is enabled (the End is recorded even when [f] raises).
    When disabled this is [f ()] after a single atomic load. *)

val instant : ?args:(string * string) list -> string -> unit
(** A zero-duration marker event. *)

val events : unit -> event list
(** Everything recorded since the last reset, in record order. *)

val to_chrome_json : unit -> string
(** The Chrome trace-event rendering ({v {"traceEvents": [...]} v}). *)

val write : string -> unit
(** Write {!to_chrome_json} to a file. *)

(** A minimal JSON reader (no external dependency), shared by the trace
    parser, `psc trace-check`, and the test suites. *)
module Json : sig
  type t =
    | Obj of (string * t) list
    | Arr of t list
    | Str of string
    | Num of float
    | Bool of bool
    | Null

  exception Parse_error of string

  val parse : string -> t

  val member : string -> t -> t option
end

exception Invalid_trace of string

val parse_chrome : string -> event list
(** Parse a Chrome trace-event file (object or bare-array form) back
    into events, in file order.
    @raise Invalid_trace on malformed input. *)

val validate : event list -> (unit, string) result
(** Per-thread structural checks: timestamps never decrease, every [E]
    closes the matching innermost [B], nothing is left open. *)
