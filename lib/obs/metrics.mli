(** Process-wide metrics registry: counters, gauges, log2 histograms.

    Off by default; instrumented call sites guard on {!enabled} (one
    atomic load).  Metric updates are lock-free atomics; registration by
    name takes a mutex once per site.  All values are integers — scale
    and name fractional quantities explicitly ([…_ns], […_permille]). *)

val enabled : unit -> bool

val set_enabled : bool -> unit

type counter

type gauge

type histogram

val counter : string -> counter
(** Get or create by name.
    @raise Invalid_argument if the name exists with another kind. *)

val gauge : string -> gauge

val histogram : string -> histogram

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

val set : gauge -> int -> unit

val gauge_value : gauge -> int

val observe : histogram -> int -> unit

type histogram_snapshot = {
  hs_count : int;
  hs_sum : int;
  hs_min : int;  (** 0 when empty *)
  hs_max : int;
  hs_mean : float;
}

val snapshot : histogram -> histogram_snapshot

type sketch
(** A mergeable quantile sketch: a windowed log2 histogram.  The window
    answers p50/p90/p99/max with one-bucket resolution (relative error
    below 2x); {!sk_rotate} starts a fresh window while all-time totals
    keep accumulating; {!sk_merge_into} folds sketches bucket-wise so
    per-op (or per-process) sketches roll up losslessly. *)

val sketch : string -> sketch
(** Get or create by name, like {!counter}. *)

val sk_observe : sketch -> int -> unit
(** Record a sample (negative values clamp to 0).  Lock-free. *)

val sk_rotate : sketch -> unit
(** Clear the current window (all-time count/sum are kept). *)

val sk_merge_into : into:sketch -> sketch -> unit
(** [sk_merge_into ~into src] adds [src]'s window buckets, window max
    and all-time totals into [into].  [src] is unchanged. *)

type quantiles = {
  qs_count : int;  (** samples in the window; 0 means all else is 0 *)
  qs_p50 : int;
  qs_p90 : int;
  qs_p99 : int;
  qs_max : int;  (** exact window max *)
}

val sk_quantiles : sketch -> quantiles
(** Window quantiles.  Each estimate is the holding bucket's upper
    bound clamped to the exact max, so p50 <= p90 <= p99 <= max always
    holds. *)

val reset : unit -> unit
(** Zero every registered metric (registrations are kept). *)

val clear : unit -> unit
(** Drop all registrations — tests only; live [counter] handles held by
    instrumented code keep working but detach from the registry. *)

val counter_value_opt : string -> int option
(** Look up a counter by name (None if absent or not a counter). *)

val render_text : unit -> string
(** One metric per line, sorted by name: [name value] for counters and
    gauges, [name count=… sum=… min=… max=… mean=…] for histograms. *)

val render_json : unit -> string
(** A JSON array of [{"name","kind",...}] rows, sorted by name. *)

val now_ns : unit -> int
(** Wall clock in nanoseconds — the clock shared by the pool counters
    and the profiler. *)
