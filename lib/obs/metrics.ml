(* Process-wide metrics registry: counters, gauges, log2 histograms.

   Like [Trace], the registry is off by default and instrumented call
   sites are expected to guard on [enabled ()] — one atomic load — so
   the hot paths of the runtime pool stay free when nobody is watching.
   The metric operations themselves are unconditional lock-free atomics;
   registration (get-or-create by name) takes a mutex but happens once
   per site.

   Values are integers.  Quantities that are naturally fractional
   (utilizations, ratios) are registered in scaled units and named
   accordingly (…_permille, …_ns); the renderers print raw integers and
   leave unit interpretation to the name, which keeps both the text and
   JSON forms trivially parseable. *)

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

type counter = { c_name : string; c_v : int Atomic.t }

type gauge = { g_name : string; g_v : int Atomic.t }

(* Power-of-two buckets: bucket [i] counts samples in [2^i, 2^(i+1)).
   62 buckets cover the non-negative int range. *)
let nbuckets = 62

type histogram = {
  h_name : string;
  h_buckets : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_min : int Atomic.t;  (* max_int until the first sample *)
  h_max : int Atomic.t;
}

(* A mergeable quantile sketch: a *windowed* log2 histogram.  The
   window's buckets answer p50/p90/p99 with one-bucket resolution
   (relative error < 2x, plenty for latency SLOs), [sk_rotate] starts a
   fresh window while the all-time count/sum keep accumulating, and
   [sk_merge_into] folds one sketch into another bucket-wise — the
   property that lets per-op sketches roll up into an end-to-end one,
   or per-process sketches into a fleet view. *)
type sketch = {
  q_name : string;
  q_window : int Atomic.t array;  (* current window, log2 buckets *)
  q_wcount : int Atomic.t;        (* window sample count *)
  q_wmax : int Atomic.t;          (* window max, exact *)
  q_count : int Atomic.t;         (* all-time *)
  q_sum : int Atomic.t;
}

type metric = C of counter | G of gauge | H of histogram | Q of sketch

let mutex = Mutex.create ()

let registry : (string, metric) Hashtbl.t = Hashtbl.create 32

let with_registry f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let get_or_create name make classify =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
        match classify m with
        | Some x -> x
        | None -> invalid_arg (name ^ " is registered as a different metric kind"))
      | None ->
        let m, x = make () in
        Hashtbl.add registry name m;
        x)

let counter name =
  get_or_create name
    (fun () ->
      let c = { c_name = name; c_v = Atomic.make 0 } in
      (C c, c))
    (function C c -> Some c | _ -> None)

let gauge name =
  get_or_create name
    (fun () ->
      let g = { g_name = name; g_v = Atomic.make 0 } in
      (G g, g))
    (function G g -> Some g | _ -> None)

let histogram name =
  get_or_create name
    (fun () ->
      let h =
        { h_name = name;
          h_buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0;
          h_min = Atomic.make max_int;
          h_max = Atomic.make 0 }
      in
      (H h, h))
    (function H h -> Some h | _ -> None)

let sketch name =
  get_or_create name
    (fun () ->
      let q =
        { q_name = name;
          q_window = Array.init nbuckets (fun _ -> Atomic.make 0);
          q_wcount = Atomic.make 0;
          q_wmax = Atomic.make 0;
          q_count = Atomic.make 0;
          q_sum = Atomic.make 0 }
      in
      (Q q, q))
    (function Q q -> Some q | _ -> None)

let incr c = ignore (Atomic.fetch_and_add c.c_v 1)

let add c n = ignore (Atomic.fetch_and_add c.c_v n)

let counter_value c = Atomic.get c.c_v

let set g v = Atomic.set g.g_v v

let gauge_value g = Atomic.get g.g_v

let bucket_of v =
  if v <= 0 then 0
  else
    let rec go i v = if v <= 1 then i else go (i + 1) (v lsr 1) in
    min (nbuckets - 1) (go 0 v)

(* Racy-but-convergent min/max: a lost CAS retries against the fresher
   bound, so the final value is exact once writers quiesce. *)
let rec update_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then update_min a v

let rec update_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then update_max a v

let observe h v =
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add h.h_count 1);
  ignore (Atomic.fetch_and_add h.h_sum v);
  update_min h.h_min v;
  update_max h.h_max v

let sk_observe q v =
  let v = max 0 v in
  ignore (Atomic.fetch_and_add q.q_window.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add q.q_wcount 1);
  update_max q.q_wmax v;
  ignore (Atomic.fetch_and_add q.q_count 1);
  ignore (Atomic.fetch_and_add q.q_sum v)

let sk_rotate q =
  Array.iter (fun b -> Atomic.set b 0) q.q_window;
  Atomic.set q.q_wcount 0;
  Atomic.set q.q_wmax 0

let sk_merge_into ~into src =
  Array.iteri
    (fun i b ->
      let n = Atomic.get b in
      if n > 0 then ignore (Atomic.fetch_and_add into.q_window.(i) n))
    src.q_window;
  ignore (Atomic.fetch_and_add into.q_wcount (Atomic.get src.q_wcount));
  update_max into.q_wmax (Atomic.get src.q_wmax);
  ignore (Atomic.fetch_and_add into.q_count (Atomic.get src.q_count));
  ignore (Atomic.fetch_and_add into.q_sum (Atomic.get src.q_sum))

type quantiles = {
  qs_count : int;
  qs_p50 : int;
  qs_p90 : int;
  qs_p99 : int;
  qs_max : int;
}

(* One coherent pass over a point-in-time copy of the window.  A
   quantile estimate is the upper bound of the bucket holding the
   ceil(q * count)-th sample (bucket i covers [2^i, 2^(i+1)), bucket 0
   covers 0..1), clamped to the exact window max — which both tightens
   the top bucket and makes p50 <= p90 <= p99 <= max hold by
   construction. *)
let sk_quantiles q =
  let window = Array.map Atomic.get q.q_window in
  let total = Array.fold_left ( + ) 0 window in
  let wmax = Atomic.get q.q_wmax in
  if total = 0 then { qs_count = 0; qs_p50 = 0; qs_p90 = 0; qs_p99 = 0; qs_max = 0 }
  else begin
    let at quantile =
      let rank = max 1 (int_of_float (ceil (quantile *. float_of_int total))) in
      let rec walk i cum =
        if i >= nbuckets then wmax
        else
          let cum = cum + window.(i) in
          if cum >= rank then
            let upper = if i = 0 then 1 else (1 lsl (i + 1)) - 1 in
            min upper wmax
          else walk (i + 1) cum
      in
      walk 0 0
    in
    { qs_count = total;
      qs_p50 = at 0.50;
      qs_p90 = at 0.90;
      qs_p99 = at 0.99;
      qs_max = wmax }
  end

type histogram_snapshot = {
  hs_count : int;
  hs_sum : int;
  hs_min : int;   (* 0 when empty *)
  hs_max : int;
  hs_mean : float;
}

let snapshot h =
  let count = Atomic.get h.h_count in
  let sum = Atomic.get h.h_sum in
  { hs_count = count;
    hs_sum = sum;
    hs_min = (if count = 0 then 0 else Atomic.get h.h_min);
    hs_max = Atomic.get h.h_max;
    hs_mean = (if count = 0 then 0.0 else float_of_int sum /. float_of_int count) }

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | C c -> Atomic.set c.c_v 0
          | G g -> Atomic.set g.g_v 0
          | H h ->
            Array.iter (fun b -> Atomic.set b 0) h.h_buckets;
            Atomic.set h.h_count 0;
            Atomic.set h.h_sum 0;
            Atomic.set h.h_min max_int;
            Atomic.set h.h_max 0
          | Q q ->
            Array.iter (fun b -> Atomic.set b 0) q.q_window;
            Atomic.set q.q_wcount 0;
            Atomic.set q.q_wmax 0;
            Atomic.set q.q_count 0;
            Atomic.set q.q_sum 0)
        registry)

let clear () = with_registry (fun () -> Hashtbl.reset registry)

let sorted_metrics () =
  let all = with_registry (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry []) in
  let name = function
    | C c -> c.c_name
    | G g -> g.g_name
    | H h -> h.h_name
    | Q q -> q.q_name
  in
  List.sort (fun a b -> String.compare (name a) (name b)) all

let find name = with_registry (fun () -> Hashtbl.find_opt registry name)

let counter_value_opt name =
  match find name with Some (C c) -> Some (counter_value c) | _ -> None

(* ------------------------------------------------------------------ *)
(* Renderers *)

let render_text () =
  let b = Buffer.create 256 in
  List.iter
    (fun m ->
      match m with
      | C c -> Buffer.add_string b (Printf.sprintf "%-32s %d\n" c.c_name (counter_value c))
      | G g -> Buffer.add_string b (Printf.sprintf "%-32s %d\n" g.g_name (gauge_value g))
      | H h ->
        let s = snapshot h in
        Buffer.add_string b
          (Printf.sprintf "%-32s count=%d sum=%d min=%d max=%d mean=%.1f\n"
             h.h_name s.hs_count s.hs_sum s.hs_min s.hs_max s.hs_mean)
      | Q q ->
        let s = sk_quantiles q in
        Buffer.add_string b
          (Printf.sprintf "%-32s count=%d p50=%d p90=%d p99=%d max=%d total=%d\n"
             q.q_name s.qs_count s.qs_p50 s.qs_p90 s.qs_p99 s.qs_max
             (Atomic.get q.q_count)))
    (sorted_metrics ());
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_json () =
  let row m =
    match m with
    | C c ->
      Printf.sprintf "{\"name\":\"%s\",\"kind\":\"counter\",\"value\":%d}"
        (json_escape c.c_name) (counter_value c)
    | G g ->
      Printf.sprintf "{\"name\":\"%s\",\"kind\":\"gauge\",\"value\":%d}"
        (json_escape g.g_name) (gauge_value g)
    | H h ->
      let s = snapshot h in
      Printf.sprintf
        "{\"name\":\"%s\",\"kind\":\"histogram\",\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"mean\":%.3f}"
        (json_escape h.h_name) s.hs_count s.hs_sum s.hs_min s.hs_max s.hs_mean
    | Q q ->
      let s = sk_quantiles q in
      Printf.sprintf
        "{\"name\":\"%s\",\"kind\":\"sketch\",\"count\":%d,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"max\":%d,\"total\":%d}"
        (json_escape q.q_name) s.qs_count s.qs_p50 s.qs_p90 s.qs_p99 s.qs_max
        (Atomic.get q.q_count)
  in
  "[" ^ String.concat "," (List.map row (sorted_metrics ())) ^ "]"

(* ------------------------------------------------------------------ *)
(* Clock shared with the pool and the profiler. *)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
