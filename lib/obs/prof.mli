(** Loop-level profiler: per-flowchart-node execution counts and
    cumulative nanoseconds, mapped back to source via {!Ps_lang.Loc}.

    Callers are expected to guard the clock reads on {!enabled} — one
    atomic load — so a disabled profiler adds no timing overhead. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Enabling also {!reset}s registered sites. *)

val reset : unit -> unit

type site

val register : ?loc:Ps_lang.Loc.span -> kind:string -> string -> site
(** One site per flowchart node; call once at compile time. *)

val hit : site -> ns:int -> unit
(** Record one execution taking [ns] nanoseconds (lock-free). *)

type row = {
  r_kind : string;
  r_name : string;
  r_loc : string option;
  r_count : int;
  r_ns : int;
}

val rows : unit -> row list
(** Sites with at least one hit, hottest (most cumulative ns) first. *)

val render_table : ?limit:int -> unit -> string
(** Text table of the top [limit] (default 10) rows. *)
