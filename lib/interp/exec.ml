(* Flowchart execution.

   The scheduler's flowchart is compiled into nested closures: iterative
   (DO) loops run on the calling domain in index order; parallel (DOALL)
   loops are handed to the domain pool, chunked, with a private frame per
   chunk.  The outermost DOALL of a nest is parallelized; when the
   [Collapse] pass has marked a perfect DOALL band the whole band is
   flattened into one combined iteration space first (see
   [compile_parallel_band]), otherwise inner DOALLs run sequentially
   inside each worker.

   Compilation of each top-level component is deferred until the moment
   it executes, so arrays whose bounds depend on computed scalar locals
   allocate only after those scalars exist — the topological component
   order produced by the scheduler (with the bound edges of §3.1)
   guarantees this is sound. *)

open Ps_sem
open Value
module Trace = Ps_obs.Trace
module Prof = Ps_obs.Prof

exception Runtime_error = Eval.Runtime_error

let fail fmt = Fmt.kstr (fun m -> raise (Runtime_error m)) fmt

(* The transformation passes the run was asked for.  Callee modules are
   scheduled under the same passes as the caller, and the schedule memo
   below is keyed by this fingerprint — two runs of one process with
   different flags must never share a schedule (the flowchart and the
   storage windows both depend on the passes). *)
type sched_flags = {
  sf_sink : bool;
  sf_fuse : bool;
  sf_trim : bool;
  sf_collapse : bool;
}

let no_sched_flags =
  { sf_sink = false; sf_fuse = false; sf_trim = false; sf_collapse = false }

let flags_fingerprint f =
  let b c v = if v then c else '-' in
  let s = Bytes.create 4 in
  Bytes.set s 0 (b 's' f.sf_sink);
  Bytes.set s 1 (b 'f' f.sf_fuse);
  Bytes.set s 2 (b 't' f.sf_trim);
  Bytes.set s 3 (b 'c' f.sf_collapse);
  Bytes.to_string s

type opts = {
  pool : Ps_runtime.Pool.t option;  (* None: fully sequential *)
  check : bool;                     (* subscript bounds checking *)
  use_windows : bool;               (* honor virtual-dimension windows *)
  min_par : int;                    (* smallest trip count worth forking *)
  collect_stats : bool;             (* count equation evaluations *)
  sched_flags : sched_flags;        (* passes applied to callee schedules *)
  policy : Ps_sched.Policy.table option;  (* per-nest schedule shapes *)
}

let default_opts =
  { pool = None; check = true; use_windows = true; min_par = 4;
    collect_stats = false; sched_flags = no_sched_flags; policy = None }

type run_result = {
  outputs : (string * value) list;
  allocated : (string * int) list;  (* words allocated per data item *)
  evaluations : int option;         (* equation evaluations, if counted *)
}

(* ------------------------------------------------------------------ *)

type state = {
  st_prog : Elab.eprogram;
  st_em : Elab.emodule;
  st_opts : opts;
  st_windows : Ps_sched.Schedule.window list;
  st_slabs : (string, slab) Hashtbl.t;
  st_evals : int Atomic.t;
  st_policy : (Ps_sched.Flowchart.loop * Ps_sched.Policy.decision) list;
      (* The run's policy resolved against this flowchart's own loop
         records: decisions are looked up by physical identity while
         compiling, so key matching happens once per run, not per nest. *)
  st_keys : (Ps_sched.Flowchart.loop * string) list;
      (* Fork-candidate keys (only filled while profiling): loop prof
         sites are named by policy key so the tuner can attribute a
         measured time to the nest it is deciding. *)
}

let decision_of st (l : Ps_sched.Flowchart.loop) =
  List.find_map
    (fun (m, d) -> if m == l then Some d else None)
    st.st_policy

let par_allowed st l =
  match decision_of st l with
  | Some d -> d.Ps_sched.Policy.d_par
  | None -> true

(* The pool deal for one nest: [parallel_for] with the decision's
   steal/chunk/wake overrides, or the pool defaults when the nest has no
   policy entry. *)
let policy_for st (l : Ps_sched.Flowchart.loop) =
  match decision_of st l with
  | None ->
    fun pool ~lo ~hi body -> Ps_runtime.Pool.parallel_for pool ~lo ~hi body
  | Some d ->
    fun pool ~lo ~hi body ->
      Ps_runtime.Pool.parallel_for ?chunk:d.Ps_sched.Policy.d_chunk_min
        ~steal:d.Ps_sched.Policy.d_steal
        ?chunk_max:d.Ps_sched.Policy.d_chunk_max ?wake:d.Ps_sched.Policy.d_wake
        pool ~lo ~hi body

(* ------------------------------------------------------------------ *)
(* The schedule memo.

   Scheduling is pure and deterministic, so a module called many times
   (or run many times by a resident process such as `psc serve`) pays
   the Schedule-Graph cost once.  The memo is process-wide and
   content-addressed: the key is the module's *text* digest plus the
   pass fingerprint, never the module name alone — the same name can
   denote different modules across projects, and the same module
   schedules differently under different passes (`--collapse` marks
   bands, `--sink` changes the storage windows).  A mutex guards the
   table because module calls can occur inside DOALL bodies running on
   pool domains. *)

type cached_sched = {
  cs_flowchart : Ps_sched.Flowchart.t;
  cs_windows : Ps_sched.Schedule.window list;
}

let sched_memo : (string, cached_sched) Hashtbl.t = Hashtbl.create 16

let sched_memo_mutex = Mutex.create ()

let sched_memo_hits = Atomic.make 0

let sched_key (em : Elab.emodule) (f : sched_flags) =
  let text = Ps_lang.Pretty.module_to_string em.Elab.em_ast in
  Printf.sprintf "%s:%s:%s" em.Elab.em_name
    (Digest.to_hex (Digest.string text))
    (flags_fingerprint f)

(* Mirror of [Psc.schedule]'s pass composition, for callee modules. *)
let schedule_with_flags (em : Elab.emodule) (f : sched_flags) : cached_sched =
  let r = Ps_sched.Schedule.schedule em in
  let fc, windows =
    if f.sf_sink then
      let s = Ps_sched.Sink.apply em r in
      (s.Ps_sched.Sink.s_flowchart, s.Ps_sched.Sink.s_windows)
    else (r.Ps_sched.Schedule.r_flowchart, r.Ps_sched.Schedule.r_windows)
  in
  let fc, _ =
    if f.sf_fuse then Ps_sched.Fuse.apply em r.Ps_sched.Schedule.r_graph fc
    else (fc, 0)
  in
  let fc, _ = if f.sf_trim then Ps_sched.Trim.apply em fc else (fc, 0) in
  let fc = if f.sf_collapse then Ps_sched.Collapse.mark fc else fc in
  { cs_flowchart = fc; cs_windows = windows }

let memo_sched (em : Elab.emodule) (f : sched_flags) : cached_sched =
  let key = sched_key em f in
  Mutex.lock sched_memo_mutex;
  match Hashtbl.find_opt sched_memo key with
  | Some cs ->
    Atomic.incr sched_memo_hits;
    Mutex.unlock sched_memo_mutex;
    cs
  | None ->
    Mutex.unlock sched_memo_mutex;
    (* Schedule outside the lock: scheduling may be slow, and a racing
       duplicate insert is harmless (both computed the same value). *)
    let cs = schedule_with_flags em f in
    Mutex.lock sched_memo_mutex;
    if not (Hashtbl.mem sched_memo key) then Hashtbl.add sched_memo key cs;
    Mutex.unlock sched_memo_mutex;
    cs

let sched_cache_stats () =
  Mutex.lock sched_memo_mutex;
  let n = Hashtbl.length sched_memo in
  Mutex.unlock sched_memo_mutex;
  (n, Atomic.get sched_memo_hits)

let sched_cache_clear () =
  Mutex.lock sched_memo_mutex;
  Hashtbl.reset sched_memo;
  Atomic.set sched_memo_hits 0;
  Mutex.unlock sched_memo_mutex

let window_of st name dim =
  if not st.st_opts.use_windows then None
  else
    List.find_map
      (fun (w : Ps_sched.Schedule.window) ->
        if String.equal w.Ps_sched.Schedule.w_data name && w.Ps_sched.Schedule.w_dim = dim
        then Some w.Ps_sched.Schedule.w_size
        else None)
      st.st_windows

let rec slab_of st name : slab =
  match Hashtbl.find_opt st.st_slabs name with
  | Some s -> s
  | None ->
    let data =
      match Elab.find_data st.st_em name with
      | Some d -> d
      | None -> fail "unknown data item %s" name
    in
    let dims = Stypes.dims data.Elab.d_ty in
    let elem = Stypes.elem_ty data.Elab.d_ty in
    let ectx = eval_ctx st (fun _ -> None) in
    let dim_specs =
      List.mapi
        (fun p (sr : Stypes.subrange) ->
          let lo = Eval.eval_int ectx sr.Stypes.sr_lo in
          let hi = Eval.eval_int ectx sr.Stypes.sr_hi in
          let extent = hi - lo + 1 in
          if extent < 0 then
            fail "dimension %d of %s has negative extent (%d..%d)" (p + 1) name lo hi;
          let window =
            match window_of st name p with
            | Some w -> min w extent
            | None -> extent
          in
          (lo, extent, window))
        dims
    in
    let s = make_slab ~name ~elem ~dims:dim_specs in
    Hashtbl.add st.st_slabs name s;
    s

and eval_ctx st index : Eval.ctx =
  { Eval.c_em = st.st_em;
    c_slab = slab_of st;
    c_index = index;
    c_call = call st;
    c_check = st.st_opts.check }

and call st fname (args : value list) : value list =
  match Elab.find_module st.st_prog fname with
  | None -> fail "call to unknown module %s" fname
  | Some callee ->
    let sched = memo_sched callee st.st_opts.sched_flags in
    let inputs =
      try
        List.map2
          (fun (d : Elab.data) v -> (d.Elab.d_name, v))
          callee.Elab.em_params args
      with Invalid_argument _ ->
        fail "call to %s: expected %d arguments, got %d" fname
          (List.length callee.Elab.em_params)
          (List.length args)
    in
    (* Nested module bodies run sequentially: the caller may already be
       inside a parallel region. *)
    (* Callees run sequentially inside the caller's iterations; a policy
       is resolved against the caller's flowchart and does not follow. *)
    let opts = { st.st_opts with pool = None; policy = None } in
    let r =
      run_flowchart ~opts ~prog:st.st_prog callee
        ~flowchart:sched.cs_flowchart ~windows:sched.cs_windows ~inputs
    in
    List.map snd r.outputs

(* ------------------------------------------------------------------ *)
(* Input seeding *)

and seed_inputs st (inputs : (string * value) list) =
  (* Scalars first: array extents may depend on them. *)
  let scalar_first =
    List.stable_sort
      (fun (_, a) (_, b) ->
        match a, b with
        | Vscalar _, Varray _ -> -1
        | Varray _, Vscalar _ -> 1
        | _ -> 0)
      inputs
  in
  List.iter
    (fun (name, v) ->
      let data =
        match Elab.find_data st.st_em name with
        | Some d when d.Elab.d_kind = Elab.Input -> d
        | Some _ -> fail "%s is not an input parameter" name
        | None -> fail "unknown input %s" name
      in
      match v with
      | Vscalar sc ->
        let s =
          make_slab ~name ~elem:data.Elab.d_ty ~dims:[]
        in
        set_scalar s [||] sc;
        Hashtbl.replace st.st_slabs name s
      | Varray given ->
        (* Validate shape against the declared dimensions. *)
        let dims = Stypes.dims data.Elab.d_ty in
        if List.length dims <> ndims given then
          fail "input %s: expected %d dimensions, got %d" name (List.length dims)
            (ndims given);
        let ectx = eval_ctx st (fun _ -> None) in
        List.iteri
          (fun p (sr : Stypes.subrange) ->
            let lo = Eval.eval_int ectx sr.Stypes.sr_lo in
            let hi = Eval.eval_int ectx sr.Stypes.sr_hi in
            let di = given.s_dims.(p) in
            if di.di_lo <> lo || di.di_extent <> hi - lo + 1 then
              fail "input %s: dimension %d is %d..%d but %d..%d was declared"
                name (p + 1) di.di_lo
                (di.di_lo + di.di_extent - 1)
                lo hi)
          dims;
        Hashtbl.replace st.st_slabs name { given with s_name = name })
    scalar_first;
  (* Every parameter must be supplied. *)
  List.iter
    (fun (d : Elab.data) ->
      if not (Hashtbl.mem st.st_slabs d.Elab.d_name) then
        fail "missing input %s" d.Elab.d_name)
    st.st_em.Elab.em_params

(* ------------------------------------------------------------------ *)
(* Descriptor compilation *)

and compile_descs st (benv : (string * int) list) ~par (descs : Ps_sched.Flowchart.t)
    ~(max_slot : int ref) : Compile.frame -> unit =
  let fns = Array.of_list (List.map (compile_desc st benv ~par ~max_slot) descs) in
  fun fr -> Array.iter (fun f -> f fr) fns

and compile_desc st benv ~par ~max_slot (d : Ps_sched.Flowchart.descriptor) :
    Compile.frame -> unit =
  match d with
  | Ps_sched.Flowchart.D_data name ->
    (* Ensure allocation at the scheduled point. *)
    fun _ -> ignore (slab_of st name)
  | Ps_sched.Flowchart.D_eq { er_id; er_aliases } ->
    let w = compile_equation st benv ~aliases:er_aliases er_id in
    let w =
      (* Profiler sites are created at compile time (once per node) so
         the execution wrapper is just clock-read + two atomic adds; a
         disabled profiler leaves the closure untouched. *)
      if Prof.enabled () then begin
        let q = Elab.eq_exn st.st_em er_id in
        let site = Prof.register ~kind:"eq" ~loc:q.Elab.q_loc q.Elab.q_name in
        fun fr ->
          let t0 = Ps_obs.Metrics.now_ns () in
          w fr;
          Prof.hit site ~ns:(Ps_obs.Metrics.now_ns () - t0)
      end
      else w
    in
    if st.st_opts.collect_stats then (
      let c = st.st_evals in
      fun fr ->
        Atomic.incr c;
        w fr)
    else w
  | Ps_sched.Flowchart.D_solve s ->
    (* A solved subscript: compute the index value from the enclosing
       loop variables; run the body only when it lands in range. *)
    let slot = List.length benv in
    if slot + 1 > !max_slot then max_slot := slot + 1;
    let cctx = compile_ctx st benv in
    let rhs_f = Compile.compile_int cctx s.Ps_sched.Flowchart.sv_rhs in
    let lo_f = Compile.compile_int cctx s.Ps_sched.Flowchart.sv_range.Stypes.sr_lo in
    let hi_f = Compile.compile_int cctx s.Ps_sched.Flowchart.sv_range.Stypes.sr_hi in
    let benv' = (s.Ps_sched.Flowchart.sv_var, slot) :: benv in
    let body = compile_descs st benv' ~par ~max_slot s.Ps_sched.Flowchart.sv_body in
    fun fr ->
      let v = rhs_f fr in
      if v >= lo_f fr && v <= hi_f fr then begin
        fr.(slot) <- v;
        body fr
      end
  | Ps_sched.Flowchart.D_loop l ->
    let slot = List.length benv in
    if slot + 1 > !max_slot then max_slot := slot + 1;
    let cctx = compile_ctx st benv in
    let lo_f = Compile.compile_int cctx l.Ps_sched.Flowchart.lp_range.Stypes.sr_lo in
    let hi_f = Compile.compile_int cctx l.Ps_sched.Flowchart.lp_range.Stypes.sr_hi in
    let benv' = (l.Ps_sched.Flowchart.lp_var, slot) :: benv in
    let f =
      match l.Ps_sched.Flowchart.lp_kind with
      | Ps_sched.Flowchart.Iterative ->
        let body = compile_descs st benv' ~par ~max_slot l.Ps_sched.Flowchart.lp_body in
        fun fr ->
          let lo = lo_f fr and hi = hi_f fr in
          for v = lo to hi do
            fr.(slot) <- v;
            body fr
          done
      | Ps_sched.Flowchart.Parallel -> (
        match st.st_opts.pool with
        | Some pool when par && par_allowed st l ->
          compile_parallel_band st benv ~max_slot pool l
        | _ ->
          (* A policy that pins this nest sequential pins the whole nest:
             inner parallel loops carry no key of their own (they were
             supposed to run inside the workers), so letting them fork
             here would make "seq" undecidable for the table. *)
          let par = par && par_allowed st l in
          let body = compile_descs st benv' ~par ~max_slot l.Ps_sched.Flowchart.lp_body in
          fun fr ->
            let lo = lo_f fr and hi = hi_f fr in
            for v = lo to hi do
              fr.(slot) <- v;
              body fr
            done)
      | Ps_sched.Flowchart.Grouped g ->
        compile_grouped st benv' ~par ~max_slot ~slot ~lo_f ~hi_f l (fun _ -> g)
      | Ps_sched.Flowchart.Inspected e ->
        (* Inspector/executor: evaluate the dependence distance at loop
           entry (the form only mentions scalar inputs, all in scope
           here); a non-positive distance means the partition premise is
           false and the schedule cannot run this instance. *)
        let d_f = Compile.compile_int cctx e in
        let pe = Ps_lang.Pretty.expr_to_string e in
        compile_grouped st benv' ~par ~max_slot ~slot ~lo_f ~hi_f l (fun fr ->
            let d = d_f fr in
            if d < 1 then
              fail "inspector for loop %s: dependence distance %s = %d is not \
                    positive"
                l.Ps_sched.Flowchart.lp_var pe d;
            d)
    in
    profile_loop st l f

(* Group-partitioned execution: the residue classes mod [g] (a static
   modulus for DOGROUP, the inspected runtime distance for DOINSPECT)
   are mutually independent — a DOALL over the classes, ascending index
   order within each.  Sequential execution keeps plain ascending order:
   every element is written exactly once, so any dependence-respecting
   order computes identical bits, and the inspection still runs. *)
and compile_grouped st benv' ~par ~max_slot ~slot ~lo_f ~hi_f
    (l : Ps_sched.Flowchart.loop) (g_f : Compile.frame -> int) :
    Compile.frame -> unit =
  match st.st_opts.pool with
  | Some pool when par && par_allowed st l ->
    let body =
      compile_descs st benv' ~par:false ~max_slot l.Ps_sched.Flowchart.lp_body
    in
    let min_par = st.st_opts.min_par in
    let pfor = policy_for st l in
    fun fr ->
      let g = g_f fr in
      let lo = lo_f fr and hi = hi_f fr in
      if hi - lo + 1 < min_par || g < 2 then
        for v = lo to hi do
          fr.(slot) <- v;
          body fr
        done
      else
        pfor pool ~lo:0 ~hi:(g - 1) (fun clo chi ->
            let fr' = Array.copy fr in
            for r = clo to chi do
              let v = ref (lo + r) in
              while !v <= hi do
                fr'.(slot) <- !v;
                body fr';
                v := !v + g
              done
            done)
  | _ ->
    let par = par && par_allowed st l in
    let body =
      compile_descs st benv' ~par ~max_slot l.Ps_sched.Flowchart.lp_body
    in
    fun fr ->
      ignore (g_f fr : int);
      let lo = lo_f fr and hi = hi_f fr in
      for v = lo to hi do
        fr.(slot) <- v;
        body fr
      done

(* Loop-level profiling: a site per compiled loop node (inclusive time,
   so a hot inner equation also surfaces through its enclosing DOALL),
   named after the loop header and anchored at the first equation the
   loop body schedules. *)
and first_eq_loc st (descs : Ps_sched.Flowchart.t) : Ps_lang.Loc.span option =
  List.find_map
    (fun d ->
      match d with
      | Ps_sched.Flowchart.D_eq { er_id; _ } ->
        Some (Elab.eq_exn st.st_em er_id).Elab.q_loc
      | Ps_sched.Flowchart.D_loop l -> first_eq_loc st l.Ps_sched.Flowchart.lp_body
      | Ps_sched.Flowchart.D_solve s -> first_eq_loc st s.Ps_sched.Flowchart.sv_body
      | Ps_sched.Flowchart.D_data _ -> None)
    descs

and profile_loop st (l : Ps_sched.Flowchart.loop) (f : Compile.frame -> unit) :
    Compile.frame -> unit =
  if not (Prof.enabled ()) then f
  else begin
    (* Fork candidates are named by their policy key ("DOALL K.I"), so
       the tuner can attribute a measured inclusive time to the nest it
       is deciding; other loops keep their own variable. *)
    let name =
      Ps_sched.Flowchart.kind_name l.Ps_sched.Flowchart.lp_kind
      ^ " "
      ^
      match
        List.find_map
          (fun (m, k) -> if m == l then Some k else None)
          st.st_keys
      with
      | Some key -> key
      | None -> l.Ps_sched.Flowchart.lp_var
    in
    let site =
      Prof.register
        ?loc:(first_eq_loc st l.Ps_sched.Flowchart.lp_body)
        ~kind:"loop" name
    in
    fun fr ->
      let t0 = Ps_obs.Metrics.now_ns () in
      f fr;
      Prof.hit site ~ns:(Ps_obs.Metrics.now_ns () - t0)
  end

(* Parallel execution of a DOALL, possibly as the head of a collapsed
   band.  [Collapse] marks perfect DOALL pairs; this backend flattens as
   much of the marked chain as the bound shapes allow:

   - a *rectangular* prefix (no inner bound mentions a band variable)
     becomes one product space decoded by div/mod once per chunk and
     walked like an odometer;
   - when only the head is rectangular, a depth-2 *triangular* band
     (inner bounds depending on the head variable — the wavefront shape)
     is flattened through per-row prefix sums built once per epoch, with
     chunk starts located by binary search.

   Either way the decode cost is per *chunk*, not per point; inside a
   chunk the band variables advance incrementally exactly as the nested
   loops would.  Whatever is not flattened (deeper chain members, the
   real body) compiles sequentially inside.

   The fork heuristic compares [min_par] against the *total* point count
   of the band: exact for a flattened band, and estimated (inner extents
   sampled at the first row) for an unmarked structural nest, so a
   [DOALL I(3) (DOALL J(10^6))] still forks even when collapsing is off. *)

and compile_parallel_band st benv ~max_slot pool (l : Ps_sched.Flowchart.loop) :
    Compile.frame -> unit =
  let open Ps_sched.Flowchart in
  let min_par = st.st_opts.min_par in
  let pfor = policy_for st l in
  (* A policy decision at the head governs the whole band: whether the
     marked chain may flatten at all, and the shape of the deal. *)
  let allow_collapse =
    match decision_of st l with
    | Some d -> d.Ps_sched.Policy.d_collapse
    | None -> true
  in
  (* The chain of perfectly nested DOALLs headed at [l]: loops marked by
     [Collapse] when [marked], any perfect DOALL nesting otherwise (used
     only to estimate the band's point count). *)
  let rec chain ~marked (l : loop) =
    match l.lp_body with
    | [ D_loop inner ]
      when inner.lp_kind = Parallel && ((not marked) || l.lp_collapse) ->
      l :: chain ~marked inner
    | _ -> [ l ]
  in
  (* Compile each band loop's bounds with the previous band variables in
     scope; returns (slot, lo_f, hi_f) outermost first plus the extended
     environment for the innermost body. *)
  let compile_bounds benv loops =
    let rec go benv acc = function
      | [] -> (List.rev acc, benv)
      | (bl : loop) :: rest ->
        let s = List.length benv in
        if s + 1 > !max_slot then max_slot := s + 1;
        let cctx = compile_ctx st benv in
        let lo_f = Compile.compile_int cctx bl.lp_range.Stypes.sr_lo in
        let hi_f = Compile.compile_int cctx bl.lp_range.Stypes.sr_hi in
        go ((bl.lp_var, s) :: benv) ((s, lo_f, hi_f) :: acc) rest
    in
    go benv [] loops
  in
  let range_uses vars (r : Stypes.subrange) =
    let fv =
      Ps_lang.Ast.free_vars r.Stypes.sr_lo @ Ps_lang.Ast.free_vars r.Stypes.sr_hi
    in
    List.exists (fun v -> List.mem v vars) fv
  in
  (* Longest prefix of [rest] whose bounds mention no band variable. *)
  let rec rect_prefix vars = function
    | (bl : loop) :: rest when not (range_uses vars bl.lp_range) ->
      bl :: rect_prefix (bl.lp_var :: vars) rest
    | _ -> []
  in
  let marked = if allow_collapse then chain ~marked:true l else [ l ] in
  let band =
    match marked with
    | [] | [ _ ] -> `Single
    | l0 :: rest -> (
      match rect_prefix [ l0.lp_var ] rest with
      | _ :: _ as tail -> `Rect (l0 :: tail)
      | [] -> `Tri (l0, List.hd rest))
  in
  match band with
  | `Single ->
    let slot = List.length benv in
    if slot + 1 > !max_slot then max_slot := slot + 1;
    let cctx = compile_ctx st benv in
    let lo_f = Compile.compile_int cctx l.lp_range.Stypes.sr_lo in
    let hi_f = Compile.compile_int cctx l.lp_range.Stypes.sr_hi in
    let benv' = (l.lp_var, slot) :: benv in
    let body = compile_descs st benv' ~par:false ~max_slot l.lp_body in
    (* Estimated band total for the fork decision: product of the
       structural nest's extents, inner bounds sampled at the first row
       (the band slots are scratch until the loop runs, so writing the
       sample values into the frame is harmless). *)
    let est_bounds, _ = compile_bounds benv (chain ~marked:false l) in
    let est_total fr =
      List.fold_left
        (fun total (s, lo_f, hi_f) ->
          if total = 0 then 0
          else begin
            let lo = lo_f fr and hi = hi_f fr in
            fr.(s) <- lo;
            total * max 0 (hi - lo + 1)
          end)
        1 est_bounds
    in
    fun fr ->
      let total = est_total fr in
      let lo = lo_f fr and hi = hi_f fr in
      if total < min_par then
        for v = lo to hi do
          fr.(slot) <- v;
          body fr
        done
      else
        pfor pool ~lo ~hi (fun clo chi ->
            let fr' = Array.copy fr in
            for v = clo to chi do
              fr'.(slot) <- v;
              body fr'
            done)
  | `Rect band ->
    let bounds, benv_band = compile_bounds benv band in
    let last = List.nth band (List.length band - 1) in
    let body = compile_descs st benv_band ~par:false ~max_slot last.lp_body in
    let bounds = Array.of_list bounds in
    let k = Array.length bounds in
    let slots = Array.map (fun (s, _, _) -> s) bounds in
    fun fr ->
      let los = Array.make k 0 and his = Array.make k 0 in
      let total = ref 1 in
      Array.iteri
        (fun i (_, lo_f, hi_f) ->
          let lo = lo_f fr and hi = hi_f fr in
          los.(i) <- lo;
          his.(i) <- hi;
          total := !total * max 0 (hi - lo + 1))
        bounds;
      let total = !total in
      if total > 0 then begin
        (* Run flattened points [g_lo..g_hi]: div/mod decode of the
           first point, then an odometer walk. *)
        let run fr g_lo g_hi =
          let g = ref g_lo in
          for i = k - 1 downto 0 do
            let e = his.(i) - los.(i) + 1 in
            fr.(slots.(i)) <- los.(i) + (!g mod e);
            g := !g / e
          done;
          for _ = g_lo to g_hi do
            body fr;
            let i = ref (k - 1) in
            let carrying = ref true in
            while !carrying && !i >= 0 do
              let s = slots.(!i) in
              let v = fr.(s) + 1 in
              if v > his.(!i) then begin
                fr.(s) <- los.(!i);
                decr i
              end
              else begin
                fr.(s) <- v;
                carrying := false
              end
            done
          done
        in
        if total < min_par then run fr 0 (total - 1)
        else
          pfor pool ~lo:0 ~hi:(total - 1) (fun g_lo g_hi ->
              let fr' = Array.copy fr in
              run fr' g_lo g_hi)
      end
  | `Tri (l0, l1) ->
    let bounds, benv_band = compile_bounds benv [ l0; l1 ] in
    let body = compile_descs st benv_band ~par:false ~max_slot l1.lp_body in
    let slot0, lo0_f, hi0_f = List.nth bounds 0 in
    let slot1, lo1_f, hi1_f = List.nth bounds 1 in
    fun fr ->
      let lo0 = lo0_f fr and hi0 = hi0_f fr in
      let n = hi0 - lo0 + 1 in
      if n > 0 then begin
        (* Row extents and their prefix sums: psum.(r) counts the points
           before row r, so psum.(n) is the band total. *)
        let row_lo = Array.make n 0 and row_hi = Array.make n 0 in
        let psum = Array.make (n + 1) 0 in
        for r = 0 to n - 1 do
          fr.(slot0) <- lo0 + r;
          let lo1 = lo1_f fr and hi1 = hi1_f fr in
          row_lo.(r) <- lo1;
          row_hi.(r) <- hi1;
          psum.(r + 1) <- psum.(r) + max 0 (hi1 - lo1 + 1)
        done;
        let total = psum.(n) in
        if total > 0 then begin
          let run fr g_lo g_hi =
            (* Largest row r with psum.(r) <= g_lo (empty rows at the
               boundary are skipped by taking the largest). *)
            let a = ref 0 and b = ref (n - 1) in
            while !a < !b do
              let m = (!a + !b + 1) / 2 in
              if psum.(m) <= g_lo then a := m else b := m - 1
            done;
            let r = ref !a in
            let v1 = ref (row_lo.(!r) + (g_lo - psum.(!r))) in
            let remaining = ref (g_hi - g_lo + 1) in
            while !remaining > 0 do
              fr.(slot0) <- lo0 + !r;
              fr.(slot1) <- !v1;
              body fr;
              decr remaining;
              if !remaining > 0 then begin
                incr v1;
                while !v1 > row_hi.(!r) do
                  (* remaining > 0 guarantees a later non-empty row. *)
                  incr r;
                  v1 := row_lo.(!r)
                done
              end
            done
          in
          if total < min_par then run fr 0 (total - 1)
          else
            pfor pool ~lo:0 ~hi:(total - 1) (fun g_lo g_hi ->
                let fr' = Array.copy fr in
                run fr' g_lo g_hi)
        end
      end

and compile_ctx st (benv : (string * int) list) : Compile.cctx =
  { Compile.k_em = st.st_em;
    k_slab = slab_of st;
    k_slot = (fun v -> List.assoc_opt v benv);
    k_call = call st;
    k_check = st.st_opts.check }

and compile_equation st benv ~aliases er_id : Compile.frame -> unit =
  let q = Elab.eq_exn st.st_em er_id in
  (* Resolve the frame slot of an equation index variable, following the
     scheduler's renamings. *)
  let slot_of v =
    let v' = match List.assoc_opt v aliases with Some l -> l | None -> v in
    match List.assoc_opt v' benv with
    | Some s -> Some s
    | None -> List.assoc_opt v benv
  in
  List.iter
    (fun (ix : Elab.index) ->
      if slot_of ix.Elab.ix_var = None then
        fail "%s: index %s is not bound by an enclosing loop" q.Elab.q_name
          ix.Elab.ix_var)
    q.Elab.q_indices;
  let cctx = { (compile_ctx st benv) with Compile.k_slot = slot_of } in
  let compile_subs (df : Elab.def) (s : slab) =
    Array.of_list
      (List.map
         (function
           | Elab.Sub_index ix ->
             let slot = Option.get (slot_of ix.Elab.ix_var) in
             fun (fr : Compile.frame) -> Array.unsafe_get fr slot
           | Elab.Sub_fixed e -> Compile.compile_int cctx e)
         df.Elab.df_subs)
    (* With [check = false] (the bench fast path) this closure computes
       offsets with no bounds test at all; window dimensions still wrap
       through the Euclidean remainder so an [I - c] subscript evaluated
       below the lower bound cannot address outside the slab. *)
    |> fun fns -> Compile.offset_closure ~check:st.st_opts.check s fns
  in
  match q.Elab.q_defs, q.Elab.q_rhs.Ps_lang.Ast.e with
  | [ df ], _
    when df.Elab.df_path <> []
         && List.length df.Elab.df_subs
            = List.length
                (Stypes.dims (Elab.data_exn st.st_em df.Elab.df_data).Elab.d_ty) ->
    (* Per-field record definition: read-modify-write the record box.
       Distinct fields of one element are written by distinct equations,
       which the scheduler orders sequentially, so there is no race. *)
    let s = slab_of st df.Elab.df_data in
    let off_f = compile_subs df s in
    let rhs = Compile.compile_scalar cctx q.Elab.q_rhs in
    let rec update fields path v =
      match path with
      | [] -> fail "empty field path"
      | [ f ] -> (f, v) :: List.remove_assoc f fields
      | f :: rest ->
        let sub =
          match List.assoc_opt f fields with
          | Some (Sc_record inner) -> inner
          | _ -> []
        in
        (f, Sc_record (update sub rest v)) :: List.remove_assoc f fields
    in
    (match s.s_data with
     | PBox arr ->
       fun fr ->
         let off = off_f fr in
         let current =
           match Array.unsafe_get arr off with
           | Brecord fields -> fields
           | Bnone -> []
         in
         Array.unsafe_set arr off
           (Brecord (update current df.Elab.df_path (rhs fr)))
     | _ -> fail "field definition on a non-record %s" df.Elab.df_data)
  | [ df ], _
    when List.length df.Elab.df_subs
         = List.length (Stypes.dims (Elab.data_exn st.st_em df.Elab.df_data).Elab.d_ty)
    -> (
    let s = slab_of st df.Elab.df_data in
    let off_f = compile_subs df s in
    match s.s_data with
    | PFloat a ->
      let rhs = Compile.compile_real cctx q.Elab.q_rhs in
      fun fr -> Array.unsafe_set a (off_f fr) (rhs fr)
    | PInt arr ->
      let rhs = Compile.compile_int cctx q.Elab.q_rhs in
      fun fr -> Array.unsafe_set arr (off_f fr) (rhs fr)
    | PBool b ->
      let rhs = Compile.compile_bool cctx q.Elab.q_rhs in
      fun fr ->
        Bytes.unsafe_set b (off_f fr) (if rhs fr then '\001' else '\000')
    | PBox arr ->
      let rhs = Compile.compile_scalar cctx q.Elab.q_rhs in
      fun fr ->
        (match rhs fr with
         | Sc_record fields -> Array.unsafe_set arr (off_f fr) (Brecord fields)
         | _ -> fail "record equation produced a non-record"))
  | defs, Ps_lang.Ast.Call (fname, args) ->
    (* Module call: multi-result, or whole-array assignment. *)
    let writers =
      List.map
        (fun (df : Elab.def) ->
          let s = slab_of st df.Elab.df_data in
          let off_f =
            if List.length df.Elab.df_subs = ndims s then Some (compile_subs df s)
            else None
          in
          (s, off_f))
        defs
    in
    fun fr ->
      let ectx =
        eval_ctx st (fun v ->
            match slot_of v with Some s -> Some fr.(s) | None -> None)
      in
      let vargs = List.map (Eval.eval ectx) args in
      let results = call st fname vargs in
      (try
         List.iter2
           (fun (s, off_f) v ->
             match v, off_f with
             | Vscalar sc, Some off_f -> (
               let off = off_f fr in
               match s.s_data, sc with
               | PFloat a, _ -> a.(off) <- as_float sc
               | PInt a, _ -> a.(off) <- as_int sc
               | PBool b, Sc_bool x -> Bytes.set b off (if x then '\001' else '\000')
               | PBox a, Sc_record fields -> a.(off) <- Brecord fields
               | _ -> fail "result kind mismatch writing %s" s.s_name)
             | Vscalar _, None -> fail "scalar result for array %s" s.s_name
             | Varray src, _ ->
               (* Whole-array result assigned to a whole-array LHS. *)
               copy_into ~src ~dst:s)
           writers results
       with Invalid_argument _ ->
         fail "module %s returned %d results for %d variables" fname
           (List.length results) (List.length writers))
  | _ ->
    fail "%s: equation defines several variables but is not a module call"
      q.Elab.q_name

(* [get_scalar]/[set_scalar] below reach [Value.offset] with no bounds
   check; both sides iterate the declared extents of [src], so every
   subscript is in declared range by construction (window dimensions map
   through the slab's window as usual). *)
and copy_into ~src ~dst =
  if ndims src <> ndims dst then fail "array shape mismatch writing %s" dst.s_name;
  let n = ndims src in
  let idx = Array.make n 0 in
  let rec fill p =
    if p = n then set_scalar dst idx (get_scalar src idx)
    else
      let di = src.s_dims.(p) in
      for v = di.di_lo to di.di_lo + di.di_extent - 1 do
        idx.(p) <- v;
        fill (p + 1)
      done
  in
  if n = 0 then set_scalar dst [||] (get_scalar src [||]) else fill 0

(* ------------------------------------------------------------------ *)

and run_flowchart ~opts ~prog (em : Elab.emodule)
    ~(flowchart : Ps_sched.Flowchart.t) ~(windows : Ps_sched.Schedule.window list)
    ~inputs : run_result =
  Trace.with_span ~args:[ ("module", em.Elab.em_name) ] "run" @@ fun () ->
  let st =
    { st_prog = prog;
      st_em = em;
      st_opts = opts;
      st_windows = windows;
      st_slabs = Hashtbl.create 16;
      st_evals = Atomic.make 0;
      st_policy =
        (match opts.policy with
        | Some t -> Ps_sched.Policy.resolve t flowchart
        | None -> []);
      st_keys =
        (if Prof.enabled () then Ps_sched.Policy.index flowchart else []) }
  in
  seed_inputs st inputs;
  (* Compile and execute each top-level descriptor in turn, so that data
     allocation happens after the scalars its bounds depend on. *)
  List.iter
    (fun d ->
      let max_slot = ref 0 in
      let f = compile_desc st [] ~par:true ~max_slot d in
      let frame = Array.make (max 1 !max_slot) 0 in
      f frame)
    flowchart;
  let outputs =
    List.map
      (fun (d : Elab.data) ->
        let s = slab_of st d.Elab.d_name in
        if ndims s = 0 then (d.Elab.d_name, Vscalar (get_scalar s [||]))
        else (d.Elab.d_name, Varray s))
      em.Elab.em_results
  in
  let allocated =
    Hashtbl.fold (fun name s acc -> (name, allocated_words s) :: acc) st.st_slabs []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { outputs;
    allocated;
    evaluations =
      (if opts.collect_stats then Some (Atomic.get st.st_evals) else None) }

(* Top-level entry point: schedule (if needed) and run. *)
let run ?(opts = default_opts) ?flowchart ?windows ~(prog : Elab.eprogram)
    (em : Elab.emodule) ~(inputs : (string * value) list) : run_result =
  match flowchart with
  | Some fc ->
    run_flowchart ~opts ~prog em ~flowchart:fc
      ~windows:(Option.value windows ~default:[])
      ~inputs
  | None ->
    let sched = Ps_sched.Schedule.schedule em in
    let windows = Option.value windows ~default:sched.Ps_sched.Schedule.r_windows in
    run_flowchart ~opts ~prog em ~flowchart:sched.Ps_sched.Schedule.r_flowchart
      ~windows ~inputs

(* Convenience input builders. *)

let scalar_int n = Vscalar (Sc_int n)

let scalar_real f = Vscalar (Sc_real f)

let scalar_bool b = Vscalar (Sc_bool b)

let array_real ~dims (f : int array -> float) : value =
  let slab =
    make_slab ~name:"<input>" ~elem:(Stypes.Scalar Stypes.Sreal)
      ~dims:(List.map (fun (lo, hi) -> (lo, hi - lo + 1, hi - lo + 1)) dims)
  in
  let n = List.length dims in
  let idx = Array.make n 0 in
  let rec fill p =
    if p = n then set_scalar slab idx (Sc_real (f idx))
    else
      let di = slab.s_dims.(p) in
      for v = di.di_lo to di.di_lo + di.di_extent - 1 do
        idx.(p) <- v;
        fill (p + 1)
      done
  in
  if n = 0 then set_scalar slab [||] (Sc_real (f [||])) else fill 0;
  Varray slab

let array_int ~dims (f : int array -> int) : value =
  let slab =
    make_slab ~name:"<input>" ~elem:(Stypes.Scalar Stypes.Sint)
      ~dims:(List.map (fun (lo, hi) -> (lo, hi - lo + 1, hi - lo + 1)) dims)
  in
  let n = List.length dims in
  let idx = Array.make n 0 in
  let rec fill p =
    if p = n then set_scalar slab idx (Sc_int (f idx))
    else
      let di = slab.s_dims.(p) in
      for v = di.di_lo to di.di_lo + di.di_extent - 1 do
        idx.(p) <- v;
        fill (p + 1)
      done
  in
  if n = 0 then set_scalar slab [||] (Sc_int (f [||])) else fill 0;
  Varray slab

(* Read a scalar out of an output array value. *)
let read_real v idx =
  match v with
  | Varray s -> as_float (get_scalar s idx)
  | Vscalar sc -> as_float sc

let read_int v idx =
  match v with
  | Varray s -> as_int (get_scalar s idx)
  | Vscalar sc -> as_int sc
