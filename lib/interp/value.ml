(* Runtime values and the array store.

   Arrays are flat, contiguous and unboxed (float array / int array /
   bytes), with one stride per dimension.  A *virtual* dimension (paper
   §3.4) is allocated as a window of [w] planes instead of its full
   extent; its index is mapped through [mod w].  The store keeps a
   per-slab count of allocated words so the space-reuse experiments can
   report exactly what the paper's §3.4 and §4 claim (window 2 vs. full
   maxK planes; 3·maxK·M vs. 2·M·M). *)

open Ps_sem

type elem_kind = KInt | KReal | KBool | KEnum of string

type payload =
  | PFloat of float array
  | PInt of int array
  | PBool of Bytes.t
  | PBox of box array  (* records and other boxed elements *)

and box =
  | Bnone
  | Brecord of (string * scalar) list

and scalar =
  | Sc_int of int
  | Sc_real of float
  | Sc_bool of bool
  | Sc_enum of string * int  (* enum type, ordinal *)
  | Sc_record of (string * scalar) list

type dim_info = {
  di_lo : int;       (* declared lower bound *)
  di_extent : int;   (* declared number of elements *)
  di_window : int;   (* allocated planes: = di_extent unless virtual *)
}

type slab = {
  s_name : string;
  s_kind : elem_kind;
  s_dims : dim_info array;
  s_strides : int array;  (* in elements, over allocated (window) sizes *)
  s_data : payload;
}

(* A general value: scalars, whole arrays (module arguments/results),
   records. *)
type value =
  | Vscalar of scalar
  | Varray of slab

let scalar_kind = function
  | Sc_int _ -> KInt
  | Sc_real _ -> KReal
  | Sc_bool _ -> KBool
  | Sc_enum (t, _) -> KEnum t
  | Sc_record _ -> KInt (* unused *)

let kind_of_ty (ty : Stypes.ty) : elem_kind =
  match ty with
  | Stypes.Scalar Stypes.Sint -> KInt
  | Stypes.Scalar Stypes.Sreal -> KReal
  | Stypes.Scalar Stypes.Sbool -> KBool
  | Stypes.Scalar (Stypes.Senum e) -> KEnum e
  | Stypes.Record _ | Stypes.Array _ -> KInt (* boxed separately *)

(* ------------------------------------------------------------------ *)
(* Slab construction *)

let alloc_payload kind boxed size =
  if boxed then PBox (Array.make size Bnone)
  else
    match kind with
    | KReal -> PFloat (Array.make size 0.0)
    | KInt | KEnum _ -> PInt (Array.make size 0)
    | KBool -> PBool (Bytes.make size '\000')

let make_slab ~name ~(elem : Stypes.ty) ~(dims : (int * int * int) list) : slab =
  (* dims: (lo, extent, window) per dimension *)
  let kind = kind_of_ty elem in
  let boxed = match elem with Stypes.Record _ -> true | _ -> false in
  let dim_infos =
    Array.of_list
      (List.map (fun (lo, extent, window) -> { di_lo = lo; di_extent = extent; di_window = window }) dims)
  in
  let n = Array.length dim_infos in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * dim_infos.(i + 1).di_window
  done;
  let size = if n = 0 then 1 else strides.(0) * dim_infos.(0).di_window in
  { s_name = name;
    s_kind = kind;
    s_dims = dim_infos;
    s_strides = strides;
    s_data = alloc_payload kind boxed size }

let allocated_words (s : slab) =
  match s.s_data with
  | PFloat a -> Array.length a
  | PInt a -> Array.length a
  | PBool b -> Bytes.length b
  | PBox a -> Array.length a

let ndims s = Array.length s.s_dims

(* Always-nonnegative (Euclidean) remainder.  OCaml's [mod] takes the
   sign of the dividend, so a negative relative index — an [I - c] read
   below the dimension's lower bound, reachable on the unchecked fast
   paths — would otherwise produce a negative plane offset and address
   outside the slab.  Window subscripts must always land inside the
   allocated window. *)
let wrap_window rel w =
  let r = rel mod w in
  if r < 0 then r + w else r

(* Flat offset of a subscript vector, mapping virtual dimensions through
   their window. *)
let offset (s : slab) (idx : int array) =
  let n = Array.length s.s_dims in
  let off = ref 0 in
  for p = 0 to n - 1 do
    let di = s.s_dims.(p) in
    let rel = idx.(p) - di.di_lo in
    let rel =
      if di.di_window = di.di_extent then rel else wrap_window rel di.di_window
    in
    off := !off + (rel * s.s_strides.(p))
  done;
  !off

exception Bounds of string

let check_bounds (s : slab) (idx : int array) =
  let n = Array.length s.s_dims in
  if Array.length idx <> n then
    raise (Bounds (Printf.sprintf "%s: %d subscripts for %d dimensions" s.s_name (Array.length idx) n));
  for p = 0 to n - 1 do
    let di = s.s_dims.(p) in
    if idx.(p) < di.di_lo || idx.(p) >= di.di_lo + di.di_extent then
      raise
        (Bounds
           (Printf.sprintf "%s: subscript %d = %d outside %d..%d" s.s_name (p + 1)
              idx.(p) di.di_lo (di.di_lo + di.di_extent - 1)))
  done

let get_float (s : slab) off =
  match s.s_data with
  | PFloat a -> Array.unsafe_get a off
  | PInt a -> float_of_int (Array.unsafe_get a off)
  | PBool _ | PBox _ -> invalid_arg "get_float"

let get_int (s : slab) off =
  match s.s_data with
  | PInt a -> Array.unsafe_get a off
  | PFloat a -> int_of_float (Array.unsafe_get a off)
  | PBool _ | PBox _ -> invalid_arg "get_int"

let get_bool (s : slab) off =
  match s.s_data with
  | PBool b -> Bytes.unsafe_get b off <> '\000'
  | PFloat _ | PInt _ | PBox _ -> invalid_arg "get_bool"

let set_float (s : slab) off v =
  match s.s_data with
  | PFloat a -> Array.unsafe_set a off v
  | PInt a -> Array.unsafe_set a off (int_of_float v)
  | PBool _ | PBox _ -> invalid_arg "set_float"

let set_int (s : slab) off v =
  match s.s_data with
  | PInt a -> Array.unsafe_set a off v
  | PFloat a -> Array.unsafe_set a off (float_of_int v)
  | PBool _ | PBox _ -> invalid_arg "set_int"

let set_bool (s : slab) off v =
  match s.s_data with
  | PBool b -> Bytes.unsafe_set b off (if v then '\001' else '\000')
  | PFloat _ | PInt _ | PBox _ -> invalid_arg "set_bool"

let get_scalar (s : slab) (idx : int array) : scalar =
  let off = offset s idx in
  match s.s_data, s.s_kind with
  | PFloat a, _ -> Sc_real a.(off)
  | PInt a, KEnum e -> Sc_enum (e, a.(off))
  | PInt a, _ -> Sc_int a.(off)
  | PBool b, _ -> Sc_bool (Bytes.get b off <> '\000')
  | PBox a, _ -> (
    match a.(off) with
    | Brecord fields -> Sc_record fields
    | Bnone -> Sc_record [])

let set_scalar (s : slab) (idx : int array) (v : scalar) =
  let off = offset s idx in
  match s.s_data, v with
  | PFloat a, Sc_real x -> a.(off) <- x
  | PFloat a, Sc_int x -> a.(off) <- float_of_int x
  | PInt a, Sc_int x -> a.(off) <- x
  | PInt a, Sc_enum (_, x) -> a.(off) <- x
  | PBool b, Sc_bool x -> Bytes.set b off (if x then '\001' else '\000')
  | PBox a, Sc_record fields -> a.(off) <- Brecord fields
  | _ -> invalid_arg ("set_scalar: kind mismatch on " ^ s.s_name)

(* ------------------------------------------------------------------ *)
(* Scalar helpers *)

let as_int = function
  | Sc_int n -> n
  | Sc_real f -> int_of_float f
  | Sc_enum (_, n) -> n
  | Sc_bool _ | Sc_record _ -> invalid_arg "as_int"

let as_float = function
  | Sc_real f -> f
  | Sc_int n -> float_of_int n
  | Sc_bool _ | Sc_enum _ | Sc_record _ -> invalid_arg "as_float"

let as_bool = function
  | Sc_bool b -> b
  | Sc_int _ | Sc_real _ | Sc_enum _ | Sc_record _ -> invalid_arg "as_bool"

let rec equal_scalar a b =
  match a, b with
  | Sc_int x, Sc_int y -> x = y
  | Sc_real x, Sc_real y -> Float.equal x y
  | (Sc_int _ | Sc_real _), (Sc_int _ | Sc_real _) -> Float.equal (as_float a) (as_float b)
  | Sc_bool x, Sc_bool y -> Bool.equal x y
  | Sc_enum (_, x), Sc_enum (_, y) -> x = y
  | Sc_record f1, Sc_record f2 ->
    List.length f1 = List.length f2
    && List.for_all2
         (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && equal_scalar v1 v2)
         f1 f2
  | _ -> false

let rec pp_scalar ppf = function
  | Sc_int n -> Fmt.int ppf n
  | Sc_real f -> Fmt.pf ppf "%g" f
  | Sc_bool b -> Fmt.bool ppf b
  | Sc_enum (_, n) -> Fmt.pf ppf "#%d" n
  | Sc_record fields ->
    Fmt.pf ppf "{%a}"
      (Fmt.list ~sep:(Fmt.any "; ")
         (fun ppf (n, v) -> Fmt.pf ppf "%s = %a" n pp_scalar v))
      fields
