(* Closure compiler for equation right-hand sides.

   Equations execute once per point of a (possibly large) iteration
   space, so the inner loop must not walk the AST.  Expressions are
   compiled bottom-up into unboxed closures over a [frame] — a flat
   [int array] holding the values of the enclosing loop variables — with
   the scalar type resolved at compile time, so the hot stencil path runs
   with no allocation.

   Module inputs and already-computed scalar locals are read from their
   store slabs at compile time or run time as appropriate; anything
   exotic (records, module calls) falls back to the tree-walk evaluator
   through the [boxed] case.  The test suite checks closure-compiled
   results against [Eval] on random expressions. *)

open Ps_sem
open Value

type frame = int array

type comp =
  | CInt of (frame -> int)
  | CReal of (frame -> float)
  | CBool of (frame -> bool)
  | CBoxed of (frame -> scalar)

type cctx = {
  k_em : Elab.emodule;
  k_slab : string -> slab;          (* resolve/allocate a data slab *)
  k_slot : string -> int option;    (* loop variable -> frame slot *)
  k_call : string -> value list -> value list;
  k_check : bool;
}

exception Cannot_compile of string

let fail fmt = Fmt.kstr (fun m -> raise (Cannot_compile m)) fmt

let as_real = function
  | CReal f -> f
  | CInt f -> fun fr -> float_of_int (f fr)
  | CBoxed f -> fun fr -> as_float (f fr)
  | CBool _ -> fail "boolean used as a number"

let as_int_c = function
  | CInt f -> f
  | CReal f -> fun fr -> int_of_float (f fr)
  | CBoxed f -> fun fr -> as_int (f fr)
  | CBool _ -> fail "boolean used as an integer"

let as_bool_c = function
  | CBool f -> f
  | CBoxed f -> fun fr -> as_bool (f fr)
  | CInt _ | CReal _ -> fail "number used as a boolean"

let as_scalar_c = function
  | CInt f -> fun fr -> Sc_int (f fr)
  | CReal f -> fun fr -> Sc_real (f fr)
  | CBool f -> fun fr -> Sc_bool (f fr)
  | CBoxed f -> f

(* An evaluation context whose index lookups read the current frame; used
   for the boxed fallback path. *)
let eval_ctx ctx (fr : frame) : Eval.ctx =
  { Eval.c_em = ctx.k_em;
    c_slab = ctx.k_slab;
    c_index =
      (fun v ->
        match ctx.k_slot v with Some s -> Some fr.(s) | None -> None);
    c_call = ctx.k_call;
    c_check = ctx.k_check }

let enum_ordinal ctx name =
  let rec find = function
    | [] -> None
    | (ename, ctors) :: rest -> (
      let rec pos i = function
        | [] -> None
        | c :: cs -> if String.equal c name then Some (ename, i) else pos (i + 1) cs
      in
      match pos 0 ctors with Some r -> Some r | None -> find rest)
  in
  find ctx.k_em.Elab.em_enums

(* Allocation-free offset computation for a compiled subscript vector;
   shared by reads here and by the equation writers in [Exec]. *)
let offset_closure ~check (s : slab) (sub_fns : (frame -> int) array) :
    frame -> int =
  let n = ndims s in
  if Array.length sub_fns <> n then
    fail "reference to %s has %d subscripts for %d dimensions" s.s_name
      (Array.length sub_fns) n;
  fun fr ->
    let off = ref 0 in
    for p = 0 to n - 1 do
      let di = Array.unsafe_get s.s_dims p in
      let v = (Array.unsafe_get sub_fns p) fr in
      if check && (v < di.di_lo || v >= di.di_lo + di.di_extent) then
        raise
          (Bounds
             (Printf.sprintf "%s: subscript %d = %d outside %d..%d" s.s_name
                (p + 1) v di.di_lo (di.di_lo + di.di_extent - 1)));
      let rel = v - di.di_lo in
      let rel =
        if di.di_window = di.di_extent then rel
        else wrap_window rel di.di_window
      in
      off := !off + (rel * Array.unsafe_get s.s_strides p)
    done;
    !off

(* Compile an array read: resolve the slab now, compile the subscripts,
   and emit a kind-specialized closure. *)
let compile_read ctx (s : slab) (sub_fns : (frame -> int) array) : comp =
  let offset_of = offset_closure ~check:ctx.k_check s sub_fns in
  match s.s_data with
  | PFloat a -> CReal (fun fr -> Array.unsafe_get a (offset_of fr))
  | PInt a -> (
    match s.s_kind with
    | KEnum e -> CBoxed (fun fr -> Sc_enum (e, Array.unsafe_get a (offset_of fr)))
    | _ -> CInt (fun fr -> Array.unsafe_get a (offset_of fr)))
  | PBool b -> CBool (fun fr -> Bytes.unsafe_get b (offset_of fr) <> '\000')
  | PBox a ->
    CBoxed
      (fun fr ->
        match Array.unsafe_get a (offset_of fr) with
        | Brecord fields -> Sc_record fields
        | Bnone -> Sc_record [])

let rec compile (ctx : cctx) (e : Ps_lang.Ast.expr) : comp =
  let open Ps_lang.Ast in
  match e.e with
  | Int n -> CInt (fun _ -> n)
  | Real f -> CReal (fun _ -> f)
  | Bool b -> CBool (fun _ -> b)
  | Var x -> (
    match ctx.k_slot x with
    | Some slot -> CInt (fun fr -> Array.unsafe_get fr slot)
    | None -> (
      match Elab.find_data ctx.k_em x with
      | Some d when Stypes.dims d.Elab.d_ty = [] ->
        (* Scalar data: read its 0-dimensional slab at run time (it may
           not be computed yet at compile time). *)
        compile_read ctx (ctx.k_slab x) [||]
      | Some _ -> fail "whole-array value %s in a scalar position" x
      | None -> (
        match enum_ordinal ctx x with
        | Some (ename, ord) -> CBoxed (fun _ -> Sc_enum (ename, ord))
        | None -> fail "unbound identifier %s" x)))
  | Index ({ e = Var x; _ }, subs) when Elab.find_data ctx.k_em x <> None ->
    let s = ctx.k_slab x in
    if List.length subs <> ndims s then
      (* Slice value: cold path. *)
      boxed_fallback ctx e
    else
      let sub_fns =
        Array.of_list (List.map (fun sub -> as_int_c (compile ctx sub)) subs)
      in
      compile_read ctx s sub_fns
  | Index _ | Field _ -> boxed_fallback ctx e
  | Call (f, args) -> compile_call ctx e f args
  | Unop (Neg, a) -> (
    match compile ctx a with
    | CInt f -> CInt (fun fr -> -f fr)
    | c -> let f = as_real c in CReal (fun fr -> -.f fr))
  | Unop (Not, a) ->
    let f = as_bool_c (compile ctx a) in
    CBool (fun fr -> not (f fr))
  | Binop (op, a, b) -> compile_binop ctx op a b
  | If (c, t, f) -> (
    let cf = as_bool_c (compile ctx c) in
    let tc = compile ctx t and fc = compile ctx f in
    match tc, fc with
    | CInt tf, CInt ff -> CInt (fun fr -> if cf fr then tf fr else ff fr)
    | CBool tf, CBool ff -> CBool (fun fr -> if cf fr then tf fr else ff fr)
    | (CReal _ | CInt _), (CReal _ | CInt _) ->
      let tf = as_real tc and ff = as_real fc in
      CReal (fun fr -> if cf fr then tf fr else ff fr)
    | _ ->
      let tf = as_scalar_c tc and ff = as_scalar_c fc in
      CBoxed (fun fr -> if cf fr then tf fr else ff fr))

and compile_binop ctx op a b =
  let open Ps_lang.Ast in
  match op with
  | And ->
    let fa = as_bool_c (compile ctx a) and fb = as_bool_c (compile ctx b) in
    CBool (fun fr -> fa fr && fb fr)
  | Or ->
    let fa = as_bool_c (compile ctx a) and fb = as_bool_c (compile ctx b) in
    CBool (fun fr -> fa fr || fb fr)
  | Add | Sub | Mul -> (
    match compile ctx a, compile ctx b with
    | CInt fa, CInt fb ->
      CInt
        (match op with
         | Add -> fun fr -> fa fr + fb fr
         | Sub -> fun fr -> fa fr - fb fr
         | Mul -> fun fr -> fa fr * fb fr
         | _ -> assert false)
    | ca, cb ->
      let fa = as_real ca and fb = as_real cb in
      CReal
        (match op with
         | Add -> fun fr -> fa fr +. fb fr
         | Sub -> fun fr -> fa fr -. fb fr
         | Mul -> fun fr -> fa fr *. fb fr
         | _ -> assert false))
  | Div ->
    let fa = as_real (compile ctx a) and fb = as_real (compile ctx b) in
    CReal (fun fr -> fa fr /. fb fr)
  (* div/mod trap zero exactly as [Eval] does (same message, same
     exception), so the hot compiled path and the cold tree-walk path
     fail identically instead of leaking a bare [Division_by_zero]. *)
  | Idiv ->
    let fa = as_int_c (compile ctx a) and fb = as_int_c (compile ctx b) in
    CInt
      (fun fr ->
        let y = fb fr in
        if y = 0 then raise (Eval.Runtime_error "division by zero");
        fa fr / y)
  | Imod ->
    let fa = as_int_c (compile ctx a) and fb = as_int_c (compile ctx b) in
    CInt
      (fun fr ->
        let y = fb fr in
        if y = 0 then raise (Eval.Runtime_error "mod by zero");
        fa fr mod y)
  | Eq | Ne | Lt | Le | Gt | Ge -> (
    let mk cmp = CBool cmp in
    match compile ctx a, compile ctx b with
    | CInt fa, CInt fb ->
      mk
        (match op with
         | Eq -> fun fr -> fa fr = fb fr
         | Ne -> fun fr -> fa fr <> fb fr
         | Lt -> fun fr -> fa fr < fb fr
         | Le -> fun fr -> fa fr <= fb fr
         | Gt -> fun fr -> fa fr > fb fr
         | Ge -> fun fr -> fa fr >= fb fr
         | _ -> assert false)
    | CBool fa, CBool fb ->
      mk
        (match op with
         | Eq -> fun fr -> fa fr = fb fr
         | Ne -> fun fr -> fa fr <> fb fr
         | _ -> fail "ordering on booleans")
    | CBoxed fa, CBoxed fb ->
      mk
        (match op with
         | Eq -> fun fr -> equal_scalar (fa fr) (fb fr)
         | Ne -> fun fr -> not (equal_scalar (fa fr) (fb fr))
         | _ ->
           fun fr ->
             let c = Int.compare (as_int (fa fr)) (as_int (fb fr)) in
             (match op with
              | Lt -> c < 0 | Le -> c <= 0 | Gt -> c > 0 | Ge -> c >= 0
              | _ -> assert false))
    | ca, cb ->
      let fa = as_real ca and fb = as_real cb in
      mk
        (match op with
         | Eq -> fun fr -> Float.equal (fa fr) (fb fr)
         | Ne -> fun fr -> not (Float.equal (fa fr) (fb fr))
         | Lt -> fun fr -> fa fr < fb fr
         | Le -> fun fr -> fa fr <= fb fr
         | Gt -> fun fr -> fa fr > fb fr
         | Ge -> fun fr -> fa fr >= fb fr
         | _ -> assert false))

and compile_call ctx e f args =
  match f, args with
  | "sqrt", [ a ] -> un_real ctx sqrt a
  | "sin", [ a ] -> un_real ctx sin a
  | "cos", [ a ] -> un_real ctx cos a
  | "exp", [ a ] -> un_real ctx exp a
  | "ln", [ a ] -> un_real ctx log a
  | "abs", [ a ] -> (
    match compile ctx a with
    | CInt fa -> CInt (fun fr -> abs (fa fr))
    | c -> let fa = as_real c in CReal (fun fr -> abs_float (fa fr)))
  | "intpart", [ a ] ->
    let fa = as_real (compile ctx a) in
    CInt (fun fr -> int_of_float (fa fr))
  | "min", [ a; b ] -> minmax ctx min min a b
  | "max", [ a; b ] -> minmax ctx max max a b
  | _ -> boxed_fallback ctx e

and un_real ctx g a =
  let fa = as_real (compile ctx a) in
  CReal (fun fr -> g (fa fr))

and minmax ctx gi gf a b =
  match compile ctx a, compile ctx b with
  | CInt fa, CInt fb -> CInt (fun fr -> gi (fa fr) (fb fr))
  | ca, cb ->
    let fa = as_real ca and fb = as_real cb in
    CReal (fun fr -> gf (fa fr) (fb fr))

and boxed_fallback ctx e =
  CBoxed (fun fr -> Eval.eval_scalar (eval_ctx ctx fr) e)

(* Public entry points. *)

let compile_int ctx e = as_int_c (compile ctx e)

let compile_real ctx e = as_real (compile ctx e)

let compile_bool ctx e = as_bool_c (compile ctx e)

let compile_scalar ctx e = as_scalar_c (compile ctx e)
