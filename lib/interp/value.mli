(** Runtime values and the array store.

    Arrays are flat, contiguous and unboxed, one stride per dimension.  A
    {e virtual} dimension (paper §3.4) allocates a window of [w] planes
    instead of its full extent, mapping its index through [mod w].  Word
    counts are exact, so the space-reuse experiments can report the
    paper's §3.4 / §4 numbers directly. *)

type elem_kind = KInt | KReal | KBool | KEnum of string

type payload =
  | PFloat of float array
  | PInt of int array
  | PBool of Bytes.t
  | PBox of box array  (** records and other boxed elements *)

and box = Bnone | Brecord of (string * scalar) list

and scalar =
  | Sc_int of int
  | Sc_real of float
  | Sc_bool of bool
  | Sc_enum of string * int  (** enum type name, ordinal *)
  | Sc_record of (string * scalar) list

type dim_info = {
  di_lo : int;       (** declared lower bound *)
  di_extent : int;   (** declared number of elements *)
  di_window : int;   (** allocated planes; equals [di_extent] unless virtual *)
}

type slab = {
  s_name : string;
  s_kind : elem_kind;
  s_dims : dim_info array;
  s_strides : int array;  (** in elements, over the window sizes *)
  s_data : payload;
}

type value = Vscalar of scalar | Varray of slab

exception Bounds of string
(** A subscript outside the declared extents (independent of windows). *)

(** {1 Slabs} *)

val make_slab :
  name:string -> elem:Ps_sem.Stypes.ty -> dims:(int * int * int) list -> slab
(** [make_slab ~name ~elem ~dims] with [dims] a list of
    [(lo, extent, window)] triples, zero-initialized. *)

val allocated_words : slab -> int

val ndims : slab -> int

val wrap_window : int -> int -> int
(** [wrap_window rel w] is the Euclidean (always-nonnegative) remainder
    of [rel] by window size [w], so negative relative indices — an
    [I - c] subscript evaluated below the dimension's lower bound on an
    unchecked fast path — still map inside the allocated window. *)

val offset : slab -> int array -> int
(** Flat offset of a subscript vector, mapping virtual dimensions through
    their window.  Window dimensions always yield an in-window plane,
    even for (out-of-declared-bounds) negative relative indices. *)

val check_bounds : slab -> int array -> unit
(** @raise Bounds when a subscript leaves its declared range. *)

val get_scalar : slab -> int array -> scalar

val set_scalar : slab -> int array -> scalar -> unit

(** {1 Typed raw access (no bounds checks)} *)

val get_float : slab -> int -> float

val get_int : slab -> int -> int

val get_bool : slab -> int -> bool

val set_float : slab -> int -> float -> unit

val set_int : slab -> int -> int -> unit

val set_bool : slab -> int -> bool -> unit

(** {1 Scalars} *)

val scalar_kind : scalar -> elem_kind

val kind_of_ty : Ps_sem.Stypes.ty -> elem_kind

val as_int : scalar -> int

val as_float : scalar -> float

val as_bool : scalar -> bool

val equal_scalar : scalar -> scalar -> bool
(** Numeric kinds compare by value ([Sc_int 3] equals [Sc_real 3.0]). *)

val pp_scalar : scalar Fmt.t

val alloc_payload : elem_kind -> bool -> int -> payload
