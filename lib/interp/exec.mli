(** Flowchart execution.

    The schedule is compiled into nested closures: DO loops run on the
    calling domain in index order; DOALL loops go to the domain pool,
    chunked, with a private frame per chunk (only the outermost DOALL of
    a nest is parallelized).  Compilation of each top-level component is
    deferred to just before it executes, so arrays whose bounds depend on
    computed scalar locals allocate after those scalars exist — sound by
    the scheduler's topological component order. *)

exception Runtime_error of string

type sched_flags = {
  sf_sink : bool;
  sf_fuse : bool;
  sf_trim : bool;
  sf_collapse : bool;
}
(** The transformation passes the run was asked for.  Callee modules
    reached through module-call equations are scheduled under the same
    passes, and the process-wide schedule memo is keyed by this
    fingerprint together with the module's content digest — never by the
    module name alone. *)

val no_sched_flags : sched_flags

val flags_fingerprint : sched_flags -> string
(** Four stable characters, one per pass (e.g. ["s-t-"] for sink+trim). *)

type opts = {
  pool : Ps_runtime.Pool.t option;  (** [None]: fully sequential *)
  check : bool;                     (** subscript bounds checking *)
  use_windows : bool;               (** honor virtual-dimension windows *)
  min_par : int;                    (** smallest trip count worth forking *)
  collect_stats : bool;             (** count equation evaluations *)
  sched_flags : sched_flags;        (** passes applied to callee schedules *)
  policy : Ps_sched.Policy.table option;
      (** Per-nest schedule shapes; [None] keeps the pool-global
          behavior.  A nest whose decision is [d_par = false] compiles
          sequentially, collapse marks are flattened only where the
          decision allows, and chunk/steal/wake overrides go to the pool
          per job.  Policies never change results. *)
}

val default_opts : opts
(** Sequential, checked, windowed, no statistics, no policy. *)

val sched_cache_stats : unit -> int * int
(** [(entries, hits)] of the process-wide schedule memo. *)

val sched_cache_clear : unit -> unit

type run_result = {
  outputs : (string * Value.value) list;  (** module results, in order *)
  allocated : (string * int) list;        (** words per data item, sorted *)
  evaluations : int option;               (** equation evaluations, if counted *)
}

val run :
  ?opts:opts ->
  ?flowchart:Ps_sched.Flowchart.t ->
  ?windows:Ps_sched.Schedule.window list ->
  prog:Ps_sem.Elab.eprogram ->
  Ps_sem.Elab.emodule ->
  inputs:(string * Value.value) list ->
  run_result
(** Execute a module.  Without [flowchart] the module is scheduled first
    (and the schedule's windows used unless [windows] overrides them).
    [prog] supplies callee modules.  Inputs are validated against the
    declared shapes.
    @raise Runtime_error on missing/ill-shaped inputs or evaluation
    faults; @raise Value.Bounds on a checked subscript violation. *)

(** {1 Input builders and output readers} *)

val scalar_int : int -> Value.value

val scalar_real : float -> Value.value

val scalar_bool : bool -> Value.value

val array_real : dims:(int * int) list -> (int array -> float) -> Value.value
(** [array_real ~dims f] builds an array over the inclusive bounds
    [dims], filling each point from [f]. *)

val array_int : dims:(int * int) list -> (int array -> int) -> Value.value

val read_real : Value.value -> int array -> float

val read_int : Value.value -> int array -> int
