(* Unified diagnostics: stable codes, severities, spans, renderers.

   The code list is closed on purpose — a diagnostic code is part of the
   tool's interface (scripts grep for it, tests assert on it), so adding
   one is an API change reviewed here rather than a string typed at a
   call site. *)

module Loc = Ps_lang.Loc

type severity = Error | Warning

type code =
  | Undefined_data
  | Conflicting_definition
  | Missing_field
  | Possible_overlap
  | Coverage_unverified
  | Doall_carried
  | Negative_dependence
  | Unverifiable_dependence
  | Order_violation
  | Missing_equation
  | Duplicate_equation
  | Unbound_index
  | Window_underflow
  | Hyperplane_violation
  | Non_unimodular
  | Window_clobber
  | Bad_group_partition
  | Inspector_missing
  | Out_of_bounds
  | Bad_collapse
  | Unused_data
  | Dead_equation
  | No_virtualization
  | Unschedulable
  | Unverified_window
  | Opaque_classifiable
  | Inspector_static
  | Sequential_doall
  | Policy_stale
  | Bad_policy
  | Bad_request
  | Deadline_exceeded
  | Server_draining
  | Server_overloaded

let code_id = function
  | Undefined_data -> "E001"
  | Conflicting_definition -> "E002"
  | Missing_field -> "E003"
  | Possible_overlap -> "W101"
  | Coverage_unverified -> "W102"
  | Doall_carried -> "E010"
  | Negative_dependence -> "E011"
  | Unverifiable_dependence -> "E012"
  | Order_violation -> "E013"
  | Missing_equation -> "E014"
  | Duplicate_equation -> "E015"
  | Unbound_index -> "E016"
  | Window_underflow -> "E017"
  | Hyperplane_violation -> "E018"
  | Non_unimodular -> "E019"
  | Window_clobber -> "E022"
  | Bad_group_partition -> "E023"
  | Inspector_missing -> "E024"
  | Out_of_bounds -> "E020"
  | Bad_collapse -> "E021"
  | Unused_data -> "W110"
  | Dead_equation -> "W111"
  | No_virtualization -> "W112"
  | Unschedulable -> "W113"
  | Unverified_window -> "W114"
  | Opaque_classifiable -> "W115"
  | Inspector_static -> "W116"
  | Sequential_doall -> "W120"
  | Policy_stale -> "W121"
  | Bad_policy -> "E025"
  (* E03x: the compile service (`psc serve`).  These are per-request
     diagnostics — a malformed or expired request is answered, never
     fatal to the server process. *)
  | Bad_request -> "E030"
  | Deadline_exceeded -> "E031"
  | Server_draining -> "E032"
  | Server_overloaded -> "E033"

let code_severity c =
  match (code_id c).[0] with 'E' -> Error | _ -> Warning

type t = { d_code : code; d_msg : string; d_loc : Loc.span }

let diag code loc fmt =
  Fmt.kstr (fun d_msg -> { d_code = code; d_msg; d_loc = loc }) fmt

let severity d = code_severity d.d_code

let is_error d = severity d = Error

let errors ds = List.filter is_error ds

let warnings ds = List.filter (fun d -> not (is_error d)) ds

let sort ds =
  let key d =
    ( (match severity d with Error -> 0 | Warning -> 1),
      d.d_loc.Loc.start_p.Loc.offset,
      code_id d.d_code,
      d.d_msg )
  in
  List.stable_sort (fun a b -> compare (key a) (key b)) ds

type format = Text | Json

let severity_name = function Error -> "error" | Warning -> "warning"

let pp ppf d =
  Fmt.pf ppf "%s[%s]: %s (%a)"
    (severity_name (severity d))
    (code_id d.d_code) d.d_msg Loc.pp d.d_loc

(* Hand-rolled JSON: the diagnostic surface is flat enough that a
   dependency on a JSON library buys nothing. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json d =
  let s = d.d_loc.Loc.start_p and e = d.d_loc.Loc.end_p in
  Printf.sprintf
    "{\"code\":%S,\"severity\":%S,\"message\":\"%s\",\"line\":%d,\"col\":%d,\"endLine\":%d,\"endCol\":%d}"
    (code_id d.d_code)
    (severity_name (severity d))
    (json_escape d.d_msg) s.Loc.line s.Loc.col e.Loc.line e.Loc.col

let render fmt ds =
  let ds = sort ds in
  match fmt with
  | Text -> String.concat "" (List.map (fun d -> Fmt.str "%a\n" pp d) ds)
  | Json -> "[" ^ String.concat "," (List.map to_json ds) ^ "]"

let summary ds =
  let ne = List.length (errors ds) and nw = List.length (warnings ds) in
  let plural n s = Printf.sprintf "%d %s%s" n s (if n = 1 then "" else "s") in
  match ne, nw with
  | 0, 0 -> "no diagnostics"
  | _, 0 -> plural ne "error"
  | 0, _ -> plural nw "warning"
  | _, _ -> plural ne "error" ^ ", " ^ plural nw "warning"

let exit_code ?(werror = false) ds =
  if errors ds <> [] then 1
  else if werror && warnings ds <> [] then 1
  else 0
