(** Schedule legality verification (translation validation).

    The scheduler, the fusion / trimming / sinking passes, and the
    hyperplane transformation are trusted nowhere else in the pipeline:
    this module re-derives, from the dependency graph alone, the claim
    that a flowchart may legally execute — and rejects any flowchart for
    which it cannot prove it.

    Checked, per dependence edge of the graph (paper §3.3–§4):

    - a [DOALL] dimension carries no dependence: along every shared
      parallel loop the producer and consumer iterations coincide
      (identity subscripts, distance 0);
    - a [DO] dimension carries only backward references ([I - c],
      [c >= 0]): the distance at the first iterative loop that carries
      the dependence is positive, and no loop sees a negative distance
      first (a read of a future iteration);
    - a dependence carried by no loop is satisfied by emission order:
      the producer's straight-line code precedes the consumer's;
    - every equation appears exactly once, with every index variable
      bound by an enclosing loop (or solved subscript);
    - every virtual-dimension window holds at least
      [max dependence offset + 1] planes (§3.4).

    The checks are conservative: every flowchart produced by
    [Schedule] — before or after [--sink], [--fuse], [--trim], or the
    hyperplane transformation — verifies cleanly, and any single
    corruption (a DO flipped to DOALL, a shrunk window, a reordered
    body) is reported with the offending edge, loop, and source span.
    Dependences a sinking [SOLVE] descriptor discharges dynamically are
    skipped: [Sink] proves that obligation symbolically when it fires. *)

val flowchart :
  ?windows:Ps_sched.Schedule.window list ->
  Ps_graph.Dgraph.t ->
  Ps_sched.Flowchart.t ->
  Ps_diag.Diag.t list
(** Verify a flowchart (plus its storage windows) against the dependency
    graph it was scheduled from.  Returns the violations; an empty list
    means the schedule is proved legal. *)

val result : Ps_sched.Schedule.result -> Ps_diag.Diag.t list
(** [flowchart] applied to a scheduler result's own graph, flowchart and
    windows. *)

val transform : Ps_hyper.Transform.t -> Ps_diag.Diag.t list
(** Verify a hyperplane derivation: the time vector must satisfy every
    Lamport dependence inequality strictly ([a . d >= 1] edge-by-edge),
    and the coordinate change must be unimodular with a consistent
    inverse (paper §4). *)

val policy_table :
  ?host_cores:int ->
  Ps_sched.Policy.table ->
  Ps_sched.Flowchart.t ->
  Ps_diag.Diag.t list
(** Verify a scheduling-policy table against the flowchart it will steer:
    structural well-formedness (E025 — unknown nest key, collapse on an
    unmarked band head, bad chunk bounds) plus, when [host_cores] is
    given, staleness (W121 — the table was tuned for a different core
    count).  Policies are advisory shape, never legality: the
    interpreter ignores a flatten request on an unmarked band and only
    forks nests the scheduler proved parallel, so these diagnostics
    protect measurements, not results. *)
