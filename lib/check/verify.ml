(* Independent re-derivation of schedule legality from the dependency
   graph (paper §3.3-§4).

   The verifier never inspects how a flowchart was produced.  It walks
   the descriptor tree once to learn, for every equation occurrence, its
   emission position and enclosing binders; then, for every (definition
   edge, use edge) pair of every data item, it computes the dependence
   distance level by level down the shared loop nest and applies the
   classical legality rules: the first nonzero distance must be positive
   and must land on an iterative loop; a dependence no loop carries must
   be satisfied by emission order.

   Conservatism: a distance the labels cannot decide (an opaque or
   sliced subscript in a shared dimension) is a verification failure,
   not a pass — except under a SOLVE descriptor, whose producing pass
   (Sink) discharges exactly that obligation symbolically before
   emitting it. *)

module Diag = Ps_diag.Diag
module Loc = Ps_lang.Loc
open Ps_sem
open Ps_graph
open Ps_graph.Dgraph
module Fc = Ps_sched.Flowchart
module Schedule = Ps_sched.Schedule
module Label = Ps_graph.Label

(* ------------------------------------------------------------------ *)
(* Equation occurrences in a flowchart. *)

type occ = {
  oc_seq : int;                         (* emission order *)
  oc_binders : Fc.binder list;          (* outermost first *)
  oc_aliases : (string * string) list;  (* eq index var -> loop var *)
}

let occs_of fc =
  let tbl : (int, occ list) Hashtbl.t = Hashtbl.create 32 in
  Fc.iter_eqs
    (fun ~binders ~seq er ->
      let o =
        { oc_seq = seq; oc_binders = binders; oc_aliases = er.Fc.er_aliases }
      in
      let prev = try Hashtbl.find tbl er.Fc.er_id with Not_found -> [] in
      Hashtbl.replace tbl er.Fc.er_id (prev @ [ o ]))
    fc;
  tbl

let under_solve o =
  List.exists (function Fc.B_solve _ -> true | Fc.B_loop _ -> false) o.oc_binders

let resolve aliases v = Option.value (List.assoc_opt v aliases) ~default:v

(* Two binder occurrences are the same loop instance exactly when they
   are the same descriptor record: the traversal hands each loop's body
   the one record built for it. *)
let same_binder a b =
  match a, b with
  | Fc.B_loop l1, Fc.B_loop l2 -> l1 == l2
  | Fc.B_solve s1, Fc.B_solve s2 -> s1 == s2
  | _ -> false

let rec shared_binders bs1 bs2 =
  match bs1, bs2 with
  | b1 :: r1, b2 :: r2 when same_binder b1 b2 -> b1 :: shared_binders r1 r2
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Dependence distance along one loop variable.

   The producer writes d[... f_d(vd) ...] and the consumer reads
   d[... f_u(vu) ...] in the dimension(s) the loop controls; equal
   elements mean the consumed value was produced some iterations
   earlier, and the symbolic solver ({!Ps_graph.Distance}) decides how
   many.  [Unrelated] when the loop controls no dimension of the
   definition (e.g. a fixed boundary plane); [Known] for an exact
   constant distance; [Symbolic] for a parameter-form distance (the
   inspector/executor obligation); [Indep] when the solver proves the
   two subscripts never meet; [Unknown] when a label is not affine in
   the loop variable or the solver cannot classify the pair. *)

type dist = Unrelated | Known of int | Symbolic of Linexpr.t | Indep | Unknown

let distance ?bounds ?(assumptions = []) ~(def : edge) ~def_aliases
    ~(use : edge) ~use_aliases lv =
  let aligned aliases sub =
    match Label.linear_parts sub with
    | Some (v, _, _, _) when String.equal (resolve aliases v) lv -> true
    | _ -> false
  in
  let found = ref [] in
  Array.iteri
    (fun p sub ->
      if aligned def_aliases sub then begin
        let d =
          if p >= Array.length use.e_subs then Unknown
          else if aligned use_aliases use.e_subs.(p) then
            match
              Ps_graph.Distance.solve ?bounds ~assumptions ~def:sub
                ~use:use.e_subs.(p) ()
            with
            | Ps_graph.Distance.Exact k -> Known k
            | Ps_graph.Distance.Form f -> Symbolic f
            | Ps_graph.Distance.Independent -> Indep
            | Ps_graph.Distance.Unknown -> Unknown
          else Unknown
        in
        found := d :: !found
      end)
    def.e_subs;
  match !found with
  | [] -> Unrelated
  | l ->
    if List.exists (function Unknown -> true | _ -> false) l then Unknown
      (* One dimension where the subscripts provably never meet makes
         the whole pair independent, whatever the other dimensions do. *)
    else if List.exists (function Indep -> true | _ -> false) l then Indep
    else (
      match List.sort_uniq compare l with [ d ] -> d | _ -> Unknown)

(* ------------------------------------------------------------------ *)

let flowchart ?(windows = []) (g : Dgraph.t) (fc : Fc.t) : Diag.t list =
  Ps_obs.Trace.with_span "verify" @@ fun () ->
  let em = g.g_module in
  (* Subrange non-emptiness facts sharpen the solver's disjointness
     test; they never change an Exact answer. *)
  let assumptions = Distance.facts (List.map snd em.Elab.em_subranges) in
  let diags = ref [] in
  let report d = diags := d :: !diags in
  let occs = occs_of fc in
  let occ_of id =
    match Hashtbl.find_opt occs id with Some (o :: _) -> Some o | _ -> None
  in
  let eq_name id =
    match Elab.find_eq em id with Some q -> q.Elab.q_name | None -> Fmt.str "eq.%d" (id + 1)
  in
  let eq_loc id =
    match Elab.find_eq em id with Some q -> q.Elab.q_loc | None -> Loc.dummy
  in
  (* --- structural coverage ------------------------------------------ *)
  (* Ids appearing in the flowchart must name equations of the module. *)
  Hashtbl.iter
    (fun id os ->
      (match Elab.find_eq em id with
       | None ->
         report
           (Diag.diag Diag.Missing_equation Loc.dummy
              "the flowchart mentions eq.%d, which the module does not define"
              (id + 1))
       | Some _ -> ());
      if List.length os > 1 then
        report
          (Diag.diag Diag.Duplicate_equation (eq_loc id)
             "%s appears %d times in the flowchart (single assignment emits \
              each equation once)"
             (eq_name id) (List.length os)))
    occs;
  List.iter
    (fun (q : Elab.eq) ->
      match occ_of q.Elab.q_id with
      | None ->
        report
          (Diag.diag Diag.Missing_equation q.Elab.q_loc
             "%s is missing from the flowchart" q.Elab.q_name)
      | Some o ->
        (* Every index variable must be bound by an enclosing binder. *)
        let bound = List.map Fc.binder_var o.oc_binders in
        List.iter
          (fun (ix : Elab.index) ->
            let lv = resolve o.oc_aliases ix.Elab.ix_var in
            if not (List.mem lv bound) then
              report
                (Diag.diag Diag.Unbound_index q.Elab.q_loc
                   "index %s of %s is bound by no enclosing loop" ix.Elab.ix_var
                   q.Elab.q_name))
          q.Elab.q_indices)
    em.Elab.em_eqs;
  (* --- collapse marks ----------------------------------------------- *)
  (* A collapse mark licenses flattening the loop with the one DOALL
     directly inside it, so it may only sit on a *perfect* DOALL pair:
     both loops Parallel, nothing between the headers.  Legality of the
     flattened order then follows from the per-axis DOALL checks below
     (every dependence distance across each axis is 0 or the axis would
     be rejected as carrying). *)
  let rec check_marks descs =
    List.iter
      (function
        | Fc.D_loop l ->
          (if l.Fc.lp_collapse then
             let ok =
               l.Fc.lp_kind = Fc.Parallel
               && (match l.Fc.lp_body with
                  | [ Fc.D_loop inner ] -> inner.Fc.lp_kind = Fc.Parallel
                  | _ -> false)
             in
             if not ok then
               report
                 (Diag.diag Diag.Bad_collapse Loc.dummy
                    "loop %s is marked collapsible but is not the head of a \
                     perfect DOALL pair"
                    l.Fc.lp_var));
          check_marks l.Fc.lp_body
        | Fc.D_solve s -> check_marks s.Fc.sv_body
        | Fc.D_data _ | Fc.D_eq _ -> ())
      descs
  in
  check_marks fc;
  (* --- dependence legality ------------------------------------------ *)
  let def_edges_of =
    let tbl : (string, edge) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun e ->
        match e.e_kind, e.e_dst with
        | Def, Data d -> Hashtbl.add tbl d e
        | _ -> ())
      (Dgraph.edges g);
    fun d -> Hashtbl.find_all tbl d
  in
  let check_pair ~(def : edge) ~(use : edge) ~data =
    match def.e_src, use.e_dst with
    | Eq producer, Eq consumer -> (
      match occ_of producer, occ_of consumer with
      | Some po, Some co ->
        let loc = eq_loc consumer in
        let pname = eq_name producer and cname = eq_name consumer in
        let shared = shared_binders po.oc_binders co.oc_binders in
        (* Scan the shared nest outermost-in until the dependence is
           carried, violated, or exhausted. *)
        let rec scan = function
          | [] ->
            (* Carried by no loop: emission order must satisfy it. *)
            if po.oc_seq >= co.oc_seq then
              report
                (Diag.diag Diag.Order_violation loc
                   "%s reads %s from %s in the same iteration, but %s is \
                    emitted %s"
                   cname data pname pname
                   (if po.oc_seq = co.oc_seq then "as the same descriptor"
                    else "later"))
          | Fc.B_solve _ :: rest ->
            (* Both run under the same solved subscript: same value on
               both sides, distance 0. *)
            scan rest
          | Fc.B_loop l :: rest -> (
            match
              distance
                ?bounds:(Distance.bounds_of_subrange l.Fc.lp_range)
                ~assumptions ~def ~def_aliases:po.oc_aliases ~use
                ~use_aliases:co.oc_aliases l.Fc.lp_var
            with
            | Unrelated | Known 0 -> scan rest
            | Indep -> () (* the subscripts never meet: nothing to satisfy *)
            | Known k when k > 0 -> (
              match l.Fc.lp_kind with
              | Fc.Iterative -> () (* carried here; inner levels are free *)
              | Fc.Grouped gm ->
                (* Residue classes mod gm run concurrently, index order
                   within each; a carried distance stays inside its
                   class exactly when the modulus divides it. *)
                if k mod gm <> 0 then
                  report
                    (Diag.diag Diag.Bad_group_partition loc
                       "DOGROUP(%d) loop %s does not partition its \
                        dependences: %s reads %s produced %d iteration%s \
                        earlier by %s, and %d does not divide %d"
                       gm l.Fc.lp_var cname data k
                       (if k = 1 then "" else "s")
                       pname gm k)
              | Fc.Inspected _ ->
                (* The runtime modulus is unconstrained, so only a zero
                   distance is safe under the inspected partition. *)
                report
                  (Diag.diag Diag.Bad_group_partition loc
                     "inspected loop %s carries a constant dependence: %s \
                      reads %s produced %d iteration%s earlier by %s, which \
                      the runtime modulus need not divide"
                     l.Fc.lp_var cname data k
                     (if k = 1 then "" else "s")
                     pname)
              | Fc.Parallel ->
                report
                  (Diag.diag Diag.Doall_carried loc
                     "DOALL loop %s carries a dependence: %s reads %s \
                      produced %d iteration%s earlier by %s"
                     l.Fc.lp_var cname data k
                     (if k = 1 then "" else "s")
                     pname))
            | Known k ->
              (* k < 0: the consumer reads a plane the producer has not
                 written yet at any legal interleaving of this loop. *)
              report
                (Diag.diag
                   (match l.Fc.lp_kind with
                    | Fc.Parallel -> Diag.Doall_carried
                    | Fc.Iterative | Fc.Grouped _ | Fc.Inspected _ ->
                      Diag.Negative_dependence)
                   loc
                   "%s loop %s runs %s before the iteration of %s that \
                    produces the %s it reads (offset %+d)"
                   (Fc.kind_name l.Fc.lp_kind) l.Fc.lp_var cname pname data
                   (-k))
            | Symbolic f -> (
              (* A parameter-form distance needs a runtime inspection of
                 exactly that form: the inspector rejects d < 1, and the
                 partition into d residue classes trivially satisfies a
                 carried distance of d. *)
              match l.Fc.lp_kind with
              | Fc.Inspected e -> (
                match Linexpr.of_expr e with
                | Some le when Linexpr.equal le f -> ()
                | _ ->
                  report
                    (Diag.diag Diag.Inspector_missing loc
                       "loop %s inspects %s, but %s reads %s produced %a \
                        iterations earlier by %s"
                       l.Fc.lp_var
                       (Ps_lang.Pretty.expr_to_string e)
                       cname data Linexpr.pp f pname))
              | Fc.Iterative | Fc.Parallel | Fc.Grouped _ ->
                report
                  (Diag.diag Diag.Inspector_missing loc
                     "%s loop %s carries a parameter-dependent dependence \
                      (%s reads %s produced %a iterations earlier by %s) \
                      but performs no runtime inspection"
                     (Fc.kind_name l.Fc.lp_kind) l.Fc.lp_var cname data
                     Linexpr.pp f pname))
            | Unknown ->
              if under_solve co then
                (* A sunk extraction: Sink proved the solved subscript
                   stays inside the already-computed window. *)
                ()
              else
                report
                  (Diag.diag Diag.Unverifiable_dependence loc
                     "cannot verify the dependence of %s on %s through %s: \
                      a subscript in the dimension of loop %s is not affine \
                      in the loop variable"
                     cname data pname l.Fc.lp_var))
        in
        scan shared
      | _ -> () (* missing occurrences already reported *))
    | _ -> ()
  in
  List.iter
    (fun (use : edge) ->
      match use.e_kind, use.e_src with
      | Use, Data d ->
        List.iter (fun def -> check_pair ~def ~use ~data:d) (def_edges_of d)
      | Bound, Data d -> (
        (* A bound must be available before the consumer's loops start:
           every producer of the bound datum is emitted earlier and
           shares no loop with the consumer. *)
        match use.e_dst with
        | Eq consumer -> (
          match occ_of consumer with
          | None -> ()
          | Some co ->
            List.iter
              (fun (def : edge) ->
                match def.e_src with
                | Eq producer -> (
                  match occ_of producer with
                  | None -> ()
                  | Some po ->
                    if shared_binders po.oc_binders co.oc_binders <> [] then
                      report
                        (Diag.diag Diag.Order_violation (eq_loc consumer)
                           "loop bound %s is computed by %s inside a loop \
                            shared with %s"
                           d (eq_name producer) (eq_name consumer))
                    else if po.oc_seq >= co.oc_seq then
                      report
                        (Diag.diag Diag.Order_violation (eq_loc consumer)
                           "loop bound %s is computed by %s after %s uses it"
                           d (eq_name producer) (eq_name consumer)))
                | Data _ -> ())
              (def_edges_of d))
        | Data _ -> ())
      | _ -> ())
    (Dgraph.edges g);
  (* --- storage windows (§3.4) --------------------------------------- *)
  List.iter
    (fun (w : Schedule.window) ->
      let loc =
        match Elab.find_data em w.Schedule.w_data with
        | Some d -> d.Elab.d_loc
        | None -> Loc.dummy
      in
      let needed = ref 1 in
      List.iter
        (fun (e : edge) ->
          match e.e_kind, e.e_src with
          | Use, Data d
            when String.equal d w.Schedule.w_data
                 && Array.length e.e_subs > w.Schedule.w_dim -> (
            let consumer_occ =
              match e.e_dst with Eq q -> occ_of q | Data _ -> None
            in
            match e.e_subs.(w.Schedule.w_dim) with
            | Label.Affine { offset; _ } when offset <= 0 ->
              if 1 - offset > !needed then needed := 1 - offset
            | Label.Affine { offset; _ } ->
              report
                (Diag.diag Diag.Window_underflow loc
                   "dimension %d of %s is windowed, but a use reads %d \
                    plane%s ahead"
                   (w.Schedule.w_dim + 1) w.Schedule.w_data offset
                   (if offset = 1 then "" else "s"))
            | Label.Const_high -> () (* the final plane survives the loop *)
            | Label.Linear _ | Label.Const_low | Label.Const_mid _
            | Label.Slice | Label.Opaque ->
              if
                match consumer_occ with
                | Some o -> under_solve o
                | None -> false
              then () (* discharged by the sinking pass *)
              else
                report
                  (Diag.diag Diag.Unverified_window loc
                     "dimension %d of %s is windowed, but a use subscript is \
                      not affine in the loop variable; the window cannot be \
                      verified"
                     (w.Schedule.w_dim + 1) w.Schedule.w_data))
          | _ -> ())
        (Dgraph.edges g);
      if w.Schedule.w_size < !needed then
        report
          (Diag.diag Diag.Window_underflow loc
             "dimension %d of %s has window = %d, but a dependence reaches %d \
              plane%s back (needs %d)"
             (w.Schedule.w_dim + 1) w.Schedule.w_data w.Schedule.w_size
             (!needed - 1)
             (if !needed = 2 then "" else "s")
             !needed);
      (* --- write side --------------------------------------------- *)
      (* A windowed dimension reuses a plane's slot every w_size
         iterations, so every write must either march in step with the
         producing loop (aligned, offset 0, under the *same* loop
         record as the aligned reads) or fill a startup plane within
         the first w_size slots before the loop runs.  An aligned
         write under a different loop — e.g. a DOALL in another
         component sweeping the dimension — pushes the whole extent
         through the window before the readers run. *)
      let binder_of id var =
        match occ_of id with
        | None -> None
        | Some o ->
          let v = resolve o.oc_aliases var in
          List.find_map
            (function
              | Fc.B_loop l when String.equal l.Fc.lp_var v -> Some l
              | Fc.B_loop _ | Fc.B_solve _ -> None)
            o.oc_binders
      in
      let aligned = ref [] in
      let record_aligned q var =
        match binder_of q var with
        | Some l -> aligned := (q, l) :: !aligned
        | None ->
          report
            (Diag.diag Diag.Unbound_index (eq_loc q)
               "%s subscripts dimension %d of windowed %s with %s, but no \
                enclosing loop binds it"
               (eq_name q) (w.Schedule.w_dim + 1) w.Schedule.w_data var)
      in
      List.iter
        (fun (e : edge) ->
          match e.e_kind, e.e_src, e.e_dst with
          | Def, Eq q, Data d
            when String.equal d w.Schedule.w_data
                 && Array.length e.e_subs > w.Schedule.w_dim -> (
            match e.e_subs.(w.Schedule.w_dim) with
            | Label.Affine { var; offset = 0; _ } -> record_aligned q var
            | Label.Affine { offset; _ } ->
              report
                (Diag.diag Diag.Window_clobber (eq_loc q)
                   "dimension %d of %s is windowed, but %s writes it at \
                    offset %d from the loop variable"
                   (w.Schedule.w_dim + 1) w.Schedule.w_data (eq_name q) offset)
            | Label.Const_low -> ()
            | Label.Const_mid k ->
              if k >= w.Schedule.w_size then
                report
                  (Diag.diag Diag.Window_clobber (eq_loc q)
                     "dimension %d of %s is windowed with %d plane%s, but %s \
                      writes boundary plane lower+%d, outside the startup \
                      window"
                     (w.Schedule.w_dim + 1) w.Schedule.w_data w.Schedule.w_size
                     (if w.Schedule.w_size = 1 then "" else "s")
                     (eq_name q) k)
            | Label.Linear _ | Label.Const_high | Label.Slice | Label.Opaque ->
              report
                (Diag.diag Diag.Unverified_window (eq_loc q)
                   "dimension %d of %s is windowed, but %s writes it with a \
                    subscript the verifier cannot place (class \"%s\")"
                   (w.Schedule.w_dim + 1) w.Schedule.w_data (eq_name q)
                   (Label.class_name e.e_subs.(w.Schedule.w_dim))))
          | Use, Data d, Eq q
            when String.equal d w.Schedule.w_data
                 && Array.length e.e_subs > w.Schedule.w_dim -> (
            match e.e_subs.(w.Schedule.w_dim) with
            | Label.Affine { var; offset; _ } when offset <= 0 -> (
              match occ_of q with
              | Some o when under_solve o -> () (* discharged by Sink *)
              | _ -> record_aligned q var)
            | _ -> ())
          | _ -> ())
        (Dgraph.edges g);
      (match !aligned with
       | [] -> ()
       | (q0, l0) :: rest ->
         List.iter
           (fun (q, l) ->
             if not (l == l0) then
               report
                 (Diag.diag Diag.Window_clobber (eq_loc q)
                    "dimension %d of %s is windowed, but %s and %s access it \
                     under different loops, so the window is overwritten \
                     between them"
                    (w.Schedule.w_dim + 1) w.Schedule.w_data (eq_name q)
                    (eq_name q0)))
           rest))
    windows;
  Diag.sort !diags

let result (r : Schedule.result) =
  flowchart ~windows:r.Schedule.r_windows r.Schedule.r_graph
    r.Schedule.r_flowchart

(* ------------------------------------------------------------------ *)
(* Scheduling-policy tables.

   A policy is advisory shape, not legality: the interpreter only forks
   nests the scheduler proved parallel and only flattens bands the
   Collapse pass marked, whatever the table says.  So the check here is
   structural well-formedness (E025) plus staleness (W121): a table
   tuned for a different host core count carries chunk and wake numbers
   that do not transfer, and the run falls back to the static model. *)

let policy_table ?host_cores (tp : Ps_sched.Policy.table) (fc : Fc.t) :
    Diag.t list =
  let loc = Loc.dummy in
  let bad =
    List.map
      (fun m -> Diag.diag Diag.Bad_policy loc "%s" m)
      (Ps_sched.Policy.validate tp fc)
  in
  let stale =
    match host_cores with
    | Some cores when Ps_sched.Policy.stale tp ~host_cores:cores ->
      [ Diag.diag Diag.Policy_stale loc
          "policy table was tuned for %d cores but this host has %d; falling \
           back to the static cost model"
          tp.Ps_sched.Policy.t_host_cores cores ]
    | _ -> []
  in
  Diag.sort (bad @ stale)

(* ------------------------------------------------------------------ *)
(* Hyperplane derivations (§4): the Lamport inequalities, edge by edge. *)

let transform (tr : Ps_hyper.Transform.t) : Diag.t list =
  let module T = Ps_hyper.Transform in
  let module Imatrix = Ps_hyper.Imatrix in
  let module Solve = Ps_hyper.Solve in
  let loc = tr.T.tr_module.Ps_lang.Ast.m_loc in
  let vec v =
    "(" ^ String.concat ", " (List.map string_of_int (Array.to_list v)) ^ ")"
  in
  let diags = ref [] in
  List.iter
    (fun d ->
      diags :=
        Diag.diag Diag.Hyperplane_violation loc
          "time vector %s does not strictly increase along dependence %s \
           of %s (a . d <= 0)"
          (vec tr.T.tr_time) (vec d) tr.T.tr_target
        :: !diags)
    (Solve.violations tr.T.tr_time tr.T.tr_vectors);
  let n = Imatrix.dim tr.T.tr_matrix in
  let det = Imatrix.det tr.T.tr_matrix in
  if det <> 1 && det <> -1 then
    diags :=
      Diag.diag Diag.Non_unimodular loc
        "the coordinate change for %s has determinant %d (must be +-1 so the \
         image lattice is exactly the integer lattice)"
        tr.T.tr_target det
      :: !diags
  else if
    not (Imatrix.equal (Imatrix.mul tr.T.tr_matrix tr.T.tr_inverse) (Imatrix.identity n))
  then
    diags :=
      Diag.diag Diag.Non_unimodular loc
        "the recorded inverse of the coordinate change for %s is wrong \
         (T . Tinv is not the identity)"
        tr.T.tr_target
      :: !diags;
  (* The matrix's first row must be the time vector itself. *)
  if Array.to_list (Imatrix.row tr.T.tr_matrix 0) <> Array.to_list tr.T.tr_time then
    diags :=
      Diag.diag Diag.Non_unimodular loc
        "the first row of the coordinate change for %s is not the time vector"
        tr.T.tr_target
      :: !diags;
  Diag.sort !diags
