(** Unified diagnostics for the PS compiler.

    Every check in the pipeline — single-assignment analysis, the lint
    passes, and the schedule legality verifier — reports through this one
    type, so drivers render, filter, and exit uniformly.  Each diagnostic
    carries a stable machine-readable code ([E0xx] for errors, [W1xx] for
    warnings), a source span, and a human message.  Renderers produce
    plain text (one line per diagnostic) and JSON (an array of objects),
    and [exit_code] implements the [--werror] contract. *)

type severity = Error | Warning

type code =
  (* Single-assignment checks (E00x / W10x). *)
  | Undefined_data           (** E001: a non-input item has no definition *)
  | Conflicting_definition   (** E002: two equations define the same element *)
  | Missing_field            (** E003: a record field is never defined *)
  | Possible_overlap         (** W101: definitions may overlap (undecided) *)
  | Coverage_unverified      (** W102: slice definitions may leave gaps *)
  (* Schedule legality verification (E01x). *)
  | Doall_carried            (** E010: a DOALL loop carries a dependence *)
  | Negative_dependence      (** E011: an iterative loop reads a future iteration *)
  | Unverifiable_dependence  (** E012: a dependence cannot be proved satisfied *)
  | Order_violation          (** E013: a value is read before its equation runs *)
  | Missing_equation         (** E014: an equation is absent from the flowchart *)
  | Duplicate_equation       (** E015: an equation appears twice *)
  | Unbound_index            (** E016: an index variable has no enclosing loop *)
  | Window_underflow         (** E017: a storage window is smaller than
                                 max dependence offset + 1 (paper sec. 3.4) *)
  | Hyperplane_violation     (** E018: the time vector fails a Lamport
                                 inequality (paper sec. 4) *)
  | Non_unimodular           (** E019: the coordinate change is not unimodular *)
  | Window_clobber           (** E022: a write from outside the producing loop
                                 lands inside a storage window, so it would be
                                 overwritten (or overwrite live planes) before
                                 its readers run *)
  | Bad_group_partition      (** E023: a group-partitioned DOALL's modulus does
                                 not divide some carried dependence distance,
                                 so two dependent iterations can land in
                                 different (concurrent) groups *)
  | Inspector_missing        (** E024: a schedule relies on a symbolic
                                 (parameter-dependent) dependence distance but
                                 carries no inspector node testing it at run
                                 time, or the inspector tests the wrong form *)
  (* Lints (E02x / W11x). *)
  | Out_of_bounds            (** E020: a subscript provably escapes its bounds *)
  | Bad_collapse             (** E021: a collapse mark sits on something other
                                 than a perfect DOALL pair *)
  | Unused_data              (** W110: a data item is never read *)
  | Dead_equation            (** W111: an equation only feeds unused items *)
  | No_virtualization        (** W112: a recursively indexed dimension cannot
                                 be windowed (with the reason) *)
  | Unschedulable            (** W113: the basic algorithm cannot schedule the
                                 module; the hyperplane transform may apply *)
  | Unverified_window        (** W114: a window's safety rests on a
                                 non-affine use the verifier cannot bound *)
  | Opaque_classifiable      (** W115: a subscript demoted to [Opaque] that the
                                 symbolic distance solver could classify (the
                                 inferred form is in the message) *)
  | Inspector_static         (** W116: an inspector/executor schedule whose
                                 runtime distance test a parameter bound
                                 annotation would decide statically *)
  | Sequential_doall         (** W120: a scheduled DOALL's constant trip count
                                 is below the pool's wake threshold, so it
                                 runs effectively sequentially *)
  | Policy_stale             (** W121: a cached scheduling-policy table was
                                 tuned for a different host core count, so the
                                 run fell back to the static cost model *)
  | Bad_policy               (** E025: a scheduling-policy table is ill-formed
                                 for this flowchart (unknown nest key, collapse
                                 on an unmarked head, or bad chunk bounds) *)
  (* The compile service (E03x).  Per-request diagnostics from
     [psc serve]: the request is answered with the diagnostic, the
     server itself stays up. *)
  | Bad_request              (** E030: malformed request JSON, unknown
                                 operation, or a missing required field *)
  | Deadline_exceeded        (** E031: the request's deadline expired before
                                 the pipeline finished *)
  | Server_draining          (** E032: the server is draining (SIGTERM or a
                                 shutdown request) and accepts no new work *)
  | Server_overloaded        (** E033: the bounded request queue is full, so
                                 the server shed this request instead of
                                 queueing it unboundedly — retry with backoff *)

val code_id : code -> string
(** The stable identifier, e.g. ["E010"]. *)

val code_severity : code -> severity
(** Severity is a function of the code: [E*] are errors, [W*] warnings. *)

type t = {
  d_code : code;
  d_msg : string;
  d_loc : Ps_lang.Loc.span;
}

val diag : code -> Ps_lang.Loc.span -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [diag code span fmt ...] builds a diagnostic with a formatted message. *)

val severity : t -> severity

val is_error : t -> bool

val errors : t list -> t list

val warnings : t list -> t list

val sort : t list -> t list
(** Stable order: errors first, then by source position, then by code. *)

type format = Text | Json

val pp : t Fmt.t
(** ["error[E010]: <msg> (line 4, characters 3-9)"]. *)

val to_json : t -> string
(** One diagnostic as a JSON object. *)

val render : format -> t list -> string
(** All diagnostics in the given format; for [Json] a single array.  The
    text rendering of an empty list is the empty string; the JSON one is
    ["[]"]. *)

val summary : t list -> string
(** ["2 errors, 1 warning"]. *)

val exit_code : ?werror:bool -> t list -> int
(** [0] when nothing fatal: errors always count, warnings count when
    [werror] is set. *)
