(** Static lints over a module and its dependency graph.

    Reported through {!Ps_diag.Diag} with stable codes:

    - [W110] a data item (parameter or local) is never read;
    - [W111] an equation feeds only unused data;
    - [E020] a subscript provably escapes the declared bounds of a
      dimension for some iteration — decided symbolically with
      {!Ps_sem.Linexpr}, refining index ranges through [if] guards such
      as the boundary tests of the paper's Relaxation module;
    - [W112] a recursively indexed dimension stays fully allocated, with
      the reason virtualization (paper §3.4) fails — a forward
      reference, a non-affine subscript, an outside read of other than
      the final plane, or the at-most-one-window rule;
    - [W113] the basic scheduling algorithm cannot order the module (the
      hyperplane transformation of §4 may apply);
    - [W115] a subscript demoted to [Opaque] that the symbolic distance
      solver could classify (the inferred linear form is in the
      message) — a guard against classifier drift;
    - [W116] an inspector/executor schedule whose runtime distance test
      the declared ranges already decide, so the partition could be
      static;
    - [W120] a scheduled DOALL's constant trip count is below the
      runtime pool's wake threshold, so it runs effectively
      sequentially.

    All lints are advisory except [E020]; none alter the pipeline. *)

val usage : Ps_graph.Dgraph.t -> Ps_diag.Diag.t list
(** Unused data items ([W110]) and dead equations ([W111]). *)

val subscripts : Ps_sem.Elab.emodule -> Ps_diag.Diag.t list
(** Symbolically out-of-bounds subscripts ([E020]). *)

val virtualization : Ps_sched.Schedule.result -> Ps_diag.Diag.t list
(** Recursively indexed dimensions that fail virtualization, with the
    failing §3.4 rule ([W112]). *)

val wake_check :
  Ps_sem.Elab.emodule -> Ps_sched.Schedule.result -> Ps_diag.Diag.t list
(** Outermost DOALLs whose constant trip count is below
    {!Ps_runtime.Pool.wake_threshold} ([W120]). *)

val opaque_classifiable : Ps_sem.Elab.emodule -> Ps_diag.Diag.t list
(** Subscripts labelled [Opaque] that are linear in exactly one equation
    index, the class the distance solver handles ([W115]). *)

val inspector_static :
  Ps_sem.Elab.emodule -> Ps_sched.Schedule.result -> Ps_diag.Diag.t list
(** Inspector loops whose distance the declared ranges already prove
    positive ([W116]). *)

val module_ : Ps_sem.Elab.emodule -> Ps_diag.Diag.t list
(** Every lint over one module: builds the graph, and schedules the
    module for the virtualization lint — an unschedulable module yields
    [W113] instead of failing. *)
