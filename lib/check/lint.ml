(* Lints: unused data, dead equations, out-of-bounds subscripts, and
   virtualization failures.

   The out-of-bounds check is the only symbolic one.  A subscript is
   reported exactly when the lint can *prove* some iteration escapes the
   declared bounds: each index variable contributes its extreme bound by
   the sign of its coefficient, and the resulting worst case is compared
   against the dimension's bounds with a Farkas certificate under the
   module's subrange non-emptiness facts.  Guards refine the ranges —
   the paper's Relaxation module reads A[K,I,J-1] legally only because
   the else branch of "J = 0 or ..." implies J >= 1, so the lint tracks
   equality and comparison tests against (provable) range boundaries
   through if expressions. *)

module Diag = Ps_diag.Diag
module Ast = Ps_lang.Ast
open Ps_sem
open Ps_graph
open Ps_graph.Dgraph
module Schedule = Ps_sched.Schedule
module Label = Ps_graph.Label

(* ------------------------------------------------------------------ *)
(* Unused data and dead equations. *)

let usage (g : Dgraph.t) : Diag.t list =
  let em = g.g_module in
  let read = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e.e_kind, e.e_src with
      | (Use | Bound), Data d -> Hashtbl.replace read d ()
      | _ -> ())
    (Dgraph.edges g);
  let unused_name n = not (Hashtbl.mem read n) in
  let unused =
    List.filter_map
      (fun (d : Elab.data) ->
        if unused_name d.Elab.d_name then
          Some
            (Diag.diag Diag.Unused_data d.Elab.d_loc
               "%s is never used (module %s)" d.Elab.d_name em.Elab.em_name)
        else None)
      (em.Elab.em_params @ em.Elab.em_locals)
  in
  let dead =
    List.filter_map
      (fun (q : Elab.eq) ->
        let only_unused_locals =
          q.Elab.q_defs <> []
          && List.for_all
               (fun (df : Elab.def) ->
                 match Elab.find_data em df.Elab.df_data with
                 | Some d ->
                   d.Elab.d_kind = Elab.Local && unused_name d.Elab.d_name
                 | None -> false)
               q.Elab.q_defs
        in
        if only_unused_locals then
          Some
            (Diag.diag Diag.Dead_equation q.Elab.q_loc
               "%s defines only %s, which nothing reads" q.Elab.q_name
               (String.concat ", "
                  (List.map (fun df -> df.Elab.df_data) q.Elab.q_defs)))
        else None)
      em.Elab.em_eqs
  in
  unused @ dead

(* ------------------------------------------------------------------ *)
(* Out-of-bounds subscripts. *)

type bound = { b_lo : Linexpr.t; b_hi : Linexpr.t }

(* Refine the tracked index ranges through one guard, in the given
   polarity.  Refinements must only *tighten* a range (otherwise the
   worst case could be overestimated and a legal read reported), so a
   comparison bound is adopted only when it is provably inside the
   current one, and a disequality shaves an endpoint only when it
   provably equals it. *)
let rec refine (env : (string * bound) list) (c : Ast.expr) (polarity : bool) =
  let tighten v f =
    match List.assoc_opt v env with
    | None -> env
    | Some b -> (v, f b) :: List.remove_assoc v env
  in
  let shave_ne v (x : Linexpr.t) =
    tighten v (fun b ->
        if Linexpr.diff_const x b.b_lo = Some 0 then
          { b with b_lo = Linexpr.add_const 1 b.b_lo }
        else if Linexpr.diff_const x b.b_hi = Some 0 then
          { b with b_hi = Linexpr.add_const (-1) b.b_hi }
        else b)
  in
  let clamp_hi v (x : Linexpr.t) =
    tighten v (fun b ->
        match Linexpr.diff_const b.b_hi x with
        | Some d when d >= 0 -> { b with b_hi = x }
        | _ -> b)
  in
  let clamp_lo v (x : Linexpr.t) =
    tighten v (fun b ->
        match Linexpr.diff_const x b.b_lo with
        | Some d when d >= 0 -> { b with b_lo = x }
        | _ -> b)
  in
  let as_var_cmp a b =
    match (a : Ast.expr).Ast.e with
    | Ast.Var v when List.mem_assoc v env -> (
      match Linexpr.of_expr b with
      | Some x when not (List.mem_assoc v x.Linexpr.terms) -> Some (v, x)
      | _ -> None)
    | _ -> None
  in
  match c.Ast.e with
  | Ast.Unop (Ast.Not, a) -> refine env a (not polarity)
  | Ast.Binop (Ast.And, a, b) when polarity -> refine (refine env a true) b true
  | Ast.Binop (Ast.Or, a, b) when not polarity ->
    refine (refine env a false) b false
  | Ast.Binop (((Ast.Eq | Ast.Ne) as op), a, b) -> (
    let eq_holds = (op = Ast.Eq) = polarity in
    match as_var_cmp a b, as_var_cmp b a with
    | Some (v, x), _ | None, Some (v, x) ->
      if eq_holds then tighten v (fun _ -> { b_lo = x; b_hi = x })
      else shave_ne v x
    | None, None -> env)
  | Ast.Binop (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b) -> (
    (* Normalize to [v OP x] with the variable on the left. *)
    let flipped =
      match op with
      | Ast.Lt -> Ast.Gt
      | Ast.Le -> Ast.Ge
      | Ast.Gt -> Ast.Lt
      | Ast.Ge -> Ast.Le
      | _ -> op
    in
    let negated = function
      | Ast.Lt -> Ast.Ge
      | Ast.Le -> Ast.Gt
      | Ast.Gt -> Ast.Le
      | Ast.Ge -> Ast.Lt
      | op -> op
    in
    match as_var_cmp a b, as_var_cmp b a with
    | None, None -> env
    | cmp, cmp_flipped ->
      let v, x, op =
        match cmp, cmp_flipped with
        | Some (v, x), _ -> (v, x, op)
        | None, Some (v, x) -> (v, x, flipped)
        | None, None -> assert false
      in
      let op = if polarity then op else negated op in
      (match op with
       | Ast.Le -> clamp_hi v x
       | Ast.Lt -> clamp_hi v (Linexpr.add_const (-1) x)
       | Ast.Ge -> clamp_lo v x
       | Ast.Gt -> clamp_lo v (Linexpr.add_const 1 x)
       | _ -> env))
  | _ -> env

(* Worst-case value of a linear subscript over the tracked ranges:
   each tracked variable contributes the endpoint selected by the sign
   of its coefficient; other variables stay symbolic. *)
let extreme ~(hi : bool) (env : (string * bound) list) (l : Linexpr.t) =
  List.fold_left
    (fun acc (v, c) ->
      let term =
        match List.assoc_opt v env with
        | Some b ->
          if (c > 0) = hi then Linexpr.scale c b.b_hi
          else Linexpr.scale c b.b_lo
        | None -> Linexpr.scale c (Linexpr.of_var v)
      in
      Linexpr.add acc term)
    (Linexpr.of_int l.Linexpr.const)
    l.Linexpr.terms

let subscripts (em : Elab.emodule) : Diag.t list =
  let facts = Sa_check.range_facts em in
  let is_data n = Elab.find_data em n <> None in
  let diags = ref [] in
  let check_ref (q : Elab.eq) env name (subs : Ast.expr list) =
    let dims = Stypes.dims (Elab.data_exn em name).Elab.d_ty in
    List.iteri
      (fun i sub ->
        match List.nth_opt dims i with
        | None -> ()
        | Some (sr : Stypes.subrange) -> (
          match
            ( Linexpr.of_expr sub,
              Linexpr.of_expr sr.Stypes.sr_lo,
              Linexpr.of_expr sr.Stypes.sr_hi )
          with
          | Some l, Some dlo, Some dhi ->
            let prove g = Linexpr.prove_nonneg ~assumptions:facts g in
            let too_high =
              (* max(sub) >= hi + 1 for some iteration *)
              prove
                (Linexpr.add_const (-1) (Linexpr.sub (extreme ~hi:true env l) dhi))
            in
            let too_low =
              prove
                (Linexpr.add_const (-1) (Linexpr.sub dlo (extreme ~hi:false env l)))
            in
            if too_high || too_low then
              diags :=
                Diag.diag Diag.Out_of_bounds q.Elab.q_loc
                  "subscript %d of %s in %s (%s) can %s the declared range \
                   %s .. %s"
                  (i + 1) name q.Elab.q_name
                  (Ps_lang.Pretty.expr_to_string sub)
                  (if too_high then "exceed" else "fall below")
                  (Ps_lang.Pretty.expr_to_string sr.Stypes.sr_lo)
                  (Ps_lang.Pretty.expr_to_string sr.Stypes.sr_hi)
                :: !diags
          | _ -> ()))
      subs
  in
  let rec walk q env (e : Ast.expr) =
    match e.Ast.e with
    | Ast.Int _ | Ast.Real _ | Ast.Bool _ | Ast.Var _ -> ()
    | Ast.Index ({ Ast.e = Ast.Var x; _ }, subs) when is_data x ->
      check_ref q env x subs;
      List.iter (walk q env) subs
    | Ast.Index (b, subs) ->
      walk q env b;
      List.iter (walk q env) subs
    | Ast.Field (b, _) -> walk q env b
    | Ast.Call (_, args) -> List.iter (walk q env) args
    | Ast.Unop (_, a) -> walk q env a
    | Ast.Binop (_, a, b) ->
      walk q env a;
      walk q env b
    | Ast.If (c, t, f) ->
      walk q env c;
      walk q (refine env c true) t;
      walk q (refine env c false) f
  in
  List.iter
    (fun (q : Elab.eq) ->
      let env =
        List.filter_map
          (fun (ix : Elab.index) ->
            match
              ( Linexpr.of_expr ix.Elab.ix_range.Stypes.sr_lo,
                Linexpr.of_expr ix.Elab.ix_range.Stypes.sr_hi )
            with
            | Some b_lo, Some b_hi -> Some (ix.Elab.ix_var, { b_lo; b_hi })
            | _ -> None)
          q.Elab.q_indices
      in
      walk q env q.Elab.q_rhs)
    em.Elab.em_eqs;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Virtualization failures (§3.4), with the failing rule. *)

let virtualization (r : Schedule.result) : Diag.t list =
  let g = r.Schedule.r_graph in
  let em = g.g_module in
  (* The outermost MSCC each node landed in, by display name. *)
  let component_of =
    let tbl = Hashtbl.create 16 in
    List.iteri
      (fun i (ct : Schedule.component_trace) ->
        List.iter (fun n -> Hashtbl.replace tbl n i) ct.Schedule.ct_nodes)
      r.Schedule.r_components;
    fun name -> Hashtbl.find_opt tbl name
  in
  let windowed d p =
    List.exists
      (fun (w : Schedule.window) ->
        String.equal w.Schedule.w_data d && w.Schedule.w_dim = p)
      r.Schedule.r_windows
  in
  let windowed_elsewhere d p =
    List.exists
      (fun (w : Schedule.window) ->
        String.equal w.Schedule.w_data d && w.Schedule.w_dim <> p)
      r.Schedule.r_windows
  in
  let diags = ref [] in
  List.iter
    (fun (d : Elab.data) ->
      if d.Elab.d_kind = Elab.Local then begin
        let name = d.Elab.d_name in
        let defines_d q =
          List.exists
            (fun e ->
              match e.e_kind, e.e_src, e.e_dst with
              | Def, Eq q', Data n -> q' = q && String.equal n name
              | _ -> false)
            (Dgraph.edges g)
        in
        let uses =
          List.filter
            (fun e ->
              match e.e_kind, e.e_src with
              | Use, Data n -> String.equal n name
              | _ -> false)
            (Dgraph.edges g)
        in
        let ndims = List.length (Stypes.dims d.Elab.d_ty) in
        for p = 0 to ndims - 1 do
          (* Dimension [p] is a virtualization candidate when some
             self-dependence is carried exactly there: a negative offset
             at [p] with identity subscripts on every outer dimension
             (an outer-carried dependence leaves [p] a plain spatial
             dimension that must stay fully allocated). *)
          let identity_before e =
            let ok = ref true in
            for k = 0 to p - 1 do
              (match e.e_subs.(k) with
               | Label.Affine { offset = 0; _ } -> ()
               | _ -> ok := false)
            done;
            !ok
          in
          let recursive =
            List.exists
              (fun e ->
                match e.e_dst with
                | Eq q when defines_d q -> (
                  Array.length e.e_subs > p
                  && identity_before e
                  &&
                  match e.e_subs.(p) with
                  | Label.Affine { offset; _ } -> offset < 0
                  | _ -> false)
                | _ -> false)
              uses
          in
          if recursive && not (windowed name p) then begin
            let inside e =
              match e.e_dst with
              | Eq q -> (
                match
                  ( component_of (Dgraph.node_name g (Eq q)),
                    component_of name )
                with
                | Some a, Some b -> a = b
                | _ -> false)
              | Data _ -> false
            in
            let reason =
              List.find_map
                (fun e ->
                  if Array.length e.e_subs <= p then None
                  else
                    match e.e_subs.(p), inside e with
                    | Label.Affine { offset; _ }, true when offset > 0 ->
                      Some
                        (Printf.sprintf
                           "a forward reference (class \"%s\") needs a plane \
                            not yet computed"
                           (Label.class_name e.e_subs.(p)))
                    | (Label.Slice | Label.Opaque | Label.Const_low
                      | Label.Const_mid _), true ->
                      Some
                        (Printf.sprintf
                           "a reference of class \"%s\" inside its component \
                            is not a window access"
                           (Label.class_name e.e_subs.(p)))
                    | (Label.Affine _ | Label.Slice | Label.Opaque
                      | Label.Const_low | Label.Const_mid _), false ->
                      Some
                        (Printf.sprintf
                           "it is read outside its component at other than \
                            the final plane (class \"%s\")"
                           (Label.class_name e.e_subs.(p)))
                    | _ -> None)
                uses
            in
            (* Write side (mirrors [Schedule.analyze_virtual]): a window
               is also refused when another component writes the array
               sweeping this dimension, since those writes would be
               clobbered before their readers run.  Boundary planes
               (constant subscripts near the lower bound) are the
               allowed exception. *)
            let write_reason =
              List.find_map
                (fun e ->
                  match e.e_kind, e.e_dst with
                  | Def, Data n
                    when String.equal n name && Array.length e.e_subs > p -> (
                    let inside_def =
                      match e.e_src with
                      | Eq q -> (
                        match
                          ( component_of (Dgraph.node_name g (Eq q)),
                            component_of name )
                        with
                        | Some a, Some b -> a = b
                        | _ -> false)
                      | Data _ -> false
                    in
                    match e.e_subs.(p), inside_def with
                    | Label.Affine { offset = 0; _ }, true -> None
                    | (Label.Const_low | Label.Const_mid _), false -> None
                    | sub, false ->
                      Some
                        (Printf.sprintf
                           "it is written outside its component (class \
                            \"%s\"), which would be clobbered by the window"
                           (Label.class_name sub))
                    | sub, true ->
                      Some
                        (Printf.sprintf
                           "a write of class \"%s\" inside its component \
                            does not march with the loop"
                           (Label.class_name sub)))
                  | _ -> None)
                (Dgraph.edges g)
            in
            match (match reason with Some _ -> reason | None -> write_reason) with
            | Some why ->
              diags :=
                Diag.diag Diag.No_virtualization d.Elab.d_loc
                  "dimension %d of %s is recursively indexed but stays fully \
                   allocated: %s"
                  (p + 1) name why
                :: !diags
            | None ->
              if windowed_elsewhere name p then
                diags :=
                  Diag.diag Diag.No_virtualization d.Elab.d_loc
                    "dimension %d of %s stays fully allocated: the \
                     at-most-one-window rule keeps only the outermost \
                     scheduled dimension virtual"
                    (p + 1) name
                  :: !diags
          end
        done
      end)
    em.Elab.em_locals;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* DOALLs too small to parallelize (W120).

   The runtime pool never wakes parked workers for a job whose span is
   below [Pool.wake_threshold] — waking costs more than the loop — so a
   scheduled DOALL with a provably constant trip count under that bound
   executes on the calling domain alone.  The profiler observes this
   dynamically ("parallel loop ran sequentially"); this lint catches it
   statically.  Only the outermost DOALL of a nest is flagged: inner
   DOALLs run sequentially inside each worker's chunk by design. *)

let wake_check (em : Elab.emodule) (r : Schedule.result) : Diag.t list =
  let module Fc = Ps_sched.Flowchart in
  let const_of e =
    match Linexpr.of_expr e with
    | Some l when l.Linexpr.terms = [] -> Some l.Linexpr.const
    | _ -> None
  in
  let rec first_eq_loc (descs : Fc.t) =
    List.find_map
      (fun d ->
        match d with
        | Fc.D_eq { Fc.er_id; _ } -> Some (Elab.eq_exn em er_id).Elab.q_loc
        | Fc.D_loop l -> first_eq_loc l.Fc.lp_body
        | Fc.D_solve s -> first_eq_loc s.Fc.sv_body
        | Fc.D_data _ -> None)
      descs
  in
  let diags = ref [] in
  let rec walk ~inside_par (descs : Fc.t) =
    List.iter
      (fun d ->
        match d with
        | Fc.D_loop l ->
          let is_par = l.Fc.lp_kind = Fc.Parallel in
          (if is_par && not inside_par then
             match
               ( const_of l.Fc.lp_range.Stypes.sr_lo,
                 const_of l.Fc.lp_range.Stypes.sr_hi )
             with
             | Some lo, Some hi ->
               let trip = hi - lo + 1 in
               if trip > 0 && trip < Ps_runtime.Pool.wake_threshold then
                 let loc =
                   Option.value (first_eq_loc l.Fc.lp_body)
                     ~default:em.Elab.em_ast.Ast.m_loc
                 in
                 diags :=
                   Diag.diag Diag.Sequential_doall loc
                     "DOALL %s has a constant trip count of %d, below the \
                      pool's wake threshold (%d): it will not wake parked \
                      workers and runs effectively sequentially"
                     l.Fc.lp_var trip Ps_runtime.Pool.wake_threshold
                   :: !diags
             | _ -> ());
          walk ~inside_par:(inside_par || is_par) l.Fc.lp_body
        | Fc.D_solve s -> walk ~inside_par s.Fc.sv_body
        | Fc.D_data _ | Fc.D_eq _ -> ())
      descs
  in
  walk ~inside_par:false r.Schedule.r_flowchart;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Distance-analysis lints (W115/W116).

   W115 guards the classifier against demotion drift: a subscript whose
   label is [Opaque] even though it is a linear form in exactly one
   equation index — the class the symbolic distance solver handles — is
   reported with the inferred form, so a lost classification shows up as
   a lint instead of a silently sequential schedule.  W116 flags a
   redundant inspector: when the declared ranges already prove the
   inspected distance positive, the runtime test always passes and the
   partition could be decided statically. *)

let opaque_classifiable (em : Elab.emodule) : Diag.t list =
  let is_data n = Elab.find_data em n <> None in
  let diags = ref [] in
  let check_ref (q : Elab.eq) name (subs : Ast.expr list) =
    let dims = Stypes.dims (Elab.data_exn em name).Elab.d_ty in
    let is_index v =
      List.exists
        (fun (ix : Elab.index) -> String.equal ix.Elab.ix_var v)
        q.Elab.q_indices
    in
    List.iteri
      (fun i sub ->
        match List.nth_opt dims i with
        | None -> ()
        | Some sr -> (
          match Label.classify q sr sub with
          | Label.Opaque -> (
            match Linexpr.of_expr sub with
            | Some l
              when List.length
                     (List.filter (fun (v, _) -> is_index v) l.Linexpr.terms)
                   = 1 ->
              diags :=
                Diag.diag Diag.Opaque_classifiable q.Elab.q_loc
                  "subscript %d of %s in %s is demoted to \"other\", but the \
                   distance solver could classify its linear form %a"
                  (i + 1) name q.Elab.q_name Linexpr.pp l
                :: !diags
            | _ -> ())
          | _ -> ()))
      subs
  in
  let rec walk q (e : Ast.expr) =
    match e.Ast.e with
    | Ast.Int _ | Ast.Real _ | Ast.Bool _ | Ast.Var _ -> ()
    | Ast.Index ({ Ast.e = Ast.Var x; _ }, subs) when is_data x ->
      check_ref q x subs;
      List.iter (walk q) subs
    | Ast.Index (b, subs) ->
      walk q b;
      List.iter (walk q) subs
    | Ast.Field (b, _) -> walk q b
    | Ast.Call (_, args) -> List.iter (walk q) args
    | Ast.Unop (_, a) -> walk q a
    | Ast.Binop (_, a, b) ->
      walk q a;
      walk q b
    | Ast.If (c, t, f) ->
      walk q c;
      walk q t;
      walk q f
  in
  List.iter (fun (q : Elab.eq) -> walk q q.Elab.q_rhs) em.Elab.em_eqs;
  List.rev !diags

let inspector_static (em : Elab.emodule) (r : Schedule.result) : Diag.t list =
  let module Fc = Ps_sched.Flowchart in
  let facts =
    Ps_graph.Distance.facts (List.map snd em.Elab.em_subranges)
  in
  let diags = ref [] in
  let rec walk (descs : Fc.t) =
    List.iter
      (fun d ->
        match d with
        | Fc.D_loop l ->
          (match l.Fc.lp_kind with
           | Fc.Inspected e -> (
             match Linexpr.of_expr e with
             | Some le
               when Linexpr.prove_nonneg ~assumptions:facts
                      (Linexpr.add_const (-1) le) ->
               diags :=
                 Diag.diag Diag.Inspector_static em.Elab.em_ast.Ast.m_loc
                   "loop %s inspects distance %s at run time, but the \
                    declared ranges already prove it positive: the schedule \
                    could be decided statically"
                   l.Fc.lp_var
                   (Ps_lang.Pretty.expr_to_string e)
                 :: !diags
             | _ -> ())
           | Fc.Iterative | Fc.Parallel | Fc.Grouped _ -> ());
          walk l.Fc.lp_body
        | Fc.D_solve s -> walk s.Fc.sv_body
        | Fc.D_data _ | Fc.D_eq _ -> ())
      descs
  in
  walk r.Schedule.r_flowchart;
  List.rev !diags

(* ------------------------------------------------------------------ *)

let module_ (em : Elab.emodule) : Diag.t list =
  let g = Ps_graph.Build.build em in
  let sched =
    match Schedule.schedule_graph_of g with
    | r -> virtualization r @ wake_check em r @ inspector_static em r
    | exception Schedule.Unschedulable { reason; component } ->
      [ Diag.diag Diag.Unschedulable em.Elab.em_ast.Ast.m_loc
          "module %s cannot be scheduled: %s (component {%s}); the \
           hyperplane transformation of sec. 4 may apply"
          em.Elab.em_name reason
          (String.concat ", " component) ]
  in
  usage g @ subscripts em @ opaque_classifiable em @ sched
