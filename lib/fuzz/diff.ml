(* The differential oracle: one generated (or corpus) program, run
   through every execution path the compiler offers, outputs compared
   element-wise against the sequential reference.

   All interpreter paths must agree bit for bit — collapse, stealing and
   the hyperplane transformation reorder iterations but never the
   operations inside one element's expression.  The C path is compared
   through the emitted main()'s checksums (same row-major order, same
   IEEE arithmetic), with a tiny relative tolerance as a guard against
   libm differences.

   A path that traps at runtime agrees with a reference that also traps
   (the trap itself is defined semantics: the interpreter and the
   emitted C both stop on zero divisors); a trap on one side only is a
   mismatch. *)

type path =
  | Seq        (* plain sequential interpreter: the reference *)
  | Nowin      (* full storage, no virtual windows *)
  | Nocheck    (* unchecked subscript fast path *)
  | Passes     (* sink + fuse + trim *)
  | Steal      (* work-stealing pool *)
  | Collapse   (* pooled, DOALL bands collapsed, bounds trimmed *)
  | Group      (* schedule translation-validated, then pooled: DOGROUP
                  loops run one residue class per task *)
  | Inspector  (* every DOGROUP(g) demoted to a DOINSPECT of the
                  constant g, so the runtime inspector re-derives the
                  partition *)
  | Hyper      (* hyperplane-transformed module, sequential *)
  | Hyper_par  (* hyperplane-transformed, pooled + collapsed *)
  | Auto       (* pooled, nests steered by the static cost model's
                  per-loop policy table *)
  | Cc         (* emitted C, compiled and executed *)
  | Server     (* a `psc serve --stdio` subprocess, outputs over the wire *)

let all_paths =
  [ Seq; Nowin; Nocheck; Passes; Steal; Collapse; Group; Inspector; Hyper;
    Hyper_par; Auto; Cc; Server ]

let path_name = function
  | Seq -> "seq"
  | Nowin -> "nowin"
  | Nocheck -> "nocheck"
  | Passes -> "passes"
  | Steal -> "steal"
  | Collapse -> "collapse"
  | Group -> "group"
  | Inspector -> "inspector"
  | Hyper -> "hyper"
  | Hyper_par -> "hyper-par"
  | Auto -> "auto"
  | Cc -> "c"
  | Server -> "server"

let path_of_name = function
  | "seq" -> Some Seq
  | "nowin" -> Some Nowin
  | "nocheck" -> Some Nocheck
  | "passes" -> Some Passes
  | "steal" -> Some Steal
  | "collapse" -> Some Collapse
  | "group" -> Some Group
  | "inspector" | "inspect" -> Some Inspector
  | "hyper" -> Some Hyper
  | "hyper-par" -> Some Hyper_par
  | "auto" -> Some Auto
  | "c" | "cc" -> Some Cc
  | "server" -> Some Server
  | _ -> None

type outcome =
  | Outputs of (string * Psc.Value.value) list
  | Checksums of (string * float) list  (* the C path reports sums only *)
  | Trap of string                      (* defined runtime trap *)
  | Skip of string                      (* path not applicable here *)

type case_result = {
  cr_outcomes : (path * outcome) list;  (* reference first *)
  cr_verdict : string option;           (* [None] = every path agreed *)
}

let have_cc =
  lazy (Sys.command "command -v cc > /dev/null 2>&1" = 0)

(* ------------------------------------------------------------------ *)
(* Generic deterministic inputs for corpus programs (mirrors both the
   emitted main()'s fill and the generator's [Gen.inputs]): real arrays
   get the shared pseudo-random fill in row-major order; int and bool
   arrays get the same truncation the C harness applies — zero. *)

let default_inputs (em : Psc.Elab.emodule) ~(scalars : (string * int) list) :
    (string * Psc.Value.value) list =
  List.map
    (fun (d : Psc.Elab.data) ->
      let name = d.Psc.Elab.d_name in
      match Psc.Stypes.dims d.Psc.Elab.d_ty with
      | [] -> (
        match List.assoc_opt name scalars with
        | Some v -> (name, Psc.Exec.scalar_int v)
        | None -> Psc.error "fuzz: no value for scalar input %s" name)
      | dims ->
        let env v = List.assoc_opt v scalars in
        let bounds =
          List.map
            (fun (sr : Psc.Stypes.subrange) ->
              let ev e =
                match Psc.Linexpr.of_expr e with
                | Some le -> Psc.Linexpr.eval env le
                | None -> Psc.error "fuzz: input %s has a nonlinear bound" name
              in
              (ev sr.Psc.Stypes.sr_lo, ev sr.Psc.Stypes.sr_hi))
            dims
        in
        let kind = Psc.Value.kind_of_ty (Psc.Stypes.elem_ty d.Psc.Elab.d_ty) in
        (match kind with
         | Psc.Value.KReal ->
           let exts = List.map (fun (lo, hi) -> hi - lo + 1) bounds in
           let strides =
             let rec go = function
               | [] -> []
               | _ :: rest as l -> List.fold_left ( * ) 1 (List.tl l) :: go rest
             in
             go exts
           in
           ( name,
             Psc.Exec.array_real ~dims:bounds (fun ix ->
                 let flat = ref 0 in
                 List.iteri
                   (fun p st -> flat := !flat + ((ix.(p) - fst (List.nth bounds p)) * st))
                   strides;
                 Ps_models.Models.fill_value !flat) )
         | Psc.Value.KInt -> (name, Psc.Exec.array_int ~dims:bounds (fun _ -> 0))
         | _ -> Psc.error "fuzz: unsupported input element type for %s" name))
    em.Psc.Elab.em_params

(* ------------------------------------------------------------------ *)
(* Element-wise comparison *)

let eq_float a b = a = b || Float.compare a b = 0

let eq_scalar (a : Psc.Value.scalar) (b : Psc.Value.scalar) =
  match (a, b) with
  | Psc.Value.Sc_int x, Psc.Value.Sc_int y -> x = y
  | Psc.Value.Sc_real x, Psc.Value.Sc_real y -> eq_float x y
  | Psc.Value.Sc_bool x, Psc.Value.Sc_bool y -> x = y
  | Psc.Value.Sc_enum (_, x), Psc.Value.Sc_enum (_, y) -> x = y
  | _ -> Psc.Value.equal_scalar a b

let pp_sc (s : Psc.Value.scalar) =
  match s with
  | Psc.Value.Sc_int n -> string_of_int n
  | Psc.Value.Sc_real v -> Printf.sprintf "%.17g" v
  | Psc.Value.Sc_bool b -> string_of_bool b
  | Psc.Value.Sc_enum (_, o) -> Printf.sprintf "enum#%d" o
  | Psc.Value.Sc_record _ -> "<record>"

(* Iterate the declared box of a slab. *)
let iter_box (s : Psc.Value.slab) f =
  let n = Psc.Value.ndims s in
  let ix = Array.map (fun di -> di.Psc.Value.di_lo) s.Psc.Value.s_dims in
  if Array.exists (fun di -> di.Psc.Value.di_extent <= 0) s.Psc.Value.s_dims then ()
  else
    let rec advance p =
      if p < 0 then false
      else begin
        let di = s.Psc.Value.s_dims.(p) in
        ix.(p) <- ix.(p) + 1;
        if ix.(p) < di.Psc.Value.di_lo + di.Psc.Value.di_extent then true
        else begin
          ix.(p) <- di.Psc.Value.di_lo;
          advance (p - 1)
        end
      end
    in
    let continue_ = ref true in
    while !continue_ do
      f ix;
      continue_ := advance (n - 1)
    done

let compare_value name (a : Psc.Value.value) (b : Psc.Value.value) : string option =
  match (a, b) with
  | Psc.Value.Vscalar x, Psc.Value.Vscalar y ->
    if eq_scalar x y then None
    else Some (Printf.sprintf "%s: %s vs %s" name (pp_sc x) (pp_sc y))
  | Psc.Value.Varray sa, Psc.Value.Varray sb ->
    let dims_of (s : Psc.Value.slab) =
      Array.to_list
        (Array.map (fun di -> (di.Psc.Value.di_lo, di.Psc.Value.di_extent)) s.Psc.Value.s_dims)
    in
    if dims_of sa <> dims_of sb then Some (Printf.sprintf "%s: shapes differ" name)
    else begin
      let bad = ref None in
      iter_box sa (fun ix ->
          if !bad = None then begin
            let x = Psc.Value.get_scalar sa ix and y = Psc.Value.get_scalar sb ix in
            if not (eq_scalar x y) then
              bad :=
                Some
                  (Printf.sprintf "%s[%s]: %s vs %s" name
                     (String.concat ", " (Array.to_list (Array.map string_of_int ix)))
                     (pp_sc x) (pp_sc y))
          end);
      !bad
    end
  | _ -> Some (Printf.sprintf "%s: scalar vs array" name)

let compare_outputs (ref_out : (string * Psc.Value.value) list)
    (out : (string * Psc.Value.value) list) : string option =
  if List.length ref_out <> List.length out then Some "different result sets"
  else
    List.fold_left
      (fun acc (name, v) ->
        match acc with
        | Some _ -> acc
        | None -> (
          match List.assoc_opt name out with
          | None -> Some (Printf.sprintf "%s: missing result" name)
          | Some v' -> compare_value name v v'))
      None ref_out

let checksum (v : Psc.Value.value) : float =
  match v with
  | Psc.Value.Vscalar s -> Psc.Value.as_float s
  | Psc.Value.Varray sl ->
    let acc = ref 0.0 in
    iter_box sl (fun ix -> acc := !acc +. Psc.Value.as_float (Psc.Value.get_scalar sl ix));
    !acc

let compare_checksums (ref_out : (string * Psc.Value.value) list)
    (sums : (string * float) list) : string option =
  List.fold_left
    (fun acc (name, c) ->
      match acc with
      | Some _ -> acc
      | None -> (
        match List.assoc_opt name ref_out with
        | None -> Some (Printf.sprintf "%s: C result unknown to the interpreter" name)
        | Some v ->
          let i = checksum v in
          let close =
            eq_float c i
            || abs_float (c -. i) <= 1e-9 *. Float.max 1.0 (Float.max (abs_float c) (abs_float i))
          in
          if close then None
          else Some (Printf.sprintf "%s: C checksum %.17g vs interpreter %.17g" name c i)))
    None sums

(* ------------------------------------------------------------------ *)
(* Path runners *)

let trapping f = try f () with Psc.Error m -> Trap m

let interp_outputs f = trapping (fun () -> Outputs (f ()).Psc.Exec.outputs)

(* The first local array the hyperplane transformation accepts. *)
let hyper_project tp =
  let em = Psc.default_module tp in
  let targets =
    List.filter_map
      (fun (d : Psc.Elab.data) ->
        if Psc.Stypes.dims d.Psc.Elab.d_ty = [] then None else Some d.Psc.Elab.d_name)
      em.Psc.Elab.em_locals
  in
  let rec try_targets = function
    | [] -> None
    | target :: rest -> (
      match Psc.hyperplane ~target tp with
      | tp', tr -> Some (tp', tr.Psc.Transform.tr_module.Psc.Ast.m_name)
      | exception Psc.Error _ -> try_targets rest)
  in
  try_targets targets

(* The group path: translation-validate the schedule first, so a
   grouped or inspected flowchart the verifier rejects (E023/E024)
   fails the case even when its outputs happen to agree, then run it
   on the pool, where DOGROUP loops execute one residue class per
   task. *)
let run_group ~pool tp ~inputs : outcome =
  match Psc.schedule (Psc.default_module tp) with
  | exception Psc.Error m -> Trap ("schedule: " ^ m)
  | sc ->
    let errors =
      List.filter
        (fun (d : Psc.Diag.t) ->
          let id = Psc.Diag.code_id d.Psc.Diag.d_code in
          id <> "" && id.[0] = 'E')
        (Psc.verify sc)
    in
    if errors <> [] then
      Trap
        (Printf.sprintf "verify: %s"
           (String.concat "; "
              (List.map (fun (d : Psc.Diag.t) -> Psc.Diag.code_id d.Psc.Diag.d_code) errors)))
    else interp_outputs (fun () -> Psc.run ~pool tp ~inputs)

(* The inspector path: demote every DOGROUP(g) in the scheduled
   flowchart to a DOINSPECT of the constant distance g.  The runtime
   inspector must re-derive the same residue-class partition the
   scheduler chose statically, so outputs stay bit-exact; a program
   with no grouped loop degrades to a plain pooled run. *)
let run_inspector ~pool tp ~inputs : outcome =
  let rec demote descs =
    List.map
      (function
        | Psc.Flowchart.D_loop l ->
          let kind =
            match l.Psc.Flowchart.lp_kind with
            | Psc.Flowchart.Grouped g ->
              Psc.Flowchart.Inspected (Psc.Linexpr.to_expr (Psc.Linexpr.of_int g))
            | k -> k
          in
          Psc.Flowchart.D_loop
            { l with
              Psc.Flowchart.lp_kind = kind;
              Psc.Flowchart.lp_body = demote l.Psc.Flowchart.lp_body }
        | d -> d)
      descs
  in
  match Psc.schedule (Psc.default_module tp) with
  | exception Psc.Error m -> Trap ("schedule: " ^ m)
  | sc -> (
    let em = Psc.default_module tp in
    let opts = { Psc.Exec.default_opts with Psc.Exec.pool = Some pool } in
    try
      Outputs
        (Psc.Exec.run ~opts
           ~flowchart:(demote sc.Psc.sc_flowchart)
           ~windows:sc.Psc.sc_windows ~prog:tp.Psc.prog em ~inputs)
          .Psc.Exec.outputs
    with
    | Psc.Error m -> Trap m
    | Psc.Eval.Runtime_error m -> Trap ("runtime error: " ^ m)
    | Psc.Value.Bounds m -> Trap ("subscript out of bounds: " ^ m))

let run_c tp ~scalars : outcome =
  if not (Lazy.force have_cc) then Skip "no C compiler"
  else (
      match Psc.emit_c_main ~scalars tp with
      | exception Psc.Error m -> Trap ("emit: " ^ m)
      | csrc ->
        let dir = Filename.temp_file "ps_fuzz" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o700;
        let cleanup () = ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))) in
        Fun.protect ~finally:cleanup @@ fun () ->
        let src = Filename.concat dir "prog.c" in
        let exe = Filename.concat dir "prog" in
        let oc = open_out src in
        output_string oc csrc;
        close_out oc;
        let rc =
          Sys.command
            (Printf.sprintf "cc -O1 -o %s %s -lm 2> %s" (Filename.quote exe)
               (Filename.quote src)
               (Filename.quote (Filename.concat dir "cc.log")))
        in
        if rc <> 0 then Trap (Printf.sprintf "cc failed (exit %d)" rc)
        else begin
          let ic = Unix.open_process_in (Filename.quote exe) in
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> ());
          let status = Unix.close_process_in ic in
          match status with
          | Unix.WEXITED 0 ->
            let parse line =
              match String.split_on_char ' ' line with
              | [ name; v ] -> (
                match float_of_string_opt v with
                | Some f -> Some (name, f)
                | None -> None)
              | _ -> None
            in
            let sums = List.filter_map parse (List.rev !lines) in
            if sums = [] then Trap "C binary produced no checksums" else Checksums sums
          | Unix.WEXITED n -> Trap (Printf.sprintf "C binary exited with %d" n)
          | Unix.WSIGNALED n | Unix.WSTOPPED n ->
            Trap (Printf.sprintf "C binary killed by signal %d" n)
        end)

(* ------------------------------------------------------------------ *)
(* The server path: run the program through a `psc serve --stdio`
   subprocess and rebuild the outputs from the wire.  The server
   serializes reals as "%.17g" strings, so the round trip is bit-exact
   and the usual element-wise judge applies unchanged.  One subprocess
   is shared by the whole campaign (spawned lazily, respawned if it
   dies) — the point is to exercise the service's cache and protocol on
   hundreds of programs, not to pay a process start per case. *)

let server_exe () =
  match Sys.getenv_opt "PSC_SERVE_EXE" with
  | Some p -> if Sys.file_exists p then Some p else None
  | None ->
    let self = Sys.executable_name in
    let is_psc =
      let base = Filename.basename self in
      String.length base >= 8 && String.sub base 0 8 = "psc_main"
    in
    List.find_opt Sys.file_exists
      ((if is_psc then [ self ] else [])
      @ [ "_build/default/bin/psc_main.exe"; "../bin/psc_main.exe";
          "bin/psc_main.exe" ])

let server_proc : (in_channel * out_channel) option ref = ref None
let server_mutex = Mutex.create ()
let server_cleanup_registered = ref false

let stop_server () =
  match !server_proc with
  | None -> ()
  | Some ((_, oc) as p) ->
    server_proc := None;
    (try
       output_string oc "{\"op\":\"shutdown\"}\n";
       flush oc
     with Sys_error _ -> ());
    ignore (Unix.close_process p)

let acquire_server () =
  match !server_proc with
  | Some p -> Some p
  | None -> (
    match server_exe () with
    | None -> None
    | Some exe ->
      let p =
        Unix.open_process (Filename.quote exe ^ " serve --stdio 2>/dev/null")
      in
      server_proc := Some p;
      if not !server_cleanup_registered then begin
        server_cleanup_registered := true;
        at_exit stop_server
      end;
      Some p)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

exception Unsupported_output of string

module Json = Psc.Trace.Json

(* Rebuild a value from the response.  Array values come in row-major
   declared-box order; the flat index is recomputed per point so the
   rebuild does not depend on the builder's own visit order. *)
let value_of_json (j : Json.t) : string * Psc.Value.value =
  let str name =
    match Json.member name j with Some (Json.Str s) -> Some s | _ -> None
  in
  let name = match str "name" with Some n -> n | None -> raise (Unsupported_output "nameless output") in
  let elem = Option.value (str "elem") ~default:"?" in
  match str "kind" with
  | Some "scalar" -> (
    let v = match str "value" with Some v -> v | None -> raise (Unsupported_output name) in
    match elem with
    | "int" -> (name, Psc.Exec.scalar_int (int_of_string v))
    | "real" -> (name, Psc.Exec.scalar_real (float_of_string v))
    | "bool" -> (name, Psc.Exec.scalar_bool (bool_of_string v))
    | "enum" ->
      let ty = Option.value (str "ty") ~default:"" in
      (name, Psc.Value.Vscalar (Psc.Value.Sc_enum (ty, int_of_string v)))
    | k -> raise (Unsupported_output (name ^ ": scalar elem " ^ k)))
  | Some "array" ->
    let dims =
      match Json.member "dims" j with
      | Some (Json.Arr ds) ->
        List.map
          (function
            | Json.Arr [ Json.Num lo; Json.Num hi ] ->
              (int_of_float lo, int_of_float hi)
            | _ -> raise (Unsupported_output (name ^ ": bad dims")))
          ds
      | _ -> raise (Unsupported_output (name ^ ": bad dims"))
    in
    let values =
      match Json.member "values" j with
      | Some (Json.Arr vs) ->
        Array.of_list
          (List.map
             (function
               | Json.Str s -> s
               | _ -> raise (Unsupported_output (name ^ ": bad value")))
             vs)
      | _ -> raise (Unsupported_output (name ^ ": bad values"))
    in
    let exts = List.map (fun (lo, hi) -> hi - lo + 1) dims in
    let strides =
      let rec go = function
        | [] -> []
        | _ :: rest as l -> List.fold_left ( * ) 1 (List.tl l) :: go rest
      in
      go exts
    in
    let los = List.map fst dims in
    let flat ix =
      let f = ref 0 in
      List.iteri (fun p st -> f := !f + ((ix.(p) - List.nth los p) * st)) strides;
      !f
    in
    (match elem with
     | "real" ->
       (name, Psc.Exec.array_real ~dims (fun ix -> float_of_string values.(flat ix)))
     | "int" ->
       (name, Psc.Exec.array_int ~dims (fun ix -> int_of_string values.(flat ix)))
     | k -> raise (Unsupported_output (name ^ ": array elem " ^ k)))
  | _ -> raise (Unsupported_output name)

(* Each request carries a fresh trace_id; the protocol promises every
   reply echoes it, so a reply without it is a failure in its own
   right, not just a missing nicety. *)
let server_trace_seq = ref 0

let run_server tp ~scalars : outcome =
  Mutex.lock server_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock server_mutex) @@ fun () ->
  match acquire_server () with
  | None -> Skip "psc executable not found"
  | Some (ic, oc) -> (
    let src = Psc.Pretty.program_to_string tp.Psc.ast in
    incr server_trace_seq;
    let trace_id = Printf.sprintf "fz%d" !server_trace_seq in
    let req =
      Printf.sprintf
        "{\"id\":0,\"op\":\"run\",\"trace_id\":\"%s\",\"source\":\"%s\",\"scalars\":{%s}}"
        trace_id (json_escape src)
        (String.concat ","
           (List.map (fun (n, v) -> Printf.sprintf "\"%s\":%d" (json_escape n) v) scalars))
    in
    match
      output_string oc req;
      output_char oc '\n';
      flush oc;
      input_line ic
    with
    | exception (End_of_file | Sys_error _) ->
      stop_server ();
      Trap "server: connection lost"
    | line -> (
      match Json.parse line with
      | exception Json.Parse_error m -> Trap ("server: bad response: " ^ m)
      | resp when Json.member "trace_id" resp <> Some (Json.Str trace_id) ->
        Trap
          (Printf.sprintf "server: reply did not echo trace_id %S" trace_id)
      | resp -> (
        match Json.member "ok" resp with
        | Some (Json.Bool true) -> (
          match Json.member "outputs" resp with
          | Some (Json.Arr items) -> (
            try Outputs (List.map value_of_json items)
            with Unsupported_output m -> Skip ("server: unsupported output " ^ m))
          | _ -> Trap "server: response has no outputs")
        | _ -> (
          match Json.member "error" resp with
          | Some (Json.Str m) -> Trap m
          | _ -> Trap ("server: request failed: " ^ line)))))

let run_path ~pool tp ~inputs ~scalars (p : path) : outcome =
  match p with
  | Seq -> interp_outputs (fun () -> Psc.run tp ~inputs)
  | Nowin -> interp_outputs (fun () -> Psc.run ~use_windows:false tp ~inputs)
  | Nocheck -> interp_outputs (fun () -> Psc.run ~check:false tp ~inputs)
  | Passes -> interp_outputs (fun () -> Psc.run ~sink:true ~fuse:true ~trim:true tp ~inputs)
  | Steal -> interp_outputs (fun () -> Psc.run ~pool tp ~inputs)
  | Collapse -> interp_outputs (fun () -> Psc.run ~pool ~collapse:true ~trim:true tp ~inputs)
  | Group -> run_group ~pool tp ~inputs
  | Inspector -> run_inspector ~pool tp ~inputs
  | Hyper -> (
    match hyper_project tp with
    | None -> Skip "hyperplane not applicable"
    | Some (tp', name) -> interp_outputs (fun () -> Psc.run ~name ~sink:true tp' ~inputs)
    | exception Psc.Error m -> Trap m)
  | Hyper_par -> (
    match hyper_project tp with
    | None -> Skip "hyperplane not applicable"
    | Some (tp', name) ->
      interp_outputs (fun () ->
          Psc.run ~name ~sink:true ~trim:true ~collapse:true ~pool tp' ~inputs)
    | exception Psc.Error m -> Trap m)
  | Auto ->
    (* The policy table steers chunking / stealing / flattening but must
       never change results: compare bit for bit against the reference.
       Sized to the fuzz pool so decisions actually fork here, whatever
       the host looks like. *)
    interp_outputs (fun () ->
        let table =
          Psc.static_policy ~cores:(Psc.Pool.size pool) tp ~env:scalars
        in
        Psc.run ~pool ~policy:table tp ~inputs)
  | Cc -> run_c tp ~scalars
  | Server -> run_server tp ~scalars

(* ------------------------------------------------------------------ *)

let judge (reference : outcome) (p : path) (o : outcome) : string option =
  match (reference, o) with
  | _, Skip _ -> None
  | Trap _, Trap _ -> None  (* both paths stop on the same defined trap *)
  | Trap m, _ -> Some (Printf.sprintf "%s: reference trapped (%s) but path did not" (path_name p) m)
  | Outputs _, Trap m -> Some (Printf.sprintf "%s: trapped: %s" (path_name p) m)
  | Outputs r, Outputs out -> (
    match compare_outputs r out with
    | None -> None
    | Some m -> Some (Printf.sprintf "%s: %s" (path_name p) m))
  | Outputs r, Checksums sums -> (
    match compare_checksums r sums with
    | None -> None
    | Some m -> Some (Printf.sprintf "%s: %s" (path_name p) m))
  | (Checksums _ | Skip _), _ -> Some (Printf.sprintf "%s: unusable reference" (path_name p))

let check ?(pool_size = 4) ~(paths : path list) tp ~inputs ~scalars : case_result =
  Psc.Pool.with_pool ~steal:true pool_size @@ fun pool ->
  let reference = run_path ~pool tp ~inputs ~scalars Seq in
  let others = List.filter (fun p -> p <> Seq) paths in
  let outcomes =
    List.map (fun p -> (p, run_path ~pool tp ~inputs ~scalars p)) others
  in
  let verdict =
    List.fold_left
      (fun acc (p, o) -> match acc with Some _ -> acc | None -> judge reference p o)
      None outcomes
  in
  { cr_outcomes = (Seq, reference) :: outcomes; cr_verdict = verdict }

(* Run one source text end to end: load, derive inputs, differentiate.
   Loading or scheduling errors are reported as a verdict of their own —
   a generated program must always compile. *)
let check_source ?(pool_size = 4) ~paths ~scalars src : case_result =
  match Psc.load_string src with
  | exception Psc.Error m ->
    { cr_outcomes = []; cr_verdict = Some ("load: " ^ m) }
  | tp -> (
    let em = Psc.default_module tp in
    match default_inputs em ~scalars with
    | exception Psc.Error m -> { cr_outcomes = []; cr_verdict = Some ("inputs: " ^ m) }
    | inputs -> check ~pool_size ~paths tp ~inputs ~scalars)

let check_spec ?(pool_size = 4) ~paths (spec : Gen.spec) : case_result =
  let src = Gen.render spec in
  match Psc.load_string src with
  | exception Psc.Error m ->
    { cr_outcomes = []; cr_verdict = Some ("load: " ^ m) }
  | tp -> check ~pool_size ~paths tp ~inputs:(Gen.inputs spec) ~scalars:(Gen.scalars spec)
