(** Campaign driver: generate, differentiate, shrink, archive.

    Failures are minimized and written to the corpus directory as
    standalone .ps files with a scalar directive comment
    ([(*! fuzz scalars: N=4 T=3 *)]), replayable without the
    generator. *)

type config = {
  fz_seed : int;
  fz_count : int;
  fz_paths : Diff.path list;
  fz_pool : int;
  fz_out_corpus : string option;
  fz_log : string -> unit;
}

type failure = {
  f_index : int;
  f_spec : Gen.spec;
  f_verdict : string;
  f_min : Gen.spec;          (** shrunk spec (equal to [f_spec] if unshrinkable) *)
  f_min_verdict : string;
  f_file : string option;    (** corpus file, when [fz_out_corpus] was set *)
}

type report = {
  r_count : int;
  r_agreed : int;
  r_hyper_applied : int;     (** cases where a hyperplane path actually ran *)
  r_cc_run : int;            (** cases where the C path compiled and ran *)
  r_failures : failure list;
}

val default_paths : Diff.path list

val campaign : config -> report

val parse_scalars : string -> (string * int) list
(** Scalar directive of a corpus source ([[]] if absent). *)

val replay_source : ?pool_size:int -> paths:Diff.path list -> string -> (unit, string) result
(** Differentiate one corpus source.  Scalars come from its directive;
    any scalar input not named there defaults to 6.  [Error] carries the
    verdict. *)

val replay_file : ?pool_size:int -> paths:Diff.path list -> string -> (unit, string) result
