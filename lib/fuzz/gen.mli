(** Seeded generation of well-typed PS modules for differential fuzzing.

    Programs are kept as structured specs so the shrinker can minimize
    failing cases (sizes, stencil reads, expression trees) and re-render
    after every step.  The grammar spans pure DOALL maps, time
    recurrences with virtual-window reads (§3.4) and current-sweep
    (seidel, hyperplane-eligible, §4) reads, a both-axes 2-D recurrence
    (wavefront), and 1-D strided recurrences whose dependence distance
    is a constant d >= 2 (group-partitioned DOGROUP) or a module
    parameter K (inspector/executor DOINSPECT). *)

(** Deterministic splitmix64 PRNG, independent of [Random]. *)
module Rng : sig
  type t

  val create : int -> t

  val int : t -> int -> int
  (** [int t n] is uniform in [0, n). *)

  val range : t -> int -> int -> int
  (** [range t lo hi] is uniform in [lo, hi], inclusive. *)

  val bool : t -> bool

  val chance : t -> int -> bool
  (** [chance t pct] is true [pct]%% of the time. *)

  val pick : t -> 'a list -> 'a

  val split : int -> int -> t
  (** [split seed i] is an independent stream for case [i] of campaign
      seed [seed]. *)
end

type elem = E_real | E_int

type axis = { ax_lo : int; ax_hi_off : int }  (** range: lo .. N + hi_off *)

type read = {
  rd_plane : int;        (** 0 = current sweep (seidel), p>0 = K-p *)
  rd_offs : int array;   (** relative subscript per space axis *)
}

type ex =
  | Lit_i of int
  | Lit_r of float
  | Atom of string
  | Read of int
  | Bin of string * ex * ex
  | Call1 of string * ex
  | Call2 of string * ex * ex
  | Neg of ex
  | Ite of string * ex * ex * ex * ex

type out_style = Out_slice | Out_identity | Out_xform of ex

type tspec = {
  t_order : int;
  t_seidel : bool;
  t_axes : axis list;
  t_reads : read list;
  t_base_slice : bool;
  t_bases : ex list;
  t_rec : ex;
  t_out : out_style;
  t_rider : bool;
}

type mspec = { m_axes : axis list; m_e : ex }

type lspec = {
  l_reads : bool array;
  l_base_row : ex;
  l_base_col : ex;
  l_rec : ex;
  l_out_array : bool;
}

type stride_kind =
  | St_const of int         (** C[Rest - d], constant d >= 2: DOGROUP(d) *)
  | St_param of int         (** C[Rest - K], runtime value of K: DOINSPECT(K) *)

type sspec = {
  st_kind : stride_kind;
  st_double : bool;         (** also read C[Rest - 2d] (constant strides only) *)
  st_wide : bool;           (** the combine reads Inp[Rest + Rest] (linear class) *)
  st_base : ex;
  st_rec : ex;
  st_out_id : bool;         (** Out[Ipos] = C[Ipos] vs whole-array Out = C *)
}

type shape = Map of mspec | Time of tspec | Lcs of lspec | Stride of sspec

type spec = { sp_elem : elem; sp_n : int; sp_t : int; sp_shape : shape }

val generate : Rng.t -> spec
(** Draw a random spec.  Every generated spec loads, schedules and runs
    without trapping: int values are bounded by construction, divisors
    are provably nonzero, and offset stencil reads are boundary-guarded. *)

val render : spec -> string
(** PS source text of the spec (module name [Fz]). *)

val inputs : spec -> (string * Ps_interp.Value.value) list
(** Interpreter inputs: [Inp] filled row-major with the deterministic
    generator shared with the emitted C main(), plus the scalars. *)

val scalars : spec -> (string * int) list
(** Scalar inputs, for [emit_c_main]. *)

val describe : spec -> string
(** One-line label for logs. *)

val shrink : spec -> spec list
(** One-step shrink candidates, most aggressive first.  Candidates are
    complete specs; callers keep one only if it still fails. *)
