(* Campaign driver: generate, differentiate, shrink, archive.

   Failures are minimized with [Shrink.minimize] and written to the
   corpus directory as standalone .ps files carrying a scalar directive
   comment, so `dune runtest` can replay them without knowing the
   generator.  Corpus files regress green once their bug is fixed. *)

type config = {
  fz_seed : int;
  fz_count : int;
  fz_paths : Diff.path list;
  fz_pool : int;
  fz_out_corpus : string option;
  fz_log : string -> unit;
}

type failure = {
  f_index : int;
  f_spec : Gen.spec;
  f_verdict : string;
  f_min : Gen.spec;
  f_min_verdict : string;
  f_file : string option;
}

type report = {
  r_count : int;
  r_agreed : int;
  r_hyper_applied : int;
  r_cc_run : int;
  r_failures : failure list;
}

let default_paths =
  [ Diff.Seq; Diff.Nowin; Diff.Nocheck; Diff.Passes; Diff.Steal; Diff.Collapse;
    Diff.Group; Diff.Inspector; Diff.Hyper; Diff.Hyper_par; Diff.Auto;
    Diff.Cc; Diff.Server ]

let is_load_verdict v =
  String.length v >= 5 && String.sub v 0 5 = "load:"

(* ------------------------------------------------------------------ *)
(* Corpus files *)

let mkdir_p dir = ignore (Sys.command (Printf.sprintf "mkdir -p %s" (Filename.quote dir)))

(* Comment-safe: no '*' so the header can never close its own comment. *)
let sanitize s = String.map (fun c -> if c = '*' || c = '(' || c = ')' then '#' else c) s

let scalars_directive scalars =
  Printf.sprintf "(*! fuzz scalars: %s *)"
    (String.concat " " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) scalars))

let corpus_entry ~seed ~index ~verdict (spec : Gen.spec) : string =
  Printf.sprintf
    "(* ps fuzz: minimized failing case.\n   seed=%d case=%d %s\n   verdict: %s *)\n%s\n%s"
    seed index
    (sanitize (Gen.describe spec))
    (sanitize verdict)
    (scalars_directive (Gen.scalars spec))
    (Gen.render spec)

(* Find the scalar directive in a corpus source, if any. *)
let parse_scalars (src : string) : (string * int) list =
  let tag = "fuzz scalars:" in
  let find_tag line =
    let n = String.length line and m = String.length tag in
    let rec go i =
      if i + m > n then None
      else if String.sub line i m = tag then Some (String.sub line (i + m) (n - i - m))
      else go (i + 1)
    in
    go 0
  in
  match List.find_map find_tag (String.split_on_char '\n' src) with
  | None -> []
  | Some rest ->
    String.split_on_char ' ' rest
    |> List.filter_map (fun tok ->
           match String.index_opt tok '=' with
           | None -> None
           | Some i -> (
             let name = String.sub tok 0 i in
             match int_of_string_opt (String.sub tok (i + 1) (String.length tok - i - 1)) with
             | Some v when name <> "" -> Some (name, v)
             | _ -> None))

(* ------------------------------------------------------------------ *)
(* Campaign *)

let campaign (cfg : config) : report =
  Option.iter mkdir_p cfg.fz_out_corpus;
  let agreed = ref 0 and hyper = ref 0 and ccs = ref 0 in
  let failures = ref [] in
  for i = 0 to cfg.fz_count - 1 do
    let rng = Gen.Rng.split cfg.fz_seed i in
    let spec = Gen.generate rng in
    let r = Diff.check_spec ~pool_size:cfg.fz_pool ~paths:cfg.fz_paths spec in
    List.iter
      (fun (p, o) ->
        match (p, o) with
        | (Diff.Hyper | Diff.Hyper_par), Diff.Outputs _ -> incr hyper
        | Diff.Cc, Diff.Checksums _ -> incr ccs
        | _ -> ())
      r.Diff.cr_outcomes;
    (match r.Diff.cr_verdict with
     | None -> incr agreed
     | Some verdict ->
       cfg.fz_log
         (Printf.sprintf "case %d (%s): MISMATCH: %s" i (Gen.describe spec) verdict);
       let load_class = is_load_verdict verdict in
       let fails s =
         match (Diff.check_spec ~pool_size:cfg.fz_pool ~paths:cfg.fz_paths s).Diff.cr_verdict with
         | None -> false
         | Some v -> is_load_verdict v = load_class
       in
       let min_spec = Shrink.minimize ~fails spec in
       let min_verdict =
         match (Diff.check_spec ~pool_size:cfg.fz_pool ~paths:cfg.fz_paths min_spec).Diff.cr_verdict with
         | Some v -> v
         | None -> verdict
       in
       let file =
         Option.map
           (fun dir ->
             let path =
               Filename.concat dir (Printf.sprintf "fz_s%d_c%d.ps" cfg.fz_seed i)
             in
             let oc = open_out path in
             output_string oc (corpus_entry ~seed:cfg.fz_seed ~index:i ~verdict:min_verdict min_spec);
             close_out oc;
             cfg.fz_log (Printf.sprintf "  minimized -> %s" path);
             path)
           cfg.fz_out_corpus
       in
       failures :=
         { f_index = i;
           f_spec = spec;
           f_verdict = verdict;
           f_min = min_spec;
           f_min_verdict = min_verdict;
           f_file = file }
         :: !failures);
    if (i + 1) mod 25 = 0 then
      cfg.fz_log
        (Printf.sprintf "%d/%d cases, %d agreed, %d mismatches" (i + 1) cfg.fz_count !agreed
           (List.length !failures))
  done;
  { r_count = cfg.fz_count;
    r_agreed = !agreed;
    r_hyper_applied = !hyper;
    r_cc_run = !ccs;
    r_failures = List.rev !failures }

(* ------------------------------------------------------------------ *)
(* Corpus replay *)

let replay_source ?(pool_size = 4) ~paths (src : string) : (unit, string) result =
  match Psc.load_string src with
  | exception Psc.Error m -> Error ("load: " ^ m)
  | tp -> (
    let em = Psc.default_module tp in
    let given = parse_scalars src in
    let scalars =
      List.filter_map
        (fun (d : Psc.Elab.data) ->
          if Psc.Stypes.dims d.Psc.Elab.d_ty = [] then
            Some
              ( d.Psc.Elab.d_name,
                match List.assoc_opt d.Psc.Elab.d_name given with
                | Some v -> v
                | None -> 6 )
          else None)
        em.Psc.Elab.em_params
    in
    match Diff.default_inputs em ~scalars with
    | exception Psc.Error m -> Error ("inputs: " ^ m)
    | inputs -> (
      let r = Diff.check ~pool_size ~paths tp ~inputs ~scalars in
      match r.Diff.cr_verdict with None -> Ok () | Some v -> Error v))

let replay_file ?pool_size ~paths path : (unit, string) result =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  replay_source ?pool_size ~paths src
