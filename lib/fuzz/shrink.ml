(* Greedy spec-level minimizer.

   [Gen.shrink] proposes one-step candidates ordered most-aggressive
   first (smaller sizes, fewer reads, simpler expressions); we take the
   first candidate that still fails and restart from it.  The total
   number of property evaluations is capped, so shrinking a pathological
   case cannot stall a campaign. *)

let minimize ?(max_evals = 250) ~(fails : Gen.spec -> bool) (spec : Gen.spec) : Gen.spec =
  let evals = ref 0 in
  let budget_fails s =
    if !evals >= max_evals then false
    else begin
      incr evals;
      fails s
    end
  in
  let rec go s =
    let rec first = function
      | [] -> None
      | c :: rest -> if budget_fails c then Some c else first rest
    in
    match first (Gen.shrink s) with
    | Some c -> go c
    | None -> s
  in
  go spec
