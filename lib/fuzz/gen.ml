(* Seeded generation of well-typed PS modules for differential fuzzing.

   A generated program is kept as a structured [spec] (not text) so the
   shrinker can minimize failing cases at the level of sizes, stencil
   reads and expression trees, re-rendering after every candidate step.

   The grammar deliberately spans the paths the harness differentiates:

   - [Map]   pure DOALL nests over 1-3 dimensions (collapse bands);
   - [Time]  a recurrence over a time axis with 0-2 space axes, reading
             1 or 2 planes back (virtual windows, sec 3.4) and, in the
             seidel variant, the current sweep (iterative space loops,
             hyperplane-eligible, sec 4);
   - [Lcs]   a 2-D recurrence carried by both axes (wavefront shape);
   - [Stride] a 1-D recurrence at constant stride d >= 2 (group-
             partitioned DOGROUP schedules) or parameter stride K
             (inspector/executor DOINSPECT schedules), optionally also
             reading the input at the linear subscript [Rest + Rest].

   Numeric discipline: every int equation is wrapped [mod 1000] and int
   multiplication only combines leaf-sized operands, so values stay far
   from 32-bit C overflow; generated divisors have the form
   [((e mod k) + k+1)], which is always >= 2, so division by zero can
   only be reached by deliberate corpus entries, never by the generator;
   real combines are near-linear with small coefficients, so values stay
   finite over every time horizon the generator can pick. *)

(* ------------------------------------------------------------------ *)
(* Deterministic PRNG (splitmix64): reproducible across runs and OCaml
   versions, independent of [Random]'s global state. *)

module Rng = struct
  type t = { mutable s : int64 }

  let create seed = { s = Int64.of_int seed }

  let next t =
    t.s <- Int64.add t.s 0x9E3779B97F4A7C15L;
    let z = t.s in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t n =
    if n <= 0 then 0
    else Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

  let range t lo hi = lo + int t (hi - lo + 1)
  let bool t = Int64.logand (next t) 1L = 1L
  let chance t pct = int t 100 < pct
  let pick t l = List.nth l (int t (List.length l))

  (* An independent stream for case [i] of campaign seed [s]. *)
  let split seed i =
    let t = create ((seed * 1_000_003) + i) in
    ignore (next t);
    t
end

(* ------------------------------------------------------------------ *)
(* Specs *)

type elem = E_real | E_int

type axis = { ax_lo : int; ax_hi_off : int }  (* range: lo .. N + hi_off *)

type read = {
  rd_plane : int;        (* 0 = current sweep (seidel), p>0 = K-p *)
  rd_offs : int array;   (* relative subscript per space axis *)
}

type ex =
  | Lit_i of int
  | Lit_r of float
  | Atom of string                    (* pre-rendered leaf: index var, N, Inp[...] *)
  | Read of int                       (* stencil read, resolved by the renderer *)
  | Bin of string * ex * ex           (* "+" "-" "*" "/" "div" "mod" *)
  | Call1 of string * ex              (* abs, sin, intpart *)
  | Call2 of string * ex * ex         (* min, max *)
  | Neg of ex
  | Ite of string * ex * ex * ex * ex (* (cmp op, lhs, rhs, then, else); cmp operands are int *)

type out_style = Out_slice | Out_identity | Out_xform of ex

type tspec = {
  t_order : int;            (* deepest plane read: 1 or 2 *)
  t_seidel : bool;          (* has current-sweep reads *)
  t_axes : axis list;       (* 0-2 space axes *)
  t_reads : read list;      (* at least one with rd_plane >= 1 *)
  t_base_slice : bool;      (* plane 1 defined as W[1] = Inp (real only) *)
  t_bases : ex list;        (* per-element base exprs for remaining planes *)
  t_rec : ex;               (* interior combine (references reads) *)
  t_out : out_style;
  t_rider : bool;           (* extra scalar result Out2 = W[T, lo...] *)
}

type mspec = { m_axes : axis list; m_e : ex }

type lspec = {
  l_reads : bool array;     (* which of L[I-1,J], L[I,J-1], L[I-1,J-1] *)
  l_base_row : ex;
  l_base_col : ex;
  l_rec : ex;
  l_out_array : bool;       (* Out = L (whole table) vs Out = L[N, N] *)
}

type stride_kind =
  | St_const of int         (* C[Rest - d], constant d >= 2: DOGROUP(d) *)
  | St_param of int         (* C[Rest - K], runtime value of K: DOINSPECT(K) *)

type sspec = {
  st_kind : stride_kind;
  st_double : bool;         (* also read C[Rest - 2d] (constant strides only) *)
  st_wide : bool;           (* the combine reads Inp[Rest + Rest] (linear class) *)
  st_base : ex;
  st_rec : ex;
  st_out_id : bool;         (* Out[Ipos] = C[Ipos] vs whole-array Out = C *)
}

type shape = Map of mspec | Time of tspec | Lcs of lspec | Stride of sspec

type spec = { sp_elem : elem; sp_n : int; sp_t : int; sp_shape : shape }

let axis_names = [| "X"; "Y"; "Z" |]

(* ------------------------------------------------------------------ *)
(* Expression generation *)

type genv = {
  g_ints : string list;   (* int-valued atoms in scope *)
  g_reals : string list;  (* real-valued atoms in scope *)
  g_nreads : int;         (* Read 0 .. g_nreads-1 available *)
  g_relem : elem;         (* element type of reads *)
}

let small_i rng = Rng.range rng (-9) 9

let small_r rng =
  float_of_int (Rng.range rng (-200) 200) /. 100.0

let coeff_r rng =
  (* Recurrence coefficients stay below 1/2 so iterated combines cannot
     blow up over the generated time horizons. *)
  float_of_int (Rng.range rng 5 45) /. 100.0

let rec gen_i rng env depth : ex =
  let leaf () =
    let opts =
      [ `Lit ]
      @ (if env.g_ints <> [] then [ `Atom; `Atom ] else [])
      @ (if env.g_nreads > 0 && env.g_relem = E_int then [ `Read; `Read ] else [])
      @ if env.g_reals <> [] then [ `Intpart ] else []
    in
    match Rng.pick rng opts with
    | `Lit -> Lit_i (small_i rng)
    | `Atom -> Atom (Rng.pick rng env.g_ints)
    | `Read -> Read (Rng.int rng env.g_nreads)
    | `Intpart ->
      Call1
        ( "intpart",
          Bin ("*", Atom (Rng.pick rng env.g_reals), Lit_r (float_of_int (Rng.range rng 2 19))) )
  in
  if depth <= 0 then leaf ()
  else
    match Rng.int rng 10 with
    | 0 | 1 -> Bin ("+", gen_i rng env (depth - 1), gen_i rng env (depth - 1))
    | 2 -> Bin ("-", gen_i rng env (depth - 1), gen_i rng env (depth - 1))
    | 3 ->
      (* Products only combine leaf-sized operands, and are re-bounded
         by mod so downstream arithmetic stays far from C int range. *)
      Bin ("mod", Bin ("*", gen_i rng env 0, gen_i rng env 0), Lit_i 1000)
    | 4 | 5 ->
      let k = Rng.range rng 2 7 in
      let guard = Bin ("+", Bin ("mod", gen_i rng env 0, Lit_i k), Lit_i (k + 1)) in
      Bin ((if Rng.bool rng then "div" else "mod"), gen_i rng env (depth - 1), guard)
    | 6 -> Call2 ((if Rng.bool rng then "min" else "max"), gen_i rng env (depth - 1), gen_i rng env (depth - 1))
    | 7 -> Call1 ("abs", gen_i rng env (depth - 1))
    | 8 -> Neg (gen_i rng env (depth - 1))
    | _ ->
      Ite
        ( Rng.pick rng [ "="; "<>"; "<"; "<="; ">"; ">=" ],
          gen_i rng env 0,
          gen_i rng env 0,
          gen_i rng env (depth - 1),
          gen_i rng env (depth - 1) )

let rec gen_r rng env depth : ex =
  let leaf () =
    let opts =
      [ `Lit ]
      @ (if env.g_reals <> [] then [ `Atom; `Atom ] else [])
      @ (if env.g_nreads > 0 && env.g_relem = E_real then [ `Read; `Read ] else [])
      @ if env.g_ints <> [] then [ `Embed ] else []
    in
    match Rng.pick rng opts with
    | `Lit -> Lit_r (small_r rng)
    | `Atom -> Atom (Rng.pick rng env.g_reals)
    | `Read -> Read (Rng.int rng env.g_nreads)
    | `Embed -> Bin ("*", Atom (Rng.pick rng env.g_ints), Lit_r (coeff_r rng))
  in
  if depth <= 0 then leaf ()
  else
    match Rng.int rng 9 with
    | 0 | 1 -> Bin ("+", gen_r rng env (depth - 1), gen_r rng env (depth - 1))
    | 2 -> Bin ("-", gen_r rng env (depth - 1), gen_r rng env (depth - 1))
    | 3 -> Bin ("*", gen_r rng env (depth - 1), Lit_r (coeff_r rng))
    | 4 -> Bin ("/", gen_r rng env (depth - 1), Lit_r (Rng.pick rng [ 2.0; 4.0; 8.0; -2.0 ]))
    | 5 -> Call2 ((if Rng.bool rng then "min" else "max"), gen_r rng env (depth - 1), gen_r rng env (depth - 1))
    | 6 -> Call1 ("abs", gen_r rng env (depth - 1))
    | 7 ->
      Ite
        ( Rng.pick rng [ "="; "<>"; "<"; "<="; ">"; ">=" ],
          (match env.g_ints with [] -> Lit_i 1 | l -> Atom (Rng.pick rng l)),
          Lit_i (small_i rng),
          gen_r rng env (depth - 1),
          gen_r rng env (depth - 1) )
    | _ -> Neg (gen_r rng env (depth - 1))

let gen_e rng env elem depth =
  match elem with E_int -> gen_i rng env depth | E_real -> gen_r rng env depth

(* A combine that provably references every read, then mixes in a random
   tail so combines differ across cases. *)
let gen_combine rng env elem nreads depth =
  let weighted i =
    match elem with
    | E_real -> Bin ("*", Read i, Lit_r (coeff_r rng))
    | E_int -> Read i
  in
  let core =
    List.fold_left
      (fun acc i -> Bin ((if elem = E_int && Rng.bool rng then "-" else "+"), acc, weighted i))
      (weighted 0)
      (List.init (nreads - 1) (fun i -> i + 1))
  in
  if Rng.chance rng 60 then Bin ("+", core, gen_e rng env elem depth) else core

(* ------------------------------------------------------------------ *)
(* Spec generation *)

let gen_axis rng = { ax_lo = Rng.int rng 2; ax_hi_off = Rng.int rng 2 }

let gen_time rng elem n =
  let sdims = Rng.pick rng [ 0; 1; 1; 1; 2; 2 ] in
  let order = if Rng.chance rng 35 then 2 else 1 in
  let seidel = sdims >= 1 && Rng.chance rng 30 in
  let axes = List.init sdims (fun _ -> gen_axis rng) in
  let t = Rng.range rng (order + 1) 6 in
  let gen_off () = Rng.range rng (-2) 2 in
  let plane_read p =
    { rd_plane = p; rd_offs = Array.init sdims (fun _ -> if sdims = 0 then 0 else gen_off ()) }
  in
  (* At least one read from the deepest plane, so [order] is honest and
     the storage window really needs order+1 planes. *)
  let nplane = Rng.range rng 1 3 in
  let reads =
    plane_read order :: List.init (nplane - 1) (fun _ -> plane_read (Rng.range rng 1 order))
  in
  let seidel_reads =
    if not seidel then []
    else
      List.init (Rng.range rng 1 2) (fun _ ->
          (* Current-sweep reads must be lexicographically earlier:
             non-positive offsets with at least one strictly negative. *)
          let offs = Array.init sdims (fun _ -> -Rng.int rng 2) in
          let k = Rng.int rng sdims in
          offs.(k) <- -Rng.range rng 1 2;
          { rd_plane = 0; rd_offs = offs })
  in
  let reads = reads @ seidel_reads in
  let ints = List.init sdims (fun i -> axis_names.(i)) @ [ "K"; "N" ] in
  let inp_atom =
    if sdims = 0 then Printf.sprintf "Inp[%d]" (Rng.int rng 4)
    else
      Printf.sprintf "Inp[%s]"
        (String.concat ", " (List.init sdims (fun i -> axis_names.(i))))
  in
  let env = { g_ints = ints; g_reals = [ inp_atom ]; g_nreads = List.length reads; g_relem = elem } in
  let benv = { env with g_nreads = 0; g_ints = List.filter (fun v -> v <> "K") ints } in
  let base_slice = elem = E_real && sdims >= 1 && Rng.bool rng in
  let nbases = if base_slice then order - 1 else order in
  let bases = List.init nbases (fun _ -> gen_e rng benv elem 2) in
  let t_rec = gen_combine rng env elem (List.length reads) 2 in
  let out =
    if sdims = 0 then Out_slice
    else
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 -> Out_slice
      | 4 | 5 | 6 -> Out_identity
      | _ ->
        let oenv =
          { g_ints = List.filter (fun v -> v <> "K") ints;
            g_reals = [ inp_atom ];
            g_nreads = 1;
            g_relem = elem }
        in
        Out_xform (gen_combine rng oenv elem 1 2)
  in
  { sp_elem = elem;
    sp_n = n;
    sp_t = t;
    sp_shape =
      Time
        { t_order = order;
          t_seidel = seidel;
          t_axes = axes;
          t_reads = reads;
          t_base_slice = base_slice;
          t_bases = bases;
          t_rec;
          t_out = out;
          t_rider = Rng.chance rng 40 } }

let gen_map rng elem n =
  let sdims = Rng.pick rng [ 1; 2; 2; 3 ] in
  let axes = List.init sdims (fun _ -> gen_axis rng) in
  let ints = List.init sdims (fun i -> axis_names.(i)) @ [ "N" ] in
  let inp_atom =
    Printf.sprintf "Inp[%s]" (String.concat ", " (List.init sdims (fun i -> axis_names.(i))))
  in
  let env = { g_ints = ints; g_reals = [ inp_atom ]; g_nreads = 0; g_relem = elem } in
  { sp_elem = elem;
    sp_n = n;
    sp_t = 0;
    sp_shape = Map { m_axes = axes; m_e = gen_e rng env elem 3 } }

let gen_lcs rng elem n =
  let l_reads = Array.make 3 false in
  l_reads.(Rng.int rng 3) <- true;
  Array.iteri (fun i on -> if (not on) && Rng.bool rng then l_reads.(i) <- true) l_reads;
  let nreads = Array.fold_left (fun a b -> if b then a + 1 else a) 0 l_reads in
  let env =
    { g_ints = [ "I"; "J"; "N" ];
      g_reals = [ "Inp[I]"; "Inp[J]" ];
      g_nreads = nreads;
      g_relem = elem }
  in
  let row_env = { env with g_nreads = 0; g_ints = [ "Jz"; "N" ]; g_reals = [ "Inp[Jz]" ] } in
  let col_env = { env with g_nreads = 0; g_ints = [ "I"; "N" ]; g_reals = [ "Inp[I]" ] } in
  { sp_elem = elem;
    sp_n = n;
    sp_t = 0;
    sp_shape =
      Lcs
        { l_reads;
          l_base_row = gen_e rng row_env elem 2;
          l_base_col = gen_e rng col_env elem 2;
          l_rec = gen_combine rng env elem nreads 2;
          l_out_array = Rng.bool rng } }

let gen_stride rng elem =
  (* A wider extent than the other shapes, so every residue class of the
     group partition holds several iterations. *)
  let n = Rng.range rng 7 14 in
  let kind =
    if Rng.chance rng 45 then St_param (Rng.range rng 1 3)
    else St_const (Rng.pick rng [ 2; 2; 3; 4 ])
  in
  let double =
    match kind with
    | St_const d -> (2 * d) + 3 <= n && Rng.chance rng 40
    | St_param _ -> false
  in
  let wide = Rng.chance rng 50 in
  let nreads = if double then 2 else 1 in
  let rec_ints =
    [ "Rest"; "N" ] @ (match kind with St_param _ -> [ "K" ] | St_const _ -> [])
  in
  let rec_reals = "Inp[Rest]" :: (if wide then [ "Inp[Rest + Rest]" ] else []) in
  let renv = { g_ints = rec_ints; g_reals = rec_reals; g_nreads = nreads; g_relem = elem } in
  let benv =
    { g_ints = [ "Init"; "N" ]; g_reals = [ "Inp[Init]" ]; g_nreads = 0; g_relem = elem }
  in
  { sp_elem = elem;
    sp_n = n;
    sp_t = 0;
    sp_shape =
      Stride
        { st_kind = kind;
          st_double = double;
          st_wide = wide;
          st_base = gen_e rng benv elem 2;
          st_rec = gen_combine rng renv elem nreads 2;
          st_out_id = Rng.bool rng } }

let generate rng =
  let elem = if Rng.chance rng 60 then E_real else E_int in
  let n = Rng.range rng 4 8 in
  match Rng.int rng 100 with
  | k when k < 20 -> gen_map rng elem n
  | k when k < 37 -> gen_lcs rng elem n
  | k when k < 55 -> gen_stride rng elem
  | _ -> gen_time rng elem n

(* ------------------------------------------------------------------ *)
(* Rendering to PS source *)

let lit_i n = if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n

let lit_r v =
  if v < 0.0 then Printf.sprintf "(0.0 - %.4f)" (-.v) else Printf.sprintf "%.4f" v

let rec render_ex rd (e : ex) : string =
  match e with
  | Lit_i n -> lit_i n
  | Lit_r v -> lit_r v
  | Atom a -> a
  | Read i -> rd i
  | Bin (op, a, b) -> Printf.sprintf "(%s %s %s)" (render_ex rd a) op (render_ex rd b)
  | Call1 (f, a) -> Printf.sprintf "%s(%s)" f (render_ex rd a)
  | Call2 (f, a, b) -> Printf.sprintf "%s(%s, %s)" f (render_ex rd a) (render_ex rd b)
  | Neg a -> Printf.sprintf "(0 - %s)" (render_ex rd a)
  | Ite (op, l, r, t, f) ->
    Printf.sprintf "(if %s %s %s then %s else %s)" (render_ex rd l) op (render_ex rd r)
      (render_ex rd t) (render_ex rd f)

let no_reads _ = invalid_arg "expression references a stencil read out of context"

(* Wrap int equations so recurrence values never approach C int range. *)
let rhs_text elem rd e =
  let t = render_ex rd e in
  match elem with E_int -> Printf.sprintf "((%s) mod 1000)" t | E_real -> t

let elem_str = function E_real -> "real" | E_int -> "int"

(* [N + off] as PS text. *)
let n_plus off =
  if off > 0 then Printf.sprintf "N + %d" off
  else if off = 0 then "N"
  else Printf.sprintf "N - %d" (-off)

(* subscript "X + o" / "X - o" / "X" *)
let sub_off name o =
  if o > 0 then Printf.sprintf "%s + %d" name o
  else if o = 0 then name
  else Printf.sprintf "%s - %d" name (-o)

let render_read axes (r : read) : string =
  let time = sub_off "K" (-r.rd_plane) in
  let space = List.mapi (fun i _ -> sub_off axis_names.(i) r.rd_offs.(i)) axes in
  Printf.sprintf "W[%s]" (String.concat ", " (time :: space))

let render_time (s : spec) (t : tspec) : string =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let elem = elem_str s.sp_elem in
  let sdims = List.length t.t_axes in
  let names = List.mapi (fun i _ -> axis_names.(i)) t.t_axes in
  let axes_s = String.concat ", " names in
  let inp_dims = if sdims = 0 then "D" else axes_s in
  let out_decl =
    if sdims = 0 then Printf.sprintf "Out: %s" elem
    else Printf.sprintf "Out: array[%s] of %s" axes_s elem
  in
  let rider_decl = if t.t_rider then Printf.sprintf "; Out2: %s" elem else "" in
  pf "Fz: module (Inp: array[%s] of real; N: int; T: int):\n  [%s%s];\n" inp_dims out_decl
    rider_decl;
  pf "type\n";
  if sdims = 0 then pf "  D = 0 .. N;\n";
  List.iteri
    (fun i (ax : axis) ->
      pf "  %s = %d .. %s;\n" axis_names.(i) ax.ax_lo (n_plus ax.ax_hi_off))
    t.t_axes;
  pf "  K = %d .. T;\n" (t.t_order + 1);
  pf "var\n";
  if sdims = 0 then pf "  W: array [1 .. T] of %s;\n" elem
  else pf "  W: array [1 .. T] of array[%s] of %s;\n" axes_s elem;
  pf "define\n";
  (* Base planes. *)
  let base_planes = List.init t.t_order (fun p -> p + 1) in
  let bases = ref t.t_bases in
  List.iter
    (fun p ->
      if t.t_base_slice && p = 1 then pf "  W[1] = Inp;\n"
      else begin
        let e = match !bases with e :: rest -> bases := rest; e | [] -> Lit_i 1 in
        if sdims = 0 then pf "  W[%d] = %s;\n" p (rhs_text s.sp_elem no_reads e)
        else pf "  W[%d, %s] = %s;\n" p axes_s (rhs_text s.sp_elem no_reads e)
      end)
    base_planes;
  (* The recurrence, guarded at the boundary of every offset read. *)
  let rd i = render_read t.t_axes (List.nth t.t_reads i) in
  let combine = rhs_text s.sp_elem rd t.t_rec in
  let guard_terms =
    List.concat
      (List.mapi
         (fun i (ax : axis) ->
           let mneg =
             List.fold_left (fun m (r : read) -> max m (-r.rd_offs.(i))) 0 t.t_reads
           in
           let mpos =
             List.fold_left (fun m (r : read) -> max m r.rd_offs.(i)) 0 t.t_reads
           in
           (if mneg > 0 then [ Printf.sprintf "(%s < %d)" axis_names.(i) (ax.ax_lo + mneg) ]
            else [])
           @
           if mpos > 0 then
             [ Printf.sprintf "(%s > %s)" axis_names.(i) (n_plus (ax.ax_hi_off - mpos)) ]
           else [])
         t.t_axes)
  in
  let lhs_subs = String.concat ", " ("K" :: names) in
  (match guard_terms with
   | [] -> pf "  W[%s] = %s;\n" lhs_subs combine
   | terms ->
     let carry =
       Printf.sprintf "W[%s]" (String.concat ", " ("K - 1" :: names))
     in
     pf "  W[%s] = if %s\n    then %s\n    else %s;\n" lhs_subs
       (String.concat " or " terms) carry combine);
  (* Results. *)
  (match t.t_out with
   | Out_slice -> pf "  Out = W[T];\n"
   | Out_identity -> pf "  Out[%s] = W[T, %s];\n" axes_s axes_s
   | Out_xform e ->
     let rd _ = Printf.sprintf "W[T, %s]" axes_s in
     pf "  Out[%s] = %s;\n" axes_s (rhs_text s.sp_elem rd e));
  if t.t_rider then begin
    let los = List.map (fun (ax : axis) -> string_of_int ax.ax_lo) t.t_axes in
    pf "  Out2 = W[%s];\n" (String.concat ", " ("T" :: los))
  end;
  pf "end Fz;\n";
  Buffer.contents b

let render_map (s : spec) (m : mspec) : string =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let elem = elem_str s.sp_elem in
  let names = List.mapi (fun i _ -> axis_names.(i)) m.m_axes in
  let axes_s = String.concat ", " names in
  pf "Fz: module (Inp: array[%s] of real; N: int):\n  [Out: array[%s] of %s];\n" axes_s
    axes_s elem;
  pf "type\n";
  List.iteri
    (fun i (ax : axis) ->
      pf "  %s = %d .. %s;\n" axis_names.(i) ax.ax_lo (n_plus ax.ax_hi_off))
    m.m_axes;
  pf "define\n";
  pf "  Out[%s] = %s;\n" axes_s (rhs_text s.sp_elem no_reads m.m_e);
  pf "end Fz;\n";
  Buffer.contents b

let lcs_read_texts = [| "L[I - 1, J]"; "L[I, J - 1]"; "L[I - 1, J - 1]" |]

let render_lcs (s : spec) (l : lspec) : string =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let elem = elem_str s.sp_elem in
  (* The whole-table result ranges over two *distinct* subranges: the
     scheduler identifies loop dimensions by subrange name (step 2), so
     Out: array[Jz, Jz] would be ambiguous and unschedulable. *)
  let out_decl =
    if l.l_out_array then Printf.sprintf "Out: array[Iz, Jz] of %s" elem
    else Printf.sprintf "Out: %s" elem
  in
  pf "Fz: module (Inp: array[D] of real; N: int):\n  [%s];\n" out_decl;
  pf "type\n  D = 0 .. N;\n  Iz = 0 .. N;\n  Jz = 0 .. N;\n  I = 1 .. N;\n  J = 1 .. N;\n";
  pf "var\n  L: array [0 .. N, 0 .. N] of %s;\n" elem;
  pf "define\n";
  pf "  L[0, Jz] = %s;\n" (rhs_text s.sp_elem no_reads l.l_base_row);
  pf "  L[I, 0] = %s;\n" (rhs_text s.sp_elem no_reads l.l_base_col);
  let enabled =
    List.filteri (fun i _ -> l.l_reads.(i)) [ 0; 1; 2 ] |> Array.of_list
  in
  let rd i = lcs_read_texts.(enabled.(i)) in
  pf "  L[I, J] = %s;\n" (rhs_text s.sp_elem rd l.l_rec);
  if l.l_out_array then pf "  Out = L;\n" else pf "  Out = L[N, N];\n";
  pf "end Fz;\n";
  Buffer.contents b

(* The input ranges over Wide = 1 .. N + N so the optional strided read
   Inp[Rest + Rest] stays in bounds for every Rest <= N. *)
let render_stride (s : spec) (st : sspec) : string =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let elem = elem_str s.sp_elem in
  let params = match st.st_kind with St_param _ -> "; K: int" | St_const _ -> "" in
  pf "Fz: module (Inp: array[Wide] of real; N: int%s):\n  [Out: array[Ipos] of %s];\n"
    params elem;
  pf "type\n  Wide = 1 .. N + N;\n  Ipos = 1 .. N;\n";
  (match st.st_kind with
   | St_const d ->
     let depth = if st.st_double then 2 * d else d in
     pf "  Init = 1 .. %d;\n  Rest = %d .. N;\n" depth (depth + 1)
   | St_param _ -> pf "  Init = 1 .. K;\n  Rest = K + 1 .. N;\n");
  pf "var\n  C: array [Ipos] of %s;\n" elem;
  pf "define\n";
  pf "  C[Init] = %s;\n" (rhs_text s.sp_elem no_reads st.st_base);
  let rd i =
    match st.st_kind with
    | St_param _ -> "C[Rest - K]"
    | St_const d -> Printf.sprintf "C[Rest - %d]" (if i = 0 then d else 2 * d)
  in
  pf "  C[Rest] = %s;\n" (rhs_text s.sp_elem rd st.st_rec);
  if st.st_out_id then pf "  Out[Ipos] = C[Ipos];\n" else pf "  Out = C;\n";
  pf "end Fz;\n";
  Buffer.contents b

let render (s : spec) : string =
  match s.sp_shape with
  | Time t -> render_time s t
  | Map m -> render_map s m
  | Lcs l -> render_lcs s l
  | Stride st -> render_stride s st

(* ------------------------------------------------------------------ *)
(* Inputs *)

let input_dims (s : spec) : (int * int) list =
  match s.sp_shape with
  | Time t ->
    if t.t_axes = [] then [ (0, s.sp_n) ]
    else List.map (fun (ax : axis) -> (ax.ax_lo, s.sp_n + ax.ax_hi_off)) t.t_axes
  | Map m -> List.map (fun (ax : axis) -> (ax.ax_lo, s.sp_n + ax.ax_hi_off)) m.m_axes
  | Lcs _ -> [ (0, s.sp_n) ]
  | Stride _ -> [ (1, 2 * s.sp_n) ]

(* Row-major deterministic fill, shared with the emitted C main(). *)
let real_input ~dims =
  let exts = List.map (fun (lo, hi) -> hi - lo + 1) dims in
  let strides =
    let rec go = function
      | [] -> []
      | _ :: rest as l -> List.fold_left ( * ) 1 (List.tl l) :: go rest
    in
    go exts
  in
  let los = List.map fst dims in
  Ps_interp.Exec.array_real ~dims (fun ix ->
      let flat = ref 0 in
      List.iteri (fun p st -> flat := !flat + ((ix.(p) - List.nth los p) * st)) strides;
      Ps_models.Models.fill_value !flat)

let scalars (s : spec) : (string * int) list =
  match s.sp_shape with
  | Time _ -> [ ("N", s.sp_n); ("T", s.sp_t) ]
  | Map _ | Lcs _ -> [ ("N", s.sp_n) ]
  | Stride { st_kind = St_param k; _ } -> [ ("N", s.sp_n); ("K", k) ]
  | Stride _ -> [ ("N", s.sp_n) ]

let inputs (s : spec) : (string * Ps_interp.Value.value) list =
  ("Inp", real_input ~dims:(input_dims s))
  :: List.map (fun (nm, v) -> (nm, Ps_interp.Exec.scalar_int v)) (scalars s)

let describe (s : spec) : string =
  let shape =
    match s.sp_shape with
    | Map m -> Printf.sprintf "map/%dd" (List.length m.m_axes)
    | Lcs _ -> "lcs"
    | Stride st ->
      let tail =
        (if st.st_double then " x2" else "") ^ if st.st_wide then " wide" else ""
      in
      (match st.st_kind with
       | St_const d -> Printf.sprintf "stride/%d%s" d tail
       | St_param k -> Printf.sprintf "stride/K=%d%s" k tail)
    | Time t ->
      Printf.sprintf "time/%dd order=%d%s reads=%d" (List.length t.t_axes) t.t_order
        (if t.t_seidel then " seidel" else "")
        (List.length t.t_reads)
  in
  Printf.sprintf "%s %s N=%d%s" shape
    (elem_str s.sp_elem)
    s.sp_n
    (match s.sp_shape with Time _ -> Printf.sprintf " T=%d" s.sp_t | _ -> "")

(* ------------------------------------------------------------------ *)
(* Shrinking: one-step candidates, most aggressive first.  Every
   candidate is a complete well-formed spec; the shrinker keeps a
   candidate only if it still fails the differential property. *)

let rec shrink_ex ~int_ctx (e : ex) : ex list =
  let lit = if int_ctx then Lit_i 1 else Lit_r 1.0 in
  let sub rebuild ctx child = List.map rebuild (shrink_ex ~int_ctx:ctx child) in
  match e with
  | Lit_i _ | Lit_r _ | Atom _ | Read _ -> []
  | Bin (("+" | "-") as op, a, b) ->
    [ a; b; lit ]
    @ sub (fun a' -> Bin (op, a', b)) int_ctx a
    @ sub (fun b' -> Bin (op, a, b')) int_ctx b
  | Bin (("div" | "mod") as op, a, b) ->
    (* Keep the divisor's nonzero guard intact; shrink the dividend. *)
    [ a; lit ] @ sub (fun a' -> Bin (op, a', b)) int_ctx a
  | Bin ("*", a, b) -> [ lit ] @ sub (fun a' -> Bin ("*", a', b)) int_ctx a @ sub (fun b' -> Bin ("*", a, b')) int_ctx b
  | Bin ("/", a, b) -> [ a; lit ] @ sub (fun a' -> Bin ("/", a', b)) int_ctx a
  | Bin (op, a, b) -> [ lit ] @ sub (fun a' -> Bin (op, a', b)) int_ctx a @ sub (fun b' -> Bin (op, a, b')) int_ctx b
  | Call1 ("intpart", _) -> [ lit ]
  | Call1 (f, a) -> [ a; lit ] @ sub (fun a' -> Call1 (f, a')) int_ctx a
  | Call2 (f, a, b) ->
    [ a; b; lit ]
    @ sub (fun a' -> Call2 (f, a', b)) int_ctx a
    @ sub (fun b' -> Call2 (f, a, b')) int_ctx b
  | Neg a -> [ a; lit ] @ sub (fun a' -> Neg a') int_ctx a
  | Ite (op, l, r, t, f) ->
    [ t; f; lit ]
    @ sub (fun t' -> Ite (op, l, r, t', f)) int_ctx t
    @ sub (fun f' -> Ite (op, l, r, t, f')) int_ctx f
    @ List.map (fun l' -> Ite (op, l', r, t, f)) (shrink_ex ~int_ctx:true l)
    @ List.map (fun r' -> Ite (op, l, r', t, f)) (shrink_ex ~int_ctx:true r)

let has_deep_read (reads : read list) = List.exists (fun r -> r.rd_plane >= 1) reads

let shrink (s : spec) : spec list =
  let int_ctx = s.sp_elem = E_int in
  (* The stride shape's extent cannot drop below the recurrence depth:
     Init = 1 .. depth must stay inside Ipos = 1 .. N. *)
  let min_n =
    match s.sp_shape with
    | Stride st ->
      max 4
        (1
        +
        match st.st_kind with
        | St_const d -> if st.st_double then 2 * d else d
        | St_param k -> k)
    | _ -> 4
  in
  let sized =
    (if s.sp_n > min_n then [ { s with sp_n = min_n }; { s with sp_n = s.sp_n - 1 } ]
     else [])
    @
    match s.sp_shape with
    | Time t when s.sp_t > t.t_order + 1 ->
      [ { s with sp_t = t.t_order + 1 }; { s with sp_t = s.sp_t - 1 } ]
    | _ -> []
  in
  let shaped =
    match s.sp_shape with
    | Map m ->
      (if List.length m.m_axes > 1 then
         (* Dropping to one axis invalidates atoms that mention the dead
            axis variables (Y, Z, Inp[X, Y, ...]); retarget them all to
            the surviving axis so the candidate stays well-typed. *)
         let rec retarget e =
           match e with
           | Atom ("Y" | "Z") -> Atom "X"
           | Atom a when String.length a >= 4 && String.sub a 0 4 = "Inp[" ->
             Atom "Inp[X]"
           | Bin (op, a, b) -> Bin (op, retarget a, retarget b)
           | Call1 (f, a) -> Call1 (f, retarget a)
           | Call2 (f, a, b) -> Call2 (f, retarget a, retarget b)
           | Neg a -> Neg (retarget a)
           | Ite (op, l, r, th, el) ->
             Ite (op, retarget l, retarget r, retarget th, retarget el)
           | Lit_i _ | Lit_r _ | Atom _ | Read _ -> e
         in
         [ { s with
             sp_shape =
               Map { m_axes = [ List.hd m.m_axes ]; m_e = retarget m.m_e } } ]
       else [])
      @ (if List.exists (fun (ax : axis) -> ax.ax_lo <> 0 || ax.ax_hi_off <> 0) m.m_axes then
           [ { s with
               sp_shape =
                 Map { m with m_axes = List.map (fun _ -> { ax_lo = 0; ax_hi_off = 0 }) m.m_axes } } ]
         else [])
      @ List.map
          (fun e -> { s with sp_shape = Map { m with m_e = e } })
          (shrink_ex ~int_ctx m.m_e)
    | Lcs l ->
      (if l.l_out_array then [ { s with sp_shape = Lcs { l with l_out_array = false } } ]
       else [])
      @ List.filter_map
          (fun i ->
            if l.l_reads.(i) && Array.fold_left (fun a b -> if b then a + 1 else a) 0 l.l_reads > 1
            then begin
              let reads = Array.copy l.l_reads in
              reads.(i) <- false;
              (* Renumber: the rec expr indexes enabled reads, so clamp. *)
              let nleft = Array.fold_left (fun a b -> if b then a + 1 else a) 0 reads in
              let rec clamp e =
                match e with
                | Read k -> Read (k mod nleft)
                | Bin (op, a, b) -> Bin (op, clamp a, clamp b)
                | Call1 (f, a) -> Call1 (f, clamp a)
                | Call2 (f, a, b) -> Call2 (f, clamp a, clamp b)
                | Neg a -> Neg (clamp a)
                | Ite (op, x, y, t, f) -> Ite (op, clamp x, clamp y, clamp t, clamp f)
                | e -> e
              in
              Some { s with sp_shape = Lcs { l with l_reads = reads; l_rec = clamp l.l_rec } }
            end
            else None)
          [ 0; 1; 2 ]
      @ List.map (fun e -> { s with sp_shape = Lcs { l with l_rec = e } }) (shrink_ex ~int_ctx l.l_rec)
      @ List.map
          (fun e -> { s with sp_shape = Lcs { l with l_base_row = e } })
          (shrink_ex ~int_ctx l.l_base_row)
      @ List.map
          (fun e -> { s with sp_shape = Lcs { l with l_base_col = e } })
          (shrink_ex ~int_ctx l.l_base_col)
    | Stride st ->
      let rec map_atoms f e =
        match e with
        | Atom a -> Atom (f a)
        | Bin (op, a, b) -> Bin (op, map_atoms f a, map_atoms f b)
        | Call1 (g, a) -> Call1 (g, map_atoms f a)
        | Call2 (g, a, b) -> Call2 (g, map_atoms f a, map_atoms f b)
        | Neg a -> Neg (map_atoms f a)
        | Ite (op, l, r, th, el) ->
          Ite (op, map_atoms f l, map_atoms f r, map_atoms f th, map_atoms f el)
        | Lit_i _ | Lit_r _ | Read _ -> e
      in
      let rec first_read e =
        match e with
        | Read _ -> Read 0
        | Bin (op, a, b) -> Bin (op, first_read a, first_read b)
        | Call1 (g, a) -> Call1 (g, first_read a)
        | Call2 (g, a, b) -> Call2 (g, first_read a, first_read b)
        | Neg a -> Neg (first_read a)
        | Ite (op, l, r, th, el) ->
          Ite (op, first_read l, first_read r, first_read th, first_read el)
        | e -> e
      in
      let to_const =
        match st.st_kind with
        | St_param _ ->
          (* K leaves the signature, so retarget its atoms. *)
          let fix = map_atoms (fun a -> if a = "K" then "N" else a) in
          [ { s with
              sp_shape =
                Stride
                  { st with
                    st_kind = St_const 2;
                    st_base = fix st.st_base;
                    st_rec = fix st.st_rec } } ]
        | St_const _ -> []
      in
      let drop_double =
        if st.st_double then
          [ { s with
              sp_shape =
                Stride { st with st_double = false; st_rec = first_read st.st_rec } } ]
        else []
      in
      let drop_wide =
        if st.st_wide then
          let fix =
            map_atoms (fun a -> if a = "Inp[Rest + Rest]" then "Inp[Rest]" else a)
          in
          [ { s with sp_shape = Stride { st with st_wide = false; st_rec = fix st.st_rec } } ]
        else []
      in
      let simpler_out =
        if st.st_out_id then [ { s with sp_shape = Stride { st with st_out_id = false } } ]
        else []
      in
      to_const @ drop_double @ drop_wide @ simpler_out
      @ List.map
          (fun e -> { s with sp_shape = Stride { st with st_rec = e } })
          (shrink_ex ~int_ctx st.st_rec)
      @ List.map
          (fun e -> { s with sp_shape = Stride { st with st_base = e } })
          (shrink_ex ~int_ctx st.st_base)
    | Time t ->
      let nreads = List.length t.t_reads in
      let clamp_reads reads e =
        let n = List.length reads in
        let rec clamp = function
          | Read k -> Read (k mod n)
          | Bin (op, a, b) -> Bin (op, clamp a, clamp b)
          | Call1 (f, a) -> Call1 (f, clamp a)
          | Call2 (f, a, b) -> Call2 (f, clamp a, clamp b)
          | Neg a -> Neg (clamp a)
          | Ite (op, x, y, a, b) -> Ite (op, clamp x, clamp y, clamp a, clamp b)
          | e -> e
        in
        clamp e
      in
      let drop_rider =
        if t.t_rider then [ { s with sp_shape = Time { t with t_rider = false } } ] else []
      in
      let simplify_out =
        match t.t_out with
        | Out_slice -> []
        | _ -> [ { s with sp_shape = Time { t with t_out = Out_slice } } ]
      in
      let drop_seidel =
        if t.t_seidel then
          let reads = List.filter (fun r -> r.rd_plane >= 1) t.t_reads in
          [ { s with
              sp_shape =
                Time
                  { t with
                    t_seidel = false;
                    t_reads = reads;
                    t_rec = clamp_reads reads t.t_rec } } ]
        else []
      in
      (* Drop reads one at a time, keeping at least one plane read. *)
      let drop_reads =
        if nreads <= 1 then []
        else
          List.filter_map Fun.id
            (List.mapi
               (fun i _ ->
                 let reads = List.filteri (fun j _ -> j <> i) t.t_reads in
                 if has_deep_read reads then
                   Some
                     { s with
                       sp_shape =
                         Time { t with t_reads = reads; t_rec = clamp_reads reads t.t_rec } }
                 else None)
               t.t_reads)
      in
      (* Zero each plane read's offsets (drops the boundary guard term). *)
      let zero_offsets =
        List.concat
          (List.mapi
             (fun i (r : read) ->
               if r.rd_plane >= 1 && Array.exists (fun o -> o <> 0) r.rd_offs then
                 [ { s with
                     sp_shape =
                       Time
                         { t with
                           t_reads =
                             List.mapi
                               (fun j r' ->
                                 if j = i then
                                   { r' with rd_offs = Array.map (fun _ -> 0) r'.rd_offs }
                                 else r')
                               t.t_reads } } ]
               else [])
             t.t_reads)
      in
      let simplify_rec =
        List.map
          (fun e -> { s with sp_shape = Time { t with t_rec = e } })
          (shrink_ex ~int_ctx t.t_rec)
      in
      let simplify_bases =
        List.concat
          (List.mapi
             (fun i e ->
               List.map
                 (fun e' ->
                   { s with
                     sp_shape =
                       Time
                         { t with
                           t_bases = List.mapi (fun j b -> if i = j then e' else b) t.t_bases } })
                 (shrink_ex ~int_ctx e))
             t.t_bases)
      in
      let simplify_xform =
        match t.t_out with
        | Out_xform e ->
          List.map
            (fun e' -> { s with sp_shape = Time { t with t_out = Out_xform e' } })
            (shrink_ex ~int_ctx e)
        | _ -> []
      in
      drop_rider @ simplify_out @ drop_seidel @ drop_reads @ zero_offsets @ simplify_rec
      @ simplify_bases @ simplify_xform
  in
  sized @ shaped
