(** The differential oracle: run one program through every execution
    path and compare outputs element-wise against the sequential
    reference.  Interpreter paths must agree bit for bit; the C path is
    compared through its checksums.  A defined runtime trap (zero
    divisor) agrees with a reference trap; a one-sided trap is a
    mismatch. *)

type path =
  | Seq        (** plain sequential interpreter: the reference *)
  | Nowin      (** full storage, no virtual windows *)
  | Nocheck    (** unchecked subscript fast path *)
  | Passes     (** sink + fuse + trim *)
  | Steal      (** work-stealing pool *)
  | Collapse   (** pooled, DOALL bands collapsed, bounds trimmed *)
  | Group      (** schedule translation-validated (E023/E024 trap), then
                   pooled: DOGROUP loops run one residue class per task *)
  | Inspector  (** every DOGROUP(g) demoted to DOINSPECT of the constant
                   g: the runtime inspector re-derives the partition *)
  | Hyper      (** hyperplane-transformed module, sequential *)
  | Hyper_par  (** hyperplane-transformed, pooled + collapsed *)
  | Auto       (** pooled, nests steered by the static cost model's
                   per-loop policy table (must be bit-identical: policies
                   change shape, never results) *)
  | Cc         (** emitted C, compiled and executed *)
  | Server     (** a `psc serve --stdio` subprocess, outputs over the wire *)

val all_paths : path list
val path_name : path -> string
val path_of_name : string -> path option

type outcome =
  | Outputs of (string * Psc.Value.value) list
  | Checksums of (string * float) list
  | Trap of string
  | Skip of string

type case_result = {
  cr_outcomes : (path * outcome) list;  (** reference first *)
  cr_verdict : string option;           (** [None] = every path agreed *)
}

val have_cc : bool Lazy.t

val default_inputs :
  Psc.Elab.emodule -> scalars:(string * int) list -> (string * Psc.Value.value) list
(** Deterministic inputs for any module: real arrays get the shared
    row-major fill, int/bool arrays the zero fill the C harness's cast
    produces, scalars come from [scalars].
    @raise Psc.Error when a scalar has no value. *)

val checksum : Psc.Value.value -> float
(** Row-major sum over the declared box (the emitted main()'s sum). *)

val check :
  ?pool_size:int ->
  paths:path list ->
  Psc.t ->
  inputs:(string * Psc.Value.value) list ->
  scalars:(string * int) list ->
  case_result

val check_source :
  ?pool_size:int -> paths:path list -> scalars:(string * int) list -> string -> case_result
(** Load a source text, derive inputs, differentiate.  Load errors
    become a verdict (a fuzz-generated program must always compile). *)

val check_spec : ?pool_size:int -> paths:path list -> Gen.spec -> case_result
