(** Greedy spec-level minimizer over [Gen.shrink] candidates. *)

val minimize : ?max_evals:int -> fails:(Gen.spec -> bool) -> Gen.spec -> Gen.spec
(** [minimize ~fails spec] repeatedly replaces [spec] by its first
    shrink candidate that still satisfies [fails], until none does or
    [max_evals] property evaluations (default 250) are spent.  The
    result always satisfies [fails] if [spec] did. *)
