(* `bench serve`: the load gate for the compile service.

   Spawns a real `psc serve --socket` process and drives it with 1, 32,
   256 and 1024 concurrent clients (1, 8, 32 in --quick) over two
   workloads:

   - hit: every client schedules the same source, so after one warm-up
     request the server answers from the content-addressed artifact
     cache — this measures the service path itself;
   - miss: every request carries a unique source (a per-request comment
     keeps the program's meaning identical while changing its digest),
     so every request pays parse + elaborate + schedule — this measures
     the pipeline under concurrency.

   Each client thread holds one connection and measures per-request
   wall latency; the merged, sorted sample set yields exact p50/p99/max
   (no sketch here: the harness judges the server, so it must not share
   the server's estimator).  Results land in BENCH_server.json, whose
   schema test_bench_server.ml asserts — the regression gate demanded
   by ROADMAP item 2. *)

let workers = 8

let psc_exe () =
  let candidates =
    (match Sys.getenv_opt "PSC_SERVE_EXE" with Some p -> [ p ] | None -> [])
    @ [ Filename.concat (Filename.dirname Sys.executable_name)
          "../bin/psc_main.exe";
        "_build/default/bin/psc_main.exe"; "../bin/psc_main.exe";
        "bin/psc_main.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith "bench serve: psc executable not found (set PSC_SERVE_EXE)"

(* ------------------------------------------------------------------ *)
(* Requests *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let base_src = Ps_models.Models.jacobi

(* PS comments nest and may appear anywhere whitespace may, so a
   per-request comment changes the digest without changing the
   program. *)
let miss_uid = Atomic.make 0

let request ~workload ~(seq : int) =
  ignore seq;
  let src =
    match workload with
    | `Hit -> base_src
    | `Miss ->
      Printf.sprintf "(* bench-serve miss %d *)\n%s"
        (Atomic.fetch_and_add miss_uid 1)
        base_src
  in
  Printf.sprintf "{\"id\":%d,\"op\":\"schedule\",\"source\":\"%s\"}" seq
    (json_escape src)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Clients *)

(* The accept loop polls at 100 ms and hundreds of clients connect at
   once, so transient refusals are expected; retry briefly before
   calling it an error. *)
let connect path =
  let rec go tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Some fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT | EAGAIN | EINTR), _, _)
      when tries > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Thread.delay 0.02;
      go (tries - 1)
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None
  in
  go 250

type client_result = {
  mutable cr_lat_ns : int list;  (* one sample per successful request *)
  mutable cr_cached : int;
  mutable cr_errors : int;
  mutable cr_shed : int;  (* E033 answers: shed by the bounded queue *)
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let client_run path ~workload ~per_client (cr : client_result) =
  match connect path with
  | None -> cr.cr_errors <- cr.cr_errors + per_client
  | Some fd ->
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    for seq = 1 to per_client do
      let req = request ~workload ~seq in
      let t0 = now_ns () in
      match
        output_string oc req;
        output_char oc '\n';
        flush oc;
        input_line ic
      with
      | exception (End_of_file | Sys_error _) ->
        cr.cr_errors <- cr.cr_errors + 1
      | line ->
        let dt = now_ns () - t0 in
        if contains ~needle:"\"ok\":true" line then begin
          cr.cr_lat_ns <- dt :: cr.cr_lat_ns;
          if contains ~needle:"\"cached\":true" line then
            cr.cr_cached <- cr.cr_cached + 1
        end
        else if contains ~needle:"E033" line then
          (* Shed, not broken: the server answered, under protocol, at
             once.  Count it apart from errors so the gate can demand
             zero errors while reporting how often the bound was hit. *)
          cr.cr_shed <- cr.cr_shed + 1
        else cr.cr_errors <- cr.cr_errors + 1
    done;
    (try Unix.close fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* One measured cell: (workload, client count) *)

type row = {
  r_workload : string;
  r_clients : int;
  r_requests : int;
  r_errors : int;
  r_shed : int;
  r_req_per_s : float;
  r_p50_ms : float;
  r_p99_ms : float;
  r_max_ms : float;
  r_hit_ratio : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
    float_of_int sorted.(rank - 1) /. 1e6

let run_level path ~workload ~clients ~per_client : row =
  let results =
    Array.init clients (fun _ ->
        { cr_lat_ns = []; cr_cached = 0; cr_errors = 0; cr_shed = 0 })
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    Array.mapi
      (fun i cr ->
        ignore i;
        Thread.create (fun () -> client_run path ~workload ~per_client cr)
          ())
      results
  in
  Array.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let lats =
    Array.of_list (Array.to_list results |> List.concat_map (fun c -> c.cr_lat_ns))
  in
  Array.sort compare lats;
  let ok = Array.length lats in
  let errors = Array.fold_left (fun a c -> a + c.cr_errors) 0 results in
  let cached = Array.fold_left (fun a c -> a + c.cr_cached) 0 results in
  let shed = Array.fold_left (fun a c -> a + c.cr_shed) 0 results in
  { r_workload = (match workload with `Hit -> "hit" | `Miss -> "miss");
    r_clients = clients;
    r_requests = ok + errors + shed;
    r_errors = errors;
    r_shed = shed;
    r_req_per_s = (if wall > 0.0 then float_of_int ok /. wall else 0.0);
    r_p50_ms = percentile lats 0.50;
    r_p99_ms = percentile lats 0.99;
    r_max_ms = (if ok = 0 then 0.0 else float_of_int lats.(ok - 1) /. 1e6);
    r_hit_ratio = (if ok = 0 then 0.0 else float_of_int cached /. float_of_int ok) }

let row_json r =
  Printf.sprintf
    "{\"workload\":%S,\"clients\":%d,\"requests\":%d,\"errors\":%d,\"shed\":%d,\"req_per_s\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"max_ms\":%.3f,\"cache_hit_ratio\":%.4f}"
    r.r_workload r.r_clients r.r_requests r.r_errors r.r_shed r.r_req_per_s
    r.r_p50_ms r.r_p99_ms r.r_max_ms r.r_hit_ratio

(* ------------------------------------------------------------------ *)
(* Server lifecycle *)

let spawn_server exe path =
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "--socket"; path; "--workers"; string_of_int workers;
         (* Deep enough that the gate's levels queue instead of shed —
            the gate demands zero errors AND zero shed at every level;
            a shallower bound is exercised by the stress tests. *)
         "--max-queue"; "4096" |]
      Unix.stdin dev_null dev_null
  in
  Unix.close dev_null;
  (* Wait for the listener: the socket file appearing is the signal. *)
  let rec wait tries =
    if Sys.file_exists path then ()
    else if tries = 0 then failwith "bench serve: server did not start"
    else begin
      Thread.delay 0.05;
      wait (tries - 1)
    end
  in
  wait 200;
  pid

let stop_server path pid =
  (match connect path with
   | Some fd ->
     let oc = Unix.out_channel_of_descr fd in
     (try
        output_string oc "{\"op\":\"shutdown\"}\n";
        flush oc;
        (* Wait for the reply so the drain has started before waitpid. *)
        ignore (input_line (Unix.in_channel_of_descr fd))
      with End_of_file | Sys_error _ -> ());
     (try Unix.close fd with Unix.Unix_error _ -> ())
   | None -> ());
  ignore (Unix.waitpid [] pid)

(* ------------------------------------------------------------------ *)

let run ~quick =
  let exe = psc_exe () in
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "psc-bench-%d.sock" (Unix.getpid ()))
  in
  (try Sys.remove path with Sys_error _ -> ());
  let host_cores = Psc.Pool.recommended_size () in
  let pid = spawn_server exe path in
  let rows = ref [] in
  Fun.protect
    ~finally:(fun () ->
      stop_server path pid;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* Requests per client, sized so heavier levels don't multiply
         total work: roughly constant requests per cell. *)
      let levels =
        if quick then [ (1, 16); (8, 4); (32, 2) ]
        else [ (1, 64); (32, 8); (256, 2); (1024, 1) ]
      in
      Fmt.pr "============================================================@.";
      Fmt.pr "bench serve: load gate (%s, workers=%d)@."
        (if quick then "quick" else "full")
        workers;
      Fmt.pr "============================================================@.@.";
      Fmt.pr "%-6s %8s %9s %7s %6s %10s %9s %9s %9s %7s@." "load" "clients"
        "requests" "errors" "shed" "req/s" "p50 ms" "p99 ms" "max ms" "hit%";
      List.iter
        (fun workload ->
          (* Warm the cache so the hit workload measures hits from its
             first request. *)
          (if workload = `Hit then
             match connect path with
             | Some fd ->
               let oc = Unix.out_channel_of_descr fd in
               output_string oc (request ~workload:`Hit ~seq:0);
               output_char oc '\n';
               flush oc;
               (try ignore (input_line (Unix.in_channel_of_descr fd))
                with End_of_file | Sys_error _ -> ());
               (try Unix.close fd with Unix.Unix_error _ -> ())
             | None -> ());
          List.iter
            (fun (clients, per_client) ->
              let r = run_level path ~workload ~clients ~per_client in
              rows := r :: !rows;
              Fmt.pr "%-6s %8d %9d %7d %6d %10.1f %9.3f %9.3f %9.3f %7.1f@."
                r.r_workload r.r_clients r.r_requests r.r_errors r.r_shed
                r.r_req_per_s r.r_p50_ms r.r_p99_ms r.r_max_ms
                (100.0 *. r.r_hit_ratio))
            levels)
        [ `Hit; `Miss ]);
  let oc = open_out "BENCH_server.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": 1,\n\
    \  \"source\": \"bench/main.ml serve\",\n\
    \  \"quick\": %b,\n\
    \  \"host_cores\": %d,\n\
    \  \"workers\": %d,\n\
    \  \"rows\": [\n    %s\n  ]\n\
     }\n"
    quick host_cores workers
    (String.concat ",\n    " (List.rev_map row_json !rows));
  close_out oc;
  Fmt.pr "@.wrote BENCH_server.json (%d rows)@." (List.length !rows)
