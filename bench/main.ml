(* Benchmark harness: regenerates every figure of the paper and measures
   the quantities behind its claims.

   The paper (ICASE 87-23) has no measured tables — its evaluation is the
   worked Relaxation example: the schedules of Figs. 5-7, the storage
   windows of §3.4, and the re-parallelization + window-3 result of §4.
   This harness therefore reports, for each experiment:

   - the regenerated artifact (exact schedule strings, windows, the §4
     derivation), checked against the paper's values;
   - machine-independent work/span parallelism for the three program
     variants over a size sweep (the "who wins" series);
   - storage-word counts reproducing the 2-plane / 3 x maxK x M vs
     2 x M x M comparisons;
   - Bechamel micro-benchmarks of every pipeline stage and of end-to-end
     execution, sequential and on a domain pool (one Test.make per
     experiment).

   Note: wall-clock DOALL speedup saturates at the host's core count;
   EXPERIMENTS.md records both the parallelism (work/span) and the times
   measured here. *)

open Bechamel
open Toolkit

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

(* --json: also write BENCH_runtime.json (per-experiment wall times plus
   work/span and pool size) so successive PRs accumulate a perf
   trajectory, and skip the Bechamel part (its statistics live in the
   text report; the JSON file records the A/B experiments). *)
let json_mode = Array.exists (fun a -> a = "--json") Sys.argv

(* serve: the compile-service load gate (Serve_bench) instead of the
   paper experiments; writes BENCH_server.json. *)
let serve_mode = Array.exists (fun a -> a = "serve") Sys.argv

(* ------------------------------------------------------------------ *)
(* Shared setup *)

let jacobi = Util_bench.project Ps_models.Models.jacobi

let seidel = Util_bench.project Ps_models.Models.seidel

let hyper_project, hyper_tr = Psc.hyperplane ~target:"A" seidel

let hyper_name = hyper_tr.Psc.Transform.tr_module.Psc.Ast.m_name

(* ------------------------------------------------------------------ *)
(* Part 1: figure reproductions (checked, then printed) *)

let check name expected actual =
  if expected <> actual then (
    Fmt.epr "MISMATCH in %s:@.expected %s@.got %s@." name expected actual;
    exit 1)

let part1 () =
  Fmt.pr "============================================================@.";
  Fmt.pr "Part 1: regenerated paper artifacts@.";
  Fmt.pr "============================================================@.@.";
  let em = Psc.default_module jacobi in
  Fmt.pr "--- Fig. 1 (the Relaxation module, reprinted from the AST) ---@.";
  Fmt.pr "%s@.@." (Psc.Pretty.module_to_string em.Psc.Elab.em_ast);
  Fmt.pr "--- Fig. 2 (edge label attributes, on A -> eq.3 and A -> eq.2) ---@.";
  let g = Psc.dep_graph em in
  List.iter
    (fun e ->
      match e.Psc.Dgraph.e_kind, e.Psc.Dgraph.e_src with
      | Psc.Dgraph.Use, Psc.Dgraph.Data "A" ->
        Fmt.pr "  A -> %s: [%s]  classes: [%s]@."
          (Psc.Dgraph.node_name g e.Psc.Dgraph.e_dst)
          (String.concat ", "
             (Array.to_list (Array.map Psc.Label.to_string e.Psc.Dgraph.e_subs)))
          (String.concat ", "
             (Array.to_list (Array.map Psc.Label.class_name e.Psc.Dgraph.e_subs)))
      | _ -> ())
    (Psc.Dgraph.edges g);
  Fmt.pr "@.--- Fig. 3 (dependency graph) ---@.%s@." (Psc.Render.listing g);
  let sc = Psc.schedule em in
  Fmt.pr "--- Fig. 5 (components and their flowcharts) ---@.%s@.@."
    (Psc.components_string sc);
  let fig6 = Psc.Flowchart.to_compact_string em sc.Psc.sc_flowchart in
  check "Fig. 6"
    "DOALL I (DOALL J (eq.1)); DO K (DOALL I (DOALL J (eq.3))); DOALL I (DOALL J (eq.2))"
    fig6;
  Fmt.pr "--- Fig. 6 (flowchart; matches the paper) ---@.%s@.@."
    (Psc.flowchart_string sc);
  Fmt.pr "--- Sec. 3.4 (virtual dimension of A) ---@.%s@.@."
    (Psc.windows_string sc);
  let em7 = Psc.default_module seidel in
  let sc7 = Psc.schedule em7 in
  let fig7 = Psc.Flowchart.to_compact_string em7 sc7.Psc.sc_flowchart in
  check "Fig. 7"
    "DOALL I (DOALL J (eq.1)); DO K (DO I (DO J (eq.3))); DOALL I (DOALL J (eq.2))"
    fig7;
  Fmt.pr "--- Fig. 7 (flowchart of the revised relaxation; matches) ---@.%s@.@."
    (Psc.flowchart_string sc7);
  Fmt.pr "--- Sec. 4 (hyperplane derivation; a = (2,1,1) as in the paper) ---@.";
  Fmt.pr "%s@." (Psc.Transform.derivation_to_string hyper_tr);
  let em_h = Psc.find_module hyper_project hyper_name in
  let sc_h = Psc.schedule ~sink:true em_h in
  Fmt.pr "@.--- Sec. 4 (schedule after transformation; Fig. 6 shape) ---@.%s@.@."
    (Psc.flowchart_string sc_h);
  Fmt.pr "--- Sec. 4 (window after transformation; paper says 3) ---@.%s@.@."
    (Psc.windows_string sc_h)

(* ------------------------------------------------------------------ *)
(* Part 2: series tables *)

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let part2 () =
  Fmt.pr "============================================================@.";
  Fmt.pr "Part 2: size sweeps (parallelism, storage, wall time)@.";
  Fmt.pr "============================================================@.@.";
  let sizes =
    if quick then [ (16, 10); (32, 20) ]
    else [ (16, 10); (32, 20); (64, 40); (96, 48) ]
  in
  Fmt.pr
    "parallelism = work/span of the schedule (machine-independent);@.\
     jacobi = Fig. 1 program, seidel = sec. 4 program, hyper = transformed.@.@.";
  Fmt.pr "%6s %6s | %12s %12s %12s@." "M" "maxK" "par(jacobi)" "par(seidel)"
    "par(hyper)";
  List.iter
    (fun (m, maxk) ->
      let env = [ ("M", m); ("maxK", maxk) ] in
      let p_j = Psc.Analysis.parallelism (Psc.work_span jacobi ~env) in
      let p_s = Psc.Analysis.parallelism (Psc.work_span seidel ~env) in
      let p_h =
        Psc.Analysis.parallelism
          (Psc.work_span ~name:hyper_name ~sink:true hyper_project ~env)
      in
      Fmt.pr "%6d %6d | %12.1f %12.2f %12.1f@." m maxk p_j p_s p_h)
    sizes;
  Fmt.pr "@.Storage (words for the recurrence array; sec. 3.4 and sec. 4):@.";
  Fmt.pr "%6s %6s | %14s %14s %14s %14s@." "M" "maxK" "jacobi win2" "full maxK"
    "hyper win3" "hyper full";
  List.iter
    (fun (m, maxk) ->
      let inputs = Ps_models.Models.relaxation_inputs ~m ~maxk in
      let r_w = Psc.run jacobi ~inputs in
      let r_f = Psc.run ~use_windows:false jacobi ~inputs in
      let r_h = Psc.run ~name:hyper_name ~sink:true hyper_project ~inputs in
      let r_hf =
        Psc.run ~name:hyper_name ~sink:true ~use_windows:false hyper_project
          ~inputs
      in
      Fmt.pr "%6d %6d | %14d %14d %14d %14d@." m maxk
        (List.assoc "A" r_w.Psc.Exec.allocated)
        (List.assoc "A" r_f.Psc.Exec.allocated)
        (List.assoc hyper_tr.Psc.Transform.tr_new_name r_h.Psc.Exec.allocated)
        (List.assoc hyper_tr.Psc.Transform.tr_new_name r_hf.Psc.Exec.allocated))
    sizes;
  Fmt.pr
    "@.Equation evaluations (deterministic; box vs trimmed wavefront, sec. 4):@.";
  Fmt.pr "%6s %6s | %12s %12s %12s %10s@." "M" "maxK" "seidel" "hyper box"
    "hyper trim" "trim/orig";
  List.iter
    (fun (m, maxk) ->
      let inputs = Ps_models.Models.relaxation_inputs ~m ~maxk in
      let ev r = Option.get r.Psc.Exec.evaluations in
      let e_s = ev (Psc.run ~stats:true seidel ~inputs) in
      let e_b = ev (Psc.run ~stats:true ~name:hyper_name ~sink:true hyper_project ~inputs) in
      let e_t =
        ev
          (Psc.run ~stats:true ~name:hyper_name ~sink:true ~trim:true
             hyper_project ~inputs)
      in
      Fmt.pr "%6d %6d | %12d %12d %12d %10.2f@." m maxk e_s e_b e_t
        (float_of_int e_t /. float_of_int e_s))
    sizes;
  Fmt.pr "@.Wall time (seconds; host has %d core(s) so DOALL speedup saturates there):@."
    (Psc.Pool.recommended_size ());
  Fmt.pr "%6s %6s | %10s %10s %10s %10s@." "M" "maxK" "jacobi" "jacobi/par"
    "seidel" "hyper";
  List.iter
    (fun (m, maxk) ->
      let inputs = Ps_models.Models.relaxation_inputs ~m ~maxk in
      let opts_nocheck = false in
      ignore opts_nocheck;
      let _, t_j = time_it (fun () -> Psc.run ~check:false jacobi ~inputs) in
      let _, t_jp =
        time_it (fun () ->
            Psc.Pool.with_pool 4 (fun pool ->
                Psc.run ~check:false ~pool jacobi ~inputs))
      in
      let _, t_s = time_it (fun () -> Psc.run ~check:false seidel ~inputs) in
      let _, t_h =
        time_it (fun () ->
            Psc.run ~check:false ~name:hyper_name ~sink:true hyper_project ~inputs)
      in
      Fmt.pr "%6d %6d | %10.4f %10.4f %10.4f %10.4f@." m maxk t_j t_jp t_s t_h)
    sizes;
  Fmt.pr "@."

(* ------------------------------------------------------------------ *)
(* Part 2b: runtime A/B — nest collapsing x pool scheduler.

   Three workloads whose DOALL shapes differ:
   - fig6: the Jacobi relaxation, DO K (DOALL I (DOALL J)) — a
     rectangular band under an iterative loop (K cheap epochs);
   - h3: the hyperplane-transformed relaxation with sinking and
     trimming, DO K' (DOALL* I' (DOALL J')) — a *triangular* wavefront
     band whose inner extent varies along the sweep;
   - lcs: the transformed LCS recurrence, DO diag (DOALL cross) — a
     single varying-extent DOALL per diagonal (collapsing is a no-op;
     this row isolates the pool protocol).

   For each size: sequential, the fixed-chunk single-queue pool (the
   runtime as it was — the baseline), work stealing with guided chunks,
   and stealing plus collapsing.  Each configuration is timed best-of-N
   and recorded into the JSON trajectory. *)

let experiments : string list ref = ref []

(* Captured once, before any benchmark pool spawns its domains: the
   count the rows are judged against must be the host's, not whatever
   the scheduler reports while 4 benchmark domains are already up. *)
let host_cores = Psc.Pool.recommended_size ()

(* Every row carries the pool-observability fields; sequential rows
   report zeros so consumers can treat the schema as uniform.  A row
   whose pool oversubscribes the host ([cores_limited]) cannot show the
   pool-size speedup — readers of the trajectory must not interpret its
   wall time as a scaling result. *)
let record ~name ~wall ~(ws : Psc.Analysis.cost) ~pool ~steal ~collapse ~policy
    ~stats =
  let steals, attempts, util, imb =
    match (stats : Psc.Pool.summary option) with
    | None -> (0, 0, 0.0, 0.0)
    | Some sm ->
      ( sm.Psc.Pool.sm_steals,
        sm.Psc.Pool.sm_steal_attempts,
        sm.Psc.Pool.sm_utilization,
        sm.Psc.Pool.sm_imbalance )
  in
  experiments :=
    Printf.sprintf
      "{\"name\":%S,\"wall_s\":%.6f,\"work\":%.0f,\"span\":%.0f,\"pool\":%d,\"steal\":%b,\"collapse\":%b,\"policy\":%S,\"cores_limited\":%b,\"steals\":%d,\"steal_attempts\":%d,\"utilization\":%.4f,\"imbalance\":%.3f}"
      name wall ws.Psc.Analysis.work ws.Psc.Analysis.span pool steal collapse
      policy (pool > host_cores) steals attempts util imb
    :: !experiments

let ab_pool_size = 4

let time_best f =
  let reps = if quick then 2 else 5 in
  let best = ref infinity in
  for _ = 1 to reps do
    let _, t = time_it f in
    if t < !best then best := t
  done;
  !best

let part2b () =
  Fmt.pr "============================================================@.";
  Fmt.pr "Part 2b: runtime A/B (collapse x pool scheduler; pool = %d)@."
    ab_pool_size;
  Fmt.pr "============================================================@.@.";
  let pool_steal = Psc.Pool.create ab_pool_size in
  let pool_fixed = Psc.Pool.create ~steal:false ab_pool_size in
  (* Pool counters are gated on the metrics flag; turn it on for the A/B
     section so every pooled row carries steal/utilization data, and off
     again afterwards so part 3's micro-benchmarks run uninstrumented. *)
  Psc.Metrics.set_enabled true;
  Fmt.pr "%-12s | %10s %12s %12s %14s %10s@." "experiment" "seq" "fixed-chunk"
    "steal" "steal+collapse" "auto";
  (* Timings aggregate over [time_best]'s reps, and so do the pool
     counters: utilization and imbalance are ratios of the accumulated
     sums, which is what we want reported. *)
  let timed_pool pool ?policy ~collapse
      (runner :
        ?pool:Psc.Pool.t -> ?policy:Psc.Policy.table -> collapse:bool ->
        unit -> unit) =
    Psc.Pool.reset_stats pool;
    let t = time_best (fun () -> runner ~pool ?policy ~collapse ()) in
    (t, Psc.Pool.summary pool)
  in
  let ab name ws ~auto
      (runner :
        ?pool:Psc.Pool.t -> ?policy:Psc.Policy.table -> collapse:bool ->
        unit -> unit) =
    let t_seq = time_best (fun () -> runner ~collapse:false ()) in
    let t_fixed, sm_fixed = timed_pool pool_fixed ~collapse:false runner in
    let t_steal, sm_steal = timed_pool pool_steal ~collapse:false runner in
    let t_sc, sm_sc = timed_pool pool_steal ~collapse:true runner in
    (* The fifth column runs under the static cost model's per-nest
       table, sized to the host (not the benchmark pool): on a small
       host the table refuses to fork and the row must match the
       sequential one — that is the claim under test. *)
    let table : Psc.Policy.table = auto () in
    let forks =
      List.exists
        (fun (_, (d : Psc.Policy.decision)) -> d.Psc.Policy.d_par)
        table.Psc.Policy.t_entries
    in
    let collapses =
      List.exists
        (fun (_, (d : Psc.Policy.decision)) -> d.Psc.Policy.d_collapse)
        table.Psc.Policy.t_entries
    in
    let t_auto, sm_auto =
      if forks then
        let t, sm = timed_pool pool_steal ~policy:table ~collapse:false runner in
        (t, Some sm)
      else (time_best (fun () -> runner ~policy:table ~collapse:false ()), None)
    in
    record ~name:(name ^ "_seq") ~wall:t_seq ~ws ~pool:1 ~steal:false
      ~collapse:false ~policy:"seq" ~stats:None;
    record ~name:(name ^ "_par_fixed") ~wall:t_fixed ~ws ~pool:ab_pool_size
      ~steal:false ~collapse:false ~policy:"fixed" ~stats:(Some sm_fixed);
    record ~name:(name ^ "_par_steal") ~wall:t_steal ~ws ~pool:ab_pool_size
      ~steal:true ~collapse:false ~policy:"steal" ~stats:(Some sm_steal);
    record ~name:(name ^ "_par_steal_collapse") ~wall:t_sc ~ws
      ~pool:ab_pool_size ~steal:true ~collapse:true ~policy:"steal+collapse"
      ~stats:(Some sm_sc);
    record ~name:(name ^ "_auto") ~wall:t_auto ~ws
      ~pool:(if forks then ab_pool_size else 1)
      ~steal:forks ~collapse:collapses
      ~policy:(Psc.Policy.table_summary table) ~stats:sm_auto;
    Fmt.pr "%-12s | %10.4f %12.4f %12.4f %14.4f %10.4f@." name t_seq t_fixed
      t_steal t_sc t_auto
  in
  let rel_sizes =
    if quick then [ (16, 10); (32, 20) ] else [ (16, 10); (32, 20); (64, 40) ]
  in
  List.iter
    (fun (m, maxk) ->
      let inputs = Ps_models.Models.relaxation_inputs ~m ~maxk in
      let env = [ ("M", m); ("maxK", maxk) ] in
      ab
        (Printf.sprintf "fig6_m%d" m)
        (Psc.work_span jacobi ~env)
        ~auto:(fun () -> Psc.static_policy ~cores:host_cores jacobi ~env)
        (fun ?pool ?policy ~collapse () ->
          ignore (Psc.run ~check:false ?pool ?policy ~collapse jacobi ~inputs));
      ab
        (Printf.sprintf "h3_m%d" m)
        (Psc.work_span ~name:hyper_name ~sink:true ~trim:true hyper_project ~env)
        ~auto:(fun () ->
          Psc.static_policy ~name:hyper_name ~sink:true ~trim:true
            ~cores:host_cores hyper_project ~env)
        (fun ?pool ?policy ~collapse () ->
          ignore
            (Psc.run ~check:false ?pool ?policy ~collapse ~name:hyper_name
               ~sink:true ~trim:true hyper_project ~inputs)))
    rel_sizes;
  let lcs_project = Psc.load_string Ps_models.Models.lcs in
  let lcs_project, lcs_tr = Psc.hyperplane ~target:"L" lcs_project in
  let lcs_name = lcs_tr.Psc.Transform.tr_module.Psc.Ast.m_name in
  let lcs_sizes = if quick then [ 64; 128 ] else [ 64; 256; 512 ] in
  List.iter
    (fun n ->
      let inputs =
        [ ( "X",
            Psc.Exec.array_int ~dims:[ (1, n) ] (fun ix -> ((ix.(0) * 7) + 3) mod 4) );
          ( "Y",
            Psc.Exec.array_int ~dims:[ (1, n) ] (fun ix -> ((ix.(0) * 5) + 1) mod 4) );
          ("N", Psc.Exec.scalar_int n) ]
      in
      ab
        (Printf.sprintf "lcs_n%d" n)
        (Psc.work_span ~name:lcs_name ~sink:true ~trim:true lcs_project
           ~env:[ ("N", n) ])
        ~auto:(fun () ->
          Psc.static_policy ~name:lcs_name ~sink:true ~trim:true
            ~cores:host_cores lcs_project ~env:[ ("N", n) ])
        (fun ?pool ?policy ~collapse () ->
          ignore
            (Psc.run ~check:false ?pool ?policy ~collapse ~name:lcs_name
               ~sink:true ~trim:true lcs_project ~inputs)))
    lcs_sizes;
  (* The two new schedule classes of the symbolic distance analysis: a
     constant-stride recurrence runs as DOGROUP(2) (two independent
     residue classes), a parameter-stride recurrence as DOINSPECT(K)
     (K classes decided by the runtime inspector). *)
  let grp_project = Psc.load_string Ps_models.Models.strided_copy in
  let insp_project = Psc.load_string Ps_models.Models.param_recurrence in
  let fill = Ps_models.Models.fill_value in
  let stride_sizes = if quick then [ 4096; 16384 ] else [ 4096; 16384; 65536 ] in
  List.iter
    (fun n ->
      let a = Psc.Exec.array_real ~dims:[ (1, n) ] (fun ix -> fill ix.(0)) in
      ab
        (Printf.sprintf "grp_n%d" n)
        (Psc.work_span grp_project ~env:[ ("N", n) ])
        ~auto:(fun () ->
          Psc.static_policy ~cores:host_cores grp_project ~env:[ ("N", n) ])
        (fun ?pool ?policy ~collapse () ->
          ignore
            (Psc.run ~check:false ?pool ?policy ~collapse grp_project
               ~inputs:[ ("A", a); ("N", Psc.Exec.scalar_int n) ]));
      let k = 7 in
      ab
        (Printf.sprintf "insp_n%d" n)
        (Psc.work_span insp_project ~env:[ ("N", n); ("K", k) ])
        ~auto:(fun () ->
          Psc.static_policy ~cores:host_cores insp_project
            ~env:[ ("N", n); ("K", k) ])
        (fun ?pool ?policy ~collapse () ->
          ignore
            (Psc.run ~check:false ?pool ?policy ~collapse insp_project
               ~inputs:
                 [ ("A", a);
                   ("N", Psc.Exec.scalar_int n);
                   ("K", Psc.Exec.scalar_int k) ])))
    stride_sizes;
  Psc.Pool.shutdown pool_steal;
  Psc.Pool.shutdown pool_fixed;
  Psc.Metrics.set_enabled false;
  Fmt.pr "@."

let write_json path =
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": 1,\n\
    \  \"source\": \"bench/main.ml --json\",\n\
    \  \"quick\": %b,\n\
    \  \"host_cores\": %d,\n\
    \  \"pool_size\": %d,\n\
    \  \"experiments\": [\n    %s\n  ]\n\
     }\n"
    quick host_cores ab_pool_size
    (String.concat ",\n    " (List.rev !experiments));
  close_out oc;
  Fmt.pr "wrote %s (%d experiments)@." path (List.length !experiments)

(* ------------------------------------------------------------------ *)
(* Part 3: Bechamel micro-benchmarks, one Test.make per experiment *)

let m_b = 32 and maxk_b = 20

let inputs_b = Ps_models.Models.relaxation_inputs ~m:m_b ~maxk:maxk_b

let paper_vectors =
  [ [| 1; 0; 0 |]; [| 0; 0; 1 |]; [| 0; 1; 0 |]; [| 1; 0; -1 |]; [| 1; -1; 0 |] ]

let tests =
  let em_j = Psc.default_module jacobi in
  let em_s = Psc.default_module seidel in
  let pool = Psc.Pool.create 4 in
  at_exit (fun () -> Psc.Pool.shutdown pool);
  [ (* F1: parse + elaborate the Fig. 1 module *)
    Test.make ~name:"fig1_parse"
      (Staged.stage (fun () -> Psc.load_string Ps_models.Models.jacobi));
    (* F2/F3: dependency graph construction with labels *)
    Test.make ~name:"fig3_depgraph" (Staged.stage (fun () -> Psc.dep_graph em_j));
    (* F5: components of the full graph *)
    Test.make ~name:"fig5_components"
      (Staged.stage
         (let g = Psc.dep_graph em_j in
          fun () -> Psc.Scc.components (Psc.Scc.full_subgraph g)));
    (* F6: scheduling the Jacobi module *)
    Test.make ~name:"fig6_schedule" (Staged.stage (fun () -> Psc.schedule em_j));
    (* F7: scheduling the revised module *)
    Test.make ~name:"fig7_schedule" (Staged.stage (fun () -> Psc.schedule em_s));
    (* H1: solving the dependence inequalities *)
    Test.make ~name:"h1_coefficients"
      (Staged.stage (fun () -> Psc.Solve.solve paper_vectors));
    (* H2: the whole source-to-source transformation *)
    Test.make ~name:"h2_transform"
      (Staged.stage (fun () -> Psc.Transform.apply em_s ~target:"A"));
    (* H3: re-scheduling the transformed module with sinking *)
    Test.make ~name:"h3_hyper_schedule"
      (Staged.stage
         (let em_h = Psc.find_module hyper_project hyper_name in
          fun () -> Psc.schedule ~sink:true em_h));
    (* F6 execution: the DOALL-heavy Jacobi program, sequential and pooled *)
    Test.make ~name:"fig6_jacobi_exec_seq"
      (Staged.stage (fun () -> Psc.run ~check:false jacobi ~inputs:inputs_b));
    Test.make ~name:"fig6_jacobi_exec_par"
      (Staged.stage (fun () ->
           Psc.run ~check:false ~pool jacobi ~inputs:inputs_b));
    (* F7 execution: the fully iterative program *)
    Test.make ~name:"fig7_seidel_exec"
      (Staged.stage (fun () -> Psc.run ~check:false seidel ~inputs:inputs_b));
    (* H3 execution: transformed program, windowed store, seq and par *)
    Test.make ~name:"h3_hyper_exec_seq"
      (Staged.stage (fun () ->
           Psc.run ~check:false ~name:hyper_name ~sink:true hyper_project
             ~inputs:inputs_b));
    Test.make ~name:"h3_hyper_exec_par"
      (Staged.stage (fun () ->
           Psc.run ~check:false ~pool ~name:hyper_name ~sink:true hyper_project
             ~inputs:inputs_b));
    (* V1: windowed vs full allocation of the Jacobi store *)
    Test.make ~name:"v1_windows_on"
      (Staged.stage (fun () ->
           Psc.run ~check:false ~use_windows:true jacobi ~inputs:inputs_b));
    Test.make ~name:"v1_windows_off"
      (Staged.stage (fun () ->
           Psc.run ~check:false ~use_windows:false jacobi ~inputs:inputs_b));
    (* Ablation A1: bound trimming on the transformed program — the box
       scan vs Lamport's exact wavefront bounds. *)
    Test.make ~name:"a1_hyper_box"
      (Staged.stage (fun () ->
           Psc.run ~check:false ~name:hyper_name ~sink:true hyper_project
             ~inputs:inputs_b));
    Test.make ~name:"a1_hyper_trimmed"
      (Staged.stage (fun () ->
           Psc.run ~check:false ~name:hyper_name ~sink:true ~trim:true
             hyper_project ~inputs:inputs_b));
    (* Ablation A2: loop fusion on an element-wise pipeline. *)
    Test.make ~name:"a2_pipeline_unfused"
      (Staged.stage
         (let tp = Util_bench.project Util_bench.pipeline_src in
          let x =
            Psc.Exec.array_real ~dims:[ (1, 20000) ] (fun ix -> float_of_int ix.(0))
          in
          let ins = [ ("X", x); ("N", Psc.Exec.scalar_int 20000) ] in
          fun () -> Psc.run ~check:false tp ~inputs:ins));
    Test.make ~name:"a2_pipeline_fused"
      (Staged.stage
         (let tp = Util_bench.project Util_bench.pipeline_src in
          let x =
            Psc.Exec.array_real ~dims:[ (1, 20000) ] (fun ix -> float_of_int ix.(0))
          in
          let ins = [ ("X", x); ("N", Psc.Exec.scalar_int 20000) ] in
          fun () -> Psc.run ~check:false ~fuse:true tp ~inputs:ins)) ]

let part3 () =
  Fmt.pr "============================================================@.";
  Fmt.pr "Part 3: Bechamel micro-benchmarks (one per experiment)@.";
  Fmt.pr "============================================================@.@.";
  let cfg =
    Benchmark.cfg
      ~quota:(Time.second (if quick then 0.05 else 0.4))
      ~limit:2000 ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Fmt.pr "%-24s %14s %10s@." "experiment" "ns/run" "r^2";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ Instance.monotonic_clock ] elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some [ e ] -> e
            | Some (e :: _) -> e
            | _ -> nan
          in
          let r2 = Option.value ~default:nan (Analyze.OLS.r_square est) in
          Fmt.pr "%-24s %14.1f %10.4f@." (Test.Elt.name elt) ns r2)
        (Test.elements test))
    tests

let () =
  if serve_mode then Serve_bench.run ~quick
  else begin
    part1 ();
    part2 ();
    part2b ();
    if json_mode then write_json "BENCH_runtime.json" else part3 ();
    Fmt.pr "@.All paper artifacts regenerated and checked.@."
  end
