.PHONY: all build test fuzz-smoke serve-smoke serve-stress tune-smoke promote bench-quick bench-serve bench-serve-quick fmt lint-examples lint-distance trace-demo clean

all: build

build:
	dune build

test: fuzz-smoke serve-smoke serve-stress lint-distance tune-smoke bench-serve-quick
	dune runtest

# Bounded differential fuzzing pass: every generated module must agree
# across the sequential, stolen, collapsed and hyperplane execution
# paths (plus emitted C when a compiler is present).  Part of `make
# test`; a longer campaign is `psc fuzz --seed 1 --count 200`.
fuzz-smoke: build
	_build/default/bin/psc_main.exe fuzz --seed 1 --count 50

# One schedule request through the compile server in stdio mode: the
# pipe must answer ok and then shut down cleanly.  Part of `make test`;
# the full protocol suite is test/test_server.ml.
serve-smoke: build
	printf '%s\n%s\n' \
	  '{"id":1,"op":"schedule","source_file":"examples/ps/relaxation.ps"}' \
	  '{"id":2,"op":"shutdown"}' \
	  | _build/default/bin/psc_main.exe serve --stdio | grep -q '"ok":true'
	@echo "serve-smoke: ok"

# The overload/churn smoke: 500 connection open/close cycles leave no
# per-connection residue, flooding past --max-queue sheds E033 without
# dropping a connection, and a pipelined burst is answered once per id.
# Part of `make test`; the cases live in test/test_server.ml.
serve-stress: build
	_build/default/test/test_server.exe test stress
	@echo "serve-stress: ok"

# Tune the headline relaxation nests, replay the tuned tables
# bit-identically through `run --policy cached`, and assert no bench
# `_auto` row loses to its `_seq` sibling past 1.1x (+1ms slack).
# Part of `make test`; the unit coverage is test/test_policy.ml.
tune-smoke: build
	sh bin/tune_smoke.sh _build/default/bin/psc_main.exe \
	  _build/default/bench/main.exe

# Re-bless the golden snapshots (test/golden/) after reviewing an
# intended schedule or back-end change.
promote: build
	GOLDEN_PROMOTE=test/golden dune exec test/test_golden.exe

# Quick benchmark sweep; writes BENCH_runtime.json (the perf trajectory).
bench-quick: build
	dune exec bench/main.exe -- --quick --json

# The server load gate: drive a spawned `psc serve --socket` with
# concurrent clients over cache-hit and cache-miss workloads; writes
# BENCH_server.json, whose schema test_bench_server.ml asserts.  The
# quick variant (1/8/32 clients, few requests) is part of `make test`
# and of `dune runtest`; the full sweep goes to 1024 clients.
bench-serve: build
	dune exec bench/main.exe -- serve

bench-serve-quick: build
	dune exec bench/main.exe -- serve --quick

# Check dune-file formatting (no ocamlformat in the toolchain, so OCaml
# sources are exempt).  `make fmt-fix` rewrites in place.
fmt:
	dune build @fmt

fmt-fix:
	dune build @fmt --auto-promote

# Run psc lint over every PS example (also part of `dune runtest`).
lint-examples: build
	sh bin/lint_examples.sh _build/default/bin/psc_main.exe examples/ps

# The classifier-drift gate: no example may carry a subscript the
# symbolic distance solver could classify but the labeller demoted to
# "other" (W115).  Part of `make test` and of `dune runtest`.
lint-distance: build
	sh bin/lint_distance.sh _build/default/bin/psc_main.exe examples/ps

# Trace a full compile + run of the relaxation example and validate the
# emitted Chrome trace file (loadable in Perfetto / chrome://tracing).
trace-demo: build
	_build/default/bin/psc_main.exe run --trace trace_demo.json \
	  --par 4 --stats -i M=64 -i maxK=20 examples/ps/relaxation.ps
	_build/default/bin/psc_main.exe trace-check trace_demo.json
	@echo "trace-demo: trace_demo.json is valid"

clean:
	dune clean
