.PHONY: all build test fmt lint-examples clean

all: build

build:
	dune build

test:
	dune runtest

# Check dune-file formatting (no ocamlformat in the toolchain, so OCaml
# sources are exempt).  `make fmt-fix` rewrites in place.
fmt:
	dune build @fmt

fmt-fix:
	dune build @fmt --auto-promote

# Run psc lint over every PS example (also part of `dune runtest`).
lint-examples: build
	sh bin/lint_examples.sh _build/default/bin/psc_main.exe examples/ps

clean:
	dune clean
