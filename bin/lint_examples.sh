#!/bin/sh
# Run `psc lint` over every PS example, and verify each example's
# schedule against its dependency graph (translation validation) under
# the full pass pipeline.  Exits non-zero if any example produces an
# error-severity diagnostic or fails verification (warnings are
# reported but do not fail the run).  Also wired into `dune runtest`
# via examples/ps/dune.
#
# Usage: lint_examples.sh [PSC_EXE] [EXAMPLES_DIR]
set -eu
psc=${1:-_build/default/bin/psc_main.exe}
dir=${2:-examples/ps}
status=0
for f in "$dir"/*.ps; do
  echo "== psc lint $f"
  "$psc" lint "$f" || status=1
  echo "== psc schedule --verify-schedule --sink --fuse --trim $f"
  "$psc" schedule --verify-schedule --sink --fuse --trim "$f" \
    > /dev/null || status=1
done
exit $status
