#!/bin/sh
# Assert that no PS example triggers W115: a subscript the labeller
# demoted to "other" even though the symbolic distance solver could
# classify its linear form.  The labeller and the solver must agree on
# what is analyzable, or schedules silently regress to sequential.
# Exits non-zero on any W115 occurrence; other warnings are ignored
# here (lint_examples.sh owns the error-severity gate).  Also wired
# into `dune runtest` via examples/ps/dune.
#
# Usage: lint_distance.sh [PSC_EXE] [EXAMPLES_DIR]
set -eu
psc=${1:-_build/default/bin/psc_main.exe}
dir=${2:-examples/ps}
status=0
for f in "$dir"/*.ps; do
  out=$("$psc" lint "$f" 2>&1) || true
  if printf '%s\n' "$out" | grep -q 'W115'; then
    echo "== $f demotes a solver-classifiable subscript (W115):"
    printf '%s\n' "$out" | grep 'W115'
    status=1
  fi
done
[ "$status" -eq 0 ] && echo "lint-distance: no W115 under $dir"
exit $status
