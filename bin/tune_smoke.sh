#!/bin/sh
# Profile-guided tuning smoke: tune the two headline relaxation nests
# (fig6, the Jacobi form, and the Gauss-Seidel wavefront revision),
# replay each tuned table through `run --policy cached` asserting the
# outputs stay bit-identical to the untuned run, then re-run the quick
# benchmark sweep and assert that no `_auto` row loses to its `_seq`
# sibling by more than 10% (plus 1ms timer slack).  Part of `make test`.
#
# Usage: tune_smoke.sh [PSC_EXE] [BENCH_EXE]
set -eu
psc=${1:-_build/default/bin/psc_main.exe}
bench=${2:-_build/default/bench/main.exe}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for ex in relaxation gauss_seidel; do
  "$psc" tune "examples/ps/$ex.ps" -i M=12 -i maxK=6 \
    -o "$tmp/$ex.policy" 2>"$tmp/$ex.log"
  grep -q '"policy":1' "$tmp/$ex.policy" || {
    echo "tune-smoke: $ex: no policy table produced"; exit 1; }
  "$psc" run "examples/ps/$ex.ps" -i M=12 -i maxK=6 \
    >"$tmp/$ex.base.out"
  "$psc" run "examples/ps/$ex.ps" -i M=12 -i maxK=6 \
    --policy cached --policy-file "$tmp/$ex.policy" >"$tmp/$ex.tuned.out"
  cmp -s "$tmp/$ex.base.out" "$tmp/$ex.tuned.out" || {
    echo "tune-smoke: $ex: tuned outputs differ from untuned run"; exit 1; }
  echo "tune-smoke: $ex: tuned table replays bit-identically"
done

# Wall-time rows on a loaded host jitter; a deterministic regression
# fails all three sweeps, a noise spike does not.
attempt=1
while :; do
  "$bench" --quick --json >/dev/null
  if python3 - <<'EOF'
import json

rows = {}
with open("BENCH_runtime.json") as f:
    for row in json.load(f)["experiments"]:
        rows[row["name"]] = row

bad = []
for name, row in rows.items():
    if not name.endswith("_auto"):
        continue
    seq = rows[name[: -len("_auto")] + "_seq"]
    limit = 1.1 * seq["wall_s"] + 0.001
    if row["wall_s"] > limit:
        bad.append(f"{name}: auto {row['wall_s']:.6f}s > "
                   f"1.1x seq {seq['wall_s']:.6f}s + 1ms (policy {row['policy']})")
if bad:
    print("tune-smoke: auto rows regress past 1.1x sequential:")
    print("\n".join("  " + b for b in bad))
    raise SystemExit(1)
n = sum(1 for name in rows if name.endswith("_auto"))
print(f"tune-smoke: {n} auto rows all within 1.1x of sequential")
EOF
  then break; fi
  [ "$attempt" -ge 3 ] && { echo "tune-smoke: failed after 3 sweeps"; exit 1; }
  attempt=$((attempt + 1))
  echo "tune-smoke: retrying sweep ($attempt/3)"
done
